#!/usr/bin/env python3
"""CI smoke test for the dgp_serve what-if daemon.

Runs dgp_sta on a small synthetic design to get the reference WNS/TNS,
then drives a scripted dgp_serve session over stdin against the same
design and asserts that:

  * the session exits 0 and every scripted command gets its expected
    ok/err response;
  * the first `commit` (no pending moves) reports WNS/TNS matching the
    batch dgp_sta run (the incremental snapshot is the same analysis);
  * an out-of-core `move` is rejected with an `err` line instead of
    desynchronising the timer;
  * the JSONL profiling trace contains the per-request serve.parse /
    serve.update / serve.query spans.

Usage: scripts/serve_smoke.py [--keep]
Must run from the repo root (uses `dune exec`).  Exits non-zero with a
message on violation.
"""

import re
import subprocess
import sys
import tempfile
import os

WORKLOAD = ["--cells", "600", "--seed", "5", "--clock", "700"]


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd, **kw):
    return subprocess.run(cmd, capture_output=True, text=True, **kw)


def main():
    keep = "--keep" in sys.argv

    # reference: batch STA of the same workload
    sta = run(["dune", "exec", "bin/dgp_sta.exe", "--"] + WORKLOAD)
    if sta.returncode != 0:
        fail(f"dgp_sta exited {sta.returncode}:\n{sta.stderr}")
    m = re.search(r"setup: WNS (-?[\d.]+) ps, TNS (-?[\d.]+) ps", sta.stdout)
    if not m:
        fail(f"cannot parse WNS/TNS from dgp_sta output:\n{sta.stdout[:500]}")
    ref_wns, ref_tns = float(m.group(1)), float(m.group(2))
    print(f"serve_smoke: dgp_sta reference wns {ref_wns} tns {ref_tns}")

    trace = tempfile.mktemp(suffix=".jsonl", prefix="serve_smoke_")
    session = "\n".join(
        [
            "commit",
            "move u10 5.0 5.0",
            "commit",
            "move u10 1e9 1e9",  # rejected: leaves the core region
            "paths 4",
            "stats",
            "place 2 wl",
            "help",
            "quit",
        ]
    ) + "\n"
    serve = run(
        ["dune", "exec", "bin/dgp_serve.exe", "--"]
        + WORKLOAD
        + ["--trace-out", trace],
        input=session,
    )
    if serve.returncode != 0:
        fail(
            f"dgp_serve exited {serve.returncode}:\n"
            f"stdout:\n{serve.stdout}\nstderr:\n{serve.stderr}"
        )
    lines = [l for l in serve.stdout.splitlines() if l.strip()]
    print("serve_smoke: session transcript:")
    for l in lines:
        print(f"  {l}")

    responses = [l for l in lines if not l.startswith("path ")]
    if len(responses) != 9:
        fail(f"expected 9 response lines, got {len(responses)}")

    # 1: commit with no pending moves == the batch analysis
    m = re.match(r"ok wns (-?[\d.]+) tns (-?[\d.]+) endpoints (\d+)", responses[0])
    if not m:
        fail(f"unexpected first commit response: {responses[0]}")
    wns, tns = float(m.group(1)), float(m.group(2))
    # dgp_sta prints %.1f, the daemon %.3f: allow the rounding quantum
    if abs(wns - ref_wns) > 0.051 or abs(tns - ref_tns) > 0.051:
        fail(
            f"daemon commit (wns {wns} tns {tns}) disagrees with "
            f"dgp_sta (wns {ref_wns} tns {ref_tns})"
        )

    expectations = [
        (1, r"ok queued u10"),
        (2, r"ok wns -?[\d.]+ tns -?[\d.]+ endpoints \d+ pins \d+ "
            r"changed \d+ nets \d+"),
        (3, r"err .*core region"),
        (4, r"ok paths 4"),
        (5, r"ok cells \d+ nets \d+ pins \d+ wns "),
        (6, r"ok iterations \d+ hpwl "),
        (7, r"ok commands: "),
        (8, r"ok bye"),
    ]
    for idx, pat in expectations:
        if not re.match(pat, responses[idx]):
            fail(f"response {idx} {responses[idx]!r} does not match {pat!r}")

    npaths = len([l for l in lines if l.startswith("path ")])
    if npaths != 4:
        fail(f"expected 4 'path' lines from `paths 4`, got {npaths}")

    # incremental commit after one move must re-evaluate a strict subset
    m = re.search(r"pins (\d+)", responses[2])
    stats_pins = re.search(r"ok cells \d+ nets \d+ pins (\d+)", responses[5])
    if m and stats_pins and int(m.group(1)) >= int(stats_pins.group(1)):
        fail(
            f"incremental commit re-evaluated {m.group(1)} pins, "
            f"not a strict subset of {stats_pins.group(1)}"
        )

    # per-request spans present in the JSONL trace
    with open(trace) as f:
        tr = f.read()
    for k in ("serve.parse", "serve.update", "serve.query"):
        if f'"k":"{k}"' not in tr:
            fail(f"span {k} missing from trace {trace}")
    if not keep:
        os.unlink(trace)

    print("serve_smoke: OK (responses, WNS/TNS agreement, spans all good)")


if __name__ == "__main__":
    main()
