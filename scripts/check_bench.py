#!/usr/bin/env python3
"""Sanity checks on BENCH_placeriter.json.

Asserts that the Steiner maintenance is no longer the dominant kernel:
at every domain count, the per-iteration Steiner cost (the dirty rebuild
tick amortised over steiner_period, which is how iteration_us accounts
for it) must be smaller than the largest other per-iteration kernel.
The sub-kernel split (steiner.dirty / steiner.lut / steiner.full) must
also sum to roughly the dirty-tick cost, so the observability stays
honest.

Usage: scripts/check_bench.py [BENCH_placeriter.json]
Exits non-zero with a message on violation.
"""

import json
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_placeriter.json"
    with open(path) as f:
        data = json.load(f)

    period = data.get("steiner_period", 1)
    if period < 1:
        fail(f"steiner_period {period} < 1")

    rows = data.get("domains")
    if not rows:
        fail("no domain rows")

    for row in rows:
        d = row["domains"]
        k = row["kernels_us"]
        steiner_tick = k["steiner_rebuild"]
        steiner_per_iter = steiner_tick / period
        others = {
            name: us
            for name, us in k.items()
            if name not in ("steiner_rebuild", "steiner_full")
        }
        biggest, biggest_us = max(others.items(), key=lambda kv: kv[1])
        if steiner_per_iter >= biggest_us:
            fail(
                f"domains={d}: steiner per-iteration cost {steiner_per_iter:.1f}us "
                f"(tick {steiner_tick:.1f}us / period {period}) is still the "
                f"largest kernel (next: {biggest} at {biggest_us:.1f}us)"
            )
        print(
            f"check_bench: domains={d}: steiner {steiner_per_iter:.1f}us/iter "
            f"< {biggest} {biggest_us:.1f}us/iter"
        )

        sub = row.get("steiner_subkernels_us")
        if sub is None:
            fail(f"domains={d}: missing steiner_subkernels_us")
        for name in ("steiner.dirty", "steiner.lut", "steiner.full"):
            if name not in sub:
                fail(f"domains={d}: missing sub-kernel {name}")

    full = [r for r in rows if "speedup_vs_seed" in r]
    if full:
        best = max(r["speedup_vs_seed"] for r in full)
        print(f"check_bench: best speedup vs seed: {best:.2f}x")

    print(f"check_bench: OK ({path})")


if __name__ == "__main__":
    main()
