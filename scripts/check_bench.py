#!/usr/bin/env python3
"""Sanity checks on BENCH_*.json files.

Dispatches on the "bench" field of each file:

- every file must carry the uniform machine metadata (cores, hostname,
  git_rev) so results from different machines stay attributable;
- placer-iter: the Steiner maintenance must no longer be the dominant
  kernel -- at every domain count, the per-iteration Steiner cost (the
  dirty rebuild tick amortised over steiner_period, which is how
  iteration_us accounts for it) must be smaller than the largest other
  per-iteration kernel, and the sub-kernel split (steiner.dirty /
  steiner.lut / steiner.full) must be present so the observability
  stays honest;
- routability: at an equal iteration budget, the inflation loop must
  reduce the peak bin overflow (utilization in excess of capacity) by
  at least 30% while degrading HPWL by at most 10%.  Smoke-mode files
  only need the comparison to be present and inflation to have fired.
- paths: every (domains, K) row must carry the lazy engine's candidate
  counters (pushed/popped/pruned/endpoints_skipped) and its chunk
  count, and the eager-reference baseline must be present; in full
  mode the K=128 lazy enumerate must be at least 5x faster than the
  eager reference at the 5k bench point.
- multilevel: at the 50k-cell bench point the V-cycle must reach
  equal-or-better HPWL (within 2%) in at least 3x less wall-clock than
  the flat engine at the same quality target, and a 200k-cell V-cycle
  run must have completed end-to-end.  Smoke-mode files only need both
  engines to have run.

Usage: scripts/check_bench.py [BENCH_*.json ...]
       (default: BENCH_placeriter.json)
Exits non-zero with a message on the first violation.
"""

import json
import sys

PEAK_OVERFLOW_REDUCTION_MIN = 30.0  # percent
HPWL_DEGRADATION_MAX = 10.0  # percent
PATHS_SPEEDUP_MIN = 5.0  # lazy vs eager reference at the largest K
PATHS_FULL_K = 128  # the gated K at the full 5k bench point
MULTILEVEL_SPEEDUP_MIN = 3.0  # V-cycle vs flat wall-clock at 50k cells
MULTILEVEL_HPWL_RATIO_MAX = 1.02  # V-cycle HPWL within 2% of flat


def fail(msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metadata(path, data):
    for key in ("cores", "hostname", "git_rev", "peak_rss_mb"):
        if key not in data:
            fail(f"{path}: missing metadata field {key!r}")
    print(
        f"check_bench: {path}: cores={data['cores']} "
        f"host={data['hostname']} rev={data['git_rev']}"
    )


def check_placer_iter(path, data):
    period = data.get("steiner_period", 1)
    if period < 1:
        fail(f"{path}: steiner_period {period} < 1")

    rows = data.get("domains")
    if not rows:
        fail(f"{path}: no domain rows")

    for row in rows:
        d = row["domains"]
        k = row["kernels_us"]
        steiner_tick = k["steiner_rebuild"]
        steiner_per_iter = steiner_tick / period
        others = {
            name: us
            for name, us in k.items()
            if name not in ("steiner_rebuild", "steiner_full")
        }
        biggest, biggest_us = max(others.items(), key=lambda kv: kv[1])
        if steiner_per_iter >= biggest_us:
            fail(
                f"{path}: domains={d}: steiner per-iteration cost "
                f"{steiner_per_iter:.1f}us (tick {steiner_tick:.1f}us / "
                f"period {period}) is still the largest kernel "
                f"(next: {biggest} at {biggest_us:.1f}us)"
            )
        print(
            f"check_bench: domains={d}: steiner {steiner_per_iter:.1f}us/iter "
            f"< {biggest} {biggest_us:.1f}us/iter"
        )

        sub = row.get("steiner_subkernels_us")
        if sub is None:
            fail(f"{path}: domains={d}: missing steiner_subkernels_us")
        for name in ("steiner.dirty", "steiner.lut", "steiner.full"):
            if name not in sub:
                fail(f"{path}: domains={d}: missing sub-kernel {name}")

    full = [r for r in rows if "speedup_vs_seed" in r]
    if full:
        best = max(r["speedup_vs_seed"] for r in full)
        print(f"check_bench: best speedup vs seed: {best:.2f}x")


def check_routability(path, data):
    for key in ("off", "on", "peak_overflow_reduction_pct",
                "hpwl_degradation_pct", "rudy_update_us"):
        if key not in data:
            fail(f"{path}: missing field {key!r}")
    off, on = data["off"], data["on"]
    if off.get("inflation_rounds", -1) != 0:
        fail(f"{path}: off run reports inflation rounds "
             f"{off.get('inflation_rounds')}")
    if on.get("inflation_rounds", 0) <= 0:
        fail(f"{path}: on run never inflated")
    peak_red = data["peak_overflow_reduction_pct"]
    hpwl_deg = data["hpwl_degradation_pct"]
    print(
        f"check_bench: routability: peak overflow -{peak_red:.1f}% "
        f"(utilization {off['peak_utilization']:.2f} -> "
        f"{on['peak_utilization']:.2f}), HPWL {hpwl_deg:+.1f}%, "
        f"RUDY update {data['rudy_update_us']:.0f}us"
    )
    if data.get("mode") == "smoke":
        # smoke designs are too small for the thresholds to be
        # meaningful; the full 5k bench point defines acceptance
        print(f"check_bench: {path}: smoke mode, thresholds not gated")
        return
    if peak_red < PEAK_OVERFLOW_REDUCTION_MIN:
        fail(
            f"{path}: peak overflow reduction {peak_red:.1f}% < "
            f"{PEAK_OVERFLOW_REDUCTION_MIN:.0f}% threshold"
        )
    if hpwl_deg > HPWL_DEGRADATION_MAX:
        fail(
            f"{path}: HPWL degradation {hpwl_deg:.1f}% > "
            f"{HPWL_DEGRADATION_MAX:.0f}% threshold"
        )


def check_paths(path, data):
    rows = data.get("domains")
    if not rows:
        fail(f"{path}: no domain rows")
    for row in rows:
        d = row.get("domains")
        ks = row.get("ks")
        if not ks:
            fail(f"{path}: domains={d}: no ks rows")
        for kr in ks:
            for key in ("pushed", "popped", "pruned", "endpoints_skipped",
                        "chunks"):
                if key not in kr:
                    fail(
                        f"{path}: domains={d} k={kr.get('k')}: "
                        f"missing counter {key!r}"
                    )
            if kr["chunks"] < 1:
                fail(f"{path}: domains={d} k={kr.get('k')}: chunks < 1")

    ref = data.get("reference")
    if ref is None:
        fail(f"{path}: missing eager-reference baseline")
    for key in ("k", "enumerate_us", "lazy_enumerate_us", "speedup"):
        if key not in ref:
            fail(f"{path}: reference: missing field {key!r}")
    print(
        f"check_bench: paths: K={ref['k']} eager {ref['enumerate_us']:.0f}us "
        f"-> lazy {ref['lazy_enumerate_us']:.0f}us "
        f"({ref['speedup']:.2f}x)"
    )
    if data.get("mode") == "smoke":
        # smoke designs are too small for the speedup to be meaningful;
        # the full 5k bench point defines acceptance
        print(f"check_bench: {path}: smoke mode, speedup not gated")
        return
    if ref["k"] != PATHS_FULL_K:
        fail(
            f"{path}: reference measured at K={ref['k']}, "
            f"expected K={PATHS_FULL_K} in full mode"
        )
    if ref["speedup"] < PATHS_SPEEDUP_MIN:
        fail(
            f"{path}: lazy enumerate speedup {ref['speedup']:.2f}x < "
            f"{PATHS_SPEEDUP_MIN:.0f}x threshold at K={PATHS_FULL_K}"
        )


def check_multilevel(path, data):
    for key in ("flat", "vcycle", "speedup", "hpwl_ratio"):
        if key not in data:
            fail(f"{path}: missing field {key!r}")
    flat, vcycle = data["flat"], data["vcycle"]
    for name, run in (("flat", flat), ("vcycle", vcycle)):
        for key in ("iterations", "runtime_s", "hpwl", "overflow"):
            if key not in run:
                fail(f"{path}: {name}: missing field {key!r}")
        if run["iterations"] <= 0 or run["runtime_s"] <= 0.0:
            fail(f"{path}: {name}: run did not execute")
    speedup = data["speedup"]
    ratio = data["hpwl_ratio"]
    print(
        f"check_bench: multilevel: flat {flat['runtime_s']:.2f}s -> "
        f"V-cycle {vcycle['runtime_s']:.2f}s ({speedup:.2f}x), "
        f"HPWL ratio {ratio:.4f}"
    )
    if data.get("mode") == "smoke":
        # smoke designs are far below the crossover size where
        # clustering pays off; the full 50k bench point defines
        # acceptance
        print(f"check_bench: {path}: smoke mode, thresholds not gated")
        return
    if speedup < MULTILEVEL_SPEEDUP_MIN:
        fail(
            f"{path}: V-cycle speedup {speedup:.2f}x < "
            f"{MULTILEVEL_SPEEDUP_MIN:.0f}x threshold"
        )
    if ratio > MULTILEVEL_HPWL_RATIO_MAX:
        fail(
            f"{path}: V-cycle HPWL ratio {ratio:.4f} > "
            f"{MULTILEVEL_HPWL_RATIO_MAX:.2f} threshold"
        )
    big = data.get("vcycle_200k")
    if big is None:
        fail(f"{path}: missing vcycle_200k end-to-end run")
    for key in ("cells", "levels", "iterations", "runtime_s", "hpwl",
                "overflow"):
        if key not in big:
            fail(f"{path}: vcycle_200k: missing field {key!r}")
    if big["cells"] < 200_000 or big["iterations"] <= 0:
        fail(f"{path}: vcycle_200k did not complete end-to-end")
    print(
        f"check_bench: multilevel: {big['cells']} cells end-to-end in "
        f"{big['runtime_s']:.1f}s ({big['iterations']} iters, "
        f"overflow {big['overflow']:.3f})"
    )


CHECKS = {
    "placer-iter": check_placer_iter,
    "routability": check_routability,
    "paths": check_paths,
    "multilevel": check_multilevel,
}


def main():
    paths = sys.argv[1:] if len(sys.argv) > 1 else ["BENCH_placeriter.json"]
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        check_metadata(path, data)
        check = CHECKS.get(data.get("bench"))
        if check is not None:
            check(path, data)
        print(f"check_bench: OK ({path})")


if __name__ == "__main__":
    main()
