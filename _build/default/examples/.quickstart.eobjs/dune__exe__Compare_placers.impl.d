examples/compare_placers.ml: Core Float Legalize Liberty Netweight Printf Report Sta Workload
