examples/incremental_timing.mli:
