examples/incremental_timing.ml: Array Core Geometry Legalize Liberty List Netlist Printf Sta Workload
