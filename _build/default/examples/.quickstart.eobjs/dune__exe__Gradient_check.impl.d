examples/gradient_check.ml: Array Difftimer Float Liberty Netlist Printf Rc Sta Steiner Workload
