examples/quickstart.mli:
