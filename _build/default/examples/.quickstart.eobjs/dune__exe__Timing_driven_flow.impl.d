examples/timing_driven_flow.ml: Array Bookshelf Core Detailed Filename Float Format Legalize Liberty List Netlist Printf Sta Sys Workload
