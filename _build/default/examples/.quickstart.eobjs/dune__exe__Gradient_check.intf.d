examples/gradient_check.mli:
