examples/compare_placers.mli:
