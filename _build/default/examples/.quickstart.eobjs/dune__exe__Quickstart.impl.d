examples/quickstart.ml: Core Legalize Liberty Netlist Printf Sta Workload
