(* Quickstart: generate a small design, place it with the differentiable
   timing objective, and print before/after timing.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. a cell library and a synthetic benchmark *)
  let lib = Liberty.Synthetic.default () in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 1500; sp_clock_period = 900.0 }
  in
  let design, constraints = Workload.generate lib spec in
  (* 2. the static timing graph (built once; placement moves never
     change it) *)
  let graph = Sta.Graph.build design lib constraints in
  let report_timing label =
    let timer = Sta.Timer.create graph in
    let r = Sta.Timer.run timer in
    Printf.printf "%-24s WNS %8.1f ps   TNS %12.1f ps   HPWL %.3e um\n%!"
      label r.Sta.Timer.setup_wns r.Sta.Timer.setup_tns
      (Netlist.total_hpwl design)
  in
  report_timing "initial (random)";
  (* 3. timing-driven global placement (Eq. 6 of the paper) *)
  let config =
    { Core.default_config with
      Core.mode = Core.Differentiable_timing Core.default_timing }
  in
  let result = Core.run config graph in
  Printf.printf "placed in %d iterations (%.2f s), overflow %.3f\n"
    result.Core.res_iterations result.Core.res_runtime result.Core.res_overflow;
  report_timing "after global placement";
  (* 4. legalise and report the final numbers *)
  ignore (Legalize.legalize design);
  report_timing "after legalisation"
