(* Demonstrate that the differentiable timer's gradients are exact for
   the frozen-topology model, by comparing d(objective)/d(cell position)
   against central finite differences at three granularities:
   Elmore delay (Eq. 7/8), LUT queries (Fig. 6), and the full TNS/WNS
   pipeline (Fig. 3).

     dune exec examples/gradient_check.exe *)

let check name analytic fd =
  let err = Float.abs (analytic -. fd) in
  let rel = err /. Float.max 1e-9 (Float.abs fd) in
  Printf.printf "  %-36s analytic %12.6f   fd %12.6f   rel err %.2e\n"
    name analytic fd rel

let () =
  let rng = Workload.Rng.create 11 in
  Printf.printf "1. Elmore delay gradient through a 5-pin RC tree\n";
  let npins = 5 in
  let xs = Array.init npins (fun _ -> Workload.Rng.float rng 80.0) in
  let ys = Array.init npins (fun _ -> Workload.Rng.float rng 80.0) in
  let tree = Steiner.build ~xs ~ys () in
  let pin_caps = Array.init npins (fun i -> if i = 0 then 0.0 else 2.0) in
  let rc = Rc.create ~r_unit:0.02 ~c_unit:0.25 ~pin_caps tree in
  let delay_of_sink_3 () =
    Steiner.update_coordinates tree ~xs ~ys;
    Rc.evaluate rc;
    Rc.sink_delay rc 3
  in
  ignore (delay_of_sink_3 ());
  let n = Steiner.node_count tree in
  let g_delay = Array.make n 0.0 and g_i2 = Array.make n 0.0 in
  g_delay.(3) <- 1.0;
  let ngx = Array.make n 0.0 and ngy = Array.make n 0.0 in
  Rc.backward rc ~g_delay ~g_impulse2:g_i2 ~g_root_load:0.0 ~node_gx:ngx
    ~node_gy:ngy;
  let pgx = Array.make npins 0.0 and pgy = Array.make npins 0.0 in
  Steiner.accumulate_pin_gradient tree ~node_gx:ngx ~node_gy:ngy ~pin_gx:pgx
    ~pin_gy:pgy;
  let h = 1e-6 in
  for pin = 1 to 2 do
    let x0 = xs.(pin) in
    xs.(pin) <- x0 +. h;
    let fp = delay_of_sink_3 () in
    xs.(pin) <- x0 -. h;
    let fm = delay_of_sink_3 () in
    xs.(pin) <- x0;
    check
      (Printf.sprintf "d delay(sink 3) / d x(pin %d)" pin)
      pgx.(pin)
      ((fp -. fm) /. (2.0 *. h))
  done;

  Printf.printf "\n2. NLDM look-up-table query gradient (bilinear, Fig. 6)\n";
  let lib = Liberty.Synthetic.default () in
  let nand =
    match Liberty.find_cell lib "NAND2_X1" with
    | Some c -> c
    | None -> failwith "NAND2_X1 missing"
  in
  let lut = nand.Liberty.lc_arcs.(0).Liberty.cell_fall in
  let x = 13.7 and y = 5.3 in
  let _, dx, dy = Liberty.Lut.lookup_with_gradient lut x y in
  let h = 1e-5 in
  check "d delay / d slew"
    dx
    ((Liberty.Lut.lookup lut (x +. h) y -. Liberty.Lut.lookup lut (x -. h) y)
     /. (2.0 *. h));
  check "d delay / d load"
    dy
    ((Liberty.Lut.lookup lut x (y +. h) -. Liberty.Lut.lookup lut x (y -. h))
     /. (2.0 *. h));

  Printf.printf "\n3. Full pipeline: d(-t1 TNS - t2 WNS) / d(cell position)\n";
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 200; sp_inputs = 10; sp_outputs = 10; sp_depth = 7;
      sp_clock_period = 560.0 }
  in
  let design, constraints = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib constraints in
  let dt = Difftimer.create ~gamma:25.0 graph in
  let objective () =
    Sta.Nets.refresh (Difftimer.nets dt);
    let m = Difftimer.forward dt in
    (0.5 *. -.m.Difftimer.tns_smooth) +. (0.5 *. -.m.Difftimer.wns_smooth)
  in
  ignore (objective ());
  let ncells = Netlist.num_cells design in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  Difftimer.backward dt ~w_tns:0.5 ~w_wns:0.5 ~grad_x:gx ~grad_y:gy;
  let shown = ref 0 in
  let i = ref 0 in
  while !shown < 4 && !i < ncells do
    let c = design.Netlist.cells.(!i) in
    if (not c.Netlist.fixed) && Float.abs gx.(!i) > 1e-4 then begin
      incr shown;
      let x0 = c.Netlist.x in
      let h = 1e-4 in
      c.Netlist.x <- x0 +. h;
      let fp = objective () in
      c.Netlist.x <- x0 -. h;
      let fm = objective () in
      c.Netlist.x <- x0;
      check
        (Printf.sprintf "d objective / d x(%s)" c.Netlist.cell_name)
        gx.(!i)
        ((fp -. fm) /. (2.0 *. h))
    end;
    incr i
  done
