type metrics = {
  wns : float;
  tns : float;
  wns_smooth : float;
  tns_smooth : float;
  endpoint_count : int;
}

type t = {
  graph : Sta.Graph.t;
  nets : Sta.Nets.t;
  mutable gamma_ : float;
  at_ : float array;   (* 2 * pin + transition, late/setup *)
  slew_ : float array;
  g_at : float array;
  g_slew : float array;
  ep_slack_tr : float array;  (* per transition endpoint slack *)
  ep_dsetup : float array;    (* d setup / d data slew at endpoints *)
  ep_slack : float array;     (* per pin smoothed endpoint slack *)
  g_net_delay : float array;  (* per sink pin *)
  g_i2 : float array;
  g_root_load : float array;  (* per net *)
  mutable wns_smooth_ : float;
  (* per-net scratch, grown on demand (rebuilt trees may gain nodes) *)
  mutable node_gd : float array;
  mutable node_gi2 : float array;
  mutable node_gx : float array;
  mutable node_gy : float array;
  mutable pin_gx : float array;
  mutable pin_gy : float array;
}

let ensure_scratch t nnodes npins_net =
  if Array.length t.node_gd < nnodes then begin
    let n = max nnodes (2 * Array.length t.node_gd) in
    t.node_gd <- Array.make n 0.0;
    t.node_gi2 <- Array.make n 0.0;
    t.node_gx <- Array.make n 0.0;
    t.node_gy <- Array.make n 0.0
  end;
  if Array.length t.pin_gx < npins_net then begin
    let n = max npins_net (2 * Array.length t.pin_gx) in
    t.pin_gx <- Array.make n 0.0;
    t.pin_gy <- Array.make n 0.0
  end

let lse ~gamma xs =
  let m = Array.fold_left Float.max neg_infinity xs in
  if m = neg_infinity then neg_infinity
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. exp ((x -. m) /. gamma)) xs;
    m +. (gamma *. log !acc)
  end

let softmin0 ~gamma s =
  let r = -.s /. gamma in
  if r > 40.0 then s
  else if r < -40.0 then -.gamma *. exp r
  else -.gamma *. Float.log1p (exp r)

(* d softmin0 / d s = sigmoid (-s / gamma) *)
let softmin0_grad ~gamma s =
  let r = s /. gamma in
  if r > 40.0 then 0.0
  else if r < -40.0 then 1.0
  else 1.0 /. (1.0 +. exp r)

let create ?(gamma = 100.0) graph =
  let design = graph.Sta.Graph.design in
  let npins = Netlist.num_pins design in
  let nnets = Netlist.num_nets design in
  let nets = Sta.Nets.create graph in
  let max_nodes = ref 1 and max_pins = ref 1 in
  Array.iter
    (fun entry ->
      match entry with
      | None -> ()
      | Some (tree, _) ->
        max_nodes := max !max_nodes (Steiner.node_count tree);
        max_pins := max !max_pins tree.Steiner.pin_count)
    nets.Sta.Nets.trees;
  { graph; nets; gamma_ = gamma;
    at_ = Array.make (2 * npins) neg_infinity;
    slew_ = Array.make (2 * npins) 0.0;
    g_at = Array.make (2 * npins) 0.0;
    g_slew = Array.make (2 * npins) 0.0;
    ep_slack_tr = Array.make (2 * npins) infinity;
    ep_dsetup = Array.make (2 * npins) 0.0;
    ep_slack = Array.make npins infinity;
    g_net_delay = Array.make npins 0.0;
    g_i2 = Array.make npins 0.0;
    g_root_load = Array.make nnets 0.0;
    wns_smooth_ = 0.0;
    node_gd = Array.make !max_nodes 0.0;
    node_gi2 = Array.make !max_nodes 0.0;
    node_gx = Array.make !max_nodes 0.0;
    node_gy = Array.make !max_nodes 0.0;
    pin_gx = Array.make !max_pins 0.0;
    pin_gy = Array.make !max_pins 0.0 }

let nets t = t.nets
let gamma t = t.gamma_
let set_gamma t g = t.gamma_ <- g

let idx p tr = (2 * p) + Sta.transition_index tr
let at t p tr = t.at_.(idx p tr)
let slew t p tr = t.slew_.(idx p tr)
let endpoint_slack t p = t.ep_slack.(p)

let both = [ Sta.Rise; Sta.Fall ]

let delay_lut (arc : Liberty.timing_arc) = function
  | Sta.Rise -> arc.Liberty.cell_rise
  | Sta.Fall -> arc.Liberty.cell_fall

let slew_lut (arc : Liberty.timing_arc) = function
  | Sta.Rise -> arc.Liberty.rise_transition
  | Sta.Fall -> arc.Liberty.fall_transition

let compatible sense tr_out =
  match sense with
  | Liberty.Positive_unate -> [ tr_out ]
  | Liberty.Negative_unate ->
    [ (match tr_out with Sta.Rise -> Sta.Fall | Sta.Fall -> Sta.Rise) ]
  | Liberty.Non_unate -> both

let tree_of t pin =
  let net = t.graph.Sta.Graph.design.Netlist.pins.(pin).Netlist.net in
  if net < 0 then None else t.nets.Sta.Nets.trees.(net)

let root_load_of t pin =
  match tree_of t pin with None -> 0.0 | Some (_, rc) -> Rc.root_load rc

(* forward kernel for one pin: reads strictly lower levels only. *)
let forward_pin t v =
  let design = t.graph.Sta.Graph.design in
  let gamma = t.gamma_ in
  let pin = design.Netlist.pins.(v) in
  (* net arc: at most one fan-in, no smoothing needed (Eq. 9) *)
  (if pin.Netlist.direction = Netlist.Input && pin.Netlist.net >= 0 then
     match
       (t.nets.Sta.Nets.trees.(pin.Netlist.net),
        Netlist.net_driver design pin.Netlist.net)
     with
     | Some (_, rc), Some u when u <> v ->
       let node = t.nets.Sta.Nets.tree_index.(v) in
       let d = Rc.sink_delay rc node in
       let i2 = Rc.sink_impulse2 rc node in
       List.iter
         (fun tr ->
           let iu = idx u tr and iv = idx v tr in
           if t.at_.(iu) > neg_infinity then begin
             t.at_.(iv) <- t.at_.(iu) +. d;
             t.slew_.(iv) <- sqrt ((t.slew_.(iu) *. t.slew_.(iu)) +. i2)
           end)
         both
     | (None | Some _), (None | Some _) -> ());
  (* cell arcs: LSE aggregation over fan-in contributions (Eq. 11) *)
  let fanin = t.graph.Sta.Graph.fanin_arcs.(v) in
  if fanin <> [] then begin
    let load = root_load_of t v in
    List.iter
      (fun tr_out ->
        let iv = idx v tr_out in
        (* pass 1: maxima for the shifted LSE *)
        let max_a = ref neg_infinity and max_s = ref neg_infinity in
        List.iter
          (fun (ca : Sta.Graph.cell_arc) ->
            List.iter
              (fun tr_in ->
                let iu = idx ca.Sta.Graph.ca_from tr_in in
                if t.at_.(iu) > neg_infinity then begin
                  let d =
                    Liberty.Lut.lookup
                      (delay_lut ca.Sta.Graph.ca_arc tr_out)
                      t.slew_.(iu) load
                  in
                  let s =
                    Liberty.Lut.lookup
                      (slew_lut ca.Sta.Graph.ca_arc tr_out)
                      t.slew_.(iu) load
                  in
                  if t.at_.(iu) +. d > !max_a then max_a := t.at_.(iu) +. d;
                  if s > !max_s then max_s := s
                end)
              (compatible ca.Sta.Graph.ca_arc.Liberty.sense tr_out))
          fanin;
        if !max_a > neg_infinity then begin
          let sum_a = ref 0.0 and sum_s = ref 0.0 in
          List.iter
            (fun (ca : Sta.Graph.cell_arc) ->
              List.iter
                (fun tr_in ->
                  let iu = idx ca.Sta.Graph.ca_from tr_in in
                  if t.at_.(iu) > neg_infinity then begin
                    let d =
                      Liberty.Lut.lookup
                        (delay_lut ca.Sta.Graph.ca_arc tr_out)
                        t.slew_.(iu) load
                    in
                    let s =
                      Liberty.Lut.lookup
                        (slew_lut ca.Sta.Graph.ca_arc tr_out)
                        t.slew_.(iu) load
                    in
                    sum_a := !sum_a +. exp ((t.at_.(iu) +. d -. !max_a) /. gamma);
                    sum_s := !sum_s +. exp ((s -. !max_s) /. gamma)
                  end)
                (compatible ca.Sta.Graph.ca_arc.Liberty.sense tr_out))
            fanin;
          t.at_.(iv) <- !max_a +. (gamma *. log !sum_a);
          t.slew_.(iv) <- !max_s +. (gamma *. log !sum_s)
        end)
      both
  end

let check_setup_lut (ck : Liberty.check_arc) = function
  | Sta.Rise -> ck.Liberty.setup_rise
  | Sta.Fall -> ck.Liberty.setup_fall

let forward ?pool t =
  let g = t.graph in
  let design = g.Sta.Graph.design in
  let cs = g.Sta.Graph.constraints in
  let gamma = t.gamma_ in
  let npins = Netlist.num_pins design in
  Array.fill t.at_ 0 (2 * npins) neg_infinity;
  Array.fill t.slew_ 0 (2 * npins) 0.0;
  List.iter
    (fun p ->
      List.iter
        (fun tr ->
          let i = idx p tr in
          t.at_.(i) <- cs.Sta.Constraints.input_delay;
          t.slew_.(i) <- cs.Sta.Constraints.input_slew)
        both)
    g.Sta.Graph.primary_inputs;
  Array.iteri
    (fun p clock ->
      if clock then
        List.iter
          (fun tr ->
            let i = idx p tr in
            t.at_.(i) <- 0.0;
            t.slew_.(i) <- cs.Sta.Constraints.clock_slew)
          both)
    g.Sta.Graph.is_clock_pin;
  Array.iter
    (fun level_pins ->
      let n = Array.length level_pins in
      match pool with
      | Some pool ->
        Parallel.parallel_for pool ~grain:256 n (fun k ->
          forward_pin t level_pins.(k))
      | None ->
        for k = 0 to n - 1 do
          forward_pin t level_pins.(k)
        done)
    g.Sta.Graph.levels;
  (* endpoint slacks (setup/late), smoothed across transitions *)
  let period = cs.Sta.Constraints.clock_period in
  let hard_wns = ref infinity and hard_tns = ref 0.0 in
  let smooth_tns = ref 0.0 in
  let neg_slacks = ref [] in
  let count = ref 0 in
  Array.iter
    (fun p ->
      let sum_exp = ref 0.0 and max_neg = ref neg_infinity in
      let hard = ref infinity in
      List.iter
        (fun tr ->
          let i = idx p tr in
          t.ep_slack_tr.(i) <- infinity;
          t.ep_dsetup.(i) <- 0.0;
          if t.at_.(i) > neg_infinity then begin
            let slack =
              match g.Sta.Graph.check_of_pin.(p) with
              | Some ck ->
                let setup, dsu, _ =
                  Liberty.Lut.lookup_with_gradient
                    (check_setup_lut ck.Sta.Graph.ck_arc tr)
                    t.slew_.(i) cs.Sta.Constraints.clock_slew
                in
                t.ep_dsetup.(i) <- dsu;
                period -. setup -. t.at_.(i)
              | None -> period -. cs.Sta.Constraints.output_delay -. t.at_.(i)
            in
            t.ep_slack_tr.(i) <- slack;
            if slack < !hard then hard := slack;
            if -.slack > !max_neg then max_neg := -.slack
          end)
        both;
      if !hard < infinity then begin
        (* smoothed min over transitions: -LSE(-slacks) *)
        List.iter
          (fun tr ->
            let i = idx p tr in
            if t.ep_slack_tr.(i) < infinity then
              sum_exp := !sum_exp
                         +. exp ((-.t.ep_slack_tr.(i) -. !max_neg) /. gamma))
          both;
        let s = -.(!max_neg +. (gamma *. log !sum_exp)) in
        t.ep_slack.(p) <- s;
        incr count;
        smooth_tns := !smooth_tns +. softmin0 ~gamma s;
        neg_slacks := -.s :: !neg_slacks;
        if !hard < !hard_wns then hard_wns := !hard;
        if !hard < 0.0 then hard_tns := !hard_tns +. !hard
      end
      else t.ep_slack.(p) <- infinity)
    g.Sta.Graph.endpoints;
  let wns_smooth =
    if !count = 0 then 0.0
    else -.lse ~gamma (Array.of_list !neg_slacks)
  in
  t.wns_smooth_ <- wns_smooth;
  { wns = (if !count = 0 then 0.0 else !hard_wns);
    tns = !hard_tns;
    wns_smooth;
    tns_smooth = !smooth_tns;
    endpoint_count = !count }

(* backward kernel for one pin: scatters into fan-in state. *)
let backward_pin t v =
  let design = t.graph.Sta.Graph.design in
  let gamma = t.gamma_ in
  let pin = design.Netlist.pins.(v) in
  (* cell arcs *)
  let fanin = t.graph.Sta.Graph.fanin_arcs.(v) in
  (if fanin <> [] then begin
     let net = pin.Netlist.net in
     let load = root_load_of t v in
     List.iter
       (fun tr_out ->
         let iv = idx v tr_out in
         if t.at_.(iv) > neg_infinity
            && (t.g_at.(iv) <> 0.0 || t.g_slew.(iv) <> 0.0)
         then begin
           let at_v = t.at_.(iv) and slew_v = t.slew_.(iv) in
           List.iter
             (fun (ca : Sta.Graph.cell_arc) ->
               List.iter
                 (fun tr_in ->
                   let iu = idx ca.Sta.Graph.ca_from tr_in in
                   if t.at_.(iu) > neg_infinity then begin
                     let d, dd_dslew, dd_dload =
                       Liberty.Lut.lookup_with_gradient
                         (delay_lut ca.Sta.Graph.ca_arc tr_out)
                         t.slew_.(iu) load
                     in
                     let s, ds_dslew, ds_dload =
                       Liberty.Lut.lookup_with_gradient
                         (slew_lut ca.Sta.Graph.ca_arc tr_out)
                         t.slew_.(iu) load
                     in
                     let wa = exp ((t.at_.(iu) +. d -. at_v) /. gamma) in
                     let ws = exp ((s -. slew_v) /. gamma) in
                     let g_contrib_at = wa *. t.g_at.(iv) in
                     let g_contrib_slew = ws *. t.g_slew.(iv) in
                     t.g_at.(iu) <- t.g_at.(iu) +. g_contrib_at;
                     t.g_slew.(iu) <-
                       t.g_slew.(iu)
                       +. (dd_dslew *. g_contrib_at)
                       +. (ds_dslew *. g_contrib_slew);
                     if net >= 0 then
                       t.g_root_load.(net) <-
                         t.g_root_load.(net)
                         +. (dd_dload *. g_contrib_at)
                         +. (ds_dload *. g_contrib_slew)
                   end)
                 (compatible ca.Sta.Graph.ca_arc.Liberty.sense tr_out))
             fanin
         end)
       both
   end);
  (* net arc *)
  if pin.Netlist.direction = Netlist.Input && pin.Netlist.net >= 0 then
    match
      (t.nets.Sta.Nets.trees.(pin.Netlist.net),
       Netlist.net_driver design pin.Netlist.net)
    with
    | Some _, Some u when u <> v ->
      List.iter
        (fun tr ->
          let iv = idx v tr and iu = idx u tr in
          if t.at_.(iv) > neg_infinity then begin
            t.g_at.(iu) <- t.g_at.(iu) +. t.g_at.(iv);
            t.g_net_delay.(v) <- t.g_net_delay.(v) +. t.g_at.(iv);
            let slew_v = Float.max 1e-9 t.slew_.(iv) in
            t.g_slew.(iu) <-
              t.g_slew.(iu) +. (t.slew_.(iu) /. slew_v *. t.g_slew.(iv));
            t.g_i2.(v) <- t.g_i2.(v) +. (t.g_slew.(iv) /. (2.0 *. slew_v))
          end)
        both
    | (None | Some _), (None | Some _) -> ()

let backward t ~w_tns ~w_wns ~grad_x ~grad_y =
  let g = t.graph in
  let design = g.Sta.Graph.design in
  let gamma = t.gamma_ in
  let npins = Netlist.num_pins design in
  let nnets = Netlist.num_nets design in
  let ncells = Netlist.num_cells design in
  if Array.length grad_x <> ncells || Array.length grad_y <> ncells then
    invalid_arg "Difftimer.backward: gradient size mismatch";
  Array.fill t.g_at 0 (2 * npins) 0.0;
  Array.fill t.g_slew 0 (2 * npins) 0.0;
  Array.fill t.g_net_delay 0 npins 0.0;
  Array.fill t.g_i2 0 npins 0.0;
  Array.fill t.g_root_load 0 nnets 0.0;
  (* seeds: d(objective)/d(endpoint slack), then through the
     per-transition smoothed min *)
  Array.iter
    (fun p ->
      let s = t.ep_slack.(p) in
      if s < infinity then begin
        let g_s =
          (w_tns *. -.softmin0_grad ~gamma s)
          +. (w_wns *. -.exp ((t.wns_smooth_ -. s) /. gamma))
        in
        List.iter
          (fun tr ->
            let i = idx p tr in
            if t.ep_slack_tr.(i) < infinity then begin
              let w_tr = exp ((s -. t.ep_slack_tr.(i)) /. gamma) in
              let g_tr = w_tr *. g_s in
              (* slack = period - setup(slew) - at *)
              t.g_at.(i) <- t.g_at.(i) -. g_tr;
              t.g_slew.(i) <- t.g_slew.(i) -. (t.ep_dsetup.(i) *. g_tr)
            end)
          both
      end)
    g.Sta.Graph.endpoints;
  (* reverse level sweep *)
  let levels = g.Sta.Graph.levels in
  for l = Array.length levels - 1 downto 0 do
    Array.iter (fun v -> backward_pin t v) levels.(l)
  done;
  (* per-net: Elmore adjoint, Steiner provenance, cell gradients *)
  Array.iteri
    (fun net entry ->
      match entry with
      | None -> ()
      | Some (tree, rc) ->
        let pins = design.Netlist.nets.(net).Netlist.net_pins in
        let nnodes = Steiner.node_count tree in
        let npins_net = tree.Steiner.pin_count in
        ensure_scratch t nnodes npins_net;
        let any = ref (t.g_root_load.(net) <> 0.0) in
        for k = 0 to nnodes - 1 do
          t.node_gd.(k) <- 0.0;
          t.node_gi2.(k) <- 0.0;
          t.node_gx.(k) <- 0.0;
          t.node_gy.(k) <- 0.0
        done;
        Array.iter
          (fun p ->
            let node = t.nets.Sta.Nets.tree_index.(p) in
            if t.g_net_delay.(p) <> 0.0 || t.g_i2.(p) <> 0.0 then begin
              t.node_gd.(node) <- t.g_net_delay.(p);
              t.node_gi2.(node) <- t.g_i2.(p);
              any := true
            end)
          pins;
        if !any then begin
          let sub n = Array.sub n 0 nnodes in
          let node_gd = sub t.node_gd and node_gi2 = sub t.node_gi2 in
          let node_gx = sub t.node_gx and node_gy = sub t.node_gy in
          Rc.backward rc ~g_delay:node_gd ~g_impulse2:node_gi2
            ~g_root_load:t.g_root_load.(net) ~node_gx ~node_gy;
          for k = 0 to npins_net - 1 do
            t.pin_gx.(k) <- 0.0;
            t.pin_gy.(k) <- 0.0
          done;
          let pin_gx = Array.sub t.pin_gx 0 npins_net in
          let pin_gy = Array.sub t.pin_gy 0 npins_net in
          Steiner.accumulate_pin_gradient tree ~node_gx ~node_gy ~pin_gx
            ~pin_gy;
          Array.iteri
            (fun k p ->
              let cell = design.Netlist.pins.(p).Netlist.cell in
              grad_x.(cell) <- grad_x.(cell) +. pin_gx.(k);
              grad_y.(cell) <- grad_y.(cell) +. pin_gy.(k))
            pins
        end)
    t.nets.Sta.Nets.trees
