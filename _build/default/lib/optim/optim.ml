type algorithm =
  | Sgd
  | Momentum of { beta : float }
  | Nesterov of { beta : float }
  | Adam of { beta1 : float; beta2 : float; epsilon : float }
  | Barzilai_borwein of { fallback : float }

let adam = Adam { beta1 = 0.9; beta2 = 0.999; epsilon = 1e-8 }

type t = {
  algorithm : algorithm;
  n : int;
  m1 : float array;  (* first moment / velocity; BB: previous params *)
  m2 : float array;  (* second moment (Adam); BB: previous grads *)
  mutable step_count : int;
}

let create algorithm ~n =
  if n < 0 then invalid_arg "Optim.create: negative size";
  { algorithm; n; m1 = Array.make n 0.0; m2 = Array.make n 0.0; step_count = 0 }

let reset t =
  Array.fill t.m1 0 t.n 0.0;
  Array.fill t.m2 0 t.n 0.0;
  t.step_count <- 0

let iterations t = t.step_count

let step t ~lr ~params ~grads ?mask () =
  if Array.length params <> t.n || Array.length grads <> t.n then
    invalid_arg "Optim.step: size mismatch";
  (match mask with
   | Some m when Array.length m <> t.n ->
     invalid_arg "Optim.step: mask size mismatch"
   | Some _ | None -> ());
  let active i = match mask with None -> true | Some m -> m.(i) in
  t.step_count <- t.step_count + 1;
  match t.algorithm with
  | Sgd ->
    for i = 0 to t.n - 1 do
      if active i then params.(i) <- params.(i) -. (lr *. grads.(i))
    done
  | Momentum { beta } ->
    for i = 0 to t.n - 1 do
      if active i then begin
        t.m1.(i) <- (beta *. t.m1.(i)) +. grads.(i);
        params.(i) <- params.(i) -. (lr *. t.m1.(i))
      end
    done
  | Nesterov { beta } ->
    for i = 0 to t.n - 1 do
      if active i then begin
        t.m1.(i) <- (beta *. t.m1.(i)) +. grads.(i);
        params.(i) <- params.(i) -. (lr *. (grads.(i) +. (beta *. t.m1.(i))))
      end
    done
  | Adam { beta1; beta2; epsilon } ->
    let k = float_of_int t.step_count in
    let c1 = 1.0 -. (beta1 ** k) and c2 = 1.0 -. (beta2 ** k) in
    for i = 0 to t.n - 1 do
      if active i then begin
        t.m1.(i) <- (beta1 *. t.m1.(i)) +. ((1.0 -. beta1) *. grads.(i));
        t.m2.(i) <- (beta2 *. t.m2.(i))
                    +. ((1.0 -. beta2) *. grads.(i) *. grads.(i));
        let m_hat = t.m1.(i) /. c1 in
        let v_hat = t.m2.(i) /. c2 in
        params.(i) <- params.(i) -. (lr *. m_hat /. (Float.sqrt v_hat +. epsilon))
      end
    done
  | Barzilai_borwein { fallback } ->
    (* step = |dp . dg| / (dg . dg) from the previous iterate *)
    let step =
      if t.step_count = 1 then lr *. fallback
      else begin
        let num = ref 0.0 and den = ref 0.0 in
        for i = 0 to t.n - 1 do
          if active i then begin
            let dp = params.(i) -. t.m1.(i) in
            let dg = grads.(i) -. t.m2.(i) in
            num := !num +. (dp *. dg);
            den := !den +. (dg *. dg)
          end
        done;
        if !den > 1e-30 && Float.abs !num > 1e-30 then
          Float.abs !num /. !den
        else lr *. fallback
      end
    in
    for i = 0 to t.n - 1 do
      if active i then begin
        t.m1.(i) <- params.(i);
        t.m2.(i) <- grads.(i);
        params.(i) <- params.(i) -. (step *. grads.(i))
      end
    done
