(** First-order optimisers for the placement objective (paper §3.6).

    The placer treats cell coordinates as trainable parameters of the
    "neural network" that is the design (Table 1's analogy), so the
    optimisers mirror standard deep-learning updates.  One optimiser
    instance owns the state for one parameter vector (e.g. all cell x
    coordinates). *)

type algorithm =
  | Sgd
  | Momentum of { beta : float }
  | Nesterov of { beta : float }
      (** the simplified Nesterov momentum update used by deep-learning
          frameworks: [v <- beta v + g; p <- p - lr (g + beta v)]. *)
  | Adam of { beta1 : float; beta2 : float; epsilon : float }
  | Barzilai_borwein of { fallback : float }
      (** steepest descent with the Barzilai-Borwein step size
          [|dp . dg| / |dg . dg|] estimated from the previous iterate
          (the self-tuning scheme popular in ePlace-family placers);
          [fallback] scales the caller's [lr] on the first step and
          whenever the estimate degenerates. *)

val adam : algorithm
(** Adam with the customary defaults (0.9, 0.999, 1e-8). *)

type t

val create : algorithm -> n:int -> t
val reset : t -> unit
(** Zero all moment estimates and the step counter. *)

val step :
  t -> lr:float -> params:float array -> grads:float array ->
  ?mask:bool array -> unit -> unit
(** Apply one update in place.  Entries where [mask] is false (e.g.
    fixed cells) are left untouched.
    @raise Invalid_argument on any length mismatch. *)

val iterations : t -> int
