(** A tiny lexer/parser toolkit shared by the repo's text formats
    (Liberty-lite cell libraries, Bookshelf-lite designs).

    The token language is fixed: identifiers, double-quoted strings,
    floating-point numbers, braces, semicolons and an arrow ([->]).
    ['#'] starts a line comment.  Parse errors raise [Failure] with a
    [line:column]-annotated message. *)

type token =
  | Tident of string
  | Tstring of string
  | Tnumber of float
  | Tlbrace
  | Trbrace
  | Tsemi
  | Tarrow
  | Teof

type lexer

val make_lexer : ?what:string -> string -> lexer
(** [what] names the format in error messages (default ["input"]). *)

val peek : lexer -> token
val advance : lexer -> unit
val error : lexer -> string -> 'a
(** Raise a positioned [Failure]. *)

val eat : lexer -> token -> string -> unit
(** [eat lx expected name] consumes [expected] or fails mentioning
    [name]. *)

val ident : lexer -> string
val string_ : lexer -> string
val number : lexer -> float
val bool_ : lexer -> bool
(** Parses the identifiers [true]/[false]. *)

val numbers_until_semi : lexer -> float array
(** Consume numbers up to (and including) the next [';']. *)

val block :
  lexer -> field:(lexer -> string -> unit) -> unit
(** [block lx ~field] consumes ['{'], then repeatedly reads an
    identifier and hands it to [field] until the matching ['}']. *)
