type t = {
  design : Netlist.t;
  mutable gamma_ : float;
  coords : float array;  (* scratch: pin coordinates of the current net *)
}

let create ?(gamma = 4.0) design =
  let max_degree =
    Array.fold_left
      (fun acc (net : Netlist.net) -> max acc (Array.length net.Netlist.net_pins))
      1 design.Netlist.nets
  in
  { design; gamma_ = gamma; coords = Array.make max_degree 0.0 }

let gamma t = t.gamma_
let set_gamma t g = t.gamma_ <- g
let hpwl t = Netlist.total_hpwl t.design

(* One axis of the WA model for one net.  Returns the smooth extent and
   accumulates d(extent)/d(coord_i) into [out] at the pins' cells.

   With the max-shifted exponentials, the positive (max-like) part is
     S+ = sum x_i e_i / sum e_i,   e_i = exp ((x_i - M) / g)
   and its partial derivative is
     dS+/dx_i = e_i (1 + (x_i - S+) / g) / sum e_i,
   symmetrically for the min-like part with negated exponents. *)
let axis_wa t (pins : int array) coord_of weight out =
  let n = Array.length pins in
  let g = t.gamma_ in
  let xs = t.coords in
  let lo = ref infinity and hi = ref neg_infinity in
  for k = 0 to n - 1 do
    let v = coord_of pins.(k) in
    xs.(k) <- v;
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  let sum_ep = ref 0.0 and sum_xep = ref 0.0 in
  let sum_em = ref 0.0 and sum_xem = ref 0.0 in
  for k = 0 to n - 1 do
    let ep = exp ((xs.(k) -. !hi) /. g) in
    let em = exp ((!lo -. xs.(k)) /. g) in
    sum_ep := !sum_ep +. ep;
    sum_xep := !sum_xep +. (xs.(k) *. ep);
    sum_em := !sum_em +. em;
    sum_xem := !sum_xem +. (xs.(k) *. em)
  done;
  let s_plus = !sum_xep /. !sum_ep in
  let s_minus = !sum_xem /. !sum_em in
  for k = 0 to n - 1 do
    let ep = exp ((xs.(k) -. !hi) /. g) in
    let em = exp ((!lo -. xs.(k)) /. g) in
    let d_plus = ep *. (1.0 +. ((xs.(k) -. s_plus) /. g)) /. !sum_ep in
    let d_minus = em *. (1.0 -. ((xs.(k) -. s_minus) /. g)) /. !sum_em in
    let cell = t.design.Netlist.pins.(pins.(k)).Netlist.cell in
    out.(cell) <- out.(cell) +. (weight *. (d_plus -. d_minus))
  done;
  s_plus -. s_minus

let evaluate t ?(weighted = true) ~grad_x ~grad_y () =
  let ncells = Netlist.num_cells t.design in
  if Array.length grad_x <> ncells || Array.length grad_y <> ncells then
    invalid_arg "Wirelength.evaluate: gradient size mismatch";
  let total = ref 0.0 in
  Array.iter
    (fun (net : Netlist.net) ->
      let pins = net.Netlist.net_pins in
      if Array.length pins >= 2 then begin
        let w = if weighted then net.Netlist.weight else 1.0 in
        let wx =
          axis_wa t pins (fun p -> Netlist.pin_x t.design p) w grad_x
        in
        let wy =
          axis_wa t pins (fun p -> Netlist.pin_y t.design p) w grad_y
        in
        total := !total +. (w *. (wx +. wy))
      end)
    t.design.Netlist.nets;
  !total
