module Table = struct
  type t = {
    headers : string list;
    arity : int;
    mutable rows : string list list;  (* reverse order *)
  }

  let create headers =
    { headers; arity = List.length headers; rows = [] }

  let add_row t row =
    if List.length row <> t.arity then
      invalid_arg "Report.Table.add_row: arity mismatch";
    t.rows <- row :: t.rows

  let columns t = t.headers :: List.rev t.rows

  let widths t =
    let w = Array.make t.arity 0 in
    List.iter
      (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)))
      (columns t);
    w

  let render t =
    let w = widths t in
    let b = Buffer.create 1024 in
    let line cells =
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string b "  ";
          Buffer.add_string b cell;
          Buffer.add_string b (String.make (w.(i) - String.length cell) ' '))
        cells;
      Buffer.add_char b '\n'
    in
    line t.headers;
    Buffer.add_string b
      (String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w)));
    Buffer.add_char b '\n';
    List.iter line (List.rev t.rows);
    Buffer.contents b

  let render_markdown t =
    let b = Buffer.create 1024 in
    let line cells =
      Buffer.add_string b "| ";
      Buffer.add_string b (String.concat " | " cells);
      Buffer.add_string b " |\n"
    in
    line t.headers;
    line (List.map (fun _ -> "---") t.headers);
    List.iter line (List.rev t.rows);
    Buffer.contents b

  let render_csv t =
    let escape cell =
      if String.contains cell ',' || String.contains cell '"' then
        "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
      else cell
    in
    String.concat "\n"
      (List.map (fun row -> String.concat "," (List.map escape row)) (columns t))
    ^ "\n"
end

let geometric_mean values =
  match values with
  | [] -> 0.0
  | _ :: _ ->
    let log_sum =
      List.fold_left (fun acc v -> acc +. log (Float.max 1e-30 v)) 0.0 values
    in
    exp (log_sum /. float_of_int (List.length values))

let ratio_string r = Printf.sprintf "%.3f" r

let si ?(digits = 3) v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1e6 || (Float.abs v < 1e-3 && v <> 0.0) then
    Printf.sprintf "%.*e" digits v
  else Printf.sprintf "%.*f" digits v

module Paper = struct
  type table3_row = {
    bench : string;
    dp_wns : float;
    dp_tns : float;
    dp_hpwl : float;
    dp_runtime : float;
    nw_wns : float;
    nw_tns : float;
    nw_hpwl : float;
    nw_runtime : float;
    ours_wns : float;
    ours_tns : float;
    ours_hpwl : float;
    ours_runtime : float;
  }

  (* Table 3 of the paper, verbatim. WNS in 10^3 ps, TNS in 10^5 ps,
     HPWL in 10^6, runtime in seconds. *)
  let table3 =
    [ { bench = "superblue1";
        dp_wns = -18.866; dp_tns = -262.441; dp_hpwl = 422.0; dp_runtime = 79.48;
        nw_wns = -14.103; nw_tns = -85.032; nw_hpwl = 443.1; nw_runtime = 471.77;
        ours_wns = -10.770; ours_tns = -74.854; ours_hpwl = 423.8; ours_runtime = 268.31 };
      { bench = "superblue3";
        dp_wns = -27.648; dp_tns = -76.644; dp_hpwl = 478.2; dp_runtime = 72.96;
        nw_wns = -16.434; nw_tns = -54.742; nw_hpwl = 482.4; nw_runtime = 451.22;
        ours_wns = -12.374; ours_tns = -39.430; ours_hpwl = 478.4; ours_runtime = 266.65 };
      { bench = "superblue4";
        dp_wns = -22.041; dp_tns = -290.881; dp_hpwl = 312.0; dp_runtime = 52.21;
        nw_wns = -12.781; nw_tns = -144.380; nw_hpwl = 335.9; nw_runtime = 283.64;
        ours_wns = -8.492; ours_tns = -82.924; ours_hpwl = 312.2; ours_runtime = 156.36 };
      { bench = "superblue5";
        dp_wns = -48.918; dp_tns = -157.816; dp_hpwl = 488.3; dp_runtime = 116.69;
        nw_wns = -26.760; nw_tns = -95.782; nw_hpwl = 556.2; nw_runtime = 772.75;
        ours_wns = -25.212; ours_tns = -108.076; ours_hpwl = 488.7; ours_runtime = 259.26 };
      { bench = "superblue7";
        dp_wns = -19.751; dp_tns = -141.548; dp_hpwl = 604.3; dp_runtime = 125.57;
        nw_wns = -15.216; nw_tns = -63.863; nw_hpwl = 604.0; nw_runtime = 774.32;
        ours_wns = -15.216; ours_tns = -46.426; ours_hpwl = 602.1; ours_runtime = 450.85 };
      { bench = "superblue10";
        dp_wns = -26.099; dp_tns = -731.941; dp_hpwl = 935.9; dp_runtime = 205.92;
        nw_wns = -31.880; nw_tns = -768.748; nw_hpwl = 1036.7; nw_runtime = 859.28;
        ours_wns = -21.974; ours_tns = -558.054; ours_hpwl = 934.4; ours_runtime = 465.24 };
      { bench = "superblue16";
        dp_wns = -17.711; dp_tns = -453.566; dp_hpwl = 435.8; dp_runtime = 63.59;
        nw_wns = -12.112; nw_tns = -124.181; nw_hpwl = 448.1; nw_runtime = 335.10;
        ours_wns = -10.854; ours_tns = -87.026; ours_hpwl = 485.1; ours_runtime = 217.65 };
      { bench = "superblue18";
        dp_wns = -20.288; dp_tns = -96.756; dp_hpwl = 243.0; dp_runtime = 27.55;
        nw_wns = -11.871; nw_tns = -47.246; nw_hpwl = 253.6; nw_runtime = 174.07;
        ours_wns = -7.987; ours_tns = -19.314; ours_hpwl = 243.6; ours_runtime = 156.99 } ]

  type table2_row = { t2_bench : string; t2_cells : int; t2_nets : int; t2_pins : int }

  let table2 =
    [ { t2_bench = "superblue1"; t2_cells = 1209716; t2_nets = 1215710; t2_pins = 3767494 };
      { t2_bench = "superblue3"; t2_cells = 1213253; t2_nets = 1224979; t2_pins = 3905321 };
      { t2_bench = "superblue4"; t2_cells = 795645; t2_nets = 802513; t2_pins = 2497940 };
      { t2_bench = "superblue5"; t2_cells = 1086888; t2_nets = 1100825; t2_pins = 3246878 };
      { t2_bench = "superblue7"; t2_cells = 1931639; t2_nets = 1933945; t2_pins = 6372094 };
      { t2_bench = "superblue10"; t2_cells = 1876103; t2_nets = 1898119; t2_pins = 5560506 };
      { t2_bench = "superblue16"; t2_cells = 981559; t2_nets = 999902; t2_pins = 3013268 };
      { t2_bench = "superblue18"; t2_cells = 768068; t2_nets = 771542; t2_pins = 2559143 } ]

  let avg_ratio_wns = function `Dreamplace -> 1.897 | `Net_weighting -> 1.282
  let avg_ratio_tns = function `Dreamplace -> 3.125 | `Net_weighting -> 1.472

  let avg_ratio_runtime = function
    | `Dreamplace -> 0.318
    | `Net_weighting -> 1.807
end
