(** Result-table rendering and the paper's published numbers.

    The bench harness regenerates each table/figure of the paper and
    prints it next to the published values so the reproduction's *shape*
    (who wins, by roughly what factor) can be checked at a glance. *)

(** Monospace/markdown table builder. *)
module Table : sig
  type t

  val create : string list -> t
  (** [create headers]. *)

  val add_row : t -> string list -> unit
  (** @raise Invalid_argument if the arity differs from the header. *)

  val render : t -> string
  (** Aligned plain-text rendering with a header rule. *)

  val render_markdown : t -> string

  val render_csv : t -> string
end

val geometric_mean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val ratio_string : float -> string
(** Format a ratio like ["1.282"]. *)

val si : ?digits:int -> float -> string
(** Compact numeric formatting for table cells. *)

(** The published evaluation numbers (Table 2 and Table 3 of the paper),
    used as reference columns in bench output and EXPERIMENTS.md. *)
module Paper : sig
  type table3_row = {
    bench : string;
    dp_wns : float;       (** DREAMPlace [16] WNS, x10^3 ps. *)
    dp_tns : float;       (** x10^5 ps. *)
    dp_hpwl : float;      (** x10^6. *)
    dp_runtime : float;   (** seconds. *)
    nw_wns : float;       (** net weighting [24]. *)
    nw_tns : float;
    nw_hpwl : float;
    nw_runtime : float;
    ours_wns : float;
    ours_tns : float;
    ours_hpwl : float;
    ours_runtime : float;
  }

  val table3 : table3_row list

  type table2_row = { t2_bench : string; t2_cells : int; t2_nets : int; t2_pins : int }

  val table2 : table2_row list

  val avg_ratio_wns : [ `Dreamplace | `Net_weighting ] -> float
  (** Published average WNS ratio vs. "ours" (1.897 and 1.282). *)

  val avg_ratio_tns : [ `Dreamplace | `Net_weighting ] -> float
  val avg_ratio_runtime : [ `Dreamplace | `Net_weighting ] -> float
end
