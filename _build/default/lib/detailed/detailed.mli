(** Detailed placement: legality-preserving local refinement.

    The paper's pipeline is GP -> LG -> DP (§1); its contribution is in
    GP, but a complete flow needs the refinement step, so this module
    implements the two classic wirelength-driven local moves on a
    legalised placement:

    - {b window reordering}: permute up to [window] consecutive cells of
      a row inside their combined span (widths are preserved, so any
      permutation re-packs without overlap), keeping the best HPWL;
    - {b global swap}: exchange two equal-width cells from different
      locations when that shortens the nets incident to either.

    Both moves are greedy and deterministic; passes repeat until no move
    improves or [passes] is exhausted.  Legality (no overlaps, cells on
    rows) is preserved exactly. *)

type stats = {
  passes_run : int;
  reorder_moves : int;
  swap_moves : int;
  hpwl_before : float;
  hpwl_after : float;
}

val refine : ?passes:int -> ?window:int -> Netlist.t -> stats
(** [refine design] improves a {e legalised} placement in place.
    [passes] defaults to 3, [window] to 3 (window sizes above 4 get
    expensive: all permutations are tried).
    @raise Invalid_argument if [window < 2]. *)

val pp_stats : Format.formatter -> stats -> unit
