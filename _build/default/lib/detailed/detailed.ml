type stats = {
  passes_run : int;
  reorder_moves : int;
  swap_moves : int;
  hpwl_before : float;
  hpwl_after : float;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>passes: %d@,reorder moves: %d@,swap moves: %d@,hpwl: %.4e -> %.4e \
     (%+.2f%%)@]"
    s.passes_run s.reorder_moves s.swap_moves s.hpwl_before s.hpwl_after
    (100.0 *. (s.hpwl_after -. s.hpwl_before) /. Float.max 1e-9 s.hpwl_before)

(* HPWL restricted to the nets touching a set of cells: the only part a
   local move can change. *)
let incident_nets design cells =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Array.iter
        (fun p ->
          let net = design.Netlist.pins.(p).Netlist.net in
          if net >= 0 then Hashtbl.replace seen net ())
        design.Netlist.cells.(c).Netlist.cell_pins)
    cells;
  Hashtbl.fold (fun net () acc -> net :: acc) seen []

let hpwl_of_nets design nets =
  List.fold_left (fun acc n -> acc +. Netlist.net_hpwl design n) 0.0 nets

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* ---- window reordering within one row ---- *)

(* [slots] are cell ids of one row sorted by x; try every permutation of
   the cells in [slots.(i .. i+w-1)], left-packed inside their original
   span, and keep the best.  Returns true when a strictly better
   arrangement was applied. *)
let try_window design slots i w =
  let ids = Array.to_list (Array.sub slots i w) in
  let cells = List.map (fun c -> design.Netlist.cells.(c)) ids in
  let left =
    match cells with
    | first :: _ -> first.Netlist.x -. (first.Netlist.width /. 2.0)
    | [] -> 0.0
  in
  let nets = incident_nets design ids in
  let saved = List.map (fun (c : Netlist.cell) -> (c, c.Netlist.x)) cells in
  let base = hpwl_of_nets design nets in
  let apply order =
    let cursor = ref left in
    List.iter
      (fun (c : Netlist.cell) ->
        c.Netlist.x <- !cursor +. (c.Netlist.width /. 2.0);
        cursor := !cursor +. c.Netlist.width)
      order
  in
  let best = ref base and best_order = ref None in
  List.iter
    (fun order ->
      apply order;
      let h = hpwl_of_nets design nets in
      if h < !best -. 1e-9 then begin
        best := h;
        best_order := Some order
      end)
    (permutations cells);
  match !best_order with
  | None ->
    List.iter (fun ((c : Netlist.cell), x) -> c.Netlist.x <- x) saved;
    false
  | Some order ->
    apply order;
    (* keep the slot array sorted by x *)
    let slice = Array.sub slots i w in
    Array.sort
      (fun a b ->
        Float.compare design.Netlist.cells.(a).Netlist.x
          design.Netlist.cells.(b).Netlist.x)
      slice;
    Array.blit slice 0 slots i w;
    true

(* ---- equal-width global swap ---- *)

let try_swap design a b =
  let ca = design.Netlist.cells.(a) and cb = design.Netlist.cells.(b) in
  let nets = incident_nets design [ a; b ] in
  let before = hpwl_of_nets design nets in
  let ax = ca.Netlist.x and ay = ca.Netlist.y in
  ca.Netlist.x <- cb.Netlist.x;
  ca.Netlist.y <- cb.Netlist.y;
  cb.Netlist.x <- ax;
  cb.Netlist.y <- ay;
  if hpwl_of_nets design nets < before -. 1e-9 then true
  else begin
    cb.Netlist.x <- ca.Netlist.x;
    cb.Netlist.y <- ca.Netlist.y;
    ca.Netlist.x <- ax;
    ca.Netlist.y <- ay;
    false
  end

(* Where the incident nets would like this cell to be: the center of the
   bounding box of its nets' other pins. *)
let desired_position design c =
  let bbox = ref Geometry.Bbox.empty in
  Array.iter
    (fun p ->
      let net = design.Netlist.pins.(p).Netlist.net in
      if net >= 0 then
        Array.iter
          (fun q ->
            if design.Netlist.pins.(q).Netlist.cell <> c then
              bbox :=
                Geometry.Bbox.add_xy !bbox (Netlist.pin_x design q)
                  (Netlist.pin_y design q))
          design.Netlist.nets.(net).Netlist.net_pins)
    design.Netlist.cells.(c).Netlist.cell_pins;
  Option.map Geometry.Rect.center (Geometry.Bbox.to_rect !bbox)

let refine ?(passes = 3) ?(window = 3) design =
  if window < 2 then invalid_arg "Detailed.refine: window must be >= 2";
  let hpwl_before = Netlist.total_hpwl design in
  let rh = design.Netlist.row_height in
  let region = design.Netlist.region in
  (* bucket movable cells by row *)
  let nrows =
    max 1 (int_of_float (Float.floor (Geometry.Rect.height region /. rh)))
  in
  let row_of (c : Netlist.cell) =
    let r =
      int_of_float ((c.Netlist.y -. region.Geometry.Rect.ly) /. rh)
    in
    max 0 (min (nrows - 1) r)
  in
  let buckets = Array.make nrows [] in
  List.iter
    (fun i ->
      let c = design.Netlist.cells.(i) in
      buckets.(row_of c) <- i :: buckets.(row_of c))
    (Netlist.movable_cells design);
  let rows =
    Array.map
      (fun ids ->
        let arr = Array.of_list ids in
        Array.sort
          (fun a b ->
            Float.compare design.Netlist.cells.(a).Netlist.x
              design.Netlist.cells.(b).Netlist.x)
          arr;
        arr)
      buckets
  in
  let reorder_moves = ref 0 and swap_moves = ref 0 in
  let passes_run = ref 0 in
  let improved = ref true in
  while !improved && !passes_run < passes do
    improved := false;
    incr passes_run;
    (* phase 1: window reordering *)
    Array.iter
      (fun slots ->
        let n = Array.length slots in
        for i = 0 to n - window do
          if try_window design slots i window then begin
            incr reorder_moves;
            improved := true
          end
        done)
      rows;
    (* phase 2: equal-width swaps toward each cell's desired position.
       The two cells exchange their exact slots, so each replaces the
       other in its row array and x-sortedness is preserved. *)
    let index_of arr v =
      let n = Array.length arr in
      let rec find i = if i >= n then -1 else if arr.(i) = v then i else find (i + 1) in
      find 0
    in
    let swap_entries row_a row_b a b =
      let ia = index_of rows.(row_a) a and ib = index_of rows.(row_b) b in
      if ia >= 0 && ib >= 0 then begin
        rows.(row_a).(ia) <- b;
        rows.(row_b).(ib) <- a
      end
    in
    Array.iteri
      (fun a_row slots ->
        Array.iter
          (fun a ->
            let ca = design.Netlist.cells.(a) in
            if row_of ca = a_row then
              match desired_position design a with
              | None -> ()
              | Some want ->
                let target_row =
                  max 0
                    (min (nrows - 1)
                       (int_of_float
                          ((want.Geometry.Point.y -. region.Geometry.Rect.ly)
                           /. rh)))
                in
                let candidates = rows.(target_row) in
                (* nearest equal-width candidate to the desired x *)
                let best = ref None in
                Array.iter
                  (fun b ->
                    if b <> a then begin
                      let cb = design.Netlist.cells.(b) in
                      if Float.abs (cb.Netlist.width -. ca.Netlist.width) < 1e-9
                      then begin
                        let d =
                          Float.abs (cb.Netlist.x -. want.Geometry.Point.x)
                        in
                        match !best with
                        | Some (bd, _) when bd <= d -> ()
                        | Some _ | None -> best := Some (d, b)
                      end
                    end)
                  candidates;
                (match !best with
                 | Some (_, b) when b <> a ->
                   if try_swap design a b then begin
                     incr swap_moves;
                     improved := true;
                     swap_entries a_row target_row a b
                   end
                 | Some _ | None -> ()))
          (Array.copy slots))
      rows
  done;
  { passes_run = !passes_run;
    reorder_moves = !reorder_moves;
    swap_moves = !swap_moves;
    hpwl_before;
    hpwl_after = Netlist.total_hpwl design }
