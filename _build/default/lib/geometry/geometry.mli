(** Planar geometry primitives shared by every placement subsystem.

    Distances are in microns; the origin is the lower-left corner of the
    placement region.  All types are immutable. *)

(** A point in the plane. *)
module Point : sig
  type t = { x : float; y : float }

  val make : float -> float -> t
  val zero : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : float -> t -> t
  val midpoint : t -> t -> t

  val manhattan : t -> t -> float
  (** [manhattan a b] is the rectilinear (L1) distance between [a] and [b]. *)

  val euclidean : t -> t -> float
  val equal : ?eps:float -> t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** An axis-aligned rectangle given by its lower-left and upper-right
    corners.  Degenerate (zero-area) rectangles are allowed. *)
module Rect : sig
  type t = { lx : float; ly : float; hx : float; hy : float }

  val make : lx:float -> ly:float -> hx:float -> hy:float -> t
  (** @raise Invalid_argument if [hx < lx] or [hy < ly]. *)

  val of_center : Point.t -> width:float -> height:float -> t
  val width : t -> float
  val height : t -> float
  val area : t -> float
  val center : t -> Point.t
  val contains : t -> Point.t -> bool
  val intersect : t -> t -> t option
  val overlap_area : t -> t -> float
  val union : t -> t -> t
  val translate : t -> dx:float -> dy:float -> t
  val clamp_point : t -> Point.t -> Point.t
  (** [clamp_point r p] is the point of [r] closest to [p]. *)

  val half_perimeter : t -> float
  val equal : ?eps:float -> t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Bounding box accumulation over point streams. *)
module Bbox : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val add : t -> Point.t -> t
  val add_xy : t -> float -> float -> t
  val of_points : Point.t list -> t
  val to_rect : t -> Rect.t option
  val half_perimeter : t -> float
  (** Half-perimeter of the box; 0 when fewer than one point was added. *)
end

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi v] limits [v] to the interval [[lo, hi]]. *)

val lerp : float -> float -> float -> float
(** [lerp a b t] is [a +. t *. (b -. a)]. *)

val close : ?eps:float -> float -> float -> bool
(** Absolute/relative tolerance comparison (default [eps] 1e-9). *)
