let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v
let lerp a b t = a +. (t *. (b -. a))

let close ?(eps = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= (eps *. scale)

module Point = struct
  type t = { x : float; y : float }

  let make x y = { x; y }
  let zero = { x = 0.0; y = 0.0 }
  let add a b = { x = a.x +. b.x; y = a.y +. b.y }
  let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
  let scale k p = { x = k *. p.x; y = k *. p.y }
  let midpoint a b = { x = 0.5 *. (a.x +. b.x); y = 0.5 *. (a.y +. b.y) }
  let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

  let euclidean a b =
    let dx = a.x -. b.x and dy = a.y -. b.y in
    Float.sqrt ((dx *. dx) +. (dy *. dy))

  let equal ?eps a b = close ?eps a.x b.x && close ?eps a.y b.y
  let pp ppf p = Format.fprintf ppf "(%g, %g)" p.x p.y
end

module Rect = struct
  type t = { lx : float; ly : float; hx : float; hy : float }

  let make ~lx ~ly ~hx ~hy =
    if hx < lx || hy < ly then invalid_arg "Geometry.Rect.make: inverted corners";
    { lx; ly; hx; hy }

  let of_center (c : Point.t) ~width ~height =
    if width < 0.0 || height < 0.0 then
      invalid_arg "Geometry.Rect.of_center: negative size";
    { lx = c.x -. (0.5 *. width);
      ly = c.y -. (0.5 *. height);
      hx = c.x +. (0.5 *. width);
      hy = c.y +. (0.5 *. height) }

  let width r = r.hx -. r.lx
  let height r = r.hy -. r.ly
  let area r = width r *. height r
  let center r = Point.make (0.5 *. (r.lx +. r.hx)) (0.5 *. (r.ly +. r.hy))

  let contains r (p : Point.t) =
    p.x >= r.lx && p.x <= r.hx && p.y >= r.ly && p.y <= r.hy

  let intersect a b =
    let lx = Float.max a.lx b.lx and ly = Float.max a.ly b.ly in
    let hx = Float.min a.hx b.hx and hy = Float.min a.hy b.hy in
    if hx >= lx && hy >= ly then Some { lx; ly; hx; hy } else None

  let overlap_area a b =
    match intersect a b with None -> 0.0 | Some r -> area r

  let union a b =
    { lx = Float.min a.lx b.lx;
      ly = Float.min a.ly b.ly;
      hx = Float.max a.hx b.hx;
      hy = Float.max a.hy b.hy }

  let translate r ~dx ~dy =
    { lx = r.lx +. dx; ly = r.ly +. dy; hx = r.hx +. dx; hy = r.hy +. dy }

  let clamp_point r (p : Point.t) =
    Point.make (clamp ~lo:r.lx ~hi:r.hx p.x) (clamp ~lo:r.ly ~hi:r.hy p.y)

  let half_perimeter r = width r +. height r

  let equal ?eps a b =
    close ?eps a.lx b.lx && close ?eps a.ly b.ly
    && close ?eps a.hx b.hx && close ?eps a.hy b.hy

  let pp ppf r =
    Format.fprintf ppf "[%g, %g] x [%g, %g]" r.lx r.hx r.ly r.hy
end

module Bbox = struct
  type t =
    | Empty
    | Box of Rect.t

  let empty = Empty
  let is_empty = function Empty -> true | Box _ -> false

  let add_xy t x y =
    match t with
    | Empty -> Box { Rect.lx = x; ly = y; hx = x; hy = y }
    | Box r ->
      Box { Rect.lx = Float.min r.lx x;
            ly = Float.min r.ly y;
            hx = Float.max r.hx x;
            hy = Float.max r.hy y }

  let add t (p : Point.t) = add_xy t p.x p.y
  let of_points points = List.fold_left add Empty points
  let to_rect = function Empty -> None | Box r -> Some r

  let half_perimeter = function
    | Empty -> 0.0
    | Box r -> Rect.half_perimeter r
end
