(** Row-based Tetris legalisation.

    Global placement leaves small overlaps; before final timing scoring
    the cells are snapped into non-overlapping row sites.  The classic
    Tetris sweep processes cells left to right and greedily packs each
    one into the row that minimises its displacement.  This is the "LG"
    step of the GP -> LG -> DP pipeline described in the paper's
    introduction (the paper's contribution itself is in GP; legalisation
    is shared by all compared placers). *)

type stats = {
  moved_cells : int;
  total_displacement : float;  (** sum of rectilinear moves, um. *)
  max_displacement : float;
  average_displacement : float;
}

val legalize : Netlist.t -> stats
(** Snap every movable cell into rows of height [row_height] within the
    region, removing overlaps.  Cell positions are updated in place.
    Fixed cells are treated as blockages.
    @raise Failure if the cells cannot fit (utilisation too high). *)

val overlap_area : Netlist.t -> float
(** Total pairwise overlap area among movable cells (validation metric;
    0 after successful legalisation). *)

val pp_stats : Format.formatter -> stats -> unit
