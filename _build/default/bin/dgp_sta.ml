(* dgp_sta: exact static timing analysis of a design; prints the WNS/TNS
   summary and the most critical endpoints. *)

open Cmdliner

let top =
  let doc = "Number of critical endpoints to list." in
  Arg.(value & opt int 10 & info [ "top"; "n" ] ~docv:"N" ~doc)

let run lib_file design_file bench cells seed clock top =
  let lib = Dgp_common.load_library lib_file in
  let design, constraints =
    Dgp_common.load_design lib ~design_file ~bench ~cells ~seed
      ~clock_period:clock
  in
  let graph = Sta.Graph.build design lib constraints in
  let timer = Sta.Timer.create graph in
  let report = Sta.Timer.run timer in
  Format.printf "%a@.@." Sta.Timer.pp_report report;
  Printf.printf "%d most critical endpoints (setup):\n" top;
  let table =
    Report.Table.create [ "endpoint"; "setup slack"; "hold slack"; "AT(rise)"; "AT(fall)" ]
  in
  List.iteri
    (fun i (ep : Sta.Timer.endpoint_slack) ->
      if i < top then
        Report.Table.add_row table
          [ design.Netlist.pins.(ep.Sta.Timer.ep_pin).Netlist.pin_name;
            Printf.sprintf "%.1f" ep.Sta.Timer.ep_setup_slack;
            Printf.sprintf "%.1f" ep.Sta.Timer.ep_hold_slack;
            Printf.sprintf "%.1f" (Sta.Timer.at_late timer ep.Sta.Timer.ep_pin Sta.Rise);
            Printf.sprintf "%.1f" (Sta.Timer.at_late timer ep.Sta.Timer.ep_pin Sta.Fall) ])
    report.Sta.Timer.endpoint_slacks;
  print_string (Report.Table.render table);
  Printf.printf "\nworst path:\n";
  Format.printf "%a@." (Sta.Timer.pp_path graph) (Sta.Timer.critical_path timer)

let cmd =
  let doc = "exact static timing analysis" in
  Cmd.v
    (Cmd.info "dgp_sta" ~doc)
    Term.(
      const run $ Dgp_common.lib_file $ Dgp_common.design_file
      $ Dgp_common.bench_name $ Dgp_common.cells $ Dgp_common.seed
      $ Dgp_common.clock_period $ top)

let () = exit (Cmd.eval cmd)
