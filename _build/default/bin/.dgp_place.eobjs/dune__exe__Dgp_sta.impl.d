bin/dgp_sta.ml: Arg Array Cmd Cmdliner Dgp_common Format List Netlist Printf Report Sta Term
