bin/dgp_sta.mli:
