bin/dgp_common.ml: Arg Bookshelf Cmdliner Filename Liberty List Printf Sta String Verilog Workload
