bin/dgp_gen.mli:
