bin/dgp_gen.ml: Arg Bookshelf Cmd Cmdliner Dgp_common Filename Liberty List Netlist Printf Sys Term Workload
