bin/dgp_place.mli:
