bin/dgp_place.ml: Arg Bookshelf Cmd Cmdliner Core Dgp_common Format Legalize List Netlist Netweight Out_channel Parallel Printf Report Sta Term Viz
