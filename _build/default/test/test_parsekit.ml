(* Tests for the shared lexer toolkit. *)

open Parsekit

let token_name = function
  | Tident s -> "ident:" ^ s
  | Tstring s -> "string:" ^ s
  | Tnumber f -> Printf.sprintf "number:%g" f
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tsemi -> ";"
  | Tarrow -> "->"
  | Teof -> "eof"

let tokens_of src =
  let lx = make_lexer src in
  let rec loop acc =
    match peek lx with
    | Teof -> List.rev (token_name Teof :: acc)
    | t ->
      advance lx;
      loop (token_name t :: acc)
  in
  loop []

let test_token_stream () =
  Alcotest.(check (list string)) "mixed"
    [ "ident:foo"; "{"; "string:bar baz"; "number:-1.5"; ";"; "->"; "}"; "eof" ]
    (tokens_of "foo { \"bar baz\" -1.5 ; -> }")

let test_comments_and_ws () =
  Alcotest.(check (list string)) "comment skipped"
    [ "ident:a"; "number:2"; "eof" ]
    (tokens_of "a # everything here is ignored\n 2")

let test_scientific_numbers () =
  Alcotest.(check (list string)) "exponent"
    [ "number:15000"; "number:2.5e-07"; "eof" ]
    (tokens_of "1.5e4 2.5E-7")

let test_arrow_vs_minus () =
  Alcotest.(check (list string)) "negative number"
    [ "number:-3"; "->"; "eof" ]
    (tokens_of "-3 ->")

let test_helpers () =
  let lx = make_lexer "name \"s\" 4.5 true 1 2 3 ;" in
  Alcotest.(check string) "ident" "name" (ident lx);
  Alcotest.(check string) "string" "s" (string_ lx);
  Alcotest.(check (float 1e-12)) "number" 4.5 (number lx);
  Alcotest.(check bool) "bool" true (bool_ lx);
  let nums = numbers_until_semi lx in
  Alcotest.(check int) "nums" 3 (Array.length nums);
  Alcotest.(check (float 1e-12)) "nums content" 2.0 nums.(1)

let test_block () =
  let lx = make_lexer "{ alpha 1; beta 2; }" in
  let seen = ref [] in
  block lx ~field:(fun lx name ->
    let v = number lx in
    eat lx Tsemi "';'";
    seen := (name, v) :: !seen);
  Alcotest.(check int) "two fields" 2 (List.length !seen);
  Alcotest.(check (float 1e-12)) "alpha" 1.0 (List.assoc "alpha" !seen)

let test_error_position () =
  let lx = make_lexer ~what:"demo" "ok ok\n  $" in
  ignore (ident lx);
  match ident lx with
  | exception Failure msg ->
    Alcotest.(check bool) "mentions format" true
      (String.length msg >= 4 && String.sub msg 0 4 = "demo");
    Alcotest.(check bool) "mentions line 2" true
      (String.length msg > 0
       && (let found = ref false in
           String.iteri
             (fun i _ ->
               if i + 1 < String.length msg && msg.[i] = '2' && msg.[i + 1] = ':'
               then found := true)
             msg;
           !found))
  | _ -> Alcotest.fail "expected lexing failure"

let test_expect_mismatches () =
  let expect_fail f =
    match f () with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected Failure"
  in
  expect_fail (fun () -> ident (make_lexer "42"));
  expect_fail (fun () -> number (make_lexer "foo"));
  expect_fail (fun () -> string_ (make_lexer "foo"));
  expect_fail (fun () -> bool_ (make_lexer "maybe"));
  expect_fail (fun () -> eat (make_lexer "}") Tlbrace "'{'");
  expect_fail (fun () -> ignore (tokens_of "\"unterminated"))

let suite =
  [ Alcotest.test_case "token stream" `Quick test_token_stream;
    Alcotest.test_case "comments and whitespace" `Quick test_comments_and_ws;
    Alcotest.test_case "scientific numbers" `Quick test_scientific_numbers;
    Alcotest.test_case "arrow vs minus" `Quick test_arrow_vs_minus;
    Alcotest.test_case "helpers" `Quick test_helpers;
    Alcotest.test_case "block" `Quick test_block;
    Alcotest.test_case "error positions" `Quick test_error_position;
    Alcotest.test_case "expectation mismatches" `Quick test_expect_mismatches ]
