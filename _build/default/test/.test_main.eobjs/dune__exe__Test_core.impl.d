test/test_core.ml: Alcotest Array Core Float Geometry Liberty List Netlist Netweight Optim Sta Workload
