test/test_netlist.ml: Alcotest Array Geometry List Netlist
