test/test_difftimer.ml: Alcotest Array Difftimer Float Fun Geometry Liberty List Netlist Parallel Printf Seq Sta Workload
