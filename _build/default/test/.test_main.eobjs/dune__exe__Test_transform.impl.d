test/test_transform.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Transform Workload
