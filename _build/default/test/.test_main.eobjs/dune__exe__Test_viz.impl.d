test/test_viz.ml: Alcotest Array Filename Fun Geometry In_channel Liberty List Netlist Sta String Sys Viz Workload
