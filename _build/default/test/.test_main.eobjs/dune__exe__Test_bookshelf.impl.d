test/test_bookshelf.ml: Alcotest Array Bookshelf Filename Fun Liberty Netlist Sta Sys Workload
