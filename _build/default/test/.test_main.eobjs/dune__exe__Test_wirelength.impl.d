test/test_wirelength.ml: Alcotest Array Float Geometry Liberty Netlist Wirelength Workload
