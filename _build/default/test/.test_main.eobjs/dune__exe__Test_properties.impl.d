test/test_properties.ml: Array Bookshelf Detailed Difftimer Float Geometry Legalize Liberty List Netlist Printf QCheck2 QCheck_alcotest Rc Sta Steiner String Workload
