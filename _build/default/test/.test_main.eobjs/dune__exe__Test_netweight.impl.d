test/test_netweight.ml: Alcotest Array Liberty Netlist Netweight Sta Workload
