test/test_steiner.ml: Alcotest Array Float QCheck2 QCheck_alcotest Steiner Workload
