test/test_verilog.ml: Alcotest Array Core Filename Float Fun Liberty List Netlist Sta Sys Verilog Workload
