test/test_parsekit.ml: Alcotest Array List Parsekit Printf String
