test/test_sta.ml: Alcotest Array Float Geometry Liberty List Netlist Printf Rc Sta String Workload
