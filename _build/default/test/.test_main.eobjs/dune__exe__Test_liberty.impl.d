test/test_liberty.ml: Alcotest Array Float Liberty List QCheck2 QCheck_alcotest String
