test/test_density.ml: Alcotest Array Density Float Geometry Netlist Printf Workload
