test/test_rc.ml: Alcotest Array Float QCheck2 QCheck_alcotest Rc Steiner Workload
