test/test_parallel.ml: Alcotest Array Atomic Fun Parallel
