test/test_geometry.ml: Alcotest Bbox Float Geometry List Point QCheck2 QCheck_alcotest Rect
