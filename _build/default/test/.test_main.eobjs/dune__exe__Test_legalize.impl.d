test/test_legalize.ml: Alcotest Array Float Geometry Legalize Netlist Printf Workload
