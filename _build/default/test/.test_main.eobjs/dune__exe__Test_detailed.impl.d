test/test_detailed.ml: Alcotest Array Detailed Float Geometry Legalize Liberty Netlist Workload
