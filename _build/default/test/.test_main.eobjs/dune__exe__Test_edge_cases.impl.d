test/test_edge_cases.ml: Alcotest Array Bookshelf Bytes Char Core Difftimer Float Geometry Legalize Liberty List Netlist Printf Sta String Wirelength Workload
