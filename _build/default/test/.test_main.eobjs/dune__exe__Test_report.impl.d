test/test_report.ml: Alcotest Float List Report String
