test/test_optim.ml: Alcotest Array Float Optim
