test/test_workload.ml: Alcotest Array Bookshelf Float Geometry Hashtbl Liberty List Netlist Option Sta Workload
