(* Tests for the Tetris legaliser. *)

let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:60.0 ~hy:60.0

let random_design ?(rows = 1.5) ?(util = 0.5) seed n =
  let b = Netlist.Builder.create ~region ~row_height:rows "lg" in
  let rng = Workload.Rng.create seed in
  let target_area = util *. Geometry.Rect.area region in
  let area = ref 0.0 in
  let i = ref 0 in
  while !area < target_area && !i < n do
    let w = 0.8 +. Workload.Rng.float rng 2.0 in
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" !i)
         ~lib_cell:0 ~width:w ~height:rows
         ~x:(2.0 +. Workload.Rng.float rng 56.0)
         ~y:(2.0 +. Workload.Rng.float rng 56.0)
         ());
    area := !area +. (w *. rows);
    incr i
  done;
  Netlist.Builder.freeze b

let test_removes_overlap () =
  let d = random_design 3 5000 in
  Alcotest.(check bool) "initial overlap" true (Legalize.overlap_area d > 0.0);
  let _ = Legalize.legalize d in
  Alcotest.(check (float 1e-6)) "no overlap" 0.0 (Legalize.overlap_area d)

let test_rows_and_region () =
  let d = random_design 4 5000 in
  let _ = Legalize.legalize d in
  let rh = d.Netlist.row_height in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        (* y on a row center *)
        let k = (c.Netlist.y -. (rh /. 2.0)) /. rh in
        if Float.abs (k -. Float.round k) > 1e-6 then
          Alcotest.failf "cell %s not on a row (y=%f)" c.Netlist.cell_name
            c.Netlist.y;
        (* fully inside the region *)
        if c.Netlist.x -. (c.Netlist.width /. 2.0) < -1e-6
           || c.Netlist.x +. (c.Netlist.width /. 2.0) > 60.0 +. 1e-6
        then Alcotest.fail "cell outside region"
      end)
    d.Netlist.cells

let test_displacement_stats () =
  let d = random_design 5 5000 in
  let before = Netlist.copy_positions d in
  let s = Legalize.legalize d in
  Alcotest.(check bool) "some cells move" true (s.Legalize.moved_cells > 0);
  Alcotest.(check bool) "avg <= max" true
    (s.Legalize.average_displacement <= s.Legalize.max_displacement +. 1e-9);
  (* recompute displacement independently *)
  let xs, ys = before in
  let total = ref 0.0 in
  Array.iteri
    (fun i (c : Netlist.cell) ->
      if not c.Netlist.fixed then
        total := !total +. Float.abs (c.Netlist.x -. xs.(i))
                 +. Float.abs (c.Netlist.y -. ys.(i)))
    d.Netlist.cells;
  Alcotest.(check (float 1e-6)) "total displacement" !total
    s.Legalize.total_displacement

let test_fixed_untouched () =
  let b = Netlist.Builder.create ~region ~row_height:1.5 "fx" in
  let _ =
    Netlist.Builder.add_cell b ~name:"block" ~lib_cell:(-1) ~width:20.0
      ~height:20.0 ~x:30.0 ~y:30.0 ~fixed:true ()
  in
  for i = 0 to 199 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" i)
         ~lib_cell:0 ~width:1.5 ~height:1.5 ~x:30.0 ~y:30.0 ())
  done;
  let d = Netlist.Builder.freeze b in
  let _ = Legalize.legalize d in
  let block = d.Netlist.cells.(0) in
  Alcotest.(check (float 1e-12)) "fixed x" 30.0 block.Netlist.x;
  (* movable cells avoid the blockage *)
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        let r1 =
          Geometry.Rect.of_center
            (Geometry.Point.make c.Netlist.x c.Netlist.y)
            ~width:c.Netlist.width ~height:c.Netlist.height
        in
        let r2 =
          Geometry.Rect.of_center
            (Geometry.Point.make 30.0 30.0)
            ~width:20.0 ~height:20.0
        in
        if Geometry.Rect.overlap_area r1 r2 > 1e-6 then
          Alcotest.failf "cell %s overlaps the blockage" c.Netlist.cell_name
      end)
    d.Netlist.cells

let test_determinism () =
  let d1 = random_design 6 4000 in
  let d2 = random_design 6 4000 in
  let _ = Legalize.legalize d1 in
  let _ = Legalize.legalize d2 in
  Array.iteri
    (fun i (c : Netlist.cell) ->
      let c2 = d2.Netlist.cells.(i) in
      if c.Netlist.x <> c2.Netlist.x || c.Netlist.y <> c2.Netlist.y then
        Alcotest.fail "legalisation not deterministic")
    d1.Netlist.cells

let test_too_full_fails () =
  (* 120% utilisation cannot be legalised *)
  let b = Netlist.Builder.create ~region ~row_height:1.5 "full" in
  let area = ref 0.0 in
  let i = ref 0 in
  while !area < 1.2 *. Geometry.Rect.area region do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" !i)
         ~lib_cell:0 ~width:3.0 ~height:1.5 ~x:30.0 ~y:30.0 ());
    area := !area +. 4.5;
    incr i
  done;
  let d = Netlist.Builder.freeze b in
  match Legalize.legalize d with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure at 120% utilisation"

let test_already_legal_small_moves () =
  (* a design already sitting on rows only gets micro-adjustments *)
  let b = Netlist.Builder.create ~region ~row_height:1.5 "calm" in
  for i = 0 to 9 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" i)
         ~lib_cell:0 ~width:2.0 ~height:1.5
         ~x:(5.0 +. (4.0 *. float_of_int i))
         ~y:0.75 ())
  done;
  let d = Netlist.Builder.freeze b in
  let s = Legalize.legalize d in
  Alcotest.(check (float 1e-6)) "no movement" 0.0 s.Legalize.total_displacement

let suite =
  [ Alcotest.test_case "removes overlap" `Quick test_removes_overlap;
    Alcotest.test_case "rows and region" `Quick test_rows_and_region;
    Alcotest.test_case "displacement stats" `Quick test_displacement_stats;
    Alcotest.test_case "fixed cells untouched" `Quick test_fixed_untouched;
    Alcotest.test_case "deterministic" `Quick test_determinism;
    Alcotest.test_case "over-full fails" `Quick test_too_full_fails;
    Alcotest.test_case "already legal is stable" `Quick
      test_already_legal_small_moves ]
