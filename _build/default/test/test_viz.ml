(* Tests for placement visualisation. *)

let lib = Liberty.Synthetic.default ()

let sample () =
  let design, cons =
    Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 150 }
  in
  (design, Sta.Graph.build design lib cons)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let test_svg_basics () =
  let design, _ = sample () in
  let svg = Viz.Svg.render design in
  Alcotest.(check bool) "is svg" true (contains svg "<svg");
  Alcotest.(check bool) "closes" true (contains svg "</svg>");
  (* one rect per cell plus the frame *)
  let rects = ref 0 in
  String.iteri
    (fun i c ->
      if c = '<' && i + 5 <= String.length svg && String.sub svg i 5 = "<rect"
      then incr rects)
    svg;
  Alcotest.(check int) "rect count" (Netlist.num_cells design + 1) !rects

let test_svg_nets_and_path () =
  let design, graph = sample () in
  let timer = Sta.Timer.create graph in
  let _ = Sta.Timer.run timer in
  let path = Sta.Timer.critical_path timer in
  Alcotest.(check bool) "have a path" true (path <> []);
  let options =
    { Viz.Svg.default_options with
      Viz.Svg.draw_nets = true; highlight_path = path }
  in
  let svg = Viz.Svg.render ~options design in
  Alcotest.(check bool) "fly-lines drawn" true (contains svg "<line");
  Alcotest.(check bool) "path overlay drawn" true (contains svg "<polyline");
  (* without options, neither appears *)
  let plain = Viz.Svg.render design in
  Alcotest.(check bool) "no lines by default" false (contains plain "<line")

let test_svg_save () =
  let design, _ = sample () in
  let path = Filename.temp_file "dgp_viz" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Viz.Svg.save path design;
      let content = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check bool) "saved" true (contains content "</svg>"))

let test_ascii_density () =
  let design, _ = sample () in
  (* everything starts clustered: expect at least one dense glyph *)
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        c.Netlist.x <- 50.0;
        c.Netlist.y <- 50.0
      end)
    design.Netlist.cells;
  let map = Viz.Ascii.density_map ~columns:24 design in
  Alcotest.(check bool) "has overfull bin" true (contains map "#");
  Alcotest.(check bool) "has empty bins" true (contains map ".");
  (* every line is [columns] wide *)
  String.split_on_char '\n' map
  |> List.iter (fun line ->
    if line <> "" then Alcotest.(check int) "width" 24 (String.length line))

let test_ascii_fixed_marker () =
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:40.0 ~hy:40.0 in
  let b = Netlist.Builder.create ~region "blk" in
  let _ =
    Netlist.Builder.add_cell b ~name:"macro" ~lib_cell:(-1) ~width:10.0
      ~height:10.0 ~x:20.0 ~y:20.0 ~fixed:true ()
  in
  let d = Netlist.Builder.freeze b in
  let map = Viz.Ascii.density_map ~columns:8 d in
  Alcotest.(check bool) "fixed marker" true (contains map "@")

let suite =
  [ Alcotest.test_case "svg basics" `Quick test_svg_basics;
    Alcotest.test_case "svg nets and path" `Quick test_svg_nets_and_path;
    Alcotest.test_case "svg save" `Quick test_svg_save;
    Alcotest.test_case "ascii density" `Quick test_ascii_density;
    Alcotest.test_case "ascii fixed marker" `Quick test_ascii_fixed_marker ]
