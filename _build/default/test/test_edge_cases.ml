(* Failure injection and degenerate inputs across the whole stack: the
   engines must stay well-defined on designs a user can plausibly feed
   them. *)

let lib = Liberty.Synthetic.default ()
let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:60.0 ~hy:60.0

let lib_cell name =
  match Liberty.cell_index lib name with
  | Some i -> i
  | None -> Alcotest.failf "missing %s" name

let instance b name kind =
  let lc = lib.Liberty.lib_cells.(kind) in
  let cell =
    Netlist.Builder.add_cell b ~name ~lib_cell:kind ~width:lc.Liberty.lc_width
      ~height:lc.Liberty.lc_height ~x:30.0 ~y:30.0 ()
  in
  Array.mapi
    (fun j (lp : Liberty.lib_pin) ->
      Netlist.Builder.add_pin b ~cell
        ~name:(Printf.sprintf "%s/%s" name lp.Liberty.lp_name)
        ~direction:
          (match lp.Liberty.lp_direction with
           | Liberty.Lib_input -> Netlist.Input
           | Liberty.Lib_output -> Netlist.Output)
        ~lib_pin:j ())
    lc.Liberty.lc_pins

(* A design with logic but no constrained endpoint: one inverter whose
   output dangles and whose input dangles. *)
let test_no_endpoints () =
  let b = Netlist.Builder.create ~region "dangling" in
  let _ = instance b "u0" (lib_cell "INV_X1") in
  let d = Netlist.Builder.freeze b in
  let g = Sta.Graph.build d lib Sta.Constraints.default in
  let report = Sta.Timer.run (Sta.Timer.create g) in
  Alcotest.(check (float 1e-12)) "wns zero" 0.0 report.Sta.Timer.setup_wns;
  Alcotest.(check (float 1e-12)) "tns zero" 0.0 report.Sta.Timer.setup_tns;
  Alcotest.(check int) "no endpoints" 0
    (List.length report.Sta.Timer.endpoint_slacks);
  (* the differentiable engine agrees and produces zero gradients *)
  let dt = Difftimer.create g in
  let m = Difftimer.forward dt in
  Alcotest.(check int) "diff no endpoints" 0 m.Difftimer.endpoint_count;
  let gx = Array.make (Netlist.num_cells d) 0.0 in
  let gy = Array.make (Netlist.num_cells d) 0.0 in
  Difftimer.backward dt ~w_tns:1.0 ~w_wns:1.0 ~grad_x:gx ~grad_y:gy;
  Array.iter (fun v -> Alcotest.(check (float 1e-12)) "zero grad" 0.0 v) gx;
  (* critical path on an endpoint-less design is empty *)
  let timer = Sta.Timer.create g in
  let _ = Sta.Timer.run timer in
  Alcotest.(check int) "no path" 0 (List.length (Sta.Timer.critical_path timer))

let test_all_cells_fixed () =
  let b = Netlist.Builder.create ~region "frozen" in
  let c0 =
    Netlist.Builder.add_cell b ~name:"p0" ~lib_cell:(-1) ~width:2.0
      ~height:2.0 ~x:0.0 ~y:30.0 ~fixed:true ()
  in
  let p0 =
    Netlist.Builder.add_pin b ~cell:c0 ~name:"p0/P" ~direction:Netlist.Output ()
  in
  let c1 =
    Netlist.Builder.add_cell b ~name:"p1" ~lib_cell:(-1) ~width:2.0
      ~height:2.0 ~x:60.0 ~y:30.0 ~fixed:true ()
  in
  let p1 =
    Netlist.Builder.add_pin b ~cell:c1 ~name:"p1/P" ~direction:Netlist.Input ()
  in
  let _ = Netlist.Builder.add_net b ~name:"n" ~pins:[ p0; p1 ] in
  let d = Netlist.Builder.freeze b in
  let g = Sta.Graph.build d lib Sta.Constraints.default in
  (* nothing to place, but nothing crashes either *)
  let cfg = { Core.default_config with Core.max_iterations = 5; min_iterations = 0 } in
  let r = Core.run cfg g in
  Alcotest.(check bool) "ran" true (r.Core.res_iterations >= 1);
  Alcotest.(check (float 1e-9)) "pads untouched" 0.0 d.Netlist.cells.(0).Netlist.x;
  let lg = Legalize.legalize d in
  Alcotest.(check int) "nothing moved" 0 lg.Legalize.moved_cells

let test_single_movable_cell () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 1; sp_inputs = 2; sp_outputs = 2; sp_depth = 2 }
  in
  let design, cons = Workload.generate lib spec in
  let g = Sta.Graph.build design lib cons in
  let cfg =
    { Core.default_config with
      Core.mode = Core.Differentiable_timing Core.default_timing;
      max_iterations = 30; min_iterations = 0; stop_overflow = 1.0 }
  in
  let r = Core.run cfg g in
  Alcotest.(check bool) "finished" true (r.Core.res_iterations >= 1);
  let report, _ = Core.score g in
  Alcotest.(check bool) "finite" true (Float.is_finite report.Sta.Timer.setup_wns)

let test_coincident_cells_wirelength () =
  (* all pins at the same point: the WA model must stay finite *)
  let b = Netlist.Builder.create ~region "stack" in
  let mk i =
    let c = Netlist.Builder.add_cell b ~name:(Printf.sprintf "c%d" i)
        ~lib_cell:0 ~width:1.0 ~height:1.0 ~x:30.0 ~y:30.0 () in
    Netlist.Builder.add_pin b ~cell:c ~name:(Printf.sprintf "c%d/P" i)
      ~direction:(if i = 0 then Netlist.Output else Netlist.Input) ()
  in
  let pins = List.init 5 mk in
  let _ = Netlist.Builder.add_net b ~name:"n" ~pins in
  let d = Netlist.Builder.freeze b in
  let wl = Wirelength.create ~gamma:1.0 d in
  let gx = Array.make 5 0.0 and gy = Array.make 5 0.0 in
  let v = Wirelength.evaluate wl ~grad_x:gx ~grad_y:gy () in
  Alcotest.(check bool) "finite value" true (Float.is_finite v);
  Array.iter
    (fun g -> Alcotest.(check bool) "finite grad" true (Float.is_finite g))
    gx

let test_zero_length_net_timing () =
  (* driver and sink at the same location: zero wire delay, no NaNs *)
  let b = Netlist.Builder.create ~region "zl" in
  let pad =
    Netlist.Builder.add_cell b ~name:"pi" ~lib_cell:(-1) ~width:2.0
      ~height:2.0 ~x:30.0 ~y:30.0 ~fixed:true ()
  in
  let pp =
    Netlist.Builder.add_pin b ~cell:pad ~name:"pi/P" ~direction:Netlist.Output ()
  in
  let pins = instance b "u0" (lib_cell "BUF_X1") in
  let po =
    Netlist.Builder.add_cell b ~name:"po" ~lib_cell:(-1) ~width:2.0
      ~height:2.0 ~x:30.0 ~y:30.0 ~fixed:true ()
  in
  let pop =
    Netlist.Builder.add_pin b ~cell:po ~name:"po/P" ~direction:Netlist.Input ()
  in
  let _ = Netlist.Builder.add_net b ~name:"n1" ~pins:[ pp; pins.(0) ] in
  let _ = Netlist.Builder.add_net b ~name:"n2" ~pins:[ pins.(1); pop ] in
  let d = Netlist.Builder.freeze b in
  (* note: pad and cell are coincident by construction *)
  (match Netlist.cell_by_name d "u0" with
   | Some c -> c.Netlist.x <- 30.0; c.Netlist.y <- 30.0
   | None -> Alcotest.fail "u0");
  let g = Sta.Graph.build d lib Sta.Constraints.default in
  let report = Sta.Timer.run (Sta.Timer.create g) in
  Alcotest.(check bool) "finite wns" true (Float.is_finite report.Sta.Timer.setup_wns);
  let dt = Difftimer.create g in
  let m = Difftimer.forward dt in
  Alcotest.(check bool) "diff finite" true (Float.is_finite m.Difftimer.wns_smooth);
  let gx = Array.make (Netlist.num_cells d) 0.0 in
  let gy = Array.make (Netlist.num_cells d) 0.0 in
  Difftimer.backward dt ~w_tns:1.0 ~w_wns:1.0 ~grad_x:gx ~grad_y:gy;
  Array.iter
    (fun v -> Alcotest.(check bool) "grad finite" true (Float.is_finite v))
    gx

let test_bookshelf_fuzz_never_crashes () =
  (* random mutations of a valid file must either parse or raise
     Failure/Invalid_argument, never anything else *)
  let design, cons =
    Workload.generate lib { Workload.default_spec with Workload.sp_cells = 40 }
  in
  let src = Bookshelf.to_string design cons in
  let rng = Workload.Rng.create 99 in
  for _ = 1 to 200 do
    let b = Bytes.of_string src in
    for _ = 0 to 4 do
      let i = Workload.Rng.int rng (Bytes.length b) in
      Bytes.set b i (Char.chr (32 + Workload.Rng.int rng 95))
    done;
    match Bookshelf.of_string lib (Bytes.to_string b) with
    | _ -> ()
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
  done

let test_liberty_fuzz_never_crashes () =
  let src = Liberty.Io.to_string lib in
  let rng = Workload.Rng.create 123 in
  for _ = 1 to 100 do
    let start = Workload.Rng.int rng (String.length src - 600) in
    let truncated = String.sub src 0 (start + 600) in
    match Liberty.Io.of_string truncated with
    | _ -> ()
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
  done

let test_empty_design_stats () =
  let b = Netlist.Builder.create ~region "empty" in
  let d = Netlist.Builder.freeze b in
  let s = Netlist.Stats.compute d in
  Alcotest.(check int) "no cells" 0 s.Netlist.Stats.cells;
  Alcotest.(check (float 1e-12)) "hpwl" 0.0 (Netlist.total_hpwl d);
  let g = Sta.Graph.build d lib Sta.Constraints.default in
  let report = Sta.Timer.run (Sta.Timer.create g) in
  Alcotest.(check (float 1e-12)) "empty wns" 0.0 report.Sta.Timer.setup_wns

let suite =
  [ Alcotest.test_case "no endpoints" `Quick test_no_endpoints;
    Alcotest.test_case "all cells fixed" `Quick test_all_cells_fixed;
    Alcotest.test_case "single movable cell" `Quick test_single_movable_cell;
    Alcotest.test_case "coincident cells wirelength" `Quick
      test_coincident_cells_wirelength;
    Alcotest.test_case "zero-length net timing" `Quick test_zero_length_net_timing;
    Alcotest.test_case "bookshelf fuzz" `Quick test_bookshelf_fuzz_never_crashes;
    Alcotest.test_case "liberty fuzz" `Quick test_liberty_fuzz_never_crashes;
    Alcotest.test_case "empty design" `Quick test_empty_design_stats ]
