(* Tests for the netlist data model and its validating builder. *)

let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:50.0 ~hy:50.0

(* A small hand-built design: two cells and a pad wired in a chain. *)
let build_sample () =
  let b = Netlist.Builder.create ~region ~row_height:2.0 "sample" in
  let pad = Netlist.Builder.add_cell b ~name:"pi0" ~lib_cell:(-1) ~width:2.0
      ~height:2.0 ~x:0.0 ~y:25.0 ~fixed:true () in
  let pad_pin =
    Netlist.Builder.add_pin b ~cell:pad ~name:"pi0/P"
      ~direction:Netlist.Output ()
  in
  let u0 = Netlist.Builder.add_cell b ~name:"u0" ~lib_cell:0 ~width:1.0
      ~height:2.0 ~x:10.0 ~y:10.0 () in
  let u0_a =
    Netlist.Builder.add_pin b ~cell:u0 ~name:"u0/A" ~direction:Netlist.Input
      ~offset_x:(-0.3) ~offset_y:0.1 ~lib_pin:0 ()
  in
  let u0_y =
    Netlist.Builder.add_pin b ~cell:u0 ~name:"u0/Y" ~direction:Netlist.Output
      ~offset_x:0.3 ~lib_pin:1 ()
  in
  let u1 = Netlist.Builder.add_cell b ~name:"u1" ~lib_cell:0 ~width:1.0
      ~height:2.0 ~x:20.0 ~y:30.0 () in
  let u1_a =
    Netlist.Builder.add_pin b ~cell:u1 ~name:"u1/A" ~direction:Netlist.Input
      ~lib_pin:0 ()
  in
  let _ =
    Netlist.Builder.add_net b ~name:"n0" ~pins:[ u0_a; pad_pin ]
  in
  let _ = Netlist.Builder.add_net b ~name:"n1" ~pins:[ u1_a; u0_y ] in
  Netlist.Builder.freeze b

let test_freeze_shape () =
  let d = build_sample () in
  Alcotest.(check int) "cells" 3 (Netlist.num_cells d);
  Alcotest.(check int) "pins" 4 (Netlist.num_pins d);
  Alcotest.(check int) "nets" 2 (Netlist.num_nets d);
  (* driver is moved to the front of each net *)
  Array.iter
    (fun (net : Netlist.net) ->
      let first = d.Netlist.pins.(net.Netlist.net_pins.(0)) in
      Alcotest.(check bool)
        ("driver first on " ^ net.Netlist.net_name)
        true
        (first.Netlist.direction = Netlist.Output))
    d.Netlist.nets

let test_pin_positions () =
  let d = build_sample () in
  match Netlist.pin_by_name d "u0/A" with
  | None -> Alcotest.fail "missing pin"
  | Some p ->
    Alcotest.(check (float 1e-9)) "x" 9.7 (Netlist.pin_x d p.Netlist.pin_id);
    Alcotest.(check (float 1e-9)) "y" 10.1 (Netlist.pin_y d p.Netlist.pin_id);
    (* moving the owner moves the pin *)
    d.Netlist.cells.(p.Netlist.cell).Netlist.x <- 11.0;
    Alcotest.(check (float 1e-9)) "moved x" 10.7
      (Netlist.pin_x d p.Netlist.pin_id)

let test_net_queries () =
  let d = build_sample () in
  let n0 =
    match Netlist.net_by_name d "n0" with
    | Some n -> n.Netlist.net_id
    | None -> Alcotest.fail "n0 missing"
  in
  (match Netlist.net_driver d n0 with
   | Some p ->
     Alcotest.(check string) "driver" "pi0/P" d.Netlist.pins.(p).Netlist.pin_name
   | None -> Alcotest.fail "no driver");
  (match Netlist.net_sinks d n0 with
   | [ s ] ->
     Alcotest.(check string) "sink" "u0/A" d.Netlist.pins.(s).Netlist.pin_name
   | [] | _ :: _ -> Alcotest.fail "expected one sink");
  (* hpwl of n0: pad pin at (0, 25), u0/A at (9.7, 10.1) *)
  Alcotest.(check (float 1e-9)) "hpwl" (9.7 +. 14.9) (Netlist.net_hpwl d n0)

let test_total_hpwl_weighted () =
  let d = build_sample () in
  let base = Netlist.total_hpwl d in
  d.Netlist.nets.(0).Netlist.weight <- 3.0;
  let weighted = Netlist.total_hpwl ~weighted:true d in
  let n0_hpwl = Netlist.net_hpwl d 0 in
  Alcotest.(check (float 1e-9)) "weighted adds twice n0"
    (base +. (2.0 *. n0_hpwl)) weighted;
  Netlist.reset_weights d;
  Alcotest.(check (float 1e-9)) "reset" base (Netlist.total_hpwl ~weighted:true d)

let test_movable_fixed () =
  let d = build_sample () in
  Alcotest.(check int) "movable" 2 (List.length (Netlist.movable_cells d));
  Alcotest.(check int) "fixed" 1 (List.length (Netlist.fixed_cells d))

let test_positions_snapshot () =
  let d = build_sample () in
  let snap = Netlist.copy_positions d in
  d.Netlist.cells.(1).Netlist.x <- 42.0;
  d.Netlist.cells.(2).Netlist.y <- 1.0;
  Netlist.restore_positions d snap;
  Alcotest.(check (float 1e-12)) "restored x" 10.0 d.Netlist.cells.(1).Netlist.x;
  Alcotest.(check (float 1e-12)) "restored y" 30.0 d.Netlist.cells.(2).Netlist.y

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_builder_errors () =
  expect_invalid "duplicate cell" (fun () ->
    let b = Netlist.Builder.create "d" in
    let _ = Netlist.Builder.add_cell b ~name:"c" ~lib_cell:0 ~width:1.0 ~height:1.0 () in
    Netlist.Builder.add_cell b ~name:"c" ~lib_cell:0 ~width:1.0 ~height:1.0 ());
  expect_invalid "pin on unknown cell" (fun () ->
    let b = Netlist.Builder.create "d" in
    Netlist.Builder.add_pin b ~cell:3 ~name:"p" ~direction:Netlist.Input ());
  expect_invalid "net with unknown pin" (fun () ->
    let b = Netlist.Builder.create "d" in
    Netlist.Builder.add_net b ~name:"n" ~pins:[ 9 ]);
  expect_invalid "empty net" (fun () ->
    let b = Netlist.Builder.create "d" in
    let _ = Netlist.Builder.add_net b ~name:"n" ~pins:[] in
    Netlist.Builder.freeze b);
  expect_invalid "multiple drivers" (fun () ->
    let b = Netlist.Builder.create "d" in
    let c = Netlist.Builder.add_cell b ~name:"c" ~lib_cell:0 ~width:1.0 ~height:1.0 () in
    let p1 = Netlist.Builder.add_pin b ~cell:c ~name:"p1" ~direction:Netlist.Output () in
    let p2 = Netlist.Builder.add_pin b ~cell:c ~name:"p2" ~direction:Netlist.Output () in
    let _ = Netlist.Builder.add_net b ~name:"n" ~pins:[ p1; p2 ] in
    Netlist.Builder.freeze b);
  expect_invalid "pin on two nets" (fun () ->
    let b = Netlist.Builder.create "d" in
    let c = Netlist.Builder.add_cell b ~name:"c" ~lib_cell:0 ~width:1.0 ~height:1.0 () in
    let p1 = Netlist.Builder.add_pin b ~cell:c ~name:"p1" ~direction:Netlist.Output () in
    let p2 = Netlist.Builder.add_pin b ~cell:c ~name:"p2" ~direction:Netlist.Input () in
    let _ = Netlist.Builder.add_net b ~name:"n1" ~pins:[ p1; p2 ] in
    let _ = Netlist.Builder.add_net b ~name:"n2" ~pins:[ p2 ] in
    Netlist.Builder.freeze b)

let test_stats () =
  let d = build_sample () in
  let s = Netlist.Stats.compute d in
  Alcotest.(check int) "cells" 3 s.Netlist.Stats.cells;
  Alcotest.(check int) "movable" 2 s.Netlist.Stats.movable;
  Alcotest.(check int) "max fanout" 1 s.Netlist.Stats.max_fanout;
  Alcotest.(check (float 1e-9)) "avg fanout" 1.0 s.Netlist.Stats.average_fanout;
  Alcotest.(check (float 1e-9)) "cell area" 4.0 s.Netlist.Stats.total_cell_area;
  Alcotest.(check bool) "utilization" true (s.Netlist.Stats.utilization > 0.0)

let test_degenerate_hpwl () =
  let b = Netlist.Builder.create "d" in
  let c = Netlist.Builder.add_cell b ~name:"c" ~lib_cell:0 ~width:1.0 ~height:1.0 () in
  let p = Netlist.Builder.add_pin b ~cell:c ~name:"p" ~direction:Netlist.Output () in
  let _ = Netlist.Builder.add_net b ~name:"n" ~pins:[ p ] in
  let d = Netlist.Builder.freeze b in
  Alcotest.(check (float 1e-12)) "single-pin net" 0.0 (Netlist.net_hpwl d 0)

let suite =
  [ Alcotest.test_case "freeze shape" `Quick test_freeze_shape;
    Alcotest.test_case "pin positions track cells" `Quick test_pin_positions;
    Alcotest.test_case "net queries" `Quick test_net_queries;
    Alcotest.test_case "weighted hpwl" `Quick test_total_hpwl_weighted;
    Alcotest.test_case "movable vs fixed" `Quick test_movable_fixed;
    Alcotest.test_case "position snapshots" `Quick test_positions_snapshot;
    Alcotest.test_case "builder validation" `Quick test_builder_errors;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "degenerate net hpwl" `Quick test_degenerate_hpwl ]
