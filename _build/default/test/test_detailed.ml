(* Tests for detailed placement refinement. *)

let lib = Liberty.Synthetic.default ()

let legalized_design ?(cells = 500) seed =
  let spec =
    { Workload.default_spec with Workload.sp_cells = cells; sp_seed = seed }
  in
  let design, _ = Workload.generate lib spec in
  ignore (Legalize.legalize design);
  design

let test_hpwl_never_worse () =
  let design = legalized_design 1 in
  let before = Netlist.total_hpwl design in
  let s = Detailed.refine design in
  Alcotest.(check (float 1e-9)) "stats before" before s.Detailed.hpwl_before;
  Alcotest.(check (float 1e-9)) "stats after" (Netlist.total_hpwl design)
    s.Detailed.hpwl_after;
  Alcotest.(check bool) "no regression" true
    (s.Detailed.hpwl_after <= s.Detailed.hpwl_before +. 1e-6);
  Alcotest.(check bool) "actually improves a fresh legalisation" true
    (s.Detailed.hpwl_after < s.Detailed.hpwl_before)

let test_legality_preserved () =
  let design = legalized_design 2 in
  let _ = Detailed.refine design in
  Alcotest.(check (float 1e-6)) "no overlap" 0.0 (Legalize.overlap_area design);
  let rh = design.Netlist.row_height in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        let k = (c.Netlist.y -. (rh /. 2.0)) /. rh in
        if Float.abs (k -. Float.round k) > 1e-6 then
          Alcotest.fail "cell left its row";
        let region = design.Netlist.region in
        if c.Netlist.x -. (c.Netlist.width /. 2.0) < region.Geometry.Rect.lx -. 1e-6
           || c.Netlist.x +. (c.Netlist.width /. 2.0)
              > region.Geometry.Rect.hx +. 1e-6
        then Alcotest.fail "cell left the region"
      end)
    design.Netlist.cells

let test_moves_counted () =
  let design = legalized_design 3 in
  let s = Detailed.refine design in
  Alcotest.(check bool) "some moves happen" true
    (s.Detailed.reorder_moves + s.Detailed.swap_moves > 0);
  Alcotest.(check bool) "passes bounded" true
    (s.Detailed.passes_run >= 1 && s.Detailed.passes_run <= 3)

let test_idempotent_at_fixpoint () =
  let design = legalized_design ~cells:250 4 in
  let s1 = Detailed.refine ~passes:100 design in
  (* the greedy loop reached a fixpoint before the pass budget... *)
  Alcotest.(check bool) "fixpoint reached" true (s1.Detailed.passes_run < 100);
  (* ...so a second run finds no move at all *)
  let s2 = Detailed.refine ~passes:100 design in
  Alcotest.(check int) "no further moves" 0
    (s2.Detailed.reorder_moves + s2.Detailed.swap_moves);
  Alcotest.(check (float 1e-9)) "hpwl unchanged" s2.Detailed.hpwl_before
    s2.Detailed.hpwl_after

let test_window_validation () =
  let design = legalized_design 5 in
  match Detailed.refine ~window:1 design with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected window validation"

let test_deterministic () =
  let d1 = legalized_design 6 in
  let d2 = legalized_design 6 in
  let s1 = Detailed.refine d1 and s2 = Detailed.refine d2 in
  Alcotest.(check (float 1e-9)) "same result" s1.Detailed.hpwl_after
    s2.Detailed.hpwl_after;
  Alcotest.(check int) "same moves"
    (s1.Detailed.reorder_moves + s1.Detailed.swap_moves)
    (s2.Detailed.reorder_moves + s2.Detailed.swap_moves)

let test_larger_window_at_least_as_good () =
  let d2 = legalized_design 7 in
  let d4 = legalized_design 7 in
  let s2 = Detailed.refine ~passes:2 ~window:2 d2 in
  let s4 = Detailed.refine ~passes:2 ~window:4 d4 in
  (* not guaranteed in general (greedy), but holds on this seed and
     guards against the window parameter being ignored *)
  Alcotest.(check bool) "window used" true
    (s4.Detailed.hpwl_after <= s2.Detailed.hpwl_after *. 1.02)

let suite =
  [ Alcotest.test_case "hpwl never worse" `Quick test_hpwl_never_worse;
    Alcotest.test_case "legality preserved" `Quick test_legality_preserved;
    Alcotest.test_case "moves counted" `Quick test_moves_counted;
    Alcotest.test_case "idempotent at fixpoint" `Quick test_idempotent_at_fixpoint;
    Alcotest.test_case "window validation" `Quick test_window_validation;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "larger window helps" `Quick
      test_larger_window_at_least_as_good ]
