(* Unit and property tests for the geometry primitives. *)

open Geometry

let feq = Alcotest.(check (float 1e-9))

let point_arb =
  QCheck2.Gen.(
    map2 (fun x y -> Point.make x y) (float_range (-100.) 100.)
      (float_range (-100.) 100.))

let test_point_ops () =
  let a = Point.make 1.0 2.0 and b = Point.make 4.0 6.0 in
  feq "manhattan" 7.0 (Point.manhattan a b);
  feq "euclidean" 5.0 (Point.euclidean a b);
  feq "midpoint x" 2.5 (Point.midpoint a b).Point.x;
  feq "add" 5.0 (Point.add a b).Point.x;
  feq "sub" (-3.0) (Point.sub a b).Point.x;
  feq "scale" 3.0 (Point.scale 3.0 (Point.make 1.0 0.0)).Point.x;
  Alcotest.(check bool) "equal" true (Point.equal a (Point.make 1.0 2.0));
  Alcotest.(check bool) "zero" true (Point.equal Point.zero (Point.make 0.0 0.0))

let test_rect_basics () =
  let r = Rect.make ~lx:1.0 ~ly:2.0 ~hx:5.0 ~hy:4.0 in
  feq "width" 4.0 (Rect.width r);
  feq "height" 2.0 (Rect.height r);
  feq "area" 8.0 (Rect.area r);
  feq "half perimeter" 6.0 (Rect.half_perimeter r);
  feq "center x" 3.0 (Rect.center r).Point.x;
  Alcotest.(check bool) "contains center" true (Rect.contains r (Rect.center r));
  Alcotest.(check bool) "excludes outside" false
    (Rect.contains r (Point.make 0.0 0.0))

let test_rect_invalid () =
  Alcotest.check_raises "inverted x" (Invalid_argument "Geometry.Rect.make: inverted corners")
    (fun () -> ignore (Rect.make ~lx:2.0 ~ly:0.0 ~hx:1.0 ~hy:1.0));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Geometry.Rect.of_center: negative size") (fun () ->
      ignore (Rect.of_center Point.zero ~width:(-1.0) ~height:1.0))

let test_rect_of_center () =
  let r = Rect.of_center (Point.make 2.0 3.0) ~width:4.0 ~height:2.0 in
  feq "lx" 0.0 r.Rect.lx;
  feq "hy" 4.0 r.Rect.hy;
  Alcotest.(check bool) "center recovered" true
    (Point.equal (Rect.center r) (Point.make 2.0 3.0))

let test_rect_intersect () =
  let a = Rect.make ~lx:0.0 ~ly:0.0 ~hx:4.0 ~hy:4.0 in
  let b = Rect.make ~lx:2.0 ~ly:1.0 ~hx:6.0 ~hy:3.0 in
  (match Rect.intersect a b with
   | None -> Alcotest.fail "expected intersection"
   | Some r ->
     feq "ix lx" 2.0 r.Rect.lx;
     feq "ix area" 4.0 (Rect.area r));
  feq "overlap" 4.0 (Rect.overlap_area a b);
  feq "overlap symmetric" (Rect.overlap_area a b) (Rect.overlap_area b a);
  let far = Rect.translate a ~dx:10.0 ~dy:0.0 in
  Alcotest.(check bool) "disjoint" true (Rect.intersect a far = None);
  feq "disjoint overlap" 0.0 (Rect.overlap_area a far)

let test_rect_union_clamp () =
  let a = Rect.make ~lx:0.0 ~ly:0.0 ~hx:1.0 ~hy:1.0 in
  let b = Rect.make ~lx:2.0 ~ly:(-1.0) ~hx:3.0 ~hy:0.5 in
  let u = Rect.union a b in
  Alcotest.(check bool) "union contains a" true
    (Rect.contains u (Rect.center a));
  Alcotest.(check bool) "union contains b" true
    (Rect.contains u (Rect.center b));
  let p = Rect.clamp_point a (Point.make 5.0 (-3.0)) in
  Alcotest.(check bool) "clamped inside" true (Rect.contains a p);
  feq "clamp x" 1.0 p.Point.x;
  feq "clamp y" 0.0 p.Point.y

let test_bbox () =
  Alcotest.(check bool) "empty" true (Bbox.is_empty Bbox.empty);
  feq "empty hp" 0.0 (Bbox.half_perimeter Bbox.empty);
  let pts = [ Point.make 1.0 1.0; Point.make 4.0 5.0; Point.make 2.0 0.0 ] in
  let bb = Bbox.of_points pts in
  feq "hp" (3.0 +. 5.0) (Bbox.half_perimeter bb);
  match Bbox.to_rect bb with
  | None -> Alcotest.fail "expected rect"
  | Some r ->
    feq "lx" 1.0 r.Rect.lx;
    feq "hy" 5.0 r.Rect.hy

let test_scalars () =
  feq "clamp low" 1.0 (clamp ~lo:1.0 ~hi:2.0 0.0);
  feq "clamp high" 2.0 (clamp ~lo:1.0 ~hi:2.0 9.0);
  feq "clamp mid" 1.5 (clamp ~lo:1.0 ~hi:2.0 1.5);
  feq "lerp" 2.5 (lerp 1.0 4.0 0.5);
  Alcotest.(check bool) "close" true (close 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "not close" false (close 1.0 1.1)

let prop_manhattan_triangle =
  QCheck2.Test.make ~name:"manhattan triangle inequality" ~count:500
    QCheck2.Gen.(triple point_arb point_arb point_arb)
    (fun (a, b, c) ->
      Point.manhattan a c <= Point.manhattan a b +. Point.manhattan b c +. 1e-9)

let prop_manhattan_dominates_euclid =
  QCheck2.Test.make ~name:"manhattan >= euclidean" ~count:500
    QCheck2.Gen.(pair point_arb point_arb)
    (fun (a, b) -> Point.manhattan a b >= Point.euclidean a b -. 1e-9)

let prop_bbox_contains_all =
  QCheck2.Test.make ~name:"bbox contains every point" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) point_arb)
    (fun pts ->
      match Bbox.to_rect (Bbox.of_points pts) with
      | None -> false
      | Some r -> List.for_all (Rect.contains r) pts)

let prop_overlap_bounded =
  QCheck2.Test.make ~name:"overlap <= min area" ~count:300
    QCheck2.Gen.(
      quad (float_range 0.1 10.) (float_range 0.1 10.) point_arb point_arb)
    (fun (w, h, ca, cb) ->
      let a = Rect.of_center ca ~width:w ~height:h in
      let b = Rect.of_center cb ~width:h ~height:w in
      Rect.overlap_area a b <= Float.min (Rect.area a) (Rect.area b) +. 1e-9)

let suite =
  [ Alcotest.test_case "point ops" `Quick test_point_ops;
    Alcotest.test_case "rect basics" `Quick test_rect_basics;
    Alcotest.test_case "rect invalid" `Quick test_rect_invalid;
    Alcotest.test_case "rect of_center" `Quick test_rect_of_center;
    Alcotest.test_case "rect intersect/overlap" `Quick test_rect_intersect;
    Alcotest.test_case "rect union/clamp" `Quick test_rect_union_clamp;
    Alcotest.test_case "bbox" `Quick test_bbox;
    Alcotest.test_case "scalar helpers" `Quick test_scalars;
    QCheck_alcotest.to_alcotest prop_manhattan_triangle;
    QCheck_alcotest.to_alcotest prop_manhattan_dominates_euclid;
    QCheck_alcotest.to_alcotest prop_bbox_contains_all;
    QCheck_alcotest.to_alcotest prop_overlap_bounded ]
