(* Tests for table rendering and the published reference numbers. *)

let test_table_render () =
  let t = Report.Table.create [ "a"; "long header" ] in
  Report.Table.add_row t [ "x"; "1" ];
  Report.Table.add_row t [ "longer cell"; "2" ];
  let s = Report.Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
   | header :: rule :: _ ->
     Alcotest.(check bool) "rule has dashes" true (String.contains rule '-');
     Alcotest.(check bool) "header first" true
       (String.length header >= String.length "a  long header")
   | _ -> Alcotest.fail "expected at least two lines");
  (* all rendered lines align to the same width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  (match widths with
   | w :: rest -> List.iter (fun x -> Alcotest.(check int) "aligned" w x) rest
   | [] -> Alcotest.fail "no lines")

let test_table_arity () =
  let t = Report.Table.create [ "a"; "b" ] in
  match Report.Table.add_row t [ "only one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity check"

let test_markdown () =
  let t = Report.Table.create [ "h1"; "h2" ] in
  Report.Table.add_row t [ "a"; "b" ];
  let md = Report.Table.render_markdown t in
  Alcotest.(check bool) "has separator" true
    (String.length md > 0
     && (let lines = String.split_on_char '\n' md in
         List.exists (fun l -> l = "| --- | --- |") lines))

let test_csv_escaping () =
  let t = Report.Table.create [ "name"; "value" ] in
  Report.Table.add_row t [ "with,comma"; "with\"quote" ];
  let csv = Report.Table.render_csv t in
  Alcotest.(check bool) "comma quoted" true
    (String.length csv > 0
     && (let lines = String.split_on_char '\n' csv in
         List.exists
           (fun l -> l = "\"with,comma\",\"with\"\"quote\"")
           lines))

let test_geometric_mean () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Report.geometric_mean []);
  Alcotest.(check (float 1e-9)) "single" 4.0 (Report.geometric_mean [ 4.0 ]);
  Alcotest.(check (float 1e-9)) "pair" 2.0 (Report.geometric_mean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-6)) "triple" 2.0
    (Report.geometric_mean [ 1.0; 2.0; 4.0 ])

let test_si () =
  Alcotest.(check string) "nan" "-" (Report.si Float.nan);
  Alcotest.(check string) "plain" "1.500" (Report.si 1.5);
  Alcotest.(check bool) "large uses exponent" true
    (String.contains (Report.si 1.23e9) 'e')

let test_paper_tables () =
  Alcotest.(check int) "table3 rows" 8 (List.length Report.Paper.table3);
  Alcotest.(check int) "table2 rows" 8 (List.length Report.Paper.table2);
  (* the paper's WNS are all negative, ours never worse than both
     baselines per row except superblue5/7 TNS cases noted in the text *)
  List.iter
    (fun (r : Report.Paper.table3_row) ->
      Alcotest.(check bool) (r.Report.Paper.bench ^ " ours best wns") true
        (r.Report.Paper.ours_wns >= r.Report.Paper.dp_wns
         && r.Report.Paper.ours_wns >= r.Report.Paper.nw_wns))
    Report.Paper.table3;
  Alcotest.(check (float 1e-9)) "published ratio" 1.897
    (Report.Paper.avg_ratio_wns `Dreamplace);
  Alcotest.(check (float 1e-9)) "published runtime ratio" 1.807
    (Report.Paper.avg_ratio_runtime `Net_weighting)

let suite =
  [ Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "markdown" `Quick test_markdown;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "si formatting" `Quick test_si;
    Alcotest.test_case "paper reference tables" `Quick test_paper_tables ]
