(* Tests for the momentum-based net-weighting baseline. *)

let lib = Liberty.Synthetic.default ()

let setup ?(cells = 300) () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_clock_period = 700.0 }
  in
  let design, cons = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib cons in
  (design, graph)

let test_initial_weights_one () =
  let design, graph = setup () in
  let nw = Netweight.create graph in
  ignore nw;
  Array.iter
    (fun (net : Netlist.net) ->
      Alcotest.(check (float 1e-12)) "weight 1" 1.0 net.Netlist.weight)
    design.Netlist.nets

let test_update_increases_critical_only () =
  let design, graph = setup () in
  let nw = Netweight.create graph in
  let report = Netweight.update nw in
  Alcotest.(check bool) "violations exist" true
    (report.Sta.Timer.setup_wns < 0.0);
  let timer = Netweight.timer nw in
  let raised = ref 0 in
  Array.iter
    (fun (net : Netlist.net) ->
      let slack = Sta.Timer.net_slack timer net.Netlist.net_id in
      if net.Netlist.weight > 1.0 +. 1e-12 then begin
        incr raised;
        if slack >= 0.0 then
          Alcotest.failf "non-critical net %s got weight %f"
            net.Netlist.net_name net.Netlist.weight
      end)
    design.Netlist.nets;
  Alcotest.(check bool) "some nets weighted" true (!raised > 0)

let test_weights_monotone_and_capped () =
  let design, graph = setup () in
  let config = { Netweight.default_config with Netweight.max_weight = 1.5 } in
  let nw = Netweight.create ~config graph in
  let previous = Array.map (fun (n : Netlist.net) -> n.Netlist.weight)
      design.Netlist.nets in
  for _ = 1 to 10 do
    let _ = Netweight.update nw in
    Array.iteri
      (fun i (net : Netlist.net) ->
        if net.Netlist.weight < previous.(i) -. 1e-12 then
          Alcotest.fail "weight decreased";
        if net.Netlist.weight > 1.5 +. 1e-12 then
          Alcotest.fail "weight exceeded cap";
        previous.(i) <- net.Netlist.weight)
      design.Netlist.nets
  done

let test_momentum_smooths () =
  (* with beta = 1 the momentum never reacts, so weights stay at 1 *)
  let design, graph = setup () in
  let config = { Netweight.default_config with Netweight.beta = 1.0 } in
  let nw = Netweight.create ~config graph in
  let _ = Netweight.update nw in
  Array.iter
    (fun (net : Netlist.net) ->
      Alcotest.(check (float 1e-12)) "frozen momentum" 1.0 net.Netlist.weight)
    design.Netlist.nets

let test_reset () =
  let design, graph = setup () in
  let nw = Netweight.create graph in
  let _ = Netweight.update nw in
  Netweight.reset nw;
  Array.iter
    (fun (net : Netlist.net) ->
      Alcotest.(check (float 1e-12)) "reset to 1" 1.0 net.Netlist.weight)
    design.Netlist.nets

let test_should_update_period () =
  let _, graph = setup ~cells:100 () in
  let config = { Netweight.default_config with Netweight.period = 4 } in
  let nw = Netweight.create ~config graph in
  Alcotest.(check bool) "iter 0" true (Netweight.should_update nw 0);
  Alcotest.(check bool) "iter 1" false (Netweight.should_update nw 1);
  Alcotest.(check bool) "iter 4" true (Netweight.should_update nw 4);
  Alcotest.(check int) "config accessor" 4 (Netweight.config nw).Netweight.period

let suite =
  [ Alcotest.test_case "initial weights are 1" `Quick test_initial_weights_one;
    Alcotest.test_case "update raises critical nets only" `Quick
      test_update_increases_critical_only;
    Alcotest.test_case "weights monotone and capped" `Quick
      test_weights_monotone_and_capped;
    Alcotest.test_case "momentum smooths reaction" `Quick test_momentum_smooths;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "update period" `Quick test_should_update_period ]
