(* Tests for the FFT / DCT transform stack behind the density solver. *)

let close ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let arrays_close ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> close ~eps x y) a b

let check_arrays name a b =
  if not (arrays_close ~eps:1e-8 a b) then
    Alcotest.failf "%s: arrays differ" name

let rand_array rng n = Array.init n (fun _ -> Workload.Rng.float rng 2.0 -. 1.0)

let test_fft_impulse () =
  (* DFT of a unit impulse is the all-ones spectrum *)
  let n = 8 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Transform.Fft.transform ~re ~im;
  Array.iter (fun v -> Alcotest.(check (float 1e-12)) "re" 1.0 v) re;
  Array.iter (fun v -> Alcotest.(check (float 1e-12)) "im" 0.0 v) im

let test_fft_roundtrip () =
  let rng = Workload.Rng.create 3 in
  let n = 64 in
  let re = rand_array rng n and im = rand_array rng n in
  let re0 = Array.copy re and im0 = Array.copy im in
  Transform.Fft.transform ~re ~im;
  Transform.Fft.inverse ~re ~im;
  let scale = 1.0 /. float_of_int n in
  check_arrays "re roundtrip" re0 (Array.map (fun v -> v *. scale) re);
  check_arrays "im roundtrip" im0 (Array.map (fun v -> v *. scale) im)

let test_fft_dc () =
  (* constant input concentrates in bin 0 *)
  let n = 16 in
  let re = Array.make n 1.0 and im = Array.make n 0.0 in
  Transform.Fft.transform ~re ~im;
  Alcotest.(check (float 1e-9)) "dc" (float_of_int n) re.(0);
  for k = 1 to n - 1 do
    Alcotest.(check (float 1e-9)) "bin" 0.0 re.(k)
  done

let test_fft_invalid () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Transform.Fft: length must be a power of two")
    (fun () ->
      Transform.Fft.transform ~re:(Array.make 3 0.0) ~im:(Array.make 3 0.0));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Transform.Fft: re/im length mismatch") (fun () ->
      Transform.Fft.transform ~re:(Array.make 4 0.0) ~im:(Array.make 8 0.0))

let test_fft_parseval () =
  let rng = Workload.Rng.create 4 in
  let n = 32 in
  let re = rand_array rng n and im = Array.make n 0.0 in
  let energy_time =
    Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 re
  in
  Transform.Fft.transform ~re ~im;
  let energy_freq = ref 0.0 in
  for k = 0 to n - 1 do
    energy_freq := !energy_freq +. (re.(k) *. re.(k)) +. (im.(k) *. im.(k))
  done;
  Alcotest.(check (float 1e-6)) "parseval" energy_time
    (!energy_freq /. float_of_int n)

(* fast paths agree with the direct O(n^2) definitions *)
let prop_dct_fast_matches_naive =
  QCheck2.Test.make ~name:"dct fast = naive (pow2 sizes)" ~count:100
    QCheck2.Gen.(
      pair (int_range 0 3)
        (list_size (return 16) (float_range (-1.0) 1.0)))
    (fun (log_extra, vals) ->
      let n = 16 lsl log_extra in
      let x = Array.init n (fun i -> List.nth vals (i mod 16) +. float_of_int i /. float_of_int n) in
      arrays_close ~eps:1e-8 (Transform.Dct.dct x) (Transform.Dct.dct_naive x))

let prop_cos_synth_fast_matches_naive =
  QCheck2.Test.make ~name:"cos_synth fast = naive" ~count:100
    QCheck2.Gen.(list_size (return 32) (float_range (-1.0) 1.0))
    (fun vals ->
      let c = Array.of_list vals in
      arrays_close ~eps:1e-8
        (Transform.Dct.cos_synth c)
        (Transform.Dct.cos_synth_naive c))

let prop_sin_synth_fast_matches_naive =
  QCheck2.Test.make ~name:"sin_synth fast = naive" ~count:100
    QCheck2.Gen.(list_size (return 32) (float_range (-1.0) 1.0))
    (fun vals ->
      let c = Array.of_list vals in
      arrays_close ~eps:1e-8
        (Transform.Dct.sin_synth c)
        (Transform.Dct.sin_synth_naive c))

let test_non_pow2_fallback () =
  let rng = Workload.Rng.create 5 in
  let x = rand_array rng 12 in
  check_arrays "dct fallback" (Transform.Dct.dct x) (Transform.Dct.dct_naive x);
  check_arrays "cos fallback" (Transform.Dct.cos_synth x)
    (Transform.Dct.cos_synth_naive x);
  check_arrays "sin fallback" (Transform.Dct.sin_synth x)
    (Transform.Dct.sin_synth_naive x)

let test_dct_roundtrip () =
  let rng = Workload.Rng.create 6 in
  let n = 32 in
  let x = rand_array rng n in
  let c = Transform.Dct.dct x in
  let scaled =
    Array.mapi
      (fun k v -> (if k = 0 then 1.0 else 2.0) *. v /. float_of_int n)
      c
  in
  check_arrays "dct/cos_synth inverse" x (Transform.Dct.cos_synth scaled)

let test_grid_roundtrip () =
  let rng = Workload.Rng.create 7 in
  let n = 8 in
  let grid = rand_array rng (n * n) in
  let c = Transform.Grid.dct2 n grid in
  let scale k = if k = 0 then 1.0 /. float_of_int n else 2.0 /. float_of_int n in
  let scaled =
    Array.mapi (fun idx v -> v *. scale (idx / n) *. scale (idx mod n)) c
  in
  check_arrays "2d roundtrip" grid (Transform.Grid.cos_cos_synth n scaled)

let test_grid_size_check () =
  Alcotest.check_raises "grid size"
    (Invalid_argument "Transform.Grid: size mismatch") (fun () ->
      ignore (Transform.Grid.dct2 4 (Array.make 10 0.0)))

let test_grid_sin_axes () =
  (* sin along the row axis means row-constant input maps to zero only
     when the column spectrum says so; check a pure mode instead:
     coefficients with a single (u=1, v=0) entry synthesise
     sin(pi (r+1/2) / n) constant across columns. *)
  let n = 8 in
  let c = Array.make (n * n) 0.0 in
  c.(1 * n) <- 1.0;
  let f = Transform.Grid.sin_cos_synth n c in
  let pi = 4.0 *. atan 1.0 in
  for r = 0 to n - 1 do
    let expect = sin (pi *. (float_of_int r +. 0.5) /. float_of_int n) in
    for col = 0 to n - 1 do
      Alcotest.(check (float 1e-9)) "mode value" expect f.((r * n) + col)
    done
  done

let suite =
  [ Alcotest.test_case "fft impulse" `Quick test_fft_impulse;
    Alcotest.test_case "fft roundtrip" `Quick test_fft_roundtrip;
    Alcotest.test_case "fft dc" `Quick test_fft_dc;
    Alcotest.test_case "fft invalid input" `Quick test_fft_invalid;
    Alcotest.test_case "fft parseval" `Quick test_fft_parseval;
    Alcotest.test_case "non-pow2 fallback" `Quick test_non_pow2_fallback;
    Alcotest.test_case "dct roundtrip" `Quick test_dct_roundtrip;
    Alcotest.test_case "grid 2d roundtrip" `Quick test_grid_roundtrip;
    Alcotest.test_case "grid size check" `Quick test_grid_size_check;
    Alcotest.test_case "grid sin axis convention" `Quick test_grid_sin_axes;
    QCheck_alcotest.to_alcotest prop_dct_fast_matches_naive;
    QCheck_alcotest.to_alcotest prop_cos_synth_fast_matches_naive;
    QCheck_alcotest.to_alcotest prop_sin_synth_fast_matches_naive ]
