(* Tests for the synthetic benchmark generator. *)

let lib = Liberty.Synthetic.default ()

let test_rng_determinism () =
  let a = Workload.Rng.create 42 and b = Workload.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same ints" (Workload.Rng.int a 1000)
      (Workload.Rng.int b 1000)
  done;
  let c = Workload.Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Workload.Rng.int a 1000 <> Workload.Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_rng_ranges () =
  let rng = Workload.Rng.create 7 in
  for _ = 1 to 1000 do
    let i = Workload.Rng.int rng 10 in
    if i < 0 || i >= 10 then Alcotest.fail "int out of range";
    let f = Workload.Rng.float rng 3.0 in
    if f < 0.0 || f >= 3.0 then Alcotest.fail "float out of range"
  done

let test_rng_bool_bias () =
  let rng = Workload.Rng.create 8 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Workload.Rng.bool rng 0.25 then incr hits
  done;
  Alcotest.(check bool) "about a quarter" true (!hits > 2000 && !hits < 3000)

let test_choose_weighted () =
  let rng = Workload.Rng.create 9 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Workload.Rng.choose_weighted rng [ (0.7, "a"); (0.2, "b"); (0.1, "c") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "ordering" true (get "a" > get "b" && get "b" > get "c")

let test_generation_determinism () =
  let spec = { Workload.default_spec with Workload.sp_cells = 300 } in
  let d1, c1 = Workload.generate lib spec in
  let d2, c2 = Workload.generate lib spec in
  Alcotest.(check string) "identical designs"
    (Bookshelf.to_string d1 c1) (Bookshelf.to_string d2 c2)

let test_generated_structure () =
  let spec = { Workload.default_spec with Workload.sp_cells = 500 } in
  let design, cons = Workload.generate lib spec in
  let stats = Netlist.Stats.compute design in
  (* the movable count matches the requested size *)
  Alcotest.(check int) "movable cells" 500 stats.Netlist.Stats.movable;
  Alcotest.(check bool) "utilization near target" true
    (Float.abs (stats.Netlist.Stats.utilization -. 0.55) < 0.05);
  Alcotest.(check (float 1e-9)) "clock period" 900.0
    cons.Sta.Constraints.clock_period;
  (* clock pins are left unconnected (ideal clock) *)
  Array.iter
    (fun (p : Netlist.pin) ->
      let cell = design.Netlist.cells.(p.Netlist.cell) in
      if cell.Netlist.lib_cell >= 0 then begin
        let lc = lib.Liberty.lib_cells.(cell.Netlist.lib_cell) in
        if p.Netlist.lib_pin >= 0
           && lc.Liberty.lc_pins.(p.Netlist.lib_pin).Liberty.lp_is_clock
        then
          Alcotest.(check int) "clock unconnected" (-1) p.Netlist.net
        else if p.Netlist.net < 0 then
          Alcotest.failf "non-clock pin %s unconnected" p.Netlist.pin_name
      end)
    design.Netlist.pins

let test_pads_on_periphery () =
  let spec = { Workload.default_spec with Workload.sp_cells = 400 } in
  let design, _ = Workload.generate lib spec in
  let region = design.Netlist.region in
  Array.iter
    (fun (c : Netlist.cell) ->
      if c.Netlist.fixed then begin
        let on_edge =
          Float.abs c.Netlist.x < 1e-6
          || Float.abs (c.Netlist.x -. region.Geometry.Rect.hx) < 1e-6
          || Float.abs c.Netlist.y < 1e-6
          || Float.abs (c.Netlist.y -. region.Geometry.Rect.hy) < 1e-6
        in
        if not on_edge then
          Alcotest.failf "pad %s not on periphery (%f, %f)" c.Netlist.cell_name
            c.Netlist.x c.Netlist.y
      end)
    design.Netlist.cells

let test_sta_runs_on_generated () =
  let spec = { Workload.default_spec with Workload.sp_cells = 400 } in
  let design, cons = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib cons in
  let timer = Sta.Timer.create graph in
  let report = Sta.Timer.run timer in
  Alcotest.(check bool) "finite wns" true (Float.is_finite report.Sta.Timer.setup_wns);
  Alcotest.(check bool) "has violations initially" true
    (report.Sta.Timer.setup_wns < 0.0);
  Alcotest.(check bool) "endpoints" true
    (List.length report.Sta.Timer.endpoint_slacks > 0)

let test_depth_reflected_in_levels () =
  let shallow =
    Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 400; sp_depth = 4 }
  in
  let deep =
    Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 400; sp_depth = 20 }
  in
  let levels (design, cons) = Sta.Graph.max_level (Sta.Graph.build design lib cons) in
  Alcotest.(check bool) "deeper spec gives deeper graph" true
    (levels deep > levels shallow)

let test_superblue_suite () =
  let specs = Workload.superblue_mini () in
  Alcotest.(check int) "eight benchmarks" 8 (List.length specs);
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.Workload.sp_name ^ " cells scaled") true
        (s.Workload.sp_cells > 5000 && s.Workload.sp_cells < 25000))
    specs;
  (match Workload.find_spec "superblue18-mini" with
   | Some s -> Alcotest.(check int) "seed" 1018 s.Workload.sp_seed
   | None -> Alcotest.fail "find_spec failed");
  Alcotest.(check bool) "unknown name" true (Workload.find_spec "nope" = None)

let suite =
  [ Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng bool bias" `Quick test_rng_bool_bias;
    Alcotest.test_case "choose weighted" `Quick test_choose_weighted;
    Alcotest.test_case "generation determinism" `Quick test_generation_determinism;
    Alcotest.test_case "generated structure" `Quick test_generated_structure;
    Alcotest.test_case "pads on periphery" `Quick test_pads_on_periphery;
    Alcotest.test_case "sta runs on generated" `Quick test_sta_runs_on_generated;
    Alcotest.test_case "depth reflected in levels" `Quick
      test_depth_reflected_in_levels;
    Alcotest.test_case "superblue-mini suite" `Quick test_superblue_suite ]

let test_hub_fanout_skew () =
  let design, _ =
    Workload.generate lib { Workload.default_spec with Workload.sp_cells = 3000 }
  in
  let s = Netlist.Stats.compute design in
  Alcotest.(check bool) "hubs create high fanout" true
    (s.Netlist.Stats.max_fanout > 20);
  (* disabling hubs removes the tail *)
  let flat, _ =
    Workload.generate lib
      { Workload.default_spec with
        Workload.sp_cells = 3000; sp_hub_ratio = 0.0; sp_hub_prob = 0.0 }
  in
  let sf = Netlist.Stats.compute flat in
  Alcotest.(check bool) "no hubs, low fanout" true
    (sf.Netlist.Stats.max_fanout < 15)

let suite =
  suite
  @ [ Alcotest.test_case "hub fanout skew" `Quick test_hub_fanout_skew ]
