(* Tests for the first-order optimisers. *)

let test_sgd_step () =
  let o = Optim.create Optim.Sgd ~n:2 in
  let params = [| 1.0; 2.0 |] and grads = [| 0.5; -1.0 |] in
  Optim.step o ~lr:0.1 ~params ~grads ();
  Alcotest.(check (float 1e-12)) "p0" 0.95 params.(0);
  Alcotest.(check (float 1e-12)) "p1" 2.1 params.(1);
  Alcotest.(check int) "iterations" 1 (Optim.iterations o)

let test_momentum_accumulates () =
  let o = Optim.create (Optim.Momentum { beta = 0.5 }) ~n:1 in
  let params = [| 0.0 |] in
  Optim.step o ~lr:1.0 ~params ~grads:[| 1.0 |] ();
  Alcotest.(check (float 1e-12)) "first step" (-1.0) params.(0);
  (* velocity = 0.5 * 1 + 1 = 1.5 *)
  Optim.step o ~lr:1.0 ~params ~grads:[| 1.0 |] ();
  Alcotest.(check (float 1e-12)) "second step" (-2.5) params.(0)

let test_nesterov_stronger_than_momentum () =
  let run alg =
    let o = Optim.create alg ~n:1 in
    let params = [| 0.0 |] in
    for _ = 1 to 5 do
      Optim.step o ~lr:0.1 ~params ~grads:[| 1.0 |] ()
    done;
    params.(0)
  in
  let m = run (Optim.Momentum { beta = 0.9 }) in
  let n = run (Optim.Nesterov { beta = 0.9 }) in
  Alcotest.(check bool) "nesterov moves further on steady gradient" true (n < m)

let test_adam_first_step_is_signed_lr () =
  (* after one step, Adam moves by ~lr * sign(gradient) *)
  let o = Optim.create Optim.adam ~n:2 in
  let params = [| 0.0; 0.0 |] in
  Optim.step o ~lr:0.01 ~params ~grads:[| 123.0; -0.004 |] ();
  Alcotest.(check (float 1e-6)) "large grad" (-0.01) params.(0);
  Alcotest.(check (float 1e-6)) "small grad" 0.01 params.(1)

let test_mask () =
  let o = Optim.create Optim.adam ~n:3 in
  let params = [| 1.0; 2.0; 3.0 |] in
  let mask = [| true; false; true |] in
  Optim.step o ~lr:0.5 ~params ~grads:[| 1.0; 1.0; 1.0 |] ~mask ();
  Alcotest.(check (float 1e-12)) "masked untouched" 2.0 params.(1);
  Alcotest.(check bool) "others moved" true (params.(0) < 1.0 && params.(2) < 3.0)

let test_reset () =
  let o = Optim.create (Optim.Momentum { beta = 0.9 }) ~n:1 in
  let params = [| 0.0 |] in
  Optim.step o ~lr:1.0 ~params ~grads:[| 1.0 |] ();
  Optim.reset o;
  Alcotest.(check int) "iterations reset" 0 (Optim.iterations o);
  params.(0) <- 0.0;
  Optim.step o ~lr:1.0 ~params ~grads:[| 1.0 |] ();
  Alcotest.(check (float 1e-12)) "velocity cleared" (-1.0) params.(0)

let test_size_checks () =
  let o = Optim.create Optim.Sgd ~n:2 in
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected size check"
  in
  expect (fun () -> Optim.step o ~lr:0.1 ~params:[| 0.0 |] ~grads:[| 0.0; 0.0 |] ());
  expect (fun () ->
    Optim.step o ~lr:0.1 ~params:[| 0.0; 0.0 |] ~grads:[| 0.0; 0.0 |]
      ~mask:[| true |] ())

(* every algorithm minimises a separable convex quadratic *)
let quadratic_converges alg lr steps =
  let n = 4 in
  let target = [| 1.0; -2.0; 0.5; 3.0 |] in
  let o = Optim.create alg ~n in
  let params = Array.make n 0.0 in
  let grads = Array.make n 0.0 in
  for _ = 1 to steps do
    for i = 0 to n - 1 do
      grads.(i) <- 2.0 *. (params.(i) -. target.(i))
    done;
    Optim.step o ~lr ~params ~grads ()
  done;
  let err = ref 0.0 in
  for i = 0 to n - 1 do
    err := Float.max !err (Float.abs (params.(i) -. target.(i)))
  done;
  !err

let test_quadratic_convergence () =
  Alcotest.(check bool) "sgd" true (quadratic_converges Optim.Sgd 0.1 200 < 1e-6);
  Alcotest.(check bool) "momentum" true
    (quadratic_converges (Optim.Momentum { beta = 0.8 }) 0.02 400 < 1e-4);
  Alcotest.(check bool) "nesterov" true
    (quadratic_converges (Optim.Nesterov { beta = 0.8 }) 0.02 400 < 1e-4);
  Alcotest.(check bool) "adam" true
    (quadratic_converges Optim.adam 0.05 2000 < 1e-3)

let suite =
  [ Alcotest.test_case "sgd step" `Quick test_sgd_step;
    Alcotest.test_case "momentum accumulates" `Quick test_momentum_accumulates;
    Alcotest.test_case "nesterov lookahead" `Quick
      test_nesterov_stronger_than_momentum;
    Alcotest.test_case "adam first step" `Quick test_adam_first_step_is_signed_lr;
    Alcotest.test_case "mask" `Quick test_mask;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "size checks" `Quick test_size_checks;
    Alcotest.test_case "quadratic convergence" `Quick test_quadratic_convergence ]

let test_barzilai_borwein () =
  (* on a quadratic, BB converges much faster than plain SGD at the same
     base lr *)
  let bb = quadratic_converges (Optim.Barzilai_borwein { fallback = 0.1 }) 0.1 25 in
  Alcotest.(check bool) "bb converges fast" true (bb < 1e-6);
  let sgd = quadratic_converges Optim.Sgd 0.1 25 in
  Alcotest.(check bool) "bb beats sgd in 25 steps" true (bb < sgd);
  (* first step uses the fallback scale *)
  let o = Optim.create (Optim.Barzilai_borwein { fallback = 0.5 }) ~n:1 in
  let params = [| 1.0 |] in
  Optim.step o ~lr:0.2 ~params ~grads:[| 1.0 |] ();
  Alcotest.(check (float 1e-12)) "fallback step" 0.9 params.(0)

let suite =
  suite
  @ [ Alcotest.test_case "barzilai-borwein" `Quick test_barzilai_borwein ]
