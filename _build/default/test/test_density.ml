(* Tests for the electrostatic density system. *)

let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:64.0 ~hy:64.0

(* [n] unit cells; positions set by the caller *)
let design_with_cells n =
  let b = Netlist.Builder.create ~region ~row_height:1.0 "dens" in
  for i = 0 to n - 1 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" i)
         ~lib_cell:0 ~width:2.0 ~height:2.0 ~x:32.0 ~y:32.0 ())
  done;
  Netlist.Builder.freeze b

let spread design rng =
  Array.iter
    (fun (c : Netlist.cell) ->
      c.Netlist.x <- 2.0 +. Workload.Rng.float rng 60.0;
      c.Netlist.y <- 2.0 +. Workload.Rng.float rng 60.0)
    design.Netlist.cells

let test_bins_sizing () =
  let d = design_with_cells 100 in
  let dens = Density.create d in
  let b = Density.bins dens in
  Alcotest.(check bool) "power of two" true (b land (b - 1) = 0);
  let dens2 = Density.create ~bins:50 d in
  Alcotest.(check bool) "rounded override" true
    (Density.bins dens2 = 32 || Density.bins dens2 = 64)

let test_overflow_extremes () =
  let d = design_with_cells 200 in
  let dens = Density.create d in
  (* everything piled at the center: massive overflow *)
  Density.update dens;
  let crowded = Density.overflow dens in
  Alcotest.(check bool) "crowded overflow" true (crowded > 0.5);
  (* spread evenly on a grid: nearly no overflow *)
  Array.iteri
    (fun i (c : Netlist.cell) ->
      c.Netlist.x <- 2.0 +. (4.0 *. float_of_int (i mod 15));
      c.Netlist.y <- 2.0 +. (4.0 *. float_of_int (i / 15)))
    d.Netlist.cells;
  Density.update dens;
  let relaxed = Density.overflow dens in
  Alcotest.(check bool) "relaxed overflow" true (relaxed < 0.05);
  Alcotest.(check bool) "ordering" true (relaxed < crowded)

let test_penalty_decreases_when_spreading () =
  let d = design_with_cells 200 in
  let dens = Density.create d in
  Density.update dens;
  let crowded = Density.penalty dens in
  let rng = Workload.Rng.create 17 in
  spread d rng;
  Density.update dens;
  let relaxed = Density.penalty dens in
  Alcotest.(check bool) "penalty drops" true (relaxed < crowded)

let test_gradient_pushes_apart () =
  (* one clump at the left: gradient should push cells right (descending
     the energy moves them away from the clump, i.e. negative gradient
     where moving right decreases energy) *)
  let d = design_with_cells 100 in
  Array.iter
    (fun (c : Netlist.cell) ->
      c.Netlist.x <- 10.0;
      c.Netlist.y <- 32.0)
    d.Netlist.cells;
  let dens = Density.create d in
  Density.update dens;
  let n = Netlist.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Density.gradient dens ~scale:1.0 ~grad_x:gx ~grad_y:gy;
  (* move a probe cell slightly right of the clump: its x-gradient must
     be negative (energy decreases rightward) *)
  d.Netlist.cells.(0).Netlist.x <- 14.0;
  Density.update dens;
  Array.fill gx 0 n 0.0;
  Array.fill gy 0 n 0.0;
  Density.gradient dens ~scale:1.0 ~grad_x:gx ~grad_y:gy;
  Alcotest.(check bool) "pushed away from clump" true (gx.(0) < 0.0)

let test_gradient_scale_linear () =
  let d = design_with_cells 50 in
  let rng = Workload.Rng.create 23 in
  spread d rng;
  let dens = Density.create d in
  Density.update dens;
  let n = Netlist.num_cells d in
  let g1 = Array.make n 0.0 and g1y = Array.make n 0.0 in
  Density.gradient dens ~scale:1.0 ~grad_x:g1 ~grad_y:g1y;
  let g2 = Array.make n 0.0 and g2y = Array.make n 0.0 in
  Density.gradient dens ~scale:2.5 ~grad_x:g2 ~grad_y:g2y;
  Array.iteri
    (fun i v ->
      if Float.abs ((2.5 *. g1.(i)) -. v) > 1e-9 *. Float.max 1.0 (Float.abs v)
      then Alcotest.fail "scale not linear")
    g2

let test_fixed_cells_reduce_capacity () =
  (* fill a corner with a fixed macro; movable cells there overflow *)
  let b = Netlist.Builder.create ~region ~row_height:1.0 "fixed" in
  let _ =
    Netlist.Builder.add_cell b ~name:"macro" ~lib_cell:(-1) ~width:30.0
      ~height:30.0 ~x:16.0 ~y:16.0 ~fixed:true ()
  in
  for i = 0 to 19 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "m%d" i)
         ~lib_cell:0 ~width:2.0 ~height:2.0 ~x:16.0 ~y:16.0 ())
  done;
  let d = Netlist.Builder.freeze b in
  let dens = Density.create d in
  Density.update dens;
  let over_macro = Density.overflow dens in
  (* same cells in the free corner *)
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        c.Netlist.x <- 48.0 +. (float_of_int c.Netlist.cell_id *. 0.1);
        c.Netlist.y <- 48.0
      end)
    d.Netlist.cells;
  Density.update dens;
  let over_free = Density.overflow dens in
  Alcotest.(check bool) "macro area counts against capacity" true
    (over_macro > over_free)

let test_gradient_zero_when_uniform () =
  (* perfectly uniform density has (numerically) tiny field *)
  let b = Netlist.Builder.create ~region ~row_height:1.0 "uniform" in
  for i = 0 to 15 do
    for j = 0 to 15 do
      ignore
        (Netlist.Builder.add_cell b
           ~name:(Printf.sprintf "u%d_%d" i j)
           ~lib_cell:0 ~width:4.0 ~height:4.0
           ~x:(2.0 +. (4.0 *. float_of_int i))
           ~y:(2.0 +. (4.0 *. float_of_int j))
           ())
    done
  done;
  let d = Netlist.Builder.freeze b in
  let dens = Density.create ~bins:16 d in
  Density.update dens;
  let n = Netlist.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Density.gradient dens ~scale:1.0 ~grad_x:gx ~grad_y:gy;
  let max_g = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 gx in
  Alcotest.(check bool) "negligible field" true (max_g < 1e-6)

let suite =
  [ Alcotest.test_case "bins sizing" `Quick test_bins_sizing;
    Alcotest.test_case "overflow extremes" `Quick test_overflow_extremes;
    Alcotest.test_case "penalty decreases when spreading" `Quick
      test_penalty_decreases_when_spreading;
    Alcotest.test_case "gradient pushes away from clumps" `Quick
      test_gradient_pushes_apart;
    Alcotest.test_case "gradient linear in scale" `Quick test_gradient_scale_linear;
    Alcotest.test_case "fixed cells reduce capacity" `Quick
      test_fixed_cells_reduce_capacity;
    Alcotest.test_case "uniform density has no field" `Quick
      test_gradient_zero_when_uniform ]
