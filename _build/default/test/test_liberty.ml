(* Tests for NLDM look-up tables, the synthetic library and Liberty-lite
   round-tripping. *)

let lib = Liberty.Synthetic.default ()

let sample_lut () =
  Liberty.Lut.make
    ~x_axis:[| 1.0; 2.0; 4.0 |]
    ~y_axis:[| 10.0; 20.0 |]
    ~values:[| 1.0; 2.0; 3.0; 5.0; 4.0; 9.0 |]

let test_lut_make_errors () =
  let expect name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect "empty axis" (fun () ->
    Liberty.Lut.make ~x_axis:[||] ~y_axis:[| 1.0 |] ~values:[||]);
  expect "non increasing" (fun () ->
    Liberty.Lut.make ~x_axis:[| 1.0; 1.0 |] ~y_axis:[| 1.0 |]
      ~values:[| 0.0; 0.0 |]);
  expect "values size" (fun () ->
    Liberty.Lut.make ~x_axis:[| 1.0; 2.0 |] ~y_axis:[| 1.0 |] ~values:[| 0.0 |])

let test_lut_grid_points () =
  let lut = sample_lut () in
  Alcotest.(check (float 1e-12)) "corner" 1.0 (Liberty.Lut.lookup lut 1.0 10.0);
  Alcotest.(check (float 1e-12)) "corner2" 9.0 (Liberty.Lut.lookup lut 4.0 20.0);
  Alcotest.(check (float 1e-12)) "mid row" 2.0 (Liberty.Lut.lookup lut 1.5 10.0);
  Alcotest.(check (float 1e-12)) "mid col" 1.5 (Liberty.Lut.lookup lut 1.0 15.0)

let test_lut_bilinear_center () =
  let lut = sample_lut () in
  (* center of the first cell: average of the four corners 1,2,3,5 *)
  Alcotest.(check (float 1e-12)) "cell center" 2.75
    (Liberty.Lut.lookup lut 1.5 15.0)

let test_lut_extrapolation () =
  let lut = sample_lut () in
  (* below x range: extend the first segment linearly *)
  let v0 = Liberty.Lut.lookup lut 1.0 10.0 in
  let v1 = Liberty.Lut.lookup lut 2.0 10.0 in
  let slope = v1 -. v0 in
  Alcotest.(check (float 1e-9)) "left extrapolation" (v0 -. slope)
    (Liberty.Lut.lookup lut 0.0 10.0);
  Alcotest.(check (float 1e-9)) "right extrapolation"
    (let va = Liberty.Lut.lookup lut 2.0 10.0
     and vb = Liberty.Lut.lookup lut 4.0 10.0 in
     vb +. (vb -. va))
    (Liberty.Lut.lookup lut 6.0 10.0)

let test_lut_constant () =
  let lut = Liberty.Lut.constant 7.5 in
  Alcotest.(check (float 1e-12)) "value" 7.5 (Liberty.Lut.lookup lut 123.0 (-4.0));
  let dx, dy = Liberty.Lut.gradient lut 3.0 3.0 in
  Alcotest.(check (float 1e-12)) "dx" 0.0 dx;
  Alcotest.(check (float 1e-12)) "dy" 0.0 dy

let prop_lut_gradient_matches_fd =
  QCheck2.Test.make ~name:"lut gradient = finite difference" ~count:300
    QCheck2.Gen.(pair (float_range 0.5 5.0) (float_range 5.0 25.0))
    (fun (x, y) ->
      let lut = sample_lut () in
      let v, dx, dy = Liberty.Lut.lookup_with_gradient lut x y in
      let h = 1e-6 in
      let fdx =
        (Liberty.Lut.lookup lut (x +. h) y -. Liberty.Lut.lookup lut (x -. h) y)
        /. (2.0 *. h)
      in
      let fdy =
        (Liberty.Lut.lookup lut x (y +. h) -. Liberty.Lut.lookup lut x (y -. h))
        /. (2.0 *. h)
      in
      (* skip points that straddle a grid line where the gradient jumps *)
      let on_x_edge =
        Array.exists (fun g -> Float.abs (x -. g) < h *. 2.0) [| 1.0; 2.0; 4.0 |]
      in
      let on_y_edge =
        Array.exists (fun g -> Float.abs (y -. g) < h *. 2.0) [| 10.0; 20.0 |]
      in
      Float.is_finite v
      && (on_x_edge || Float.abs (dx -. fdx) < 1e-6)
      && (on_y_edge || Float.abs (dy -. fdy) < 1e-6))

let prop_synthetic_delay_monotone =
  QCheck2.Test.make ~name:"synthetic delay monotone in slew and load" ~count:200
    QCheck2.Gen.(
      quad (float_range 2.0 150.0) (float_range 0.5 30.0)
        (float_range 0.1 10.0) (float_range 0.1 2.0))
    (fun (slew, load, dslew, dload) ->
      let f = Liberty.Synthetic.delay_model ~drive_r:2.0 ~intrinsic:12.0
          ~slew_sensitivity:0.12 in
      f (slew +. dslew) load >= f slew load
      && f slew (load +. dload) >= f slew load)

let test_synthetic_structure () =
  Alcotest.(check int) "cell count" 18 (Array.length lib.Liberty.lib_cells);
  Alcotest.(check bool) "r_unit positive" true (lib.Liberty.r_unit > 0.0);
  let dff =
    match Liberty.find_cell lib "DFF_X1" with
    | Some c -> c
    | None -> Alcotest.fail "DFF_X1 missing"
  in
  Alcotest.(check bool) "dff sequential" true dff.Liberty.lc_is_sequential;
  Alcotest.(check int) "dff checks" 1 (Array.length dff.Liberty.lc_checks);
  Alcotest.(check (list int)) "dff clock pin" [ 1 ] (Liberty.clock_pins dff);
  let inv =
    match Liberty.find_cell lib "INV_X1" with
    | Some c -> c
    | None -> Alcotest.fail "INV_X1 missing"
  in
  Alcotest.(check bool) "inv negative unate" true
    (inv.Liberty.lc_arcs.(0).Liberty.sense = Liberty.Negative_unate);
  Alcotest.(check (list int)) "inv inputs" [ 0 ] (Liberty.input_pins inv);
  Alcotest.(check (list int)) "inv outputs" [ 1 ] (Liberty.output_pins inv);
  Alcotest.(check (option int)) "pin_index" (Some 0) (Liberty.pin_index inv "A");
  Alcotest.(check (option int)) "pin_index missing" None (Liberty.pin_index inv "Z");
  (* every comb cell has one arc per input *)
  Array.iter
    (fun c ->
      if not c.Liberty.lc_is_sequential then
        Alcotest.(check int)
          (c.Liberty.lc_name ^ " arcs")
          (List.length (Liberty.input_pins c))
          (Array.length c.Liberty.lc_arcs))
    lib.Liberty.lib_cells

let test_drive_strength_ordering () =
  (* stronger variants are faster at high load *)
  let delay name =
    match Liberty.find_cell lib name with
    | Some c ->
      Liberty.Lut.lookup c.Liberty.lc_arcs.(0).Liberty.cell_rise 20.0 16.0
    | None -> Alcotest.failf "%s missing" name
  in
  Alcotest.(check bool) "INV_X2 faster than INV_X1 at high load" true
    (delay "INV_X2" < delay "INV_X1");
  Alcotest.(check bool) "INV_X4 faster than INV_X2 at high load" true
    (delay "INV_X4" < delay "INV_X2")

let test_io_roundtrip () =
  let s = Liberty.Io.to_string lib in
  let lib2 = Liberty.Io.of_string s in
  Alcotest.(check string) "exact roundtrip" s (Liberty.Io.to_string lib2);
  Alcotest.(check string) "name" lib.Liberty.lib_name lib2.Liberty.lib_name

let test_io_errors () =
  let expect_fail name src =
    match Liberty.Io.of_string src with
    | exception Failure msg ->
      Alcotest.(check bool)
        (name ^ " mentions position")
        true
        (String.length msg > 0)
    | _ -> Alcotest.failf "%s: expected Failure" name
  in
  expect_fail "not a library" "cell \"x\" {}";
  expect_fail "unterminated string" "library \"x";
  expect_fail "unknown field" "library \"x\" { bogus 1; }";
  expect_fail "bad sense"
    "library \"x\" { cell \"c\" { pin \"A\" { direction input; } pin \"Y\" { \
     direction output; } arc \"A\" -> \"Y\" { sense sideways; } } }";
  expect_fail "unknown pin in arc"
    "library \"x\" { cell \"c\" { pin \"A\" { direction input; } arc \"A\" -> \
     \"Z\" { sense non_unate; } } }"

let test_io_minimal () =
  let src =
    "library \"m\" { r_unit 0.5; c_unit 0.1; default_slew 9;\n\
     # a comment\n\
     cell \"buf\" { area 2; width 1; height 2; sequential false;\n\
     pin \"A\" { direction input; capacitance 1.5; clock false; }\n\
     pin \"Y\" { direction output; capacitance 0; clock false; }\n\
     arc \"A\" -> \"Y\" { sense positive_unate\n\
     ; cell_rise { x 1 2; y 1 2; values 1 2 3 4; }\n\
     cell_fall { x 1 2; y 1 2; values 1 2 3 4; }\n\
     rise_transition { x 1 2; y 1 2; values 1 2 3 4; }\n\
     fall_transition { x 1 2; y 1 2; values 1 2 3 4; } } } }"
  in
  let l = Liberty.Io.of_string src in
  Alcotest.(check (float 1e-12)) "r_unit" 0.5 l.Liberty.r_unit;
  Alcotest.(check (float 1e-12)) "default_slew" 9.0 l.Liberty.default_slew;
  Alcotest.(check int) "one cell" 1 (Array.length l.Liberty.lib_cells);
  let c = l.Liberty.lib_cells.(0) in
  Alcotest.(check (float 1e-12)) "cap" 1.5 c.Liberty.lc_pins.(0).Liberty.lp_capacitance;
  Alcotest.(check bool) "positive" true
    (c.Liberty.lc_arcs.(0).Liberty.sense = Liberty.Positive_unate)

let suite =
  [ Alcotest.test_case "lut make errors" `Quick test_lut_make_errors;
    Alcotest.test_case "lut grid points" `Quick test_lut_grid_points;
    Alcotest.test_case "lut bilinear center" `Quick test_lut_bilinear_center;
    Alcotest.test_case "lut extrapolation" `Quick test_lut_extrapolation;
    Alcotest.test_case "lut constant" `Quick test_lut_constant;
    Alcotest.test_case "synthetic structure" `Quick test_synthetic_structure;
    Alcotest.test_case "drive strength ordering" `Quick test_drive_strength_ordering;
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "io errors" `Quick test_io_errors;
    Alcotest.test_case "io minimal library" `Quick test_io_minimal;
    QCheck_alcotest.to_alcotest prop_lut_gradient_matches_fd;
    QCheck_alcotest.to_alcotest prop_synthetic_delay_monotone ]

let test_lookup_continuous_at_grid () =
  (* bilinear interpolation is continuous across cell boundaries even
     though its gradient is not *)
  let lut = sample_lut () in
  let eps = 1e-9 in
  List.iter
    (fun x ->
      let below = Liberty.Lut.lookup lut (x -. eps) 14.0 in
      let above = Liberty.Lut.lookup lut (x +. eps) 14.0 in
      Alcotest.(check (float 1e-6)) "continuous in x" below above)
    [ 2.0 ];
  List.iter
    (fun y ->
      let below = Liberty.Lut.lookup lut 1.7 (y -. eps) in
      let above = Liberty.Lut.lookup lut 1.7 (y +. eps) in
      Alcotest.(check (float 1e-6)) "continuous in y" below above)
    [ 10.0; 20.0 ]

let suite =
  suite
  @ [ Alcotest.test_case "lookup continuous at grid lines" `Quick
        test_lookup_continuous_at_grid ]
