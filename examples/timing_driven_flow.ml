(* A realistic mini-flow on a superblue-mini benchmark:

   generate -> save to disk -> reload -> global placement (timing-driven)
   -> legalisation -> signoff STA with a critical-endpoint report.

   This is the workload the paper's introduction motivates: a design that
   misses timing after wirelength-driven placement, recovered by the
   differentiable timing objective without a wirelength penalty.

     dune exec examples/timing_driven_flow.exe \
       [-- --domains N] [--profile] [--trace-out FILE]
       [--steiner-period N] [--steiner-dirty G] [--routability]

   With --domains N > 1 every per-iteration kernel runs through a worker
   pool; the resulting placement is bit-identical to the sequential
   one.  --profile prints the per-kernel timing table to stderr;
   --trace-out dumps the span-level JSONL trace.  --steiner-period and
   --steiner-dirty control the timing stage's Steiner rebuild cadence
   and dirty-net threshold (gamma units; negative = rebuild all).
   --routability enables the RUDY + cell-inflation loop in every
   placement stage and reports the final congestion summary.
   --multilevel runs every placement stage through the coarsen/uncoarsen
   V-cycle instead of the flat engine (--levels and --cluster-ratio
   control the cluster hierarchy); on this 3k-cell design it is mostly a
   demonstration — the V-cycle pays off from ~50k cells up. *)

let parse_args () =
  let domains = ref 1 and profile = ref false and trace_out = ref None in
  let steiner_period = ref Core.default_timing.Core.steiner_period in
  let steiner_dirty = ref Core.default_timing.Core.steiner_dirty in
  let routability = ref false in
  let multilevel = ref false in
  let levels = ref Core.default_multilevel.Core.ml_levels in
  let cluster_ratio = ref Core.default_multilevel.Core.ml_cluster_ratio in
  let rec scan = function
    | "--domains" :: v :: rest ->
      domains := int_of_string v;
      scan rest
    | "--profile" :: rest ->
      profile := true;
      scan rest
    | "--trace-out" :: v :: rest ->
      trace_out := Some v;
      scan rest
    | "--steiner-period" :: v :: rest ->
      steiner_period := int_of_string v;
      scan rest
    | "--steiner-dirty" :: v :: rest ->
      let g = float_of_string v in
      steiner_dirty := (if g < 0.0 then None else Some g);
      scan rest
    | "--routability" :: rest ->
      routability := true;
      scan rest
    | "--multilevel" :: rest ->
      multilevel := true;
      scan rest
    | "--levels" :: v :: rest ->
      levels := int_of_string v;
      scan rest
    | "--cluster-ratio" :: v :: rest ->
      cluster_ratio := float_of_string v;
      scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  (!domains, !profile, !trace_out, !steiner_period, !steiner_dirty,
   !routability, !multilevel, !levels, !cluster_ratio)

let () =
  let lib = Liberty.Synthetic.default () in
  let ( domains, profile, trace_out, steiner_period, steiner_dirty,
        routability, multilevel, levels, cluster_ratio ) =
    parse_args ()
  in
  let ml =
    { Core.default_multilevel with
      Core.ml_levels = levels; ml_cluster_ratio = cluster_ratio }
  in
  let route_cfg = if routability then Some Route.default_config else None in
  let report_congestion (r : Core.result) =
    match r.Core.res_route with
    | Some s ->
      Format.printf "  congestion: %a (%d inflation rounds)@."
        Route.pp_summary s r.Core.res_inflation_rounds
    | None -> ()
  in
  let pool =
    if domains > 1 then Some (Parallel.create ~domains ()) else None
  in
  let obs =
    if profile || trace_out <> None then Obs.create ~gc:true ()
    else Obs.disabled
  in
  let place cfg graph =
    if multilevel then Core.run_multilevel ?pool ~obs ~ml cfg graph
    else Core.run ?pool ~obs cfg graph
  in
  (* pick a scaled superblue benchmark and round-trip it through the
     on-disk format, as an external user would *)
  let spec =
    match Workload.find_spec "superblue18-mini" with
    | Some s -> { s with Workload.sp_cells = 3000 }
    | None -> failwith "missing benchmark spec"
  in
  let design0, constraints0 = Workload.generate lib spec in
  let dir = Filename.temp_file "dgp" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let design_path = Filename.concat dir "superblue18-mini.design" in
  Bookshelf.save design_path design0 constraints0;
  Printf.printf "wrote %s (%d cells)\n%!" design_path
    (Netlist.num_cells design0);
  let design, constraints = Bookshelf.load lib design_path in
  let graph = Sta.Graph.build design lib constraints in
  Printf.printf "timing graph: %d levels, %d endpoints\n%!"
    (Sta.Graph.max_level graph + 1)
    (Array.length graph.Sta.Graph.endpoints);

  (* stage 1: wirelength-driven placement to convergence (the flow every
     placer shares) *)
  let wl_cfg =
    { Core.default_config with
      Core.mode = Core.Wirelength_only; routability = route_cfg }
  in
  let r1 = place wl_cfg graph in
  let timer = Sta.Timer.create graph in
  let before = Sta.Timer.run ~obs timer in
  Printf.printf
    "\nwirelength-driven GP: %d iters, HPWL %.3e, WNS %.1f ps, TNS %.1f ps\n%!"
    r1.Core.res_iterations r1.Core.res_hpwl before.Sta.Timer.setup_wns
    before.Sta.Timer.setup_tns;
  report_congestion r1;

  (* stage 2: the path-weighting baseline from scratch on the same
     netlist — exact STA + top-K worst-path net weighting *)
  let pw_cfg =
    { Core.default_config with
      Core.mode = Core.Path_weighting Paths.Weight.default_config;
      routability = route_cfg }
  in
  let rpw = place pw_cfg graph in
  let pw_report = Sta.Timer.run ~obs timer in
  Printf.printf
    "path-weighted GP: %d iters, HPWL %.3e, WNS %.1f ps, TNS %.1f ps\n%!"
    rpw.Core.res_iterations rpw.Core.res_hpwl pw_report.Sta.Timer.setup_wns
    pw_report.Sta.Timer.setup_tns;
  report_congestion rpw;

  (* stage 3: timing-driven placement from scratch on the same netlist *)
  let t_cfg =
    { Core.default_config with
      Core.mode =
        Core.Differentiable_timing
          { Core.default_timing with Core.steiner_period; steiner_dirty };
      routability = route_cfg }
  in
  let r2 = place t_cfg graph in
  report_congestion r2;
  ignore (Legalize.legalize ~obs design);
  let dp = Detailed.refine design in
  Format.printf "\ndetailed placement:@.%a@." Detailed.pp_stats dp;
  let after = Sta.Timer.run ~obs timer in
  Printf.printf
    "timing-driven GP + LG + DP: %d iters, HPWL %.3e, WNS %.1f ps, TNS %.1f ps\n%!"
    r2.Core.res_iterations (Netlist.total_hpwl design)
    after.Sta.Timer.setup_wns after.Sta.Timer.setup_tns;
  let pct a b = 100.0 *. (b -. a) /. Float.abs a in
  Printf.printf "improvement: WNS %.1f%%, TNS %.1f%%\n"
    (pct before.Sta.Timer.setup_wns after.Sta.Timer.setup_wns)
    (pct before.Sta.Timer.setup_tns after.Sta.Timer.setup_tns);

  (* signoff-style endpoint report *)
  Printf.printf "\n5 most critical endpoints after optimisation:\n";
  List.iteri
    (fun i (ep : Sta.Timer.endpoint_slack) ->
      if i < 5 then
        Printf.printf "  %-12s slack %8.1f ps\n"
          design.Netlist.pins.(ep.Sta.Timer.ep_pin).Netlist.pin_name
          ep.Sta.Timer.ep_setup_slack)
    after.Sta.Timer.endpoint_slacks;

  (* and the three worst paths, via the top-K enumeration engine *)
  let view = Paths.analyze ?pool ~obs timer in
  let worst = Paths.enumerate ?pool ~obs ~k:3 view in
  Printf.printf "\n%d worst paths:\n" (List.length worst);
  List.iteri
    (fun i (p : Paths.path) ->
      Printf.printf "  #%d  %-12s slack %8.1f ps  (%d stages)\n" (i + 1)
        design.Netlist.pins.(p.Paths.pt_endpoint).Netlist.pin_name
        p.Paths.pt_slack
        (List.length p.Paths.pt_steps))
    worst;
  Sys.remove design_path;
  Sys.rmdir dir;
  (match trace_out with
   | Some path ->
     Obs.write_trace obs path;
     Printf.printf "\nprofiling trace written to %s\n" path
   | None -> ());
  if profile then Format.eprintf "%a@." Obs.pp_report obs;
  match pool with Some p -> Parallel.shutdown p | None -> ()
