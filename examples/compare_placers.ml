(* Run the placers of the evaluation harness on one design and print a
   side-by-side comparison (the paper's Table 3 plus the path-weighting
   baseline and a routability-driven variant).  The design carries a
   mild congestion hotspot so the congestion columns have something to
   show; every placement is scored for RUDY congestion (peak and
   RC-style top-percentile utilization) next to its timing.

     dune exec examples/compare_placers.exe [-- --domains N] [-- --csv FILE]

   Every run is bit-identical regardless of the domain count. *)

let parse_args () =
  let domains = ref 1 in
  let csv = ref None in
  let rec scan = function
    | "--domains" :: v :: rest ->
      domains := int_of_string v;
      scan rest
    | "--csv" :: v :: rest ->
      csv := Some v;
      scan rest
    | _ :: rest -> scan rest
    | [] -> ()
  in
  scan (List.tl (Array.to_list Sys.argv));
  (!domains, !csv)

let () =
  let lib = Liberty.Synthetic.default () in
  let domains, csv = parse_args () in
  let pool =
    if domains > 1 then Some (Parallel.create ~domains ()) else None
  in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 2000; sp_clock_period = 950.0; sp_hotspot = 0.25 }
  in
  let table =
    Report.Table.create
      [ "Placer"; "WNS (ps)"; "TNS (ps)"; "HPWL (um)"; "Peak cong";
        "RC cong"; "Runtime (s)" ]
  in
  let evaluate ?routability name mode =
    (* fresh design per run: each placer starts from the same netlist *)
    let design, constraints = Workload.generate lib spec in
    let graph = Sta.Graph.build design lib constraints in
    let config = { Core.default_config with Core.mode; routability } in
    let result = Core.run ?pool config graph in
    ignore (Legalize.legalize design);
    let report, hpwl = Core.score graph in
    (* congestion of the final (legalised) placement, same knobs for
       every row so the columns compare *)
    let rudy = Route.Rudy.create design in
    Route.Rudy.update ?pool rudy;
    let cong = Route.overflow rudy in
    Report.Table.add_row table
      [ name;
        Printf.sprintf "%.1f" report.Sta.Timer.setup_wns;
        Printf.sprintf "%.1f" report.Sta.Timer.setup_tns;
        Printf.sprintf "%.3e" hpwl;
        Printf.sprintf "%.2f" cong.Route.ov_peak;
        Printf.sprintf "%.2f" cong.Route.ov_rc;
        Printf.sprintf "%.2f" result.Core.res_runtime ];
    ((report.Sta.Timer.setup_wns, report.Sta.Timer.setup_tns), cong)
  in
  Printf.printf "placing %d cells five ways...\n%!" spec.Workload.sp_cells;
  let dp, _ = evaluate "DREAMPlace [16]" Core.Wirelength_only in
  let nw, _ =
    evaluate "Net weighting [24]"
      (Core.Net_weighting Netweight.default_config)
  in
  let pw, _ =
    evaluate "Path weighting [paths]"
      (Core.Path_weighting Paths.Weight.default_config)
  in
  let ours, ours_cong =
    evaluate "Ours (differentiable)"
      (Core.Differentiable_timing Core.default_timing)
  in
  let ours_rt, ours_rt_cong =
    evaluate ~routability:Route.default_config "Ours + routability"
      (Core.Differentiable_timing Core.default_timing)
  in
  print_newline ();
  print_string (Report.Table.render table);
  let improvement (w_ref, t_ref) (w, t) =
    (100.0 *. (w -. w_ref) /. Float.abs w_ref,
     100.0 *. (t -. t_ref) /. Float.abs t_ref)
  in
  let wi, ti = improvement dp ours in
  Printf.printf "\nours vs wirelength-only: WNS %+.1f%%, TNS %+.1f%%\n" wi ti;
  let wi, ti = improvement nw ours in
  Printf.printf "ours vs net weighting:   WNS %+.1f%%, TNS %+.1f%%\n" wi ti;
  let wi, ti = improvement pw ours in
  Printf.printf "ours vs path weighting:  WNS %+.1f%%, TNS %+.1f%%\n" wi ti;
  let wi, ti = improvement dp pw in
  Printf.printf "path weighting vs wirelength-only: WNS %+.1f%%, TNS %+.1f%%\n"
    wi ti;
  (* the timing x routability trade-off: congestion bought, timing paid *)
  let wi, ti = improvement ours ours_rt in
  Printf.printf
    "routability vs ours: peak congestion %+.1f%%, rc %+.1f%%, \
     WNS %+.1f%%, TNS %+.1f%%\n"
    (100.0 *. (ours_rt_cong.Route.ov_peak -. ours_cong.Route.ov_peak)
     /. Float.max 1e-9 ours_cong.Route.ov_peak)
    (100.0 *. (ours_rt_cong.Route.ov_rc -. ours_cong.Route.ov_rc)
     /. Float.max 1e-9 ours_cong.Route.ov_rc)
    wi ti;
  (match csv with
   | Some path ->
     Out_channel.with_open_text path (fun oc ->
       Out_channel.output_string oc (Report.Table.render_csv table));
     Printf.printf "\ncomparison written to %s\n" path
   | None -> ());
  match pool with Some p -> Parallel.shutdown p | None -> ()
