(* Incremental timing-driven refinement: after global placement and
   legalisation, walk the critical path and try small relocations of its
   cells, accepting moves that improve WNS.  Each trial is evaluated by
   the incremental STA engine, which only re-propagates the affected
   cone — the workflow the ICCAD 2015 contest (the paper's benchmark
   suite) is about.

     dune exec examples/incremental_timing.exe *)

let () =
  let lib = Liberty.Synthetic.default () in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 1200; sp_clock_period = 900.0 }
  in
  let design, constraints = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib constraints in
  (* a quick wirelength-driven placement to start from *)
  let _ = Core.run { Core.default_config with Core.mode = Core.Wirelength_only } graph in
  ignore (Legalize.legalize design);
  let inc = Sta.Incremental.create graph in
  let r0 = Sta.Incremental.update inc in
  Printf.printf "start: WNS %.1f ps, TNS %.1f ps\n%!" r0.Sta.Timer.setup_wns
    r0.Sta.Timer.setup_tns;
  let evaluations = ref 0 and accepted = ref 0 and repropagated = ref 0 in
  let try_move cell ~x ~y ~current_wns =
    let c = design.Netlist.cells.(cell) in
    let x0 = c.Netlist.x and y0 = c.Netlist.y in
    Sta.Incremental.move_cell inc cell ~x ~y;
    let r = Sta.Incremental.update inc in
    incr evaluations;
    repropagated := !repropagated + Sta.Incremental.last_update_pin_count inc;
    if r.Sta.Timer.setup_wns > current_wns +. 1e-9 then begin
      incr accepted;
      Some r.Sta.Timer.setup_wns
    end
    else begin
      (* revert *)
      Sta.Incremental.move_cell inc cell ~x:x0 ~y:y0;
      let _ = Sta.Incremental.update inc in
      None
    end
  in
  let wns = ref r0.Sta.Timer.setup_wns in
  for _pass = 1 to 6 do
    let path = Sta.Timer.critical_path (Sta.Incremental.timer inc) in
    (* candidate cells: owners of the path's pins, excluding pads *)
    let cells =
      List.filter_map
        (fun (s : Sta.Timer.path_step) ->
          let c = design.Netlist.pins.(s.Sta.Timer.ps_pin).Netlist.cell in
          if design.Netlist.cells.(c).Netlist.fixed then None else Some c)
        path
      |> List.sort_uniq compare
    in
    List.iter
      (fun cell ->
        let c = design.Netlist.cells.(cell) in
        (* probe the 4 compass directions by one row height *)
        let step = design.Netlist.row_height in
        let moves =
          [ (c.Netlist.x +. step, c.Netlist.y);
            (c.Netlist.x -. step, c.Netlist.y);
            (c.Netlist.x, c.Netlist.y +. step);
            (c.Netlist.x, c.Netlist.y -. step) ]
        in
        let hw = c.Netlist.width /. 2.0 and hh = c.Netlist.height /. 2.0 in
        let r = design.Netlist.region in
        (* the incremental engine validates moves like the legalizer:
           the whole bounding box must stay inside the core region *)
        let legal x y =
          x -. hw >= r.Geometry.Rect.lx
          && x +. hw <= r.Geometry.Rect.hx
          && y -. hh >= r.Geometry.Rect.ly
          && y +. hh <= r.Geometry.Rect.hy
        in
        List.iter
          (fun (x, y) ->
            if legal x y then
              match try_move cell ~x ~y ~current_wns:!wns with
              | Some better -> wns := better
              | None -> ())
          moves)
      cells
  done;
  let r1 = Sta.Incremental.update inc in
  Printf.printf "after refinement: WNS %.1f ps, TNS %.1f ps\n" r1.Sta.Timer.setup_wns
    r1.Sta.Timer.setup_tns;
  Printf.printf "%d trial moves (%d accepted), %d pins re-propagated total\n"
    !evaluations !accepted !repropagated;
  Printf.printf
    "(a full STA would have re-propagated %d pins per trial: %.0fx more work)\n"
    (Netlist.num_pins design)
    (float_of_int (!evaluations * Netlist.num_pins design)
     /. float_of_int (max 1 !repropagated))
