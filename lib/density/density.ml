let pi = 4.0 *. atan 1.0

type t = {
  design : Netlist.t;
  n : int;
  target_density : float;
  bin_w : float;
  bin_h : float;
  bin_area : float;
  total_movable_area : float;
  fixed_area : float array;    (* um^2 of fixed cells per bin *)
  movable_area : float array;  (* um^2 of movable cells per bin *)
  rho : float array;           (* normalised density *)
  psi : float array;           (* potential *)
  field_x : float array;       (* -d psi / d x_hat, bin units *)
  field_y : float array;
  coeff : float array;         (* scratch: spectral coefficients *)
  scratch : float array;
  (* Reusable per-chunk splat accumulators.  [parallel_for_reduce]'s
     default chunking is pool-independent, so the chunk count is known
     at create time; handing zero-filled grids out of this pool instead
     of allocating fresh ones kills the dominant per-iteration
     major-heap churn at 10^5+ cells (one n*n float array per chunk per
     update).  [splat_next] is the hand-out cursor, reset per update. *)
  splat_grids : float array array;
  splat_next : int Atomic.t;
}

let round_pow2 v =
  let rec up p = if p >= v then p else up (2 * p) in
  let p = up 1 in
  if p > 1 && (p - v) * 2 > p - (p / 2) then p / 2 else p

let default_bins design =
  let c = Netlist.num_cells design in
  let raw = int_of_float (Float.sqrt (float_of_int c)) in
  min 256 (max 16 (round_pow2 raw))

(* Splat a rectangle's area onto the grid. *)
let splat grid n region bin_w bin_h (r : Geometry.Rect.t) =
  let lx = region.Geometry.Rect.lx and ly = region.Geometry.Rect.ly in
  let bx0 = int_of_float (Float.floor ((r.Geometry.Rect.lx -. lx) /. bin_w)) in
  let bx1 = int_of_float (Float.floor ((r.Geometry.Rect.hx -. lx) /. bin_w)) in
  let by0 = int_of_float (Float.floor ((r.Geometry.Rect.ly -. ly) /. bin_h)) in
  let by1 = int_of_float (Float.floor ((r.Geometry.Rect.hy -. ly) /. bin_h)) in
  let clamp v = max 0 (min (n - 1) v) in
  let bx0 = clamp bx0 and bx1 = clamp bx1 in
  let by0 = clamp by0 and by1 = clamp by1 in
  for bx = bx0 to bx1 do
    for by = by0 to by1 do
      let cell_lx = lx +. (float_of_int bx *. bin_w) in
      let cell_ly = ly +. (float_of_int by *. bin_h) in
      let ox =
        Float.max 0.0
          (Float.min r.Geometry.Rect.hx (cell_lx +. bin_w)
           -. Float.max r.Geometry.Rect.lx cell_lx)
      in
      let oy =
        Float.max 0.0
          (Float.min r.Geometry.Rect.hy (cell_ly +. bin_h)
           -. Float.max r.Geometry.Rect.ly cell_ly)
      in
      grid.((bx * n) + by) <- grid.((bx * n) + by) +. (ox *. oy)
    done
  done

let cell_rect (c : Netlist.cell) =
  Geometry.Rect.of_center
    (Geometry.Point.make c.Netlist.x c.Netlist.y)
    ~width:c.Netlist.width ~height:c.Netlist.height

let create ?bins ?(target_density = 1.0) design =
  let n =
    match bins with
    | Some b -> max 4 (round_pow2 b)
    | None -> default_bins design
  in
  let region = design.Netlist.region in
  let bin_w = Geometry.Rect.width region /. float_of_int n in
  let bin_h = Geometry.Rect.height region /. float_of_int n in
  let fixed_area = Array.make (n * n) 0.0 in
  let total_movable_area = ref 0.0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      if c.Netlist.fixed then
        splat fixed_area n region bin_w bin_h (cell_rect c)
      else
        total_movable_area :=
          !total_movable_area +. (c.Netlist.width *. c.Netlist.height))
    design.Netlist.cells;
  { design; n; target_density; bin_w; bin_h;
    bin_area = bin_w *. bin_h;
    total_movable_area = !total_movable_area;
    fixed_area;
    movable_area = Array.make (n * n) 0.0;
    rho = Array.make (n * n) 0.0;
    psi = Array.make (n * n) 0.0;
    field_x = Array.make (n * n) 0.0;
    field_y = Array.make (n * n) 0.0;
    coeff = Array.make (n * n) 0.0;
    scratch = Array.make (n * n) 0.0;
    splat_grids =
      (let ncells = Netlist.num_cells design in
       let grain = Parallel.reduce_grain ~cost:8.0 (max 1 ncells) in
       let chunks = max 1 ((max 1 ncells + grain - 1) / grain) in
       Array.init chunks (fun _ -> Array.make (n * n) 0.0));
    splat_next = Atomic.make 0 }

let bins t = t.n

let update ?pool ?(obs = Obs.disabled) t =
  let n = t.n in
  let cells = t.design.Netlist.cells in
  let ncells = Array.length cells in
  Obs.start obs Obs.Density_splat;
  (* splat cells into per-chunk grids merged in chunk order; the chunk
     split depends only on the cell count, so pooled splats reproduce the
     sequential ones bit for bit *)
  let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
  Atomic.set t.splat_next 0;
  let grid =
    Parallel.parallel_for_reduce p ~obs ~cost:8.0 ncells
      ~init:(fun () ->
        (* zeroed scratch from the preallocated pool; falls back to a
           fresh grid if a custom grain ever makes more chunks *)
        let k = Atomic.fetch_and_add t.splat_next 1 in
        if k < Array.length t.splat_grids then begin
          let g = t.splat_grids.(k) in
          Array.fill g 0 (n * n) 0.0;
          g
        end
        else Array.make (n * n) 0.0)
      ~body:(fun acc i ->
        let c = cells.(i) in
        if not c.Netlist.fixed then
          splat acc n t.design.Netlist.region t.bin_w t.bin_h (cell_rect c))
      ~merge:(fun a b ->
        for k = 0 to (n * n) - 1 do
          a.(k) <- a.(k) +. b.(k)
        done;
        a)
  in
  Array.blit grid 0 t.movable_area 0 (n * n);
  for b = 0 to (n * n) - 1 do
    t.rho.(b) <- (t.movable_area.(b) +. t.fixed_area.(b)) /. t.bin_area
  done;
  Obs.stop obs Obs.Density_splat;
  Obs.start obs Obs.Density_dct;
  (* spectral Poisson solve: coefficients of rho in the cosine basis *)
  let a = Transform.Grid.dct2 ?pool ~obs n t.rho in
  let scale k = if k = 0 then 1.0 /. float_of_int n else 2.0 /. float_of_int n in
  let w k = pi *. float_of_int k /. float_of_int n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let idx = (u * n) + v in
      if u = 0 && v = 0 then t.coeff.(idx) <- 0.0
      else begin
        let wu = w u and wv = w v in
        t.coeff.(idx) <-
          a.(idx) *. scale u *. scale v /. ((wu *. wu) +. (wv *. wv))
      end
    done
  done;
  let psi = Transform.Grid.cos_cos_synth ?pool ~obs n t.coeff in
  Array.blit psi 0 t.psi 0 (n * n);
  (* E_x = sum c_uv w_u sin(w_u x) cos(w_v y): rows carry the x index *)
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      t.scratch.((u * n) + v) <- t.coeff.((u * n) + v) *. w u
    done
  done;
  let ex = Transform.Grid.sin_cos_synth ?pool ~obs n t.scratch in
  Array.blit ex 0 t.field_x 0 (n * n);
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      t.scratch.((u * n) + v) <- t.coeff.((u * n) + v) *. w v
    done
  done;
  let ey = Transform.Grid.cos_sin_synth ?pool ~obs n t.scratch in
  Array.blit ey 0 t.field_y 0 (n * n);
  Obs.stop obs Obs.Density_dct

let penalty t =
  let acc = ref 0.0 in
  for b = 0 to (t.n * t.n) - 1 do
    acc := !acc +. (t.rho.(b) *. t.psi.(b))
  done;
  0.5 *. !acc

let overflow t =
  if t.total_movable_area <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for b = 0 to (t.n * t.n) - 1 do
      let capacity =
        t.target_density *. Float.max 0.0 (t.bin_area -. t.fixed_area.(b))
      in
      acc := !acc +. Float.max 0.0 (t.movable_area.(b) -. capacity)
    done;
    !acc /. t.total_movable_area
  end

(* Bilinear interpolation of a bin-center field at bin coordinates. *)
let interp t field bx by =
  let n = t.n in
  let fx = Geometry.clamp ~lo:0.0 ~hi:(float_of_int n -. 1.0) (bx -. 0.5) in
  let fy = Geometry.clamp ~lo:0.0 ~hi:(float_of_int n -. 1.0) (by -. 0.5) in
  let ix = min (n - 2) (int_of_float fx) and iy = min (n - 2) (int_of_float fy) in
  let ix = max 0 ix and iy = max 0 iy in
  let tx = fx -. float_of_int ix and ty = fy -. float_of_int iy in
  let g i j = field.((i * n) + j) in
  (g ix iy *. (1.0 -. tx) *. (1.0 -. ty))
  +. (g (ix + 1) iy *. tx *. (1.0 -. ty))
  +. (g ix (iy + 1) *. (1.0 -. tx) *. ty)
  +. (g (ix + 1) (iy + 1) *. tx *. ty)

let gradient ?pool ?(obs = Obs.disabled) t ~scale ~grad_x ~grad_y =
  let region = t.design.Netlist.region in
  let ncells = Netlist.num_cells t.design in
  if Array.length grad_x <> ncells || Array.length grad_y <> ncells then
    invalid_arg "Density.gradient: size mismatch";
  Obs.start obs Obs.Density_grad;
  let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
  let cells = t.design.Netlist.cells in
  (* each task writes only its own cell's gradient slot: race-free and
     bit-identical under the pool *)
  Parallel.parallel_for p ~obs ~cost:6.0 (Array.length cells) (fun k ->
    let c = cells.(k) in
    if not c.Netlist.fixed then begin
      let q = c.Netlist.width *. c.Netlist.height /. t.bin_area in
      let bx = (c.Netlist.x -. region.Geometry.Rect.lx) /. t.bin_w in
      let by = (c.Netlist.y -. region.Geometry.Rect.ly) /. t.bin_h in
      let ex = interp t t.field_x bx by in
      let ey = interp t t.field_y bx by in
      (* d(energy)/dx = -q * E_x, converted from bin to micron units *)
      let i = c.Netlist.cell_id in
      grad_x.(i) <- grad_x.(i) -. (scale *. q *. ex /. t.bin_w);
      grad_y.(i) <- grad_y.(i) -. (scale *. q *. ey /. t.bin_h)
    end);
  Obs.stop obs Obs.Density_grad
