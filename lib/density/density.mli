(** Electrostatic density penalty (ePlace-style; paper §2.2, Eq. 3).

    Movable and fixed cell areas are splatted onto an [n] x [n] bin grid;
    the density map is treated as a charge distribution and the Poisson
    equation [laplacian psi = -rho] is solved spectrally with cosine
    transforms (Neumann boundary).  The resulting electric field [-grad
    psi] pushes cells out of over-dense regions; the penalty value is the
    system's electrostatic energy, and a cell's gradient is
    [- area * field] at its location.

    The grid resolution adapts to the design (roughly [sqrt cells] bins
    per side, clamped to a power of two in [16, 256]) so the FFT-based
    transforms stay fast. *)

type t

val create : ?bins:int -> ?target_density:float -> Netlist.t -> t
(** [target_density] (default 1.0) scales the per-bin capacity used by
    {!overflow}.  [bins] overrides the automatic grid sizing (rounded to
    a power of two). *)

val bins : t -> int

val round_pow2 : int -> int
(** Nearest power of two (ties towards the smaller), the grid-side
    rounding rule used by {!create}.  Exposed so sibling grids (the
    RUDY congestion map in [Route]) can adopt the identical policy. *)

val default_bins : Netlist.t -> int
(** The automatic grid sizing used when [?bins] is omitted: roughly
    [sqrt cells] bins per side, power-of-two clamped to [16, 256]. *)

val update : ?pool:Parallel.pool -> ?obs:Obs.t -> t -> unit
(** Re-splat densities from current cell positions and solve for the
    potential and field.  [obs] records the two phases as
    [density.splat] and [density.dct] spans.  Call once per placement iteration, before
    {!penalty}, {!overflow} or {!gradient}.  With [pool], cells splat
    into per-chunk grids merged in chunk order and the DCT Poisson solve
    parallelises over rows/columns; the chunk split depends only on the
    cell count, so pooled results are bit-identical to sequential
    ones. *)

val penalty : t -> float
(** Electrostatic energy [0.5 * sum rho * psi] (after {!update}). *)

val overflow : t -> float
(** Total density overflow ratio:
    [sum_b max 0 (area_b - capacity_b) / total movable area].  This is
    the placer's stop criterion (paper Table 3 uses the same stop
    criterion on density overflow for all placers). *)

val gradient :
  ?pool:Parallel.pool -> ?obs:Obs.t ->
  t -> scale:float -> grad_x:float array -> grad_y:float array -> unit
(** Accumulate [scale * d(penalty)/d(cell center)] for every movable
    cell into [grad_x]/[grad_y] (length [num_cells]).  The field is
    bilinearly interpolated between bin centers for smoothness.  Each
    cell's task writes only its own slot, so pooled evaluation is
    race-free and bit-identical to sequential. *)
