(** Top-K worst-slack path enumeration over the exact timer.

    The engine flattens the timer's post-{!Sta.Timer.run} state into an
    in-edge CSR over timing nodes (a node is a [(pin, transition)] pair,
    stored at [2 * pin + transition_index]) with one back-pointer per
    node: the in-edge whose [at(source) + delay] realises the node's
    arrival time, selected with exactly the tie-breaks of
    {!Sta.Timer.critical_path}.  The back-pointer tree is the "worst
    path" tree; the K worst paths per endpoint are then enumerated by
    deviation-based branch-and-bound (Yen/Eppstein adapted to the
    max-plus DAG).  Because the timer's arrival times are exact
    max-prefix arrivals, every candidate's priority {e is} its final
    path slack, so the best-first search pops paths in slack order and
    pruning against a slack limit is exact — no candidate is ever
    expanded and later discarded.

    Deviations are generated {e lazily} (REA/Eppstein-style): a popped
    candidate pushes at most two successors — its next sibling in the
    parent's slack-sorted deviation list and its own first child —
    instead of every deviation of the whole backbone, so the heap stays
    O(pops) instead of O(pops × path length × fan-in).  The global
    enumeration orders endpoints worst-slack-first and threads a
    tightening k-th-best slack bound through the scan, so endpoints that
    cannot contribute to the global top-K are pruned before their
    branch-and-bound starts, and paths are materialised (step lists,
    at/slew lookups, net/arc lists) only after the global top-K cut.
    The output — paths, ranks, slacks, bit patterns — is identical to
    the eager {!Reference} implementation; only the work is smaller.

    Determinism: per-endpoint enumeration never looks outside its own
    endpoint, the endpoint fan-out goes through
    {!Parallel.parallel_for_reduce} (chunk-order merge), the global
    ranking is a total order, and the shared bound only ever prunes
    candidates that cannot survive that total-order cut, so pooled runs
    are bit-identical to sequential ones at any domain count. *)

type t
(** A path-search view of one timer.  Valid for the placement at which
    it was built; rebuild after the next {!Sta.Timer.run}. *)

val analyze : ?pool:Parallel.pool -> ?obs:Obs.t -> Sta.Timer.t -> t
(** Build the in-edge CSR and arrival back-pointers from the timer's
    current state (one sweep over the CSR arc structure, node-parallel
    under [pool]).  The timer must have been {!Sta.Timer.run} first. *)

val num_edges : t -> int
(** Number of flattened timing in-edges (net + cell, both transitions). *)

(** One enumerated path, startpoint first.  [pt_rank] is the path's
    0-based rank within its endpoint's enumeration; [pt_nets] and
    [pt_arcs] list the net ids and cell-arc ids traversed, in path
    order. *)
type path = {
  pt_endpoint : int;
  pt_rank : int;
  pt_slack : float;
  pt_steps : Sta.Timer.path_step list;
  pt_nets : int list;
  pt_arcs : int list;
}

val enumerate_endpoint : ?slack_limit:float -> k:int -> t -> int -> path list
(** The [k] worst-slack paths ending at one endpoint pin, worst first;
    fewer when the endpoint has fewer distinct paths (none when it is
    unreachable).  Slacks are non-decreasing in rank, and the rank-0
    path is bit-identical to [Sta.Timer.critical_path ~endpoint].  With
    [slack_limit], only paths with slack strictly below the limit are
    returned (exact pruning, e.g. [0.0] for violating paths only). *)

val enumerate :
  ?pool:Parallel.pool -> ?obs:Obs.t -> ?slack_limit:float -> k:int -> t ->
  path list
(** The [k] globally worst paths across all endpoints, worst first.
    Endpoints enumerate in parallel under [pool] (worst-endpoint-first,
    pruned by the running k-th-best slack bound); results are merged
    under the total order (slack, endpoint position, rank), so the
    output is bit-identical across domain counts and the first path
    matches [Sta.Timer.critical_path]'s default endpoint choice.  With
    [obs], records the [paths.pushed] / [paths.popped] / [paths.pruned]
    / [paths.endpoints_skipped] candidate counters (work tallies, not
    outputs: their values may vary with scheduling). *)

val enumerate_grain : k:int -> int -> int
(** The chunk grain [enumerate] uses for its endpoint fan-out over [n]
    endpoints: a pure function of [(k, n)] that splits finer as [k]
    grows, because per-endpoint branch-and-bound cost scales with [k].
    Exposed so benchmarks can report the chunking. *)

(** The original eager deviation branch-and-bound, kept verbatim as the
    bit-identity oracle for the lazy engine and as the benchmark
    baseline.  [enumerate] here pushes every deviation of a popped
    candidate's backbone and materialises every popped path; its output
    is bitwise identical to the top-level {!enumerate}. *)
module Reference : sig
  val enumerate_endpoint :
    ?slack_limit:float -> k:int -> t -> int -> path list

  val enumerate :
    ?pool:Parallel.pool -> ?slack_limit:float -> k:int -> t -> path list
end

val net_criticality : t -> path list -> float array
(** Per-net criticality accumulated over a path list: each path adds
    its severity — [0] when its slack is non-negative, otherwise
    [min 1 (-slack / max 1 (-worst slack))] — to every net it crosses.
    Indexed by net id. *)

val arc_criticality : t -> path list -> float array
(** Same accumulation over the cell arcs of each path, indexed by the
    timing graph's arc id. *)

(** Path-criticality net weighting (the critical-path extraction scheme
    of Shi et al., arXiv 2503.11674): between placement iterations, run
    the exact timer, enumerate the K worst violating paths, and escalate
    the weights of the nets on them with momentum smoothing.  Mirrors
    {!Netweight}'s cadence machinery so [Core] can drive both the same
    way. *)
module Weight : sig
  type config = {
    k : int;             (** paths enumerated per update. *)
    alpha : float;       (** weight escalation rate. *)
    beta : float;        (** momentum on per-net criticality. *)
    max_weight : float;  (** weight ceiling. *)
    decay : float;
    (** weight relaxation toward 1 as momentum fades: with momentum [m],
        the excess [weight - 1] is kept at factor
        [decay + (1 - decay) * min 1 m] before escalation, so a net that
        leaves every violating path sheds its inflated weight
        geometrically instead of ratcheting forever. *)
    period : int;        (** iterations between updates. *)
    rebuild_trees : bool;
    (** rebuild Steiner topologies at each update (vs refresh). *)
  }

  val default_config : config

  type t

  val create : ?config:config -> Sta.Graph.t -> t
  val config : t -> config

  val timer : t -> Sta.Timer.t
  (** The engine's exact timer (reusable for trace sampling). *)

  val should_update : t -> int -> bool

  val update : ?pool:Parallel.pool -> ?obs:Obs.t -> t -> Sta.Timer.report
  (** Run the timer, enumerate the K worst violating paths, update net
      weights in place (escalation by momentum, relaxation toward 1 as
      momentum fades), and return the timing report. *)

  val reset : t -> unit
  (** Restore unit weights and clear momentum. *)
end
