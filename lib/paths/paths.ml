(* Top-K worst-slack path enumeration over the exact timer.

   Timing nodes are (pin, transition) pairs at index
   [2 * pin + transition_index].  [analyze] flattens the timer state
   into an in-edge CSR over these nodes plus one back-pointer per node
   (the in-edge realising its arrival time, with critical_path's exact
   tie-breaks), so the back-pointer walk from any node reproduces
   Sta.Timer.critical_path bitwise.  Enumeration is per-endpoint
   deviation-based branch-and-bound: a candidate fixes a suffix of the
   path and lets the prefix follow back-pointers; its priority is the
   exact slack of the completed path (arrival times are exact max-prefix
   arrivals), so a min-heap pops paths in slack order and a slack limit
   prunes exactly.

   The production engine generates deviations *lazily*: a popped
   candidate pushes at most two successors (its first child — the best
   deviation off its own prefix spine — and its next sibling in the
   parent's slack-sorted deviation list) instead of every deviation of
   the whole backbone, and the global enumeration threads a tightening
   k-th-best slack bound through a worst-endpoint-first scan so healthy
   endpoints are pruned before their search starts.  Materialisation
   (step lists, at/slew lookups, net/arc lists) is deferred until after
   the global top-K cut.  [Reference] keeps the original eager
   implementation verbatim as the bit-identity oracle and benchmark
   baseline. *)

let tr_of ti = if ti = 0 then Sta.Rise else Sta.Fall

type t = {
  timer : Sta.Timer.t;
  graph : Sta.Graph.t;
  (* in-edge CSR over timing nodes: edge [e] enters node [v] from
     [tin_src.(e)] with delay [tin_delay.(e)]; exactly one of
     [tin_net]/[tin_arc] is >= 0, identifying a net arc or a cell arc. *)
  tin_off : int array;
  tin_src : int array;
  tin_delay : float array;
  tin_net : int array;
  tin_arc : int array;
  pred : int array;  (* per node: in-edge realising its arrival, or -1 *)
  (* Memoized worst-first endpoint prescan (per-endpoint rank-0 slack +
     the worst-first visit order).  A view is a frozen snapshot of one
     placement's timing, so the prescan is computed once per view and
     reused by every subsequent [enumerate] on it — which is what lets
     a serving daemon answer consecutive what-if [paths] queries on an
     unchanged topology without re-scanning every endpoint. *)
  mutable prescan : (float array * int array) option;
}

type path = {
  pt_endpoint : int;
  pt_rank : int;
  pt_slack : float;
  pt_steps : Sta.Timer.path_step list;
  pt_nets : int list;
  pt_arcs : int list;
}

let num_edges t = Array.length t.tin_src

let analyze_run ?pool ?obs timer =
  let nets = Sta.Timer.nets timer in
  let g = nets.Sta.Nets.graph in
  let design = g.Sta.Graph.design in
  let npins = Netlist.num_pins design in
  let nnodes = 2 * npins in
  let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
  let at v ti = Sta.Timer.at_late timer v (tr_of ti) in
  let slew v ti = Sta.Timer.slew_late timer v (tr_of ti) in
  (* pass 1: in-degree of every node (no LUT evaluations needed) *)
  let counts = Array.make nnodes 0 in
  Parallel.parallel_for p ?obs ~cost:8.0 nnodes (fun node ->
      let v = node / 2 and oi = node land 1 in
      let pin = design.Netlist.pins.(v) in
      let net = pin.Netlist.net in
      let c = ref 0 in
      if
        pin.Netlist.direction = Netlist.Input
        && net >= 0
        && nets.Sta.Nets.trees.(net) <> None
      then begin
        let u = g.Sta.Graph.net_driver_of.(net) in
        if u >= 0 && u <> v && at u oi > neg_infinity then incr c
      end;
      for k = g.Sta.Graph.fanin_off.(v) to g.Sta.Graph.fanin_off.(v + 1) - 1 do
        let a = g.Sta.Graph.fanin_arc.(k) in
        let u = g.Sta.Graph.arc_from.(a) in
        let sub = (g.Sta.Graph.arc_mask.(a) lsr (2 * oi)) land 3 in
        for ii = 0 to 1 do
          if sub land (1 lsl ii) <> 0 && at u ii > neg_infinity then incr c
        done
      done;
      counts.(node) <- !c);
  let tin_off = Array.make (nnodes + 1) 0 in
  for i = 0 to nnodes - 1 do
    tin_off.(i + 1) <- tin_off.(i) + counts.(i)
  done;
  let nedges = tin_off.(nnodes) in
  let tin_src = Array.make nedges 0 in
  let tin_delay = Array.make nedges 0.0 in
  let tin_net = Array.make nedges (-1) in
  let tin_arc = Array.make nedges (-1) in
  let pred = Array.make nnodes (-1) in
  (* pass 2: fill each node's edge slice and pick its back-pointer.  The
     net edge comes first and wins outright when present (the timer's
     retrace tries it first); otherwise the cell contribution minimising
     |at(u) + d - at(v)| wins, first strict minimum in (arc, transition)
     order — the same selection critical_path makes. *)
  Parallel.parallel_for p ?obs ~cost:16.0 nnodes (fun node ->
      let v = node / 2 and oi = node land 1 in
      let pin = design.Netlist.pins.(v) in
      let net = pin.Netlist.net in
      let cursor = ref tin_off.(node) in
      let has_net_edge = ref false in
      (if pin.Netlist.direction = Netlist.Input && net >= 0 then
         match nets.Sta.Nets.trees.(net) with
         | Some (_, rc) ->
           let u = g.Sta.Graph.net_driver_of.(net) in
           if u >= 0 && u <> v && at u oi > neg_infinity then begin
             tin_src.(!cursor) <- (2 * u) + oi;
             tin_delay.(!cursor) <- Rc.sink_delay rc nets.Sta.Nets.tree_index.(v);
             tin_net.(!cursor) <- net;
             has_net_edge := true;
             incr cursor
           end
         | None -> ());
      let lo = g.Sta.Graph.fanin_off.(v) and hi = g.Sta.Graph.fanin_off.(v + 1) in
      if hi > lo then begin
        (* cell-arc delay is looked up against the output net's root
           load, as in propagation and retrace *)
        let load =
          if net >= 0 then
            match nets.Sta.Nets.trees.(net) with
            | Some (_, rc) -> Rc.root_load rc
            | None -> 0.0
          else 0.0
        in
        for k = lo to hi - 1 do
          let a = g.Sta.Graph.fanin_arc.(k) in
          let u = g.Sta.Graph.arc_from.(a) in
          let arc = g.Sta.Graph.arc_table.(a) in
          let sub = (g.Sta.Graph.arc_mask.(a) lsr (2 * oi)) land 3 in
          for ii = 0 to 1 do
            if sub land (1 lsl ii) <> 0 && at u ii > neg_infinity then begin
              let lut =
                if oi = 0 then arc.Liberty.cell_rise else arc.Liberty.cell_fall
              in
              tin_src.(!cursor) <- (2 * u) + ii;
              tin_delay.(!cursor) <- Liberty.Lut.lookup lut (slew u ii) load;
              tin_arc.(!cursor) <- a;
              incr cursor
            end
          done
        done
      end;
      if !has_net_edge then pred.(node) <- tin_off.(node)
      else begin
        let best = ref (-1) and best_err = ref infinity in
        let av = at v oi in
        for e = tin_off.(node) to !cursor - 1 do
          let u = tin_src.(e) in
          let err = Float.abs (at (u / 2) (u land 1) +. tin_delay.(e) -. av) in
          if err < !best_err then begin
            best_err := err;
            best := e
          end
        done;
        pred.(node) <- !best
      end);
  { timer; graph = g; tin_off; tin_src; tin_delay; tin_net; tin_arc; pred;
    prescan = None }

(* binary min-heap, shared by the eager reference and the lazy engine *)
module MakeHeap (E : sig
  type elt

  val dummy : elt
  val less : elt -> elt -> bool
end) =
struct
  type t = { mutable a : E.elt array; mutable n : int }

  let create () = { a = Array.make 64 E.dummy; n = 0 }

  let push h c =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) E.dummy in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- c;
    while !i > 0 && E.less h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- E.dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.n && E.less h.a.(l) h.a.(!m) then m := l;
        if r < h.n && E.less h.a.(r) h.a.(!m) then m := r;
        if !m = !i then continue_ := false
        else begin
          let tmp = h.a.(!m) in
          h.a.(!m) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !m
        end
      done;
      Some top
    end
end

let materialize t ep rank ~head ~suffix ~slack =
  let tm = t.timer in
  let rec walk acc node =
    let e = t.pred.(node) in
    if e < 0 then (-1, node) :: acc
    else walk ((e, node) :: acc) t.tin_src.(e)
  in
  let seq = walk suffix head in
  let steps =
    List.map
      (fun (_, node) ->
        let pin = node / 2 and tr = tr_of (node land 1) in
        { Sta.Timer.ps_pin = pin; ps_transition = tr;
          ps_at = Sta.Timer.at_late tm pin tr;
          ps_slew = Sta.Timer.slew_late tm pin tr })
      seq
  in
  let nets =
    List.filter_map
      (fun (e, _) -> if e >= 0 && t.tin_net.(e) >= 0 then Some t.tin_net.(e) else None)
      seq
  in
  let arcs =
    List.filter_map
      (fun (e, _) -> if e >= 0 && t.tin_arc.(e) >= 0 then Some t.tin_arc.(e) else None)
      seq
  in
  { pt_endpoint = ep; pt_rank = rank; pt_slack = slack; pt_steps = steps;
    pt_nets = nets; pt_arcs = arcs }

let analyze ?pool ?(obs = Obs.disabled) timer =
  Obs.start obs Obs.Paths_analyze;
  let view = analyze_run ?pool ~obs timer in
  Obs.stop obs Obs.Paths_analyze;
  view

(* ---- the frozen eager implementation (oracle + bench baseline) ---- *)

module Reference = struct
  (* A candidate path: the suffix [c_suffix] (list of (in-edge, node)
     pairs, path order) is fixed; the prefix follows back-pointers from
     [c_head].  [c_dsuf] is the accumulated delay from [c_head] to the
     endpoint, [c_rat] the endpoint's required time, so
     [c_slack = c_rat - (at(c_head) + c_dsuf)] is the exact slack of the
     completed path.  [c_seq] is the insertion sequence number, used as
     a deterministic tie-break (it also makes Rise win slack ties at the
     endpoint, matching critical_path's start-transition choice). *)
  type cand = {
    c_head : int;
    c_dsuf : float;
    c_rat : float;
    c_slack : float;
    c_seq : int;
    c_suffix : (int * int) list;
  }

  module Pq = MakeHeap (struct
    type elt = cand

    let dummy =
      { c_head = -1; c_dsuf = 0.0; c_rat = 0.0; c_slack = 0.0; c_seq = -1;
        c_suffix = [] }

    let less x y =
      let c = Float.compare x.c_slack y.c_slack in
      c < 0 || (c = 0 && x.c_seq < y.c_seq)
  end)

  let enumerate_endpoint ?(slack_limit = infinity) ~k t ep =
    if k <= 0 then []
    else begin
      let tm = t.timer in
      let heap = Pq.create () in
      let seq = ref 0 in
      let push c =
        Pq.push heap c;
        incr seq
      in
      for ti = 0 to 1 do
        let a = Sta.Timer.at_late tm ep (tr_of ti) in
        let r = Sta.Timer.rat_late tm ep (tr_of ti) in
        let slack = r -. a in
        if a > neg_infinity && r < infinity && slack < slack_limit then
          push
            { c_head = (2 * ep) + ti; c_dsuf = 0.0; c_rat = r; c_slack = slack;
              c_seq = !seq; c_suffix = [] }
      done;
      (* Expand a popped candidate: walk its backbone (head, then
         back-pointers) and branch on every non-back-pointer in-edge.  A
         child's true slack is >= its parent's in exact arithmetic (the
         forward max guarantees at(u) >= at(src) + d edge-wise); the
         Float.max clamp removes the ulp-level noise the re-associated
         delay sums can introduce, so popped slacks are monotone. *)
      let expand c =
        let rec go node seg dseg =
          let p = t.pred.(node) in
          for e = t.tin_off.(node) to t.tin_off.(node + 1) - 1 do
            if e <> p then begin
              let w = t.tin_src.(e) in
              let dsuf = t.tin_delay.(e) +. dseg +. c.c_dsuf in
              let aw = Sta.Timer.at_late tm (w / 2) (tr_of (w land 1)) in
              let slack = Float.max c.c_slack (c.c_rat -. (aw +. dsuf)) in
              if slack < slack_limit then
                push
                  { c_head = w; c_dsuf = dsuf; c_rat = c.c_rat; c_slack = slack;
                    c_seq = !seq; c_suffix = (e, node) :: seg }
            end
          done;
          if p >= 0 then go t.tin_src.(p) ((p, node) :: seg) (dseg +. t.tin_delay.(p))
        in
        go c.c_head c.c_suffix 0.0
      in
      let results = ref [] in
      let rank = ref 0 in
      let running = ref true in
      while !running && !rank < k do
        match Pq.pop heap with
        | None -> running := false
        | Some c ->
          results :=
            materialize t ep !rank ~head:c.c_head ~suffix:c.c_suffix
              ~slack:c.c_slack
            :: !results;
          incr rank;
          if !rank < k then expand c
      done;
      List.rev !results
    end

  let enumerate ?pool ?slack_limit ~k t =
    if k <= 0 then []
    else begin
      let eps = t.graph.Sta.Graph.endpoints in
      let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
      let acc =
        Parallel.parallel_for_reduce p ~cost:2000.0 (Array.length eps)
          ~init:(fun () -> ref [])
          ~body:(fun acc i ->
            (* tag each path with its endpoint's position so ranking ties
               resolve exactly like critical_path's endpoint scan *)
            List.iter
              (fun pt -> acc := (i, pt) :: !acc)
              (enumerate_endpoint ?slack_limit ~k t eps.(i)))
          ~merge:(fun a b ->
            a := List.rev_append !b !a;
            a)
      in
      let compare_tagged (ia, a) (ib, b) =
        let c = Float.compare a.pt_slack b.pt_slack in
        if c <> 0 then c
        else
          let c = Int.compare ia ib in
          if c <> 0 then c else Int.compare a.pt_rank b.pt_rank
      in
      let sorted = List.sort compare_tagged !acc in
      let rec take acc n = function
        | [] -> List.rev acc
        | _ when n = 0 -> List.rev acc
        | (_, x) :: rest -> take (x :: acc) (n - 1) rest
      in
      take [] k sorted
    end
end

(* ---- lazy deviation search ---- *)

(* One deviation off a candidate's prefix spine: taking in-edge
   [dv_edge] at spine node [dv_node] yields a child whose suffix is
   [(dv_edge, dv_node) :: dv_seg] and whose exact completed-path slack
   is [dv_slack].  Roots (the two endpoint transitions) are encoded with
   [dv_edge = -1] and the endpoint node in [dv_node].  [dv_rat] is the
   required time inherited down the deviation chain. *)
type dev = {
  dv_slack : float;
  dv_dsuf : float;
  dv_rat : float;
  dv_edge : int;
  dv_node : int;
  dv_seg : (int * int) list;
}

(* A live candidate.  [l_sibs] is its parent's slack-sorted deviation
   array and [l_sib_pos] its own position there: popping the candidate
   releases its next sibling (one O(1) push) and its own first child,
   instead of every deviation of the whole backbone.  [l_parent_pop] is
   the pop index of the parent (-1 for roots); (slack, parent pop,
   sibling position) is a total order that reproduces the eager
   implementation's (slack, insertion seq) pop order bit for bit: among
   equal slacks, children of earlier-popped parents were pushed first,
   and within one parent the slack-stable sort preserves the canonical
   (spine, edge) push order. *)
type lcand = {
  l_head : int;
  l_dsuf : float;
  l_rat : float;
  l_slack : float;
  l_suffix : (int * int) list;
  l_parent_pop : int;
  l_sibs : dev array;
  l_sib_pos : int;
}

module Lq = MakeHeap (struct
  type elt = lcand

  let dummy =
    { l_head = -1; l_dsuf = 0.0; l_rat = 0.0; l_slack = 0.0; l_suffix = [];
      l_parent_pop = -1; l_sibs = [||]; l_sib_pos = 0 }

  let less x y =
    let c = Float.compare x.l_slack y.l_slack in
    if c <> 0 then c < 0
    else
      let c = Int.compare x.l_parent_pop y.l_parent_pop in
      if c <> 0 then c < 0 else Int.compare x.l_sib_pos y.l_sib_pos < 0
end)

(* candidate generation / pruning tallies, accumulated per reduce chunk
   and published as paths.* Obs counters after the merge *)
type counts = {
  mutable ct_pushed : int;
  mutable ct_popped : int;
  mutable ct_pruned : int;
  mutable ct_skipped : int;  (* endpoints skipped by the global bound *)
}

let fresh_counts () =
  { ct_pushed = 0; ct_popped = 0; ct_pruned = 0; ct_skipped = 0 }

let dev_compare a b = Float.compare a.dv_slack b.dv_slack

let cand_of_dev t ~parent_pop sibs pos =
  let d = sibs.(pos) in
  if d.dv_edge < 0 then
    { l_head = d.dv_node; l_dsuf = 0.0; l_rat = d.dv_rat; l_slack = d.dv_slack;
      l_suffix = []; l_parent_pop = parent_pop; l_sibs = sibs;
      l_sib_pos = pos }
  else
    { l_head = t.tin_src.(d.dv_edge); l_dsuf = d.dv_dsuf; l_rat = d.dv_rat;
      l_slack = d.dv_slack; l_suffix = (d.dv_edge, d.dv_node) :: d.dv_seg;
      l_parent_pop = parent_pop; l_sibs = sibs; l_sib_pos = pos }

(* All deviations off [c]'s prefix spine, slacks computed exactly as the
   eager expand does (same walk, same association of the delay sums),
   filtered against the limit and stable-sorted by slack so the sibling
   chain is monotone in heap priority while slack ties keep the
   canonical (spine, edge) order. *)
let deviations t ~limit ~counts c =
  let tm = t.timer in
  let out = ref [] in
  let rec go node seg dseg =
    let p = t.pred.(node) in
    for e = t.tin_off.(node) to t.tin_off.(node + 1) - 1 do
      if e <> p then begin
        let w = t.tin_src.(e) in
        let dsuf = t.tin_delay.(e) +. dseg +. c.l_dsuf in
        let aw = Sta.Timer.at_late tm (w / 2) (tr_of (w land 1)) in
        let slack = Float.max c.l_slack (c.l_rat -. (aw +. dsuf)) in
        if slack < limit then
          out :=
            { dv_slack = slack; dv_dsuf = dsuf; dv_rat = c.l_rat; dv_edge = e;
              dv_node = node; dv_seg = seg }
            :: !out
        else counts.ct_pruned <- counts.ct_pruned + 1
      end
    done;
    if p >= 0 then go t.tin_src.(p) ((p, node) :: seg) (dseg +. t.tin_delay.(p))
  in
  go c.l_head c.l_suffix 0.0;
  let arr = Array.of_list (List.rev !out) in
  Array.stable_sort dev_compare arr;
  arr

(* The k worst candidates at one endpoint, as (rank, candidate) pairs
   in pop order — materialisation is the caller's business. *)
let enumerate_cands ?(slack_limit = infinity) ~counts ~k t ep =
  if k <= 0 then []
  else begin
    let tm = t.timer in
    let roots = ref [] in
    for ti = 0 to 1 do
      let a = Sta.Timer.at_late tm ep (tr_of ti) in
      let r = Sta.Timer.rat_late tm ep (tr_of ti) in
      let slack = r -. a in
      if a > neg_infinity && r < infinity then begin
        if slack < slack_limit then
          roots :=
            { dv_slack = slack; dv_dsuf = 0.0; dv_rat = r; dv_edge = -1;
              dv_node = (2 * ep) + ti; dv_seg = [] }
            :: !roots
        else counts.ct_pruned <- counts.ct_pruned + 1
      end
    done;
    let roots = Array.of_list (List.rev !roots) in
    Array.stable_sort dev_compare roots;
    if Array.length roots = 0 then []
    else begin
      let heap = Lq.create () in
      let push c =
        Lq.push heap c;
        counts.ct_pushed <- counts.ct_pushed + 1
      in
      push (cand_of_dev t ~parent_pop:(-1) roots 0);
      let results = ref [] in
      let rank = ref 0 in
      let running = ref true in
      while !running && !rank < k do
        match Lq.pop heap with
        | None -> running := false
        | Some c ->
          counts.ct_popped <- counts.ct_popped + 1;
          let pop_ix = !rank in
          results := (pop_ix, c) :: !results;
          incr rank;
          if !rank < k then begin
            (* next sibling: already slack-filtered and sorted, O(1) *)
            if c.l_sib_pos + 1 < Array.length c.l_sibs then
              push
                (cand_of_dev t ~parent_pop:c.l_parent_pop c.l_sibs
                   (c.l_sib_pos + 1));
            (* first child: best deviation off this candidate's spine *)
            let devs = deviations t ~limit:slack_limit ~counts c in
            if Array.length devs > 0 then
              push (cand_of_dev t ~parent_pop:pop_ix devs 0)
          end
      done;
      List.rev !results
    end
  end

let enumerate_endpoint ?slack_limit ~k t ep =
  let counts = fresh_counts () in
  List.map
    (fun (rank, c) ->
      materialize t ep rank ~head:c.l_head ~suffix:c.l_suffix ~slack:c.l_slack)
    (enumerate_cands ?slack_limit ~counts ~k t ep)

(* The per-endpoint B&B cost scales with K, so the endpoint fan-out
   must split finer as K grows; [Parallel.reduce_grain]'s fixed 16-way
   target (its ~cost floor can only make chunks coarser) cannot express
   that, so the grain is computed here — still a pure function of
   (k, n), never of the pool, and the result's total-order sort makes
   the output independent of the split anyway. *)
let enumerate_grain ~k n =
  let ways = 16 * Int.max 1 (Int.min 8 (k / 8)) in
  Int.max 1 ((n + ways - 1) / ways)

(* per-run shared bound: a size-k max-heap of the best slacks seen so
   far across all endpoints; once full, its top is the running k-th-best
   and becomes (via Float.succ, to keep global ties alive for the
   endpoint-order tie-break) every later endpoint's effective slack
   limit.  The bound only ever tightens and any stale read is a valid
   looser bound, so the pruning — and therefore the post-sort output —
   is identical at every domain count even though the pruned work is
   not. *)
type gbound = {
  gb_mutex : Mutex.t;
  gb_heap : float array;
  mutable gb_n : int;
  gb_bound : float Atomic.t;
}

let gbound_create k =
  { gb_mutex = Mutex.create (); gb_heap = Array.make k neg_infinity;
    gb_n = 0; gb_bound = Atomic.make infinity }

let gbound_offer gb slacks =
  Mutex.lock gb.gb_mutex;
  let h = gb.gb_heap in
  let k = Array.length h in
  List.iter
    (fun s ->
      if gb.gb_n < k then begin
        (* max-heap sift-up *)
        let i = ref gb.gb_n in
        gb.gb_n <- gb.gb_n + 1;
        h.(!i) <- s;
        while !i > 0 && h.(!i) > h.((!i - 1) / 2) do
          let p = (!i - 1) / 2 in
          let tmp = h.(p) in
          h.(p) <- h.(!i);
          h.(!i) <- tmp;
          i := p
        done
      end
      else if s < h.(0) then begin
        (* replace the root, sift down *)
        h.(0) <- s;
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let m = ref !i in
          if l < gb.gb_n && h.(l) > h.(!m) then m := l;
          if r < gb.gb_n && h.(r) > h.(!m) then m := r;
          if !m = !i then continue_ := false
          else begin
            let tmp = h.(!m) in
            h.(!m) <- h.(!i);
            h.(!i) <- tmp;
            i := !m
          end
        done
      end)
    slacks;
  if gb.gb_n = k then Atomic.set gb.gb_bound h.(0);
  Mutex.unlock gb.gb_mutex

type gacc = { mutable ga_entries : (int * int * lcand) list; ga_counts : counts }

let enumerate_run ?pool ?obs ?(slack_limit = infinity) ~k t =
  if k <= 0 then []
  else begin
    let eps = t.graph.Sta.Graph.endpoints in
    let n = Array.length eps in
    let tm = t.timer in
    let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
    (* cheap prescan: each endpoint's worst (rank-0) slack.  Processing
       endpoints worst-first makes the k-th-best bound tighten after the
       first few endpoints, so the healthy majority is skipped before
       its B&B starts.  Memoized on the view: a view freezes one
       placement's timing, so repeated enumerations (e.g. consecutive
       what-if queries against a serving daemon) reuse it verbatim. *)
    let ep_slack, order =
      match t.prescan with
      | Some (ep_slack, order) ->
        Option.iter
          (fun o -> Obs.add o "paths.prescan_reused" 1.0)
          obs;
        (ep_slack, order)
      | None ->
        let ep_slack = Array.make n infinity in
        for i = 0 to n - 1 do
          let ep = eps.(i) in
          let s = ref infinity in
          for ti = 0 to 1 do
            let a = Sta.Timer.at_late tm ep (tr_of ti) in
            let r = Sta.Timer.rat_late tm ep (tr_of ti) in
            if a > neg_infinity && r < infinity then s := Float.min !s (r -. a)
          done;
          ep_slack.(i) <- !s
        done;
        let order = Array.init n Fun.id in
        Array.sort
          (fun a b ->
            let c = Float.compare ep_slack.(a) ep_slack.(b) in
            if c <> 0 then c else Int.compare a b)
          order;
        t.prescan <- Some (ep_slack, order);
        (ep_slack, order)
    in
    let gb = gbound_create k in
    let acc =
      Parallel.parallel_for_reduce p ?obs ~grain:(enumerate_grain ~k n) n
        ~init:(fun () -> { ga_entries = []; ga_counts = fresh_counts () })
        ~body:(fun acc j ->
          (* tag each candidate with its endpoint's position in the
             endpoint array so ranking ties resolve exactly like
             critical_path's endpoint scan, whatever the scan order *)
          let i = order.(j) in
          let b = Atomic.get gb.gb_bound in
          let lim =
            if b < infinity then Float.min slack_limit (Float.succ b)
            else slack_limit
          in
          if ep_slack.(i) >= lim then
            acc.ga_counts.ct_skipped <- acc.ga_counts.ct_skipped + 1
          else begin
            let cands =
              enumerate_cands ~slack_limit:lim ~counts:acc.ga_counts ~k t
                eps.(i)
            in
            (match cands with
            | [] -> ()
            | _ -> gbound_offer gb (List.map (fun (_, c) -> c.l_slack) cands));
            List.iter
              (fun (rank, c) -> acc.ga_entries <- (i, rank, c) :: acc.ga_entries)
              cands
          end)
        ~merge:(fun a b ->
          a.ga_entries <- List.rev_append b.ga_entries a.ga_entries;
          a.ga_counts.ct_pushed <- a.ga_counts.ct_pushed + b.ga_counts.ct_pushed;
          a.ga_counts.ct_popped <- a.ga_counts.ct_popped + b.ga_counts.ct_popped;
          a.ga_counts.ct_pruned <- a.ga_counts.ct_pruned + b.ga_counts.ct_pruned;
          a.ga_counts.ct_skipped <-
            a.ga_counts.ct_skipped + b.ga_counts.ct_skipped;
          a)
    in
    Option.iter
      (fun o ->
        let c = acc.ga_counts in
        Obs.add o "paths.pushed" (float_of_int c.ct_pushed);
        Obs.add o "paths.popped" (float_of_int c.ct_popped);
        Obs.add o "paths.pruned" (float_of_int c.ct_pruned);
        Obs.add o "paths.endpoints_skipped" (float_of_int c.ct_skipped))
      obs;
    let compare_entry (ia, ra, a) (ib, rb, b) =
      let c = Float.compare a.l_slack b.l_slack in
      if c <> 0 then c
      else
        let c = Int.compare ia ib in
        if c <> 0 then c else Int.compare ra rb
    in
    let sorted = List.sort compare_entry acc.ga_entries in
    (* materialise only the global top-k survivors, tail-recursively *)
    let rec take acc n = function
      | [] -> List.rev acc
      | _ when n = 0 -> List.rev acc
      | (i, rank, c) :: rest ->
        take
          (materialize t eps.(i) rank ~head:c.l_head ~suffix:c.l_suffix
             ~slack:c.l_slack
          :: acc)
          (n - 1) rest
    in
    take [] k sorted
  end

let enumerate ?pool ?obs:(obs = Obs.disabled) ?slack_limit ~k t =
  Obs.start obs Obs.Paths_enumerate;
  let paths = enumerate_run ?pool ~obs ?slack_limit ~k t in
  Obs.stop obs Obs.Paths_enumerate;
  paths

let severity paths =
  let worst = List.fold_left (fun acc p -> Float.min acc p.pt_slack) 0.0 paths in
  let denom = Float.max 1.0 (-.worst) in
  fun p ->
    if p.pt_slack >= 0.0 then 0.0 else Float.min 1.0 (-.p.pt_slack /. denom)

let net_criticality t paths =
  let counts = Array.make (Netlist.num_nets t.graph.Sta.Graph.design) 0.0 in
  let sev = severity paths in
  List.iter
    (fun p ->
      let w = sev p in
      if w > 0.0 then
        List.iter (fun n -> counts.(n) <- counts.(n) +. w) p.pt_nets)
    paths;
  counts

let arc_criticality t paths =
  let counts = Array.make (Sta.Graph.num_arcs t.graph) 0.0 in
  let sev = severity paths in
  List.iter
    (fun p ->
      let w = sev p in
      if w > 0.0 then
        List.iter (fun a -> counts.(a) <- counts.(a) +. w) p.pt_arcs)
    paths;
  counts

module Weight = struct
  type config = {
    k : int;
    alpha : float;
    beta : float;
    max_weight : float;
    decay : float;
    period : int;
    rebuild_trees : bool;
  }

  let default_config =
    { k = 32; alpha = 0.15; beta = 0.5; max_weight = 16.0; decay = 0.85;
      period = 3; rebuild_trees = true }

  type engine = {
    cfg : config;
    timer_ : Sta.Timer.t;
    design : Netlist.t;
    momentum : float array;
  }

  type t = engine

  let create ?(config = default_config) graph =
    { cfg = config;
      timer_ = Sta.Timer.create graph;
      design = graph.Sta.Graph.design;
      momentum = Array.make (Netlist.num_nets graph.Sta.Graph.design) 0.0 }

  let config t = t.cfg
  let timer t = t.timer_
  let should_update t iteration = iteration mod max 1 t.cfg.period = 0

  let update ?pool ?(obs = Obs.disabled) t =
    Obs.start obs Obs.Pathweight_update;
    let report =
      Sta.Timer.run ~rebuild_trees:t.cfg.rebuild_trees ?pool ~obs t.timer_
    in
    let view = analyze ?pool ~obs t.timer_ in
    (* only violating paths drive weights: slack_limit 0 prunes exactly *)
    let paths = enumerate ?pool ~obs ~slack_limit:0.0 ~k:t.cfg.k view in
    let crit = net_criticality view paths in
    let maxc = Array.fold_left Float.max 0.0 crit in
    Array.iter
      (fun (net : Netlist.net) ->
        let n = net.Netlist.net_id in
        let c = if maxc > 0.0 then crit.(n) /. maxc else 0.0 in
        t.momentum.(n) <-
          (t.cfg.beta *. t.momentum.(n)) +. ((1.0 -. t.cfg.beta) *. c);
        let m = t.momentum.(n) in
        (* relax toward 1 in proportion to how little momentum remains
           (no ratchet: a net that leaves every violating path sheds its
           inflated weight geometrically), then escalate by the current
           momentum as before *)
        let keep =
          t.cfg.decay +. ((1.0 -. t.cfg.decay) *. Float.min 1.0 m)
        in
        let w = 1.0 +. ((net.Netlist.weight -. 1.0) *. keep) in
        let w = if m > 0.0 then w *. (1.0 +. (t.cfg.alpha *. m)) else w in
        net.Netlist.weight <- Float.min t.cfg.max_weight w)
      t.design.Netlist.nets;
    Obs.stop obs Obs.Pathweight_update;
    report

  let reset t =
    Netlist.reset_weights t.design;
    Array.fill t.momentum 0 (Array.length t.momentum) 0.0
end
