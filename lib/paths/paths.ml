(* Top-K worst-slack path enumeration over the exact timer.

   Timing nodes are (pin, transition) pairs at index
   [2 * pin + transition_index].  [analyze] flattens the timer state
   into an in-edge CSR over these nodes plus one back-pointer per node
   (the in-edge realising its arrival time, with critical_path's exact
   tie-breaks), so the back-pointer walk from any node reproduces
   Sta.Timer.critical_path bitwise.  Enumeration is per-endpoint
   deviation-based branch-and-bound: a candidate fixes a suffix of the
   path and lets the prefix follow back-pointers; its priority is the
   exact slack of the completed path (arrival times are exact max-prefix
   arrivals), so a min-heap pops paths in slack order and a slack limit
   prunes exactly. *)

let tr_of ti = if ti = 0 then Sta.Rise else Sta.Fall

type t = {
  timer : Sta.Timer.t;
  graph : Sta.Graph.t;
  (* in-edge CSR over timing nodes: edge [e] enters node [v] from
     [tin_src.(e)] with delay [tin_delay.(e)]; exactly one of
     [tin_net]/[tin_arc] is >= 0, identifying a net arc or a cell arc. *)
  tin_off : int array;
  tin_src : int array;
  tin_delay : float array;
  tin_net : int array;
  tin_arc : int array;
  pred : int array;  (* per node: in-edge realising its arrival, or -1 *)
}

type path = {
  pt_endpoint : int;
  pt_rank : int;
  pt_slack : float;
  pt_steps : Sta.Timer.path_step list;
  pt_nets : int list;
  pt_arcs : int list;
}

let num_edges t = Array.length t.tin_src

let analyze_run ?pool ?obs timer =
  let nets = Sta.Timer.nets timer in
  let g = nets.Sta.Nets.graph in
  let design = g.Sta.Graph.design in
  let npins = Netlist.num_pins design in
  let nnodes = 2 * npins in
  let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
  let at v ti = Sta.Timer.at_late timer v (tr_of ti) in
  let slew v ti = Sta.Timer.slew_late timer v (tr_of ti) in
  (* pass 1: in-degree of every node (no LUT evaluations needed) *)
  let counts = Array.make nnodes 0 in
  Parallel.parallel_for p ?obs ~cost:8.0 nnodes (fun node ->
      let v = node / 2 and oi = node land 1 in
      let pin = design.Netlist.pins.(v) in
      let net = pin.Netlist.net in
      let c = ref 0 in
      if
        pin.Netlist.direction = Netlist.Input
        && net >= 0
        && nets.Sta.Nets.trees.(net) <> None
      then begin
        let u = g.Sta.Graph.net_driver_of.(net) in
        if u >= 0 && u <> v && at u oi > neg_infinity then incr c
      end;
      for k = g.Sta.Graph.fanin_off.(v) to g.Sta.Graph.fanin_off.(v + 1) - 1 do
        let a = g.Sta.Graph.fanin_arc.(k) in
        let u = g.Sta.Graph.arc_from.(a) in
        let sub = (g.Sta.Graph.arc_mask.(a) lsr (2 * oi)) land 3 in
        for ii = 0 to 1 do
          if sub land (1 lsl ii) <> 0 && at u ii > neg_infinity then incr c
        done
      done;
      counts.(node) <- !c);
  let tin_off = Array.make (nnodes + 1) 0 in
  for i = 0 to nnodes - 1 do
    tin_off.(i + 1) <- tin_off.(i) + counts.(i)
  done;
  let nedges = tin_off.(nnodes) in
  let tin_src = Array.make nedges 0 in
  let tin_delay = Array.make nedges 0.0 in
  let tin_net = Array.make nedges (-1) in
  let tin_arc = Array.make nedges (-1) in
  let pred = Array.make nnodes (-1) in
  (* pass 2: fill each node's edge slice and pick its back-pointer.  The
     net edge comes first and wins outright when present (the timer's
     retrace tries it first); otherwise the cell contribution minimising
     |at(u) + d - at(v)| wins, first strict minimum in (arc, transition)
     order — the same selection critical_path makes. *)
  Parallel.parallel_for p ?obs ~cost:16.0 nnodes (fun node ->
      let v = node / 2 and oi = node land 1 in
      let pin = design.Netlist.pins.(v) in
      let net = pin.Netlist.net in
      let cursor = ref tin_off.(node) in
      let has_net_edge = ref false in
      (if pin.Netlist.direction = Netlist.Input && net >= 0 then
         match nets.Sta.Nets.trees.(net) with
         | Some (_, rc) ->
           let u = g.Sta.Graph.net_driver_of.(net) in
           if u >= 0 && u <> v && at u oi > neg_infinity then begin
             tin_src.(!cursor) <- (2 * u) + oi;
             tin_delay.(!cursor) <- Rc.sink_delay rc nets.Sta.Nets.tree_index.(v);
             tin_net.(!cursor) <- net;
             has_net_edge := true;
             incr cursor
           end
         | None -> ());
      let lo = g.Sta.Graph.fanin_off.(v) and hi = g.Sta.Graph.fanin_off.(v + 1) in
      if hi > lo then begin
        (* cell-arc delay is looked up against the output net's root
           load, as in propagation and retrace *)
        let load =
          if net >= 0 then
            match nets.Sta.Nets.trees.(net) with
            | Some (_, rc) -> Rc.root_load rc
            | None -> 0.0
          else 0.0
        in
        for k = lo to hi - 1 do
          let a = g.Sta.Graph.fanin_arc.(k) in
          let u = g.Sta.Graph.arc_from.(a) in
          let arc = g.Sta.Graph.arc_table.(a) in
          let sub = (g.Sta.Graph.arc_mask.(a) lsr (2 * oi)) land 3 in
          for ii = 0 to 1 do
            if sub land (1 lsl ii) <> 0 && at u ii > neg_infinity then begin
              let lut =
                if oi = 0 then arc.Liberty.cell_rise else arc.Liberty.cell_fall
              in
              tin_src.(!cursor) <- (2 * u) + ii;
              tin_delay.(!cursor) <- Liberty.Lut.lookup lut (slew u ii) load;
              tin_arc.(!cursor) <- a;
              incr cursor
            end
          done
        done
      end;
      if !has_net_edge then pred.(node) <- tin_off.(node)
      else begin
        let best = ref (-1) and best_err = ref infinity in
        let av = at v oi in
        for e = tin_off.(node) to !cursor - 1 do
          let u = tin_src.(e) in
          let err = Float.abs (at (u / 2) (u land 1) +. tin_delay.(e) -. av) in
          if err < !best_err then begin
            best_err := err;
            best := e
          end
        done;
        pred.(node) <- !best
      end);
  { timer; graph = g; tin_off; tin_src; tin_delay; tin_net; tin_arc; pred }

(* A candidate path: the suffix [c_suffix] (list of (in-edge, node)
   pairs, path order) is fixed; the prefix follows back-pointers from
   [c_head].  [c_dsuf] is the accumulated delay from [c_head] to the
   endpoint, [c_rat] the endpoint's required time, so
   [c_slack = c_rat - (at(c_head) + c_dsuf)] is the exact slack of the
   completed path.  [c_seq] is the insertion sequence number, used as a
   deterministic tie-break (it also makes Rise win slack ties at the
   endpoint, matching critical_path's start-transition choice). *)
type cand = {
  c_head : int;
  c_dsuf : float;
  c_rat : float;
  c_slack : float;
  c_seq : int;
  c_suffix : (int * int) list;
}

(* binary min-heap on (slack, seq) *)
module Pq = struct
  type t = { mutable a : cand array; mutable n : int }

  let dummy =
    { c_head = -1; c_dsuf = 0.0; c_rat = 0.0; c_slack = 0.0; c_seq = -1;
      c_suffix = [] }

  let create () = { a = Array.make 64 dummy; n = 0 }

  let less x y =
    let c = Float.compare x.c_slack y.c_slack in
    c < 0 || (c = 0 && x.c_seq < y.c_seq)

  let push h c =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- c;
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.n && less h.a.(l) h.a.(!m) then m := l;
        if r < h.n && less h.a.(r) h.a.(!m) then m := r;
        if !m = !i then continue_ := false
        else begin
          let tmp = h.a.(!m) in
          h.a.(!m) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !m
        end
      done;
      Some top
    end
end

let materialize t ep rank c =
  let tm = t.timer in
  let rec walk acc node =
    let e = t.pred.(node) in
    if e < 0 then (-1, node) :: acc
    else walk ((e, node) :: acc) t.tin_src.(e)
  in
  let seq = walk c.c_suffix c.c_head in
  let steps =
    List.map
      (fun (_, node) ->
        let pin = node / 2 and tr = tr_of (node land 1) in
        { Sta.Timer.ps_pin = pin; ps_transition = tr;
          ps_at = Sta.Timer.at_late tm pin tr;
          ps_slew = Sta.Timer.slew_late tm pin tr })
      seq
  in
  let nets =
    List.filter_map
      (fun (e, _) -> if e >= 0 && t.tin_net.(e) >= 0 then Some t.tin_net.(e) else None)
      seq
  in
  let arcs =
    List.filter_map
      (fun (e, _) -> if e >= 0 && t.tin_arc.(e) >= 0 then Some t.tin_arc.(e) else None)
      seq
  in
  { pt_endpoint = ep; pt_rank = rank; pt_slack = c.c_slack; pt_steps = steps;
    pt_nets = nets; pt_arcs = arcs }

let analyze ?pool ?(obs = Obs.disabled) timer =
  Obs.start obs Obs.Paths_analyze;
  let view = analyze_run ?pool ~obs timer in
  Obs.stop obs Obs.Paths_analyze;
  view

let enumerate_endpoint ?(slack_limit = infinity) ~k t ep =
  if k <= 0 then []
  else begin
    let tm = t.timer in
    let heap = Pq.create () in
    let seq = ref 0 in
    let push c =
      Pq.push heap c;
      incr seq
    in
    for ti = 0 to 1 do
      let a = Sta.Timer.at_late tm ep (tr_of ti) in
      let r = Sta.Timer.rat_late tm ep (tr_of ti) in
      let slack = r -. a in
      if a > neg_infinity && r < infinity && slack < slack_limit then
        push
          { c_head = (2 * ep) + ti; c_dsuf = 0.0; c_rat = r; c_slack = slack;
            c_seq = !seq; c_suffix = [] }
    done;
    (* Expand a popped candidate: walk its backbone (head, then
       back-pointers) and branch on every non-back-pointer in-edge.  A
       child's true slack is >= its parent's in exact arithmetic (the
       forward max guarantees at(u) >= at(src) + d edge-wise); the
       Float.max clamp removes the ulp-level noise the re-associated
       delay sums can introduce, so popped slacks are monotone. *)
    let expand c =
      let rec go node seg dseg =
        let p = t.pred.(node) in
        for e = t.tin_off.(node) to t.tin_off.(node + 1) - 1 do
          if e <> p then begin
            let w = t.tin_src.(e) in
            let dsuf = t.tin_delay.(e) +. dseg +. c.c_dsuf in
            let aw = Sta.Timer.at_late tm (w / 2) (tr_of (w land 1)) in
            let slack = Float.max c.c_slack (c.c_rat -. (aw +. dsuf)) in
            if slack < slack_limit then
              push
                { c_head = w; c_dsuf = dsuf; c_rat = c.c_rat; c_slack = slack;
                  c_seq = !seq; c_suffix = (e, node) :: seg }
          end
        done;
        if p >= 0 then go t.tin_src.(p) ((p, node) :: seg) (dseg +. t.tin_delay.(p))
      in
      go c.c_head c.c_suffix 0.0
    in
    let results = ref [] in
    let rank = ref 0 in
    let running = ref true in
    while !running && !rank < k do
      match Pq.pop heap with
      | None -> running := false
      | Some c ->
        results := materialize t ep !rank c :: !results;
        incr rank;
        if !rank < k then expand c
    done;
    List.rev !results
  end

let enumerate_run ?pool ?obs ?slack_limit ~k t =
  if k <= 0 then []
  else begin
    let eps = t.graph.Sta.Graph.endpoints in
    let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
    let acc =
      Parallel.parallel_for_reduce p ?obs ~cost:2000.0 (Array.length eps)
        ~init:(fun () -> ref [])
        ~body:(fun acc i ->
          (* tag each path with its endpoint's position so ranking ties
             resolve exactly like critical_path's endpoint scan *)
          List.iter
            (fun pt -> acc := (i, pt) :: !acc)
            (enumerate_endpoint ?slack_limit ~k t eps.(i)))
        ~merge:(fun a b ->
          a := List.rev_append !b !a;
          a)
    in
    let compare_tagged (ia, a) (ib, b) =
      let c = Float.compare a.pt_slack b.pt_slack in
      if c <> 0 then c
      else
        let c = compare ia ib in
        if c <> 0 then c else compare a.pt_rank b.pt_rank
    in
    let sorted = List.sort compare_tagged !acc in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | (_, x) :: rest -> x :: take (n - 1) rest
    in
    take k sorted
  end

let enumerate ?pool ?obs:(obs = Obs.disabled) ?slack_limit ~k t =
  Obs.start obs Obs.Paths_enumerate;
  let paths = enumerate_run ?pool ~obs ?slack_limit ~k t in
  Obs.stop obs Obs.Paths_enumerate;
  paths

let severity paths =
  let worst = List.fold_left (fun acc p -> Float.min acc p.pt_slack) 0.0 paths in
  let denom = Float.max 1.0 (-.worst) in
  fun p ->
    if p.pt_slack >= 0.0 then 0.0 else Float.min 1.0 (-.p.pt_slack /. denom)

let net_criticality t paths =
  let counts = Array.make (Netlist.num_nets t.graph.Sta.Graph.design) 0.0 in
  let sev = severity paths in
  List.iter
    (fun p ->
      let w = sev p in
      if w > 0.0 then
        List.iter (fun n -> counts.(n) <- counts.(n) +. w) p.pt_nets)
    paths;
  counts

let arc_criticality t paths =
  let counts = Array.make (Sta.Graph.num_arcs t.graph) 0.0 in
  let sev = severity paths in
  List.iter
    (fun p ->
      let w = sev p in
      if w > 0.0 then
        List.iter (fun a -> counts.(a) <- counts.(a) +. w) p.pt_arcs)
    paths;
  counts

module Weight = struct
  type config = {
    k : int;
    alpha : float;
    beta : float;
    max_weight : float;
    period : int;
    rebuild_trees : bool;
  }

  let default_config =
    { k = 32; alpha = 0.15; beta = 0.5; max_weight = 16.0; period = 3;
      rebuild_trees = true }

  type engine = {
    cfg : config;
    timer_ : Sta.Timer.t;
    design : Netlist.t;
    momentum : float array;
  }

  type t = engine

  let create ?(config = default_config) graph =
    { cfg = config;
      timer_ = Sta.Timer.create graph;
      design = graph.Sta.Graph.design;
      momentum = Array.make (Netlist.num_nets graph.Sta.Graph.design) 0.0 }

  let config t = t.cfg
  let timer t = t.timer_
  let should_update t iteration = iteration mod max 1 t.cfg.period = 0

  let update ?pool ?(obs = Obs.disabled) t =
    Obs.start obs Obs.Pathweight_update;
    let report =
      Sta.Timer.run ~rebuild_trees:t.cfg.rebuild_trees ?pool ~obs t.timer_
    in
    let view = analyze ?pool ~obs t.timer_ in
    (* only violating paths drive weights: slack_limit 0 prunes exactly *)
    let paths = enumerate ?pool ~obs ~slack_limit:0.0 ~k:t.cfg.k view in
    let crit = net_criticality view paths in
    let maxc = Array.fold_left Float.max 0.0 crit in
    Array.iter
      (fun (net : Netlist.net) ->
        let n = net.Netlist.net_id in
        let c = if maxc > 0.0 then crit.(n) /. maxc else 0.0 in
        t.momentum.(n) <-
          (t.cfg.beta *. t.momentum.(n)) +. ((1.0 -. t.cfg.beta) *. c);
        if t.momentum.(n) > 0.0 then
          net.Netlist.weight <-
            Float.min t.cfg.max_weight
              (net.Netlist.weight *. (1.0 +. (t.cfg.alpha *. t.momentum.(n)))))
      t.design.Netlist.nets;
    Obs.stop obs Obs.Pathweight_update;
    report

  let reset t =
    Netlist.reset_weights t.design;
    Array.fill t.momentum 0 (Array.length t.momentum) 0.0
end
