(** Gate-level netlist representation for placement and timing analysis.

    A design is a set of {e cells} (standard cells, macros, IO pads), each
    carrying {e pins}; pins are grouped into {e nets}.  Cell coordinates
    are the cell {b center} in microns; pin locations are cell center plus
    a fixed offset.  Identifiers are dense integers so that all per-object
    state can live in flat arrays (the layout the level-parallel timing
    kernels expect). *)

type direction = Input | Output

val pp_direction : Format.formatter -> direction -> unit

(** A pin instance.  [lib_pin] indexes the pin of the owning cell's
    library cell ([-1] for pad pins).  [net = -1] means unconnected. *)
type pin = {
  pin_id : int;
  pin_name : string;  (** instance-qualified, e.g. ["u42/A"]. *)
  cell : int;
  offset_x : float;
  offset_y : float;
  direction : direction;
  mutable net : int;
  lib_pin : int;
}

(** A cell instance.  [lib_cell = -1] marks pads and macros, which carry
    their own geometry.  [fixed] cells are never moved by the placer.
    [width]/[height] are mutable so routability-driven inflation
    ([Route.Inflate]) can temporarily bloat a cell's footprint; every
    client that inflates is responsible for restoring the original
    sizes before the placement is consumed downstream. *)
type cell = {
  cell_id : int;
  cell_name : string;
  lib_cell : int;
  mutable width : float;
  mutable height : float;
  mutable x : float;  (** center x. *)
  mutable y : float;  (** center y. *)
  fixed : bool;
  mutable cell_pins : int array;
}

(** A signal net.  [net_pins] lists the driver first when the net is
    driven.  [weight] is the placement net weight (1.0 by default),
    updated by net-weighting timing optimisation. *)
type net = {
  net_id : int;
  net_name : string;
  mutable net_pins : int array;
  mutable weight : float;
}

(** A frozen design. *)
type t = {
  design_name : string;
  region : Geometry.Rect.t;  (** placement region. *)
  row_height : float;
  cells : cell array;
  pins : pin array;
  nets : net array;
}

val num_cells : t -> int
val num_pins : t -> int
val num_nets : t -> int

val pin_x : t -> int -> float
val pin_y : t -> int -> float
(** Current location of a pin (owner center + offset). *)

val net_driver : t -> int -> int option
(** The driving pin of a net, if any. *)

val net_sinks : t -> int -> int list
(** Sink (input-direction) pins of a net, in declaration order. *)

val net_hpwl : t -> int -> float
(** Half-perimeter wirelength of one net (0 for degenerate nets). *)

val total_hpwl : ?weighted:bool -> t -> float
(** Sum of [net_hpwl] over all nets; with [~weighted:true] each net is
    scaled by its weight. *)

val movable_cells : t -> int list
val fixed_cells : t -> int list

val cell_by_name : t -> string -> cell option
val net_by_name : t -> string -> net option
val pin_by_name : t -> string -> pin option

val reset_weights : t -> unit
(** Set every net weight back to 1.0. *)

val copy_positions : t -> float array * float array
(** Snapshot of cell centers as [(xs, ys)] indexed by cell id. *)

val restore_positions : t -> float array * float array -> unit

(** Incremental construction.  All [add_*] functions return dense ids in
    insertion order.  [freeze] validates the design:
    - every pin belongs to an existing cell and vice versa;
    - every net has at most one driver and at least one pin;
    - names are unique per object class.
    @raise Invalid_argument on violation, with a message naming the
    offending object. *)
module Builder : sig
  type builder

  val create :
    ?region:Geometry.Rect.t -> ?row_height:float -> string -> builder

  val add_cell :
    builder ->
    name:string ->
    lib_cell:int ->
    width:float ->
    height:float ->
    ?x:float ->
    ?y:float ->
    ?fixed:bool ->
    unit ->
    int

  val add_pin :
    builder ->
    cell:int ->
    name:string ->
    direction:direction ->
    ?offset_x:float ->
    ?offset_y:float ->
    ?lib_pin:int ->
    unit ->
    int

  val add_net : builder -> name:string -> pins:int list -> int
  (** Connect existing pins; the driver (if present) may appear anywhere,
      it is moved to the front on [freeze]. *)

  val freeze : builder -> t
end

(** Aggregate design statistics (Table 2 of the paper). *)
module Stats : sig
  type stats = {
    cells : int;
    movable : int;
    nets : int;
    pins : int;
    average_fanout : float;
    max_fanout : int;
    total_cell_area : float;
    region_area : float;
    utilization : float;
  }

  val compute : t -> stats
  val pp : Format.formatter -> stats -> unit
end
