type direction = Input | Output

let pp_direction ppf = function
  | Input -> Format.pp_print_string ppf "input"
  | Output -> Format.pp_print_string ppf "output"

type pin = {
  pin_id : int;
  pin_name : string;
  cell : int;
  offset_x : float;
  offset_y : float;
  direction : direction;
  mutable net : int;
  lib_pin : int;
}

type cell = {
  cell_id : int;
  cell_name : string;
  lib_cell : int;
  mutable width : float;
  mutable height : float;
  mutable x : float;
  mutable y : float;
  fixed : bool;
  mutable cell_pins : int array;
}

type net = {
  net_id : int;
  net_name : string;
  mutable net_pins : int array;
  mutable weight : float;
}

type t = {
  design_name : string;
  region : Geometry.Rect.t;
  row_height : float;
  cells : cell array;
  pins : pin array;
  nets : net array;
}

let num_cells d = Array.length d.cells
let num_pins d = Array.length d.pins
let num_nets d = Array.length d.nets

let pin_x d p =
  let pin = d.pins.(p) in
  d.cells.(pin.cell).x +. pin.offset_x

let pin_y d p =
  let pin = d.pins.(p) in
  d.cells.(pin.cell).y +. pin.offset_y

let net_driver d n =
  let pins = d.nets.(n).net_pins in
  let rec find i =
    if i >= Array.length pins then None
    else if d.pins.(pins.(i)).direction = Output then Some pins.(i)
    else find (i + 1)
  in
  find 0

let net_sinks d n =
  Array.to_list d.nets.(n).net_pins
  |> List.filter (fun p -> d.pins.(p).direction = Input)

(* Alloc-free bbox fold: this runs once per net per placement iteration
   (the trace HPWL), so boxing a rect per pin would dominate the minor
   heap on large designs.  Same fold order as [Geometry.Bbox.add_xy]. *)
let net_hpwl d n =
  let pins = d.nets.(n).net_pins in
  let k = Array.length pins in
  if k < 2 then 0.0
  else begin
    let p0 = d.pins.(pins.(0)) in
    let c0 = d.cells.(p0.cell) in
    let lx = ref (c0.x +. p0.offset_x) and ly = ref (c0.y +. p0.offset_y) in
    let hx = ref !lx and hy = ref !ly in
    for j = 1 to k - 1 do
      let p = d.pins.(pins.(j)) in
      let c = d.cells.(p.cell) in
      let x = c.x +. p.offset_x and y = c.y +. p.offset_y in
      lx := Float.min !lx x;
      ly := Float.min !ly y;
      hx := Float.max !hx x;
      hy := Float.max !hy y
    done;
    !hx -. !lx +. (!hy -. !ly)
  end

let total_hpwl ?(weighted = false) d =
  let acc = ref 0.0 in
  Array.iter
    (fun net ->
      let w = if weighted then net.weight else 1.0 in
      acc := !acc +. (w *. net_hpwl d net.net_id))
    d.nets;
  !acc

let movable_cells d =
  Array.to_list d.cells
  |> List.filter_map (fun c -> if c.fixed then None else Some c.cell_id)

let fixed_cells d =
  Array.to_list d.cells
  |> List.filter_map (fun c -> if c.fixed then Some c.cell_id else None)

let find_by_name arr name_of name =
  let n = Array.length arr in
  let rec loop i =
    if i >= n then None
    else if String.equal (name_of arr.(i)) name then Some arr.(i)
    else loop (i + 1)
  in
  loop 0

let cell_by_name d name = find_by_name d.cells (fun c -> c.cell_name) name
let net_by_name d name = find_by_name d.nets (fun n -> n.net_name) name
let pin_by_name d name = find_by_name d.pins (fun p -> p.pin_name) name

let reset_weights d = Array.iter (fun net -> net.weight <- 1.0) d.nets

let copy_positions d =
  (Array.map (fun c -> c.x) d.cells, Array.map (fun c -> c.y) d.cells)

let restore_positions d (xs, ys) =
  if Array.length xs <> num_cells d || Array.length ys <> num_cells d then
    invalid_arg "Netlist.restore_positions: size mismatch";
  Array.iteri
    (fun i c ->
      c.x <- xs.(i);
      c.y <- ys.(i))
    d.cells

module Builder = struct
  type builder = {
    name : string;
    region : Geometry.Rect.t;
    row_height : float;
    mutable bcells : cell list;  (* reverse order *)
    mutable bpins : pin list;
    mutable bnets : (string * int list) list;
    mutable ncells : int;
    mutable npins : int;
    mutable nnets : int;
    cell_names : (string, unit) Hashtbl.t;
    pin_names : (string, unit) Hashtbl.t;
    net_names : (string, unit) Hashtbl.t;
  }

  let create ?region ?(row_height = 1.0) name =
    let region =
      match region with
      | Some r -> r
      | None -> Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:100.0 ~hy:100.0
    in
    { name; region; row_height;
      bcells = []; bpins = []; bnets = [];
      ncells = 0; npins = 0; nnets = 0;
      cell_names = Hashtbl.create 64;
      pin_names = Hashtbl.create 256;
      net_names = Hashtbl.create 64 }

  let check_fresh table kind name =
    if Hashtbl.mem table name then
      invalid_arg (Printf.sprintf "Netlist.Builder: duplicate %s name %S" kind name);
    Hashtbl.add table name ()

  let add_cell b ~name ~lib_cell ~width ~height ?(x = 0.0) ?(y = 0.0)
      ?(fixed = false) () =
    check_fresh b.cell_names "cell" name;
    let id = b.ncells in
    b.ncells <- id + 1;
    b.bcells <-
      { cell_id = id; cell_name = name; lib_cell; width; height; x; y;
        fixed; cell_pins = [||] }
      :: b.bcells;
    id

  let add_pin b ~cell ~name ~direction ?(offset_x = 0.0) ?(offset_y = 0.0)
      ?(lib_pin = -1) () =
    if cell < 0 || cell >= b.ncells then
      invalid_arg (Printf.sprintf "Netlist.Builder: pin %S on unknown cell %d" name cell);
    check_fresh b.pin_names "pin" name;
    let id = b.npins in
    b.npins <- id + 1;
    b.bpins <-
      { pin_id = id; pin_name = name; cell; offset_x; offset_y; direction;
        net = -1; lib_pin }
      :: b.bpins;
    id

  let add_net b ~name ~pins =
    check_fresh b.net_names "net" name;
    List.iter
      (fun p ->
        if p < 0 || p >= b.npins then
          invalid_arg (Printf.sprintf "Netlist.Builder: net %S uses unknown pin %d" name p))
      pins;
    let id = b.nnets in
    b.nnets <- id + 1;
    b.bnets <- (name, pins) :: b.bnets;
    id

  let freeze b =
    let cells = Array.of_list (List.rev b.bcells) in
    let pins = Array.of_list (List.rev b.bpins) in
    let net_specs = Array.of_list (List.rev b.bnets) in
    let nets =
      Array.mapi
        (fun id (name, pin_list) ->
          if pin_list = [] then
            invalid_arg (Printf.sprintf "Netlist.Builder: net %S has no pins" name);
          let drivers, sinks =
            List.partition (fun p -> pins.(p).direction = Output) pin_list
          in
          (match drivers with
           | [] | [ _ ] -> ()
           | _ ->
             invalid_arg
               (Printf.sprintf "Netlist.Builder: net %S has multiple drivers" name));
          let ordered = Array.of_list (drivers @ sinks) in
          Array.iter
            (fun p ->
              if pins.(p).net <> -1 then
                invalid_arg
                  (Printf.sprintf "Netlist.Builder: pin %S on two nets"
                     pins.(p).pin_name);
              pins.(p).net <- id)
            ordered;
          { net_id = id; net_name = name; net_pins = ordered; weight = 1.0 })
        net_specs
    in
    (* Attach pins to their owning cells in pin-id order. *)
    let per_cell = Array.make (Array.length cells) [] in
    for p = Array.length pins - 1 downto 0 do
      per_cell.(pins.(p).cell) <- p :: per_cell.(pins.(p).cell)
    done;
    Array.iteri (fun i c -> c.cell_pins <- Array.of_list per_cell.(i)) cells;
    { design_name = b.name;
      region = b.region;
      row_height = b.row_height;
      cells; pins; nets }
end

module Stats = struct
  type stats = {
    cells : int;
    movable : int;
    nets : int;
    pins : int;
    average_fanout : float;
    max_fanout : int;
    total_cell_area : float;
    region_area : float;
    utilization : float;
  }

  let compute d =
    let movable = List.length (movable_cells d) in
    let fanouts =
      Array.map (fun net -> max 0 (Array.length net.net_pins - 1)) d.nets
    in
    let total_fanout = Array.fold_left ( + ) 0 fanouts in
    let max_fanout = Array.fold_left max 0 fanouts in
    let cell_area =
      Array.fold_left
        (fun acc c -> if c.fixed then acc else acc +. (c.width *. c.height))
        0.0 d.cells
    in
    let region_area = Geometry.Rect.area d.region in
    { cells = num_cells d;
      movable;
      nets = num_nets d;
      pins = num_pins d;
      average_fanout =
        (if num_nets d = 0 then 0.0
         else float_of_int total_fanout /. float_of_int (num_nets d));
      max_fanout;
      total_cell_area = cell_area;
      region_area;
      utilization = (if region_area > 0.0 then cell_area /. region_area else 0.0) }

  let pp ppf s =
    Format.fprintf ppf
      "@[<v>cells: %d (movable %d)@,nets: %d@,pins: %d@,avg fanout: %.2f@,\
       max fanout: %d@,utilization: %.1f%%@]"
      s.cells s.movable s.nets s.pins s.average_fanout s.max_fanout
      (100.0 *. s.utilization)
end
