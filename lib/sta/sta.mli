(** Static timing analysis (paper §2.1).

    The circuit is a DAG over pins with two arc kinds: {e net arcs} from a
    net's driver to each sink (wire delay, Elmore model) and {e cell arcs}
    between pins of one cell (NLDM look-up tables).  Pins are assigned
    logic levels by longest-path topological sorting; arrival times and
    slews propagate level by level; slacks compare arrival against
    required times at endpoints (flip-flop data pins and primary
    outputs).

    This module hosts the {b exact} timer (hard min/max), used for final
    scoring and for the net-weighting baseline; the differentiable
    (smoothed) engine lives in [Difftimer] and shares {!Graph} and
    {!Nets}. *)

type transition = Rise | Fall

val transition_index : transition -> int
(** [Rise] is 0, [Fall] is 1; per-transition state is stored at
    [2 * pin + transition_index]. *)

val pp_transition : Format.formatter -> transition -> unit

(** Design constraints (SDC-lite): a single ideal clock, uniform IO
    timing. *)
module Constraints : sig
  type t = {
    clock_period : float;   (** ps. *)
    input_delay : float;    (** arrival time at primary inputs. *)
    output_delay : float;   (** margin required at primary outputs. *)
    input_slew : float;     (** slew of signals entering at PIs. *)
    clock_slew : float;     (** slew of the (ideal) clock at CK pins. *)
    output_load : float;    (** capacitance modelled at each PO pad, fF. *)
  }

  val default : t
end

(** The timing graph: levelised pins, cell arcs, checks and static
    per-pin data.  Built once per design; placement moves do not change
    it (paper §3.3 step 1). *)
module Graph : sig
  type check = {
    ck_data : int;
    ck_clock : int;
    ck_arc : Liberty.check_arc;
  }

  type t = {
    design : Netlist.t;
    lib : Liberty.t;
    constraints : Constraints.t;
    pin_level : int array;
    levels : int array array;     (** [levels.(l)] = pins at level [l]. *)
    (* Cell arcs, flattened to CSR.  Arc [a] runs from input pin
       [arc_from.(a)] to output pin [arc_to.(a)] with tables
       [arc_table.(a)]; [arc_mask.(a)] has bit
       [2 * tr_out + tr_in] set when input transition [tr_in] can drive
       output transition [tr_out] (from the arc's unateness).  The arc
       ids into pin [v] are [fanin_arc.(fanin_off.(v)) ..
       fanin_arc.(fanin_off.(v + 1) - 1)]; [fanout_off]/[fanout_arc]
       index the same arcs by source pin. *)
    arc_from : int array;
    arc_to : int array;
    arc_table : Liberty.timing_arc array;
    arc_mask : int array;
    fanin_off : int array;        (** length [npins + 1]. *)
    fanin_arc : int array;
    fanout_off : int array;
    fanout_arc : int array;
    (* Net connectivity, flattened once at build time. *)
    net_driver_of : int array;    (** per net; [-1] when undriven. *)
    net_sink_off : int array;     (** length [nnets + 1]. *)
    net_sink : int array;         (** input-direction pins, CSR by net. *)
    check_of_pin : check option array;  (** per data pin. *)
    pin_cap : float array;        (** sink capacitance per pin. *)
    is_endpoint : bool array;
    is_start : bool array;
    is_clock_pin : bool array;
    primary_inputs : int list;    (** pad output pins. *)
    primary_outputs : int list;   (** pad input pins. *)
    endpoints : int array;
  }

  val build : Netlist.t -> Liberty.t -> Constraints.t -> t
  (** @raise Invalid_argument on a combinational cycle or if a cell
      references a pin missing from its library cell. *)

  val max_level : t -> int

  val num_arcs : t -> int

  val arc_admits : t -> int -> tr_out:transition -> tr_in:transition -> bool
  (** [arc_admits g a ~tr_out ~tr_in] tests arc [a]'s compatibility mask:
      whether [tr_in] at [arc_from.(a)] contributes to [tr_out] at
      [arc_to.(a)]. *)
end

(** Per-net Steiner trees plus RC state, shared by the exact and the
    differentiable timer.  [trees.(n) = None] for nets with fewer than
    two pins. *)
module Nets : sig
  type t = {
    graph : Graph.t;
    mutable trees : (Steiner.t * Rc.t) option array;
    tree_index : int array;
    (** [tree_index.(p)] is pin [p]'s node index inside its net's tree
        ([-1] if the net has no tree). *)
    anchor_off : int array;
    anchor_xs : float array;
    anchor_ys : float array;
    (** pin positions at each net's last (re-)topologisation, CSR
        layout: net [n]'s pins at [anchor_off.(n) ..].  Used by
        {!rebuild} to skip nets that have not moved past the dirty
        threshold. *)
  }

  val create : Graph.t -> t
  (** Builds topologies from the current placement and evaluates RC. *)

  val rebuild :
    ?exact_limit:int -> ?dirty_threshold:float -> ?pool:Parallel.pool ->
    ?obs:Obs.t -> t -> unit
  (** Re-run Steiner construction from current pin positions (the
      periodic "call FLUTE" step of §3.6) and re-evaluate RC.  The
      default path splits the work into three observable sub-kernels:
      [steiner.dirty] (nets whose every pin moved at most
      [dirty_threshold] in L-inf since their anchor: provenance refresh
      only; the threshold is scaled up by [degree /
      Steiner.Lut.max_degree] above the LUT degree, since one pin's
      jitter has vanishing influence on a high-fanout net's topology and
      a fixed threshold would keep such nets permanently dirty),
      [steiner.lut] (dirty nets of degree <=
      [Steiner.Lut.max_degree]: exact topology-LUT rebuild), and
      [steiner.full] (dirty nets above the LUT degree: Prim +
      Steinerisation).  Omitting [dirty_threshold] re-topologises every
      net; a threshold of [0.] is bit-identical to that (a rebuild of an
      unmoved net reproduces its tree exactly).  Passing [exact_limit]
      instead routes every net through the legacy exhaustive builder
      (test oracle).  With [pool], nets build in parallel; each task
      writes only its own slot and the LUT phase only reads the shared
      tables (first-seen classes are generated sequentially afterwards),
      so the result is bit-identical to sequential at any domain
      count. *)

  val refresh : ?pool:Parallel.pool -> ?obs:Obs.t -> t -> unit
  (** Keep topologies; refresh coordinates via Steiner provenance and
      re-evaluate RC (the cheap between-FLUTE-calls step of §3.6).
      Net-parallel under [pool], same determinism as {!rebuild}. *)

  val total_tree_length : t -> float
  (** Total Steiner wirelength (a routing-aware wirelength metric). *)
end

(** Exact timer. *)
module Timer : sig
  type endpoint_slack = {
    ep_pin : int;
    ep_setup_slack : float;
    ep_hold_slack : float;
  }

  type report = {
    setup_wns : float;
    setup_tns : float;
    hold_wns : float;
    hold_tns : float;
    endpoint_slacks : endpoint_slack list;
    (** one entry per constrained endpoint, worst setup first. *)
  }

  type t

  val create : Graph.t -> t
  val nets : t -> Nets.t

  val run :
    ?rebuild_trees:bool -> ?pool:Parallel.pool -> ?obs:Obs.t -> t -> report
  (** Full analysis on the current placement.  [rebuild_trees] (default
      true) reconstructs Steiner topologies first; pass false to reuse
      topologies and only refresh coordinates.  [pool] parallelises the
      Steiner/RC construction over nets (the propagation itself stays
      sequential).  [obs] records the tree maintenance as
      [steiner.rebuild]/[steiner.refresh] and the propagation as
      [sta.exact]. *)

  val at_late : t -> int -> transition -> float
  (** Latest arrival time at a pin after {!run}; [neg_infinity] when the
      pin is unreachable from any startpoint. *)

  val at_early : t -> int -> transition -> float
  val slew_late : t -> int -> transition -> float
  val rat_late : t -> int -> transition -> float
  (** Required arrival time (late/setup), [infinity] if unconstrained. *)

  val pin_slack_late : t -> int -> float
  (** [min over transitions (rat - at)]; [infinity] when unconstrained. *)

  val net_slack : t -> int -> float
  (** Worst [pin_slack_late] over the net's pins (used by net-based
      timing-driven placement, §2.3). *)

  type path_step = {
    ps_pin : int;
    ps_transition : transition;
    ps_at : float;
    ps_slew : float;
  }

  val critical_path : ?endpoint:int -> t -> path_step list
  (** The data path realising an endpoint's worst arrival time, from a
      startpoint to the endpoint ([endpoint] defaults to the design's
      worst one).  Empty when the endpoint is unreachable.  Valid after
      {!run}; paths like these are what exceed 300 stages in industrial
      designs (§2.2). *)

  val pp_path : Graph.t -> Format.formatter -> path_step list -> unit

  val pp_report : Format.formatter -> report -> unit
end

(** Incremental timing analysis.

    The ICCAD 2015 contest the paper evaluates on is about {e
    incremental} timing-driven placement [33], and the authors' timer
    line descends from GPU-accelerated incremental STA [35].  This engine
    keeps the full arrival/slew state of a {!Timer} and, after cells
    move, re-propagates only the affected cones: the moved cells' nets
    are re-evaluated (Elmore on refreshed Steiner coordinates), their
    sinks and drivers are marked dirty, and dirtiness spreads level by
    level only where arrival times or slews actually change.

    Restriction: Steiner topologies are refreshed through provenance,
    not rebuilt (call {!Timer.run} for a from-scratch analysis).

    {b Staleness contract.}  {!update} maintains arrival times and slews
    over the re-propagated cone and required times {e at endpoints
    only}.  Reading [Timer.pin_slack_late] or [Timer.rat_late] through
    {!timer} after an update therefore returns stale values for interior
    pins; use {!pin_slack_late} / {!rat_late} on the incremental engine
    instead, which lazily re-run the full backward RAT sweep over the
    current arrival state (amortised: once per update generation, and
    bit-identical to a from-scratch [Timer.run] of the same
    placement). *)
module Incremental : sig
  type t

  (** Work accounting for the last {!update} (observability for tests,
      benchmarks and the serving daemon). *)
  type update_stats = {
    us_pins : int;       (** pins re-evaluated *)
    us_changed : int;    (** pins whose timing state actually changed *)
    us_nets : int;       (** nets whose RC state was refreshed *)
    us_levels : int;     (** distinct graph levels visited *)
    us_endpoints : int;  (** endpoints whose slack was recomputed *)
  }

  val create : Graph.t -> t
  (** Builds the state and runs an initial full analysis. *)

  val of_timer : ?report:Timer.report -> Timer.t -> t
  (** Wrap an existing timer that has already been {!Timer.run} (shares
      its arrays; no full analysis is re-run).  The endpoint-slack cache
      is seeded from [report] when given, otherwise re-derived from the
      timer's current state. *)

  val timer : t -> Timer.t
  (** The underlying timer, for [at_late]/[slew_late] style reads —
      these are maintained by {!update}.  [Timer.rat_late] and
      [Timer.pin_slack_late] reads through this accessor are {b stale}
      for interior pins after an update; use the accessors below. *)

  val move_cell : t -> int -> x:float -> y:float -> unit
  (** Move a cell (updates the design in place) and queue its timing
      cone for re-evaluation.  Cheap; no propagation happens yet.
      Mirrors the legalizer's placement domain: the target must keep the
      cell's bounding box inside the core region, and the cell must be
      movable.
      @raise Invalid_argument on an out-of-range cell id, a fixed
      (pad/macro) cell, a non-finite coordinate, or a position whose
      bounding box leaves the core region. *)

  val touch_cell : t -> int -> unit
  (** Queue a cell's nets for RC refresh and re-propagation without
      changing its coordinates — for callers (e.g. the placement loop)
      that update positions directly in the design. *)

  val update : ?obs:Obs.t -> t -> Timer.report
  (** Propagate all pending moves and return the refreshed report —
      bit-identical to [Timer.run ~rebuild_trees:false] on the same
      placement.  [obs] records the pass as [sta.incremental] with
      pins/nets/changed counters. *)

  val absorb : t -> Timer.report -> unit
  (** Resynchronise after an external full [Timer.run] on the shared
      timer: drop pending moves (the full run already saw their
      coordinates), re-seed the endpoint cache from [report], and mark
      per-pin RATs fresh. *)

  val pin_slack_late : t -> int -> float
  (** [Timer.pin_slack_late] made safe after updates: lazily refreshes
      all per-pin RATs first (full backward sweep, amortised per update
      generation). *)

  val rat_late : t -> int -> transition -> float
  (** [Timer.rat_late] with the same lazy RAT refresh. *)

  val last_update_pin_count : t -> int
  (** Number of pins re-evaluated by the last {!update}. *)

  val last_stats : t -> update_stats
  (** Full work accounting for the last {!update}. *)
end
