type transition = Rise | Fall

let transition_index = function Rise -> 0 | Fall -> 1
let both_transitions = [ Rise; Fall ]
let transitions = [| Rise; Fall |]

let pp_transition ppf = function
  | Rise -> Format.pp_print_string ppf "rise"
  | Fall -> Format.pp_print_string ppf "fall"

module Constraints = struct
  type t = {
    clock_period : float;
    input_delay : float;
    output_delay : float;
    input_slew : float;
    clock_slew : float;
    output_load : float;
  }

  let default =
    { clock_period = 800.0;
      input_delay = 0.0;
      output_delay = 0.0;
      input_slew = 15.0;
      clock_slew = 10.0;
      output_load = 4.0 }
end

module Graph = struct
  type check = {
    ck_data : int;
    ck_clock : int;
    ck_arc : Liberty.check_arc;
  }

  type t = {
    design : Netlist.t;
    lib : Liberty.t;
    constraints : Constraints.t;
    pin_level : int array;
    levels : int array array;
    arc_from : int array;
    arc_to : int array;
    arc_table : Liberty.timing_arc array;
    arc_mask : int array;
    fanin_off : int array;
    fanin_arc : int array;
    fanout_off : int array;
    fanout_arc : int array;
    net_driver_of : int array;
    net_sink_off : int array;
    net_sink : int array;
    check_of_pin : check option array;
    pin_cap : float array;
    is_endpoint : bool array;
    is_start : bool array;
    is_clock_pin : bool array;
    primary_inputs : int list;
    primary_outputs : int list;
    endpoints : int array;
  }

  let max_level g = Array.length g.levels - 1
  let num_arcs g = Array.length g.arc_from

  (* bit (2 * tr_out + tr_in) is set when an input transition [tr_in] can
     produce the output transition [tr_out] through the arc. *)
  let mask_of_sense = function
    | Liberty.Positive_unate -> 0b1001
    | Liberty.Negative_unate -> 0b0110
    | Liberty.Non_unate -> 0b1111

  let arc_admits g a ~tr_out ~tr_in =
    g.arc_mask.(a)
    land (1 lsl ((2 * transition_index tr_out) + transition_index tr_in))
    <> 0

  let build design lib constraints =
    let npins = Netlist.num_pins design in
    let rev_arcs = ref [] in
    let narcs = ref 0 in
    let add_arc u v arc =
      rev_arcs := (u, v, arc) :: !rev_arcs;
      incr narcs
    in
    let check_of_pin = Array.make npins None in
    let pin_cap = Array.make npins 0.0 in
    let is_clock_pin = Array.make npins false in
    (* Resolve each cell's library arcs onto its design pins. *)
    Array.iter
      (fun (c : Netlist.cell) ->
        if c.Netlist.lib_cell >= 0 then begin
          let lc = lib.Liberty.lib_cells.(c.Netlist.lib_cell) in
          let n_lib_pins = Array.length lc.Liberty.lc_pins in
          let design_pin = Array.make n_lib_pins (-1) in
          Array.iter
            (fun p ->
              let lp = design.Netlist.pins.(p).Netlist.lib_pin in
              if lp < 0 || lp >= n_lib_pins then
                invalid_arg
                  (Printf.sprintf "Sta.Graph: cell %s pin %s has bad lib_pin"
                     c.Netlist.cell_name
                     design.Netlist.pins.(p).Netlist.pin_name);
              design_pin.(lp) <- p)
            c.Netlist.cell_pins;
          let resolve lp =
            if design_pin.(lp) < 0 then
              invalid_arg
                (Printf.sprintf "Sta.Graph: cell %s missing pin %s"
                   c.Netlist.cell_name lc.Liberty.lc_pins.(lp).Liberty.lp_name)
            else design_pin.(lp)
          in
          Array.iter
            (fun p ->
              let pin = design.Netlist.pins.(p) in
              if pin.Netlist.lib_pin >= 0 then begin
                let lp = lc.Liberty.lc_pins.(pin.Netlist.lib_pin) in
                pin_cap.(p) <- lp.Liberty.lp_capacitance;
                is_clock_pin.(p) <- lp.Liberty.lp_is_clock
              end)
            c.Netlist.cell_pins;
          Array.iter
            (fun (arc : Liberty.timing_arc) ->
              let u = resolve arc.Liberty.arc_from
              and v = resolve arc.Liberty.arc_to in
              add_arc u v arc)
            lc.Liberty.lc_arcs;
          Array.iter
            (fun (ck : Liberty.check_arc) ->
              let d = resolve ck.Liberty.check_data
              and k = resolve ck.Liberty.check_clock in
              check_of_pin.(d) <-
                Some { ck_data = d; ck_clock = k; ck_arc = ck })
            lc.Liberty.lc_checks
        end
        else
          (* pad: input pins model the external load *)
          Array.iter
            (fun p ->
              if design.Netlist.pins.(p).Netlist.direction = Netlist.Input
              then pin_cap.(p) <- constraints.Constraints.output_load)
            c.Netlist.cell_pins)
      design.Netlist.cells;
    (* Flatten the collected cell arcs to CSR: one id per arc, fan-in and
       fan-out adjacency as offset + arc-id arrays (stable counting sort,
       so arc ids appear in insertion order within each pin's range). *)
    let narcs = !narcs in
    let arcs = Array.of_list (List.rev !rev_arcs) in
    let arc_from = Array.map (fun (u, _, _) -> u) arcs in
    let arc_to = Array.map (fun (_, v, _) -> v) arcs in
    let arc_table = Array.map (fun (_, _, arc) -> arc) arcs in
    let arc_mask =
      Array.map
        (fun (_, _, (arc : Liberty.timing_arc)) ->
          mask_of_sense arc.Liberty.sense)
        arcs
    in
    let csr_by key =
      let off = Array.make (npins + 1) 0 in
      for a = 0 to narcs - 1 do
        off.(key.(a) + 1) <- off.(key.(a) + 1) + 1
      done;
      for p = 1 to npins do
        off.(p) <- off.(p) + off.(p - 1)
      done;
      let ids = Array.make narcs 0 in
      let cursor = Array.copy off in
      for a = 0 to narcs - 1 do
        let p = key.(a) in
        ids.(cursor.(p)) <- a;
        cursor.(p) <- cursor.(p) + 1
      done;
      (off, ids)
    in
    let fanin_off, fanin_arc = csr_by arc_to in
    let fanout_off, fanout_arc = csr_by arc_from in
    (* Net connectivity, flattened once: the driving pin of each net and
       the sink (input-direction) pins in CSR form. *)
    let nnets = Netlist.num_nets design in
    let net_driver_of = Array.make nnets (-1) in
    let net_sink_off = Array.make (nnets + 1) 0 in
    Array.iter
      (fun (net : Netlist.net) ->
        let n = net.Netlist.net_id in
        (match Netlist.net_driver design n with
         | Some u -> net_driver_of.(n) <- u
         | None -> ());
        Array.iter
          (fun p ->
            if design.Netlist.pins.(p).Netlist.direction = Netlist.Input then
              net_sink_off.(n + 1) <- net_sink_off.(n + 1) + 1)
          net.Netlist.net_pins)
      design.Netlist.nets;
    for n = 1 to nnets do
      net_sink_off.(n) <- net_sink_off.(n) + net_sink_off.(n - 1)
    done;
    let net_sink = Array.make net_sink_off.(nnets) 0 in
    let sink_cursor = Array.copy net_sink_off in
    Array.iter
      (fun (net : Netlist.net) ->
        let n = net.Netlist.net_id in
        Array.iter
          (fun p ->
            if design.Netlist.pins.(p).Netlist.direction = Netlist.Input
            then begin
              net_sink.(sink_cursor.(n)) <- p;
              sink_cursor.(n) <- sink_cursor.(n) + 1
            end)
          net.Netlist.net_pins)
      design.Netlist.nets;
    (* Longest-path levelisation over net arcs + cell arcs. *)
    let successors = Array.make npins [] in
    let indegree = Array.make npins 0 in
    let add_edge u v =
      successors.(u) <- v :: successors.(u);
      indegree.(v) <- indegree.(v) + 1
    in
    Array.iter
      (fun (net : Netlist.net) ->
        let u = net_driver_of.(net.Netlist.net_id) in
        if u >= 0 then
          Array.iter
            (fun p -> if p <> u then add_edge u p)
            net.Netlist.net_pins)
      design.Netlist.nets;
    for a = 0 to narcs - 1 do
      add_edge arc_from.(a) arc_to.(a)
    done;
    let pin_level = Array.make npins 0 in
    let queue = Queue.create () in
    for p = 0 to npins - 1 do
      if indegree.(p) = 0 then Queue.push p queue
    done;
    let processed = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      incr processed;
      List.iter
        (fun v ->
          if pin_level.(u) + 1 > pin_level.(v) then
            pin_level.(v) <- pin_level.(u) + 1;
          indegree.(v) <- indegree.(v) - 1;
          if indegree.(v) = 0 then Queue.push v queue)
        successors.(u)
    done;
    if !processed <> npins then
      invalid_arg "Sta.Graph: combinational cycle detected";
    let nlevels = 1 + Array.fold_left max 0 pin_level in
    let buckets = Array.make nlevels [] in
    for p = npins - 1 downto 0 do
      buckets.(pin_level.(p)) <- p :: buckets.(pin_level.(p))
    done;
    let levels = Array.map Array.of_list buckets in
    let is_start = Array.make npins false in
    let primary_inputs = ref [] and primary_outputs = ref [] in
    let is_endpoint = Array.make npins false in
    for p = npins - 1 downto 0 do
      let pin = design.Netlist.pins.(p) in
      let cell = design.Netlist.cells.(pin.Netlist.cell) in
      if cell.Netlist.lib_cell < 0 then begin
        match pin.Netlist.direction with
        | Netlist.Output ->
          primary_inputs := p :: !primary_inputs;
          is_start.(p) <- true
        | Netlist.Input ->
          primary_outputs := p :: !primary_outputs;
          is_endpoint.(p) <- true
      end
      else begin
        if is_clock_pin.(p) then is_start.(p) <- true;
        if check_of_pin.(p) <> None then is_endpoint.(p) <- true
      end
    done;
    let endpoints =
      Array.of_seq
        (Seq.filter (fun p -> is_endpoint.(p)) (Seq.init npins Fun.id))
    in
    { design; lib; constraints; pin_level; levels;
      arc_from; arc_to; arc_table; arc_mask;
      fanin_off; fanin_arc; fanout_off; fanout_arc;
      net_driver_of; net_sink_off; net_sink;
      check_of_pin; pin_cap; is_endpoint; is_start; is_clock_pin;
      primary_inputs = !primary_inputs;
      primary_outputs = !primary_outputs;
      endpoints }
end

module Nets = struct
  type t = {
    graph : Graph.t;
    mutable trees : (Steiner.t * Rc.t) option array;
    tree_index : int array;
    (* pin positions at each net's last (re-)topologisation, in CSR
       layout: net [n]'s pins live at [anchor_off.(n) ..].  A net whose
       every pin has moved by at most the dirty threshold (L-inf) since
       its anchor keeps its topology on a rebuild tick.  Pin-level
       tracking (not bbox) is what makes threshold 0 exactly equivalent
       to a full rebuild: a bbox can stay put while interior pins
       cross. *)
    anchor_off : int array;
    anchor_xs : float array;
    anchor_ys : float array;
  }

  let build_tree ?exact_limit (g : Graph.t) net_id =
    let design = g.Graph.design in
    let pins = design.Netlist.nets.(net_id).Netlist.net_pins in
    let n = Array.length pins in
    if n < 2 then None
    else begin
      let xs = Array.map (fun p -> Netlist.pin_x design p) pins in
      let ys = Array.map (fun p -> Netlist.pin_y design p) pins in
      let tree = Steiner.build ?exact_limit ~xs ~ys () in
      let pin_caps = Array.map (fun p -> g.Graph.pin_cap.(p)) pins in
      let rc =
        Rc.create ~r_unit:g.Graph.lib.Liberty.r_unit
          ~c_unit:g.Graph.lib.Liberty.c_unit ~pin_caps tree
      in
      Rc.evaluate rc;
      Some (tree, rc)
    end

  let record_anchor t net_id =
    let design = t.graph.Graph.design in
    let pins = design.Netlist.nets.(net_id).Netlist.net_pins in
    let off = t.anchor_off.(net_id) in
    Array.iteri
      (fun k p ->
        t.anchor_xs.(off + k) <- Netlist.pin_x design p;
        t.anchor_ys.(off + k) <- Netlist.pin_y design p)
      pins

  let create graph =
    let design = graph.Graph.design in
    let nnets = Netlist.num_nets design in
    let tree_index = Array.make (Netlist.num_pins design) (-1) in
    Array.iter
      (fun (net : Netlist.net) ->
        if Array.length net.Netlist.net_pins >= 2 then
          Array.iteri
            (fun i p -> tree_index.(p) <- i)
            net.Netlist.net_pins)
      design.Netlist.nets;
    let anchor_off = Array.make (nnets + 1) 0 in
    for n = 0 to nnets - 1 do
      anchor_off.(n + 1) <-
        anchor_off.(n)
        + Array.length design.Netlist.nets.(n).Netlist.net_pins
    done;
    let trees = Array.init nnets (fun n -> build_tree graph n) in
    let t =
      { graph; trees; tree_index; anchor_off;
        anchor_xs = Array.make anchor_off.(nnets) 0.0;
        anchor_ys = Array.make anchor_off.(nnets) 0.0 }
    in
    for n = 0 to nnets - 1 do record_anchor t n done;
    t

  let refresh_net design (tree, rc) net_pins =
    let xs = Array.map (fun p -> Netlist.pin_x design p) net_pins in
    let ys = Array.map (fun p -> Netlist.pin_y design p) net_pins in
    Steiner.update_coordinates tree ~xs ~ys;
    Rc.evaluate rc

  (* same rooted topology and provenance: node-for-node identical
     arrays, so adopting the new coordinates into the old tree is
     bitwise equal to installing the new tree *)
  let same_topology (a : Steiner.t) (b : Steiner.t) =
    let eq_int xs ys =
      let n = Array.length xs in
      Array.length ys = n
      &&
      let i = ref 0 in
      while !i < n && xs.(!i) = ys.(!i) do incr i done;
      !i = n
    in
    a.Steiner.pin_count = b.Steiner.pin_count
    && eq_int a.Steiner.parent b.Steiner.parent
    && eq_int a.Steiner.x_source b.Steiner.x_source
    && eq_int a.Steiner.y_source b.Steiner.y_source
    && eq_int a.Steiner.order b.Steiner.order

  let install_tree t net_id tree =
    let g = t.graph in
    let design = g.Graph.design in
    let pins = design.Netlist.nets.(net_id).Netlist.net_pins in
    let pin_caps = Array.map (fun p -> g.Graph.pin_cap.(p)) pins in
    let rc =
      Rc.create ~r_unit:g.Graph.lib.Liberty.r_unit
        ~c_unit:g.Graph.lib.Liberty.c_unit ~pin_caps tree
    in
    Rc.evaluate rc;
    t.trees.(net_id) <- Some (tree, rc)

  (* Steiner construction and RC evaluation are per-net: every task
     touches only [trees.(n)] and freshly allocated tree/RC state, so
     net-parallel dispatch is race-free and bit-identical.  The LUT
     phase only *reads* the shared topology tables ([Lut.try_build]);
     nets whose class is not generated yet are flagged and patched
     sequentially after the parallel phase, so the final state never
     depends on worker scheduling or domain count. *)
  let rebuild ?exact_limit ?dirty_threshold ?pool ?(obs = Obs.disabled) t =
    Obs.start obs Obs.Steiner_rebuild;
    let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
    let design = t.graph.Graph.design in
    let nnets = Array.length t.trees in
    (match exact_limit with
     | Some _ ->
       (* legacy oracle path: every net through the exhaustive builder *)
       Parallel.parallel_for p ~obs ~cost:400.0 nnets (fun n ->
         t.trees.(n) <- build_tree ?exact_limit t.graph n;
         if t.trees.(n) <> None then record_anchor t n)
     | None ->
       (* classify: clean (refresh), LUT degree, or heuristic degree *)
       let wl_clean = Array.make nnets 0 and n_clean = ref 0 in
       let wl_lut = Array.make nnets 0 and n_lut = ref 0 in
       let wl_full = Array.make nnets 0 and n_full = ref 0 in
       for n = 0 to nnets - 1 do
         match t.trees.(n) with
         | None -> ()
         | Some _ ->
           let pins = design.Netlist.nets.(n).Netlist.net_pins in
           let dirty =
             match dirty_threshold with
             | None -> true
             | Some thr ->
               let off = t.anchor_off.(n) in
               let d = ref false in
               let k = ref 0 in
               let m = Array.length pins in
               (* Scale the threshold with degree: under a fixed one,
                  every high-fanout net is permanently dirty (some pin
                  always moves) yet a single pin's jitter has vanishing
                  influence on a big net's topology.  At 0 the scaled
                  threshold is still 0, so threshold-0 remains
                  bit-identical to an unconditional rebuild. *)
               let thr =
                 thr
                 *. Float.max 1.0
                      (float_of_int m
                       /. float_of_int Steiner.Lut.max_degree)
               in
               while (not !d) && !k < m do
                 let pin = pins.(!k) in
                 if
                   Float.abs
                     (Netlist.pin_x design pin -. t.anchor_xs.(off + !k))
                   > thr
                   || Float.abs
                        (Netlist.pin_y design pin -. t.anchor_ys.(off + !k))
                      > thr
                 then d := true;
                 incr k
               done;
               !d
           in
           if not dirty then begin
             wl_clean.(!n_clean) <- n;
             incr n_clean
           end
           else if Array.length pins <= Steiner.Lut.max_degree then begin
             wl_lut.(!n_lut) <- n;
             incr n_lut
           end
           else begin
             wl_full.(!n_full) <- n;
             incr n_full
           end
       done;
       if Obs.enabled obs then begin
         Obs.add obs "steiner.nets_clean" (float_of_int !n_clean);
         Obs.add obs "steiner.nets_lut" (float_of_int !n_lut);
         Obs.add obs "steiner.nets_full" (float_of_int !n_full)
       end;
       (* clean nets: O(1) provenance refresh on the frozen topology *)
       Obs.start obs Obs.Steiner_dirty;
       Parallel.parallel_for p ~obs ~cost:200.0 !n_clean (fun i ->
         let n = wl_clean.(i) in
         match t.trees.(n) with
         | None -> ()
         | Some entry ->
           refresh_net design entry design.Netlist.nets.(n).Netlist.net_pins);
       Obs.stop obs Obs.Steiner_dirty;
       (* LUT-degree nets: parallel read-only lookups, sequential patch
          for classes seen for the first time *)
       Obs.start obs Obs.Steiner_lut;
       let missing = Array.make (max 1 !n_lut) false in
       Parallel.parallel_for p ~obs ~cost:600.0 !n_lut (fun i ->
         let n = wl_lut.(i) in
         let pins = design.Netlist.nets.(n).Netlist.net_pins in
         let xs = Array.map (fun p -> Netlist.pin_x design p) pins in
         let ys = Array.map (fun p -> Netlist.pin_y design p) pins in
         match Steiner.Lut.try_build ~xs ~ys with
         | Some tree ->
           (match t.trees.(n) with
            | Some (old_tree, rc) when same_topology old_tree tree ->
              (* topology unchanged (the common case under small moves):
                 keep the installed tree and RC, adopt the coordinates *)
              let m = Steiner.node_count tree in
              Array.blit tree.Steiner.xs 0 old_tree.Steiner.xs 0 m;
              Array.blit tree.Steiner.ys 0 old_tree.Steiner.ys 0 m;
              Rc.evaluate rc
            | _ -> install_tree t n tree);
           record_anchor t n
         | None -> missing.(i) <- true);
       for i = 0 to !n_lut - 1 do
         if missing.(i) then begin
           let n = wl_lut.(i) in
           let pins = design.Netlist.nets.(n).Netlist.net_pins in
           let xs = Array.map (fun p -> Netlist.pin_x design p) pins in
           let ys = Array.map (fun p -> Netlist.pin_y design p) pins in
           install_tree t n (Steiner.Lut.build ~xs ~ys);
           record_anchor t n
         end
       done;
       Obs.stop obs Obs.Steiner_lut;
       (* above-LUT degrees: Prim + Steinerisation *)
       Obs.start obs Obs.Steiner_full;
       Parallel.parallel_for p ~obs ~cost:4000.0 !n_full (fun i ->
         let n = wl_full.(i) in
         t.trees.(n) <- build_tree t.graph n;
         record_anchor t n);
       Obs.stop obs Obs.Steiner_full);
    Obs.stop obs Obs.Steiner_rebuild

  let refresh ?pool ?(obs = Obs.disabled) t =
    Obs.start obs Obs.Steiner_refresh;
    let design = t.graph.Graph.design in
    let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
    (* ~cost raised from 80: per-net refresh walks every tree node plus
       a full RC evaluate, several hundred float ops — undercosting it
       made the executor cut grains below profitability at 4 domains
       (4853us vs 2778us at 2 in the baseline BENCH_placeriter.json) *)
    Parallel.parallel_for p ~obs ~cost:200.0 (Array.length t.trees) (fun n ->
      match t.trees.(n) with
      | None -> ()
      | Some entry ->
        refresh_net design entry design.Netlist.nets.(n).Netlist.net_pins);
    Obs.stop obs Obs.Steiner_refresh

  let total_tree_length t =
    Array.fold_left
      (fun acc entry ->
        match entry with
        | None -> acc
        | Some (tree, _) -> acc +. Steiner.total_length tree)
      0.0 t.trees
end

module Timer = struct
  type endpoint_slack = {
    ep_pin : int;
    ep_setup_slack : float;
    ep_hold_slack : float;
  }

  type report = {
    setup_wns : float;
    setup_tns : float;
    hold_wns : float;
    hold_tns : float;
    endpoint_slacks : endpoint_slack list;
  }

  type t = {
    graph : Graph.t;
    nets : Nets.t;
    at_l : float array;   (* 2 * pin + transition *)
    at_e : float array;
    sl_l : float array;
    sl_e : float array;
    rat_l : float array;
    rat_e : float array;
  }

  let create graph =
    let n = 2 * Netlist.num_pins graph.Graph.design in
    { graph;
      nets = Nets.create graph;
      at_l = Array.make n neg_infinity;
      at_e = Array.make n infinity;
      sl_l = Array.make n 0.0;
      sl_e = Array.make n infinity;
      rat_l = Array.make n infinity;
      rat_e = Array.make n neg_infinity }

  let nets t = t.nets
  let idx p tr = (2 * p) + transition_index tr
  let at_late t p tr = t.at_l.(idx p tr)
  let at_early t p tr = t.at_e.(idx p tr)
  let slew_late t p tr = t.sl_l.(idx p tr)
  let rat_late t p tr = t.rat_l.(idx p tr)

  (* LUT selection keyed by transition index (0 = rise, 1 = fall) *)
  let delay_lut_i (arc : Liberty.timing_arc) oi =
    if oi = 0 then arc.Liberty.cell_rise else arc.Liberty.cell_fall

  let slew_lut_i (arc : Liberty.timing_arc) oi =
    if oi = 0 then arc.Liberty.rise_transition
    else arc.Liberty.fall_transition

  let tree_of t pin =
    let design = t.graph.Graph.design in
    let net = design.Netlist.pins.(pin).Netlist.net in
    if net < 0 then None else t.nets.Nets.trees.(net)

  let root_load_of t pin =
    match tree_of t pin with None -> 0.0 | Some (_, rc) -> Rc.root_load rc

  let propagate_net_arc t v =
    let g = t.graph in
    let pin = g.Graph.design.Netlist.pins.(v) in
    let net = pin.Netlist.net in
    if pin.Netlist.direction = Netlist.Input && net >= 0 then begin
      let u = g.Graph.net_driver_of.(net) in
      if u >= 0 && u <> v then
        match t.nets.Nets.trees.(net) with
        | Some (_, rc) ->
          let node = t.nets.Nets.tree_index.(v) in
          let d = Rc.sink_delay rc node in
          let i2 = Rc.sink_impulse2 rc node in
          for ti = 0 to 1 do
            let iu = (2 * u) + ti and iv = (2 * v) + ti in
            if t.at_l.(iu) > neg_infinity then begin
              t.at_l.(iv) <- t.at_l.(iu) +. d;
              t.sl_l.(iv) <- sqrt ((t.sl_l.(iu) *. t.sl_l.(iu)) +. i2)
            end;
            if t.at_e.(iu) < infinity then begin
              t.at_e.(iv) <- t.at_e.(iu) +. d;
              t.sl_e.(iv) <- sqrt ((t.sl_e.(iu) *. t.sl_e.(iu)) +. i2)
            end
          done
        | None -> ()
    end

  let propagate_cell_arcs t v =
    let g = t.graph in
    let lo = g.Graph.fanin_off.(v) and hi = g.Graph.fanin_off.(v + 1) in
    if hi > lo then begin
      let load = root_load_of t v in
      for k = lo to hi - 1 do
        let a = g.Graph.fanin_arc.(k) in
        let u = g.Graph.arc_from.(a) in
        let arc = g.Graph.arc_table.(a) in
        let mask = g.Graph.arc_mask.(a) in
        for oi = 0 to 1 do
          let iv = (2 * v) + oi in
          let sub = (mask lsr (2 * oi)) land 3 in
          for ii = 0 to 1 do
            if sub land (1 lsl ii) <> 0 then begin
              let iu = (2 * u) + ii in
              if t.at_l.(iu) > neg_infinity then begin
                let d =
                  Liberty.Lut.lookup (delay_lut_i arc oi) t.sl_l.(iu) load
                in
                let s =
                  Liberty.Lut.lookup (slew_lut_i arc oi) t.sl_l.(iu) load
                in
                if t.at_l.(iu) +. d > t.at_l.(iv) then
                  t.at_l.(iv) <- t.at_l.(iu) +. d;
                if s > t.sl_l.(iv) then t.sl_l.(iv) <- s
              end;
              if t.at_e.(iu) < infinity then begin
                let d =
                  Liberty.Lut.lookup (delay_lut_i arc oi) t.sl_e.(iu) load
                in
                let s =
                  Liberty.Lut.lookup (slew_lut_i arc oi) t.sl_e.(iu) load
                in
                if t.at_e.(iu) +. d < t.at_e.(iv) then
                  t.at_e.(iv) <- t.at_e.(iu) +. d;
                if s < t.sl_e.(iv) then t.sl_e.(iv) <- s
              end
            end
          done
        done
      done
    end

  let check_lut (ck : Liberty.check_arc) ~setup = function
    | Rise -> if setup then ck.Liberty.setup_rise else ck.Liberty.hold_rise
    | Fall -> if setup then ck.Liberty.setup_fall else ck.Liberty.hold_fall

  (* Endpoint required times; returns (setup_slack, hold_slack) or None
     when the endpoint is unreachable. *)
  let endpoint_slack t p =
    let cs = t.graph.Graph.constraints in
    let period = cs.Constraints.clock_period in
    let setup = ref infinity and hold = ref infinity in
    let reachable = ref false in
    List.iter
      (fun tr ->
        let i = idx p tr in
        (match t.graph.Graph.check_of_pin.(p) with
         | Some ck ->
           if t.at_l.(i) > neg_infinity then begin
             reachable := true;
             let su =
               Liberty.Lut.lookup
                 (check_lut ck.Graph.ck_arc ~setup:true tr)
                 t.sl_l.(i) cs.Constraints.clock_slew
             in
             let rat = period -. su in
             if rat < t.rat_l.(i) then t.rat_l.(i) <- rat;
             let sl = rat -. t.at_l.(i) in
             if sl < !setup then setup := sl
           end;
           if t.at_e.(i) < infinity then begin
             reachable := true;
             let ho =
               Liberty.Lut.lookup
                 (check_lut ck.Graph.ck_arc ~setup:false tr)
                 t.sl_e.(i) cs.Constraints.clock_slew
             in
             if ho > t.rat_e.(i) then t.rat_e.(i) <- ho;
             let sl = t.at_e.(i) -. ho in
             if sl < !hold then hold := sl
           end
         | None ->
           (* primary output *)
           if t.at_l.(i) > neg_infinity then begin
             reachable := true;
             let rat = period -. cs.Constraints.output_delay in
             if rat < t.rat_l.(i) then t.rat_l.(i) <- rat;
             let sl = rat -. t.at_l.(i) in
             if sl < !setup then setup := sl
           end;
           if t.at_e.(i) < infinity then begin
             reachable := true;
             t.rat_e.(i) <- Float.max t.rat_e.(i) 0.0;
             let sl = t.at_e.(i) in
             if sl < !hold then hold := sl
           end))
      both_transitions;
    if !reachable then Some (!setup, !hold) else None

  (* Late RAT back-propagation for per-pin slack reporting. *)
  let propagate_rat t =
    let g = t.graph in
    let design = g.Graph.design in
    let levels = g.Graph.levels in
    for l = Array.length levels - 1 downto 0 do
      Array.iter
        (fun v ->
          let pin = design.Netlist.pins.(v) in
          let net = pin.Netlist.net in
          (* push through the net arc into the driver *)
          (if pin.Netlist.direction = Netlist.Input && net >= 0 then
             let u = g.Graph.net_driver_of.(net) in
             if u >= 0 && u <> v then
               match t.nets.Nets.trees.(net) with
               | Some (_, rc) ->
                 let d = Rc.sink_delay rc t.nets.Nets.tree_index.(v) in
                 for ti = 0 to 1 do
                   let iv = (2 * v) + ti and iu = (2 * u) + ti in
                   if t.rat_l.(iv) < infinity then begin
                     let cand = t.rat_l.(iv) -. d in
                     if cand < t.rat_l.(iu) then t.rat_l.(iu) <- cand
                   end
                 done
               | None -> ());
          (* push through cell arcs into the arc inputs *)
          let lo = g.Graph.fanin_off.(v) and hi = g.Graph.fanin_off.(v + 1) in
          if hi > lo then begin
            let load = root_load_of t v in
            for k = lo to hi - 1 do
              let a = g.Graph.fanin_arc.(k) in
              let u = g.Graph.arc_from.(a) in
              let arc = g.Graph.arc_table.(a) in
              let mask = g.Graph.arc_mask.(a) in
              for oi = 0 to 1 do
                let iv = (2 * v) + oi in
                if t.rat_l.(iv) < infinity then begin
                  let sub = (mask lsr (2 * oi)) land 3 in
                  for ii = 0 to 1 do
                    if sub land (1 lsl ii) <> 0 then begin
                      let iu = (2 * u) + ii in
                      if t.at_l.(iu) > neg_infinity then begin
                        let d =
                          Liberty.Lut.lookup (delay_lut_i arc oi)
                            t.sl_l.(iu) load
                        in
                        let cand = t.rat_l.(iv) -. d in
                        if cand < t.rat_l.(iu) then t.rat_l.(iu) <- cand
                      end
                    end
                  done
                end
              done
            done
          end)
        levels.(l)
    done

  let run ?(rebuild_trees = true) ?pool ?(obs = Obs.disabled) t =
    let g = t.graph in
    let cs = g.Graph.constraints in
    if rebuild_trees then Nets.rebuild ?pool ~obs t.nets
    else Nets.refresh ?pool ~obs t.nets;
    Obs.start obs Obs.Sta_exact;
    Array.fill t.at_l 0 (Array.length t.at_l) neg_infinity;
    Array.fill t.at_e 0 (Array.length t.at_e) infinity;
    Array.fill t.sl_l 0 (Array.length t.sl_l) 0.0;
    Array.fill t.sl_e 0 (Array.length t.sl_e) infinity;
    Array.fill t.rat_l 0 (Array.length t.rat_l) infinity;
    Array.fill t.rat_e 0 (Array.length t.rat_e) neg_infinity;
    List.iter
      (fun p ->
        List.iter
          (fun tr ->
            let i = idx p tr in
            t.at_l.(i) <- cs.Constraints.input_delay;
            t.at_e.(i) <- cs.Constraints.input_delay;
            t.sl_l.(i) <- cs.Constraints.input_slew;
            t.sl_e.(i) <- cs.Constraints.input_slew)
          both_transitions)
      g.Graph.primary_inputs;
    Array.iteri
      (fun p clock ->
        if clock then
          List.iter
            (fun tr ->
              let i = idx p tr in
              t.at_l.(i) <- 0.0;
              t.at_e.(i) <- 0.0;
              t.sl_l.(i) <- cs.Constraints.clock_slew;
              t.sl_e.(i) <- cs.Constraints.clock_slew)
            both_transitions)
      g.Graph.is_clock_pin;
    Array.iter
      (fun level_pins ->
        Array.iter
          (fun v ->
            propagate_net_arc t v;
            propagate_cell_arcs t v)
          level_pins)
      g.Graph.levels;
    let slacks = ref [] in
    let setup_wns = ref infinity and setup_tns = ref 0.0 in
    let hold_wns = ref infinity and hold_tns = ref 0.0 in
    Array.iter
      (fun p ->
        match endpoint_slack t p with
        | None -> ()
        | Some (su, ho) ->
          slacks := { ep_pin = p; ep_setup_slack = su; ep_hold_slack = ho }
                    :: !slacks;
          if su < !setup_wns then setup_wns := su;
          if su < 0.0 then setup_tns := !setup_tns +. su;
          if ho < !hold_wns then hold_wns := ho;
          if ho < 0.0 then hold_tns := !hold_tns +. ho)
      g.Graph.endpoints;
    propagate_rat t;
    let sorted =
      List.sort
        (fun a b -> Float.compare a.ep_setup_slack b.ep_setup_slack)
        !slacks
    in
    let report =
      { setup_wns = (if !setup_wns = infinity then 0.0 else !setup_wns);
        setup_tns = !setup_tns;
        hold_wns = (if !hold_wns = infinity then 0.0 else !hold_wns);
        hold_tns = !hold_tns;
        endpoint_slacks = sorted }
    in
    Obs.stop obs Obs.Sta_exact;
    report

  let pin_slack_late t p =
    let best = ref infinity in
    List.iter
      (fun tr ->
        let i = idx p tr in
        if t.at_l.(i) > neg_infinity && t.rat_l.(i) < infinity then begin
          let s = t.rat_l.(i) -. t.at_l.(i) in
          if s < !best then best := s
        end)
      both_transitions;
    !best

  let net_slack t n =
    let pins = t.graph.Graph.design.Netlist.nets.(n).Netlist.net_pins in
    Array.fold_left (fun acc p -> Float.min acc (pin_slack_late t p)) infinity pins

  type path_step = {
    ps_pin : int;
    ps_transition : transition;
    ps_at : float;
    ps_slew : float;
  }

  (* Trace the arrival-time realisation backwards: at every pin, find
     the fan-in contribution whose (at + delay) reproduces the pin's AT. *)
  let critical_path ?endpoint t =
    let design = t.graph.Graph.design in
    let pick_endpoint () =
      let best = ref (-1) and best_slack = ref infinity in
      Array.iter
        (fun p ->
          let s = pin_slack_late t p in
          if s < !best_slack then begin
            best := p;
            best_slack := s
          end)
        t.graph.Graph.endpoints;
      !best
    in
    let p0 = match endpoint with Some p -> p | None -> pick_endpoint () in
    if p0 < 0 then []
    else begin
      let start_tr =
        let slack tr =
          if t.at_l.(idx p0 tr) > neg_infinity then
            t.rat_l.(idx p0 tr) -. t.at_l.(idx p0 tr)
          else infinity
        in
        if slack Rise <= slack Fall then Rise else Fall
      in
      if t.at_l.(idx p0 start_tr) = neg_infinity then []
      else begin
        let rec walk acc v tr guard =
          let step =
            { ps_pin = v; ps_transition = tr; ps_at = t.at_l.(idx v tr);
              ps_slew = t.sl_l.(idx v tr) }
          in
          let acc = step :: acc in
          if guard <= 0 then acc
          else begin
            let g = t.graph in
            let pin = design.Netlist.pins.(v) in
            let net = pin.Netlist.net in
            (* net arc predecessor *)
            let via_net =
              if pin.Netlist.direction = Netlist.Input && net >= 0
                 && t.nets.Nets.trees.(net) <> None
              then begin
                let u = g.Graph.net_driver_of.(net) in
                if u >= 0 && u <> v && t.at_l.(idx u tr) > neg_infinity then
                  Some (u, tr)
                else None
              end
              else None
            in
            match via_net with
            | Some (u, tr_in) -> walk acc u tr_in (guard - 1)
            | None ->
              (* cell arc predecessor: the contribution realising AT *)
              let load = root_load_of t v in
              let oi = transition_index tr in
              let best = ref None and best_err = ref infinity in
              for k = g.Graph.fanin_off.(v) to g.Graph.fanin_off.(v + 1) - 1
              do
                let a = g.Graph.fanin_arc.(k) in
                let u = g.Graph.arc_from.(a) in
                let arc = g.Graph.arc_table.(a) in
                let sub = (g.Graph.arc_mask.(a) lsr (2 * oi)) land 3 in
                for ii = 0 to 1 do
                  if sub land (1 lsl ii) <> 0 then begin
                    let iu = (2 * u) + ii in
                    if t.at_l.(iu) > neg_infinity then begin
                      let d =
                        Liberty.Lut.lookup (delay_lut_i arc oi)
                          t.sl_l.(iu) load
                      in
                      let err =
                        Float.abs (t.at_l.(iu) +. d -. t.at_l.(idx v tr))
                      in
                      if err < !best_err then begin
                        best_err := err;
                        best := Some (u, transitions.(ii))
                      end
                    end
                  end
                done
              done;
              (match !best with
               | Some (u, tr_in) -> walk acc u tr_in (guard - 1)
               | None -> acc)
          end
        in
        walk [] p0 start_tr (4 * Netlist.num_pins design)
      end
    end

  let pp_path graph ppf steps =
    let design = graph.Graph.design in
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-24s %a at %8.1f ps  slew %6.1f ps@,"
          design.Netlist.pins.(s.ps_pin).Netlist.pin_name pp_transition
          s.ps_transition s.ps_at s.ps_slew)
      steps;
    Format.fprintf ppf "@]"

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<v>setup: WNS %.1f ps, TNS %.1f ps@,hold: WNS %.1f ps, TNS %.1f ps@,\
       endpoints: %d@]"
      r.setup_wns r.setup_tns r.hold_wns r.hold_tns
      (List.length r.endpoint_slacks)
end

module Incremental = struct
  type update_stats = {
    us_pins : int;
    us_changed : int;
    us_nets : int;
    us_levels : int;
    us_endpoints : int;
  }

  let no_stats =
    { us_pins = 0; us_changed = 0; us_nets = 0; us_levels = 0;
      us_endpoints = 0 }

  type t = {
    tm : Timer.t;
    graph : Graph.t;
    dirty : bool array;            (* pin queued for re-evaluation *)
    net_pending : bool array;      (* net queued for RC refresh *)
    mutable pending_nets : int list;
    ep_setup : float array;        (* per endpoint pin; nan = unconstrained *)
    ep_hold : float array;
    mutable last_stats : update_stats;
    (* per-pin RATs are refreshed lazily: [update] only maintains
       endpoint RATs, so interior reads must re-run the backward sweep
       first (see {!refresh_rats}). *)
    mutable rats_stale : bool;
  }

  let timer t = t.tm
  let last_update_pin_count t = t.last_stats.us_pins
  let last_stats t = t.last_stats

  let record_endpoints t (report : Timer.report) =
    List.iter
      (fun (e : Timer.endpoint_slack) ->
        t.ep_setup.(e.Timer.ep_pin) <- e.Timer.ep_setup_slack;
        t.ep_hold.(e.Timer.ep_pin) <- e.Timer.ep_hold_slack)
      report.Timer.endpoint_slacks

  let seed_endpoints_from_state t =
    Array.iter
      (fun p ->
        match Timer.endpoint_slack t.tm p with
        | Some (setup, hold) ->
          t.ep_setup.(p) <- setup;
          t.ep_hold.(p) <- hold
        | None ->
          t.ep_setup.(p) <- Float.nan;
          t.ep_hold.(p) <- Float.nan)
      t.graph.Graph.endpoints

  let of_timer ?report tm =
    let graph = tm.Timer.graph in
    let npins = Netlist.num_pins graph.Graph.design in
    let t =
      { tm; graph;
        dirty = Array.make npins false;
        net_pending = Array.make (Netlist.num_nets graph.Graph.design) false;
        pending_nets = [];
        ep_setup = Array.make npins Float.nan;
        ep_hold = Array.make npins Float.nan;
        last_stats = no_stats;
        rats_stale = false }
    in
    (match report with
     | Some r -> record_endpoints t r
     | None -> seed_endpoints_from_state t);
    t

  let create graph =
    let tm = Timer.create graph in
    let report = Timer.run tm in
    of_timer ~report tm

  let absorb t (report : Timer.report) =
    List.iter (fun net -> t.net_pending.(net) <- false) t.pending_nets;
    t.pending_nets <- [];
    Array.fill t.ep_setup 0 (Array.length t.ep_setup) Float.nan;
    Array.fill t.ep_hold 0 (Array.length t.ep_hold) Float.nan;
    record_endpoints t report;
    t.rats_stale <- false

  let queue_net t net =
    if net >= 0 && not t.net_pending.(net) then begin
      t.net_pending.(net) <- true;
      t.pending_nets <- net :: t.pending_nets
    end

  let touch_cell t cell =
    let design = t.graph.Graph.design in
    let c = design.Netlist.cells.(cell) in
    Array.iter
      (fun p -> queue_net t design.Netlist.pins.(p).Netlist.net)
      c.Netlist.cell_pins

  (* Mirror the legalizer's placement domain: a movable cell whose
     bounding box lies inside the core region.  Accepting anything else
     (a fixed pad, an off-core or non-finite coordinate) desynchronises
     the timer from the placement the legalizer will later enforce, so
     such moves are rejected loudly instead of silently absorbed. *)
  let validate_move t cell ~x ~y =
    let design = t.graph.Graph.design in
    if cell < 0 || cell >= Netlist.num_cells design then
      invalid_arg
        (Printf.sprintf "Sta.Incremental.move_cell: cell %d out of range"
           cell);
    let c = design.Netlist.cells.(cell) in
    if c.Netlist.fixed then
      invalid_arg
        (Printf.sprintf
           "Sta.Incremental.move_cell: cell %s is fixed (pad/macro)"
           c.Netlist.cell_name);
    if not (Float.is_finite x && Float.is_finite y) then
      invalid_arg
        (Printf.sprintf
           "Sta.Incremental.move_cell: non-finite target (%g, %g) for %s" x y
           c.Netlist.cell_name);
    let r = t.graph.Graph.design.Netlist.region in
    let hw = c.Netlist.width /. 2.0 and hh = c.Netlist.height /. 2.0 in
    let eps = 1e-9 in
    if
      x -. hw < r.Geometry.Rect.lx -. eps
      || x +. hw > r.Geometry.Rect.hx +. eps
      || y -. hh < r.Geometry.Rect.ly -. eps
      || y +. hh > r.Geometry.Rect.hy +. eps
    then
      invalid_arg
        (Printf.sprintf
           "Sta.Incremental.move_cell: %s at (%g, %g) leaves the core region"
           c.Netlist.cell_name x y)

  let move_cell t cell ~x ~y =
    validate_move t cell ~x ~y;
    let design = t.graph.Graph.design in
    let c = design.Netlist.cells.(cell) in
    c.Netlist.x <- x;
    c.Netlist.y <- y;
    touch_cell t cell

  (* Re-evaluate one pin from its fan-in state; returns true when any of
     its eight timing values changed.  The comparison must be NaN-aware
     ([Float.equal], not [<>]): a NaN-valued pin (e.g. below an
     unconstrained input) recomputes to the same NaN, and the naive
     [nan <> nan = true] would re-dirty its entire fanout cone on every
     pass. *)
  let reevaluate t v =
    let tm = t.tm in
    let ir = Timer.idx v Rise and if_ = Timer.idx v Fall in
    let o1 = tm.Timer.at_l.(ir) and o2 = tm.Timer.at_l.(if_) in
    let o3 = tm.Timer.at_e.(ir) and o4 = tm.Timer.at_e.(if_) in
    let o5 = tm.Timer.sl_l.(ir) and o6 = tm.Timer.sl_l.(if_) in
    let o7 = tm.Timer.sl_e.(ir) and o8 = tm.Timer.sl_e.(if_) in
    tm.Timer.at_l.(ir) <- neg_infinity;
    tm.Timer.at_l.(if_) <- neg_infinity;
    tm.Timer.at_e.(ir) <- infinity;
    tm.Timer.at_e.(if_) <- infinity;
    tm.Timer.sl_l.(ir) <- 0.0;
    tm.Timer.sl_l.(if_) <- 0.0;
    tm.Timer.sl_e.(ir) <- infinity;
    tm.Timer.sl_e.(if_) <- infinity;
    Timer.propagate_net_arc tm v;
    Timer.propagate_cell_arcs tm v;
    not
      (Float.equal o1 tm.Timer.at_l.(ir)
       && Float.equal o2 tm.Timer.at_l.(if_)
       && Float.equal o3 tm.Timer.at_e.(ir)
       && Float.equal o4 tm.Timer.at_e.(if_)
       && Float.equal o5 tm.Timer.sl_l.(ir)
       && Float.equal o6 tm.Timer.sl_l.(if_)
       && Float.equal o7 tm.Timer.sl_e.(ir)
       && Float.equal o8 tm.Timer.sl_e.(if_))

  let refresh_endpoint t p =
    let tm = t.tm in
    List.iter
      (fun tr ->
        let i = Timer.idx p tr in
        tm.Timer.rat_l.(i) <- infinity;
        tm.Timer.rat_e.(i) <- neg_infinity)
      both_transitions;
    match Timer.endpoint_slack tm p with
    | Some (setup, hold) ->
      t.ep_setup.(p) <- setup;
      t.ep_hold.(p) <- hold
    | None ->
      t.ep_setup.(p) <- Float.nan;
      t.ep_hold.(p) <- Float.nan

  let update ?(obs = Obs.disabled) t =
    Obs.start obs Obs.Sta_incremental;
    let design = t.graph.Graph.design in
    let nets = t.tm.Timer.nets in
    let nlevels = Array.length t.graph.Graph.levels in
    let buckets = Array.make nlevels [] in
    let mark v =
      if not t.dirty.(v) then begin
        t.dirty.(v) <- true;
        let l = t.graph.Graph.pin_level.(v) in
        buckets.(l) <- v :: buckets.(l)
      end
    in
    (* refresh the RC state of every touched net and seed dirtiness *)
    let net_count = ref 0 in
    List.iter
      (fun net ->
        t.net_pending.(net) <- false;
        incr net_count;
        match nets.Nets.trees.(net) with
        | None -> ()
        | Some (tree, rc) ->
          let pins = design.Netlist.nets.(net).Netlist.net_pins in
          let xs = Array.map (fun p -> Netlist.pin_x design p) pins in
          let ys = Array.map (fun p -> Netlist.pin_y design p) pins in
          Steiner.update_coordinates tree ~xs ~ys;
          Rc.evaluate rc;
          Array.iter mark pins)
      t.pending_nets;
    t.pending_nets <- [];
    (* level-ordered sparse propagation *)
    let count = ref 0 and changed_count = ref 0 and level_count = ref 0 in
    let dirty_endpoints = ref [] in
    for l = 0 to nlevels - 1 do
      (* marks added during processing always target higher levels *)
      if buckets.(l) <> [] then incr level_count;
      List.iter
        (fun v ->
          t.dirty.(v) <- false;
          incr count;
          let changed =
            if t.graph.Graph.is_start.(v) then false else reevaluate t v
          in
          if t.graph.Graph.is_endpoint.(v) then
            dirty_endpoints := v :: !dirty_endpoints;
          if changed then begin
            incr changed_count;
            (* fan-outs: net sinks when v drives a net, plus cell arcs *)
            let g = t.graph in
            let pin = design.Netlist.pins.(v) in
            let net = pin.Netlist.net in
            (if pin.Netlist.direction = Netlist.Output && net >= 0
                && g.Graph.net_driver_of.(net) = v
             then
               for k = g.Graph.net_sink_off.(net)
                   to g.Graph.net_sink_off.(net + 1) - 1
               do
                 mark g.Graph.net_sink.(k)
               done);
            for k = g.Graph.fanout_off.(v) to g.Graph.fanout_off.(v + 1) - 1
            do
              mark g.Graph.arc_to.(g.Graph.fanout_arc.(k))
            done
          end)
        (List.rev buckets.(l));
      buckets.(l) <- []
    done;
    t.last_stats <-
      { us_pins = !count; us_changed = !changed_count; us_nets = !net_count;
        us_levels = !level_count;
        us_endpoints = List.length !dirty_endpoints };
    if !changed_count > 0 then t.rats_stale <- true;
    List.iter (fun p -> refresh_endpoint t p) !dirty_endpoints;
    (* aggregate the report from the cached endpoint slacks *)
    let slacks = ref [] in
    let setup_wns = ref infinity and setup_tns = ref 0.0 in
    let hold_wns = ref infinity and hold_tns = ref 0.0 in
    Array.iter
      (fun p ->
        let su = t.ep_setup.(p) and ho = t.ep_hold.(p) in
        if not (Float.is_nan su) then begin
          slacks :=
            { Timer.ep_pin = p; ep_setup_slack = su; ep_hold_slack = ho }
            :: !slacks;
          if su < !setup_wns then setup_wns := su;
          if su < 0.0 then setup_tns := !setup_tns +. su;
          if ho < !hold_wns then hold_wns := ho;
          if ho < 0.0 then hold_tns := !hold_tns +. ho
        end)
      t.graph.Graph.endpoints;
    let sorted =
      List.sort
        (fun (a : Timer.endpoint_slack) b ->
          Float.compare a.Timer.ep_setup_slack b.Timer.ep_setup_slack)
        !slacks
    in
    if Obs.enabled obs then begin
      Obs.add obs "sta.inc.pins" (float_of_int !count);
      Obs.add obs "sta.inc.nets" (float_of_int !net_count);
      Obs.add obs "sta.inc.changed" (float_of_int !changed_count)
    end;
    Obs.stop obs Obs.Sta_incremental;
    { Timer.setup_wns = (if !setup_wns = infinity then 0.0 else !setup_wns);
      setup_tns = !setup_tns;
      hold_wns = (if !hold_wns = infinity then 0.0 else !hold_wns);
      hold_tns = !hold_tns;
      endpoint_slacks = sorted }

  (* Full backward RAT sweep over the current (incrementally maintained)
     arrival state: exactly the reset + endpoint-required + back-
     propagation sequence of [Timer.run], so the refreshed per-pin RATs
     are bit-identical to a from-scratch analysis of the same
     placement. *)
  let refresh_rats t =
    let tm = t.tm in
    let n = Array.length tm.Timer.rat_l in
    Array.fill tm.Timer.rat_l 0 n infinity;
    Array.fill tm.Timer.rat_e 0 n neg_infinity;
    Array.iter
      (fun p -> ignore (Timer.endpoint_slack tm p))
      t.graph.Graph.endpoints;
    Timer.propagate_rat tm;
    t.rats_stale <- false

  let rat_late t p tr =
    if t.rats_stale then refresh_rats t;
    Timer.rat_late t.tm p tr

  let pin_slack_late t p =
    if t.rats_stale then refresh_rats t;
    Timer.pin_slack_late t.tm p
end
