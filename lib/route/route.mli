(** Routability estimation and cell inflation (RUDY + bloat loop).

    The placer's density penalty spreads cell {e area} but is blind to
    routing demand: a region can satisfy the density target while far
    more wires want to cross it than the routing layers can carry.
    This module adds the missing axis in three parts:

    - {!Rudy}: a RUDY-style (Rectangular Uniform wire DensitY) routing
      demand map.  Each net contributes a total demand of
      [w*h / (w + h)] (its bbox dimensions, clamped below at one bin so
      flat nets still count) smeared uniformly over the bins its
      bounding box overlaps, plus a fixed per-pin term splatted into
      the pin's bin.  The grid reuses the [Density] sizing policy
      (power-of-two side in [16, 256]) and the update runs net-parallel
      through the shared [Parallel] pool with chunk-order reduction, so
      the map is bit-identical at every domain count.
    - {!overflow}: a congestion summary over the demand map — peak bin
      utilization, an RC-style mean of the top-percentile bins, and
      overflow totals.
    - {!Inflate}: a bounded cell-inflation loop.  Cells sitting in
      congested bins get their footprint bloated (area ratio
      [(u / target) ** coef], cumulatively capped), which makes the
      density penalty push neighbours away and thins the hotspot.
      Inflation is temporary: {!Inflate.restore} puts every original
      width/height back.

    [Core.run] drives the loop between placement rounds when its
    [routability] config block is set; everything here is also usable
    standalone on a finished placement (reporting, viz overlays). *)

(** Knobs for the routability loop, mirroring the [-routability_*]
    family of RePlAce/OpenROAD options. *)
type config = {
  rt_check_overflow : float;
      (** start congestion checks once density overflow drops below
          this (the placement must be spread enough for bin demand to
          be meaningful); RePlAce uses 0.20. *)
  rt_check_period : int;
      (** placement iterations between congestion checks. *)
  rt_target : float;
      (** bin utilization above which a bin counts as congested and
          its cells are inflated. *)
  rt_capacity : float;
      (** routing capacity per unit bin area; utilization is
          [demand / (rt_capacity * bin_area)], so the summary is
          invariant under grid-resolution changes. *)
  rt_pin_weight : float;
      (** demand added to a bin per pin it contains. *)
  rt_inflation_coef : float;
      (** area ratio exponent: a cell in a bin at utilization [u]
          bloats by [(u / rt_target) ** rt_inflation_coef]. *)
  rt_max_ratio : float;
      (** cumulative per-cell area inflation cap (2.5 in RePlAce). *)
  rt_max_rounds : int;
      (** hard bound on inflation rounds per placement run. *)
}

val default_config : config

(** The RUDY demand map. *)
module Rudy : sig
  type t

  val create :
    ?bins:int -> ?capacity:float -> ?pin_weight:float -> Netlist.t -> t
  (** [bins] defaults to the [Density] sizing policy for the design;
      any explicit value is rounded to a power of two (min 4).
      [capacity] / [pin_weight] default to the {!default_config}
      values. *)

  val bins : t -> int

  val update : ?pool:Parallel.pool -> ?obs:Obs.t -> t -> unit
  (** Recompute the demand map from current pin positions.  Nets splat
      into per-chunk grids merged in chunk order ([route.rudy] span);
      the chunk split depends only on the net count, so pooled results
      are bit-identical to sequential ones. *)

  val demand : t -> float array
  (** Raw demand per bin, row-major [(bx * n) + by].  Owned by [t]; do
      not mutate. *)

  val utilization : t -> float array
  (** [demand / (capacity * bin_area)] per bin.  Owned by [t]. *)
end

(** Congestion summary of one demand map. *)
type summary = {
  ov_peak : float;  (** highest bin utilization *)
  ov_rc : float;  (** mean utilization of the top-percentile bins *)
  ov_congested : int;  (** bins with utilization above 1.0 *)
  ov_total : float;  (** sum of per-bin utilization excess above 1.0 *)
}

val overflow : ?obs:Obs.t -> ?percentile:float -> Rudy.t -> summary
(** Summarise the current map (call {!Rudy.update} first).
    [percentile] (default [0.02]) selects the top fraction of bins
    averaged into [ov_rc] (at least one bin).  Recorded as a
    [route.overflow] span; deterministic (sorted copy, no sampling). *)

val pp_summary : Format.formatter -> summary -> unit

(** Temporary cell inflation driven by the demand map. *)
module Inflate : sig
  type t

  val create : Netlist.t -> t
  (** Snapshot every cell's original width/height. *)

  val rounds : t -> int
  (** Inflation rounds executed so far. *)

  val step : ?obs:Obs.t -> config -> t -> Rudy.t -> int
  (** One inflation round ([route.inflate] span): every movable cell
      whose center bin has utilization above [rt_target] has its area
      multiplied by [(u / rt_target) ** rt_inflation_coef], capped so
      the cumulative ratio against the snapshot never exceeds
      [rt_max_ratio].  Cells are visited in id order (deterministic).
      Returns the number of cells inflated; returns [0] without
      touching anything once [rt_max_rounds] rounds have run. *)

  val deflate : ?obs:Obs.t -> config -> t -> Rudy.t -> int
  (** The inverse pass: every movable cell still carrying inflation
      (cumulative area ratio above 1) whose center bin has fallen back
      below [0.95 *. rt_target] (hysteresis, so threshold-hovering bins
      do not ping-pong) has its log-excess halved — the area ratio
      relaxes to [sqrt ratio], snapping exactly back to the original
      footprint once the remaining excess is under 4% (so repeated
      passes terminate).
      Cells are visited in id order (deterministic); shares the
      [route.inflate] span and counts into [route.deflated_cells].
      Returns the number of cells shrunk; [0] (touching nothing) when
      no inflation round has run — so zero-congestion runs stay
      bit-identical to routability-off ones.  Does not count against
      [rt_max_rounds]. *)

  val restore : t -> unit
  (** Put every cell's original width/height back.  Idempotent. *)
end
