type config = {
  rt_check_overflow : float;
  rt_check_period : int;
  rt_target : float;
  rt_capacity : float;
  rt_pin_weight : float;
  rt_inflation_coef : float;
  rt_max_ratio : float;
  rt_max_rounds : int;
}

let default_config =
  { rt_check_overflow = 0.20;
    rt_check_period = 5;
    rt_target = 1.0;
    rt_capacity = 1.0;
    rt_pin_weight = 0.05;
    rt_inflation_coef = 2.5;
    rt_max_ratio = 2.5;
    rt_max_rounds = 4 }

module Rudy = struct
  type t = {
    design : Netlist.t;
    n : int;
    bin_w : float;
    bin_h : float;
    bin_area : float;
    capacity : float;
    pin_weight : float;
    dem : float array;   (* routing demand per bin *)
    util : float array;  (* dem / (capacity * bin_area) *)
  }

  let create ?bins ?capacity ?pin_weight design =
    let n =
      match bins with
      | Some b -> max 4 (Density.round_pow2 b)
      | None -> Density.default_bins design
    in
    let region = design.Netlist.region in
    let bin_w = Geometry.Rect.width region /. float_of_int n in
    let bin_h = Geometry.Rect.height region /. float_of_int n in
    { design; n; bin_w; bin_h;
      bin_area = bin_w *. bin_h;
      capacity =
        (match capacity with Some c -> c | None -> default_config.rt_capacity);
      pin_weight =
        (match pin_weight with
         | Some w -> w
         | None -> default_config.rt_pin_weight);
      dem = Array.make (n * n) 0.0;
      util = Array.make (n * n) 0.0 }

  let bins t = t.n

  (* Splat one net into [grid]: its wire demand smeared uniformly over
     the bins its bbox overlaps, plus [pin_weight] into each pin's bin.
     The bbox is clamped below at one bin per axis so flat (single-row
     or single-column) nets still register demand. *)
  let splat_net t grid net_id =
    let d = t.design in
    let pins = d.Netlist.nets.(net_id).Netlist.net_pins in
    let npins = Array.length pins in
    let region = d.Netlist.region in
    let rlx = region.Geometry.Rect.lx and rly = region.Geometry.Rect.ly in
    let n = t.n in
    let clampb v = max 0 (min (n - 1) v) in
    let bin_of x y =
      let bx = clampb (int_of_float (Float.floor ((x -. rlx) /. t.bin_w))) in
      let by = clampb (int_of_float (Float.floor ((y -. rly) /. t.bin_h))) in
      (bx * n) + by
    in
    if t.pin_weight > 0.0 then
      Array.iter
        (fun p ->
          let b = bin_of (Netlist.pin_x d p) (Netlist.pin_y d p) in
          grid.(b) <- grid.(b) +. t.pin_weight)
        pins;
    if npins >= 2 then begin
      let bb = ref Geometry.Bbox.empty in
      Array.iter
        (fun p ->
          bb := Geometry.Bbox.add_xy !bb (Netlist.pin_x d p) (Netlist.pin_y d p))
        pins;
      match Geometry.Bbox.to_rect !bb with
      | None -> ()
      | Some r ->
        let w = Geometry.Rect.width r and h = Geometry.Rect.height r in
        let ew = Float.max w t.bin_w and eh = Float.max h t.bin_h in
        let demand = ew *. eh /. (ew +. eh) in
        (* expand symmetrically around the original bbox center *)
        let cx = 0.5 *. (r.Geometry.Rect.lx +. r.Geometry.Rect.hx) in
        let cy = 0.5 *. (r.Geometry.Rect.ly +. r.Geometry.Rect.hy) in
        let elx = cx -. (0.5 *. ew) and ehx = cx +. (0.5 *. ew) in
        let ely = cy -. (0.5 *. eh) and ehy = cy +. (0.5 *. eh) in
        let per_area = demand /. (ew *. eh) in
        let bx0 = clampb (int_of_float (Float.floor ((elx -. rlx) /. t.bin_w))) in
        let bx1 = clampb (int_of_float (Float.floor ((ehx -. rlx) /. t.bin_w))) in
        let by0 = clampb (int_of_float (Float.floor ((ely -. rly) /. t.bin_h))) in
        let by1 = clampb (int_of_float (Float.floor ((ehy -. rly) /. t.bin_h))) in
        for bx = bx0 to bx1 do
          let blx = rlx +. (float_of_int bx *. t.bin_w) in
          let ox =
            Float.max 0.0
              (Float.min ehx (blx +. t.bin_w) -. Float.max elx blx)
          in
          if ox > 0.0 then
            for by = by0 to by1 do
              let bly = rly +. (float_of_int by *. t.bin_h) in
              let oy =
                Float.max 0.0
                  (Float.min ehy (bly +. t.bin_h) -. Float.max ely bly)
              in
              let b = (bx * n) + by in
              grid.(b) <- grid.(b) +. (per_area *. ox *. oy)
            done
        done
    end

  let update ?pool ?(obs = Obs.disabled) t =
    let n = t.n in
    let nnets = Netlist.num_nets t.design in
    Obs.start obs Obs.Route_rudy;
    let p = match pool with Some p -> p | None -> Parallel.sequential_pool in
    (* per-chunk grids merged in chunk order: the split depends only on
       the net count, so pooled maps reproduce sequential ones bit for
       bit (same policy as Density.update) *)
    let grid =
      Parallel.parallel_for_reduce p ~obs ~cost:8.0 nnets
        ~init:(fun () -> Array.make (n * n) 0.0)
        ~body:(fun acc i -> splat_net t acc i)
        ~merge:(fun a b ->
          for k = 0 to (n * n) - 1 do
            a.(k) <- a.(k) +. b.(k)
          done;
          a)
    in
    Array.blit grid 0 t.dem 0 (n * n);
    let cap = t.capacity *. t.bin_area in
    for b = 0 to (n * n) - 1 do
      t.util.(b) <- t.dem.(b) /. cap
    done;
    Obs.stop obs Obs.Route_rudy

  let demand t = t.dem
  let utilization t = t.util
end

type summary = {
  ov_peak : float;
  ov_rc : float;
  ov_congested : int;
  ov_total : float;
}

let overflow ?(obs = Obs.disabled) ?(percentile = 0.02) rudy =
  Obs.span obs Obs.Route_overflow (fun () ->
    let util = Rudy.utilization rudy in
    let nb = Array.length util in
    let peak = ref 0.0 and congested = ref 0 and total = ref 0.0 in
    for b = 0 to nb - 1 do
      let u = util.(b) in
      if u > !peak then peak := u;
      if u > 1.0 then begin
        incr congested;
        total := !total +. (u -. 1.0)
      end
    done;
    let sorted = Array.copy util in
    Array.sort (fun a b -> compare (b : float) a) sorted;
    let k = max 1 (int_of_float (Float.ceil (percentile *. float_of_int nb))) in
    let k = min k nb in
    let acc = ref 0.0 in
    for i = 0 to k - 1 do
      acc := !acc +. sorted.(i)
    done;
    { ov_peak = !peak;
      ov_rc = !acc /. float_of_int k;
      ov_congested = !congested;
      ov_total = !total })

let pp_summary ppf s =
  Format.fprintf ppf
    "@[peak %.3f, rc %.3f, congested bins %d, total overflow %.3f@]"
    s.ov_peak s.ov_rc s.ov_congested s.ov_total

module Inflate = struct
  type t = {
    design : Netlist.t;
    orig_w : float array;
    orig_h : float array;
    mutable n_rounds : int;
  }

  let create design =
    { design;
      orig_w = Array.map (fun c -> c.Netlist.width) design.Netlist.cells;
      orig_h = Array.map (fun c -> c.Netlist.height) design.Netlist.cells;
      n_rounds = 0 }

  let rounds t = t.n_rounds

  let step ?(obs = Obs.disabled) cfg t rudy =
    if t.n_rounds >= cfg.rt_max_rounds then 0
    else
      Obs.span obs Obs.Route_inflate (fun () ->
        t.n_rounds <- t.n_rounds + 1;
        let d = t.design in
        let util = Rudy.utilization rudy in
        let n = Rudy.bins rudy in
        let region = d.Netlist.region in
        let rlx = region.Geometry.Rect.lx
        and rly = region.Geometry.Rect.ly in
        let bin_w = Geometry.Rect.width region /. float_of_int n in
        let bin_h = Geometry.Rect.height region /. float_of_int n in
        let clampb v = max 0 (min (n - 1) v) in
        let count = ref 0 in
        Array.iteri
          (fun i (c : Netlist.cell) ->
            if not c.Netlist.fixed then begin
              let bx =
                clampb (int_of_float (Float.floor ((c.Netlist.x -. rlx) /. bin_w)))
              in
              let by =
                clampb (int_of_float (Float.floor ((c.Netlist.y -. rly) /. bin_h)))
              in
              let u = util.((bx * n) + by) in
              if u > cfg.rt_target then begin
                let orig_area = t.orig_w.(i) *. t.orig_h.(i) in
                let cur_ratio =
                  if orig_area > 0.0 then
                    c.Netlist.width *. c.Netlist.height /. orig_area
                  else cfg.rt_max_ratio
                in
                if cur_ratio < cfg.rt_max_ratio then begin
                  let want =
                    Float.pow (u /. cfg.rt_target) cfg.rt_inflation_coef
                  in
                  let m = Float.min want (cfg.rt_max_ratio /. cur_ratio) in
                  if m > 1.0 then begin
                    let s = Float.sqrt m in
                    c.Netlist.width <- c.Netlist.width *. s;
                    c.Netlist.height <- c.Netlist.height *. s;
                    incr count
                  end
                end
              end
            end)
          d.Netlist.cells;
        Obs.add obs "route.inflated_cells" (float_of_int !count);
        !count)

  (* Deflation hysteresis: a bin must fall below this fraction of the
     target before its cells start shrinking back, so a bin hovering at
     the threshold does not ping-pong between inflate and deflate. *)
  let deflate_hysteresis = 0.95

  let deflate ?(obs = Obs.disabled) cfg t rudy =
    if t.n_rounds = 0 then 0
    else
      Obs.span obs Obs.Route_inflate (fun () ->
        let d = t.design in
        let util = Rudy.utilization rudy in
        let n = Rudy.bins rudy in
        let region = d.Netlist.region in
        let rlx = region.Geometry.Rect.lx
        and rly = region.Geometry.Rect.ly in
        let bin_w = Geometry.Rect.width region /. float_of_int n in
        let bin_h = Geometry.Rect.height region /. float_of_int n in
        let clampb v = max 0 (min (n - 1) v) in
        let count = ref 0 in
        Array.iteri
          (fun i (c : Netlist.cell) ->
            if not c.Netlist.fixed then begin
              let orig_area = t.orig_w.(i) *. t.orig_h.(i) in
              let cur_ratio =
                if orig_area > 0.0 then
                  c.Netlist.width *. c.Netlist.height /. orig_area
                else 1.0
              in
              if cur_ratio > 1.0 then begin
                let bx =
                  clampb
                    (int_of_float (Float.floor ((c.Netlist.x -. rlx) /. bin_w)))
                in
                let by =
                  clampb
                    (int_of_float (Float.floor ((c.Netlist.y -. rly) /. bin_h)))
                in
                let u = util.((bx * n) + by) in
                if u < deflate_hysteresis *. cfg.rt_target then begin
                  (* geometric relaxation toward the original footprint:
                     halve the log-excess each pass rather than snapping
                     back, damping inflate/deflate oscillation; the last
                     4% snaps exactly so the pass terminates instead of
                     asymptoting *)
                  if cur_ratio <= 1.04 then begin
                    c.Netlist.width <- t.orig_w.(i);
                    c.Netlist.height <- t.orig_h.(i);
                    incr count
                  end
                  else begin
                    let new_ratio = Float.sqrt cur_ratio in
                    let s = Float.sqrt (new_ratio /. cur_ratio) in
                    c.Netlist.width <- c.Netlist.width *. s;
                    c.Netlist.height <- c.Netlist.height *. s;
                    incr count
                  end
                end
              end
            end)
          d.Netlist.cells;
        Obs.add obs "route.deflated_cells" (float_of_int !count);
        !count)

  let restore t =
    Array.iteri
      (fun i (c : Netlist.cell) ->
        c.Netlist.width <- t.orig_w.(i);
        c.Netlist.height <- t.orig_h.(i))
      t.design.Netlist.cells
end
