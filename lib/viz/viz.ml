module Svg = struct
  type options = {
    width_px : int;
    draw_nets : bool;
    max_net_degree : int;
    highlight_path : Sta.Timer.path_step list;
    highlight_paths : Sta.Timer.path_step list list;
    congestion : (int * float array) option;
  }

  let default_options =
    { width_px = 800; draw_nets = false; max_net_degree = 8;
      highlight_path = []; highlight_paths = []; congestion = None }

  (* worst path red, runners-up fading towards yellow *)
  let path_colors =
    [| "#cc2222"; "#d85a22"; "#e08b2b"; "#e6ad3a"; "#d9c155" |]

  let render ?(options = default_options) (design : Netlist.t) =
    let region = design.Netlist.region in
    let w = Geometry.Rect.width region and h = Geometry.Rect.height region in
    let scale = float_of_int options.width_px /. Float.max 1e-9 w in
    let height_px = int_of_float (Float.ceil (h *. scale)) in
    (* SVG y grows downwards; flip so the origin is bottom-left *)
    let sx x = (x -. region.Geometry.Rect.lx) *. scale in
    let sy y = (region.Geometry.Rect.hy -. y) *. scale in
    let b = Buffer.create (1 lsl 16) in
    Buffer.add_string b
      (Printf.sprintf
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" \
          height=\"%d\" viewBox=\"0 0 %d %d\">\n"
         options.width_px height_px options.width_px height_px);
    Buffer.add_string b
      (Printf.sprintf
         "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"#fafafa\" \
          stroke=\"#444\"/>\n"
         options.width_px height_px);
    (* cells *)
    Array.iter
      (fun (c : Netlist.cell) ->
        let fill =
          if c.Netlist.fixed then "#333333"
          else if c.Netlist.lib_cell >= 0 && c.Netlist.width > 3.5 then
            "#d4886b" (* wide cells: flip-flops in the synthetic library *)
          else "#7a9cc6"
        in
        Buffer.add_string b
          (Printf.sprintf
             "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" \
              fill=\"%s\" fill-opacity=\"0.8\" stroke=\"#2a2a2a\" \
              stroke-width=\"0.2\"/>\n"
             (sx (c.Netlist.x -. (c.Netlist.width /. 2.0)))
             (sy (c.Netlist.y +. (c.Netlist.height /. 2.0)))
             (Float.max 1.0 (c.Netlist.width *. scale))
             (Float.max 1.0 (c.Netlist.height *. scale))
             fill))
      design.Netlist.cells;
    (* net fly-lines *)
    if options.draw_nets then
      Array.iter
        (fun (net : Netlist.net) ->
          if Array.length net.Netlist.net_pins <= options.max_net_degree then
            match Netlist.net_driver design net.Netlist.net_id with
            | None -> ()
            | Some drv ->
              let dx = sx (Netlist.pin_x design drv)
              and dy = sy (Netlist.pin_y design drv) in
              List.iter
                (fun s ->
                  Buffer.add_string b
                    (Printf.sprintf
                       "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" \
                        y2=\"%.2f\" stroke=\"#88aa88\" stroke-width=\"0.4\" \
                        stroke-opacity=\"0.5\"/>\n"
                       dx dy
                       (sx (Netlist.pin_x design s))
                       (sy (Netlist.pin_y design s))))
                (Netlist.net_sinks design net.Netlist.net_id))
        design.Netlist.nets;
    (* congestion heatmap: translucent red squares over bins whose
       utilization clears a floor, deeper red as utilization grows;
       drawn above the cells but below the path overlays *)
    (match options.congestion with
     | Some (n, util) when n > 0 && Array.length util = n * n ->
       let bw = w /. float_of_int n and bh = h /. float_of_int n in
       for bx = 0 to n - 1 do
         for by = 0 to n - 1 do
           let u = util.((bx * n) + by) in
           if u >= 0.5 then begin
             let blx = region.Geometry.Rect.lx +. (float_of_int bx *. bw) in
             let bly = region.Geometry.Rect.ly +. (float_of_int by *. bh) in
             let opacity = 0.12 +. (0.48 *. Float.min 1.0 (u /. 2.0)) in
             Buffer.add_string b
               (Printf.sprintf
                  "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" \
                   height=\"%.2f\" fill=\"#d01818\" fill-opacity=\"%.3f\"/>\n"
                  (sx blx)
                  (sy (bly +. bh))
                  (bw *. scale) (bh *. scale) opacity)
           end
         done
       done
     | _ -> ());
    (* critical path overlays: [highlight_paths] worst-first (so the
       worst path draws last, on top), then the legacy single-path
       field in red *)
    let draw_path color width steps =
      match steps with
      | [] -> ()
      | steps ->
        let points =
          List.map
            (fun (s : Sta.Timer.path_step) ->
              Printf.sprintf "%.2f,%.2f"
                (sx (Netlist.pin_x design s.Sta.Timer.ps_pin))
                (sy (Netlist.pin_y design s.Sta.Timer.ps_pin)))
            steps
        in
        Buffer.add_string b
          (Printf.sprintf
             "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
              stroke-width=\"%.1f\"/>\n"
             (String.concat " " points) color width)
    in
    let ranked = List.mapi (fun i steps -> (i, steps)) options.highlight_paths in
    List.iter
      (fun (i, steps) ->
        let color = path_colors.(min i (Array.length path_colors - 1)) in
        draw_path color (Float.max 0.7 (1.5 -. (0.2 *. float_of_int i))) steps)
      (List.rev ranked);
    draw_path "#cc2222" 1.5 options.highlight_path;
    Buffer.add_string b "</svg>\n";
    Buffer.contents b

  let save ?options path design =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (render ?options design))
end

module Ascii = struct
  let density_map ?(columns = 48) (design : Netlist.t) =
    let region = design.Netlist.region in
    let w = Geometry.Rect.width region and h = Geometry.Rect.height region in
    let cols = max 4 columns in
    let rows = max 2 (int_of_float (Float.round (float_of_int cols *. h /. Float.max 1e-9 w /. 2.0))) in
    (* /2 compensates terminal character aspect ratio *)
    let movable = Array.make (rows * cols) 0.0 in
    let fixed = Array.make (rows * cols) 0.0 in
    let bin_w = w /. float_of_int cols and bin_h = h /. float_of_int rows in
    Array.iter
      (fun (c : Netlist.cell) ->
        let cx =
          Geometry.clamp ~lo:0.0 ~hi:(float_of_int cols -. 1.0)
            ((c.Netlist.x -. region.Geometry.Rect.lx) /. bin_w)
        in
        let cy =
          Geometry.clamp ~lo:0.0 ~hi:(float_of_int rows -. 1.0)
            ((c.Netlist.y -. region.Geometry.Rect.ly) /. bin_h)
        in
        let idx = (int_of_float cy * cols) + int_of_float cx in
        let area = c.Netlist.width *. c.Netlist.height in
        if c.Netlist.fixed then fixed.(idx) <- fixed.(idx) +. area
        else movable.(idx) <- movable.(idx) +. area)
      design.Netlist.cells;
    let bin_area = bin_w *. bin_h in
    let b = Buffer.create (rows * (cols + 1)) in
    for r = rows - 1 downto 0 do
      for col = 0 to cols - 1 do
        let idx = (r * cols) + col in
        let d = movable.(idx) /. bin_area in
        let ch =
          if fixed.(idx) > movable.(idx) && fixed.(idx) > 0.0 then '@'
          else if d <= 0.01 then '.'
          else if d < 0.25 then ':'
          else if d < 0.5 then '+'
          else if d < 0.75 then 'o'
          else if d < 1.0 then 'O'
          else '#'
        in
        Buffer.add_char b ch
      done;
      Buffer.add_char b '\n'
    done;
    Buffer.contents b
end
