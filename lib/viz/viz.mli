(** Placement visualisation: SVG plots and terminal density maps.

    A placement plot is the fastest way to sanity-check a run: cells as
    rectangles (pads dark, flip-flops tinted), optional net fly-lines and
    the critical path overlaid in red. *)

(** SVG rendering. *)
module Svg : sig
  type options = {
    width_px : int;          (** output width; height follows the region. *)
    draw_nets : bool;        (** net fly-lines, driver to each sink. *)
    max_net_degree : int;    (** skip fly-lines of nets above this degree. *)
    highlight_path : Sta.Timer.path_step list;
        (** overlay, e.g. [Sta.Timer.critical_path timer]. *)
    highlight_paths : Sta.Timer.path_step list list;
        (** multi-path overlay, worst first (e.g. the top-K paths from
            the [Paths] engine); the worst path draws red and on top,
            runners-up fade towards yellow. *)
    congestion : (int * float array) option;
        (** congestion heatmap overlay: [(n, util)] with [util] a
            row-major [(bx * n) + by] per-bin utilization grid (e.g.
            [Route.Rudy.utilization]).  Bins at or above 0.5 draw as
            translucent red squares, deeper red as utilization grows;
            kept as raw arrays so [Viz] stays decoupled from [Route]. *)
  }

  val default_options : options

  val render : ?options:options -> Netlist.t -> string
  (** A standalone SVG document of the design at its current placement. *)

  val save : ?options:options -> string -> Netlist.t -> unit
end

(** Low-fi terminal rendering. *)
module Ascii : sig
  val density_map : ?columns:int -> Netlist.t -> string
  (** A [columns]-wide (default 48) character map of cell-area density:
      ['.'] empty through ['#'] overfull, ['@'] for bins dominated by
      fixed cells. *)
end
