(** Gate-level structural Verilog, the industry interchange for mapped
    netlists (the ICCAD 2015 bundles ship one per design).

    Supported subset — exactly what a mapped netlist needs:

    {v
    module top (pi0, po0);
      input pi0;
      output po0;
      wire n1, n2;
      NAND2_X1 u1 (.A(pi0), .B(n2), .Y(n1));
      DFF_X1 ff1 (.D(n1), .CK(clk), .Q(n2));
    endmodule
    v}

    One module per file; named port connections only; instances must
    reference cells of the resolving {!Liberty.t}.  Comments ([//] and
    [/* */]), escaped identifiers ([\foo ]) and multi-name [input]/
    [output]/[wire] declarations are handled.

    Because Verilog carries no geometry, {!import} invents it: ports
    become fixed pads spread along the periphery of a region sized for
    the given utilisation, cells get deterministic initial positions and
    library pin offsets — i.e. the result is ready for placement.
    {!export} writes the connectivity back out (geometry is carried by
    the bookshelf format instead). *)

val export : Netlist.t -> Liberty.t -> string
(** Structural Verilog for a design.  Pads become ports (input pads are
    module inputs); unconnected pins are left unconnected.
    @raise Invalid_argument if a cell's library index is out of range. *)

val import :
  ?file:string -> ?utilization:float -> ?row_height:float -> Liberty.t ->
  string -> Netlist.t
(** Parse one module and build a placeable design ([utilization]
    defaults to 0.55).  Clock pins wired to an undriven net are left
    unconnected (ideal clock), matching the generator's convention.
    @raise Failure with a uniformly positioned message
    (["WHERE:LINE: parse error: ..."] for syntax, ["WHERE:LINE: ..."]
    for unknown cells/pins and circular assigns; [WHERE] is [file] when
    given, ["verilog"] otherwise). *)

val save : string -> Netlist.t -> Liberty.t -> unit
val load : ?utilization:float -> ?row_height:float -> Liberty.t -> string -> Netlist.t
