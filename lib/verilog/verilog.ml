(* ---- shared naming helpers ---- *)

let is_simple_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s

(* Verilog escaped-identifier syntax covers arbitrary names. *)
let emit_ident s = if is_simple_ident s then s else "\\" ^ s ^ " "

(* ---- export ---- *)

let export (design : Netlist.t) (lib : Liberty.t) =
  let b = Buffer.create (1 lsl 16) in
  let is_pad (c : Netlist.cell) = c.Netlist.lib_cell < 0 in
  (* net -> wire/port name: a net touching pads is named after its first
     pad; any further pads on the same net become [assign] aliases *)
  let pads_of n =
    Array.to_list design.Netlist.nets.(n).Netlist.net_pins
    |> List.filter_map (fun p ->
      let cell = design.Netlist.cells.(design.Netlist.pins.(p).Netlist.cell) in
      if is_pad cell then Some cell.Netlist.cell_name else None)
  in
  (* the lexicographically smallest pad name is the canonical one, so
     export output is independent of pin ordering *)
  let primary_pad n =
    match List.sort String.compare (pads_of n) with
    | name :: _ -> Some name
    | [] -> None
  in
  let net_name n =
    match primary_pad n with
    | Some name -> name
    | None -> design.Netlist.nets.(n).Netlist.net_name
  in
  let inputs = ref [] and outputs = ref [] in
  Array.iter
    (fun (c : Netlist.cell) ->
      if is_pad c then
        Array.iter
          (fun p ->
            match design.Netlist.pins.(p).Netlist.direction with
            | Netlist.Output -> inputs := c.Netlist.cell_name :: !inputs
            | Netlist.Input -> outputs := c.Netlist.cell_name :: !outputs)
          c.Netlist.cell_pins)
    design.Netlist.cells;
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  let module_name =
    if is_simple_ident design.Netlist.design_name then design.Netlist.design_name
    else "top"
  in
  Buffer.add_string b (Printf.sprintf "module %s (" module_name);
  Buffer.add_string b
    (String.concat ", " (List.map emit_ident (inputs @ outputs)));
  Buffer.add_string b ");\n";
  List.iter
    (fun p -> Buffer.add_string b (Printf.sprintf "  input %s;\n" (emit_ident p)))
    inputs;
  List.iter
    (fun p -> Buffer.add_string b (Printf.sprintf "  output %s;\n" (emit_ident p)))
    outputs;
  (* internal wires, sorted so the output is order-independent *)
  let wires =
    Array.to_list design.Netlist.nets
    |> List.filter_map (fun (net : Netlist.net) ->
      let name = net_name net.Netlist.net_id in
      if List.mem name inputs || List.mem name outputs then None else Some name)
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun name ->
      Buffer.add_string b (Printf.sprintf "  wire %s;\n" (emit_ident name)))
    wires;
  (* secondary pads on a shared net observe it through an alias *)
  let aliases =
    Array.to_list design.Netlist.nets
    |> List.concat_map (fun (net : Netlist.net) ->
      match List.sort String.compare (pads_of net.Netlist.net_id) with
      | [] | [ _ ] -> []
      | primary :: rest -> List.map (fun extra -> (extra, primary)) rest)
    |> List.sort compare
  in
  List.iter
    (fun (extra, primary) ->
      Buffer.add_string b
        (Printf.sprintf "  assign %s = %s;\n" (emit_ident extra)
           (emit_ident primary)))
    aliases;
  (* instances *)
  Array.iter
    (fun (c : Netlist.cell) ->
      if not (is_pad c) then begin
        if c.Netlist.lib_cell >= Array.length lib.Liberty.lib_cells then
          invalid_arg
            (Printf.sprintf "Verilog.export: cell %s has bad library index"
               c.Netlist.cell_name);
        let lc = lib.Liberty.lib_cells.(c.Netlist.lib_cell) in
        let connections =
          Array.to_list c.Netlist.cell_pins
          |> List.filter_map (fun p ->
            let pin = design.Netlist.pins.(p) in
            if pin.Netlist.net < 0 then None
            else
              Some
                (Printf.sprintf ".%s(%s)"
                   lc.Liberty.lc_pins.(pin.Netlist.lib_pin).Liberty.lp_name
                   (emit_ident (net_name pin.Netlist.net))))
        in
        Buffer.add_string b
          (Printf.sprintf "  %s %s (%s);\n" lc.Liberty.lc_name
             (emit_ident c.Netlist.cell_name)
             (String.concat ", " connections))
      end)
    design.Netlist.cells;
  Buffer.add_string b "endmodule\n";
  Buffer.contents b

(* ---- lexer (Verilog's token language differs from parsekit's) ---- *)

type token =
  | Tid of string
  | Tlparen
  | Trparen
  | Tcomma
  | Tsemi
  | Tdot
  | Teof

type lexer = {
  src : string;
  file : string option;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
}

let where lx = match lx.file with Some f -> f | None -> "verilog"

let error lx msg =
  failwith
    (Printf.sprintf "%s:%d: parse error: %s" (where lx) lx.line msg)

let rec skip_space lx =
  if lx.pos < String.length lx.src then begin
    let c = lx.src.[lx.pos] in
    if c = '\n' then begin
      lx.line <- lx.line + 1;
      lx.pos <- lx.pos + 1;
      skip_space lx
    end
    else if c = ' ' || c = '\t' || c = '\r' then begin
      lx.pos <- lx.pos + 1;
      skip_space lx
    end
    else if c = '/' && lx.pos + 1 < String.length lx.src then begin
      match lx.src.[lx.pos + 1] with
      | '/' ->
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_space lx
      | '*' ->
        lx.pos <- lx.pos + 2;
        let rec close () =
          if lx.pos + 1 >= String.length lx.src then
            error lx "unterminated block comment"
          else if lx.src.[lx.pos] = '*' && lx.src.[lx.pos + 1] = '/' then
            lx.pos <- lx.pos + 2
          else begin
            if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
            lx.pos <- lx.pos + 1;
            close ()
          end
        in
        close ();
        skip_space lx
      | _ -> ()
    end
  end

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
  | _ -> false

let next_token lx =
  skip_space lx;
  if lx.pos >= String.length lx.src then Teof
  else begin
    let c = lx.src.[lx.pos] in
    match c with
    | '(' -> lx.pos <- lx.pos + 1; Tlparen
    | ')' -> lx.pos <- lx.pos + 1; Trparen
    | ',' -> lx.pos <- lx.pos + 1; Tcomma
    | ';' -> lx.pos <- lx.pos + 1; Tsemi
    | '.' -> lx.pos <- lx.pos + 1; Tdot
    | '=' -> lx.pos <- lx.pos + 1; Tid "="
    | '\\' ->
      (* escaped identifier: up to the next whitespace *)
      lx.pos <- lx.pos + 1;
      let start = lx.pos in
      while
        lx.pos < String.length lx.src
        && not (List.mem lx.src.[lx.pos] [ ' '; '\t'; '\n'; '\r' ])
      do
        lx.pos <- lx.pos + 1
      done;
      Tid (String.sub lx.src start (lx.pos - start))
    | _ ->
      if is_ident_char c then begin
        let start = lx.pos in
        while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
          lx.pos <- lx.pos + 1
        done;
        Tid (String.sub lx.src start (lx.pos - start))
      end
      else error lx (Printf.sprintf "unexpected character %C" c)
  end

let make_lexer ?file src =
  let lx = { src; file; pos = 0; line = 1; tok = Teof } in
  lx.tok <- next_token lx;
  lx

let advance lx = lx.tok <- next_token lx
let peek lx = lx.tok

let ident lx =
  match lx.tok with
  | Tid s -> advance lx; s
  | Tlparen | Trparen | Tcomma | Tsemi | Tdot | Teof ->
    error lx "expected identifier"

let eat lx expected what =
  if lx.tok = expected then advance lx else error lx ("expected " ^ what)

(* ---- import ---- *)

type parsed = {
  p_module : string;
  p_inputs : string list;
  p_outputs : string list;
  p_instances : (string * string * (string * string) list * int) list;
      (* cell type, instance name, (pin, net), declaration line *)
  p_aliases : (string * string * int) list;
      (* assign lhs = rhs, declaration line *)
}

let parse ?file src =
  let lx = make_lexer ?file src in
  (match ident lx with
   | "module" -> ()
   | s -> error lx (Printf.sprintf "expected 'module', got %S" s));
  let name = ident lx in
  (* the port list itself is redundant with the declarations *)
  eat lx Tlparen "'('";
  let rec skip_ports () =
    match peek lx with
    | Trparen -> advance lx
    | Tid _ | Tcomma -> advance lx; skip_ports ()
    | Tlparen | Tsemi | Tdot | Teof -> error lx "malformed port list"
  in
  skip_ports ();
  eat lx Tsemi "';'";
  let inputs = ref [] and outputs = ref [] and instances = ref [] in
  let aliases = ref [] in
  let rec names acc =
    let n = ident lx in
    match peek lx with
    | Tcomma -> advance lx; names (n :: acc)
    | Tsemi -> advance lx; List.rev (n :: acc)
    | Tid _ | Tlparen | Trparen | Tdot | Teof ->
      error lx "expected ',' or ';' in declaration"
  in
  let parse_instance cell_type =
    let decl_line = lx.line in
    let inst = ident lx in
    eat lx Tlparen "'('";
    let rec connections acc =
      match peek lx with
      | Trparen -> advance lx; List.rev acc
      | Tdot ->
        advance lx;
        let pin = ident lx in
        eat lx Tlparen "'('";
        let net = ident lx in
        eat lx Trparen "')'";
        (match peek lx with
         | Tcomma -> advance lx
         | Trparen -> ()
         | Tid _ | Tlparen | Tsemi | Tdot | Teof ->
           error lx "expected ',' or ')' after connection");
        connections ((pin, net) :: acc)
      | Tid _ | Tlparen | Tcomma | Tsemi | Teof ->
        error lx "expected named connection '.pin(net)'"
    in
    let conns = connections [] in
    eat lx Tsemi "';'";
    instances := (cell_type, inst, conns, decl_line) :: !instances
  in
  let rec body () =
    match ident lx with
    | "endmodule" -> ()
    | "input" -> inputs := !inputs @ names []; body ()
    | "output" -> outputs := !outputs @ names []; body ()
    | "assign" ->
      let decl_line = lx.line in
      let lhs = ident lx in
      (match peek lx with
       | Tid "=" -> advance lx
       | Tid _ | Tlparen | Trparen | Tcomma | Tsemi | Tdot | Teof ->
         error lx "expected '=' in assign");
      let rhs = ident lx in
      eat lx Tsemi "';'";
      aliases := (lhs, rhs, decl_line) :: !aliases;
      body ()
    | "wire" ->
      (* wires are implied by use; the declaration is consumed and
         checked for syntax only *)
      ignore (names []);
      body ()
    | cell_type -> parse_instance cell_type; body ()
  in
  body ();
  { p_module = name; p_inputs = !inputs; p_outputs = !outputs;
    p_instances = List.rev !instances; p_aliases = List.rev !aliases }

(* deterministic pseudo-random jitter for invented geometry *)
let hash01 i salt =
  let h = ref ((i * 2654435761) + (salt * 40503)) in
  h := !h lxor (!h lsr 13);
  h := !h * 1274126177;
  h := !h lxor (!h lsr 16);
  float_of_int (!h land 0xFFFFF) /. 1048576.0

let import ?file ?(utilization = 0.55) ?(row_height = 1.4) (lib : Liberty.t)
    src =
  let p = parse ?file src in
  (* resolve instance types and size the region *)
  let resolved =
    List.map
      (fun (cell_type, inst, conns, decl_line) ->
        match Liberty.cell_index lib cell_type with
        | Some k -> (k, inst, conns, decl_line)
        | None ->
          Parsekit.fail_at ?file ~line:decl_line
            (Printf.sprintf "verilog: unknown cell type %S" cell_type))
      p.p_instances
  in
  let total_area =
    List.fold_left
      (fun acc (k, _, _, _) ->
        let lc = lib.Liberty.lib_cells.(k) in
        acc +. (lc.Liberty.lc_width *. lc.Liberty.lc_height))
      0.0 resolved
  in
  let side = Float.max 20.0 (Float.sqrt (total_area /. utilization)) in
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:side ~hy:side in
  let b = Netlist.Builder.create ~region ~row_height p.p_module in
  (* pads on the periphery, in declaration order *)
  let nports = List.length p.p_inputs + List.length p.p_outputs in
  (* resolve assign-aliases to a canonical net name *)
  let alias = Hashtbl.create 16 in
  List.iter
    (fun (lhs, rhs, decl_line) -> Hashtbl.replace alias lhs (rhs, decl_line))
    p.p_aliases;
  let rec canon ?(depth = 0) ?line n =
    if depth > 1000 then
      Parsekit.fail_at ?file
        ~line:(Option.value line ~default:0)
        "verilog: circular assign chain"
    else
      match Hashtbl.find_opt alias n with
      | Some (next, l) -> canon ~depth:(depth + 1) ~line:l next
      | None -> n
  in
  let port_pins = Hashtbl.create 64 in
  let add_port idx direction name =
    let t = (float_of_int idx +. 0.5) /. float_of_int (max 1 nports) in
    let s = t *. 4.0 in
    let x, y =
      if s < 1.0 then (s *. side, 0.0)
      else if s < 2.0 then (side, (s -. 1.0) *. side)
      else if s < 3.0 then ((3.0 -. s) *. side, side)
      else (0.0, (4.0 -. s) *. side)
    in
    let cell =
      Netlist.Builder.add_cell b ~name ~lib_cell:(-1) ~width:2.0 ~height:2.0
        ~x ~y ~fixed:true ()
    in
    let pin =
      Netlist.Builder.add_pin b ~cell ~name:(name ^ "/P") ~direction ()
    in
    (* the port name doubles as its net name *)
    Hashtbl.replace port_pins name pin
  in
  List.iteri (fun i n -> add_port i Netlist.Output n) p.p_inputs;
  List.iteri
    (fun i n -> add_port (List.length p.p_inputs + i) Netlist.Input n)
    p.p_outputs;
  (* instances with invented deterministic geometry *)
  let net_members = Hashtbl.create 1024 in
  let connect net pin is_clock =
    let existing =
      Option.value ~default:[] (Hashtbl.find_opt net_members net)
    in
    Hashtbl.replace net_members net ((pin, is_clock) :: existing)
  in
  Hashtbl.iter (fun net pin -> connect (canon net) pin false) port_pins;
  List.iteri
    (fun idx (kind, inst, conns, decl_line) ->
      let lc = lib.Liberty.lib_cells.(kind) in
      let margin = 3.0 in
      let cell =
        Netlist.Builder.add_cell b ~name:inst ~lib_cell:kind
          ~width:lc.Liberty.lc_width ~height:lc.Liberty.lc_height
          ~x:(margin +. (hash01 idx 1 *. (side -. (2.0 *. margin))))
          ~y:(margin +. (hash01 idx 2 *. (side -. (2.0 *. margin))))
          ()
      in
      (* every library pin exists on the instance; the named connections
         decide which of them join nets *)
      List.iter
        (fun (pin_name, _) ->
          if Liberty.pin_index lc pin_name = None then
            Parsekit.fail_at ?file ~line:decl_line
              (Printf.sprintf "verilog: cell %s (%s) has no pin %S" inst
                 lc.Liberty.lc_name pin_name))
        conns;
      Array.iteri
        (fun j (lp : Liberty.lib_pin) ->
          let k = Array.length lc.Liberty.lc_pins in
          let ox =
            (lc.Liberty.lc_width *. (float_of_int (j + 1) /. float_of_int (k + 1)))
            -. (lc.Liberty.lc_width /. 2.0)
          in
          let oy =
            if j land 1 = 0 then -.lc.Liberty.lc_height /. 8.0
            else lc.Liberty.lc_height /. 8.0
          in
          let pin =
            Netlist.Builder.add_pin b ~cell
              ~name:(Printf.sprintf "%s/%s" inst lp.Liberty.lp_name)
              ~direction:
                (match lp.Liberty.lp_direction with
                 | Liberty.Lib_input -> Netlist.Input
                 | Liberty.Lib_output -> Netlist.Output)
              ~offset_x:ox ~offset_y:oy ~lib_pin:j ()
          in
          match List.assoc_opt lp.Liberty.lp_name conns with
          | Some net -> connect (canon net) pin lp.Liberty.lp_is_clock
          | None -> ())
        lc.Liberty.lc_pins)
    resolved;
  (* materialise nets; undriven all-clock nets model the ideal clock *)
  let net_list =
    Hashtbl.fold (fun net members acc -> (net, members) :: acc) net_members []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (net, members) ->
      let all_clock = List.for_all (fun (_, clk) -> clk) members in
      if not all_clock then
        ignore
          (Netlist.Builder.add_net b ~name:net
             ~pins:(List.rev_map (fun (p, _) -> p) members)))
    net_list;
  Netlist.Builder.freeze b

let save path design lib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export design lib))

let load ?utilization ?row_height lib path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      import ~file:path ?utilization ?row_height lib
        (In_channel.input_all ic))
