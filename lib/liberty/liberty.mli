(** Cell timing library: the non-linear delay model (NLDM).

    Cell delay and output slew are characterised by 2D look-up tables
    indexed by (input slew, output capacitive load); sequential constraints
    (setup/hold) by tables indexed by (data slew, clock slew).  The tables
    support bilinear interpolation {e and} the gradient of a query with
    respect to both query coordinates, which is what makes the timing
    engine differentiable end-to-end (paper §3.5.2, Fig. 6).

    Units: time ps, capacitance fF, resistance kOhm, distance um
    (so kOhm x fF = ps exactly). *)

(** A 2D look-up table.  Axes are strictly increasing.  Queries outside
    the axis range extrapolate linearly from the boundary cell, matching
    standard STA practice. *)
module Lut : sig
  type t = private {
    x_axis : float array;  (** first index, e.g. input slew. *)
    y_axis : float array;  (** second index, e.g. output load. *)
    values : float array;  (** row-major, [values.(i * ny + j)]. *)
  }

  val make : x_axis:float array -> y_axis:float array -> values:float array -> t
  (** @raise Invalid_argument on empty or non-increasing axes or a value
      array whose length is not [nx * ny]. *)

  val constant : float -> t
  (** A 1x1 table: every query returns the value with zero gradient. *)

  val of_function : x_axis:float array -> y_axis:float array -> (float -> float -> float) -> t

  val lookup : t -> float -> float -> float
  (** [lookup lut x y] bilinearly interpolates (or extrapolates) at [(x, y)]. *)

  val gradient : t -> float -> float -> float * float
  (** Partial derivatives [(d/dx, d/dy)] of [lookup] at the query point;
      piecewise constant within a table cell. *)

  val lookup_with_gradient : t -> float -> float -> float * float * float
  (** [(value, d/dx, d/dy)] in one pass. *)
end

(** Direction of a library pin. *)
type pin_direction = Lib_input | Lib_output

(** Unateness of a delay arc: a positive-unate arc maps a rising input to
    a rising output; negative unate inverts; non-unate contributes to
    both output transitions. *)
type sense = Positive_unate | Negative_unate | Non_unate

(** A combinational (or clock-to-output) delay arc between two pins of
    the same cell, with the standard four NLDM tables. *)
type timing_arc = {
  arc_from : int;  (** index into the cell's [pins]. *)
  arc_to : int;
  sense : sense;
  cell_rise : Lut.t;
  cell_fall : Lut.t;
  rise_transition : Lut.t;
  fall_transition : Lut.t;
}

(** A setup/hold constraint between a clock pin and a data pin.
    Tables are indexed by (data slew, clock slew). *)
type check_arc = {
  check_data : int;
  check_clock : int;
  setup_rise : Lut.t;
  setup_fall : Lut.t;
  hold_rise : Lut.t;
  hold_fall : Lut.t;
}

type lib_pin = {
  lp_name : string;
  lp_direction : pin_direction;
  lp_capacitance : float;  (** input pin cap, fF; 0 for outputs. *)
  lp_is_clock : bool;
}

type lib_cell = {
  lc_name : string;
  lc_area : float;
  lc_width : float;   (** um. *)
  lc_height : float;
  lc_pins : lib_pin array;
  lc_arcs : timing_arc array;
  lc_checks : check_arc array;
  lc_is_sequential : bool;
}

type t = {
  lib_name : string;
  r_unit : float;  (** wire resistance, kOhm per um. *)
  c_unit : float;  (** wire capacitance, fF per um. *)
  default_slew : float;  (** slew assumed at primary inputs, ps. *)
  lib_cells : lib_cell array;
}

val find_cell : t -> string -> lib_cell option
val cell_index : t -> string -> int option
val pin_index : lib_cell -> string -> int option
val output_pins : lib_cell -> int list
val input_pins : lib_cell -> int list
val clock_pins : lib_cell -> int list

(** A deterministic synthetic standard-cell library in the spirit of a
    45nm educational PDK: inverters/buffers in several drive strengths,
    2-input logic, complex gates, a 2:1 mux and D flip-flops.  Table
    values follow a saturating-resistance analytic model sampled on 7x7
    grids, so they are genuinely non-linear and exercise the LUT
    interpolation and its gradients. *)
module Synthetic : sig
  val default : unit -> t

  val delay_model :
    drive_r:float -> intrinsic:float -> slew_sensitivity:float ->
    float -> float -> float
  (** The analytic generator behind the tables, exported for tests:
      [delay_model ~drive_r ~intrinsic ~slew_sensitivity slew load]. *)
end

(** Liberty-lite: a small text format able to round-trip [t].  This is a
    structural stand-in for the industrial Liberty format. *)
module Io : sig
  val to_string : t -> string
  val of_string : ?file:string -> string -> t
  (** @raise Failure with a uniformly ["WHERE:LINE:COL:"]-annotated
      message on parse errors ([file], when given, names the source in
      the location). *)

  val save : string -> t -> unit
  val load : string -> t
end
