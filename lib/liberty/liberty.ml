module Lut = struct
  type t = {
    x_axis : float array;
    y_axis : float array;
    values : float array;
  }

  let check_axis name axis =
    if Array.length axis = 0 then
      invalid_arg (Printf.sprintf "Liberty.Lut: empty %s axis" name);
    for i = 0 to Array.length axis - 2 do
      if axis.(i) >= axis.(i + 1) then
        invalid_arg (Printf.sprintf "Liberty.Lut: %s axis not increasing" name)
    done

  let make ~x_axis ~y_axis ~values =
    check_axis "x" x_axis;
    check_axis "y" y_axis;
    if Array.length values <> Array.length x_axis * Array.length y_axis then
      invalid_arg "Liberty.Lut: values size mismatch";
    { x_axis; y_axis; values }

  let constant v = { x_axis = [| 0.0 |]; y_axis = [| 0.0 |]; values = [| v |] }

  let of_function ~x_axis ~y_axis f =
    let ny = Array.length y_axis in
    let values =
      Array.init
        (Array.length x_axis * ny)
        (fun k -> f x_axis.(k / ny) y_axis.(k mod ny))
    in
    make ~x_axis ~y_axis ~values

  (* Segment selection: the index [i] of the cell [axis.(i) .. axis.(i+1)]
     containing [v], clamped to boundary segments so that out-of-range
     queries extrapolate linearly.  A length-1 axis yields index -1,
     meaning "no variation along this axis". *)
  let segment axis v =
    let n = Array.length axis in
    if n = 1 then -1
    else begin
      let rec bisect lo hi =
        (* invariant: axis.(lo) <= v < axis.(hi) conceptually *)
        if hi - lo <= 1 then lo
        else begin
          let mid = (lo + hi) / 2 in
          if v < axis.(mid) then bisect lo mid else bisect mid hi
        end
      in
      if v <= axis.(0) then 0
      else if v >= axis.(n - 1) then n - 2
      else bisect 0 (n - 1)
    end

  let lookup_with_gradient t x y =
    let nx = Array.length t.x_axis and ny = Array.length t.y_axis in
    let i = segment t.x_axis x and j = segment t.y_axis y in
    match i, j with
    | -1, -1 -> (t.values.(0), 0.0, 0.0)
    | -1, j ->
      let y0 = t.y_axis.(j) and y1 = t.y_axis.(j + 1) in
      let v0 = t.values.(j) and v1 = t.values.(j + 1) in
      let slope = (v1 -. v0) /. (y1 -. y0) in
      (v0 +. (slope *. (y -. y0)), 0.0, slope)
    | i, -1 ->
      let x0 = t.x_axis.(i) and x1 = t.x_axis.(i + 1) in
      let v0 = t.values.(i * ny) and v1 = t.values.((i + 1) * ny) in
      let slope = (v1 -. v0) /. (x1 -. x0) in
      (v0 +. (slope *. (x -. x0)), slope, 0.0)
    | i, j ->
      ignore nx;
      let x0 = t.x_axis.(i) and x1 = t.x_axis.(i + 1) in
      let y0 = t.y_axis.(j) and y1 = t.y_axis.(j + 1) in
      let v00 = t.values.((i * ny) + j) in
      let v01 = t.values.((i * ny) + j + 1) in
      let v10 = t.values.(((i + 1) * ny) + j) in
      let v11 = t.values.(((i + 1) * ny) + j + 1) in
      let tx = (x -. x0) /. (x1 -. x0) in
      let ty = (y -. y0) /. (y1 -. y0) in
      let v =
        (v00 *. (1.0 -. tx) *. (1.0 -. ty))
        +. (v10 *. tx *. (1.0 -. ty))
        +. (v01 *. (1.0 -. tx) *. ty)
        +. (v11 *. tx *. ty)
      in
      let dx =
        (((v10 -. v00) *. (1.0 -. ty)) +. ((v11 -. v01) *. ty)) /. (x1 -. x0)
      in
      let dy =
        (((v01 -. v00) *. (1.0 -. tx)) +. ((v11 -. v10) *. tx)) /. (y1 -. y0)
      in
      (v, dx, dy)

  let lookup t x y =
    let v, _, _ = lookup_with_gradient t x y in
    v

  let gradient t x y =
    let _, dx, dy = lookup_with_gradient t x y in
    (dx, dy)
end

type pin_direction = Lib_input | Lib_output
type sense = Positive_unate | Negative_unate | Non_unate

type timing_arc = {
  arc_from : int;
  arc_to : int;
  sense : sense;
  cell_rise : Lut.t;
  cell_fall : Lut.t;
  rise_transition : Lut.t;
  fall_transition : Lut.t;
}

type check_arc = {
  check_data : int;
  check_clock : int;
  setup_rise : Lut.t;
  setup_fall : Lut.t;
  hold_rise : Lut.t;
  hold_fall : Lut.t;
}

type lib_pin = {
  lp_name : string;
  lp_direction : pin_direction;
  lp_capacitance : float;
  lp_is_clock : bool;
}

type lib_cell = {
  lc_name : string;
  lc_area : float;
  lc_width : float;
  lc_height : float;
  lc_pins : lib_pin array;
  lc_arcs : timing_arc array;
  lc_checks : check_arc array;
  lc_is_sequential : bool;
}

type t = {
  lib_name : string;
  r_unit : float;
  c_unit : float;
  default_slew : float;
  lib_cells : lib_cell array;
}

let cell_index lib name =
  let n = Array.length lib.lib_cells in
  let rec loop i =
    if i >= n then None
    else if String.equal lib.lib_cells.(i).lc_name name then Some i
    else loop (i + 1)
  in
  loop 0

let find_cell lib name =
  Option.map (fun i -> lib.lib_cells.(i)) (cell_index lib name)

let pin_index cell name =
  let n = Array.length cell.lc_pins in
  let rec loop i =
    if i >= n then None
    else if String.equal cell.lc_pins.(i).lp_name name then Some i
    else loop (i + 1)
  in
  loop 0

let pins_where pred cell =
  Array.to_list (Array.mapi (fun i p -> (i, p)) cell.lc_pins)
  |> List.filter_map (fun (i, p) -> if pred p then Some i else None)

let output_pins = pins_where (fun p -> p.lp_direction = Lib_output)
let input_pins = pins_where (fun p -> p.lp_direction = Lib_input)
let clock_pins = pins_where (fun p -> p.lp_is_clock)

module Synthetic = struct
  (* The analytic model sampled into the LUTs.  The cross term saturates
     with slew, giving genuine curvature so bilinear interpolation (and
     its gradient) is exercised away from the exact grid points. *)
  let delay_model ~drive_r ~intrinsic ~slew_sensitivity slew load =
    intrinsic
    +. (drive_r *. load)
    +. (slew_sensitivity *. slew)
    +. (0.5 *. drive_r *. load *. slew /. (slew +. 40.0))

  let transition_model ~drive_r ~floor slew load =
    floor +. (1.6 *. drive_r *. load) +. (0.15 *. slew)

  let slew_axis = [| 2.0; 5.0; 10.0; 20.0; 40.0; 80.0; 160.0 |]
  let load_axis = [| 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]

  let delay_lut ~drive_r ~intrinsic ~slew_sensitivity =
    Lut.of_function ~x_axis:slew_axis ~y_axis:load_axis
      (delay_model ~drive_r ~intrinsic ~slew_sensitivity)

  let transition_lut ~drive_r ~floor =
    Lut.of_function ~x_axis:slew_axis ~y_axis:load_axis
      (transition_model ~drive_r ~floor)

  (* Rise and fall tables are skewed slightly apart (NMOS vs PMOS
     asymmetry) so rise/fall propagation is observable in tests. *)
  let arc ~from_ ~to_ ~sense ~drive_r ~intrinsic ~slew_sensitivity =
    { arc_from = from_;
      arc_to = to_;
      sense;
      cell_rise = delay_lut ~drive_r:(drive_r *. 1.05) ~intrinsic ~slew_sensitivity;
      cell_fall =
        delay_lut ~drive_r:(drive_r *. 0.95) ~intrinsic:(intrinsic *. 0.92)
          ~slew_sensitivity;
      rise_transition = transition_lut ~drive_r:(drive_r *. 1.05) ~floor:6.0;
      fall_transition = transition_lut ~drive_r:(drive_r *. 0.95) ~floor:5.0 }

  let in_pin ?(clock = false) name cap =
    { lp_name = name; lp_direction = Lib_input; lp_capacitance = cap;
      lp_is_clock = clock }

  let out_pin name =
    { lp_name = name; lp_direction = Lib_output; lp_capacitance = 0.0;
      lp_is_clock = false }

  (* A combinational cell: all inputs drive the single output [Y].
     Successive inputs are marginally slower, as in real libraries. *)
  let comb ~name ~width ~inputs ~sense ~drive_r ~intrinsic ~cap =
    let n = List.length inputs in
    let pins =
      Array.of_list (List.map (fun i -> in_pin i cap) inputs @ [ out_pin "Y" ])
    in
    let arcs =
      Array.init n (fun i ->
        let penalty = 1.0 +. (0.08 *. float_of_int i) in
        arc ~from_:i ~to_:n ~sense ~drive_r
          ~intrinsic:(intrinsic *. penalty) ~slew_sensitivity:0.12)
    in
    { lc_name = name; lc_area = width *. 1.4; lc_width = width;
      lc_height = 1.4; lc_pins = pins; lc_arcs = arcs; lc_checks = [||];
      lc_is_sequential = false }

  let setup_lut s0 =
    Lut.of_function ~x_axis:slew_axis ~y_axis:slew_axis
      (fun data_slew clock_slew ->
        s0 +. (0.30 *. data_slew) +. (0.10 *. clock_slew))

  let hold_lut h0 =
    Lut.of_function ~x_axis:slew_axis ~y_axis:slew_axis
      (fun data_slew clock_slew ->
        h0 +. (0.05 *. data_slew) +. (0.02 *. clock_slew))

  let dff ~name ~width ~drive_r ~intrinsic =
    (* pins: D = 0, CK = 1, Q = 2 *)
    let pins =
      [| in_pin "D" 1.8; in_pin ~clock:true "CK" 1.2; out_pin "Q" |]
    in
    let launch =
      arc ~from_:1 ~to_:2 ~sense:Non_unate ~drive_r ~intrinsic
        ~slew_sensitivity:0.05
    in
    let check =
      { check_data = 0; check_clock = 1;
        setup_rise = setup_lut 28.0;
        setup_fall = setup_lut 32.0;
        hold_rise = hold_lut 4.0;
        hold_fall = hold_lut 5.0 }
    in
    { lc_name = name; lc_area = width *. 1.4; lc_width = width;
      lc_height = 1.4; lc_pins = pins; lc_arcs = [| launch |];
      lc_checks = [| check |]; lc_is_sequential = true }

  let default () =
    let inv n r d w =
      comb ~name:n ~width:w ~inputs:[ "A" ] ~sense:Negative_unate ~drive_r:r
        ~intrinsic:d ~cap:(3.0 /. r)
    in
    let buf n r d w =
      comb ~name:n ~width:w ~inputs:[ "A" ] ~sense:Positive_unate ~drive_r:r
        ~intrinsic:d ~cap:(2.4 /. r)
    in
    let cells =
      [| inv "INV_X1" 2.0 12.0 0.8;
         inv "INV_X2" 1.0 11.0 1.2;
         inv "INV_X4" 0.5 10.0 2.0;
         buf "BUF_X1" 2.0 24.0 1.2;
         buf "BUF_X2" 1.0 22.0 1.8;
         buf "BUF_X4" 0.5 20.0 2.8;
         comb ~name:"NAND2_X1" ~width:1.2 ~inputs:[ "A"; "B" ]
           ~sense:Negative_unate ~drive_r:2.2 ~intrinsic:14.0 ~cap:1.6;
         comb ~name:"NAND2_X2" ~width:1.8 ~inputs:[ "A"; "B" ]
           ~sense:Negative_unate ~drive_r:1.1 ~intrinsic:13.0 ~cap:3.2;
         comb ~name:"NOR2_X1" ~width:1.2 ~inputs:[ "A"; "B" ]
           ~sense:Negative_unate ~drive_r:2.6 ~intrinsic:16.0 ~cap:1.7;
         comb ~name:"NOR2_X2" ~width:1.8 ~inputs:[ "A"; "B" ]
           ~sense:Negative_unate ~drive_r:1.3 ~intrinsic:15.0 ~cap:3.4;
         comb ~name:"AND2_X1" ~width:1.5 ~inputs:[ "A"; "B" ]
           ~sense:Positive_unate ~drive_r:2.2 ~intrinsic:27.0 ~cap:1.5;
         comb ~name:"OR2_X1" ~width:1.5 ~inputs:[ "A"; "B" ]
           ~sense:Positive_unate ~drive_r:2.4 ~intrinsic:29.0 ~cap:1.5;
         comb ~name:"XOR2_X1" ~width:2.2 ~inputs:[ "A"; "B" ]
           ~sense:Non_unate ~drive_r:2.4 ~intrinsic:31.0 ~cap:2.1;
         comb ~name:"AOI21_X1" ~width:1.8 ~inputs:[ "A"; "B"; "C" ]
           ~sense:Negative_unate ~drive_r:2.8 ~intrinsic:18.0 ~cap:1.8;
         comb ~name:"OAI21_X1" ~width:1.8 ~inputs:[ "A"; "B"; "C" ]
           ~sense:Negative_unate ~drive_r:2.8 ~intrinsic:19.0 ~cap:1.8;
         comb ~name:"MUX2_X1" ~width:2.4 ~inputs:[ "A"; "B"; "S" ]
           ~sense:Non_unate ~drive_r:2.5 ~intrinsic:33.0 ~cap:1.9;
         dff ~name:"DFF_X1" ~width:4.2 ~drive_r:2.0 ~intrinsic:45.0;
         dff ~name:"DFF_X2" ~width:5.2 ~drive_r:1.0 ~intrinsic:40.0 |]
    in
    { lib_name = "synth45";
      r_unit = 0.02;   (* 20 Ohm / um *)
      c_unit = 0.25;   (* 0.25 fF / um *)
      default_slew = 15.0;
      lib_cells = cells }
end

module Io = struct
  (* ---- writer ---- *)

  let float_str f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let buf_lut b name (lut : Lut.t) =
    Buffer.add_string b (Printf.sprintf "      %s {\n        x" name);
    Array.iter (fun v -> Buffer.add_string b (" " ^ float_str v)) lut.Lut.x_axis;
    Buffer.add_string b ";\n        y";
    Array.iter (fun v -> Buffer.add_string b (" " ^ float_str v)) lut.Lut.y_axis;
    Buffer.add_string b ";\n        values";
    Array.iter (fun v -> Buffer.add_string b (" " ^ float_str v)) lut.Lut.values;
    Buffer.add_string b ";\n      }\n"

  let sense_str = function
    | Positive_unate -> "positive_unate"
    | Negative_unate -> "negative_unate"
    | Non_unate -> "non_unate"

  let to_string lib =
    let b = Buffer.create 65536 in
    Buffer.add_string b (Printf.sprintf "library \"%s\" {\n" lib.lib_name);
    Buffer.add_string b (Printf.sprintf "  r_unit %s;\n" (float_str lib.r_unit));
    Buffer.add_string b (Printf.sprintf "  c_unit %s;\n" (float_str lib.c_unit));
    Buffer.add_string b
      (Printf.sprintf "  default_slew %s;\n" (float_str lib.default_slew));
    Array.iter
      (fun c ->
        Buffer.add_string b (Printf.sprintf "  cell \"%s\" {\n" c.lc_name);
        Buffer.add_string b
          (Printf.sprintf "    area %s; width %s; height %s; sequential %b;\n"
             (float_str c.lc_area) (float_str c.lc_width)
             (float_str c.lc_height) c.lc_is_sequential);
        Array.iter
          (fun p ->
            Buffer.add_string b
              (Printf.sprintf
                 "    pin \"%s\" { direction %s; capacitance %s; clock %b; }\n"
                 p.lp_name
                 (match p.lp_direction with
                  | Lib_input -> "input"
                  | Lib_output -> "output")
                 (float_str p.lp_capacitance) p.lp_is_clock))
          c.lc_pins;
        Array.iter
          (fun a ->
            Buffer.add_string b
              (Printf.sprintf "    arc \"%s\" -> \"%s\" {\n      sense %s;\n"
                 c.lc_pins.(a.arc_from).lp_name c.lc_pins.(a.arc_to).lp_name
                 (sense_str a.sense));
            buf_lut b "cell_rise" a.cell_rise;
            buf_lut b "cell_fall" a.cell_fall;
            buf_lut b "rise_transition" a.rise_transition;
            buf_lut b "fall_transition" a.fall_transition;
            Buffer.add_string b "    }\n")
          c.lc_arcs;
        Array.iter
          (fun ck ->
            Buffer.add_string b
              (Printf.sprintf "    check \"%s\" clocked_by \"%s\" {\n"
                 c.lc_pins.(ck.check_data).lp_name
                 c.lc_pins.(ck.check_clock).lp_name);
            buf_lut b "setup_rise" ck.setup_rise;
            buf_lut b "setup_fall" ck.setup_fall;
            buf_lut b "hold_rise" ck.hold_rise;
            buf_lut b "hold_fall" ck.hold_fall;
            Buffer.add_string b "    }\n")
          c.lc_checks;
        Buffer.add_string b "  }\n")
      lib.lib_cells;
    Buffer.add_string b "}\n";
    Buffer.contents b

  (* ---- parser (on the shared Parsekit token language) ---- *)

  open Parsekit

let parse_lut lx =
    eat lx Tlbrace "'{'";
    let x = ref [||] and y = ref [||] and v = ref [||] in
    let rec fields () =
      match peek lx with
      | Trbrace -> advance lx
      | Tident _ ->
        (match ident lx with
         | "x" -> x := numbers_until_semi lx
         | "y" -> y := numbers_until_semi lx
         | "values" -> v := numbers_until_semi lx
         | s -> error lx (Printf.sprintf "unknown lut field %S" s));
        fields ()
      | Tstring _ | Tnumber _ | Tlbrace | Tsemi | Tarrow | Teof ->
        error lx "expected lut field or '}'"
    in
    fields ();
    Lut.make ~x_axis:!x ~y_axis:!y ~values:!v

  let parse_sense lx =
    match ident lx with
    | "positive_unate" -> Positive_unate
    | "negative_unate" -> Negative_unate
    | "non_unate" -> Non_unate
    | s -> error lx (Printf.sprintf "unknown sense %S" s)

  let parse_pin lx =
    let name = string_ lx in
    eat lx Tlbrace "'{'";
    let dir = ref Lib_input and cap = ref 0.0 and clock = ref false in
    let rec fields () =
      match peek lx with
      | Trbrace -> advance lx
      | Tident _ ->
        (match ident lx with
         | "direction" ->
           (match ident lx with
            | "input" -> dir := Lib_input
            | "output" -> dir := Lib_output
            | s -> error lx (Printf.sprintf "bad direction %S" s))
         | "capacitance" -> cap := number lx
         | "clock" -> clock := bool_ lx
         | s -> error lx (Printf.sprintf "unknown pin field %S" s));
        eat lx Tsemi "';'";
        fields ()
      | Tstring _ | Tnumber _ | Tlbrace | Tsemi | Tarrow | Teof ->
        error lx "expected pin field or '}'"
    in
    fields ();
    { lp_name = name; lp_direction = !dir; lp_capacitance = !cap;
      lp_is_clock = !clock }

  let required lx what = function
    | Some v -> v
    | None -> error lx (Printf.sprintf "missing %s" what)

  let parse_arc lx pin_of =
    let from_name = string_ lx in
    eat lx Tarrow "'->'";
    let to_name = string_ lx in
    eat lx Tlbrace "'{'";
    let sense = ref Non_unate in
    let cr = ref None and cf = ref None and rt = ref None and ft = ref None in
    let rec fields () =
      match peek lx with
      | Trbrace -> advance lx
      | Tident _ ->
        (match ident lx with
         | "sense" -> sense := parse_sense lx; eat lx Tsemi "';'"
         | "cell_rise" -> cr := Some (parse_lut lx)
         | "cell_fall" -> cf := Some (parse_lut lx)
         | "rise_transition" -> rt := Some (parse_lut lx)
         | "fall_transition" -> ft := Some (parse_lut lx)
         | s -> error lx (Printf.sprintf "unknown arc field %S" s));
        fields ()
      | Tstring _ | Tnumber _ | Tlbrace | Tsemi | Tarrow | Teof ->
        error lx "expected arc field or '}'"
    in
    fields ();
    { arc_from = pin_of from_name;
      arc_to = pin_of to_name;
      sense = !sense;
      cell_rise = required lx "cell_rise" !cr;
      cell_fall = required lx "cell_fall" !cf;
      rise_transition = required lx "rise_transition" !rt;
      fall_transition = required lx "fall_transition" !ft }

  let parse_check lx pin_of =
    let data = string_ lx in
    (match ident lx with
     | "clocked_by" -> ()
     | s -> error lx (Printf.sprintf "expected clocked_by, got %S" s));
    let clock = string_ lx in
    eat lx Tlbrace "'{'";
    let sr = ref None and sf = ref None and hr = ref None and hf = ref None in
    let rec fields () =
      match peek lx with
      | Trbrace -> advance lx
      | Tident _ ->
        (match ident lx with
         | "setup_rise" -> sr := Some (parse_lut lx)
         | "setup_fall" -> sf := Some (parse_lut lx)
         | "hold_rise" -> hr := Some (parse_lut lx)
         | "hold_fall" -> hf := Some (parse_lut lx)
         | s -> error lx (Printf.sprintf "unknown check field %S" s));
        fields ()
      | Tstring _ | Tnumber _ | Tlbrace | Tsemi | Tarrow | Teof ->
        error lx "expected check field or '}'"
    in
    fields ();
    { check_data = pin_of data;
      check_clock = pin_of clock;
      setup_rise = required lx "setup_rise" !sr;
      setup_fall = required lx "setup_fall" !sf;
      hold_rise = required lx "hold_rise" !hr;
      hold_fall = required lx "hold_fall" !hf }

  let parse_cell lx =
    let name = string_ lx in
    eat lx Tlbrace "'{'";
    let area = ref 0.0 and width = ref 1.0 and height = ref 1.0 in
    let sequential = ref false in
    let pins = ref [] and arcs = ref [] and checks = ref [] in
    let pin_of pname =
      let rec search i = function
        | [] -> error lx (Printf.sprintf "cell %S: unknown pin %S" name pname)
        | p :: rest ->
          if String.equal p.lp_name pname then i else search (i + 1) rest
      in
      search 0 (List.rev !pins)
    in
    let rec fields () =
      match peek lx with
      | Trbrace -> advance lx
      | Tident _ ->
        (match ident lx with
         | "area" -> area := number lx; eat lx Tsemi "';'"
         | "width" -> width := number lx; eat lx Tsemi "';'"
         | "height" -> height := number lx; eat lx Tsemi "';'"
         | "sequential" -> sequential := bool_ lx; eat lx Tsemi "';'"
         | "pin" -> pins := parse_pin lx :: !pins
         | "arc" -> arcs := parse_arc lx pin_of :: !arcs
         | "check" -> checks := parse_check lx pin_of :: !checks
         | s -> error lx (Printf.sprintf "unknown cell field %S" s));
        fields ()
      | Tstring _ | Tnumber _ | Tlbrace | Tsemi | Tarrow | Teof ->
        error lx "expected cell field or '}'"
    in
    fields ();
    { lc_name = name; lc_area = !area; lc_width = !width; lc_height = !height;
      lc_pins = Array.of_list (List.rev !pins);
      lc_arcs = Array.of_list (List.rev !arcs);
      lc_checks = Array.of_list (List.rev !checks);
      lc_is_sequential = !sequential }

  let of_string ?file src =
    let lx = make_lexer ?file ~what:"liberty" src in
    (match ident lx with
     | "library" -> ()
     | s -> error lx (Printf.sprintf "expected 'library', got %S" s));
    let name = string_ lx in
    eat lx Tlbrace "'{'";
    let r_unit = ref 0.02 and c_unit = ref 0.25 and default_slew = ref 15.0 in
    let cells = ref [] in
    let rec fields () =
      match peek lx with
      | Trbrace -> advance lx
      | Tident _ ->
        (match ident lx with
         | "r_unit" -> r_unit := number lx; eat lx Tsemi "';'"
         | "c_unit" -> c_unit := number lx; eat lx Tsemi "';'"
         | "default_slew" -> default_slew := number lx; eat lx Tsemi "';'"
         | "cell" -> cells := parse_cell lx :: !cells
         | s -> error lx (Printf.sprintf "unknown library field %S" s));
        fields ()
      | Tstring _ | Tnumber _ | Tlbrace | Tsemi | Tarrow | Teof ->
        error lx "expected library field or '}'"
    in
    fields ();
    (match peek lx with
     | Teof -> ()
     | Tident _ | Tstring _ | Tnumber _ | Tlbrace | Trbrace | Tsemi | Tarrow ->
       error lx "trailing input after library");
    { lib_name = name;
      r_unit = !r_unit;
      c_unit = !c_unit;
      default_slew = !default_slew;
      lib_cells = Array.of_list (List.rev !cells) }

  let save path lib =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string lib))

  let load path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string ~file:path (In_channel.input_all ic))
end
