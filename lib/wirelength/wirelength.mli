(** Smooth wirelength models for analytical placement (paper §2.2).

    The optimiser needs a differentiable stand-in for the half-perimeter
    wirelength (HPWL).  We implement the weighted-average (WA) model used
    by DREAMPlace: for one net and one axis,

    [WA = (sum x_i e^(x_i/g)) / (sum e^(x_i/g))
        - (sum x_i e^(-x_i/g)) / (sum e^(-x_i/g))]

    which tends to [max x - min x] as the smoothing width [g] goes to 0.
    Each net contributes [weight * (WA_x + WA_y)]; per-net weights are the
    hook used by the net-weighting baseline (Eq. 4). *)

type t

val create : ?gamma:float -> Netlist.t -> t
(** [gamma] is the smoothing width in microns (default 4.0; smaller is
    sharper).  Scratch buffers are per worker slice and bounds-grown on
    demand, so the instance stays safe if nets gain pins after
    creation. *)

val gamma : t -> float
val set_gamma : t -> float -> unit

val evaluate :
  t ->
  ?pool:Parallel.pool ->
  ?obs:Obs.t ->
  ?weighted:bool ->
  grad_x:float array ->
  grad_y:float array ->
  unit ->
  float
(** Smooth weighted wirelength of the design at its current positions.
    [obs] (default {!Obs.disabled}) records the whole call as a
    [wirelength] span.
    Gradients with respect to {e cell centers} are {b accumulated} into
    [grad_x]/[grad_y] (length [num_cells]; gradients also accrue on fixed
    cells — callers mask them).  [weighted] (default true) applies net
    weights.  With [pool], nets are processed in parallel slices, each
    with its own coordinate scratch and gradient accumulator; the slice
    split depends only on the net count and partials merge in slice
    order, so pooled results are bit-identical to sequential ones. *)

val hpwl : t -> float
(** Exact (non-smooth, unweighted) HPWL for reporting. *)
