(* Per-worker slice state.  Each slice owns its pin-coordinate /
   exponential scratch (bounds-grown, so the module is safe under the
   pool and under post-create net edits) and, when more than one slice is
   live, its own gradient accumulators merged in slice order. *)
type slice = {
  mutable sc_coords : float array;  (* pin coordinates of the current net *)
  mutable sc_ep : float array;      (* memoized max-shifted exponentials *)
  mutable sc_em : float array;
  sl_gx : float array;              (* per-slice gradient accumulators *)
  sl_gy : float array;
  mutable sl_total : float;
}

type t = {
  design : Netlist.t;
  mutable gamma_ : float;
  mutable slices : slice array;
}

(* The net range is cut into slices as a pure function of the net and
   cell counts — never of the pool — so the slice partials and their
   in-order merge are identical at every domain count (bit-identical
   pooled runs).  The cell-count cap keeps the per-slice gradient
   accumulators within a ~2M-float budget: at 10^5+ cells a full 16-way
   split would pin 2 * 16 * ncells floats of scratch and spend more
   time zero-filling than evaluating (the cap only bites above ~131k
   cells, so smaller designs keep their historical slice split). *)
let net_slices ~ncells nnets =
  if nnets <= 0 then 1
  else begin
    let by_nets = min 16 ((nnets + 511) / 512) in
    let by_mem = max 1 (2_097_152 / max 1 ncells) in
    min by_nets by_mem
  end

let make_slice ncells cap =
  { sc_coords = Array.make cap 0.0;
    sc_ep = Array.make cap 0.0;
    sc_em = Array.make cap 0.0;
    sl_gx = Array.make ncells 0.0;
    sl_gy = Array.make ncells 0.0;
    sl_total = 0.0 }

let ensure_coords sl n =
  if Array.length sl.sc_coords < n then begin
    let cap = max n (2 * Array.length sl.sc_coords) in
    sl.sc_coords <- Array.make cap 0.0;
    sl.sc_ep <- Array.make cap 0.0;
    sl.sc_em <- Array.make cap 0.0
  end

let create ?(gamma = 4.0) design =
  let max_degree =
    Array.fold_left
      (fun acc (net : Netlist.net) -> max acc (Array.length net.Netlist.net_pins))
      1 design.Netlist.nets
  in
  let ncells = Netlist.num_cells design in
  let nslices = net_slices ~ncells (Netlist.num_nets design) in
  { design; gamma_ = gamma;
    slices = Array.init nslices (fun _ -> make_slice ncells max_degree) }

let gamma t = t.gamma_
let set_gamma t g = t.gamma_ <- g
let hpwl t = Netlist.total_hpwl t.design

(* One axis of the WA model for one net.  Returns the smooth extent and
   accumulates d(extent)/d(coord_i) into [out] at the pins' cells.

   With the max-shifted exponentials, the positive (max-like) part is
     S+ = sum x_i e_i / sum e_i,   e_i = exp ((x_i - M) / g)
   and its partial derivative is
     dS+/dx_i = e_i (1 + (x_i - S+) / g) / sum e_i,
   symmetrically for the min-like part with negated exponents.  The
   exponentials are computed once and replayed for the gradient pass. *)
let axis_wa t sl (pins : int array) coord_of weight out =
  let n = Array.length pins in
  let g = t.gamma_ in
  let xs = sl.sc_coords and eps = sl.sc_ep and ems = sl.sc_em in
  let lo = ref infinity and hi = ref neg_infinity in
  for k = 0 to n - 1 do
    let v = coord_of pins.(k) in
    xs.(k) <- v;
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  let sum_ep = ref 0.0 and sum_xep = ref 0.0 in
  let sum_em = ref 0.0 and sum_xem = ref 0.0 in
  for k = 0 to n - 1 do
    let ep = exp ((xs.(k) -. !hi) /. g) in
    let em = exp ((!lo -. xs.(k)) /. g) in
    eps.(k) <- ep;
    ems.(k) <- em;
    sum_ep := !sum_ep +. ep;
    sum_xep := !sum_xep +. (xs.(k) *. ep);
    sum_em := !sum_em +. em;
    sum_xem := !sum_xem +. (xs.(k) *. em)
  done;
  let s_plus = !sum_xep /. !sum_ep in
  let s_minus = !sum_xem /. !sum_em in
  for k = 0 to n - 1 do
    let ep = eps.(k) and em = ems.(k) in
    let d_plus = ep *. (1.0 +. ((xs.(k) -. s_plus) /. g)) /. !sum_ep in
    let d_minus = em *. (1.0 -. ((xs.(k) -. s_minus) /. g)) /. !sum_em in
    let cell = t.design.Netlist.pins.(pins.(k)).Netlist.cell in
    out.(cell) <- out.(cell) +. (weight *. (d_plus -. d_minus))
  done;
  s_plus -. s_minus

let eval_net t sl ~weighted gx gy (net : Netlist.net) =
  let pins = net.Netlist.net_pins in
  if Array.length pins < 2 then 0.0
  else begin
    ensure_coords sl (Array.length pins);
    let w = if weighted then net.Netlist.weight else 1.0 in
    let wx = axis_wa t sl pins (fun p -> Netlist.pin_x t.design p) w gx in
    let wy = axis_wa t sl pins (fun p -> Netlist.pin_y t.design p) w gy in
    w *. (wx +. wy)
  end

let evaluate t ?pool ?(obs = Obs.disabled) ?(weighted = true) ~grad_x
    ~grad_y () =
  let ncells = Netlist.num_cells t.design in
  if Array.length grad_x <> ncells || Array.length grad_y <> ncells then
    invalid_arg "Wirelength.evaluate: gradient size mismatch";
  Obs.start obs Obs.Wirelength;
  let nets = t.design.Netlist.nets in
  let nnets = Array.length nets in
  let nslices = net_slices ~ncells nnets in
  if Array.length t.slices < nslices then
    t.slices <-
      Array.init nslices (fun s ->
        if s < Array.length t.slices then t.slices.(s)
        else make_slice ncells 1);
  let result =
  if nslices = 1 then begin
    let sl = t.slices.(0) in
    let total = ref 0.0 in
    for i = 0 to nnets - 1 do
      total := !total +. eval_net t sl ~weighted grad_x grad_y nets.(i)
    done;
    !total
  end
  else begin
    let pool = match pool with Some p -> p | None -> Parallel.sequential_pool in
    (* one slice evaluates hundreds of nets' WA terms *)
    Parallel.parallel_for pool ~obs ~cost:512.0 nslices (fun s ->
      let sl = t.slices.(s) in
      Array.fill sl.sl_gx 0 ncells 0.0;
      Array.fill sl.sl_gy 0 ncells 0.0;
      sl.sl_total <- 0.0;
      let lo = s * nnets / nslices and hi = (s + 1) * nnets / nslices in
      for i = lo to hi - 1 do
        sl.sl_total <-
          sl.sl_total +. eval_net t sl ~weighted sl.sl_gx sl.sl_gy nets.(i)
      done);
    (* merge in slice order: deterministic at every domain count *)
    let total = ref 0.0 in
    for s = 0 to nslices - 1 do
      let sl = t.slices.(s) in
      total := !total +. sl.sl_total;
      for c = 0 to ncells - 1 do
        grad_x.(c) <- grad_x.(c) +. sl.sl_gx.(c);
        grad_y.(c) <- grad_y.(c) +. sl.sl_gy.(c)
      done
    done;
    !total
  end
  in
  Obs.stop obs Obs.Wirelength;
  result
