(* Lock-free fork-join executor over OCaml 5 domains.

   One [parallel_for] publishes a single immutable job descriptor
   through [pool.cur]; persistent workers claim chunk indices with
   [Atomic.fetch_and_add job.next] and completion is a padded atomic
   countdown ([job.remaining]).  The hot path — publish, claim, finish
   — takes no lock and allocates one descriptor per job, never per
   chunk.  Workers spin briefly between jobs before parking on a
   condition variable, so bursts of tiny level-synchronous dispatches
   (the differentiable timer's levels) never touch a futex.

   Every cross-domain communication goes through [Atomic]: there are
   no plain mutable reads outside a mutex anywhere on the worker path,
   which is what the OCaml 5 memory model requires (the previous
   work-queue executor peeked at a mutating [Queue.t] without the
   lock).  The two mutexes that remain guard only the two parking
   lots (idle workers, a caller waiting out a straggler) and are
   touched only after a spin budget has expired. *)

type job = {
  run : int -> int -> unit;  (* execute indices [lo, hi) *)
  jn : int;
  jgrain : int;
  jchunks : int;
  next : int Atomic.t;  (* next unclaimed chunk *)
  remaining : int Atomic.t;  (* chunks not yet finished *)
  waiter : bool Atomic.t;  (* the caller has parked on done_cond *)
  failed : exn option Atomic.t;  (* first exception raised by a chunk *)
}

type pool = {
  cur : job Atomic.t;  (* last published job; workers compare physically *)
  busy : bool Atomic.t;  (* submit slot: one job in flight at a time *)
  idlers : int Atomic.t;  (* workers parked on [wake] *)
  stopping : bool Atomic.t;
  sleep_mutex : Mutex.t;
  wake : Condition.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  worker_spin : int;  (* relax iterations before a worker parks *)
  caller_spin : int;  (* relax iterations before the caller parks *)
  eff : int;  (* effective parallelism for auto-grain *)
  mutable domains : unit Domain.t array;
}

(* Best-effort cache-line padding: a dead block allocated right after
   the atomic keeps the next minor-heap allocation off its line, so the
   claim counter and the countdown are not falsely shared. *)
let padded_atomic v =
  let a = Atomic.make v in
  ignore (Sys.opaque_identity (Bytes.create 128));
  a

let sentinel =
  { run = (fun _ _ -> ());
    jn = 0;
    jgrain = 1;
    jchunks = 0;
    next = Atomic.make 0;
    remaining = Atomic.make 0;
    waiter = Atomic.make false;
    failed = Atomic.make None }

(* ---- chunk execution (workers and the caller share this path) ---- *)

let exec_chunk job c =
  let lo = c * job.jgrain in
  let hi = min job.jn (lo + job.jgrain) in
  try job.run lo hi
  with e ->
    (* keep the countdown exact even on failure; the caller re-raises
       the first exception after the job quiesces *)
    ignore (Atomic.compare_and_set job.failed None (Some e))

let finish_chunk pool job =
  if Atomic.fetch_and_add job.remaining (-1) = 1 then
    if Atomic.get job.waiter then begin
      Mutex.lock pool.done_mutex;
      Condition.broadcast pool.done_cond;
      Mutex.unlock pool.done_mutex
    end

let help pool job =
  let rec claim () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < job.jchunks then begin
      exec_chunk job c;
      finish_chunk pool job;
      claim ()
    end
  in
  claim ()

(* ---- workers: spin for the next published job, then park ---- *)

let worker pool =
  let last = ref sentinel in
  let rec loop spin =
    if not (Atomic.get pool.stopping) then begin
      let j = Atomic.get pool.cur in
      if j != !last then begin
        last := j;
        help pool j;
        loop pool.worker_spin
      end
      else if spin > 0 then begin
        Domain.cpu_relax ();
        loop (spin - 1)
      end
      else begin
        Atomic.incr pool.idlers;
        Mutex.lock pool.sleep_mutex;
        (* recheck after raising [idlers]: a publisher that misses the
           increment must have published first, and this read would see
           it (both are SC atomics) *)
        if Atomic.get pool.cur == !last && not (Atomic.get pool.stopping)
        then Condition.wait pool.wake pool.sleep_mutex;
        Mutex.unlock pool.sleep_mutex;
        Atomic.decr pool.idlers;
        loop pool.worker_spin
      end
    end
  in
  loop pool.worker_spin

(* ---- pool construction ---- *)

let worker_spin_iters = 4096
let caller_spin_iters = 1024

let make_pool ~worker_spin ~caller_spin ~eff =
  { cur = Atomic.make sentinel;
    busy = padded_atomic false;
    idlers = padded_atomic 0;
    stopping = Atomic.make false;
    sleep_mutex = Mutex.create ();
    wake = Condition.create ();
    done_mutex = Mutex.create ();
    done_cond = Condition.create ();
    worker_spin;
    caller_spin;
    eff;
    domains = [||] }

let create ?domains ?(oversubscribe = false) () =
  let cores = Domain.recommended_domain_count () in
  let default = max 1 (cores - 1) in
  let requested = match domains with None -> default | Some d -> max 1 d in
  let eff = if oversubscribe then requested else min requested cores in
  (* time-sliced workers must park immediately: spinning on a core the
     caller needs only delays the job they are waiting to claim *)
  let spin_ok = requested <= cores && not oversubscribe in
  let pool =
    make_pool
      ~worker_spin:(if spin_ok then worker_spin_iters else 0)
      ~caller_spin:(if spin_ok then caller_spin_iters else 0)
      ~eff
  in
  (* spawn only workers that can actually run concurrently: eff <= 1
     keeps zero domains, because even parked workers tax every
     stop-the-world collection of a run they cannot speed up *)
  pool.domains <-
    Array.init (eff - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let sequential_pool = make_pool ~worker_spin:0 ~caller_spin:0 ~eff:1

let shutdown pool =
  Atomic.set pool.stopping true;
  Mutex.lock pool.sleep_mutex;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.sleep_mutex;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let domain_count pool = Array.length pool.domains + 1
let effective_parallelism pool = pool.eff

(* ---- auto-grain policy ---- *)

let oversplit = 4  (* chunks per effective domain: slack for balance *)
let min_chunk_cost = 256.0  (* unit-cost items per chunk, at least *)
let reduce_ways = 16  (* pool-independent split target for reductions *)

let cost_floor cost =
  max 1 (int_of_float (Float.ceil (min_chunk_cost /. Float.max 0.001 cost)))

let auto_grain pool ?(cost = 1.0) n =
  if n <= 1 then 1
  else if pool.eff <= 1 then n
  else
    let ways = oversplit * pool.eff in
    max ((n + ways - 1) / ways) (cost_floor cost)

let reduce_grain ?(cost = 1.0) n =
  if n <= 1 then 1
  else max ((n + reduce_ways - 1) / reduce_ways) (cost_floor cost)

(* ---- dispatch ---- *)

(* The inline fallback iterates chunk by chunk with the same split as
   the pooled path, so reductions fold identical partials in identical
   order: execution strategy never changes the bit pattern. *)
let run_chunks_inline run n grain chunks =
  for c = 0 to chunks - 1 do
    let lo = c * grain in
    run lo (min n (lo + grain))
  done

let dispatch pool obs run n grain =
  let chunks = (n + grain - 1) / grain in
  if chunks <= 1 then run 0 n
  else if Array.length pool.domains = 0 || pool.eff <= 1 then
    run_chunks_inline run n grain chunks
  else if not (Atomic.compare_and_set pool.busy false true) then
    (* contended submit slot: a concurrent or nested call owns the
       workers; degrade to inline rather than queue (and never deadlock
       on nested calls from inside a chunk) *)
    run_chunks_inline run n grain chunks
  else begin
    Obs.start obs Obs.Par_dispatch;
    let job =
      { run;
        jn = n;
        jgrain = grain;
        jchunks = chunks;
        next = padded_atomic 0;
        remaining = padded_atomic chunks;
        waiter = Atomic.make false;
        failed = Atomic.make None }
    in
    Atomic.set pool.cur job;
    if Atomic.get pool.idlers > 0 then begin
      Mutex.lock pool.sleep_mutex;
      Condition.broadcast pool.wake;
      Mutex.unlock pool.sleep_mutex
    end;
    Obs.stop obs Obs.Par_dispatch;
    help pool job;
    (* the caller ran out of chunks to claim; wait out the stragglers *)
    Obs.start obs Obs.Par_wait;
    let rec wait spin =
      if Atomic.get job.remaining > 0 then
        if spin > 0 then begin
          Domain.cpu_relax ();
          wait (spin - 1)
        end
        else begin
          Atomic.set job.waiter true;
          Mutex.lock pool.done_mutex;
          while Atomic.get job.remaining > 0 do
            Condition.wait pool.done_cond pool.done_mutex
          done;
          Mutex.unlock pool.done_mutex
        end
    in
    wait pool.caller_spin;
    Obs.stop obs Obs.Par_wait;
    Atomic.set pool.busy false;
    match Atomic.get job.failed with None -> () | Some e -> raise e
  end

let parallel_for pool ?(obs = Obs.disabled) ?grain ?cost n f =
  if n > 0 then begin
    let grain =
      match grain with Some g -> max 1 g | None -> auto_grain pool ?cost n
    in
    let run lo hi =
      for i = lo to hi - 1 do
        f i
      done
    in
    dispatch pool obs run n grain
  end

let parallel_for_reduce pool ?(obs = Obs.disabled) ?grain ?cost n ~init ~body
    ~merge =
  if n <= 0 then init ()
  else begin
    let grain =
      match grain with Some g -> max 1 g | None -> reduce_grain ?cost n
    in
    let chunks = (n + grain - 1) / grain in
    let partials = Array.init chunks (fun _ -> init ()) in
    let run lo hi =
      let acc = partials.(lo / grain) in
      for i = lo to hi - 1 do
        body acc i
      done
    in
    dispatch pool obs run n grain;
    let acc = ref partials.(0) in
    for c = 1 to chunks - 1 do
      acc := merge !acc partials.(c)
    done;
    !acc
  end
