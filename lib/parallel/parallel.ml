(* A small work-queue pool over OCaml 5 domains.  Each [parallel_for]
   enqueues closed-over chunk thunks; the caller also drains the queue so
   no domain sits idle, then blocks until its own chunks are all done. *)

type pool = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t array;
}

let worker pool =
  let rec loop () =
    (* opportunistic spin: level-synchronous kernels enqueue work in
       rapid bursts, and parking between levels costs more than the
       kernels themselves.  The unsynchronised emptiness peek is a
       heuristic only; the queue is re-checked under the mutex. *)
    let rec spin k =
      if k > 0 && Queue.is_empty pool.queue && not pool.stopping then begin
        Domain.cpu_relax ();
        spin (k - 1)
      end
    in
    spin 2_000;
    Mutex.lock pool.mutex;
    let rec wait () =
      if Queue.is_empty pool.queue && not pool.stopping then begin
        Condition.wait pool.work_available pool.mutex;
        wait ()
      end
    in
    wait ();
    if Queue.is_empty pool.queue && pool.stopping then
      Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let default = max 1 (Domain.recommended_domain_count () - 1) in
  let requested = match domains with None -> default | Some d -> max 1 d in
  let workers = requested - 1 in
  let pool =
    { queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      stopping = false;
      domains = [||] }
  in
  pool.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let sequential_pool =
  { queue = Queue.create ();
    mutex = Mutex.create ();
    work_available = Condition.create ();
    stopping = false;
    domains = [||] }

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.domains;
  pool.domains <- [||]

let domain_count pool = Array.length pool.domains + 1

let run_range f start stop =
  for i = start to stop - 1 do
    f i
  done

(* Completion of one parallel_for is tracked by a per-call counter guarded
   by the pool mutex; the caller helps drain the queue while waiting. *)
let parallel_for pool ?(grain = 1024) n f =
  if n <= 0 then ()
  else if Array.length pool.domains = 0 || n <= grain then run_range f 0 n
  else begin
    let grain = max 1 grain in
    let chunks = (n + grain - 1) / grain in
    let completed = ref 0 in
    let job_done = Condition.create () in
    let make_chunk c () =
      let start = c * grain in
      let stop = min n (start + grain) in
      run_range f start stop;
      Mutex.lock pool.mutex;
      incr completed;
      if !completed = chunks then Condition.signal job_done;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    for c = 0 to chunks - 1 do
      Queue.push (make_chunk c) pool.queue
    done;
    Condition.broadcast pool.work_available;
    (* Help out: run queued tasks (possibly from other concurrent calls)
       until our chunks are all accounted for. *)
    let rec drain () =
      if !completed < chunks then begin
        match Queue.take_opt pool.queue with
        | Some task ->
          Mutex.unlock pool.mutex;
          task ();
          Mutex.lock pool.mutex;
          drain ()
        | None ->
          if !completed < chunks then begin
            Condition.wait job_done pool.mutex;
            drain ()
          end
      end
    in
    drain ();
    Mutex.unlock pool.mutex
  end

let parallel_for_reduce pool ?(grain = 1024) n ~init ~body ~merge =
  if n <= 0 then init ()
  else begin
    let grain = max 1 grain in
    let chunks = (n + grain - 1) / grain in
    if chunks = 1 then begin
      let acc = init () in
      for i = 0 to n - 1 do
        body acc i
      done;
      acc
    end
    else begin
      (* The chunk split depends only on [n] and [grain] — never on the
         pool — and partials are merged in chunk order, so the result is
         bit-identical for any domain count (including the sequential
         pool).  This is what lets a pooled placement iteration reproduce
         the sequential one exactly. *)
      let partials = Array.init chunks (fun _ -> init ()) in
      let fold_chunk c =
        let acc = partials.(c) in
        let start = c * grain in
        let stop = min n (start + grain) in
        for i = start to stop - 1 do
          body acc i
        done
      in
      if Array.length pool.domains = 0 then
        for c = 0 to chunks - 1 do
          fold_chunk c
        done
      else parallel_for pool ~grain:1 chunks fold_chunk;
      let acc = ref partials.(0) in
      for c = 1 to chunks - 1 do
        acc := merge !acc partials.(c)
      done;
      !acc
    end
  end
