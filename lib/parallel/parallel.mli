(** Data-parallel kernels over index ranges.

    This module is the CPU stand-in for the paper's CUDA kernels: the
    differentiable timer processes every pin of a logic level with the same
    arithmetic, so each level is dispatched as a [parallel_for] over the
    pins in that level.  A fixed pool of OCaml 5 domains executes chunks of
    the range; for small ranges the loop runs sequentially to avoid
    dispatch overhead. *)

type pool

val create : ?domains:int -> unit -> pool
(** [create ~domains ()] spawns a worker pool.  [domains] defaults to
    [recommended_domain_count - 1], at least 1 (meaning: run sequentially). *)

val shutdown : pool -> unit
(** Terminate the pool's domains.  The pool must not be used afterwards. *)

val domain_count : pool -> int

val parallel_for : pool -> ?grain:int -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] evaluates [f i] for every [0 <= i < n].  Work
    is split into chunks of at least [grain] (default 1024) indices;
    ranges smaller than [grain] run on the calling domain.  [f] must be
    safe to run concurrently on disjoint indices. *)

val parallel_for_reduce :
  pool ->
  ?grain:int ->
  int ->
  init:(unit -> 'a) ->
  body:('a -> int -> unit) ->
  merge:('a -> 'a -> 'a) ->
  'a
(** [parallel_for_reduce pool n ~init ~body ~merge] folds [body] over
    [0 .. n - 1] with per-chunk partial accumulators.  [init ()] makes a
    fresh (typically mutable) accumulator — it must be a neutral element;
    each chunk of at least [grain] indices folds into its own accumulator
    via [body acc i]; after the barrier the partials are combined with
    [merge] in {e chunk order}.  The chunk split depends only on [n] and
    [grain] — never on the pool or on worker scheduling — so the result
    is {e bit-identical} across domain counts: the sequential pool folds
    the same per-chunk partials inline and merges them in the same order.
    [merge] may mutate and return its first argument.  Ranges not
    exceeding [grain] fold inline into a single accumulator (a one-chunk
    split). *)

val sequential_pool : pool
(** A pool with zero workers: [parallel_for] always runs inline.  Useful
    for tests and deterministic debugging. *)
