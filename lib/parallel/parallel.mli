(** Data-parallel kernels over index ranges.

    This module is the CPU stand-in for the paper's CUDA kernels: the
    differentiable timer processes every pin of a logic level with the
    same arithmetic, so each level is dispatched as a [parallel_for]
    over the pins in that level.

    The executor is a lock-free fork-join core: each call publishes a
    single job descriptor through an [Atomic]; persistent worker
    domains claim chunk indices with [Atomic.fetch_and_add] and count
    completion down through a second padded atomic.  The hot path
    (publish / claim / finish) takes no lock and allocates one small
    record per {e job} — never per chunk — and workers spin briefly
    between jobs before parking, so bursts of tiny level-synchronous
    dispatches never touch a futex.

    {b Determinism.}  The chunk split is a pure function of
    [(n, grain)], and reduce partials are merged in chunk order, so
    results are bit-identical at every domain count.  This also holds
    when a call degrades to inline execution (nested call, contended
    submit slot, or no effective parallelism): the inline path folds
    the same chunks in the same order. *)

type pool

val create : ?domains:int -> ?oversubscribe:bool -> unit -> pool
(** [create ~domains ()] spawns a worker pool.  [domains] defaults to
    [recommended_domain_count - 1], at least 1 (meaning: run
    sequentially).  When the requested domain count exceeds the
    hardware's available parallelism, the pool degrades gracefully:
    only [min domains cores - 1] worker domains are spawned (zero on a
    single-core machine — even parked workers tax stop-the-world
    collections), {!auto_grain} sizes chunks for the parallelism that
    actually exists, and spin budgets drop to zero so time-sliced
    workers park instead of burning the shared core.  [oversubscribe]
    (default [false]) disables that degradation and treats the
    requested domain count as real — tests use it to exercise the
    concurrent machinery on any machine. *)

val shutdown : pool -> unit
(** Terminate the pool's domains.  The pool must not be used
    afterwards, and no [parallel_for] may be in flight. *)

val domain_count : pool -> int
(** Workers + the calling domain (1 for {!sequential_pool}). *)

val effective_parallelism : pool -> int
(** The parallelism {!auto_grain} plans for:
    [min domains available_cores], or [domains] when the pool was
    created with [~oversubscribe:true]. *)

val auto_grain : pool -> ?cost:float -> int -> int
(** [auto_grain pool ~cost n] is the chunk size used when
    [parallel_for]'s [?grain] is omitted.  [cost] is a per-index work
    hint in arbitrary units where [1.0] is a handful of float
    operations (default [1.0]).  The policy targets ~4 chunks per
    effective domain for load balance, but never splits finer than
    ~256 cost units per chunk so dispatch overhead stays amortised;
    with one effective domain it returns [n] (inline).  Because the
    result depends on the pool's effective parallelism, use it only
    for loops whose outcome does not depend on the split (disjoint
    writes); reductions use {!reduce_grain}. *)

val reduce_grain : ?cost:float -> int -> int
(** Grain used when [parallel_for_reduce]'s [?grain] is omitted.
    Unlike {!auto_grain} this is {e pool-independent} (a fixed 16-way
    split target with the same per-chunk cost floor), so the chunk
    split — and therefore the merge order and the bit pattern of the
    result — is identical at every domain count. *)

val parallel_for :
  pool -> ?obs:Obs.t -> ?grain:int -> ?cost:float -> int -> (int -> unit) ->
  unit
(** [parallel_for pool n f] evaluates [f i] for every [0 <= i < n].
    Work is split into chunks of [grain] indices ({!auto_grain} of [n]
    and [cost] when omitted); single-chunk ranges run on the calling
    domain.  [f] must be safe to run concurrently on disjoint indices.
    If [f] raises, every chunk still runs and the first exception is
    re-raised in the caller once the job has quiesced.  [obs] records
    [Par_dispatch]/[Par_wait] spans (from the calling domain, worker
    slot 0) around the publish and completion-wait phases of pooled
    dispatches, so executor overhead shows up in [--profile] output;
    inline executions record nothing, leaving their time attributed to
    the enclosing kernel span. *)

val parallel_for_reduce :
  pool ->
  ?obs:Obs.t ->
  ?grain:int ->
  ?cost:float ->
  int ->
  init:(unit -> 'a) ->
  body:('a -> int -> unit) ->
  merge:('a -> 'a -> 'a) ->
  'a
(** [parallel_for_reduce pool n ~init ~body ~merge] folds [body] over
    [0 .. n - 1] with per-chunk partial accumulators.  [init ()] makes
    a fresh (typically mutable) accumulator — it must be a neutral
    element; each chunk folds into its own accumulator via [body acc
    i]; after the barrier the partials are combined with [merge] in
    {e chunk order}.  The chunk split depends only on [n] and the
    grain ({!reduce_grain} when omitted — never on the pool or worker
    scheduling), so the result is {e bit-identical} across domain
    counts: inline execution folds the same per-chunk partials in the
    same order.  [merge] may mutate and return its first argument. *)

val sequential_pool : pool
(** A pool with zero workers: every call runs inline on the calling
    domain.  Useful for tests and deterministic debugging. *)
