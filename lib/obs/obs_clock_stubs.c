/* Monotonic clock for Obs.Clock.
 *
 * OCaml 5.1's Unix module exposes no clock_gettime, and gettimeofday is
 * subject to NTP steps, so runtimes measured with it can go backwards.
 * CLOCK_MONOTONIC never does.  The native entry point is unboxed and
 * noalloc so a span start/stop costs two C calls and no GC work.
 */
#include <stdint.h>
#include <time.h>

#include <sys/resource.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

int64_t dgp_obs_clock_ns(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t) ts.tv_sec * 1000000000 + (int64_t) ts.tv_nsec;
}

CAMLprim value dgp_obs_clock_ns_byte(value unit)
{
  (void) unit;
  return caml_copy_int64(dgp_obs_clock_ns());
}

/* Peak resident set size of this process, in bytes (0.0 if the kernel
 * does not report it).  getrusage's ru_maxrss is kilobytes on Linux and
 * bytes on Darwin. */
double dgp_obs_peak_rss(void)
{
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#ifdef __APPLE__
  return (double) ru.ru_maxrss;
#else
  return (double) ru.ru_maxrss * 1024.0;
#endif
}

CAMLprim value dgp_obs_peak_rss_byte(value unit)
{
  (void) unit;
  return caml_copy_double(dgp_obs_peak_rss());
}
