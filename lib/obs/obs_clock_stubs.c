/* Monotonic clock for Obs.Clock.
 *
 * OCaml 5.1's Unix module exposes no clock_gettime, and gettimeofday is
 * subject to NTP steps, so runtimes measured with it can go backwards.
 * CLOCK_MONOTONIC never does.  The native entry point is unboxed and
 * noalloc so a span start/stop costs two C calls and no GC work.
 */
#include <stdint.h>
#include <time.h>

#include <caml/alloc.h>
#include <caml/mlvalues.h>

int64_t dgp_obs_clock_ns(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t) ts.tv_sec * 1000000000 + (int64_t) ts.tv_nsec;
}

CAMLprim value dgp_obs_clock_ns_byte(value unit)
{
  (void) unit;
  return caml_copy_int64(dgp_obs_clock_ns());
}
