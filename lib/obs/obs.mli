(** Per-kernel observability for the placement stack.

    A single [t] is threaded (as [?obs], defaulting to {!disabled})
    through every kernel of the placement loop — wirelength, density
    splat/DCT, Steiner/RC maintenance, exact STA, the differentiable
    timer, net/path weighting, the optimizer step — plus path
    enumeration and the legalizer.  It records:

    - {b scoped spans} per kernel: call count, cumulative (inclusive)
      and self (exclusive of nested spans) time, per-call min/max;
    - {b counters/gauges}: named scalar facts (cold path only);
    - a {b JSONL trace}: every span begin/end with its iteration tag,
      plus counters, gauges and optional GC deltas.

    All timestamps come from {!Clock}, a raw [CLOCK_MONOTONIC] reader,
    so NTP steps cannot produce negative or skewed durations.

    The disabled path is allocation-free: {!start}/{!stop} test one
    boolean and return.  Spans record into pre-sized per-worker buffers
    (grown geometrically when full) and are merged in worker order at
    report time, so instrumentation never perturbs the deterministic
    chunk-order reductions of [Parallel] — with profiling off, outputs
    are bit-identical to an un-instrumented build. *)

module Clock : sig
  val now_ns : unit -> int64
  (** Nanoseconds on [CLOCK_MONOTONIC].  Arbitrary origin; only
      differences are meaningful. *)

  val now : unit -> float
  (** {!now_ns} in seconds, for drop-in replacement of
      [Unix.gettimeofday] deltas. *)
end

val peak_rss_bytes : unit -> float
(** Peak resident set size of this process in bytes, from
    [getrusage(RUSAGE_SELF)] (with a [/proc/self/status] [VmHWM]
    fallback); [0.0] when neither source is available.  Recorded as the
    [peak_rss_mb] gauge in [--profile] output and every [BENCH_*.json]
    emitter. *)

(** The fixed set of instrumented kernels.  A closed enum keeps the hot
    recording path integer-indexed and allocation-free. *)
type kernel =
  | Core_run  (** one whole [Core.run] invocation *)
  | Core_trace  (** per-iteration sync + HPWL + trace-point STA *)
  | Wirelength  (** WA wirelength forward + backward *)
  | Density_splat  (** bin splat (charge accumulation) *)
  | Density_dct  (** spectral Poisson solve (DCT forward + synthesis) *)
  | Density_grad  (** field gather to per-cell gradients *)
  | Steiner_rebuild  (** Steiner topology (re)construction + RC build *)
  | Steiner_refresh  (** RC refresh on frozen topologies *)
  | Sta_exact  (** exact timer propagation (arrival/required/slack) *)
  | Diff_forward  (** differentiable timer forward (LSE) pass *)
  | Diff_backward  (** differentiable timer reverse pass *)
  | Netweight_update  (** momentum net-weight update (incl. its STA) *)
  | Pathweight_update  (** path-weight update (incl. STA + enumeration) *)
  | Optim_step  (** optimizer step, x and y *)
  | Paths_analyze  (** path-engine snapshot build *)
  | Paths_enumerate  (** top-K path branch-and-bound *)
  | Legalize  (** row legalization *)
  | Par_dispatch  (** executor: job publication + worker wake-up *)
  | Par_wait  (** executor: caller waiting on lagging chunk claims *)
  | Steiner_lut  (** rebuild sub-kernel: topology-LUT net builds *)
  | Steiner_dirty  (** rebuild sub-kernel: clean-net provenance refresh *)
  | Steiner_full  (** rebuild sub-kernel: heuristic builds (large nets) *)
  | Sta_incremental  (** incremental STA cone re-propagation (one update) *)
  | Serve_parse  (** daemon: request line parsing *)
  | Serve_update  (** daemon: state mutation (move/commit/place) *)
  | Serve_query  (** daemon: read-only queries (slack/paths/stats) *)
  | Route_rudy  (** RUDY routing-demand splat over the congestion grid *)
  | Route_overflow  (** congestion summary (peak / RC top-percentile) *)
  | Route_inflate  (** cell inflation pass over congested bins *)
  | Cluster_coarsen  (** multilevel V-cycle: netlist coarsening, all levels *)
  | Cluster_interp  (** V-cycle: position prolongation to one finer level *)
  | Cluster_refine  (** V-cycle: placement run at one level (wraps core.run) *)

val kernel_name : kernel -> string
(** Stable dotted name used in reports and traces, e.g.
    ["density.dct"]. *)

val all_kernels : kernel list
(** Every kernel, in report order. *)

type t

val disabled : t
(** The no-op instance: [enabled] is [false], every operation returns
    immediately without allocating.  This is the default everywhere. *)

val create : ?gc:bool -> ?workers:int -> unit -> t
(** A live recorder.  [workers] sizes the per-worker buffer table
    (default 1: the placement loop opens spans from the orchestrating
    domain only).  [gc] (default [false]) additionally samples
    [Gc.quick_stat] at creation and report time and emits the deltas as
    gauges. *)

val enabled : t -> bool

val set_iteration : t -> int -> unit
(** Tag subsequent span events with the given placement iteration
    (events before the first call are tagged [-1]). *)

val start : ?worker:int -> t -> kernel -> unit
(** Open a span.  Spans nest; a nested span's time is excluded from the
    parent's self time. *)

val stop : ?worker:int -> t -> kernel -> unit
(** Close the innermost open span.  Unbalanced calls are forgiven (a
    stray [stop] on an empty stack is ignored). *)

val span : ?worker:int -> t -> kernel -> (unit -> 'a) -> 'a
(** [span t k f] = [start t k; f ()] with a guaranteed [stop] on both
    return and exception.  Convenience for cold call sites; hot loops
    should pair {!start}/{!stop} directly to avoid the closure. *)

val add : t -> string -> float -> unit
(** Add to a named counter (created at first use, insertion-ordered).
    Cold path: string-keyed. *)

val gauge : t -> string -> float -> unit
(** Overwrite a named gauge (last write wins). *)

(** Aggregated per-kernel timings, merged across workers. *)
type stat = {
  st_kernel : kernel;
  st_calls : int;
  st_cum : float;  (** cumulative (inclusive) seconds *)
  st_self : float;  (** self seconds: cum minus nested spans *)
  st_min : float;  (** fastest single call, inclusive seconds *)
  st_max : float;  (** slowest single call, inclusive seconds *)
}

val stats : t -> stat list
(** Kernels with at least one completed span, in {!all_kernels} order. *)

val counters : t -> (string * float) list
(** Counters then gauges, each in insertion order. *)

val pp_report : Format.formatter -> t -> unit
(** The [--profile] table: per-kernel calls / self / cum / min / max /
    self%%, a coverage line (accounted self time vs [core.run] wall
    time), then counters and gauges. *)

val write_trace : t -> string -> unit
(** Write the JSONL trace: one [meta] line, then every span event in
    worker order ([{"ev":"b"|"e","k":...,"w":...,"iter":...,"t":...}],
    [t] in seconds relative to recorder creation), then counters
    ([{"ev":"c",...}]) and gauges ([{"ev":"g",...}]). *)
