(* Per-kernel observability: monotonic scoped spans, counters/gauges,
   aggregation and a JSONL trace.  See obs.mli for the model.

   Hot-path representation: everything is an [int].  Nanosecond stamps
   fit a 63-bit int for ~292 years, kernels are a closed enum, and span
   events pack (iteration, kernel, begin/end) into one tagged int, so
   recording touches only unboxed int arrays — no per-span allocation
   beyond the boxed int64 returned by the clock primitive.  The
   disabled instance tests one boolean and returns. *)

module Clock = struct
  external now_ns : unit -> (int64[@unboxed])
    = "dgp_obs_clock_ns_byte" "dgp_obs_clock_ns"
  [@@noalloc]

  let now () = Int64.to_float (now_ns ()) *. 1e-9
end

let tick () = Int64.to_int (Clock.now_ns ())

external peak_rss_raw : unit -> (float[@unboxed])
  = "dgp_obs_peak_rss_byte" "dgp_obs_peak_rss"
[@@noalloc]

(* Fallback for kernels whose getrusage does not fill ru_maxrss: the
   VmHWM line of /proc/self/status, reported in kB. *)
let proc_vmhwm_bytes () =
  match open_in "/proc/self/status" with
  | exception _ -> 0.0
  | ic ->
    let v = ref 0.0 in
    (try
       while !v = 0.0 do
         let line = input_line ic in
         if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
           Scanf.sscanf (String.sub line 6 (String.length line - 6))
             " %f" (fun kb -> v := kb *. 1024.0)
       done
     with End_of_file | Scanf.Scan_failure _ | Failure _ -> ());
    close_in_noerr ic;
    !v

let peak_rss_bytes () =
  let v = peak_rss_raw () in
  if v > 0.0 then v else proc_vmhwm_bytes ()

type kernel =
  | Core_run
  | Core_trace
  | Wirelength
  | Density_splat
  | Density_dct
  | Density_grad
  | Steiner_rebuild
  | Steiner_refresh
  | Sta_exact
  | Diff_forward
  | Diff_backward
  | Netweight_update
  | Pathweight_update
  | Optim_step
  | Paths_analyze
  | Paths_enumerate
  | Legalize
  | Par_dispatch
  | Par_wait
  | Steiner_lut
  | Steiner_dirty
  | Steiner_full
  | Sta_incremental
  | Serve_parse
  | Serve_update
  | Serve_query
  | Route_rudy
  | Route_overflow
  | Route_inflate
  | Cluster_coarsen
  | Cluster_interp
  | Cluster_refine

let kernel_id = function
  | Core_run -> 0
  | Core_trace -> 1
  | Wirelength -> 2
  | Density_splat -> 3
  | Density_dct -> 4
  | Density_grad -> 5
  | Steiner_rebuild -> 6
  | Steiner_refresh -> 7
  | Sta_exact -> 8
  | Diff_forward -> 9
  | Diff_backward -> 10
  | Netweight_update -> 11
  | Pathweight_update -> 12
  | Optim_step -> 13
  | Paths_analyze -> 14
  | Paths_enumerate -> 15
  | Legalize -> 16
  | Par_dispatch -> 17
  | Par_wait -> 18
  | Steiner_lut -> 19
  | Steiner_dirty -> 20
  | Steiner_full -> 21
  | Sta_incremental -> 22
  | Serve_parse -> 23
  | Serve_update -> 24
  | Serve_query -> 25
  | Route_rudy -> 26
  | Route_overflow -> 27
  | Route_inflate -> 28
  | Cluster_coarsen -> 29
  | Cluster_interp -> 30
  | Cluster_refine -> 31

(* NOTE: pack_tag reserves 5 bits for the kernel id, so this enum is
   full at 32 entries; widen the tag before adding kernel 33. *)
let n_kernels = 32
let core_run_id = 0

let all_kernels =
  [ Core_run; Core_trace; Wirelength; Density_splat; Density_dct;
    Density_grad; Steiner_rebuild; Steiner_lut; Steiner_dirty;
    Steiner_full; Steiner_refresh; Sta_exact; Sta_incremental;
    Diff_forward; Diff_backward; Netweight_update; Pathweight_update;
    Optim_step; Paths_analyze; Paths_enumerate; Legalize; Route_rudy;
    Route_overflow; Route_inflate; Cluster_coarsen; Cluster_interp;
    Cluster_refine; Par_dispatch;
    Par_wait; Serve_parse; Serve_update; Serve_query ]

let kernel_name = function
  | Core_run -> "core.run"
  | Core_trace -> "core.trace"
  | Wirelength -> "wirelength"
  | Density_splat -> "density.splat"
  | Density_dct -> "density.dct"
  | Density_grad -> "density.grad"
  | Steiner_rebuild -> "steiner.rebuild"
  | Steiner_refresh -> "steiner.refresh"
  | Sta_exact -> "sta.exact"
  | Diff_forward -> "difftimer.fwd"
  | Diff_backward -> "difftimer.bwd"
  | Netweight_update -> "netweight.update"
  | Pathweight_update -> "pathweight.update"
  | Optim_step -> "optim.step"
  | Paths_analyze -> "paths.analyze"
  | Paths_enumerate -> "paths.enumerate"
  | Legalize -> "legalize"
  | Par_dispatch -> "parallel.dispatch"
  | Par_wait -> "parallel.wait"
  | Steiner_lut -> "steiner.lut"
  | Steiner_dirty -> "steiner.dirty"
  | Steiner_full -> "steiner.full"
  | Sta_incremental -> "sta.incremental"
  | Serve_parse -> "serve.parse"
  | Serve_update -> "serve.update"
  | Serve_query -> "serve.query"
  | Route_rudy -> "route.rudy"
  | Route_overflow -> "route.overflow"
  | Route_inflate -> "route.inflate"
  | Cluster_coarsen -> "cluster.coarsen"
  | Cluster_interp -> "cluster.interp"
  | Cluster_refine -> "cluster.refine"

let name_of_id =
  let a = Array.make n_kernels "" in
  List.iter (fun k -> a.(kernel_id k) <- kernel_name k) all_kernels;
  a

(* Span event tag: bit 0 = kind (0 begin, 1 end), bits 1-5 = kernel id,
   bits 6.. = iteration (signed; -1 before the first set_iteration). *)
let pack_tag ~iter ~kid ~kind = (iter lsl 6) lor (kid lsl 1) lor kind
let tag_iter tag = tag asr 6
let tag_kid tag = (tag lsr 1) land 0x1f
let tag_kind tag = tag land 1

type wstate = {
  (* open-span stack *)
  mutable fr_kernel : int array;
  mutable fr_start : int array;
  mutable fr_child : int array;
  mutable fr_depth : int;
  (* event log *)
  mutable ev_tag : int array;
  mutable ev_ns : int array;
  mutable ev_len : int;
  (* per-kernel aggregation, all in ns *)
  calls : int array;
  cum : int array;
  self : int array;
  self_in : int array;  (* self time of spans nested inside core.run *)
  mn : int array;
  mx : int array;
  mutable run_depth : int;  (* open Core_run frames *)
}

type t = {
  enabled : bool;
  t0 : int;
  mutable iter : int;
  ws : wstate array;
  mutable cnt : (string * float ref) list;  (* reversed insertion order *)
  mutable gg : (string * float ref) list;  (* reversed insertion order *)
  gc0 : Gc.stat option;
}

let disabled =
  { enabled = false; t0 = 0; iter = -1; ws = [||]; cnt = []; gg = [];
    gc0 = None }

let make_wstate () =
  { fr_kernel = Array.make 64 0;
    fr_start = Array.make 64 0;
    fr_child = Array.make 64 0;
    fr_depth = 0;
    ev_tag = Array.make 4096 0;
    ev_ns = Array.make 4096 0;
    ev_len = 0;
    calls = Array.make n_kernels 0;
    cum = Array.make n_kernels 0;
    self = Array.make n_kernels 0;
    self_in = Array.make n_kernels 0;
    mn = Array.make n_kernels max_int;
    mx = Array.make n_kernels 0;
    run_depth = 0 }

let create ?(gc = false) ?(workers = 1) () =
  { enabled = true;
    t0 = tick ();
    iter = -1;
    ws = Array.init (max 1 workers) (fun _ -> make_wstate ());
    cnt = [];
    gg = [];
    gc0 = (if gc then Some (Gc.quick_stat ()) else None) }

let enabled t = t.enabled
let set_iteration t i = if t.enabled then t.iter <- i

let grow a len = Array.append a (Array.make len 0)

let push_event w tag ns =
  let n = Array.length w.ev_tag in
  if w.ev_len = n then begin
    w.ev_tag <- grow w.ev_tag n;
    w.ev_ns <- grow w.ev_ns n
  end;
  w.ev_tag.(w.ev_len) <- tag;
  w.ev_ns.(w.ev_len) <- ns;
  w.ev_len <- w.ev_len + 1

let start ?(worker = 0) t k =
  if t.enabled then begin
    let w = t.ws.(worker) in
    let d = w.fr_depth in
    if d = Array.length w.fr_kernel then begin
      w.fr_kernel <- grow w.fr_kernel d;
      w.fr_start <- grow w.fr_start d;
      w.fr_child <- grow w.fr_child d
    end;
    let kid = kernel_id k in
    let now = tick () in
    w.fr_kernel.(d) <- kid;
    w.fr_start.(d) <- now;
    w.fr_child.(d) <- 0;
    w.fr_depth <- d + 1;
    if kid = core_run_id then w.run_depth <- w.run_depth + 1;
    push_event w (pack_tag ~iter:t.iter ~kid ~kind:0) now
  end

let stop ?(worker = 0) t _k =
  if t.enabled then begin
    let w = t.ws.(worker) in
    if w.fr_depth > 0 then begin
      let now = tick () in
      let d = w.fr_depth - 1 in
      w.fr_depth <- d;
      (* attribute to the frame actually open, so traces stay balanced
         even if a caller's [stop] kernel disagrees with its [start] *)
      let kid = w.fr_kernel.(d) in
      let elapsed = now - w.fr_start.(d) in
      let selfns = elapsed - w.fr_child.(d) in
      w.calls.(kid) <- w.calls.(kid) + 1;
      w.cum.(kid) <- w.cum.(kid) + elapsed;
      w.self.(kid) <- w.self.(kid) + selfns;
      if kid = core_run_id then w.run_depth <- w.run_depth - 1
      else if w.run_depth > 0 then
        w.self_in.(kid) <- w.self_in.(kid) + selfns;
      if elapsed < w.mn.(kid) then w.mn.(kid) <- elapsed;
      if elapsed > w.mx.(kid) then w.mx.(kid) <- elapsed;
      if d > 0 then w.fr_child.(d - 1) <- w.fr_child.(d - 1) + elapsed;
      push_event w (pack_tag ~iter:t.iter ~kid ~kind:1) now
    end
  end

let span ?(worker = 0) t k f =
  if not t.enabled then f ()
  else begin
    start ~worker t k;
    match f () with
    | v -> stop ~worker t k; v
    | exception e -> stop ~worker t k; raise e
  end

let add t name v =
  if t.enabled then
    match List.assoc_opt name t.cnt with
    | Some r -> r := !r +. v
    | None -> t.cnt <- (name, ref v) :: t.cnt

let gauge t name v =
  if t.enabled then
    match List.assoc_opt name t.gg with
    | Some r -> r := v
    | None -> t.gg <- (name, ref v) :: t.gg

let gc_deltas t =
  match t.gc0 with
  | None -> []
  | Some s0 ->
    let s1 = Gc.quick_stat () in
    [ ("gc.minor_words", s1.Gc.minor_words -. s0.Gc.minor_words);
      ("gc.promoted_words", s1.Gc.promoted_words -. s0.Gc.promoted_words);
      ("gc.major_words", s1.Gc.major_words -. s0.Gc.major_words);
      ( "gc.minor_collections",
        float_of_int (s1.Gc.minor_collections - s0.Gc.minor_collections) );
      ( "gc.major_collections",
        float_of_int (s1.Gc.major_collections - s0.Gc.major_collections) ) ]

let counters t =
  List.rev_map (fun (n, r) -> (n, !r)) t.cnt
  @ List.rev_map (fun (n, r) -> (n, !r)) t.gg
  @ gc_deltas t

type stat = {
  st_kernel : kernel;
  st_calls : int;
  st_cum : float;
  st_self : float;
  st_min : float;
  st_max : float;
}

let sec ns = float_of_int ns *. 1e-9

(* Merge per-worker aggregates in worker-index order (deterministic). *)
let stats t =
  List.filter_map
    (fun k ->
      let kid = kernel_id k in
      let calls = ref 0 and cum = ref 0 and self = ref 0 in
      let mn = ref max_int and mx = ref 0 in
      Array.iter
        (fun w ->
          if w.calls.(kid) > 0 then begin
            calls := !calls + w.calls.(kid);
            cum := !cum + w.cum.(kid);
            self := !self + w.self.(kid);
            if w.mn.(kid) < !mn then mn := w.mn.(kid);
            if w.mx.(kid) > !mx then mx := w.mx.(kid)
          end)
        t.ws;
      if !calls = 0 then None
      else
        Some
          { st_kernel = k; st_calls = !calls; st_cum = sec !cum;
            st_self = sec !self; st_min = sec !mn; st_max = sec !mx })
    all_kernels

let pp_report ppf t =
  if not t.enabled then Format.fprintf ppf "profiling disabled@."
  else begin
    let sts = stats t in
    let core_cum =
      match List.find_opt (fun s -> s.st_kernel = Core_run) sts with
      | Some s -> Some s.st_cum
      | None -> None
    in
    let total_self =
      List.fold_left (fun acc s -> acc +. s.st_self) 0. sts
    in
    let denom =
      match core_cum with
      | Some c when c > 0. -> c
      | _ -> if total_self > 0. then total_self else 1.
    in
    Format.fprintf ppf "@[<v>per-kernel profile (monotonic clock)@,";
    Format.fprintf ppf "%-18s %8s %12s %12s %10s %10s %7s@," "kernel" "calls"
      "self(ms)" "cum(ms)" "min(ms)" "max(ms)" "self%";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-18s %8d %12.3f %12.3f %10.3f %10.3f %6.1f%%@,"
          (kernel_name s.st_kernel) s.st_calls (s.st_self *. 1e3)
          (s.st_cum *. 1e3) (s.st_min *. 1e3) (s.st_max *. 1e3)
          (100. *. s.st_self /. denom))
      sts;
    (match core_cum with
    | Some c when c > 0. ->
      (* only self time of spans nested inside core.run counts towards
         coverage; standalone kernels (final score, legalizer) do not *)
      let attributed =
        Array.fold_left
          (fun acc w -> acc + Array.fold_left ( + ) 0 w.self_in)
          0 t.ws
      in
      Format.fprintf ppf
        "coverage: %.1f%% of core.run wall time (%.3f ms) attributed to \
         kernel self times@,"
        (100. *. sec attributed /. c) (c *. 1e3)
    | _ -> ());
    let cs = counters t in
    if cs <> [] then begin
      Format.fprintf ppf "counters:@,";
      List.iter (fun (n, v) -> Format.fprintf ppf "  %-28s %.6g@," n v) cs
    end;
    Format.fprintf ppf "@]"
  end

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_trace t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if t.enabled then begin
        Printf.fprintf oc
          "{\"ev\":\"meta\",\"clock\":\"monotonic\",\"workers\":%d,\
           \"kernels\":[%s]}\n"
          (Array.length t.ws)
          (String.concat ","
             (List.map
                (fun k -> Printf.sprintf "\"%s\"" (kernel_name k))
                all_kernels));
        Array.iteri
          (fun wi w ->
            for i = 0 to w.ev_len - 1 do
              let tag = w.ev_tag.(i) in
              Printf.fprintf oc
                "{\"ev\":\"%s\",\"k\":\"%s\",\"w\":%d,\"iter\":%d,\
                 \"t\":%.9f}\n"
                (if tag_kind tag = 0 then "b" else "e")
                name_of_id.(tag_kid tag) wi (tag_iter tag)
                (sec (w.ev_ns.(i) - t.t0))
            done)
          t.ws;
        List.iter
          (fun (n, r) ->
            Printf.fprintf oc "{\"ev\":\"c\",\"k\":\"%s\",\"v\":%s}\n"
              (json_escape n) (json_float !r))
          (List.rev t.cnt);
        List.iter
          (fun (n, r) ->
            Printf.fprintf oc "{\"ev\":\"g\",\"k\":\"%s\",\"v\":%s}\n"
              (json_escape n) (json_float !r))
          (List.rev t.gg);
        List.iter
          (fun (n, v) ->
            Printf.fprintf oc "{\"ev\":\"g\",\"k\":\"%s\",\"v\":%s}\n"
              (json_escape n) (json_float v))
          (gc_deltas t)
      end)
