(** Differentiable-timing-driven global placement (the paper's
    contribution, §3.6, Fig. 7).

    The engine minimises Eq. 6:

    [sum_e WL(e; x, y) + lambda D(x, y)
       + t1 (-TNS_gamma(x, y)) + t2 (-WNS_gamma(x, y))]

    by first-order updates on all movable cell centers.  Three modes
    share the identical wirelength + density machinery and stop
    criterion, matching how Table 3 compares placers:

    - {!Wirelength_only}: the plain DREAMPlace-style baseline [16];
    - {!Net_weighting}: the state-of-the-art net-weighting baseline [24]
      (exact STA + per-net weight escalation);
    - {!Path_weighting}: the critical-path-extraction successor line
      (Shi et al., arXiv 2503.11674) — exact STA plus top-K worst-path
      enumeration ({!Paths}), escalating the weights of nets on
      violating paths;
    - {!Differentiable_timing}: this paper — gradients of the smoothed
      TNS/WNS flow through the differentiable STA engine into cell
      coordinates, activated once cells have spread (the paper starts
      timing around iteration 100), with [t1], [t2] grown 1% per
      iteration and Steiner trees rebuilt every 10 iterations. *)

(** How the timing weights t1/t2 evolve after activation.  [`Fixed] is
    the paper's published schedule (multiply by [growth] every
    iteration); [`Adaptive] implements the "dynamic updating strategies
    for timing weights" called out as future work in the paper's
    conclusion: weights only grow while the smoothed TNS is not
    improving, so pressure is added exactly when progress stalls. *)
type growth_policy = [ `Fixed | `Adaptive ]

type timing_config = {
  t1 : float;                   (** initial TNS weight (paper ~1e-2). *)
  t2 : float;                   (** initial WNS weight (paper ~1e-4). *)
  growth : float;               (** per-iteration growth (paper 1.01). *)
  growth_policy : growth_policy;
  gamma : float;                (** LSE smoothing width (paper ~100 ps). *)
  activation_overflow : float;  (** start timing once overflow drops below. *)
  steiner_period : int;         (** FLUTE call cadence (paper 10). *)
  steiner_dirty : float option;
      (** dirty-net rebuild threshold in gamma units: on a rebuild tick,
          only nets with a pin displaced more than
          [steiner_dirty *. gamma] (L-inf) since their last
          topologisation are re-topologised; the rest take the O(1)
          provenance refresh.  [None] rebuilds every net each tick;
          [Some 0.] is bit-identical to [None] (pin-level tracking). *)
  grad_clip : float option;
      (** preconditioning for timing gradients (the paper's other listed
          future work): when [Some k], each cell's timing gradient
          magnitude is clipped at [k] times the mean nonzero magnitude,
          taming the heavy-tailed pull of near-critical endpoints. *)
}

val default_timing : timing_config

type mode =
  | Wirelength_only
  | Net_weighting of Netweight.config
  | Path_weighting of Paths.Weight.config
  | Differentiable_timing of timing_config

type config = {
  mode : mode;
  max_iterations : int;
  min_iterations : int;
  stop_overflow : float;        (** shared stop criterion (Table 3). *)
  learning_rate : float option; (** None: region side / 350. *)
  lr_decay : float;
  optimizer : Optim.algorithm;
  wirelength_gamma : float option; (** None: 1% of region side. *)
  density_bins : int option;
  density_relax : float option;
      (** grid relaxation: when [Some f], iterate on a half-resolution
          density grid until the overflow drops to
          [max 1.0 f *. stop_overflow], then rebuild the density model
          at the configured resolution mid-run — the lambda schedule,
          step size and optimizer state carry straight over, so only
          the final approach pays the full-resolution DCT.  Meant for
          warm starts (the multilevel finest refine); [None] (the
          default) keeps one grid throughout. *)
  target_density : float;
  lambda_relative : float;
      (** initial density weight as a fraction of the wirelength
          gradient norm. *)
  lambda_growth : float;
  init : [ `Center | `Keep ];
      (** [`Center]: start all movable cells near the region center
          (standard analytical-placement warm start); [`Keep]: use the
          positions already in the design. *)
  trace_timing_period : int;
      (** run exact STA for the trace every k iterations (0 = never).
          Wirelength-only mode uses a dedicated timer; net- and
          path-weighting modes reuse their own exact timer (avoiding a
          second STA when a weight update already measured this
          iteration); differentiable timing traces from its own
          metrics.  Trace points between full engine runs re-propagate
          through [Sta.Incremental] (sparse cone updates on frozen
          Steiner topologies) rather than paying a full [Timer.run]:
          only the first trace point (wirelength-only) and the weight
          updates themselves rebuild topologies.  Powers Figure 8's
          baseline curves. *)
  routability : Route.config option;
      (** when set, run the RUDY + cell-inflation loop between
          placement rounds: once density overflow drops below
          [rt_check_overflow], every [rt_check_period] iterations the
          RUDY congestion map is measured and, if any bin exceeds
          [rt_target] utilization, cells in congested bins are
          temporarily bloated (bounded by [rt_max_rounds] rounds and a
          [rt_max_ratio] per-cell area cap) so the density penalty
          spreads them apart.  Original cell sizes are restored before
          the final metrics.  On designs that never congest the hook
          only reads, leaving positions bit-identical to
          [routability = None].  [None] (the default) disables the
          loop entirely. *)
  collect_trace : bool;
      (** when [false], skip the per-iteration HPWL measurement and
          return an empty [res_trace] (the stop criterion and
          [res_hpwl] are unaffected).  The V-cycle disables it on
          coarse levels, whose traces are discarded. *)
  verbose : bool;
}

val default_config : config

type trace_point = {
  tp_iteration : int;
  tp_hpwl : float;
  tp_overflow : float;
  tp_wns : float option;
      (** last measured WNS, carried forward between STA calls; [None]
          only before the first measurement. *)
  tp_tns : float option;
  tp_lambda : float;
}

type result = {
  res_hpwl : float;
  res_overflow : float;
  res_iterations : int;
  res_runtime : float;           (** wall-clock seconds (monotonic). *)
  res_timing_active_at : int option;
      (** iteration at which the timing objective switched on. *)
  res_trace : trace_point list;  (** chronological. *)
  res_route : Route.summary option;
      (** final congestion summary (RUDY on the finished placement,
          original cell sizes); [None] unless routability was on. *)
  res_inflation_rounds : int;
      (** inflation rounds actually executed (0 when routability is
          off or the design never congested). *)
}

val run : ?pool:Parallel.pool -> ?obs:Obs.t -> config -> Sta.Graph.t -> result
(** Optimise the placement in place (the design inside [graph] is
    mutated).  Returns final metrics and the per-iteration trace.
    [pool] parallelises every per-iteration kernel — wirelength,
    density, Steiner/RC maintenance, STA and the differentiable timer —
    and pooled runs are bit-identical to sequential ones (all parallel
    reductions split work independently of the pool and merge partials
    in a fixed order).

    [obs] (default {!Obs.disabled}) threads a span through every one of
    those kernels plus the optimizer step and the per-iteration
    bookkeeping, all under one [core.run] root span with iteration
    tags; with it disabled the run is bit-identical to an
    un-instrumented one. *)

(** Multilevel (coarsen/uncoarsen V-cycle) placement.  [ml_levels] is
    the total number of placement levels: 1 means flat ({!run_multilevel}
    is then exactly {!run}, bit for bit), [k > 1] requests up to [k - 1]
    {!Cluster} coarsening steps (fewer when the design stops reducing
    or drops below [ml_min_cells] movable cells).  [ml_cluster_ratio]
    and [ml_max_net_degree] are passed to {!Cluster.build}.  The refine
    run at [d] coarsening steps below the coarsest placement is capped
    at [max_iterations *. ml_refine_fraction ** d] iterations with the
    {!config}'s stop criterion and a [ml_refine_min_iterations]
    minimum, so warm-started levels exit as soon as they meet the same
    overflow target the flat engine uses. *)
type multilevel = {
  ml_levels : int;
  ml_cluster_ratio : float;
  ml_max_net_degree : int;
  ml_min_cells : int;
  ml_refine_fraction : float;
  ml_refine_min_iterations : int;
  ml_refine_lambda_boost : float;
      (** multiplier on [lambda_relative] for refine runs: a
          warm-started level resumes an almost-spread placement, so its
          initial density weight calibration should not restart from
          the flat schedule's cold start — most of the multiplicative
          lambda ramp has already happened on coarser (cheaper)
          levels. *)
  ml_refine_lr_scale : float;
      (** multiplier on the step size for refine runs: warm starts are
          step-limited rather than schedule-limited (short-range
          untangling against a strong boosted density force), so
          larger steps cut the expensive finest-level iteration count
          and improve wirelength at the same time. *)
}

val default_multilevel : multilevel
(** 2 levels, ratio 4.0, net-degree cap 16, 1000-cell floor, refine
    fraction 0.4, refine minimum 20, lambda boost 20, step scale 2.5. *)

val run_multilevel :
  ?pool:Parallel.pool ->
  ?obs:Obs.t ->
  ?ml:multilevel ->
  config ->
  Sta.Graph.t ->
  result
(** V-cycle driver: coarsen ({!Cluster.build}, [cluster.coarsen] span),
    place the coarsest level with {!run} (wirelength mode, center
    init, half-resolution grid, double-speed anneal), then alternately
    prolongate positions ([cluster.interp]) and refine
    ([cluster.refine] spans wrapping {!run} with [`Keep] init, boosted
    lambda, enlarged steps and a decaying iteration cap) until the
    finest level — where the configured [mode], [routability] loop and
    trace cadence apply, and the density grid starts relaxed
    ([density_relax]).
    Coarse levels reuse the same [pool] and [obs].  The returned
    [result] is the finest run's, with [res_iterations] summed over all
    levels and [res_runtime] covering the whole V-cycle (coarsening
    included).  Deterministic: coarsening is sequential and {!run} is
    bit-identical at any domain count, so the full V-cycle is too. *)

val score : ?obs:Obs.t -> Sta.Graph.t -> Sta.Timer.report * float
(** Convenience: exact STA report and HPWL of the current placement
    (used to fill Table 3 after legalisation). *)
