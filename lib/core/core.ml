type growth_policy = [ `Fixed | `Adaptive ]

type timing_config = {
  t1 : float;
  t2 : float;
  growth : float;
  growth_policy : growth_policy;
  gamma : float;
  activation_overflow : float;
  steiner_period : int;
  steiner_dirty : float option;
  grad_clip : float option;
}

(* The paper sets t1 ~ 1e-2, t2 ~ 1e-4 and gamma ~ 100 ps for ~10 ns-scale
   industrial designs.  Our synthetic designs run at ~1 ns clocks with a
   smaller wirelength term, so the equivalents rescale: gamma is ~2% of
   the clock period and t1/t2 are calibrated so the timing gradient is a
   comparable fraction of the wirelength gradient (see EXPERIMENTS.md). *)
let default_timing =
  { t1 = 0.10; t2 = 0.10; growth = 1.01; growth_policy = `Fixed;
    gamma = 20.0; activation_overflow = 0.45; steiner_period = 10;
    steiner_dirty = Some 0.25; grad_clip = None }

type mode =
  | Wirelength_only
  | Net_weighting of Netweight.config
  | Path_weighting of Paths.Weight.config
  | Differentiable_timing of timing_config

type config = {
  mode : mode;
  max_iterations : int;
  min_iterations : int;
  stop_overflow : float;
  learning_rate : float option;
  lr_decay : float;
  optimizer : Optim.algorithm;
  wirelength_gamma : float option;
  density_bins : int option;
  density_relax : float option;
  target_density : float;
  lambda_relative : float;
  lambda_growth : float;
  init : [ `Center | `Keep ];
  trace_timing_period : int;
  routability : Route.config option;
  collect_trace : bool;
  verbose : bool;
}

let default_config =
  { mode = Wirelength_only;
    max_iterations = 600;
    min_iterations = 80;
    stop_overflow = 0.08;
    learning_rate = None;
    lr_decay = 0.999;
    optimizer = Optim.adam;
    wirelength_gamma = None;
    density_bins = None;
    density_relax = None;
    target_density = 1.0;
    lambda_relative = 0.05;
    lambda_growth = 1.035;
    init = `Center;
    trace_timing_period = 0;
    routability = None;
    collect_trace = true;
    verbose = false }

type trace_point = {
  tp_iteration : int;
  tp_hpwl : float;
  tp_overflow : float;
  tp_wns : float option;
  tp_tns : float option;
  tp_lambda : float;
}

type result = {
  res_hpwl : float;
  res_overflow : float;
  res_iterations : int;
  res_runtime : float;
  res_timing_active_at : int option;
  res_trace : trace_point list;
  res_route : Route.summary option;
  res_inflation_rounds : int;
}

let l1_norm mask g =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> if mask.(i) then acc := !acc +. Float.abs v) g;
  !acc

(* Timing-gradient preconditioning: cap each cell's gradient vector at
   [k] times the mean nonzero magnitude. *)
let clip_gradients mask gx gy k =
  let n = Array.length gx in
  let total = ref 0.0 and count = ref 0 in
  for i = 0 to n - 1 do
    if mask.(i) then begin
      let m = Float.hypot gx.(i) gy.(i) in
      if m > 0.0 then begin
        total := !total +. m;
        incr count
      end
    end
  done;
  if !count > 0 then begin
    let cap = k *. !total /. float_of_int !count in
    for i = 0 to n - 1 do
      if mask.(i) then begin
        let m = Float.hypot gx.(i) gy.(i) in
        if m > cap then begin
          let s = cap /. m in
          gx.(i) <- gx.(i) *. s;
          gy.(i) <- gy.(i) *. s
        end
      end
    done
  end

(* A deterministic tiny jitter so coincident cells separate. *)
let hash_float i salt =
  let h = ref (i * 2654435761 + salt) in
  h := !h lxor (!h lsr 13);
  h := !h * 1274126177;
  h := !h lxor (!h lsr 16);
  float_of_int (!h land 0xFFFF) /. 65536.0

let init_positions design =
  let region = design.Netlist.region in
  let c = Geometry.Rect.center region in
  let w = Geometry.Rect.width region and h = Geometry.Rect.height region in
  Array.iter
    (fun (cell : Netlist.cell) ->
      if not cell.Netlist.fixed then begin
        cell.Netlist.x <-
          c.Geometry.Point.x
          +. (0.12 *. w *. (hash_float cell.Netlist.cell_id 17 -. 0.5));
        cell.Netlist.y <-
          c.Geometry.Point.y
          +. (0.12 *. h *. (hash_float cell.Netlist.cell_id 43 -. 0.5))
      end)
    design.Netlist.cells

type multilevel = {
  ml_levels : int;
  ml_cluster_ratio : float;
  ml_max_net_degree : int;
  ml_min_cells : int;
  ml_refine_fraction : float;
  ml_refine_min_iterations : int;
  ml_refine_lambda_boost : float;
  ml_refine_lr_scale : float;
}

let default_multilevel =
  { ml_levels = 2;
    ml_cluster_ratio = 4.0;
    ml_max_net_degree = 16;
    ml_min_cells = 1000;
    ml_refine_fraction = 0.4;
    ml_refine_min_iterations = 20;
    ml_refine_lambda_boost = 20.0;
    ml_refine_lr_scale = 2.5 }

let score ?(obs = Obs.disabled) graph =
  let timer = Sta.Timer.create graph in
  let report = Sta.Timer.run ~obs timer in
  (report, Netlist.total_hpwl graph.Sta.Graph.design)

let run ?pool ?(obs = Obs.disabled) config graph =
  let design = graph.Sta.Graph.design in
  let region = design.Netlist.region in
  let side = Float.max (Geometry.Rect.width region) (Geometry.Rect.height region) in
  let start_time = Obs.Clock.now () in
  Obs.start obs Obs.Core_run;
  (match config.init with
   | `Center -> init_positions design
   | `Keep -> ());
  Netlist.reset_weights design;
  let ncells = Netlist.num_cells design in
  let mask =
    Array.map (fun (c : Netlist.cell) -> not c.Netlist.fixed) design.Netlist.cells
  in
  let wl_gamma =
    match config.wirelength_gamma with Some g -> g | None -> 0.01 *. side
  in
  let wl = Wirelength.create ~gamma:wl_gamma design in
  (* a ref: routability inflation changes cell footprints, which
     invalidates the area totals cached at Density.create time, so the
     model is rebuilt after every inflation round *)
  let full_bins =
    match config.density_bins with
    | Some b -> b
    | None -> Density.default_bins design
  in
  (* Grid relaxation ([density_relax]): iterate on a half-resolution
     density grid until the overflow is within the configured factor of
     the stop target, then rebuild at full resolution with the lambda
     schedule, step size and optimizer state carrying straight over.
     The expensive full-resolution DCT is paid only for the final
     approach. *)
  let relaxed = ref (config.density_relax <> None) in
  let current_bins () =
    if !relaxed then max 16 (full_bins / 2) else full_bins
  in
  let dens =
    ref
      (Density.create ~bins:(current_bins ())
         ~target_density:config.target_density design)
  in
  let rudy, inflate =
    match config.routability with
    | Some rcfg ->
      ( Some
          (Route.Rudy.create ~capacity:rcfg.Route.rt_capacity
             ~pin_weight:rcfg.Route.rt_pin_weight design),
        Some (Route.Inflate.create design) )
    | None -> (None, None)
  in
  let opt_x = Optim.create config.optimizer ~n:ncells in
  let opt_y = Optim.create config.optimizer ~n:ncells in
  let xs = Array.map (fun (c : Netlist.cell) -> c.Netlist.x) design.Netlist.cells in
  let ys = Array.map (fun (c : Netlist.cell) -> c.Netlist.y) design.Netlist.cells in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  let dgx = Array.make ncells 0.0 and dgy = Array.make ncells 0.0 in
  let sync_to_design () =
    Array.iteri
      (fun i (c : Netlist.cell) ->
        if mask.(i) then begin
          let hw = c.Netlist.width /. 2.0 and hh = c.Netlist.height /. 2.0 in
          xs.(i) <-
            Geometry.clamp ~lo:(region.Geometry.Rect.lx +. hw)
              ~hi:(region.Geometry.Rect.hx -. hw) xs.(i);
          ys.(i) <-
            Geometry.clamp ~lo:(region.Geometry.Rect.ly +. hh)
              ~hi:(region.Geometry.Rect.hy -. hh) ys.(i);
          c.Netlist.x <- xs.(i);
          c.Netlist.y <- ys.(i)
        end)
      design.Netlist.cells
  in
  sync_to_design ();
  (* mode-specific engines, created lazily so unused modes cost nothing *)
  let netweight =
    match config.mode with
    | Net_weighting cfg -> Some (Netweight.create ~config:cfg graph)
    | Wirelength_only | Path_weighting _ | Differentiable_timing _ -> None
  in
  let pathweight =
    match config.mode with
    | Path_weighting cfg -> Some (Paths.Weight.create ~config:cfg graph)
    | Wirelength_only | Net_weighting _ | Differentiable_timing _ -> None
  in
  let difftimer, timing_cfg =
    match config.mode with
    | Differentiable_timing cfg ->
      (Some (Difftimer.create ~gamma:cfg.gamma graph), cfg)
    | Wirelength_only | Net_weighting _ | Path_weighting _ ->
      (None, default_timing)
  in
  (* Modes that own a timer reuse it for trace points (the net- and
     path-weighting engines' exact timers, the differentiable timer's
     own metrics); only wirelength-only needs a dedicated trace timer.
     Trace points between full engine runs go through Sta.Incremental
     (sparse cone re-propagation on frozen topologies) instead of paying
     a full Timer.run; the incremental view is created lazily at the
     first between-run trace point and re-absorbed whenever the engine
     performs its own full run (weight updates). *)
  let trace_timer =
    if config.trace_timing_period > 0
       && (match config.mode with Wirelength_only -> true | _ -> false)
    then Some (Sta.Timer.create graph)
    else None
  in
  let trace_inc = ref None in
  let trace_inc_of timer =
    match !trace_inc with
    | Some inc -> inc
    | None ->
      let inc = Sta.Incremental.of_timer timer in
      trace_inc := Some inc;
      inc
  in
  let trace_absorb report =
    match !trace_inc with
    | Some inc -> Sta.Incremental.absorb inc report
    | None -> ()
  in
  let trace_incremental inc =
    Array.iteri
      (fun c movable -> if movable then Sta.Incremental.touch_cell inc c)
      mask;
    Sta.Incremental.update ~obs inc
  in
  let lambda = ref 0.0 in
  let lr0 = match config.learning_rate with Some l -> l | None -> side /. 350.0 in
  let lr = ref lr0 in
  let timing_active_at = ref None in
  let w_tns = ref timing_cfg.t1 and w_wns = ref timing_cfg.t2 in
  let prev_tns_smooth = ref neg_infinity in
  let tgx = Array.make ncells 0.0 and tgy = Array.make ncells 0.0 in
  let trace = ref [] in
  (* Last measured timing, carried forward between measurements so trace
     points between STA calls repeat the previous value instead of
     degenerating to NaN; [None] until the first measurement. *)
  let last_wns = ref None and last_tns = ref None in
  let record (report : Sta.Timer.report) =
    last_wns := Some report.Sta.Timer.setup_wns;
    last_tns := Some report.Sta.Timer.setup_tns
  in
  let final_iter = ref 0 in
  let stop = ref false in
  let iter = ref 0 in
  while (not !stop) && !iter < config.max_iterations do
    let i = !iter in
    Obs.set_iteration obs i;
    Array.fill gx 0 ncells 0.0;
    Array.fill gy 0 ncells 0.0;
    (* wirelength term (weighted when net weighting is active) *)
    ignore
      (Wirelength.evaluate wl ?pool ~obs ~weighted:true ~grad_x:gx ~grad_y:gy
         ());
    (* density term: compute separately to calibrate lambda *)
    Density.update ?pool ~obs !dens;
    let overflow = Density.overflow !dens in
    Array.fill dgx 0 ncells 0.0;
    Array.fill dgy 0 ncells 0.0;
    Density.gradient ?pool ~obs !dens ~scale:1.0 ~grad_x:dgx ~grad_y:dgy;
    (* Half-resolution grids under-report overflow, so the relaxed
       phase can never satisfy the stop criterion itself: the switch
       fires at [relax *. stop] (clamped >= stop) and the recomputed
       full-grid overflow takes over from this iteration on.  Lambda is
       rescaled by the gradient-norm ratio so the density force is
       continuous across the change of grid (coarser grids produce
       systematically smaller gradients). *)
    let overflow =
      match config.density_relax with
      | Some f
        when !relaxed && overflow <= Float.max 1.0 f *. config.stop_overflow
        ->
        relaxed := false;
        let d_old = l1_norm mask dgx +. l1_norm mask dgy in
        dens :=
          Density.create ~bins:(current_bins ())
            ~target_density:config.target_density design;
        Density.update ?pool ~obs !dens;
        Array.fill dgx 0 ncells 0.0;
        Array.fill dgy 0 ncells 0.0;
        Density.gradient ?pool ~obs !dens ~scale:1.0 ~grad_x:dgx ~grad_y:dgy;
        let d_new = Float.max 1e-12 (l1_norm mask dgx +. l1_norm mask dgy) in
        if i > 0 then lambda := !lambda *. d_old /. d_new;
        Density.overflow !dens
      | _ -> overflow
    in
    if i = 0 then begin
      let wl_norm = l1_norm mask gx +. l1_norm mask gy in
      let d_norm = Float.max 1e-12 (l1_norm mask dgx +. l1_norm mask dgy) in
      lambda := config.lambda_relative *. wl_norm /. d_norm
    end;
    for k = 0 to ncells - 1 do
      gx.(k) <- gx.(k) +. (!lambda *. dgx.(k));
      gy.(k) <- gy.(k) +. (!lambda *. dgy.(k))
    done;
    (* timing terms *)
    (match netweight with
     | Some nw ->
       if Netweight.should_update nw i then begin
         let report = Netweight.update ?pool ~obs nw in
         record report;
         trace_absorb report
       end
     | None -> ());
    (match pathweight with
     | Some pw ->
       if Paths.Weight.should_update pw i then begin
         let report = Paths.Weight.update ?pool ~obs pw in
         record report;
         trace_absorb report
       end
     | None -> ());
    (match difftimer with
     | Some dt ->
       if !timing_active_at = None && overflow < timing_cfg.activation_overflow
       then begin
         timing_active_at := Some i;
         if config.verbose then
           Format.eprintf "[core] timing objective active at iteration %d@." i
       end;
       (match !timing_active_at with
        | Some t0 ->
          let nets = Difftimer.nets dt in
          if (i - t0) mod max 1 timing_cfg.steiner_period = 0 then begin
            (* the dirty threshold scales with gamma: pin motion small
               relative to the LSE smoothing width cannot change which
               topology matters *)
            let dirty_threshold =
              match timing_cfg.steiner_dirty with
              | Some g when g >= 0.0 -> Some (g *. timing_cfg.gamma)
              | _ -> None
            in
            Sta.Nets.rebuild ?dirty_threshold ?pool ~obs nets
          end
          else Sta.Nets.refresh ?pool ~obs nets;
          let m = Difftimer.forward ?pool ~obs dt in
          Array.fill tgx 0 ncells 0.0;
          Array.fill tgy 0 ncells 0.0;
          Difftimer.backward ?pool ~obs dt ~w_tns:!w_tns ~w_wns:!w_wns
            ~grad_x:tgx ~grad_y:tgy;
          (match timing_cfg.grad_clip with
           | Some k -> clip_gradients mask tgx tgy k
           | None -> ());
          for c = 0 to ncells - 1 do
            gx.(c) <- gx.(c) +. tgx.(c);
            gy.(c) <- gy.(c) +. tgy.(c)
          done;
          let grow =
            match timing_cfg.growth_policy with
            | `Fixed -> true
            | `Adaptive ->
              (* add pressure only while timing is not improving *)
              m.Difftimer.tns_smooth <= !prev_tns_smooth
          in
          if grow then begin
            w_tns := !w_tns *. timing_cfg.growth;
            w_wns := !w_wns *. timing_cfg.growth
          end;
          prev_tns_smooth := m.Difftimer.tns_smooth;
          last_wns := Some m.Difftimer.wns;
          last_tns := Some m.Difftimer.tns
        | None -> ())
     | None -> ());
    if config.trace_timing_period > 0 && i mod config.trace_timing_period = 0
    then begin
      match trace_timer, netweight, pathweight with
      | Some timer, _, _ ->
        (match !trace_inc with
         | None ->
           (* First trace point: one full analysis seeds the
              incremental view; later points re-propagate cones only. *)
           let report = Sta.Timer.run ?pool ~obs timer in
           record report;
           trace_inc := Some (Sta.Incremental.of_timer ~report timer)
         | Some inc -> record (trace_incremental inc))
      | None, Some nw, _ when not (Netweight.should_update nw i) ->
        (* Net-weighting mode owns an exact timer already, fully run at
           every weight update (iteration 0 included): trace samples
           between updates re-propagate it incrementally on frozen
           topologies. *)
        record (trace_incremental (trace_inc_of (Netweight.timer nw)))
      | None, _, Some pw when not (Paths.Weight.should_update pw i) ->
        record (trace_incremental (trace_inc_of (Paths.Weight.timer pw)))
      | None, _, _ -> ()
    end;
    (* update *)
    Obs.start obs Obs.Optim_step;
    Optim.step opt_x ~lr:!lr ~params:xs ~grads:gx ~mask ();
    Optim.step opt_y ~lr:!lr ~params:ys ~grads:gy ~mask ();
    Obs.stop obs Obs.Optim_step;
    Obs.start obs Obs.Core_trace;
    sync_to_design ();
    (* The density weight anneals only while the placement is still too
       dense.  Flat runs never notice (meeting the target is the exit
       condition), but a warm-started refine held past the target by
       [min_iterations] polishes wirelength at frozen pressure instead
       of over-spreading. *)
    if overflow > config.stop_overflow then
      lambda := !lambda *. config.lambda_growth;
    lr := !lr *. config.lr_decay;
    (* The per-iteration HPWL exists only to feed the trace; skipping
       it when the caller will discard the trace (coarse V-cycle
       levels) removes a full sequential pass over every pin. *)
    if config.collect_trace then begin
      let hpwl = Netlist.total_hpwl design in
      trace :=
        { tp_iteration = i; tp_hpwl = hpwl; tp_overflow = overflow;
          tp_wns = !last_wns; tp_tns = !last_tns; tp_lambda = !lambda }
        :: !trace
    end;
    Obs.stop obs Obs.Core_trace;
    (* routability hook: once cells have spread enough for bin demand to
       be meaningful, periodically measure congestion and bloat cells in
       over-utilized bins.  When nothing is congested this path only
       reads, so zero-overflow runs stay bit-identical to
       routability-off ones. *)
    (match config.routability, rudy, inflate with
     | Some rcfg, Some rd, Some infl
       when overflow < rcfg.Route.rt_check_overflow
            && rcfg.Route.rt_check_period > 0
            && i mod rcfg.Route.rt_check_period = 0
            && (Route.Inflate.rounds infl < rcfg.Route.rt_max_rounds
                || Route.Inflate.rounds infl > 0) ->
       Route.Rudy.update ?pool ~obs rd;
       let s = Route.overflow ~obs rd in
       (* deflate first: cells whose bins fell back below target shed
          half their inflation excess, freeing area before any new
          inflation is decided on this (fresher) map.  A no-op until
          the first inflation round, so uncongested runs stay
          bit-identical to routability-off ones. *)
       let deflated = Route.Inflate.deflate ~obs rcfg infl rd in
       let inflated =
         if s.Route.ov_peak > rcfg.Route.rt_target then
           Route.Inflate.step ~obs rcfg infl rd
         else 0
       in
       if inflated > 0 || deflated > 0 then begin
         dens :=
           Density.create ~bins:(current_bins ())
             ~target_density:config.target_density design;
         if config.verbose then
           Format.eprintf
             "[core] it %4d  routability: peak %.2f rc %.2f, inflated \
              %d / deflated %d cells (round %d)@."
             i s.Route.ov_peak s.Route.ov_rc inflated deflated
             (Route.Inflate.rounds infl)
       end
     | _ -> ());
    if config.verbose && i mod 50 = 0 then begin
      let fmt = function
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "-"
      in
      Format.eprintf "[core] it %4d  hpwl %.3e  ovf %.3f  wns %s  tns %s@."
        i (Netlist.total_hpwl design) overflow (fmt !last_wns) (fmt !last_tns)
    end;
    final_iter := i + 1;
    if overflow <= config.stop_overflow && i >= config.min_iterations then
      stop := true;
    incr iter
  done;
  let inflation_rounds =
    match inflate with Some f -> Route.Inflate.rounds f | None -> 0
  in
  (* inflation is temporary: restore original footprints and rebuild the
     density model so final metrics are measured on true cell sizes *)
  (match inflate with
   | Some f when Route.Inflate.rounds f > 0 ->
     Route.Inflate.restore f;
     dens :=
       Density.create ~bins:(current_bins ())
         ~target_density:config.target_density design
   | _ -> ());
  Density.update ~obs !dens;
  let route_summary =
    match rudy with
    | Some rd ->
      Route.Rudy.update ?pool ~obs rd;
      Some (Route.overflow ~obs rd)
    | None -> None
  in
  Obs.stop obs Obs.Core_run;
  { res_hpwl = Netlist.total_hpwl design;
    res_overflow = Density.overflow !dens;
    res_iterations = !final_iter;
    res_runtime = Obs.Clock.now () -. start_time;
    res_timing_active_at = !timing_active_at;
    res_trace = List.rev !trace;
    res_route = route_summary;
    res_inflation_rounds = inflation_rounds }

(* The coarsen/uncoarsen V-cycle.  Coarse levels are placed as plain
   wirelength+density problems (cluster cells are [lib_cell = -1], so
   their timing graphs carry no arcs); the configured mode, routability
   loop and trace cadence apply only to the finest level.  The finest
   run starts from the interpolated positions ([`Keep]) with a decayed
   iteration cap and a small floor, so a warm-started level stops as
   soon as it meets the same overflow target the flat engine uses —
   that early exit is where the wall-clock win comes from. *)
let run_multilevel ?pool ?(obs = Obs.disabled) ?(ml = default_multilevel)
    config graph =
  if ml.ml_levels <= 1 then run ?pool ~obs config graph
  else begin
    let t_start = Obs.Clock.now () in
    let design = graph.Sta.Graph.design in
    let lvls =
      Cluster.build ~levels:(ml.ml_levels - 1)
        ~cluster_ratio:ml.ml_cluster_ratio
        ~max_net_degree:ml.ml_max_net_degree ~min_cells:ml.ml_min_cells ~obs
        design
    in
    match lvls with
    | [] -> run ?pool ~obs config graph
    | _ ->
      let nlevels = List.length lvls in
      let coarse_graph nl =
        Sta.Graph.build nl graph.Sta.Graph.lib graph.Sta.Graph.constraints
      in
      (* iteration cap for the refine at [depth] coarsening steps below
         the coarsest run (1 = first refine, nlevels = finest) *)
      let budget depth =
        let f = Float.max 0.05 (Float.min 1.0 ml.ml_refine_fraction) in
        max ml.ml_refine_min_iterations
          (int_of_float
             (Float.round
                (float_of_int config.max_iterations
                 *. (f ** float_of_int depth))))
      in
      (* Coarse levels spread fat cluster cells: half the flat grid
         resolution halves the DCT cost per iteration while still
         resolving multi-cell bins. *)
      let coarse_bins d =
        match config.density_bins with
        | Some b -> Some (max 16 (b / 2))
        | None -> Some (max 16 (Density.default_bins d / 2))
      in
      (* The coarsest level is a cold start, but a cheap one: cluster
         cells are few and fat, so the anneal tolerates double-speed
         lambda growth and double-size steps that would wreck the flat
         engine's quality at full resolution.  Any sloppiness is
         recovered by the (also fast-stepping) refines above it. *)
      let coarse_cfg d =
        { config with mode = Wirelength_only; init = `Center;
          trace_timing_period = 0; routability = None;
          collect_trace = false; density_bins = coarse_bins d;
          lambda_growth = config.lambda_growth ** 2.0;
          learning_rate =
            (let side =
               Float.max
                 (Geometry.Rect.width d.Netlist.region)
                 (Geometry.Rect.height d.Netlist.region)
             in
             Some
               (2.0
                *. (match config.learning_rate with
                   | Some l -> l
                   | None -> side /. 350.0))) }
      in
      let coarsest = (List.nth lvls (nlevels - 1)).Cluster.coarse in
      let r0 =
        Obs.span obs Obs.Cluster_refine (fun () ->
          run ?pool ~obs (coarse_cfg coarsest) (coarse_graph coarsest))
      in
      Obs.add obs "multilevel.coarse_iters"
        (float_of_int r0.res_iterations);
      let iters = ref r0.res_iterations in
      let last = ref r0 in
      List.iteri
        (fun k lvl ->
          let depth = k + 1 in
          let finest = depth = nlevels in
          Cluster.interpolate ~obs lvl;
          (* Warm-started refines resume an almost-spread placement,
             but [run] recalibrates lambda from scratch; boosting the
             initial density weight skips the dozens of iterations the
             flat schedule spends growing it back to where the coarser
             level left off. *)
          let lambda_relative =
            config.lambda_relative *. Float.max 1.0 ml.ml_refine_lambda_boost
          in
          (* Warm starts are step-limited, not schedule-limited: the
             remaining work is short-range untangling against a strong
             boosted density force, and the flat engine's conservative
             cold-start step (side / 350) makes cells crawl through it.
             Larger steps traverse the tail in far fewer of the
             expensive finest-level iterations, and measurably improve
             HPWL as well (each lambda value is annealed closer to its
             equilibrium before the weight grows again). *)
          let learning_rate =
            let region = lvl.Cluster.fine.Netlist.region in
            let side =
              Float.max
                (Geometry.Rect.width region)
                (Geometry.Rect.height region)
            in
            Some
              ((match config.learning_rate with
               | Some l -> l
               | None -> side /. 350.0)
               *. ml.ml_refine_lr_scale)
          in
          let cfg =
            if finest then
              (* The V-cycle extends into grid space at the finest
                 level: a warm start does not need the full-resolution
                 density grid (whose DCT dominates the iteration cost)
                 until the overflow is within striking distance of the
                 target, so the descent runs relaxed.  The flat engine
                 keeps full resolution throughout — its cold start has
                 to resolve the center-init blob from iteration one. *)
              { config with init = `Keep;
                density_relax = Some 1.0;
                max_iterations = budget depth;
                lambda_relative; learning_rate;
                min_iterations =
                  min config.min_iterations ml.ml_refine_min_iterations }
            else
              (* Intermediate refines stop slightly tighter than the
                 flat target: one of their cheap iterations saves
                 several at the next (4x more expensive) level. *)
              { config with mode = Wirelength_only; init = `Keep;
                trace_timing_period = 0; routability = None;
                collect_trace = false;
                stop_overflow = 0.85 *. config.stop_overflow;
                density_bins = coarse_bins lvl.Cluster.fine;
                max_iterations = budget depth;
                lambda_relative; learning_rate;
                min_iterations = ml.ml_refine_min_iterations }
          in
          let g = if finest then graph else coarse_graph lvl.Cluster.fine in
          let r =
            Obs.span obs Obs.Cluster_refine (fun () -> run ?pool ~obs cfg g)
          in
          Obs.add obs
            (Printf.sprintf "multilevel.refine%d_iters" depth)
            (float_of_int r.res_iterations);
          iters := !iters + r.res_iterations;
          last := r)
        (List.rev lvls);
      Obs.gauge obs "multilevel.levels" (float_of_int (nlevels + 1));
      { !last with
        res_iterations = !iters;
        res_runtime = Obs.Clock.now () -. t_start }
  end
