(** Momentum-based net weighting: the state-of-the-art baseline [24]
    (DREAMPlace 4.0, DATE 2022) that the paper compares against (§2.3).

    Every [period] placement iterations the exact STA engine runs on the
    current placement; each net's worst slack is turned into a
    criticality in [0, 1], smoothed with momentum across calls, and
    folded multiplicatively into the net's wirelength weight (Eq. 4).
    Weights only ever grow (up to [max_weight]), mirroring the
    cumulative weighting of the original. *)

type config = {
  alpha : float;      (** multiplicative strength per update (default 0.12). *)
  beta : float;       (** momentum on criticality (default 0.5). *)
  max_weight : float; (** weight cap (default 16.0). *)
  period : int;       (** placement iterations between STA calls (default 3). *)
  rebuild_trees : bool;
      (** reconstruct Steiner trees at every STA call, as the baseline
          does (this is what makes it slower than the differentiable
          engine, §4). *)
}

val default_config : config

type t

val create : ?config:config -> Sta.Graph.t -> t
val config : t -> config
val timer : t -> Sta.Timer.t

val update : ?pool:Parallel.pool -> ?obs:Obs.t -> t -> Sta.Timer.report
(** Run exact STA on the current placement and bump the weights of
    critical nets in the underlying design.  Returns the timing report
    so callers can trace WNS/TNS.  [pool] parallelises the Steiner/RC
    reconstruction inside the STA run.  [obs] records the whole update
    as a [netweight.update] span (the nested STA reports its own
    spans). *)

val should_update : t -> int -> bool
(** [should_update t iter] is true when [iter] is a scheduled STA
    iteration. *)

val reset : t -> unit
(** Restore every net weight to 1 and clear momentum. *)
