type config = {
  alpha : float;
  beta : float;
  max_weight : float;
  period : int;
  rebuild_trees : bool;
}

let default_config =
  { alpha = 0.12; beta = 0.5; max_weight = 16.0; period = 3;
    rebuild_trees = true }

type t = {
  cfg : config;
  timer_ : Sta.Timer.t;
  design : Netlist.t;
  momentum : float array;  (* per net smoothed criticality *)
}

let create ?(config = default_config) graph =
  { cfg = config;
    timer_ = Sta.Timer.create graph;
    design = graph.Sta.Graph.design;
    momentum = Array.make (Netlist.num_nets graph.Sta.Graph.design) 0.0 }

let config t = t.cfg
let timer t = t.timer_
let should_update t iter = iter mod max 1 t.cfg.period = 0

let update ?pool ?(obs = Obs.disabled) t =
  Obs.start obs Obs.Netweight_update;
  let report =
    Sta.Timer.run ~rebuild_trees:t.cfg.rebuild_trees ?pool ~obs t.timer_
  in
  let wns = report.Sta.Timer.setup_wns in
  let denom = Float.max 1.0 (Float.abs (Float.min wns 0.0)) in
  Array.iter
    (fun (net : Netlist.net) ->
      let slack = Sta.Timer.net_slack t.timer_ net.Netlist.net_id in
      let criticality =
        if slack >= 0.0 || slack = neg_infinity || slack = infinity then 0.0
        else Float.min 1.0 (-.slack /. denom)
      in
      let n = net.Netlist.net_id in
      t.momentum.(n) <-
        (t.cfg.beta *. t.momentum.(n)) +. ((1.0 -. t.cfg.beta) *. criticality);
      if t.momentum.(n) > 0.0 then
        net.Netlist.weight <-
          Float.min t.cfg.max_weight
            (net.Netlist.weight *. (1.0 +. (t.cfg.alpha *. t.momentum.(n)))))
    t.design.Netlist.nets;
  Obs.stop obs Obs.Netweight_update;
  report

let reset t =
  Netlist.reset_weights t.design;
  Array.fill t.momentum 0 (Array.length t.momentum) 0.0
