(** Row-based Tetris legalisation.

    Global placement leaves small overlaps; before final timing scoring
    the cells are snapped into non-overlapping row sites.  The classic
    Tetris sweep processes cells left to right and greedily packs each
    one into the row that minimises its displacement.  This is the "LG"
    step of the GP -> LG -> DP pipeline described in the paper's
    introduction (the paper's contribution itself is in GP; legalisation
    is shared by all compared placers). *)

type stats = {
  moved_cells : int;
  total_displacement : float;  (** sum of rectilinear moves, um. *)
  max_displacement : float;
  average_displacement : float;
  overfull_cells : int;
      (** cells for which no free interval was wide enough; placed on
          the minimum-overflow interval instead (they may overlap). *)
  total_overflow : float;
      (** summed width overflow of the overfull cells, um. *)
  warnings : string list;
      (** one message per overfull cell, in processing order; empty on
          a fully successful legalisation. *)
}

val legalize : ?obs:Obs.t -> Netlist.t -> stats
(** Snap every movable cell into rows of height [row_height] within the
    region, removing overlaps.  Cell positions are updated in place.
    Fixed cells are treated as blockages.

    Never raises on over-full designs: a cell that fits nowhere
    degrades gracefully onto the minimum-overflow free interval (ties
    broken by displacement, then row order — deterministic), with the
    overflow recorded in [overfull_cells]/[total_overflow]/[warnings]
    and, when [obs] is live, as [legalize.overfull_cells] /
    [legalize.total_overflow] counters under a [legalize] span. *)

val overlap_area : Netlist.t -> float
(** Total pairwise overlap area among movable cells (validation metric;
    0 after a legalisation with no overfull cells). *)

val pp_stats : Format.formatter -> stats -> unit
