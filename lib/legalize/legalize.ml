type stats = {
  moved_cells : int;
  total_displacement : float;
  max_displacement : float;
  average_displacement : float;
  overfull_cells : int;
  total_overflow : float;
  warnings : string list;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>moved: %d cells@,displacement: total %.1f um, max %.2f um, avg %.3f um"
    s.moved_cells s.total_displacement s.max_displacement
    s.average_displacement;
  if s.overfull_cells > 0 then
    Format.fprintf ppf "@,overfull: %d cells, %.2f um total overflow"
      s.overfull_cells s.total_overflow;
  Format.fprintf ppf "@]"

(* Each row keeps its free x-intervals; placing a cell splits the
   interval it lands in, so gaps left behind remain usable. *)
type row = {
  row_y : float;  (* center y of the row *)
  mutable free : (float * float) list;  (* sorted, disjoint *)
}

let build_rows (design : Netlist.t) =
  let region = design.Netlist.region in
  let rh = design.Netlist.row_height in
  let nrows =
    max 1 (int_of_float (Float.floor (Geometry.Rect.height region /. rh)))
  in
  let fixed =
    Array.to_list design.Netlist.cells
    |> List.filter (fun (c : Netlist.cell) -> c.Netlist.fixed)
  in
  Array.init nrows (fun r ->
    let lo_y = region.Geometry.Rect.ly +. (float_of_int r *. rh) in
    let hi_y = lo_y +. rh in
    (* x-intervals blocked by fixed cells overlapping this row *)
    let blocked =
      List.filter_map
        (fun (c : Netlist.cell) ->
          let c_lo = c.Netlist.y -. (c.Netlist.height /. 2.0) in
          let c_hi = c.Netlist.y +. (c.Netlist.height /. 2.0) in
          if c_hi > lo_y +. 1e-9 && c_lo < hi_y -. 1e-9 then
            Some
              (c.Netlist.x -. (c.Netlist.width /. 2.0),
               c.Netlist.x +. (c.Netlist.width /. 2.0))
          else None)
        fixed
      |> List.sort compare
    in
    let rec carve lo = function
      | [] ->
        if region.Geometry.Rect.hx -. lo > 1e-9 then
          [ (lo, region.Geometry.Rect.hx) ]
        else []
      | (b_lo, b_hi) :: rest ->
        let pre = if b_lo -. lo > 1e-9 then [ (lo, b_lo) ] else [] in
        pre @ carve (Float.max lo b_hi) rest
    in
    { row_y = lo_y +. (rh /. 2.0);
      free = carve region.Geometry.Rect.lx blocked })

let legalize ?(obs = Obs.disabled) design =
  Obs.start obs Obs.Legalize;
  let rows = build_rows design in
  let nrows = Array.length rows in
  let rh = design.Netlist.row_height in
  let region = design.Netlist.region in
  let movable =
    Array.of_list
      (List.map (fun i -> design.Netlist.cells.(i)) (Netlist.movable_cells design))
  in
  Array.sort
    (fun (a : Netlist.cell) (b : Netlist.cell) ->
      Float.compare
        (a.Netlist.x -. (a.Netlist.width /. 2.0))
        (b.Netlist.x -. (b.Netlist.width /. 2.0)))
    movable;
  let moved = ref 0 and total = ref 0.0 and worst = ref 0.0 in
  let overfull = ref 0 and overflow_tot = ref 0.0 in
  let warnings = ref [] in
  Array.iter
    (fun (c : Netlist.cell) ->
      let want_x = c.Netlist.x and want_y = c.Netlist.y in
      let home_row =
        int_of_float ((want_y -. region.Geometry.Rect.ly) /. rh)
      in
      let home_row = max 0 (min (nrows - 1) home_row) in
      (* candidate placement in one row; None if the cell cannot fit *)
      let try_row r =
        let row = rows.(r) in
        let y_cost = Float.abs (row.row_y -. want_y) in
        let half = c.Netlist.width /. 2.0 in
        List.fold_left
          (fun best (lo, hi) ->
            if hi -. lo >= c.Netlist.width -. 1e-9 then begin
              let x =
                Float.max lo (Float.min (want_x -. half) (hi -. c.Netlist.width))
              in
              let cost = Float.abs (x +. half -. want_x) +. y_cost in
              match best with
              | Some (bc, _) when bc <= cost -> best
              | Some _ | None -> Some (cost, x)
            end
            else best)
          None row.free
      in
      (* scan rows outward from the home row; stop once the row's y
         distance alone exceeds the best cost so far *)
      let best = ref None in
      let consider r =
        if r >= 0 && r < nrows then begin
          let y_cost = Float.abs (rows.(r).row_y -. want_y) in
          let beaten =
            match !best with Some (bc, _, _) -> y_cost >= bc | None -> false
          in
          if not beaten then
            match try_row r with
            | Some (cost, x) ->
              (match !best with
               | Some (bc, _, _) when bc <= cost -> ()
               | Some _ | None -> best := Some (cost, r, x))
            | None -> ()
        end
      in
      consider home_row;
      let radius = ref 1 in
      let continue_ = ref true in
      while !continue_ && !radius < nrows do
        let d_y = float_of_int !radius *. rh in
        (match !best with
         | Some (bc, _, _) when d_y -. rh >= bc -> continue_ := false
         | Some _ | None -> ());
        if !continue_ then begin
          consider (home_row + !radius);
          consider (home_row - !radius)
        end;
        incr radius
      done;
      let commit nx ny =
        let d = Float.abs (nx -. want_x) +. Float.abs (ny -. want_y) in
        if d > 1e-9 then begin
          incr moved;
          total := !total +. d;
          if d > !worst then worst := d
        end;
        c.Netlist.x <- nx;
        c.Netlist.y <- ny
      in
      match !best with
      | Some (_, r, x) ->
        let row = rows.(r) in
        (* split the interval the cell landed in *)
        let rec split = function
          | [] -> []
          | (lo, hi) :: rest ->
            if x >= lo -. 1e-9 && x +. c.Netlist.width <= hi +. 1e-9 then begin
              let left = if x -. lo > 1e-9 then [ (lo, x) ] else [] in
              let right =
                if hi -. (x +. c.Netlist.width) > 1e-9 then
                  [ (x +. c.Netlist.width, hi) ]
                else []
              in
              left @ right @ rest
            end
            else (lo, hi) :: split rest
        in
        row.free <- split row.free;
        commit (x +. (c.Netlist.width /. 2.0)) row.row_y
      | None ->
        (* no reachable interval is wide enough: degrade gracefully
           instead of aborting the whole flow.  Take the minimum-
           overflow free interval anywhere (ties: smallest displacement,
           then the fixed row/interval scan order — deterministic),
           consume it whole and center the cell on it; the residual
           overlap is reported, not fatal. *)
        let fb = ref None in
        Array.iteri
          (fun r row ->
            let y_cost = Float.abs (row.row_y -. want_y) in
            List.iter
              (fun (lo, hi) ->
                let ov = c.Netlist.width -. (hi -. lo) in
                let cost =
                  Float.abs (((lo +. hi) /. 2.0) -. want_x) +. y_cost
                in
                let better =
                  match !fb with
                  | None -> true
                  | Some (bov, bcost, _, _, _) ->
                    ov < bov -. 1e-12
                    || (ov <= bov +. 1e-12 && cost < bcost -. 1e-12)
                in
                if better then fb := Some (ov, cost, r, lo, hi))
              row.free)
          rows;
        let clamp_x x =
          let half = c.Netlist.width /. 2.0 in
          Float.max
            (region.Geometry.Rect.lx +. half)
            (Float.min (region.Geometry.Rect.hx -. half) x)
        in
        let nx, ny, ov =
          match !fb with
          | Some (ov, _, r, lo, hi) ->
            let row = rows.(r) in
            row.free <-
              List.filter (fun (l, h) -> not (l = lo && h = hi)) row.free;
            (clamp_x ((lo +. hi) /. 2.0), row.row_y, ov)
          | None ->
            (* no free space at all: clamp to the wanted position *)
            (clamp_x want_x, rows.(home_row).row_y, c.Netlist.width)
        in
        incr overfull;
        overflow_tot := !overflow_tot +. ov;
        warnings :=
          Printf.sprintf
            "legalize: cell %s (w=%.2f) does not fit; placed at \
             (%.2f, %.2f) with %.2f um overflow"
            c.Netlist.cell_name c.Netlist.width nx ny ov
          :: !warnings;
        commit nx ny)
    movable;
  Obs.add obs "legalize.overfull_cells" (float_of_int !overfull);
  Obs.add obs "legalize.total_overflow" !overflow_tot;
  Obs.stop obs Obs.Legalize;
  let n = Array.length movable in
  { moved_cells = !moved;
    total_displacement = !total;
    max_displacement = !worst;
    average_displacement = (if n = 0 then 0.0 else !total /. float_of_int n);
    overfull_cells = !overfull;
    total_overflow = !overflow_tot;
    warnings = List.rev !warnings }

let overlap_area design =
  let movable =
    Array.of_list
      (List.map (fun i -> design.Netlist.cells.(i)) (Netlist.movable_cells design))
  in
  Array.sort
    (fun (a : Netlist.cell) (b : Netlist.cell) ->
      Float.compare
        (a.Netlist.x -. (a.Netlist.width /. 2.0))
        (b.Netlist.x -. (b.Netlist.width /. 2.0)))
    movable;
  let rect (c : Netlist.cell) =
    Geometry.Rect.of_center
      (Geometry.Point.make c.Netlist.x c.Netlist.y)
      ~width:c.Netlist.width ~height:c.Netlist.height
  in
  let n = Array.length movable in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let ri = rect movable.(i) in
    let j = ref (i + 1) in
    let stop = ref false in
    while (not !stop) && !j < n do
      let rj = rect movable.(!j) in
      if rj.Geometry.Rect.lx >= ri.Geometry.Rect.hx then stop := true
      else acc := !acc +. Geometry.Rect.overlap_area ri rj;
      incr j
    done
  done;
  !acc
