type t = {
  pin_count : int;
  xs : float array;
  ys : float array;
  parent : int array;
  x_source : int array;
  y_source : int array;
  order : int array;
}

let node_count t = Array.length t.xs
let is_steiner t v = v >= t.pin_count

let edge_length t v =
  let p = t.parent.(v) in
  if p < 0 then 0.0
  else
    Float.abs (t.xs.(v) -. t.xs.(p)) +. Float.abs (t.ys.(v) -. t.ys.(p))

let total_length t =
  let acc = ref 0.0 in
  for v = 0 to node_count t - 1 do
    acc := !acc +. edge_length t v
  done;
  !acc

let hpwl ~xs ~ys =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let bbox = ref Geometry.Bbox.empty in
    for i = 0 to n - 1 do
      bbox := Geometry.Bbox.add_xy !bbox xs.(i) ys.(i)
    done;
    Geometry.Bbox.half_perimeter !bbox
  end

(* ---- working graph used during construction ---- *)

type graph = {
  mutable n : int;  (* current node count *)
  gx : float array;
  gy : float array;
  gxs : int array;  (* provenance *)
  gys : int array;
  adj : int list array;
}

let dist g a b =
  Float.abs (g.gx.(a) -. g.gx.(b)) +. Float.abs (g.gy.(a) -. g.gy.(b))

let make_graph capacity pins_x pins_y =
  let npins = Array.length pins_x in
  let g =
    { n = npins;
      gx = Array.make capacity 0.0;
      gy = Array.make capacity 0.0;
      gxs = Array.make capacity 0;
      gys = Array.make capacity 0;
      adj = Array.make capacity [] }
  in
  for i = 0 to npins - 1 do
    g.gx.(i) <- pins_x.(i);
    g.gy.(i) <- pins_y.(i);
    g.gxs.(i) <- i;
    g.gys.(i) <- i
  done;
  g

let add_edge g a b =
  g.adj.(a) <- b :: g.adj.(a);
  g.adj.(b) <- a :: g.adj.(b)

let remove_edge g a b =
  g.adj.(a) <- List.filter (fun v -> v <> b) g.adj.(a);
  g.adj.(b) <- List.filter (fun v -> v <> a) g.adj.(b)

let add_node g x y xs ys =
  let id = g.n in
  g.n <- id + 1;
  g.gx.(id) <- x;
  g.gy.(id) <- y;
  g.gxs.(id) <- xs;
  g.gys.(id) <- ys;
  id

(* Median of three values with provenance: returns (value, source). *)
let median3 (v0, s0) (v1, s1) (v2, s2) =
  let arr = [| (v0, s0); (v1, s1); (v2, s2) |] in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) arr;
  arr.(1)

(* ---- Prim MST over the first [k] nodes of a coordinate set ---- *)

let prim_edges xs ys k =
  (* Returns the MST edge list over nodes 0..k-1 and its total length. *)
  if k <= 1 then ([], 0.0)
  else begin
    let in_tree = Array.make k false in
    let best_d = Array.make k infinity in
    let best_to = Array.make k 0 in
    let edges = ref [] in
    let total = ref 0.0 in
    in_tree.(0) <- true;
    for j = 1 to k - 1 do
      best_d.(j) <- Float.abs (xs.(j) -. xs.(0)) +. Float.abs (ys.(j) -. ys.(0));
      best_to.(j) <- 0
    done;
    for _ = 1 to k - 1 do
      let pick = ref (-1) and pick_d = ref infinity in
      for j = 0 to k - 1 do
        if (not in_tree.(j)) && best_d.(j) < !pick_d then begin
          pick := j;
          pick_d := best_d.(j)
        end
      done;
      let u = !pick in
      in_tree.(u) <- true;
      edges := (best_to.(u), u) :: !edges;
      total := !total +. !pick_d;
      for j = 0 to k - 1 do
        if not in_tree.(j) then begin
          let d = Float.abs (xs.(j) -. xs.(u)) +. Float.abs (ys.(j) -. ys.(u)) in
          if d < best_d.(j) then begin
            best_d.(j) <- d;
            best_to.(j) <- u
          end
        end
      done
    done;
    (!edges, !total)
  end

let mst_length ~xs ~ys =
  let _, len = prim_edges xs ys (Array.length xs) in
  len

(* ---- greedy Steinerisation of a tree graph ----

   For a node [u] with neighbours [a] and [b], inserting the median point
   [s] of (u, a, b) and rewiring (u-a, u-b) to (u-s, a-s, b-s) never
   lengthens the tree and usually shortens it.  We apply the best move
   per sweep until no move improves, bounded by the theoretical n-2
   Steiner-point maximum (capacity of the graph). *)

let steinerize g =
  let improved = ref true in
  while !improved && g.n < Array.length g.gx do
    improved := false;
    let best_gain = ref 1e-9 in
    let best = ref None in
    for u = 0 to g.n - 1 do
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              let mx, mxs =
                median3
                  (g.gx.(u), g.gxs.(u)) (g.gx.(a), g.gxs.(a))
                  (g.gx.(b), g.gxs.(b))
              and my, mys =
                median3
                  (g.gy.(u), g.gys.(u)) (g.gy.(a), g.gys.(a))
                  (g.gy.(b), g.gys.(b))
              in
              let cost_now = dist g u a +. dist g u b in
              let d n2 =
                Float.abs (g.gx.(n2) -. mx) +. Float.abs (g.gy.(n2) -. my)
              in
              let cost_new = d u +. d a +. d b in
              let gain = cost_now -. cost_new in
              if gain > !best_gain then begin
                best_gain := gain;
                best := Some (u, a, b, mx, my, mxs, mys)
              end)
            rest;
          pairs rest
      in
      pairs g.adj.(u)
    done;
    match !best with
    | None -> ()
    | Some (u, a, b, mx, my, mxs, mys) ->
      let s = add_node g mx my mxs mys in
      remove_edge g u a;
      remove_edge g u b;
      add_edge g u s;
      add_edge g a s;
      add_edge g b s;
      improved := true
  done

(* ---- exact RSMT for small nets by Hanan enumeration ----

   An optimal RSMT uses at most n-2 Steiner points, all on the Hanan
   grid.  For each subset of candidate grid points up to that size we
   compute the MST over pins + subset; the minimum over subsets realises
   the optimal length. *)

let exact_rsmt pins_x pins_y =
  let n = Array.length pins_x in
  let candidates = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let x = pins_x.(i) and y = pins_y.(j) in
      let coincides = ref false in
      for p = 0 to n - 1 do
        if pins_x.(p) = x && pins_y.(p) = y then coincides := true
      done;
      if not !coincides
         && not
              (List.exists
                 (fun (cx, cy, _, _) -> cx = x && cy = y)
                 !candidates)
      then candidates := (x, y, i, j) :: !candidates
    done
  done;
  let candidates = Array.of_list !candidates in
  let ncand = Array.length candidates in
  let max_extra = max 0 (n - 2) in
  let best_len = ref infinity in
  let best_subset = ref [] in
  let rec enumerate start chosen size =
    (* evaluate current subset *)
    let k = n + size in
    let xs = Array.make k 0.0 and ys = Array.make k 0.0 in
    Array.blit pins_x 0 xs 0 n;
    Array.blit pins_y 0 ys 0 n;
    List.iteri
      (fun idx c ->
        let cx, cy, _, _ = candidates.(c) in
        xs.(n + idx) <- cx;
        ys.(n + idx) <- cy)
      chosen;
    let _, len = prim_edges xs ys k in
    if len < !best_len -. 1e-12 then begin
      best_len := len;
      best_subset := chosen
    end;
    if size < max_extra then
      for c = start to ncand - 1 do
        enumerate (c + 1) (c :: chosen) (size + 1)
      done
  in
  enumerate 0 [] 0;
  (* rebuild the winning tree *)
  let chosen = !best_subset in
  let size = List.length chosen in
  let g = make_graph (n + size) pins_x pins_y in
  List.iter
    (fun c ->
      let cx, cy, si, sj = candidates.(c) in
      ignore (add_node g cx cy si sj))
    chosen;
  let xs = Array.sub g.gx 0 g.n and ys = Array.sub g.gy 0 g.n in
  let edges, _ = prim_edges xs ys g.n in
  List.iter (fun (a, b) -> add_edge g a b) edges;
  g

(* ---- finalisation: prune useless Steiner points, root at node 0 ---- *)

let finalize g npins =
  (* iteratively drop Steiner leaves (they only add length) *)
  let removed = Array.make g.n false in
  let changed = ref true in
  while !changed do
    changed := false;
    for v = npins to g.n - 1 do
      if (not removed.(v)) && List.length g.adj.(v) <= 1 then begin
        removed.(v) <- true;
        (match g.adj.(v) with
         | [] -> ()
         | [ u ] -> remove_edge g u v
         | _ :: _ :: _ -> assert false);
        changed := true
      end
    done
  done;
  (* compact ids: pins keep theirs, surviving Steiner points follow *)
  let remap = Array.make g.n (-1) in
  let count = ref npins in
  for v = 0 to g.n - 1 do
    if v < npins then remap.(v) <- v
    else if not removed.(v) then begin
      remap.(v) <- !count;
      incr count
    end
  done;
  let total = !count in
  let xs = Array.make total 0.0 and ys = Array.make total 0.0 in
  let x_source = Array.make total 0 and y_source = Array.make total 0 in
  let adj = Array.make total [] in
  for v = 0 to g.n - 1 do
    let nv = remap.(v) in
    if nv >= 0 then begin
      xs.(nv) <- g.gx.(v);
      ys.(nv) <- g.gy.(v);
      x_source.(nv) <- g.gxs.(v);
      y_source.(nv) <- g.gys.(v);
      adj.(nv) <- List.filter_map
          (fun u -> if remap.(u) >= 0 then Some remap.(u) else None)
          g.adj.(v)
    end
  done;
  (* BFS from the driver to orient edges *)
  let parent = Array.make total (-1) in
  let order = Array.make total 0 in
  let visited = Array.make total false in
  let queue = Queue.create () in
  Queue.push 0 queue;
  visited.(0) <- true;
  let pos = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!pos) <- v;
    incr pos;
    List.iter
      (fun u ->
        if not visited.(u) then begin
          visited.(u) <- true;
          parent.(u) <- v;
          Queue.push u queue
        end)
      adj.(v)
  done;
  if !pos <> total then
    invalid_arg "Steiner: internal error, tree is disconnected";
  { pin_count = npins; xs; ys; parent; x_source; y_source; order }

let build_median3 pins_x pins_y =
  let g = make_graph 4 pins_x pins_y in
  let mx, mxs =
    median3 (pins_x.(0), 0) (pins_x.(1), 1) (pins_x.(2), 2)
  and my, mys =
    median3 (pins_y.(0), 0) (pins_y.(1), 1) (pins_y.(2), 2)
  in
  let coincident = ref (-1) in
  for p = 0 to 2 do
    if pins_x.(p) = mx && pins_y.(p) = my then coincident := p
  done;
  if !coincident >= 0 then begin
    let c = !coincident in
    for p = 0 to 2 do
      if p <> c then add_edge g c p
    done
  end
  else begin
    let s = add_node g mx my mxs mys in
    for p = 0 to 2 do
      add_edge g s p
    done
  end;
  g

let build ?(exact_limit = 4) ~xs ~ys () =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Steiner.build: empty net";
  if Array.length ys <> n then invalid_arg "Steiner.build: xs/ys mismatch";
  let exact_limit = max 2 (min 6 exact_limit) in
  let g =
    if n = 1 then make_graph 1 xs ys
    else if n = 2 then begin
      let g = make_graph 2 xs ys in
      add_edge g 0 1;
      g
    end
    else if n = 3 then build_median3 xs ys
    else if n <= exact_limit then exact_rsmt xs ys
    else begin
      let g = make_graph ((2 * n) - 2) xs ys in
      let edges, _ = prim_edges xs ys n in
      List.iter (fun (a, b) -> add_edge g a b) edges;
      steinerize g;
      g
    end
  in
  finalize g n

let update_coordinates t ~xs ~ys =
  if Array.length xs <> t.pin_count || Array.length ys <> t.pin_count then
    invalid_arg "Steiner.update_coordinates: pin count mismatch";
  for i = 0 to t.pin_count - 1 do
    t.xs.(i) <- xs.(i);
    t.ys.(i) <- ys.(i)
  done;
  for v = t.pin_count to node_count t - 1 do
    t.xs.(v) <- xs.(t.x_source.(v));
    t.ys.(v) <- ys.(t.y_source.(v))
  done

let accumulate_pin_gradient t ~node_gx ~node_gy ~pin_gx ~pin_gy =
  let n = node_count t in
  if Array.length node_gx < n || Array.length node_gy < n then
    invalid_arg "Steiner.accumulate_pin_gradient: node size mismatch";
  if Array.length pin_gx < t.pin_count || Array.length pin_gy < t.pin_count
  then invalid_arg "Steiner.accumulate_pin_gradient: pin size mismatch";
  for v = 0 to n - 1 do
    pin_gx.(t.x_source.(v)) <- pin_gx.(t.x_source.(v)) +. node_gx.(v);
    pin_gy.(t.y_source.(v)) <- pin_gy.(t.y_source.(v)) +. node_gy.(v)
  done
