type t = {
  pin_count : int;
  xs : float array;
  ys : float array;
  parent : int array;
  x_source : int array;
  y_source : int array;
  order : int array;
}

let node_count t = Array.length t.xs
let is_steiner t v = v >= t.pin_count

let edge_length t v =
  let p = t.parent.(v) in
  if p < 0 then 0.0
  else
    Float.abs (t.xs.(v) -. t.xs.(p)) +. Float.abs (t.ys.(v) -. t.ys.(p))

let total_length t =
  let acc = ref 0.0 in
  for v = 0 to node_count t - 1 do
    acc := !acc +. edge_length t v
  done;
  !acc

let hpwl ~xs ~ys =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let bbox = ref Geometry.Bbox.empty in
    for i = 0 to n - 1 do
      bbox := Geometry.Bbox.add_xy !bbox xs.(i) ys.(i)
    done;
    Geometry.Bbox.half_perimeter !bbox
  end

(* ---- working graph used during construction ---- *)

type graph = {
  mutable n : int;  (* current node count *)
  gx : float array;
  gy : float array;
  gxs : int array;  (* provenance *)
  gys : int array;
  adj : int list array;
}

let dist g a b =
  Float.abs (g.gx.(a) -. g.gx.(b)) +. Float.abs (g.gy.(a) -. g.gy.(b))

let make_graph capacity pins_x pins_y =
  let npins = Array.length pins_x in
  let g =
    { n = npins;
      gx = Array.make capacity 0.0;
      gy = Array.make capacity 0.0;
      gxs = Array.make capacity 0;
      gys = Array.make capacity 0;
      adj = Array.make capacity [] }
  in
  for i = 0 to npins - 1 do
    g.gx.(i) <- pins_x.(i);
    g.gy.(i) <- pins_y.(i);
    g.gxs.(i) <- i;
    g.gys.(i) <- i
  done;
  g

let add_edge g a b =
  g.adj.(a) <- b :: g.adj.(a);
  g.adj.(b) <- a :: g.adj.(b)

let remove_edge g a b =
  g.adj.(a) <- List.filter (fun v -> v <> b) g.adj.(a);
  g.adj.(b) <- List.filter (fun v -> v <> a) g.adj.(b)

let add_node g x y xs ys =
  let id = g.n in
  g.n <- id + 1;
  g.gx.(id) <- x;
  g.gy.(id) <- y;
  g.gxs.(id) <- xs;
  g.gys.(id) <- ys;
  id

(* Median of three values with provenance: returns (value, source). *)
let median3 (v0, s0) (v1, s1) (v2, s2) =
  let arr = [| (v0, s0); (v1, s1); (v2, s2) |] in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) arr;
  arr.(1)

(* ---- Prim MST over the first [k] nodes of a coordinate set ---- *)

let prim_edges xs ys k =
  (* Returns the MST edge list over nodes 0..k-1 and its total length. *)
  if k <= 1 then ([], 0.0)
  else begin
    let in_tree = Array.make k false in
    let best_d = Array.make k infinity in
    let best_to = Array.make k 0 in
    let edges = ref [] in
    let total = ref 0.0 in
    in_tree.(0) <- true;
    for j = 1 to k - 1 do
      best_d.(j) <- Float.abs (xs.(j) -. xs.(0)) +. Float.abs (ys.(j) -. ys.(0));
      best_to.(j) <- 0
    done;
    for _ = 1 to k - 1 do
      let pick = ref (-1) and pick_d = ref infinity in
      for j = 0 to k - 1 do
        if (not in_tree.(j)) && best_d.(j) < !pick_d then begin
          pick := j;
          pick_d := best_d.(j)
        end
      done;
      let u = !pick in
      in_tree.(u) <- true;
      edges := (best_to.(u), u) :: !edges;
      total := !total +. !pick_d;
      for j = 0 to k - 1 do
        if not in_tree.(j) then begin
          let d = Float.abs (xs.(j) -. xs.(u)) +. Float.abs (ys.(j) -. ys.(u)) in
          if d < best_d.(j) then begin
            best_d.(j) <- d;
            best_to.(j) <- u
          end
        end
      done
    done;
    (!edges, !total)
  end

let mst_length ~xs ~ys =
  let _, len = prim_edges xs ys (Array.length xs) in
  len

(* ---- greedy Steinerisation of a tree graph ----

   For a node [u] with neighbours [a] and [b], inserting the median point
   [s] of (u, a, b) and rewiring (u-a, u-b) to (u-s, a-s, b-s) never
   lengthens the tree and usually shortens it.  We apply the best move
   per sweep until no move improves, bounded by the theoretical n-2
   Steiner-point maximum (capacity of the graph). *)

let steinerize g =
  let improved = ref true in
  while !improved && g.n < Array.length g.gx do
    improved := false;
    let best_gain = ref 1e-9 in
    let best = ref None in
    for u = 0 to g.n - 1 do
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun b ->
              let mx, mxs =
                median3
                  (g.gx.(u), g.gxs.(u)) (g.gx.(a), g.gxs.(a))
                  (g.gx.(b), g.gxs.(b))
              and my, mys =
                median3
                  (g.gy.(u), g.gys.(u)) (g.gy.(a), g.gys.(a))
                  (g.gy.(b), g.gys.(b))
              in
              let cost_now = dist g u a +. dist g u b in
              let d n2 =
                Float.abs (g.gx.(n2) -. mx) +. Float.abs (g.gy.(n2) -. my)
              in
              let cost_new = d u +. d a +. d b in
              let gain = cost_now -. cost_new in
              if gain > !best_gain then begin
                best_gain := gain;
                best := Some (u, a, b, mx, my, mxs, mys)
              end)
            rest;
          pairs rest
      in
      pairs g.adj.(u)
    done;
    match !best with
    | None -> ()
    | Some (u, a, b, mx, my, mxs, mys) ->
      let s = add_node g mx my mxs mys in
      remove_edge g u a;
      remove_edge g u b;
      add_edge g u s;
      add_edge g a s;
      add_edge g b s;
      improved := true
  done

(* ---- exact RSMT for small nets by Hanan enumeration ----

   An optimal RSMT uses at most n-2 Steiner points, all on the Hanan
   grid.  For each subset of candidate grid points up to that size we
   compute the MST over pins + subset; the minimum over subsets realises
   the optimal length. *)

let exact_rsmt pins_x pins_y =
  let n = Array.length pins_x in
  let candidates = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let x = pins_x.(i) and y = pins_y.(j) in
      let coincides = ref false in
      for p = 0 to n - 1 do
        if pins_x.(p) = x && pins_y.(p) = y then coincides := true
      done;
      if not !coincides
         && not
              (List.exists
                 (fun (cx, cy, _, _) -> cx = x && cy = y)
                 !candidates)
      then candidates := (x, y, i, j) :: !candidates
    done
  done;
  let candidates = Array.of_list !candidates in
  let ncand = Array.length candidates in
  let max_extra = max 0 (n - 2) in
  let best_len = ref infinity in
  let best_subset = ref [] in
  let rec enumerate start chosen size =
    (* evaluate current subset *)
    let k = n + size in
    let xs = Array.make k 0.0 and ys = Array.make k 0.0 in
    Array.blit pins_x 0 xs 0 n;
    Array.blit pins_y 0 ys 0 n;
    List.iteri
      (fun idx c ->
        let cx, cy, _, _ = candidates.(c) in
        xs.(n + idx) <- cx;
        ys.(n + idx) <- cy)
      chosen;
    let _, len = prim_edges xs ys k in
    if len < !best_len -. 1e-12 then begin
      best_len := len;
      best_subset := chosen
    end;
    if size < max_extra then
      for c = start to ncand - 1 do
        enumerate (c + 1) (c :: chosen) (size + 1)
      done
  in
  enumerate 0 [] 0;
  (* rebuild the winning tree *)
  let chosen = !best_subset in
  let size = List.length chosen in
  let g = make_graph (n + size) pins_x pins_y in
  List.iter
    (fun c ->
      let cx, cy, si, sj = candidates.(c) in
      ignore (add_node g cx cy si sj))
    chosen;
  let xs = Array.sub g.gx 0 g.n and ys = Array.sub g.gy 0 g.n in
  let edges, _ = prim_edges xs ys g.n in
  List.iter (fun (a, b) -> add_edge g a b) edges;
  g

(* ---- finalisation: prune useless Steiner points, root at node 0 ---- *)

let finalize g npins =
  (* iteratively drop Steiner leaves (they only add length) *)
  let removed = Array.make g.n false in
  let changed = ref true in
  while !changed do
    changed := false;
    for v = npins to g.n - 1 do
      if (not removed.(v)) && List.length g.adj.(v) <= 1 then begin
        removed.(v) <- true;
        (match g.adj.(v) with
         | [] -> ()
         | [ u ] -> remove_edge g u v
         | _ :: _ :: _ -> assert false);
        changed := true
      end
    done
  done;
  (* compact ids: pins keep theirs, surviving Steiner points follow *)
  let remap = Array.make g.n (-1) in
  let count = ref npins in
  for v = 0 to g.n - 1 do
    if v < npins then remap.(v) <- v
    else if not removed.(v) then begin
      remap.(v) <- !count;
      incr count
    end
  done;
  let total = !count in
  let xs = Array.make total 0.0 and ys = Array.make total 0.0 in
  let x_source = Array.make total 0 and y_source = Array.make total 0 in
  let adj = Array.make total [] in
  for v = 0 to g.n - 1 do
    let nv = remap.(v) in
    if nv >= 0 then begin
      xs.(nv) <- g.gx.(v);
      ys.(nv) <- g.gy.(v);
      x_source.(nv) <- g.gxs.(v);
      y_source.(nv) <- g.gys.(v);
      adj.(nv) <- List.filter_map
          (fun u -> if remap.(u) >= 0 then Some remap.(u) else None)
          g.adj.(v)
    end
  done;
  (* BFS from the driver to orient edges *)
  let parent = Array.make total (-1) in
  let order = Array.make total 0 in
  let visited = Array.make total false in
  let queue = Queue.create () in
  Queue.push 0 queue;
  visited.(0) <- true;
  let pos = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!pos) <- v;
    incr pos;
    List.iter
      (fun u ->
        if not visited.(u) then begin
          visited.(u) <- true;
          parent.(u) <- v;
          Queue.push u queue
        end)
      adj.(v)
  done;
  if !pos <> total then
    invalid_arg "Steiner: internal error, tree is disconnected";
  { pin_count = npins; xs; ys; parent; x_source; y_source; order }

let build_median3 pins_x pins_y =
  let g = make_graph 4 pins_x pins_y in
  let mx, mxs =
    median3 (pins_x.(0), 0) (pins_x.(1), 1) (pins_x.(2), 2)
  and my, mys =
    median3 (pins_y.(0), 0) (pins_y.(1), 1) (pins_y.(2), 2)
  in
  let coincident = ref (-1) in
  for p = 0 to 2 do
    if pins_x.(p) = mx && pins_y.(p) = my then coincident := p
  done;
  if !coincident >= 0 then begin
    let c = !coincident in
    for p = 0 to 2 do
      if p <> c then add_edge g c p
    done
  end
  else begin
    let s = add_node g mx my mxs mys in
    for p = 0 to 2 do
      add_edge g s p
    done
  end;
  g

(* ---- direct constructors for trivial degrees ----

   Degrees 1-3 account for the bulk of real netlists; building them
   without the scratch graph / BFS machinery keeps the per-net rebuild
   cost at a handful of allocations. *)

let build_single xs ys =
  { pin_count = 1; xs = [| xs.(0) |]; ys = [| ys.(0) |];
    parent = [| -1 |]; x_source = [| 0 |]; y_source = [| 0 |];
    order = [| 0 |] }

let build_two xs ys =
  { pin_count = 2; xs = [| xs.(0); xs.(1) |]; ys = [| ys.(0); ys.(1) |];
    parent = [| -1; 0 |]; x_source = [| 0; 1 |]; y_source = [| 0; 1 |];
    order = [| 0; 1 |] }

let build_three xs ys =
  let mx, mxs = median3 (xs.(0), 0) (xs.(1), 1) (xs.(2), 2)
  and my, mys = median3 (ys.(0), 0) (ys.(1), 1) (ys.(2), 2) in
  let coincident = ref (-1) in
  for p = 0 to 2 do
    if xs.(p) = mx && ys.(p) = my then coincident := p
  done;
  let pxs = [| xs.(0); xs.(1); xs.(2) |]
  and pys = [| ys.(0); ys.(1); ys.(2) |] in
  match !coincident with
  | 0 ->
    { pin_count = 3; xs = pxs; ys = pys; parent = [| -1; 0; 0 |];
      x_source = [| 0; 1; 2 |]; y_source = [| 0; 1; 2 |];
      order = [| 0; 1; 2 |] }
  | 1 ->
    { pin_count = 3; xs = pxs; ys = pys; parent = [| -1; 0; 1 |];
      x_source = [| 0; 1; 2 |]; y_source = [| 0; 1; 2 |];
      order = [| 0; 1; 2 |] }
  | 2 ->
    { pin_count = 3; xs = pxs; ys = pys; parent = [| -1; 2; 0 |];
      x_source = [| 0; 1; 2 |]; y_source = [| 0; 1; 2 |];
      order = [| 0; 2; 1 |] }
  | _ ->
    { pin_count = 3;
      xs = [| xs.(0); xs.(1); xs.(2); mx |];
      ys = [| ys.(0); ys.(1); ys.(2); my |];
      parent = [| -1; 3; 3; 0 |];
      x_source = [| 0; 1; 2; mxs |]; y_source = [| 0; 1; 2; mys |];
      order = [| 0; 3; 1; 2 |] }

let heuristic_tree xs ys n =
  let g = make_graph ((2 * n) - 2) xs ys in
  let edges, _ = prim_edges xs ys n in
  List.iter (fun (a, b) -> add_edge g a b) edges;
  steinerize g;
  finalize g n

(* ====================================================================
   FLUTE-style topology lookup tables (paper §3.4.1, §3.6).

   The optimal RSMT topology of an n-pin net depends only on the
   relative order of the pin coordinates, not on their values: sort the
   pins by x and record the permutation [pi] mapping each x-rank to its
   y-rank.  Nets sharing [pi] (up to the 8 dihedral symmetries of the
   plane) share a small set of candidate topologies; for given
   coordinate spans the shortest candidate is the exact optimum.  We
   build the candidate set per class on first use with a Dreyfus-Wagner
   Steiner DP on the Hanan grid (exact), probing a family of span
   vectors and patching with randomized verification draws until the
   stored set covers every draw.  Runtime [build] for a net of degree
   <= [max_degree] is then: canonicalize the permutation, evaluate the
   stored candidates on the actual spans, materialize the winner with
   x/y-source provenance intact.
   ==================================================================== *)

module Lut = struct
  let max_degree = 8

  (* deterministic splitmix64: probe generation must not depend on any
     ambient RNG state so tables are identical across runs and domains *)
  let rng_next st =
    st := Int64.add !st 0x9E3779B97F4A7C15L;
    let z = !st in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let rng_float st =
    Int64.to_float (Int64.shift_right_logical (rng_next st) 11)
    *. (1.0 /. 9007199254740992.0)

  (* -- Dreyfus-Wagner Steiner DP on the n x n Hanan grid --

     Grid vertex [i * n + j] sits at (xg.(i), yg.(j)); terminal p is the
     vertex (p, pi.(p)).  Distances are the metric closure of the plane,
     so a single relaxation pass after each merge step suffices.
     [dp.(mask * v + u)] = minimal length of a tree spanning the
     terminals in [mask] plus vertex [u].  Complexity 3^n n^2 + 2^n n^4
     float ops: ~0.1 ms for n = 6, ~2 ms for n = 8 per span vector. *)

  type dw = {
    dw_n : int;
    dw_dist : float array;  (* v * v pairwise rectilinear distances *)
    dw_dp : float array;    (* 2^n * v *)
    dw_merge : float array; (* v scratch for the current mask *)
  }

  let dw_make n =
    let v = n * n in
    { dw_n = n;
      dw_dist = Array.make (v * v) 0.0;
      dw_dp = Array.make ((1 lsl n) * v) infinity;
      dw_merge = Array.make v infinity }

  (* best two-way split of [mask] at every vertex; reconstruction
     recomputes these exact float expressions, so minima can be matched
     back with [=] *)
  let dw_merge_pass d mask =
    let v = d.dw_n * d.dw_n in
    Array.fill d.dw_merge 0 v infinity;
    let low = mask land (-mask) in
    let sub = ref ((mask - 1) land mask) in
    while !sub <> 0 do
      if !sub land low <> 0 then begin
        let bs = !sub * v and br = (mask lxor !sub) * v in
        for u = 0 to v - 1 do
          let c = d.dw_dp.(bs + u) +. d.dw_dp.(br + u) in
          if c < d.dw_merge.(u) then d.dw_merge.(u) <- c
        done
      end;
      sub := (!sub - 1) land mask
    done

  let dw_solve d pi xg yg =
    let n = d.dw_n in
    let v = n * n in
    for a = 0 to v - 1 do
      let xa = xg.(a / n) and ya = yg.(a mod n) in
      for b = 0 to v - 1 do
        d.dw_dist.((a * v) + b) <-
          Float.abs (xa -. xg.(b / n)) +. Float.abs (ya -. yg.(b mod n))
      done
    done;
    let full = (1 lsl n) - 1 in
    Array.fill d.dw_dp 0 ((full + 1) * v) infinity;
    for p = 0 to n - 1 do
      let t = (p * n) + pi.(p) in
      let base = (1 lsl p) * v in
      for u = 0 to v - 1 do
        d.dw_dp.(base + u) <- d.dw_dist.((t * v) + u)
      done
    done;
    for mask = 3 to full do
      if mask land (mask - 1) <> 0 then begin
        dw_merge_pass d mask;
        let bm = mask * v in
        for vtx = 0 to v - 1 do
          let best = ref infinity in
          for u = 0 to v - 1 do
            let c = d.dw_merge.(u) +. d.dw_dist.((u * v) + vtx) in
            if c < !best then best := c
          done;
          d.dw_dp.(bm + vtx) <- !best
        done
      end
    done;
    d.dw_dp.((full * v) + pi.(0))

  (* reconstruct one optimal tree as a list of grid-vertex edges *)
  let dw_tree d pi =
    let n = d.dw_n in
    let v = n * n in
    let edges = ref [] in
    let rec tree mask vtx =
      if mask land (mask - 1) = 0 then begin
        let p =
          let rec bit i m = if m land 1 = 1 then i else bit (i + 1) (m lsr 1) in
          bit 0 mask
        in
        let t = (p * n) + pi.(p) in
        if t <> vtx then edges := (t, vtx) :: !edges
      end
      else begin
        dw_merge_pass d mask;
        let target = d.dw_dp.((mask * v) + vtx) in
        let u = ref (-1) in
        let k = ref 0 in
        while !u < 0 && !k < v do
          if d.dw_merge.(!k) +. d.dw_dist.((!k * v) + vtx) = target then
            u := !k;
          incr k
        done;
        let u = !u in
        assert (u >= 0);
        if u <> vtx then edges := (u, vtx) :: !edges;
        split mask u d.dw_merge.(u)
      end
    and split mask u target =
      let low = mask land (-mask) in
      let sub = ref ((mask - 1) land mask) in
      let found = ref 0 in
      while !found = 0 && !sub <> 0 do
        if !sub land low <> 0
           && d.dw_dp.((!sub * v) + u)
              +. d.dw_dp.(((mask lxor !sub) * v) + u)
              = target
        then found := !sub
        else sub := (!sub - 1) land mask
      done;
      assert (!found <> 0);
      tree !found u;
      tree (mask lxor !found) u
    in
    tree ((1 lsl n) - 1) pi.(0);
    !edges

  (* -- stored topology entries --

     Node ids 0 .. n-1 are the canonical pins (pin a at Hanan ranks
     (a, pi.(a))); ids n .. n+s-1 are Steiner points at ranks
     (e_sx.(k), e_sy.(k)).  Edges are abstract rectilinear
     connections. *)
  type entry = {
    e_s : int;
    e_sx : int array;
    e_sy : int array;
    e_ea : int array;
    e_eb : int array;
  }

  let entry_of_edges n pi edges =
    let v = n * n in
    let is_term = Array.make v false in
    for p = 0 to n - 1 do is_term.((p * n) + pi.(p)) <- true done;
    let adj = Array.make v [] in
    List.iter
      (fun (a, b) ->
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b))
      edges;
    (* prune non-terminal leaves and splice non-terminal degree-2
       vertices; with distinct grid coordinates both operations preserve
       the (optimal) tree length *)
    let changed = ref true in
    while !changed do
      changed := false;
      for u = 0 to v - 1 do
        if not is_term.(u) then
          match adj.(u) with
          | [] -> ()
          | [ a ] ->
            adj.(u) <- [];
            adj.(a) <- List.filter (fun w -> w <> u) adj.(a);
            changed := true
          | [ a; b ] when a <> b ->
            adj.(u) <- [];
            adj.(a) <- b :: List.filter (fun w -> w <> u) adj.(a);
            adj.(b) <- a :: List.filter (fun w -> w <> u) adj.(b);
            changed := true
          | [ a; _ ] ->
            adj.(u) <- [];
            adj.(a) <- List.filter (fun w -> w <> u) adj.(a);
            changed := true
          | _ -> ()
      done
    done;
    let sid = Array.make v (-1) in
    let steiners = ref [] in
    let s = ref 0 in
    for u = 0 to v - 1 do
      if (not is_term.(u)) && adj.(u) <> [] then begin
        sid.(u) <- n + !s;
        steiners := u :: !steiners;
        incr s
      end
    done;
    let term_id = Array.make v (-1) in
    for p = 0 to n - 1 do term_id.((p * n) + pi.(p)) <- p done;
    let id_of u = if is_term.(u) then term_id.(u) else sid.(u) in
    let edge_list = ref [] in
    for u = 0 to v - 1 do
      List.iter
        (fun w ->
          if u < w then begin
            let a = id_of u and b = id_of w in
            edge_list := ((min a b, max a b) :: !edge_list)
          end)
        adj.(u)
    done;
    let es = List.sort_uniq compare !edge_list in
    let sarr = Array.of_list (List.rev !steiners) in
    { e_s = !s;
      e_sx = Array.map (fun u -> u / n) sarr;
      e_sy = Array.map (fun u -> u mod n) sarr;
      e_ea = Array.of_list (List.map fst es);
      e_eb = Array.of_list (List.map snd es) }

  let entry_key e =
    let b = Buffer.create 64 in
    let p x =
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int x)
    in
    Buffer.add_string b (string_of_int e.e_s);
    Array.iter p e.e_sx;
    Array.iter p e.e_sy;
    Array.iter p e.e_ea;
    Array.iter p e.e_eb;
    Buffer.contents b

  (* length of a stored topology for canonical axis values [cx]/[cy]
     (cx.(a) = coordinate of canonical x-rank a, likewise cy) *)
  let entry_length e n pi cx cy =
    let m = Array.length e.e_ea in
    let len = ref 0.0 in
    for k = 0 to m - 1 do
      let a = e.e_ea.(k) and b = e.e_eb.(k) in
      let xa = if a < n then cx.(a) else cx.(e.e_sx.(a - n))
      and ya = if a < n then cy.(pi.(a)) else cy.(e.e_sy.(a - n)) in
      let xb = if b < n then cx.(b) else cx.(e.e_sx.(b - n))
      and yb = if b < n then cy.(pi.(b)) else cy.(e.e_sy.(b - n)) in
      len := !len +. Float.abs (xa -. xb) +. Float.abs (ya -. yb)
    done;
    !len

  (* -- class generation --

     The optimal-length function is a min of linear functionals of the
     rank spans, so a topology optimal somewhere in the open span cone
     stays optimal on the closure (ties included).  We seed with a fixed
     probe family (uniform spans; one stretched / shrunk span at a
     time), then draw random log-uniform span vectors, solving each
     exactly and patching the table whenever the stored candidates fall
     short, until [clean_target] consecutive draws need no patch. *)

  let probe_spans n =
    let m = (2 * n) - 2 in
    let probes = ref [ Array.make m 1.0 ] in
    for k = 0 to m - 1 do
      let p = Array.make m 1.0 in
      p.(k) <- 8.0;
      probes := p :: !probes;
      let q = Array.make m 1.0 in
      q.(k) <- 0.125;
      probes := q :: !probes
    done;
    List.rev !probes

  let coords_of_spans n spans xg yg =
    xg.(0) <- 0.0;
    yg.(0) <- 0.0;
    for i = 1 to n - 1 do
      xg.(i) <- xg.(i - 1) +. spans.(i - 1);
      yg.(i) <- yg.(i - 1) +. spans.(n - 2 + i)
    done

  (* ---- complete candidate generation: Pareto Dreyfus-Wagner ----

     A topology's length is a linear function of the rank spans:
     sum_k a_k xspan_k + sum_k b_k yspan_k, where a_k counts the edges
     whose x-interval crosses gap k (FLUTE's "potentially optimal
     wirelength vector").  Running the DW recursion over Pareto-minimal
     sets of these integer vectors instead of scalar lengths yields
     every vector that can be uniquely optimal for some span assignment
     — a provably complete candidate set, independent of sampling.
     Coefficients are bounded by the edge count (<= 2n - 1 <= 15), so a
     vector packs one byte per gap into a single int per axis: addition
     is machine addition and componentwise dominance is a SWAR guard-bit
     test.  Used for degrees <= [pareto_limit]; the set sizes (and DP
     cost) grow too fast beyond that. *)

  let pareto_limit = 7

  let gen_pareto n pic =
    let v = n * n in
    let h =
      let g = ref 0 in
      for _ = 1 to n - 1 do g := (!g lsl 8) lor 0x80 done;
      !g
    in
    (* seg.(i1 * n + i2), i1 <= i2: one count in each byte i1 .. i2-1 *)
    let seg = Array.make (n * n) 0 in
    for i1 = 0 to n - 1 do
      for i2 = i1 to n - 1 do
        let s = ref 0 in
        for k = i1 to i2 - 1 do s := !s + (1 lsl (8 * k)) done;
        seg.((i1 * n) + i2) <- !s
      done
    done;
    let segij a b = if a <= b then seg.((a * n) + b) else seg.((b * n) + a) in
    let dvx a b = segij (a / n) (b / n)
    and dvy a b = segij (a mod n) (b mod n) in
    (* a <= b in every byte: adding the guard bit to b_i - a_i leaves it
       set iff b_i >= a_i, and fields <= 15 never carry across bytes *)
    let dominates ax ay bx by =
      (bx + h - ax) land h = h && (by + h - ay) land h = h
    in
    let insert cell vx vy =
      if
        not (List.exists (fun (ax, ay) -> dominates ax ay vx vy) !cell)
      then
        cell :=
          (vx, vy)
          :: List.filter (fun (ax, ay) -> not (dominates vx vy ax ay)) !cell
    in
    let full = (1 lsl n) - 1 in
    let dp = Array.make ((full + 1) * v) [] in
    for p = 0 to n - 1 do
      let t = (p * n) + pic.(p) in
      let base = (1 lsl p) * v in
      for u = 0 to v - 1 do dp.(base + u) <- [ (dvx t u, dvy t u) ] done
    done;
    let merge = Array.make v [] in
    let merge_pass mask =
      Array.fill merge 0 v [];
      let low = mask land (-mask) in
      let sub = ref ((mask - 1) land mask) in
      while !sub <> 0 do
        if !sub land low <> 0 then begin
          let bs = !sub * v and br = (mask lxor !sub) * v in
          for u = 0 to v - 1 do
            let cell = ref merge.(u) in
            List.iter
              (fun (ax, ay) ->
                List.iter
                  (fun (bx, by) -> insert cell (ax + bx) (ay + by))
                  dp.(br + u))
              dp.(bs + u);
            merge.(u) <- !cell
          done
        end;
        sub := (!sub - 1) land mask
      done
    in
    for mask = 3 to full do
      if mask land (mask - 1) <> 0 then begin
        merge_pass mask;
        let bm = mask * v in
        for vtx = 0 to v - 1 do
          let cell = ref [] in
          for u = 0 to v - 1 do
            let dx = dvx u vtx and dy = dvy u vtx in
            List.iter (fun (mx, my) -> insert cell (mx + dx) (my + dy))
              merge.(u)
          done;
          dp.(bm + vtx) <- !cell
        done
      end
    done;
    let root = pic.(0) in
    (* reconstruct one topology per final Pareto vector, matching the
       integer vector sums back through the recursion *)
    let reconstruct fvx fvy =
      let edges = ref [] in
      let rec tree mask vtx vx vy =
        if mask land (mask - 1) = 0 then begin
          let p =
            let rec bit i m =
              if m land 1 = 1 then i else bit (i + 1) (m lsr 1)
            in
            bit 0 mask
          in
          let t = (p * n) + pic.(p) in
          if t <> vtx then edges := (t, vtx) :: !edges
        end
        else begin
          merge_pass mask;
          let ru = ref (-1) and rmx = ref 0 and rmy = ref 0 in
          let u = ref 0 in
          while !ru < 0 && !u < v do
            let dx = dvx !u vtx and dy = dvy !u vtx in
            if
              dominates dx dy vx vy
              && List.mem (vx - dx, vy - dy) merge.(!u)
            then begin
              ru := !u;
              rmx := vx - dx;
              rmy := vy - dy
            end
            else incr u
          done;
          assert (!ru >= 0);
          if !ru <> vtx then edges := (!ru, vtx) :: !edges;
          split mask !ru !rmx !rmy
        end
      and split mask u mx my =
        let low = mask land (-mask) in
        let sub = ref ((mask - 1) land mask) in
        let fs = ref 0 and fax = ref 0 and fay = ref 0 in
        while !fs = 0 && !sub <> 0 do
          (if !sub land low <> 0 then
             let rest = mask lxor !sub in
             match
               List.find_opt
                 (fun (ax, ay) ->
                   dominates ax ay mx my
                   && List.mem (mx - ax, my - ay) dp.((rest * v) + u))
                 dp.((!sub * v) + u)
             with
             | Some (ax, ay) ->
               fs := !sub;
               fax := ax;
               fay := ay
             | None -> ());
          if !fs = 0 then sub := (!sub - 1) land mask
        done;
        assert (!fs <> 0);
        tree !fs u !fax !fay;
        tree (mask lxor !fs) u (mx - !fax) (my - !fay)
      in
      tree full root fvx fvy;
      !edges
    in
    let seen = Hashtbl.create 16 in
    let entries = ref [] in
    List.iter
      (fun (fvx, fvy) ->
        let e = entry_of_edges n pic (reconstruct fvx fvy) in
        let k = entry_key e in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          entries := e :: !entries
        end)
      (List.rev dp.((full * v) + root));
    Array.of_list (List.rev !entries)

  (* ---- sampled generation for degrees above [pareto_limit] ----

     Seeded probe family plus randomized verification draws against the
     scalar DW oracle; deterministic, and near-exhaustive in practice,
     but without the completeness proof of the Pareto path (documented
     in DESIGN.md §11). *)

  let gen_sampled n key pic =
    let d = dw_make n in
    let xg = Array.make n 0.0 and yg = Array.make n 0.0 in
    let seen = Hashtbl.create 16 in
    let entries = ref [] in
    let solve_and_add () =
      let e = entry_of_edges n pic (dw_tree d pic) in
      let k = entry_key e in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        entries := e :: !entries
      end
    in
    List.iter
      (fun spans ->
        coords_of_spans n spans xg yg;
        ignore (dw_solve d pic xg yg);
        solve_and_add ())
      (probe_spans n);
    let st =
      ref
        (Int64.add
           (Int64.mul 0x100000001B3L (Int64.of_int n))
           (Int64.of_int key))
    in
    let clean_target = if n <= 6 then 24 else 48 in
    let max_draws = if n <= 6 then 600 else 1600 in
    let clean = ref 0 and draws = ref 0 in
    let spans = Array.make ((2 * n) - 2) 1.0 in
    let vals = Array.make n 0.0 in
    (* spans from n sorted uniform draws: matches the span statistics of
       uniformly placed pins, including near-coincident clusters *)
    let uniform_axis_spans off =
      for i = 0 to n - 1 do vals.(i) <- rng_float st done;
      Array.sort Float.compare vals;
      for i = 0 to n - 2 do
        spans.(off + i) <- vals.(i + 1) -. vals.(i)
      done
    in
    while !clean < clean_target && !draws < max_draws do
      incr draws;
      (match !draws mod 3 with
       | 0 ->
         (* log-uniform spans in [2^-3, 2^3] *)
         for k = 0 to (2 * n) - 3 do
           spans.(k) <-
             Float.exp ((rng_float st -. 0.5) *. (6.0 *. Float.log 2.0))
         done
       | 1 ->
         uniform_axis_spans 0;
         uniform_axis_spans (n - 1)
       | _ ->
         (* wide log-uniform in [2^-6, 2^6]: extreme aspect ratios *)
         for k = 0 to (2 * n) - 3 do
           spans.(k) <-
             Float.exp ((rng_float st -. 0.5) *. (12.0 *. Float.log 2.0))
         done);
      coords_of_spans n spans xg yg;
      let opt = dw_solve d pic xg yg in
      let best =
        List.fold_left
          (fun acc e -> Float.min acc (entry_length e n pic xg yg))
          infinity !entries
      in
      if best > opt +. 1e-9 +. (1e-12 *. opt) then begin
        solve_and_add ();
        clean := 0
      end
      else incr clean
    done;
    Array.of_list (List.rev !entries)

  let generate n key pic =
    if n <= pareto_limit then gen_pareto n pic else gen_sampled n key pic

  (* -- canonicalization --

     perm.(i)  = pin at x-rank i (ties broken by pin id)
     yperm.(j) = pin at y-rank j
     pi.(i)    = y-rank of the pin at x-rank i
     The class key minimizes the base-n encoding of [pi] over the 8
     dihedral transforms (flip x, flip y, transpose). *)

  let sort_ranks n coords perm =
    for i = 0 to n - 1 do perm.(i) <- i done;
    (* insertion sort: n <= 8, stable by construction *)
    for i = 1 to n - 1 do
      let p = perm.(i) in
      let c = coords.(p) in
      let j = ref (i - 1) in
      while !j >= 0 && coords.(perm.(!j)) > c do
        perm.(!j + 1) <- perm.(!j);
        decr j
      done;
      perm.(!j + 1) <- p
    done

  let canonicalize n xs ys =
    let perm = Array.make n 0 and yperm = Array.make n 0 in
    sort_ranks n xs perm;
    sort_ranks n ys yperm;
    let yrank = Array.make n 0 in
    for j = 0 to n - 1 do yrank.(yperm.(j)) <- j done;
    let pi = Array.make n 0 in
    for i = 0 to n - 1 do pi.(i) <- yrank.(perm.(i)) done;
    let pit = Array.make n 0 in
    let pic = Array.make n 0 in
    let best_key = ref max_int and best_t = ref 0 in
    for tr = 0 to 7 do
      let fx = tr land 1 <> 0 and fy = tr land 2 <> 0 and tp = tr land 4 <> 0 in
      for i = 0 to n - 1 do
        let j = pi.(i) in
        let fi = if fx then n - 1 - i else i in
        let fj = if fy then n - 1 - j else j in
        if tp then pit.(fj) <- fi else pit.(fi) <- fj
      done;
      let key = ref 0 in
      for a = n - 1 downto 0 do key := (!key * n) + pit.(a) done;
      if !key < !best_key then begin
        best_key := !key;
        best_t := tr;
        Array.blit pit 0 pic 0 n
      end
    done;
    (perm, yperm, pi, !best_key, !best_t, pic)

  (* -- tables: one per degree, process-wide --

     [try_build] only reads.  Generation mutates the tables and must
     run from sequential code (Sta.Nets patches missing classes after
     its parallel phase); [gen_lock] additionally serializes generators
     so a class is published only once, fully built. *)

  let tables : (int, entry array) Hashtbl.t array =
    Array.init (max_degree + 1) (fun _ -> Hashtbl.create 64)

  let gen_lock = Mutex.create ()

  let class_count n =
    if n >= 0 && n <= max_degree then Hashtbl.length tables.(n) else 0

  let ensure_class n key pic =
    match Hashtbl.find_opt tables.(n) key with
    | Some es -> es
    | None ->
      Mutex.lock gen_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock gen_lock)
        (fun () ->
          match Hashtbl.find_opt tables.(n) key with
          | Some es -> es
          | None ->
            let es = generate n key pic in
            Hashtbl.replace tables.(n) key es;
            es)

  (* -- materialization: canonical entry -> rooted tree in pin space -- *)
  let materialize n entries perm yperm tr pic xs ys =
    let sx = Array.make n 0.0 and sy = Array.make n 0.0 in
    for i = 0 to n - 1 do
      sx.(i) <- xs.(perm.(i));
      sy.(i) <- ys.(yperm.(i))
    done;
    let fx = tr land 1 <> 0 and fy = tr land 2 <> 0 and tp = tr land 4 <> 0 in
    (* canonical axis values: the canonical x-axis maps to our y-axis
       under transpose; flips reverse rank order (harmless for the
       absolute differences in entry_length) *)
    let cx = Array.make n 0.0 and cy = Array.make n 0.0 in
    for a = 0 to n - 1 do
      if tp then begin
        cx.(a) <- sy.(if fy then n - 1 - a else a);
        cy.(a) <- sx.(if fx then n - 1 - a else a)
      end
      else begin
        cx.(a) <- sx.(if fx then n - 1 - a else a);
        cy.(a) <- sy.(if fy then n - 1 - a else a)
      end
    done;
    let best = ref entries.(0) in
    let best_len = ref (entry_length entries.(0) n pic cx cy) in
    for k = 1 to Array.length entries - 1 do
      let l = entry_length entries.(k) n pic cx cy in
      if l < !best_len then begin
        best_len := l;
        best := entries.(k)
      end
    done;
    let e = !best in
    (* inverse transform: canonical ranks (a, b) -> our ranks (i, j) *)
    let inv_i a b =
      if tp then (if fx then n - 1 - b else b)
      else if fx then n - 1 - a
      else a
    and inv_j a b =
      if tp then (if fy then n - 1 - a else a)
      else if fy then n - 1 - b
      else b
    in
    let s = e.e_s in
    let total = n + s in
    let txs = Array.make total 0.0 and tys = Array.make total 0.0 in
    let xsrc = Array.make total 0 and ysrc = Array.make total 0 in
    for p = 0 to n - 1 do
      txs.(p) <- xs.(p);
      tys.(p) <- ys.(p);
      xsrc.(p) <- p;
      ysrc.(p) <- p
    done;
    for k = 0 to s - 1 do
      let a = e.e_sx.(k) and b = e.e_sy.(k) in
      let i = inv_i a b and j = inv_j a b in
      txs.(n + k) <- sx.(i);
      tys.(n + k) <- sy.(j);
      xsrc.(n + k) <- perm.(i);
      ysrc.(n + k) <- yperm.(j)
    done;
    let node_of id =
      if id >= n then id else perm.(inv_i id pic.(id))
    in
    let adj = Array.make total [] in
    for k = 0 to Array.length e.e_ea - 1 do
      let a = node_of e.e_ea.(k) and b = node_of e.e_eb.(k) in
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b)
    done;
    let parent = Array.make total (-1) in
    let order = Array.make total 0 in
    let visited = Array.make total false in
    let queue = Array.make total 0 in
    visited.(0) <- true;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = queue.(!head) in
      order.(!head) <- v;
      incr head;
      List.iter
        (fun u ->
          if not visited.(u) then begin
            visited.(u) <- true;
            parent.(u) <- v;
            queue.(!tail) <- u;
            incr tail
          end)
        adj.(v)
    done;
    if !tail <> total then
      invalid_arg "Steiner.Lut: internal error, topology is disconnected";
    { pin_count = n; xs = txs; ys = tys; parent;
      x_source = xsrc; y_source = ysrc; order }

  let try_build ~xs ~ys =
    let n = Array.length xs in
    if n < 2 || n > max_degree then None
    else begin
      let perm, yperm, _, key, tr, pic = canonicalize n xs ys in
      match Hashtbl.find_opt tables.(n) key with
      | None -> None
      | Some entries -> Some (materialize n entries perm yperm tr pic xs ys)
    end

  let ensure ~xs ~ys =
    let n = Array.length xs in
    if n >= 2 && n <= max_degree then begin
      let _, _, _, key, _, pic = canonicalize n xs ys in
      ignore (ensure_class n key pic)
    end

  let build ~xs ~ys =
    let n = Array.length xs in
    if n < 2 || n > max_degree then
      invalid_arg "Steiner.Lut.build: degree out of range";
    let perm, yperm, _, key, tr, pic = canonicalize n xs ys in
    let entries = ensure_class n key pic in
    materialize n entries perm yperm tr pic xs ys

  (* exact RSMT length by Dreyfus-Wagner on the real coordinates
     (no symmetry reduction); independent oracle for tests *)
  let optimal_length ~xs ~ys =
    let n = Array.length xs in
    if n < 2 then 0.0
    else begin
      let perm = Array.make n 0 and yperm = Array.make n 0 in
      sort_ranks n xs perm;
      sort_ranks n ys yperm;
      let yrank = Array.make n 0 in
      for j = 0 to n - 1 do yrank.(yperm.(j)) <- j done;
      let pi = Array.make n 0 in
      for i = 0 to n - 1 do pi.(i) <- yrank.(perm.(i)) done;
      let sx = Array.map (fun p -> xs.(p)) perm in
      let sy = Array.map (fun p -> ys.(p)) yperm in
      let d = dw_make n in
      dw_solve d pi sx sy
    end
end

let build ?exact_limit ?(lut = true) ~xs ~ys () =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Steiner.build: empty net";
  if Array.length ys <> n then invalid_arg "Steiner.build: xs/ys mismatch";
  match exact_limit with
  | Some exact_limit ->
    (* legacy oracle path: exhaustive Hanan-subset optimum up to the
       clamped limit, Prim + Steinerisation beyond *)
    let exact_limit = max 2 (min 6 exact_limit) in
    let g =
      if n = 1 then make_graph 1 xs ys
      else if n = 2 then begin
        let g = make_graph 2 xs ys in
        add_edge g 0 1;
        g
      end
      else if n = 3 then build_median3 xs ys
      else if n <= exact_limit then exact_rsmt xs ys
      else begin
        let g = make_graph ((2 * n) - 2) xs ys in
        let edges, _ = prim_edges xs ys n in
        List.iter (fun (a, b) -> add_edge g a b) edges;
        steinerize g;
        g
      end
    in
    finalize g n
  | None ->
    if n = 1 then build_single xs ys
    else if n = 2 then build_two xs ys
    else if n = 3 then build_three xs ys
    else if lut && n <= Lut.max_degree then Lut.build ~xs ~ys
    else heuristic_tree xs ys n

let update_coordinates t ~xs ~ys =
  if Array.length xs <> t.pin_count || Array.length ys <> t.pin_count then
    invalid_arg "Steiner.update_coordinates: pin count mismatch";
  for i = 0 to t.pin_count - 1 do
    t.xs.(i) <- xs.(i);
    t.ys.(i) <- ys.(i)
  done;
  for v = t.pin_count to node_count t - 1 do
    t.xs.(v) <- xs.(t.x_source.(v));
    t.ys.(v) <- ys.(t.y_source.(v))
  done

let accumulate_pin_gradient t ~node_gx ~node_gy ~pin_gx ~pin_gy =
  let n = node_count t in
  if Array.length node_gx < n || Array.length node_gy < n then
    invalid_arg "Steiner.accumulate_pin_gradient: node size mismatch";
  if Array.length pin_gx < t.pin_count || Array.length pin_gy < t.pin_count
  then invalid_arg "Steiner.accumulate_pin_gradient: pin size mismatch";
  for v = 0 to n - 1 do
    pin_gx.(t.x_source.(v)) <- pin_gx.(t.x_source.(v)) +. node_gx.(v);
    pin_gy.(t.y_source.(v)) <- pin_gy.(t.y_source.(v)) +. node_gy.(v)
  done
