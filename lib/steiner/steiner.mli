(** Rectilinear Steiner minimal tree (RSMT) construction with
    differentiability support (paper §3.4.1, Fig. 4).

    This is the FLUTE analogue: nets of degree 2 and 3 are built
    directly; degrees 4 to [Lut.max_degree] get an {e optimal} RSMT from
    a topology lookup table keyed by the pin-permutation class (the
    POWV/POST idea of Chu & Wong's FLUTE), with per-class candidate sets
    generated exactly on first use by a Dreyfus-Wagner Steiner DP on the
    Hanan grid; larger nets use a rectilinear Prim MST refined by greedy
    local Steinerisation (inserting the median point of two adjacent
    tree edges while it shortens the tree).  The pre-LUT exhaustive
    Hanan-subset search survives behind [?exact_limit] as an independent
    test oracle.

    Every Steiner point's coordinates equal coordinates of specific pins
    of the net (Hanan's theorem): point [s] takes its x from pin
    [x_source s] and its y from pin [y_source s].  This {e provenance} is
    what the paper's Figure 4 exploits: gradients landing on a Steiner
    point are forwarded to the pins that determine it, and when pins move
    slightly, Steiner points are updated in O(1) without re-running the
    tree algorithm (the "reuse FLUTE results for 9 iterations" trick of
    §3.6). *)

(** A rooted tree over the net's pins plus inserted Steiner points.
    Nodes [0 .. pin_count - 1] are the pins in the caller's order (driver
    first); the remaining nodes are Steiner points.  The root is node 0.
    [parent.(0) = -1]; every other node's edge to its parent is an
    abstract rectilinear connection of length
    [|dx| + |dy|] (corner bends do not affect Elmore delay, so they are
    not materialised). *)
type t = {
  pin_count : int;
  xs : float array;  (** mutable coordinates of all nodes. *)
  ys : float array;
  parent : int array;
  x_source : int array;  (** pin index providing x; identity for pins. *)
  y_source : int array;
  order : int array;  (** topological order, root first. *)
}

val node_count : t -> int
val is_steiner : t -> int -> bool

val edge_length : t -> int -> float
(** [edge_length t v] is the rectilinear length of the edge
    [(parent v, v)]; 0 for the root. *)

val total_length : t -> float

module Lut : sig
  (** FLUTE-style topology lookup tables: per pin-permutation class
      (reduced by the 8 dihedral symmetries of the plane), a small set
      of candidate topologies whose per-instance shortest member is the
      exact RSMT.  Classes are generated on first use by an exact
      Dreyfus-Wagner Steiner DP over a probe family of coordinate-span
      vectors, then verified (and patched) against randomized draws.
      Generation is deterministic, keyed only by the class, so tables
      are identical across runs and domain counts. *)

  val max_degree : int
  (** Largest net degree served by the tables (8). *)

  val try_build : xs:float array -> ys:float array -> t option
  (** Read-only lookup: [None] when the degree is out of range or the
      class has not been generated yet.  Never mutates the tables, so it
      is safe to call from parallel workers while no generator runs. *)

  val ensure : xs:float array -> ys:float array -> unit
  (** Generate (and publish) the class covering this net if missing.
      Mutates the shared tables: call only from sequential code. *)

  val build : xs:float array -> ys:float array -> t
  (** [ensure] followed by [try_build], for sequential callers. *)

  val class_count : int -> int
  (** Number of generated classes for a given degree (observability). *)

  val optimal_length : xs:float array -> ys:float array -> float
  (** Exact RSMT length by Dreyfus-Wagner on the net's own Hanan grid,
      bypassing the tables (test oracle; exponential in degree). *)
end

val build :
  ?exact_limit:int -> ?lut:bool -> xs:float array -> ys:float array ->
  unit -> t
(** [build ~xs ~ys ()] constructs a tree over pins at [(xs, ys)] (driver
    at index 0).  The default path is: direct construction for degree
    <= 3, the topology LUT (exact RSMT) for degree <= [Lut.max_degree],
    and Prim + Steinerisation beyond; pass [~lut:false] to skip the LUT
    and use the heuristic from degree 4 up (used by parallel callers
    when a class is not generated yet, and by benchmarks as the
    baseline).  Passing [?exact_limit] instead selects the legacy
    oracle path: exhaustive Hanan-subset search up to that degree
    (clamped to [2, 6] — the subset enumeration is O(2^[n^2]) and
    unusable beyond), Prim + Steinerisation above it.
    @raise Invalid_argument on empty input or mismatched lengths. *)

val update_coordinates : t -> xs:float array -> ys:float array -> unit
(** Refresh pin coordinates in place and recompute Steiner point
    coordinates from their provenance, keeping the topology (the paper's
    incremental update between FLUTE calls). *)

val accumulate_pin_gradient :
  t ->
  node_gx:float array ->
  node_gy:float array ->
  pin_gx:float array ->
  pin_gy:float array ->
  unit
(** Fold per-node gradients into per-pin gradients: each pin receives its
    own gradient plus the gradients of every Steiner point whose x (resp.
    y) it determines.  [pin_gx]/[pin_gy] are {b accumulated into} (callers
    zero them).  All four arrays may be longer than needed
    ([node_count] / [pin_count] entries are used), so callers can reuse
    one large buffer across nets without [Array.sub] copies. *)

val mst_length : xs:float array -> ys:float array -> float
(** Length of the rectilinear minimum spanning tree over the pins only
    (upper bound reference for tests). *)

val hpwl : xs:float array -> ys:float array -> float
(** Net bounding-box half-perimeter (lower bound reference for tests). *)
