(** Rectilinear Steiner minimal tree (RSMT) construction with
    differentiability support (paper §3.4.1, Fig. 4).

    This is the FLUTE substitute: nets with up to [exact_limit] pins get an
    optimal RSMT by Hanan-grid enumeration; larger nets use a rectilinear
    Prim MST refined by greedy local Steinerisation (inserting the median
    point of two adjacent tree edges while it shortens the tree).

    Every Steiner point's coordinates equal coordinates of specific pins
    of the net (Hanan's theorem): point [s] takes its x from pin
    [x_source s] and its y from pin [y_source s].  This {e provenance} is
    what the paper's Figure 4 exploits: gradients landing on a Steiner
    point are forwarded to the pins that determine it, and when pins move
    slightly, Steiner points are updated in O(1) without re-running the
    tree algorithm (the "reuse FLUTE results for 9 iterations" trick of
    §3.6). *)

(** A rooted tree over the net's pins plus inserted Steiner points.
    Nodes [0 .. pin_count - 1] are the pins in the caller's order (driver
    first); the remaining nodes are Steiner points.  The root is node 0.
    [parent.(0) = -1]; every other node's edge to its parent is an
    abstract rectilinear connection of length
    [|dx| + |dy|] (corner bends do not affect Elmore delay, so they are
    not materialised). *)
type t = {
  pin_count : int;
  xs : float array;  (** mutable coordinates of all nodes. *)
  ys : float array;
  parent : int array;
  x_source : int array;  (** pin index providing x; identity for pins. *)
  y_source : int array;
  order : int array;  (** topological order, root first. *)
}

val node_count : t -> int
val is_steiner : t -> int -> bool

val edge_length : t -> int -> float
(** [edge_length t v] is the rectilinear length of the edge
    [(parent v, v)]; 0 for the root. *)

val total_length : t -> float

val build : ?exact_limit:int -> xs:float array -> ys:float array -> unit -> t
(** [build ~xs ~ys ()] constructs a tree over pins at [(xs, ys)] (driver
    at index 0).  [exact_limit] (default 4, clamped to [2, 6]) bounds the
    net degree for which the exhaustive optimal construction runs.
    @raise Invalid_argument on empty input or mismatched lengths. *)

val update_coordinates : t -> xs:float array -> ys:float array -> unit
(** Refresh pin coordinates in place and recompute Steiner point
    coordinates from their provenance, keeping the topology (the paper's
    incremental update between FLUTE calls). *)

val accumulate_pin_gradient :
  t ->
  node_gx:float array ->
  node_gy:float array ->
  pin_gx:float array ->
  pin_gy:float array ->
  unit
(** Fold per-node gradients into per-pin gradients: each pin receives its
    own gradient plus the gradients of every Steiner point whose x (resp.
    y) it determines.  [pin_gx]/[pin_gy] are {b accumulated into} (callers
    zero them).  All four arrays may be longer than needed
    ([node_count] / [pin_count] entries are used), so callers can reuse
    one large buffer across nets without [Array.sub] copies. *)

val mst_length : xs:float array -> ys:float array -> float
(** Length of the rectilinear minimum spanning tree over the pins only
    (upper bound reference for tests). *)

val hpwl : xs:float array -> ys:float array -> float
(** Net bounding-box half-perimeter (lower bound reference for tests). *)
