module Rng = struct
  (* splitmix64: tiny, high-quality, and stable across platforms. *)
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t n =
    if n <= 0 then invalid_arg "Workload.Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
                    (Int64.of_int n))

  let float t x =
    let u = Int64.to_float (Int64.shift_right_logical (next t) 11) in
    x *. u /. 9007199254740992.0 (* 2^53 *)

  let bool t p = float t 1.0 < p

  let choose_weighted t choices =
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 choices in
    let r = float t total in
    let rec pick acc = function
      | [] -> invalid_arg "Workload.Rng.choose_weighted: empty"
      | [ (_, v) ] -> v
      | (w, v) :: rest -> if r < acc +. w then v else pick (acc +. w) rest
    in
    pick 0.0 choices
end

type spec = {
  sp_name : string;
  sp_seed : int;
  sp_cells : int;
  sp_ff_ratio : float;
  sp_inputs : int;
  sp_outputs : int;
  sp_depth : int;
  sp_utilization : float;
  sp_clock_period : float;
  sp_hub_ratio : float;
  sp_hub_prob : float;
  sp_hotspot : float;
  sp_hotspot_clusters : int;
}

let default_spec =
  { sp_name = "default";
    sp_seed = 1;
    sp_cells = 2000;
    sp_ff_ratio = 0.12;
    sp_inputs = 48;
    sp_outputs = 48;
    sp_depth = 16;
    sp_utilization = 0.55;
    sp_clock_period = 900.0;
    sp_hub_ratio = 0.002;
    sp_hub_prob = 0.04;
    sp_hotspot = 0.0;
    sp_hotspot_clusters = 3 }

(* Relative weights of combinational cell types, loosely following the
   composition of a mapped industrial design. *)
let comb_mix =
  [ (0.12, "INV_X1"); (0.05, "INV_X2"); (0.02, "INV_X4");
    (0.05, "BUF_X1"); (0.03, "BUF_X2");
    (0.16, "NAND2_X1"); (0.05, "NAND2_X2");
    (0.11, "NOR2_X1"); (0.04, "NOR2_X2");
    (0.07, "AND2_X1"); (0.07, "OR2_X1"); (0.06, "XOR2_X1");
    (0.05, "AOI21_X1"); (0.05, "OAI21_X1"); (0.07, "MUX2_X1") ]

let ff_mix = [ (0.8, "DFF_X1"); (0.2, "DFF_X2") ]

(* Deterministic pin offsets inside a cell: spread along x, alternate
   above/below the center line. *)
let pin_offset (lc : Liberty.lib_cell) j =
  let k = Array.length lc.Liberty.lc_pins in
  let w = lc.Liberty.lc_width and h = lc.Liberty.lc_height in
  let ox = (w *. (float_of_int (j + 1) /. float_of_int (k + 1))) -. (w /. 2.0) in
  let oy = if j land 1 = 0 then -.h /. 8.0 else h /. 8.0 in
  (ox, oy)

(* An output pool per logic level, tracking which outputs are still
   unused so fanout-0 outputs stay rare. *)
type pool = {
  mutable members : int array;
  mutable used : bool array;
  mutable unused_count : int;
}

let pool_of_list pins =
  let members = Array.of_list pins in
  { members;
    used = Array.make (Array.length members) false;
    unused_count = Array.length members }

let pool_pick rng pool =
  let n = Array.length pool.members in
  if n = 0 then None
  else begin
    let idx =
      if pool.unused_count > 0 && Rng.bool rng 0.7 then begin
        (* pick among unused members: walk from a random start *)
        let start = Rng.int rng n in
        let rec find i steps =
          if steps >= n then start
          else if not pool.used.(i) then i
          else find ((i + 1) mod n) (steps + 1)
        in
        find start 0
      end
      else Rng.int rng n
    in
    if not pool.used.(idx) then begin
      pool.used.(idx) <- true;
      pool.unused_count <- pool.unused_count - 1
    end;
    Some pool.members.(idx)
  end

let pool_unused pool =
  let acc = ref [] in
  Array.iteri
    (fun i used -> if not used then acc := pool.members.(i) :: !acc)
    pool.used;
  !acc

let generate lib spec =
  let rng = Rng.create spec.sp_seed in
  let cell_of name =
    match Liberty.cell_index lib name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Workload: no lib cell %S" name)
  in
  let n_ff =
    max 1 (int_of_float (Float.round (spec.sp_ff_ratio *. float_of_int spec.sp_cells)))
  in
  let n_comb = max 1 (spec.sp_cells - n_ff) in
  (* choose every instance's type up front to size the region *)
  let comb_kinds =
    Array.init n_comb (fun _ -> cell_of (Rng.choose_weighted rng comb_mix))
  in
  let ff_kinds =
    Array.init n_ff (fun _ -> cell_of (Rng.choose_weighted rng ff_mix))
  in
  let area_of k =
    let lc = lib.Liberty.lib_cells.(k) in
    lc.Liberty.lc_width *. lc.Liberty.lc_height
  in
  let total_area =
    Array.fold_left (fun a k -> a +. area_of k) 0.0 comb_kinds
    +. Array.fold_left (fun a k -> a +. area_of k) 0.0 ff_kinds
  in
  let side = Float.sqrt (total_area /. spec.sp_utilization) in
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:side ~hy:side in
  let b = Netlist.Builder.create ~region ~row_height:1.4 spec.sp_name in
  (* ---- pads on the periphery ---- *)
  let perimeter_position t =
    (* t in [0,1) walks the boundary counter-clockwise from (0,0) *)
    let s = t *. 4.0 in
    if s < 1.0 then (s *. side, 0.0)
    else if s < 2.0 then (side, (s -. 1.0) *. side)
    else if s < 3.0 then ((3.0 -. s) *. side, side)
    else (0.0, (4.0 -. s) *. side)
  in
  let pad_cells = ref [] in
  let make_pad idx prefix direction =
    (* positions are provisional; all pads are respaced after freeze once
       the final pad count (including overflow observation pads) is known *)
    let cell =
      Netlist.Builder.add_cell b
        ~name:(Printf.sprintf "%s%d" prefix idx)
        ~lib_cell:(-1) ~width:2.0 ~height:2.0 ~x:0.0 ~y:0.0 ~fixed:true ()
    in
    pad_cells := cell :: !pad_cells;
    Netlist.Builder.add_pin b ~cell
      ~name:(Printf.sprintf "%s%d/P" prefix idx)
      ~direction ()
  in
  let pi_pins =
    List.init spec.sp_inputs (fun i -> make_pad i "pi" Netlist.Output)
  in
  (* ---- standard cells ---- *)
  let random_position () =
    let margin = 2.0 in
    (margin +. Rng.float rng (side -. (2.0 *. margin)),
     margin +. Rng.float rng (side -. (2.0 *. margin)))
  in
  let instantiate prefix i kind =
    let lc = lib.Liberty.lib_cells.(kind) in
    let x, y = random_position () in
    let name = Printf.sprintf "%s%d" prefix i in
    let cell =
      Netlist.Builder.add_cell b ~name ~lib_cell:kind
        ~width:lc.Liberty.lc_width ~height:lc.Liberty.lc_height ~x ~y ()
    in
    let pins =
      Array.mapi
        (fun j (lp : Liberty.lib_pin) ->
          let ox, oy = pin_offset lc j in
          Netlist.Builder.add_pin b ~cell
            ~name:(Printf.sprintf "%s/%s" name lp.Liberty.lp_name)
            ~direction:
              (match lp.Liberty.lp_direction with
               | Liberty.Lib_input -> Netlist.Input
               | Liberty.Lib_output -> Netlist.Output)
            ~offset_x:ox ~offset_y:oy ~lib_pin:j ())
        lc.Liberty.lc_pins
    in
    (kind, pins)
  in
  let depth = max 2 spec.sp_depth in
  let comb_level = Array.init n_comb (fun _ -> 1 + Rng.int rng depth) in
  let combs = Array.mapi (fun i k -> instantiate "u" i k) comb_kinds in
  let ffs = Array.mapi (fun i k -> instantiate "ff" i k) ff_kinds in
  (* ---- congestion hotspots (opt-in) ----
     A fraction of the combinational cells is partitioned into a few
     tightly inter-wired clusters: cluster members preferentially drive
     each other (with a bias towards a handful of designated
     high-fanout cluster hubs), so the placer pulls each cluster into a
     dense blob that many nets cross — a routing hotspot.  All hotspot
     randomness comes from a dedicated RNG, and no draw happens when
     [sp_hotspot = 0], so existing seeds keep their exact streams. *)
  let hotspot_on = spec.sp_hotspot > 0.0 && spec.sp_hotspot_clusters > 0 in
  let hrng = Rng.create (spec.sp_seed lxor 0x68f7) in
  let cluster_of = Array.make n_comb (-1) in
  let cluster_outputs =
    Array.make (max 1 spec.sp_hotspot_clusters) ([] : (int * int) list)
  in
  if hotspot_on then begin
    for i = 0 to n_comb - 1 do
      if Rng.bool hrng spec.sp_hotspot then
        cluster_of.(i) <- Rng.int hrng spec.sp_hotspot_clusters
    done;
    Array.iteri
      (fun i (kind, pins) ->
        let c = cluster_of.(i) in
        if c >= 0 then begin
          let lc = lib.Liberty.lib_cells.(kind) in
          match Liberty.output_pins lc with
          | [ y ] ->
            cluster_outputs.(c) <-
              (pins.(y), comb_level.(i)) :: cluster_outputs.(c)
          | [] | _ :: _ -> ()
        end)
      combs
  end;
  let pick_cluster_driver c level =
    let eligible =
      List.filter (fun (_, l) -> l < level) cluster_outputs.(c)
    in
    match eligible with
    | [] -> None
    | _ :: _ ->
      let len = List.length eligible in
      (* half the picks concentrate on a few fixed members, creating
         genuinely high-degree nets inside the cluster *)
      let idx =
        if Rng.bool hrng 0.5 then Rng.int hrng (min len 8)
        else Rng.int hrng len
      in
      Some (fst (List.nth eligible idx))
  in
  (* ---- wiring ---- *)
  (* output pools per level; level 0 holds PIs and flip-flop Q pins *)
  let q_pins =
    Array.to_list ffs
    |> List.map (fun (kind, pins) ->
      let lc = lib.Liberty.lib_cells.(kind) in
      match Liberty.output_pins lc with
      | [ q ] -> pins.(q)
      | [] | _ :: _ -> invalid_arg "Workload: flip-flop without unique Q")
  in
  let level_outputs = Array.make (depth + 1) [] in
  level_outputs.(0) <- pi_pins @ q_pins;
  Array.iteri
    (fun i (kind, pins) ->
      let lc = lib.Liberty.lib_cells.(kind) in
      match Liberty.output_pins lc with
      | [ y ] ->
        let l = comb_level.(i) in
        level_outputs.(l) <- pins.(y) :: level_outputs.(l)
      | [] | _ :: _ -> invalid_arg "Workload: comb cell without unique output")
    combs;
  let pools = Array.map pool_of_list level_outputs in
  let sinks_of = Hashtbl.create (n_comb * 2) in
  let connect driver sink =
    let existing = Option.value ~default:[] (Hashtbl.find_opt sinks_of driver) in
    if List.mem sink existing then false
    else begin
      Hashtbl.replace sinks_of driver (sink :: existing);
      true
    end
  in
  let rec pick_driver_below level tries =
    (* prefer the immediately preceding level to realise the target depth *)
    let l =
      if tries = 0 || Rng.bool rng 0.55 then level - 1
      else Rng.int rng level
    in
    match pool_pick rng pools.(l) with
    | Some p -> p
    | None -> if tries > 8 then pools.(0).members.(0)
      else pick_driver_below level (tries + 1)
  in
  (* a few outputs act as high-fanout hub drivers (enable/control-style
     nets), giving the benchmark the fanout skew of mapped designs *)
  let hubs =
    let n_hubs =
      int_of_float (Float.round (spec.sp_hub_ratio *. float_of_int n_comb))
    in
    Array.init (max 0 n_hubs) (fun _ ->
      let i = Rng.int rng n_comb in
      let kind, pins = combs.(i) in
      let lc = lib.Liberty.lib_cells.(kind) in
      match Liberty.output_pins lc with
      | [ y ] -> (pins.(y), comb_level.(i))
      | [] | _ :: _ -> invalid_arg "Workload: comb cell without unique output")
  in
  let pick_hub_below level =
    let eligible =
      Array.to_list hubs
      |> List.filter_map (fun (p, l) -> if l < level then Some p else None)
    in
    match eligible with
    | [] -> None
    | _ :: _ -> Some (List.nth eligible (Rng.int rng (List.length eligible)))
  in
  Array.iteri
    (fun i (kind, pins) ->
      let lc = lib.Liberty.lib_cells.(kind) in
      let level = comb_level.(i) in
      List.iter
        (fun j ->
          let cluster_driver =
            if hotspot_on && cluster_of.(i) >= 0 && Rng.bool hrng 0.85 then
              pick_cluster_driver cluster_of.(i) level
            else None
          in
          match cluster_driver with
          | Some driver when connect driver pins.(j) -> ()
          | _ ->
          let hub_driver =
            if Rng.bool rng spec.sp_hub_prob then pick_hub_below level
            else None
          in
          match hub_driver with
          | Some driver when connect driver pins.(j) -> ()
          | Some _ | None ->
            let rec wire tries =
              let driver = pick_driver_below level tries in
              if not (connect driver pins.(j)) && tries < 4 then wire (tries + 1)
            in
            wire 0)
        (Liberty.input_pins lc))
    combs;
  (* flip-flop D pins capture deep logic *)
  let deep_min = max 1 (depth - 3) in
  Array.iter
    (fun (kind, pins) ->
      let lc = lib.Liberty.lib_cells.(kind) in
      let d_pin =
        match
          List.filter
            (fun j -> not lc.Liberty.lc_pins.(j).Liberty.lp_is_clock)
            (Liberty.input_pins lc)
        with
        | [ d ] -> d
        | [] | _ :: _ -> invalid_arg "Workload: flip-flop without unique D"
      in
      let rec wire tries =
        let l = deep_min + Rng.int rng (depth + 1 - deep_min) in
        match pool_pick rng pools.(l) with
        | Some driver -> if not (connect driver pins.(d_pin)) && tries < 6 then wire (tries + 1)
        | None -> if tries < 12 then wire (tries + 1)
          else begin
            let driver = pick_driver_below depth tries in
            ignore (connect driver pins.(d_pin))
          end
      in
      wire 0)
    ffs;
  (* primary outputs observe random deep outputs *)
  let next_po = ref 0 in
  let add_po driver =
    let sink = make_pad (spec.sp_inputs + !next_po) "po" Netlist.Input in
    incr next_po;
    ignore (connect driver sink)
  in
  for _ = 1 to spec.sp_outputs do
    let l = deep_min + Rng.int rng (depth + 1 - deep_min) in
    match pool_pick rng pools.(l) with
    | Some driver -> add_po driver
    | None -> ()
  done;
  (* leftover unused outputs get observation pads so no logic dangles *)
  Array.iter
    (fun pool ->
      List.iter
        (fun driver ->
          if not (Hashtbl.mem sinks_of driver) then add_po driver)
        (pool_unused pool))
    pools;
  (* materialise nets *)
  let net_id = ref 0 in
  Hashtbl.iter
    (fun driver sinks ->
      ignore
        (Netlist.Builder.add_net b
           ~name:(Printf.sprintf "n%d" !net_id)
           ~pins:(driver :: sinks));
      incr net_id)
    sinks_of;
  let design = Netlist.Builder.freeze b in
  (* space all pads evenly around the periphery *)
  let pads = Array.of_list (List.rev !pad_cells) in
  let npads = Array.length pads in
  Array.iteri
    (fun k cell_id ->
      let t = (float_of_int k +. 0.5) /. float_of_int (max 1 npads) in
      let x, y = perimeter_position t in
      let c = design.Netlist.cells.(cell_id) in
      c.Netlist.x <- x;
      c.Netlist.y <- y)
    pads;
  let constraints =
    { Sta.Constraints.default with
      Sta.Constraints.clock_period = spec.sp_clock_period }
  in
  (design, constraints)

let superblue_mini ?(scale = 0.01) () =
  let mk name seed cells depth period =
    { sp_name = name ^ "-mini";
      sp_seed = seed;
      sp_cells = max 200 (int_of_float (float_of_int cells *. scale));
      sp_ff_ratio = 0.12;
      sp_inputs = max 8 (int_of_float (0.02 *. float_of_int cells *. scale));
      sp_outputs = max 8 (int_of_float (0.02 *. float_of_int cells *. scale));
      sp_depth = depth;
      sp_utilization = 0.55;
      sp_clock_period = period;
      sp_hub_ratio = 0.002;
      sp_hub_prob = 0.04;
      sp_hotspot = 0.0;
      sp_hotspot_clusters = 3 }
  in
  [ mk "superblue1" 1001 1209716 22 1250.0;
    mk "superblue3" 1003 1213253 24 1340.0;
    mk "superblue4" 1004 795645 20 1130.0;
    mk "superblue5" 1005 1086888 26 1420.0;
    mk "superblue7" 1007 1931639 24 1360.0;
    mk "superblue10" 1010 1876103 28 1520.0;
    mk "superblue16" 1016 981559 20 1140.0;
    mk "superblue18" 1018 768068 18 1040.0 ]

let find_spec ?scale name =
  List.find_opt (fun s -> String.equal s.sp_name name)
    (superblue_mini ?scale ())
