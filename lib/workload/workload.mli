(** Synthetic benchmark generator.

    The ICCAD 2015 superblue designs used in the paper are proprietary
    and million-cell scale; this module generates deterministic scaled
    stand-ins that preserve the structural features timing-driven
    placement responds to: levelised combinational logic between
    flip-flop stages (deep critical paths, §2.2), realistic fanout skew,
    IO pads on the periphery and a clock period that leaves the design in
    violation after wirelength-only placement. *)

(** A small deterministic PRNG (splitmix64) so generated benchmarks are
    bit-identical across OCaml versions and platforms. *)
module Rng : sig
  type t

  val create : int -> t
  val int : t -> int -> int
  (** [int rng n] is uniform in [0, n). *)

  val float : t -> float -> float
  (** [float rng x] is uniform in [0, x). *)

  val bool : t -> float -> bool
  (** [bool rng p] is true with probability [p]. *)

  val choose_weighted : t -> (float * 'a) list -> 'a
end

type spec = {
  sp_name : string;
  sp_seed : int;
  sp_cells : int;          (** target number of movable standard cells. *)
  sp_ff_ratio : float;     (** fraction of cells that are flip-flops. *)
  sp_inputs : int;         (** primary input pads. *)
  sp_outputs : int;        (** primary output pads. *)
  sp_depth : int;          (** target combinational depth. *)
  sp_utilization : float;  (** cell area / region area. *)
  sp_clock_period : float; (** ps. *)
  sp_hub_ratio : float;
      (** fraction of combinational outputs designated as high-fanout
          "hub" drivers (control/enable-style nets; default 0.002). *)
  sp_hub_prob : float;
      (** probability that any given input connects to a hub instead of
          regular level-based wiring (default 0.04). *)
  sp_hotspot : float;
      (** fraction of combinational cells partitioned into tightly
          inter-wired clusters that the placer pulls into dense blobs —
          deliberate routing hotspots for routability mode to fix
          (default 0.0: off; hotspot randomness uses a dedicated RNG,
          so 0.0 leaves existing seeds' streams bit-identical). *)
  sp_hotspot_clusters : int;
      (** number of hotspot clusters when [sp_hotspot > 0]
          (default 3). *)
}

val default_spec : spec

val generate : Liberty.t -> spec -> Netlist.t * Sta.Constraints.t
(** Build the netlist and its constraints.  Pads are placed fixed on the
    region periphery; movable cells get deterministic pseudo-random
    initial positions inside the region. *)

val superblue_mini : ?scale:float -> unit -> spec list
(** The eight Table 2 benchmarks scaled by [scale] (default 0.01: one
    hundredth of the original cell counts), with per-design seeds, depth
    and clock targets that reproduce the paper's relative difficulty. *)

val find_spec : ?scale:float -> string -> spec option
(** Look up a [superblue_mini ?scale ()] spec by name, e.g.
    ["superblue4-mini"].  [scale] as in {!superblue_mini}: the default
    0.01 gives ~10⁴-cell designs; 0.1 reaches ~10⁵ and 0.5–1.0 the
    paper's 10⁶-cell range (multilevel territory). *)
