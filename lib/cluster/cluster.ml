(* Bottom-up first-choice clustering and position prolongation for the
   multilevel placement V-cycle.  See cluster.mli for the model.

   Everything here is sequential and visits cells/nets in ascending id
   order with lowest-id tie-breaks, so coarsening is bit-identical at
   any domain count by construction.  The scoring scratch is two flat
   arrays (sparse accumulate + touched list), so a pass allocates
   nothing per cell. *)

module N = Netlist

type level = {
  fine : N.t;
  coarse : N.t;
  parent : int array;
}

(* Same deterministic hash as Core's init jitter: a cheap avalanche of
   the cell id, mapped to [0, 1). *)
let hash_float i salt =
  let h = ref ((i * 2654435761) + salt) in
  h := !h lxor (!h lsr 13);
  h := !h * 1274126177;
  h := !h lxor (!h lsr 16);
  float_of_int (!h land 0xFFFF) /. 65536.0

(* Union-find over fine cell ids; the representative is always the
   smallest member id (kept by unioning high into low), which is what
   makes tie-breaks and coarse-cell numbering deterministic. *)
let rec find uf i =
  let p = uf.(i) in
  if p = i then i
  else begin
    let r = find uf p in
    uf.(i) <- r;
    r
  end

let coarsen ?(cluster_ratio = 4.0) ?(max_net_degree = 16)
    ?(obs = Obs.disabled) nl =
  let cells = nl.N.cells and nets = nl.N.nets and pins = nl.N.pins in
  let n = Array.length cells in
  let movable i = not cells.(i).N.fixed in
  let nmov = ref 0 in
  let total_area = ref 0.0 in
  for i = 0 to n - 1 do
    if movable i then begin
      incr nmov;
      total_area := !total_area +. (cells.(i).N.width *. cells.(i).N.height)
    end
  done;
  let nmov = !nmov in
  if nmov < 4 then None
  else begin
    let cap =
      2.0 *. Float.max 1.0 cluster_ratio *. !total_area /. float_of_int nmov
    in
    let target =
      max 1
        (int_of_float
           (Float.ceil (float_of_int nmov /. Float.max 1.0 cluster_ratio)))
    in
    let uf = Array.init n Fun.id in
    let area =
      Array.map (fun (c : N.cell) -> c.N.width *. c.N.height) cells
    in
    (* net eligibility + clique-model weight 1/(d-1) *)
    let net_w =
      Array.map
        (fun (t : N.net) ->
          let d = Array.length t.N.net_pins in
          if d >= 2 && d <= max_net_degree then 1.0 /. float_of_int (d - 1)
          else 0.0)
        nets
    in
    (* sparse scoring scratch *)
    let score = Array.make n 0.0 in
    let touched = ref (Array.make 64 0) in
    let nclusters = ref nmov in
    let max_pass =
      2 + int_of_float (Float.ceil (Float.log (Float.max 2.0 cluster_ratio)
                                    /. Float.log 2.0))
    in
    let pass = ref 0 in
    let progressing = ref true in
    while !progressing && !nclusters > target && !pass < max_pass do
      let merges = ref 0 in
      for i = 0 to n - 1 do
        if movable i && !nclusters > target then begin
          let ri = find uf i in
          let nt = ref 0 in
          let cpins = cells.(i).N.cell_pins in
          for pi = 0 to Array.length cpins - 1 do
            let t = pins.(cpins.(pi)).N.net in
            if t >= 0 && net_w.(t) > 0.0 then begin
              let w = net_w.(t) in
              let npins = nets.(t).N.net_pins in
              for qi = 0 to Array.length npins - 1 do
                let j = pins.(npins.(qi)).N.cell in
                if j <> i && movable j then begin
                  let rj = find uf j in
                  if rj <> ri then begin
                    if score.(rj) = 0.0 then begin
                      if !nt = Array.length !touched then
                        touched := Array.append !touched
                            (Array.make !nt 0);
                      !touched.(!nt) <- rj;
                      incr nt
                    end;
                    score.(rj) <- score.(rj) +. w
                  end
                end
              done
            end
          done;
          (* strongest affordable neighbour; ties toward the lowest id *)
          let best = ref (-1) and best_s = ref 0.0 in
          for k = 0 to !nt - 1 do
            let rj = !touched.(k) in
            let s = score.(rj) in
            if area.(ri) +. area.(rj) <= cap
               && (s > !best_s || (s = !best_s && !best >= 0 && rj < !best))
            then begin
              best := rj;
              best_s := s
            end
          done;
          if !best >= 0 then begin
            let rj = !best in
            let lo = min ri rj and hi = max ri rj in
            uf.(hi) <- lo;
            area.(lo) <- area.(lo) +. area.(hi);
            incr merges;
            decr nclusters
          end;
          for k = 0 to !nt - 1 do
            score.(!touched.(k)) <- 0.0
          done
        end
      done;
      if !merges = 0 then progressing := false;
      incr pass
    done;
    if float_of_int !nclusters > 0.9 *. float_of_int nmov then None
    else begin
      (* area-weighted centroid of every cluster, for the coarse seed
         position (used when a finer level interpolated into this one) *)
      let sx = Array.make n 0.0
      and sy = Array.make n 0.0
      and sa = Array.make n 0.0 in
      for i = 0 to n - 1 do
        if movable i then begin
          let r = find uf i in
          let c = cells.(i) in
          let a = Float.max 1e-12 (c.N.width *. c.N.height) in
          sx.(r) <- sx.(r) +. (a *. c.N.x);
          sy.(r) <- sy.(r) +. (a *. c.N.y);
          sa.(r) <- sa.(r) +. a
        end
      done;
      let b =
        N.Builder.create ~region:nl.N.region ~row_height:nl.N.row_height
          (nl.N.design_name ^ "+c")
      in
      let parent = Array.make n (-1) in
      (* Coarse cells in ascending fine-id order: fixed cells pass
         through 1:1; a cluster is emitted at its representative (the
         smallest member id, hence before every other member). *)
      for i = 0 to n - 1 do
        let c = cells.(i) in
        if c.N.fixed then
          parent.(i) <-
            N.Builder.add_cell b
              ~name:(Printf.sprintf "k%d" i)
              ~lib_cell:(-1) ~width:c.N.width ~height:c.N.height ~x:c.N.x
              ~y:c.N.y ~fixed:true ()
        else begin
          let r = find uf i in
          if r = i then begin
            let side = Float.sqrt sa.(i) in
            parent.(i) <-
              N.Builder.add_cell b
                ~name:(Printf.sprintf "k%d" i)
                ~lib_cell:(-1) ~width:side ~height:side
                ~x:(sx.(i) /. sa.(i)) ~y:(sy.(i) /. sa.(i)) ()
          end
          else parent.(i) <- parent.(r)
        end
      done;
      (* Net contraction: one coarse pin per (net, coarse cell), driver
         direction iff the coarse cell holds the fine driver; nets
         collapsing into one coarse cell vanish. *)
      let ncoarse = ref 0 in
      for i = 0 to n - 1 do
        if parent.(i) >= !ncoarse then ncoarse := parent.(i) + 1
      done;
      let seen = Array.make !ncoarse (-1) in
      let members = ref (Array.make 64 0) in
      let kept_nets = ref 0 in
      Array.iter
        (fun (t : N.net) ->
          let nm = ref 0 in
          Array.iter
            (fun p ->
              let pc = parent.(pins.(p).N.cell) in
              if seen.(pc) <> t.N.net_id then begin
                seen.(pc) <- t.N.net_id;
                if !nm = Array.length !members then
                  members := Array.append !members (Array.make !nm 0);
                !members.(!nm) <- pc;
                incr nm
              end)
            t.N.net_pins;
          if !nm >= 2 then begin
            let driver_pc =
              match N.net_driver nl t.N.net_id with
              | Some p -> parent.(pins.(p).N.cell)
              | None -> -1
            in
            let coarse_pins = ref [] in
            for k = !nm - 1 downto 0 do
              let pc = !members.(k) in
              let dir = if pc = driver_pc then N.Output else N.Input in
              coarse_pins :=
                N.Builder.add_pin b ~cell:pc
                  ~name:(Printf.sprintf "p%d_%d" t.N.net_id pc)
                  ~direction:dir ()
                :: !coarse_pins
            done;
            ignore (N.Builder.add_net b ~name:t.N.net_name ~pins:!coarse_pins);
            incr kept_nets
          end)
        nets;
      let coarse = N.Builder.freeze b in
      Obs.add obs "cluster.merged_cells" (float_of_int (nmov - !nclusters));
      Obs.add obs "cluster.dropped_nets"
        (float_of_int (Array.length nets - !kept_nets));
      Some { fine = nl; coarse; parent }
    end
  end

let build ?(levels = 2) ?(cluster_ratio = 4.0) ?(max_net_degree = 16)
    ?(min_cells = 1000) ?(obs = Obs.disabled) nl =
  Obs.span obs Obs.Cluster_coarsen (fun () ->
    let count_movable d =
      Array.fold_left
        (fun acc (c : N.cell) -> if c.N.fixed then acc else acc + 1)
        0 d.N.cells
    in
    let rec go acc cur k =
      if k <= 0 || count_movable cur <= min_cells then List.rev acc
      else
        match coarsen ~cluster_ratio ~max_net_degree ~obs cur with
        | None -> List.rev acc
        | Some lvl -> go (lvl :: acc) lvl.coarse (k - 1)
    in
    let lvls = go [] nl (max 0 levels) in
    Obs.add obs "cluster.levels" (float_of_int (List.length lvls));
    (match List.rev lvls with
    | last :: _ ->
      Obs.gauge obs "cluster.coarse_cells"
        (float_of_int (count_movable last.coarse))
    | [] -> ());
    lvls)

let interpolate ?(obs = Obs.disabled) lvl =
  Obs.span obs Obs.Cluster_interp (fun () ->
    let fine = lvl.fine and coarse = lvl.coarse in
    let region = fine.N.region in
    let n = Array.length fine.N.cells in
    let nc = Array.length coarse.N.cells in
    let nnets = Array.length fine.N.nets in
    (* Terminal propagation: per fine net, the sum of the parent
       clusters' placed positions over its pins.  A member's offset
       inside its cluster then points toward the mean position of its
       nets' other endpoints — the finest refine starts from a locally
       wirelength-aware ordering instead of a random scatter. *)
    let nsx = Array.make nnets 0.0
    and nsy = Array.make nnets 0.0
    and ncnt = Array.make nnets 0 in
    for t = 0 to nnets - 1 do
      let npins = fine.N.nets.(t).N.net_pins in
      for q = 0 to Array.length npins - 1 do
        let cc = coarse.N.cells.(lvl.parent.(fine.N.pins.(npins.(q)).N.cell)) in
        nsx.(t) <- nsx.(t) +. cc.N.x;
        nsy.(t) <- nsy.(t) +. cc.N.y;
        ncnt.(t) <- ncnt.(t) + 1
      done
    done;
    let ox = Array.make n 0.0 and oy = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let c = fine.N.cells.(i) in
      if not c.N.fixed then begin
        let p = lvl.parent.(i) in
        let cc = coarse.N.cells.(p) in
        (* clique-weighted mean pull of this cell's nets *)
        let px = ref 0.0 and py = ref 0.0 and pw = ref 0.0 in
        let cpins = c.N.cell_pins in
        for q = 0 to Array.length cpins - 1 do
          let t = fine.N.pins.(cpins.(q)).N.net in
          if t >= 0 && ncnt.(t) >= 2 then begin
            let others = float_of_int (ncnt.(t) - 1) in
            let w = 1.0 /. others in
            px := !px +. (w *. ((nsx.(t) -. cc.N.x) /. others));
            py := !py +. (w *. ((nsy.(t) -. cc.N.y) /. others));
            pw := !pw +. w
          end
        done;
        let hw = cc.N.width /. 2.0 and hh = cc.N.height /. 2.0 in
        let dx, dy =
          if !pw > 0.0 then
            ( Geometry.clamp ~lo:(-.hw) ~hi:hw ((!px /. !pw) -. cc.N.x),
              Geometry.clamp ~lo:(-.hh) ~hi:hh ((!py /. !pw) -. cc.N.y) )
          else (0.0, 0.0)
        in
        (* small jitter on top so members pulled the same way separate *)
        ox.(i) <- dx +. (0.25 *. (hash_float i 101 -. 0.5) *. cc.N.width);
        oy.(i) <- dy +. (0.25 *. (hash_float i 137 -. 0.5) *. cc.N.height)
      end
    done;
    (* area-weighted mean offset per cluster, so subtracting it puts
       each cluster's area centroid exactly on the cluster center *)
    let mx = Array.make nc 0.0
    and my = Array.make nc 0.0
    and ma = Array.make nc 0.0 in
    for i = 0 to n - 1 do
      let c = fine.N.cells.(i) in
      if not c.N.fixed then begin
        let p = lvl.parent.(i) in
        let a = Float.max 1e-12 (c.N.width *. c.N.height) in
        mx.(p) <- mx.(p) +. (a *. ox.(i));
        my.(p) <- my.(p) +. (a *. oy.(i));
        ma.(p) <- ma.(p) +. a
      end
    done;
    for i = 0 to n - 1 do
      let c = fine.N.cells.(i) in
      if not c.N.fixed then begin
        let p = lvl.parent.(i) in
        let cc = coarse.N.cells.(p) in
        let x = cc.N.x +. ox.(i) -. (mx.(p) /. ma.(p)) in
        let y = cc.N.y +. oy.(i) -. (my.(p) /. ma.(p)) in
        let hw = c.N.width /. 2.0 and hh = c.N.height /. 2.0 in
        c.N.x <-
          Geometry.clamp ~lo:(region.Geometry.Rect.lx +. hw)
            ~hi:(region.Geometry.Rect.hx -. hw) x;
        c.N.y <-
          Geometry.clamp ~lo:(region.Geometry.Rect.ly +. hh)
            ~hi:(region.Geometry.Rect.hy -. hh) y
      end
    done)
