(** Bottom-up netlist clustering for multilevel (V-cycle) placement.

    The flat engine does O(cells) wirelength/density work per iteration
    at full resolution from iteration 0; at 10⁵–10⁶ cells that is the
    whole runtime.  Multilevel placement (mPL, DG-RePlAce) coarsens the
    netlist bottom-up, places the coarse design with the same engine,
    then interpolates positions back down and refines briefly at each
    finer level.

    Coarsening is {e first-choice / edge coarsening} on net
    connectivity with clique-model affinities: two cells sharing a net
    of degree [d] attract with weight [1 / (d - 1)], summed over shared
    nets.  Cells are visited in ascending id order and merged into
    their strongest neighbouring cluster, subject to a cluster area
    cap; ties break toward the lowest cluster id.  Fixed cells never
    cluster (they pass through 1:1), and nets above [max_net_degree]
    contribute no affinity (clock/reset-like nets would otherwise glue
    the design into one blob) though they are still contracted into the
    coarse netlist.  The pass is sequential and id-ordered, so its
    output is bit-identical regardless of domain count.

    Net contraction keeps one coarse pin per (net, cluster) — the pin
    is a driver iff the cluster contains the fine driver — and drops
    nets whose pins collapse into a single cluster (self-loops) or that
    lose all but one pin.  Cluster cells use [lib_cell = -1] (pad
    semantics: no cell arcs, so the coarse netlist always builds an
    acyclic timing graph) with a square footprint conserving total
    member area. *)

(** One coarsening step.  [fine] is the input netlist, [coarse] the
    clustered one; [parent.(i)] is the coarse cell id of fine cell [i]
    (every cell, fixed ones included, has exactly one parent — the
    prolongation map is a partition). *)
type level = {
  fine : Netlist.t;
  coarse : Netlist.t;
  parent : int array;
}

val coarsen :
  ?cluster_ratio:float ->
  ?max_net_degree:int ->
  ?obs:Obs.t ->
  Netlist.t ->
  level option
(** One level of coarsening.  [cluster_ratio] (default 4.0) is the
    target fine-to-coarse movable-cell ratio; it also sets the cluster
    area cap ([2 * ratio *] mean movable area).  [max_net_degree]
    (default 16) excludes larger nets from affinity scoring.  Returns
    [None] when the pass cannot reduce the movable cell count by at
    least 10% (nothing clusterable). *)

val build :
  ?levels:int ->
  ?cluster_ratio:float ->
  ?max_net_degree:int ->
  ?min_cells:int ->
  ?obs:Obs.t ->
  Netlist.t ->
  level list
(** Repeated {!coarsen}: up to [levels] (default 2) coarsening steps,
    stopping early when a level would drop below [min_cells] (default
    1000) movable cells or stops reducing.  Result is ordered finest
    first: [(List.hd l).fine] is the input netlist, and each
    [level.fine] is physically the previous level's [coarse].  Wrapped
    in one [cluster.coarsen] Obs span with [cluster.levels] /
    [cluster.coarse_cells] counters. *)

val interpolate : ?obs:Obs.t -> level -> unit
(** Prolongate positions one level down: place every movable fine cell
    of [level.fine] at its parent cluster's center plus a deterministic
    area-weighted offset — members jitter within the cluster footprint,
    then the whole group is shifted so the {e area-weighted centroid}
    of each cluster's members lands exactly on the cluster center.
    Fixed cells are untouched.  Mutates [level.fine] cell coordinates
    in place; [cluster.interp] Obs span. *)
