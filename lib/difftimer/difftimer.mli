(** The differentiable STA engine (paper §3).

    Forward: arrival times and slews propagate level by level exactly as
    in exact STA, except that every [max]/[min] aggregation is replaced
    by Log-Sum-Exp smoothing with width [gamma] (Eq. 5, 11), making
    [TNS_gamma(x, y)] and [WNS_gamma(x, y)] differentiable in every cell
    coordinate.

    Backward: gradients of [w_tns * (-TNS_gamma) + w_wns * (-WNS_gamma)]
    flow in reverse level order (the blue edges of Fig. 3): through the
    endpoint slack smoothing, the LSE aggregations (whose weights
    [exp ((x_i - LSE) / gamma)] sum to 1), the NLDM look-up-table queries
    (Fig. 6), the net slew/arrival recurrences (Eq. 10), the Elmore
    passes (Eq. 8) and finally the Steiner-point provenance (Fig. 4),
    producing d/d(cell center) for every movable cell.

    Level kernels in the forward pass only read strictly lower levels, so
    they are dispatched data-parallel over the pins of a level (the CPU
    stand-in for the paper's CUDA kernels).  The forward pass records
    every NLDM LUT evaluation (value and partials) in a flat tape indexed
    by timing arc and transition pair, so each LUT is queried exactly
    once per forward/backward round trip.  The backward pass {e gathers}:
    each pin's adjoints are accumulated by that pin's own task from its
    fan-out state, which makes the reverse level sweep race-free and
    dispatchable through the same worker pool; the per-net Elmore adjoint
    is likewise sliced across workers with per-slice scratch. *)

type metrics = {
  wns : float;         (** hard min endpoint slack (may be positive). *)
  tns : float;         (** hard [sum (min 0 slack)]. *)
  wns_smooth : float;  (** the LSE-smoothed objective values. *)
  tns_smooth : float;
  endpoint_count : int;
}

type t

val create : ?gamma:float -> Sta.Graph.t -> t
(** [gamma] defaults to 100.0 ps (the paper's setting). *)

val nets : t -> Sta.Nets.t
(** The shared Steiner/RC state.  The caller controls the FLUTE cadence:
    call [Sta.Nets.rebuild] every k-th iteration and [Sta.Nets.refresh]
    otherwise, before {!forward}. *)

val gamma : t -> float
val set_gamma : t -> float -> unit

val forward : ?pool:Parallel.pool -> ?obs:Obs.t -> t -> metrics
(** Propagate on the current RC state (callers must have refreshed
    {!nets} after moving cells).  [obs] records a [difftimer.fwd]
    span. *)

val backward :
  ?pool:Parallel.pool ->
  ?obs:Obs.t ->
  t ->
  w_tns:float ->
  w_wns:float ->
  grad_x:float array ->
  grad_y:float array ->
  unit
(** Accumulate d[w_tns * (-TNS_g) + w_wns * (-WNS_g)]/d(cell center) into
    [grad_x]/[grad_y] (length [num_cells]).  Must follow a {!forward} on
    the same placement (the backward gather replays the forward LUT tape).
    With [pool], the reverse level sweep and the per-net Elmore adjoint
    run data-parallel; the Elmore slice split depends only on the net
    count and partials merge in slice order, so pooled gradients are
    bit-identical to sequential ones.  Gradients also accrue on fixed
    cells; callers mask them. *)

val at : t -> int -> Sta.transition -> float
(** Smoothed late arrival time after {!forward} ([neg_infinity] if
    unreachable). *)

val slew : t -> int -> Sta.transition -> float

val endpoint_slack : t -> int -> float
(** Smoothed slack of an endpoint pin after {!forward}; [infinity] for
    non-endpoints or unreachable endpoints. *)

val lse : gamma:float -> float array -> float
(** Exposed for tests: max-shifted [gamma * log (sum exp (x_i / gamma))]. *)

val softmin0 : gamma:float -> float -> float
(** Exposed for tests: smoothed [min 0 s] (equals [-gamma * log (1 +
    exp (-s / gamma))]). *)
