type metrics = {
  wns : float;
  tns : float;
  wns_smooth : float;
  tns_smooth : float;
  endpoint_count : int;
}

(* Per-worker scratch for the per-net Elmore adjoint: node- and pin-sized
   work buffers (grown on demand; rebuilt trees may gain nodes), the RC
   adjoint scratch, and a full per-cell gradient accumulator used when
   nets are sliced across workers. *)
type net_scratch = {
  mutable ns_node_gd : float array;
  mutable ns_node_gi2 : float array;
  mutable ns_node_gx : float array;
  mutable ns_node_gy : float array;
  mutable ns_pin_gx : float array;
  mutable ns_pin_gy : float array;
  ns_rc : Rc.scratch;
  ns_gx : float array;
  ns_gy : float array;
}

type t = {
  graph : Sta.Graph.t;
  nets : Sta.Nets.t;
  mutable gamma_ : float;
  at_ : float array;   (* 2 * pin + transition, late/setup *)
  slew_ : float array;
  g_at : float array;
  g_slew : float array;
  ep_slack_tr : float array;  (* per transition endpoint slack *)
  ep_dsetup : float array;    (* d setup / d data slew at endpoints *)
  ep_slack : float array;     (* per pin smoothed endpoint slack *)
  g_net_delay : float array;  (* per sink pin *)
  g_i2 : float array;
  g_root_load : float array;  (* per net *)
  mutable wns_smooth_ : float;
  (* forward tape: per (arc, tr_out, tr_in) slot [4a + 2*tr_out + tr_in],
     the delay/slew LUT values and their partials, written once by the
     forward max-pass and reused by the sum-pass and the backward
     gather.  A slot is meaningful only under the same reachability and
     compatibility guards that wrote it. *)
  tape_d : float array;
  tape_dd_ds : float array;
  tape_dd_dl : float array;
  tape_s : float array;
  tape_ds_ds : float array;
  tape_ds_dl : float array;
  mutable slices : net_scratch array;
  mutable hint_nodes : int;  (* initial sizing for fresh slices *)
  mutable hint_pins : int;
}

let make_net_scratch ~ncells ~nodes ~pins =
  let nodes = max 1 nodes and pins = max 1 pins in
  { ns_node_gd = Array.make nodes 0.0;
    ns_node_gi2 = Array.make nodes 0.0;
    ns_node_gx = Array.make nodes 0.0;
    ns_node_gy = Array.make nodes 0.0;
    ns_pin_gx = Array.make pins 0.0;
    ns_pin_gy = Array.make pins 0.0;
    ns_rc = Rc.make_scratch nodes;
    ns_gx = Array.make ncells 0.0;
    ns_gy = Array.make ncells 0.0 }

let ensure_net_scratch ns nnodes npins_net =
  if Array.length ns.ns_node_gd < nnodes then begin
    let n = max nnodes (2 * Array.length ns.ns_node_gd) in
    ns.ns_node_gd <- Array.make n 0.0;
    ns.ns_node_gi2 <- Array.make n 0.0;
    ns.ns_node_gx <- Array.make n 0.0;
    ns.ns_node_gy <- Array.make n 0.0
  end;
  if Array.length ns.ns_pin_gx < npins_net then begin
    let n = max npins_net (2 * Array.length ns.ns_pin_gx) in
    ns.ns_pin_gx <- Array.make n 0.0;
    ns.ns_pin_gy <- Array.make n 0.0
  end

let ensure_slices t k =
  let have = Array.length t.slices in
  if have < k then begin
    let ncells = Netlist.num_cells t.graph.Sta.Graph.design in
    t.slices <-
      Array.init k (fun s ->
        if s < have then t.slices.(s)
        else
          make_net_scratch ~ncells ~nodes:t.hint_nodes ~pins:t.hint_pins)
  end

let lse ~gamma xs =
  let m = Array.fold_left Float.max neg_infinity xs in
  if m = neg_infinity then neg_infinity
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. exp ((x -. m) /. gamma)) xs;
    m +. (gamma *. log !acc)
  end

let softmin0 ~gamma s =
  let r = -.s /. gamma in
  if r > 40.0 then s
  else if r < -40.0 then -.gamma *. exp r
  else -.gamma *. Float.log1p (exp r)

(* d softmin0 / d s = sigmoid (-s / gamma) *)
let softmin0_grad ~gamma s =
  let r = s /. gamma in
  if r > 40.0 then 0.0
  else if r < -40.0 then 1.0
  else 1.0 /. (1.0 +. exp r)

let create ?(gamma = 100.0) graph =
  let design = graph.Sta.Graph.design in
  let npins = Netlist.num_pins design in
  let nnets = Netlist.num_nets design in
  let narcs = Sta.Graph.num_arcs graph in
  let nets = Sta.Nets.create graph in
  let max_nodes = ref 1 and max_pins = ref 1 in
  Array.iter
    (fun entry ->
      match entry with
      | None -> ()
      | Some (tree, _) ->
        max_nodes := max !max_nodes (Steiner.node_count tree);
        max_pins := max !max_pins tree.Steiner.pin_count)
    nets.Sta.Nets.trees;
  { graph; nets; gamma_ = gamma;
    at_ = Array.make (2 * npins) neg_infinity;
    slew_ = Array.make (2 * npins) 0.0;
    g_at = Array.make (2 * npins) 0.0;
    g_slew = Array.make (2 * npins) 0.0;
    ep_slack_tr = Array.make (2 * npins) infinity;
    ep_dsetup = Array.make (2 * npins) 0.0;
    ep_slack = Array.make npins infinity;
    g_net_delay = Array.make npins 0.0;
    g_i2 = Array.make npins 0.0;
    g_root_load = Array.make nnets 0.0;
    wns_smooth_ = 0.0;
    tape_d = Array.make (4 * narcs) 0.0;
    tape_dd_ds = Array.make (4 * narcs) 0.0;
    tape_dd_dl = Array.make (4 * narcs) 0.0;
    tape_s = Array.make (4 * narcs) 0.0;
    tape_ds_ds = Array.make (4 * narcs) 0.0;
    tape_ds_dl = Array.make (4 * narcs) 0.0;
    slices = [||];
    hint_nodes = !max_nodes;
    hint_pins = !max_pins }

let nets t = t.nets
let gamma t = t.gamma_
let set_gamma t g = t.gamma_ <- g

let idx p tr = (2 * p) + Sta.transition_index tr
let at t p tr = t.at_.(idx p tr)
let slew t p tr = t.slew_.(idx p tr)
let endpoint_slack t p = t.ep_slack.(p)

let both = [ Sta.Rise; Sta.Fall ]

(* LUT selection keyed by transition index (0 = rise, 1 = fall) *)
let delay_lut_i (arc : Liberty.timing_arc) oi =
  if oi = 0 then arc.Liberty.cell_rise else arc.Liberty.cell_fall

let slew_lut_i (arc : Liberty.timing_arc) oi =
  if oi = 0 then arc.Liberty.rise_transition else arc.Liberty.fall_transition

let check_setup_lut_i (ck : Liberty.check_arc) ti =
  if ti = 0 then ck.Liberty.setup_rise else ck.Liberty.setup_fall

let tree_of t pin =
  let net = t.graph.Sta.Graph.design.Netlist.pins.(pin).Netlist.net in
  if net < 0 then None else t.nets.Sta.Nets.trees.(net)

let root_load_of t pin =
  match tree_of t pin with None -> 0.0 | Some (_, rc) -> Rc.root_load rc

(* forward kernel for one pin: reads strictly lower levels only, writes
   only this pin's state and this pin's fan-in tape slots. *)
let forward_pin t v =
  let g = t.graph in
  let gamma = t.gamma_ in
  let pin = g.Sta.Graph.design.Netlist.pins.(v) in
  let net = pin.Netlist.net in
  (* net arc: at most one fan-in, no smoothing needed (Eq. 9) *)
  (if pin.Netlist.direction = Netlist.Input && net >= 0 then begin
     let u = g.Sta.Graph.net_driver_of.(net) in
     if u >= 0 && u <> v then
       match t.nets.Sta.Nets.trees.(net) with
       | Some (_, rc) ->
         let node = t.nets.Sta.Nets.tree_index.(v) in
         let d = Rc.sink_delay rc node in
         let i2 = Rc.sink_impulse2 rc node in
         for ti = 0 to 1 do
           let iu = (2 * u) + ti and iv = (2 * v) + ti in
           if t.at_.(iu) > neg_infinity then begin
             t.at_.(iv) <- t.at_.(iu) +. d;
             t.slew_.(iv) <- sqrt ((t.slew_.(iu) *. t.slew_.(iu)) +. i2)
           end
         done
       | None -> ()
   end);
  (* cell arcs: LSE aggregation over fan-in contributions (Eq. 11).  The
     max-pass evaluates every (arc, transition) LUT pair exactly once
     into the tape; the sum-pass and the backward gather reuse it. *)
  let lo = g.Sta.Graph.fanin_off.(v) and hi = g.Sta.Graph.fanin_off.(v + 1) in
  if hi > lo then begin
    let load = root_load_of t v in
    for oi = 0 to 1 do
      let iv = (2 * v) + oi in
      (* pass 1: evaluate LUTs into the tape, tracking the shift maxima *)
      let max_a = ref neg_infinity and max_s = ref neg_infinity in
      for k = lo to hi - 1 do
        let a = g.Sta.Graph.fanin_arc.(k) in
        let u = g.Sta.Graph.arc_from.(a) in
        let arc = g.Sta.Graph.arc_table.(a) in
        let sub = (g.Sta.Graph.arc_mask.(a) lsr (2 * oi)) land 3 in
        for ii = 0 to 1 do
          if sub land (1 lsl ii) <> 0 then begin
            let iu = (2 * u) + ii in
            if t.at_.(iu) > neg_infinity then begin
              let e = (4 * a) + (2 * oi) + ii in
              let d, dd_ds, dd_dl =
                Liberty.Lut.lookup_with_gradient (delay_lut_i arc oi)
                  t.slew_.(iu) load
              in
              let s, ds_ds, ds_dl =
                Liberty.Lut.lookup_with_gradient (slew_lut_i arc oi)
                  t.slew_.(iu) load
              in
              t.tape_d.(e) <- d;
              t.tape_dd_ds.(e) <- dd_ds;
              t.tape_dd_dl.(e) <- dd_dl;
              t.tape_s.(e) <- s;
              t.tape_ds_ds.(e) <- ds_ds;
              t.tape_ds_dl.(e) <- ds_dl;
              if t.at_.(iu) +. d > !max_a then max_a := t.at_.(iu) +. d;
              if s > !max_s then max_s := s
            end
          end
        done
      done;
      if !max_a > neg_infinity then begin
        (* pass 2: shifted sums from the taped values, no LUT re-query *)
        let sum_a = ref 0.0 and sum_s = ref 0.0 in
        for k = lo to hi - 1 do
          let a = g.Sta.Graph.fanin_arc.(k) in
          let u = g.Sta.Graph.arc_from.(a) in
          let sub = (g.Sta.Graph.arc_mask.(a) lsr (2 * oi)) land 3 in
          for ii = 0 to 1 do
            if sub land (1 lsl ii) <> 0 then begin
              let iu = (2 * u) + ii in
              if t.at_.(iu) > neg_infinity then begin
                let e = (4 * a) + (2 * oi) + ii in
                sum_a :=
                  !sum_a +. exp ((t.at_.(iu) +. t.tape_d.(e) -. !max_a)
                                 /. gamma);
                sum_s := !sum_s +. exp ((t.tape_s.(e) -. !max_s) /. gamma)
              end
            end
          done
        done;
        t.at_.(iv) <- !max_a +. (gamma *. log !sum_a);
        t.slew_.(iv) <- !max_s +. (gamma *. log !sum_s)
      end
    done
  end

(* partial reduction over endpoints (merged in chunk order) *)
type ep_stats = {
  mutable es_count : int;
  mutable es_wns : float;
  mutable es_tns : float;
  mutable es_smooth_tns : float;
  mutable es_max_neg : float;  (* running max of -slack for the WNS LSE *)
}

type fsum = { mutable fs : float }

let forward_run ?pool ?(obs = Obs.disabled) t =
  let g = t.graph in
  let cs = g.Sta.Graph.constraints in
  let gamma = t.gamma_ in
  let npins = Netlist.num_pins g.Sta.Graph.design in
  let pool = match pool with Some p -> p | None -> Parallel.sequential_pool in
  Array.fill t.at_ 0 (2 * npins) neg_infinity;
  Array.fill t.slew_ 0 (2 * npins) 0.0;
  List.iter
    (fun p ->
      List.iter
        (fun tr ->
          let i = idx p tr in
          t.at_.(i) <- cs.Sta.Constraints.input_delay;
          t.slew_.(i) <- cs.Sta.Constraints.input_slew)
        both)
    g.Sta.Graph.primary_inputs;
  Array.iteri
    (fun p clock ->
      if clock then
        List.iter
          (fun tr ->
            let i = idx p tr in
            t.at_.(i) <- 0.0;
            t.slew_.(i) <- cs.Sta.Constraints.clock_slew)
          both)
    g.Sta.Graph.is_clock_pin;
  Array.iter
    (fun level_pins ->
      (* per-pin cost: a few LUT lookups + per-sink Elmore terms *)
      Parallel.parallel_for pool ~obs ~cost:16.0 (Array.length level_pins)
        (fun k -> forward_pin t level_pins.(k)))
    g.Sta.Graph.levels;
  (* endpoint slacks (setup/late), smoothed across transitions; global
     statistics reduced with per-chunk partial accumulators *)
  let period = cs.Sta.Constraints.clock_period in
  let endpoints = g.Sta.Graph.endpoints in
  let nep = Array.length endpoints in
  let eval_endpoint acc k =
    let p = endpoints.(k) in
    let sum_exp = ref 0.0 and max_neg = ref neg_infinity in
    let hard = ref infinity in
    for ti = 0 to 1 do
      let i = (2 * p) + ti in
      t.ep_slack_tr.(i) <- infinity;
      t.ep_dsetup.(i) <- 0.0;
      if t.at_.(i) > neg_infinity then begin
        let slack =
          match g.Sta.Graph.check_of_pin.(p) with
          | Some ck ->
            let setup, dsu, _ =
              Liberty.Lut.lookup_with_gradient
                (check_setup_lut_i ck.Sta.Graph.ck_arc ti)
                t.slew_.(i) cs.Sta.Constraints.clock_slew
            in
            t.ep_dsetup.(i) <- dsu;
            period -. setup -. t.at_.(i)
          | None -> period -. cs.Sta.Constraints.output_delay -. t.at_.(i)
        in
        t.ep_slack_tr.(i) <- slack;
        if slack < !hard then hard := slack;
        if -.slack > !max_neg then max_neg := -.slack
      end
    done;
    if !hard < infinity then begin
      (* smoothed min over transitions: -LSE(-slacks) *)
      for ti = 0 to 1 do
        let i = (2 * p) + ti in
        if t.ep_slack_tr.(i) < infinity then
          sum_exp :=
            !sum_exp +. exp ((-.t.ep_slack_tr.(i) -. !max_neg) /. gamma)
      done;
      let s = -.(!max_neg +. (gamma *. log !sum_exp)) in
      t.ep_slack.(p) <- s;
      acc.es_count <- acc.es_count + 1;
      acc.es_smooth_tns <- acc.es_smooth_tns +. softmin0 ~gamma s;
      if -.s > acc.es_max_neg then acc.es_max_neg <- -.s;
      if !hard < acc.es_wns then acc.es_wns <- !hard;
      if !hard < 0.0 then acc.es_tns <- acc.es_tns +. !hard
    end
    else t.ep_slack.(p) <- infinity
  in
  let stats =
    Parallel.parallel_for_reduce pool ~obs ~cost:8.0 nep
      ~init:(fun () ->
        { es_count = 0; es_wns = infinity; es_tns = 0.0;
          es_smooth_tns = 0.0; es_max_neg = neg_infinity })
      ~body:eval_endpoint
      ~merge:(fun a b ->
        a.es_count <- a.es_count + b.es_count;
        if b.es_wns < a.es_wns then a.es_wns <- b.es_wns;
        a.es_tns <- a.es_tns +. b.es_tns;
        a.es_smooth_tns <- a.es_smooth_tns +. b.es_smooth_tns;
        if b.es_max_neg > a.es_max_neg then a.es_max_neg <- b.es_max_neg;
        a)
  in
  (* smoothed WNS: second streaming pass of the shifted LSE over the
     stored per-endpoint slacks (no intermediate list) *)
  let wns_smooth =
    if stats.es_count = 0 then 0.0
    else begin
      let max_neg = stats.es_max_neg in
      let sum =
        Parallel.parallel_for_reduce pool ~obs ~cost:2.0 nep
          ~init:(fun () -> { fs = 0.0 })
          ~body:(fun acc k ->
            let s = t.ep_slack.(endpoints.(k)) in
            if s < infinity then
              acc.fs <- acc.fs +. exp ((-.s -. max_neg) /. gamma))
          ~merge:(fun a b ->
            a.fs <- a.fs +. b.fs;
            a)
      in
      -.(max_neg +. (gamma *. log sum.fs))
    end
  in
  t.wns_smooth_ <- wns_smooth;
  { wns = (if stats.es_count = 0 then 0.0 else stats.es_wns);
    tns = stats.es_tns;
    wns_smooth;
    tns_smooth = stats.es_smooth_tns;
    endpoint_count = stats.es_count }

(* backward kernel for one pin: gathers from fan-out state, so this task
   is the only writer of the pin's adjoints (and, when the pin drives a
   net, of that net's sink adjoints and root-load adjoint) — the reverse
   level sweep is race-free under data-parallel dispatch. *)
let backward_pin t u =
  let g = t.graph in
  let gamma = t.gamma_ in
  (* cell arcs: gather the fan-out contributions of this pin *)
  let lo = g.Sta.Graph.fanout_off.(u) in
  let hi = g.Sta.Graph.fanout_off.(u + 1) in
  for k = lo to hi - 1 do
    let a = g.Sta.Graph.fanout_arc.(k) in
    let v = g.Sta.Graph.arc_to.(a) in
    let mask = g.Sta.Graph.arc_mask.(a) in
    for oi = 0 to 1 do
      let iv = (2 * v) + oi in
      if t.at_.(iv) > neg_infinity
         && (t.g_at.(iv) <> 0.0 || t.g_slew.(iv) <> 0.0)
      then begin
        let sub = (mask lsr (2 * oi)) land 3 in
        for ii = 0 to 1 do
          if sub land (1 lsl ii) <> 0 then begin
            let iu = (2 * u) + ii in
            if t.at_.(iu) > neg_infinity then begin
              let e = (4 * a) + (2 * oi) + ii in
              let wa =
                exp ((t.at_.(iu) +. t.tape_d.(e) -. t.at_.(iv)) /. gamma)
              in
              let ws = exp ((t.tape_s.(e) -. t.slew_.(iv)) /. gamma) in
              let g_contrib_at = wa *. t.g_at.(iv) in
              let g_contrib_slew = ws *. t.g_slew.(iv) in
              t.g_at.(iu) <- t.g_at.(iu) +. g_contrib_at;
              t.g_slew.(iu) <-
                t.g_slew.(iu)
                +. (t.tape_dd_ds.(e) *. g_contrib_at)
                +. (t.tape_ds_ds.(e) *. g_contrib_slew)
            end
          end
        done
      end
    done
  done;
  let design = g.Sta.Graph.design in
  let pin = design.Netlist.pins.(u) in
  let net = pin.Netlist.net in
  (* net arcs: the driver gathers from its sinks and owns the per-sink
     net-delay/impulse adjoints (each sink has exactly one driver) *)
  (if net >= 0 && pin.Netlist.direction = Netlist.Output
      && g.Sta.Graph.net_driver_of.(net) = u
      && t.nets.Sta.Nets.trees.(net) <> None
   then
     for k = g.Sta.Graph.net_sink_off.(net)
         to g.Sta.Graph.net_sink_off.(net + 1) - 1
     do
       let v = g.Sta.Graph.net_sink.(k) in
       for ti = 0 to 1 do
         let iv = (2 * v) + ti and iu = (2 * u) + ti in
         if t.at_.(iv) > neg_infinity then begin
           t.g_at.(iu) <- t.g_at.(iu) +. t.g_at.(iv);
           t.g_net_delay.(v) <- t.g_net_delay.(v) +. t.g_at.(iv);
           let slew_v = Float.max 1e-9 t.slew_.(iv) in
           t.g_slew.(iu) <-
             t.g_slew.(iu) +. (t.slew_.(iu) /. slew_v *. t.g_slew.(iv));
           t.g_i2.(v) <- t.g_i2.(v) +. (t.g_slew.(iv) /. (2.0 *. slew_v))
         end
       done
     done);
  (* root-load adjoint: this pin's fan-in LUT queries took the load of
     the net it drives as an argument; its own adjoints are final now
     (gathered above), so fold the taped load partials.  Only the
     driver's task writes its net's slot. *)
  let lo = g.Sta.Graph.fanin_off.(u) in
  let hi = g.Sta.Graph.fanin_off.(u + 1) in
  if hi > lo && net >= 0 then
    for oi = 0 to 1 do
      let iu_out = (2 * u) + oi in
      if t.at_.(iu_out) > neg_infinity
         && (t.g_at.(iu_out) <> 0.0 || t.g_slew.(iu_out) <> 0.0)
      then begin
        let at_u = t.at_.(iu_out) and slew_u = t.slew_.(iu_out) in
        let acc = ref 0.0 in
        for k = lo to hi - 1 do
          let a = g.Sta.Graph.fanin_arc.(k) in
          let w = g.Sta.Graph.arc_from.(a) in
          let sub = (g.Sta.Graph.arc_mask.(a) lsr (2 * oi)) land 3 in
          for ii = 0 to 1 do
            if sub land (1 lsl ii) <> 0 then begin
              let iw = (2 * w) + ii in
              if t.at_.(iw) > neg_infinity then begin
                let e = (4 * a) + (2 * oi) + ii in
                let wa =
                  exp ((t.at_.(iw) +. t.tape_d.(e) -. at_u) /. gamma)
                in
                let ws = exp ((t.tape_s.(e) -. slew_u) /. gamma) in
                acc :=
                  !acc
                  +. (t.tape_dd_dl.(e) *. wa *. t.g_at.(iu_out))
                  +. (t.tape_ds_dl.(e) *. ws *. t.g_slew.(iu_out))
              end
            end
          done
        done;
        t.g_root_load.(net) <- t.g_root_load.(net) +. !acc
      end
    done

(* Elmore adjoint, Steiner provenance and cell gradients for one net,
   accumulated into [gx]/[gy] (per cell) using [ns] as scratch. *)
let net_backward t ns ~gx ~gy net =
  match t.nets.Sta.Nets.trees.(net) with
  | None -> ()
  | Some (tree, rc) ->
    let design = t.graph.Sta.Graph.design in
    let pins = design.Netlist.nets.(net).Netlist.net_pins in
    let nnodes = Steiner.node_count tree in
    let npins_net = tree.Steiner.pin_count in
    ensure_net_scratch ns nnodes npins_net;
    Array.fill ns.ns_node_gd 0 nnodes 0.0;
    Array.fill ns.ns_node_gi2 0 nnodes 0.0;
    Array.fill ns.ns_node_gx 0 nnodes 0.0;
    Array.fill ns.ns_node_gy 0 nnodes 0.0;
    let any = ref (t.g_root_load.(net) <> 0.0) in
    Array.iter
      (fun p ->
        let node = t.nets.Sta.Nets.tree_index.(p) in
        if t.g_net_delay.(p) <> 0.0 || t.g_i2.(p) <> 0.0 then begin
          ns.ns_node_gd.(node) <- t.g_net_delay.(p);
          ns.ns_node_gi2.(node) <- t.g_i2.(p);
          any := true
        end)
      pins;
    if !any then begin
      Rc.backward ~scratch:ns.ns_rc rc ~g_delay:ns.ns_node_gd
        ~g_impulse2:ns.ns_node_gi2 ~g_root_load:t.g_root_load.(net)
        ~node_gx:ns.ns_node_gx ~node_gy:ns.ns_node_gy;
      Array.fill ns.ns_pin_gx 0 npins_net 0.0;
      Array.fill ns.ns_pin_gy 0 npins_net 0.0;
      Steiner.accumulate_pin_gradient tree ~node_gx:ns.ns_node_gx
        ~node_gy:ns.ns_node_gy ~pin_gx:ns.ns_pin_gx ~pin_gy:ns.ns_pin_gy;
      Array.iteri
        (fun k p ->
          let cell = design.Netlist.pins.(p).Netlist.cell in
          gx.(cell) <- gx.(cell) +. ns.ns_pin_gx.(k);
          gy.(cell) <- gy.(cell) +. ns.ns_pin_gy.(k))
        pins
    end

let backward_run ?pool ?(obs = Obs.disabled) t ~w_tns ~w_wns ~grad_x ~grad_y =
  let g = t.graph in
  let design = g.Sta.Graph.design in
  let gamma = t.gamma_ in
  let npins = Netlist.num_pins design in
  let nnets = Netlist.num_nets design in
  let ncells = Netlist.num_cells design in
  if Array.length grad_x <> ncells || Array.length grad_y <> ncells then
    invalid_arg "Difftimer.backward: gradient size mismatch";
  let pool = match pool with Some p -> p | None -> Parallel.sequential_pool in
  Array.fill t.g_at 0 (2 * npins) 0.0;
  Array.fill t.g_slew 0 (2 * npins) 0.0;
  Array.fill t.g_net_delay 0 npins 0.0;
  Array.fill t.g_i2 0 npins 0.0;
  Array.fill t.g_root_load 0 nnets 0.0;
  (* seeds: d(objective)/d(endpoint slack), then through the
     per-transition smoothed min *)
  Array.iter
    (fun p ->
      let s = t.ep_slack.(p) in
      if s < infinity then begin
        let g_s =
          (w_tns *. -.softmin0_grad ~gamma s)
          +. (w_wns *. -.exp ((t.wns_smooth_ -. s) /. gamma))
        in
        for ti = 0 to 1 do
          let i = (2 * p) + ti in
          if t.ep_slack_tr.(i) < infinity then begin
            let w_tr = exp ((s -. t.ep_slack_tr.(i)) /. gamma) in
            let g_tr = w_tr *. g_s in
            (* slack = period - setup(slew) - at *)
            t.g_at.(i) <- t.g_at.(i) -. g_tr;
            t.g_slew.(i) <- t.g_slew.(i) -. (t.ep_dsetup.(i) *. g_tr)
          end
        done
      end)
    g.Sta.Graph.endpoints;
  (* reverse level sweep: each pin gathers from its fan-out, so pins of
     one level are independent and run through the worker pool *)
  let levels = g.Sta.Graph.levels in
  for l = Array.length levels - 1 downto 0 do
    let level_pins = levels.(l) in
    Parallel.parallel_for pool ~obs ~cost:16.0 (Array.length level_pins)
      (fun k -> backward_pin t level_pins.(k))
  done;
  (* per-net Elmore adjoint: contiguous net slices over the workers, one
     scratch (and one per-cell partial gradient) per slice, merged in
     slice order for determinism *)
  (* slice count is a pure function of the net count — never of the pool
     — so the slice partials and their in-order merge give bit-identical
     gradients at every domain count *)
  let nslices = if nnets = 0 then 1 else min 16 ((nnets + 255) / 256) in
  if nslices <= 1 then begin
    ensure_slices t 1;
    let ns = t.slices.(0) in
    for net = 0 to nnets - 1 do
      net_backward t ns ~gx:grad_x ~gy:grad_y net
    done
  end
  else begin
    ensure_slices t nslices;
    (* one slice covers >=256 nets of Elmore adjoint work *)
    Parallel.parallel_for pool ~obs ~cost:512.0 nslices (fun s ->
      let ns = t.slices.(s) in
      Array.fill ns.ns_gx 0 ncells 0.0;
      Array.fill ns.ns_gy 0 ncells 0.0;
      let lo = s * nnets / nslices and hi = (s + 1) * nnets / nslices in
      for net = lo to hi - 1 do
        net_backward t ns ~gx:ns.ns_gx ~gy:ns.ns_gy net
      done);
    for s = 0 to nslices - 1 do
      let ns = t.slices.(s) in
      for c = 0 to ncells - 1 do
        grad_x.(c) <- grad_x.(c) +. ns.ns_gx.(c);
        grad_y.(c) <- grad_y.(c) +. ns.ns_gy.(c)
      done
    done
  end

let forward ?pool ?(obs = Obs.disabled) t =
  Obs.start obs Obs.Diff_forward;
  let m = forward_run ?pool ~obs t in
  Obs.stop obs Obs.Diff_forward;
  m

let backward ?pool ?(obs = Obs.disabled) t ~w_tns ~w_wns ~grad_x ~grad_y =
  Obs.start obs Obs.Diff_backward;
  backward_run ?pool ~obs t ~w_tns ~w_wns ~grad_x ~grad_y;
  Obs.stop obs Obs.Diff_backward
