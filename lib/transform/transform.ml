let pi = 4.0 *. atan 1.0

let is_power_of_two n = n > 0 && n land (n - 1) = 0

module Fft = struct
  (* Iterative radix-2 Cooley-Tukey with bit-reversal permutation. *)
  let check re im =
    let n = Array.length re in
    if Array.length im <> n then
      invalid_arg "Transform.Fft: re/im length mismatch";
    if not (is_power_of_two n) then
      invalid_arg "Transform.Fft: length must be a power of two";
    n

  let bit_reverse re im n =
    let j = ref 0 in
    for i = 0 to n - 2 do
      if i < !j then begin
        let tr = re.(i) in re.(i) <- re.(!j); re.(!j) <- tr;
        let ti = im.(i) in im.(i) <- im.(!j); im.(!j) <- ti
      end;
      let m = ref (n lsr 1) in
      while !m >= 1 && !j land !m <> 0 do
        j := !j lxor !m;
        m := !m lsr 1
      done;
      j := !j lor !m
    done

  let go ~sign re im =
    let n = check re im in
    if n > 1 then begin
      bit_reverse re im n;
      let len = ref 2 in
      while !len <= n do
        let half = !len / 2 in
        let theta = sign *. 2.0 *. pi /. float_of_int !len in
        let wr = cos theta and wi = sin theta in
        let i = ref 0 in
        while !i < n do
          let cr = ref 1.0 and ci = ref 0.0 in
          for k = 0 to half - 1 do
            let a = !i + k and b = !i + k + half in
            let tr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
            let ti = (re.(b) *. !ci) +. (im.(b) *. !cr) in
            re.(b) <- re.(a) -. tr;
            im.(b) <- im.(a) -. ti;
            re.(a) <- re.(a) +. tr;
            im.(a) <- im.(a) +. ti;
            let nr = (!cr *. wr) -. (!ci *. wi) in
            ci := (!cr *. wi) +. (!ci *. wr);
            cr := nr
          done;
          i := !i + !len
        done;
        len := !len * 2
      done
    end

  let transform ~re ~im = go ~sign:(-1.0) re im
  let inverse ~re ~im = go ~sign:1.0 re im
end

module Dct = struct
  let dct_naive x =
    let n = Array.length x in
    Array.init n (fun k ->
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc
               +. (x.(j)
                   *. cos (pi *. float_of_int k *. (float_of_int j +. 0.5)
                           /. float_of_int n))
      done;
      !acc)

  let cos_synth_naive c =
    let n = Array.length c in
    Array.init n (fun j ->
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc
               +. (c.(k)
                   *. cos (pi *. float_of_int k *. (float_of_int j +. 0.5)
                           /. float_of_int n))
      done;
      !acc)

  let sin_synth_naive c =
    let n = Array.length c in
    Array.init n (fun j ->
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc
               +. (c.(k)
                   *. sin (pi *. float_of_int k *. (float_of_int j +. 0.5)
                           /. float_of_int n))
      done;
      !acc)

  (* FFT-based DCT analysis (Makhoul): interleave x into v with
     v.(m) = x.(2m) and v.(n-1-m) = x.(2m+1), take the DFT V, then
     C.(k) = Re (exp (-i pi k / 2n) * V.(k)). *)
  let dct_fast x =
    let n = Array.length x in
    let re = Array.make n 0.0 and im = Array.make n 0.0 in
    let half = n / 2 in
    for m = 0 to half - 1 do
      re.(m) <- x.(2 * m);
      re.(n - 1 - m) <- x.((2 * m) + 1)
    done;
    Fft.transform ~re ~im;
    Array.init n (fun k ->
      let theta = -.pi *. float_of_int k /. (2.0 *. float_of_int n) in
      (re.(k) *. cos theta) -. (im.(k) *. sin theta))

  (* FFT-based cosine synthesis: with W.(k) = c.(k) * exp (i pi k / 2n) and
     u the unnormalised inverse DFT of W, f.(2m) = Re u.(m) and
     f.(2m+1) = Re u.(n-1-m). *)
  let cos_synth_fast c =
    let n = Array.length c in
    let re = Array.make n 0.0 and im = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let theta = pi *. float_of_int k /. (2.0 *. float_of_int n) in
      re.(k) <- c.(k) *. cos theta;
      im.(k) <- c.(k) *. sin theta
    done;
    Fft.inverse ~re ~im;
    let f = Array.make n 0.0 in
    let half = n / 2 in
    for m = 0 to half - 1 do
      f.(2 * m) <- re.(m);
      f.((2 * m) + 1) <- re.(n - 1 - m)
    done;
    f

  let dct x = if is_power_of_two (Array.length x) then dct_fast x else dct_naive x

  let cos_synth c =
    if is_power_of_two (Array.length c) then cos_synth_fast c
    else cos_synth_naive c

  (* sin(pi k (j+1/2)/n) = (-1)^j cos(pi (n-k) (j+1/2)/n), so a sine
     synthesis is a cosine synthesis of the index-reversed coefficients
     followed by alternating signs. *)
  let sin_synth c =
    let n = Array.length c in
    if n = 0 then [||]
    else begin
      let y = Array.make n 0.0 in
      for k = 1 to n - 1 do
        y.(n - k) <- c.(k)
      done;
      let f = cos_synth y in
      for j = 0 to n - 1 do
        if j land 1 = 1 then f.(j) <- -.f.(j)
      done;
      f
    end
end

module Grid = struct
  type kernel = float array -> float array

  (* Each row/column task only writes its own stripe of [out] (disjoint
     indices, fresh per-task scratch), so pooled dispatch is trivially
     bit-identical to the sequential loop. *)
  let apply_rows ?pool ?(obs = Obs.disabled) kernel n grid =
    if Array.length grid <> n * n then
      invalid_arg "Transform.Grid: size mismatch";
    let pool = match pool with Some p -> p | None -> Parallel.sequential_pool in
    let out = Array.make (n * n) 0.0 in
    (* one row applies an O(n log n) kernel over n samples *)
    Parallel.parallel_for pool ~obs ~cost:(4.0 *. float_of_int n) n (fun r ->
      let row = Array.sub grid (r * n) n in
      let t = kernel row in
      Array.blit t 0 out (r * n) n);
    out

  let apply_cols ?pool ?(obs = Obs.disabled) kernel n grid =
    if Array.length grid <> n * n then
      invalid_arg "Transform.Grid: size mismatch";
    let pool = match pool with Some p -> p | None -> Parallel.sequential_pool in
    let out = Array.make (n * n) 0.0 in
    Parallel.parallel_for pool ~obs ~cost:(4.0 *. float_of_int n) n (fun c ->
      let col = Array.init n (fun r -> grid.((r * n) + c)) in
      let t = kernel col in
      for r = 0 to n - 1 do
        out.((r * n) + c) <- t.(r)
      done);
    out

  let dct2 ?pool ?obs n grid =
    apply_cols ?pool ?obs Dct.dct n (apply_rows ?pool ?obs Dct.dct n grid)

  let cos_cos_synth ?pool ?obs n c =
    apply_cols ?pool ?obs Dct.cos_synth n
      (apply_rows ?pool ?obs Dct.cos_synth n c)

  let sin_cos_synth ?pool ?obs n c =
    apply_cols ?pool ?obs Dct.sin_synth n
      (apply_rows ?pool ?obs Dct.cos_synth n c)

  let cos_sin_synth ?pool ?obs n c =
    apply_cols ?pool ?obs Dct.cos_synth n
      (apply_rows ?pool ?obs Dct.sin_synth n c)
end
