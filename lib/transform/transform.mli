(** Trigonometric transforms used by the electrostatic density solver.

    The density system expands the bin-density map in a cosine basis
    (Neumann boundary: cells cannot leave the placement region), solves the
    Poisson equation spectrally, and synthesises the potential and its
    field.  Sample points are bin centers, i.e. half-integer grid points
    [(j + 1/2)].

    Conventions (all unnormalised; callers apply scaling):
    - analysis   [dct x]       : [C.(k) = sum_j x.(j) * cos (pi k (j+1/2) / n)]
    - synthesis  [cos_synth c] : [f.(j) = sum_k c.(k) * cos (pi k (j+1/2) / n)]
    - synthesis  [sin_synth c] : [f.(j) = sum_k c.(k) * sin (pi k (j+1/2) / n)]

    Power-of-two sizes use an FFT-based O(n log n) path; any other size
    falls back to the direct O(n^2) evaluation.  Both paths agree to
    floating-point accuracy (property-tested). *)

module Fft : sig
  val transform : re:float array -> im:float array -> unit
  (** In-place forward DFT: [X.(k) = sum_j x.(j) exp (-2 pi i k j / n)].
      @raise Invalid_argument if the length is not a power of two or the
      two arrays differ in length. *)

  val inverse : re:float array -> im:float array -> unit
  (** In-place unnormalised inverse DFT:
      [x.(m) = sum_k X.(k) exp (+2 pi i k m / n)] (no 1/n factor). *)
end

module Dct : sig
  val dct : float array -> float array
  val cos_synth : float array -> float array
  val sin_synth : float array -> float array

  val dct_naive : float array -> float array
  (** Direct O(n^2) references, exported for testing. *)

  val cos_synth_naive : float array -> float array
  val sin_synth_naive : float array -> float array
end

(** Transforms over a square [n] x [n] grid stored row-major in a flat
    array of length [n * n]; index [(row, col)] is [row * n + col].  The
    [row] axis is the first subscript in the docs below. *)
module Grid : sig
  type kernel = float array -> float array

  val apply_rows :
    ?pool:Parallel.pool -> ?obs:Obs.t -> kernel -> int -> float array ->
    float array

  val apply_cols :
    ?pool:Parallel.pool -> ?obs:Obs.t -> kernel -> int -> float array ->
    float array
  (** With [pool], rows (resp. columns) are dispatched through the worker
      pool; each task writes a disjoint stripe with fresh scratch, so
      pooled results are bit-identical to sequential ones.  [obs] records
      the executor's dispatch/wait spans. *)

  val dct2 :
    ?pool:Parallel.pool -> ?obs:Obs.t -> int -> float array -> float array
  (** 2D analysis: DCT along rows then along columns. *)

  val cos_cos_synth :
    ?pool:Parallel.pool -> ?obs:Obs.t -> int -> float array -> float array

  val sin_cos_synth :
    ?pool:Parallel.pool -> ?obs:Obs.t -> int -> float array -> float array
  (** [sin] along the row axis, [cos] along the column axis. *)

  val cos_sin_synth :
    ?pool:Parallel.pool -> ?obs:Obs.t -> int -> float array -> float array
end
