(** A tiny lexer/parser toolkit shared by the repo's text formats
    (Liberty-lite cell libraries, Bookshelf-lite designs).

    The token language is fixed: identifiers, double-quoted strings,
    floating-point numbers, braces, semicolons and an arrow ([->]).
    ['#'] starts a line comment.  Parse errors raise [Failure] with a
    uniformly formatted ["WHERE:LINE:COL: parse error: ..."] message,
    where [WHERE] is the source file name when one was given to
    {!make_lexer} and the format name otherwise. *)

type token =
  | Tident of string
  | Tstring of string
  | Tnumber of float
  | Tlbrace
  | Trbrace
  | Tsemi
  | Tarrow
  | Teof

type lexer

val make_lexer : ?file:string -> ?what:string -> string -> lexer
(** [what] names the format in error messages (default ["input"]);
    [file] names the on-disk source and takes precedence over [what]
    in error locations when present. *)

val peek : lexer -> token
val advance : lexer -> unit

val where : lexer -> string
(** The error-location prefix: the file name if known, else [what]. *)

val line : lexer -> int
(** Current 1-based source line (for recording declaration positions
    used in post-parse resolution errors). *)

val error : lexer -> string -> 'a
(** Raise a positioned [Failure]: ["WHERE:LINE:COL: parse error: MSG"]. *)

val fail_at : ?file:string -> line:int -> string -> 'a
(** Raise a resolution-stage [Failure] with the same location family:
    ["FILE:LINE: MSG"] ([file] defaults to ["<input>"]). *)

val eat : lexer -> token -> string -> unit
(** [eat lx expected name] consumes [expected] or fails mentioning
    [name]. *)

val ident : lexer -> string
val string_ : lexer -> string
val number : lexer -> float
val bool_ : lexer -> bool
(** Parses the identifiers [true]/[false]. *)

val numbers_until_semi : lexer -> float array
(** Consume numbers up to (and including) the next [';']. *)

val block :
  lexer -> field:(lexer -> string -> unit) -> unit
(** [block lx ~field] consumes ['{'], then repeatedly reads an
    identifier and hands it to [field] until the matching ['}']. *)
