type token =
  | Tident of string
  | Tstring of string
  | Tnumber of float
  | Tlbrace
  | Trbrace
  | Tsemi
  | Tarrow
  | Teof

type lexer = {
  what : string;
  file : string option;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
}

(* Uniform error locations: every parse-layer failure reads
   "WHERE:LINE:COL: parse error: ..." and every post-parse resolution
   failure "WHERE:LINE: ...", where WHERE is the file name when the
   source came from disk and the format name otherwise. *)
let where lx = match lx.file with Some f -> f | None -> lx.what
let line lx = lx.line

let error lx msg =
  failwith
    (Printf.sprintf "%s:%d:%d: parse error: %s" (where lx) lx.line lx.col msg)

let fail_at ?file ~line msg =
  failwith
    (Printf.sprintf "%s:%d: %s" (Option.value file ~default:"<input>") line msg)

let advance_char lx =
  (if lx.pos < String.length lx.src && lx.src.[lx.pos] = '\n' then begin
     lx.line <- lx.line + 1;
     lx.col <- 0
   end
   else lx.col <- lx.col + 1);
  lx.pos <- lx.pos + 1

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || (c >= '0' && c <= '9')

let is_number_start c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.'

let rec next_token lx =
  if lx.pos >= String.length lx.src then Teof
  else begin
    let c = lx.src.[lx.pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
      advance_char lx;
      next_token lx
    end
    else if c = '#' then begin
      while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
        advance_char lx
      done;
      next_token lx
    end
    else if c = '{' then begin advance_char lx; Tlbrace end
    else if c = '}' then begin advance_char lx; Trbrace end
    else if c = ';' then begin advance_char lx; Tsemi end
    else if c = '-' && lx.pos + 1 < String.length lx.src
            && lx.src.[lx.pos + 1] = '>' then begin
      advance_char lx;
      advance_char lx;
      Tarrow
    end
    else if c = '"' then begin
      advance_char lx;
      let start = lx.pos in
      while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '"' do
        advance_char lx
      done;
      if lx.pos >= String.length lx.src then error lx "unterminated string";
      let s = String.sub lx.src start (lx.pos - start) in
      advance_char lx;
      Tstring s
    end
    else if is_number_start c then begin
      let start = lx.pos in
      while
        lx.pos < String.length lx.src
        && (is_number_start lx.src.[lx.pos]
            || lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E')
      do
        advance_char lx
      done;
      let s = String.sub lx.src start (lx.pos - start) in
      match float_of_string_opt s with
      | Some f -> Tnumber f
      | None -> error lx (Printf.sprintf "bad number %S" s)
    end
    else if is_ident_char c then begin
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
        advance_char lx
      done;
      Tident (String.sub lx.src start (lx.pos - start))
    end
    else error lx (Printf.sprintf "unexpected character %C" c)
  end

let make_lexer ?file ?(what = "input") src =
  let lx = { what; file; src; pos = 0; line = 1; col = 0; tok = Teof } in
  lx.tok <- next_token lx;
  lx

let advance lx = lx.tok <- next_token lx
let peek lx = lx.tok

let eat lx expected name =
  if lx.tok = expected then advance lx
  else error lx (Printf.sprintf "expected %s" name)

let ident lx =
  match lx.tok with
  | Tident s -> advance lx; s
  | Tstring _ | Tnumber _ | Tlbrace | Trbrace | Tsemi | Tarrow | Teof ->
    error lx "expected identifier"

let string_ lx =
  match lx.tok with
  | Tstring s -> advance lx; s
  | Tident _ | Tnumber _ | Tlbrace | Trbrace | Tsemi | Tarrow | Teof ->
    error lx "expected string"

let number lx =
  match lx.tok with
  | Tnumber f -> advance lx; f
  | Tident _ | Tstring _ | Tlbrace | Trbrace | Tsemi | Tarrow | Teof ->
    error lx "expected number"

let bool_ lx =
  match ident lx with
  | "true" -> true
  | "false" -> false
  | s -> error lx (Printf.sprintf "expected bool, got %S" s)

let numbers_until_semi lx =
  let rec loop acc =
    match peek lx with
    | Tnumber f -> advance lx; loop (f :: acc)
    | Tsemi -> advance lx; Array.of_list (List.rev acc)
    | Tident _ | Tstring _ | Tlbrace | Trbrace | Tarrow | Teof ->
      error lx "expected number or ';'"
  in
  loop []

let block lx ~field =
  eat lx Tlbrace "'{'";
  let rec fields () =
    match peek lx with
    | Trbrace -> advance lx
    | Tident _ ->
      field lx (ident lx);
      fields ()
    | Tstring _ | Tnumber _ | Tlbrace | Tsemi | Tarrow | Teof ->
      error lx "expected field name or '}'"
  in
  fields ()
