(** Bookshelf-lite: a self-contained text format for designs.

    The ICCAD 2015 contest distributes designs as Bookshelf file bundles
    (.nodes/.nets/.pl) plus Liberty and SDC; this single-file equivalent
    carries the same information — cells with library bindings and
    placement, pins with offsets, nets, the placement region and the
    timing constraints — so benchmarks can be saved to disk, exchanged
    and reloaded.  Library cells are referenced by name and resolved
    against a [Liberty.t] at load time. *)

val to_string : Netlist.t -> Sta.Constraints.t -> string

val of_string :
  ?file:string -> Liberty.t -> string -> Netlist.t * Sta.Constraints.t
(** @raise Failure with a uniformly positioned message
    (["WHERE:LINE:COL: parse error: ..."] for syntax,
    ["WHERE:LINE: ..."] for resolution failures such as unknown cells
    or pins; [WHERE] is [file] when given). *)

val save : string -> Netlist.t -> Sta.Constraints.t -> unit
val load : Liberty.t -> string -> Netlist.t * Sta.Constraints.t
