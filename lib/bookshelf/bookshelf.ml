let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string (design : Netlist.t) (cs : Sta.Constraints.t) =
  let b = Buffer.create (1 lsl 20) in
  let region = design.Netlist.region in
  Buffer.add_string b (Printf.sprintf "design \"%s\" {\n" design.Netlist.design_name);
  Buffer.add_string b
    (Printf.sprintf "  region %s %s %s %s;\n"
       (float_str region.Geometry.Rect.lx) (float_str region.Geometry.Rect.ly)
       (float_str region.Geometry.Rect.hx) (float_str region.Geometry.Rect.hy));
  Buffer.add_string b
    (Printf.sprintf "  row_height %s;\n" (float_str design.Netlist.row_height));
  Buffer.add_string b
    (Printf.sprintf
       "  constraints { clock_period %s; input_delay %s; output_delay %s; \
        input_slew %s; clock_slew %s; output_load %s; }\n"
       (float_str cs.Sta.Constraints.clock_period)
       (float_str cs.Sta.Constraints.input_delay)
       (float_str cs.Sta.Constraints.output_delay)
       (float_str cs.Sta.Constraints.input_slew)
       (float_str cs.Sta.Constraints.clock_slew)
       (float_str cs.Sta.Constraints.output_load));
  Array.iter
    (fun (c : Netlist.cell) ->
      Buffer.add_string b (Printf.sprintf "  cell \"%s\" { " c.Netlist.cell_name);
      if c.Netlist.lib_cell >= 0 then
        Buffer.add_string b (Printf.sprintf "lib %d; " c.Netlist.lib_cell)
      else Buffer.add_string b "pad; ";
      Buffer.add_string b
        (Printf.sprintf "size %s %s; at %s %s; fixed %b; }\n"
           (float_str c.Netlist.width) (float_str c.Netlist.height)
           (float_str c.Netlist.x) (float_str c.Netlist.y) c.Netlist.fixed))
    design.Netlist.cells;
  Array.iter
    (fun (p : Netlist.pin) ->
      Buffer.add_string b
        (Printf.sprintf
           "  pin \"%s\" { cell \"%s\"; direction %s; offset %s %s; lib_pin %d; }\n"
           p.Netlist.pin_name
           design.Netlist.cells.(p.Netlist.cell).Netlist.cell_name
           (match p.Netlist.direction with
            | Netlist.Input -> "input"
            | Netlist.Output -> "output")
           (float_str p.Netlist.offset_x) (float_str p.Netlist.offset_y)
           p.Netlist.lib_pin))
    design.Netlist.pins;
  Array.iter
    (fun (net : Netlist.net) ->
      Buffer.add_string b (Printf.sprintf "  net \"%s\" { pins" net.Netlist.net_name);
      Array.iter
        (fun p ->
          Buffer.add_string b
            (Printf.sprintf " \"%s\"" design.Netlist.pins.(p).Netlist.pin_name))
        net.Netlist.net_pins;
      Buffer.add_string b "; }\n")
    design.Netlist.nets;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* The on-disk format stores library-cell indices for compactness; they
   are validated against the resolving library at load time. *)
let of_string ?file lib src =
  let open Parsekit in
  let lx = make_lexer ?file ~what:"bookshelf" src in
  (match ident lx with
   | "design" -> ()
   | s -> error lx (Printf.sprintf "expected 'design', got %S" s));
  let name = string_ lx in
  let region = ref (Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:1.0 ~hy:1.0) in
  let row_height = ref 1.0 in
  let cs = ref Sta.Constraints.default in
  let cells = ref [] and pins = ref [] and nets = ref [] in
  let parse_constraints () =
    block lx ~field:(fun lx f ->
      let v = number lx in
      eat lx Tsemi "';'";
      let c = !cs in
      cs :=
        (match f with
         | "clock_period" -> { c with Sta.Constraints.clock_period = v }
         | "input_delay" -> { c with Sta.Constraints.input_delay = v }
         | "output_delay" -> { c with Sta.Constraints.output_delay = v }
         | "input_slew" -> { c with Sta.Constraints.input_slew = v }
         | "clock_slew" -> { c with Sta.Constraints.clock_slew = v }
         | "output_load" -> { c with Sta.Constraints.output_load = v }
         | other -> error lx (Printf.sprintf "unknown constraint %S" other)))
  in
  let parse_cell () =
    let cname = string_ lx in
    let lib_cell = ref (-1) and w = ref 1.0 and h = ref 1.0 in
    let x = ref 0.0 and y = ref 0.0 and fixed = ref false in
    block lx ~field:(fun lx f ->
      (match f with
       | "lib" ->
         let idx = int_of_float (number lx) in
         if idx < 0 || idx >= Array.length lib.Liberty.lib_cells then
           error lx (Printf.sprintf "cell %S: bad lib index %d" cname idx);
         lib_cell := idx
       | "pad" -> lib_cell := -1
       | "size" -> w := number lx; h := number lx
       | "at" -> x := number lx; y := number lx
       | "fixed" -> fixed := bool_ lx
       | other -> error lx (Printf.sprintf "unknown cell field %S" other));
      eat lx Tsemi "';'");
    cells := (cname, !lib_cell, !w, !h, !x, !y, !fixed) :: !cells
  in
  let parse_pin () =
    let decl_line = line lx in
    let pname = string_ lx in
    let cell = ref "" and dir = ref Netlist.Input in
    let ox = ref 0.0 and oy = ref 0.0 and lib_pin = ref (-1) in
    block lx ~field:(fun lx f ->
      (match f with
       | "cell" -> cell := string_ lx
       | "direction" ->
         (match ident lx with
          | "input" -> dir := Netlist.Input
          | "output" -> dir := Netlist.Output
          | s -> error lx (Printf.sprintf "bad direction %S" s))
       | "offset" -> ox := number lx; oy := number lx
       | "lib_pin" -> lib_pin := int_of_float (number lx)
       | other -> error lx (Printf.sprintf "unknown pin field %S" other));
      eat lx Tsemi "';'");
    pins := (pname, !cell, !dir, !ox, !oy, !lib_pin, decl_line) :: !pins
  in
  let parse_net () =
    let decl_line = line lx in
    let nname = string_ lx in
    let net_pins = ref [] in
    block lx ~field:(fun lx f ->
      match f with
      | "pins" ->
        let rec names acc =
          match peek lx with
          | Tstring s -> advance lx; names (s :: acc)
          | Tsemi -> advance lx; List.rev acc
          | Tident _ | Tnumber _ | Tlbrace | Trbrace | Tarrow | Teof ->
            error lx "expected pin name or ';'"
        in
        net_pins := names []
      | other -> error lx (Printf.sprintf "unknown net field %S" other));
    nets := (nname, !net_pins, decl_line) :: !nets
  in
  block lx ~field:(fun lx f ->
    match f with
    | "region" ->
      let lo_x = number lx in
      let lo_y = number lx in
      let hi_x = number lx in
      let hi_y = number lx in
      eat lx Tsemi "';'";
      region := Geometry.Rect.make ~lx:lo_x ~ly:lo_y ~hx:hi_x ~hy:hi_y
    | "row_height" -> row_height := number lx; eat lx Tsemi "';'"
    | "constraints" -> parse_constraints ()
    | "cell" -> parse_cell ()
    | "pin" -> parse_pin ()
    | "net" -> parse_net ()
    | other -> error lx (Printf.sprintf "unknown design field %S" other));
  (match peek lx with
   | Teof -> ()
   | Tident _ | Tstring _ | Tnumber _ | Tlbrace | Trbrace | Tsemi | Tarrow ->
     error lx "trailing input after design");
  (* rebuild through the validating builder *)
  let b = Netlist.Builder.create ~region:!region ~row_height:!row_height name in
  let cell_ids = Hashtbl.create 1024 in
  List.iter
    (fun (cname, lib_cell, w, h, x, y, fixed) ->
      let id =
        Netlist.Builder.add_cell b ~name:cname ~lib_cell ~width:w ~height:h
          ~x ~y ~fixed ()
      in
      Hashtbl.replace cell_ids cname id)
    (List.rev !cells);
  let pin_ids = Hashtbl.create 4096 in
  List.iter
    (fun (pname, cname, dir, ox, oy, lib_pin, decl_line) ->
      let cell =
        match Hashtbl.find_opt cell_ids cname with
        | Some id -> id
        | None ->
          fail_at ?file ~line:decl_line
            (Printf.sprintf "bookshelf: pin %S on unknown cell %S" pname
               cname)
      in
      let id =
        Netlist.Builder.add_pin b ~cell ~name:pname ~direction:dir
          ~offset_x:ox ~offset_y:oy ~lib_pin ()
      in
      Hashtbl.replace pin_ids pname id)
    (List.rev !pins);
  List.iter
    (fun (nname, pin_names, decl_line) ->
      let resolved =
        List.map
          (fun pname ->
            match Hashtbl.find_opt pin_ids pname with
            | Some id -> id
            | None ->
              fail_at ?file ~line:decl_line
                (Printf.sprintf "bookshelf: net %S uses unknown pin %S"
                   nname pname))
          pin_names
      in
      ignore (Netlist.Builder.add_net b ~name:nname ~pins:resolved))
    (List.rev !nets);
  (Netlist.Builder.freeze b, !cs)

let save path design cs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string design cs))

let load lib path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~file:path lib (In_channel.input_all ic))
