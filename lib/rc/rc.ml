type t = {
  tree : Steiner.t;
  r_unit : float;
  c_unit : float;
  pin_caps : float array;
  res : float array;
  cap : float array;
  load : float array;
  delay : float array;
  ldelay : float array;
  beta : float array;
  impulse2 : float array;
}

let create ~r_unit ~c_unit ~pin_caps tree =
  if Array.length pin_caps <> tree.Steiner.pin_count then
    invalid_arg "Rc.create: pin_caps size mismatch";
  let n = Steiner.node_count tree in
  { tree; r_unit; c_unit; pin_caps;
    res = Array.make n 0.0;
    cap = Array.make n 0.0;
    load = Array.make n 0.0;
    delay = Array.make n 0.0;
    ldelay = Array.make n 0.0;
    beta = Array.make n 0.0;
    impulse2 = Array.make n 0.0 }

let evaluate t =
  let tree = t.tree in
  let n = Steiner.node_count tree in
  let order = tree.Steiner.order in
  let parent = tree.Steiner.parent in
  (* wire parasitics from current geometry *)
  for v = 0 to n - 1 do
    t.cap.(v) <- (if v < tree.Steiner.pin_count then t.pin_caps.(v) else 0.0)
  done;
  for v = 0 to n - 1 do
    let len = Steiner.edge_length tree v in
    t.res.(v) <- t.r_unit *. len;
    let half_wire = 0.5 *. t.c_unit *. len in
    if parent.(v) >= 0 then begin
      t.cap.(v) <- t.cap.(v) +. half_wire;
      t.cap.(parent.(v)) <- t.cap.(parent.(v)) +. half_wire
    end
  done;
  (* pass 1 (bottom-up): Load *)
  for v = 0 to n - 1 do
    t.load.(v) <- t.cap.(v)
  done;
  for i = n - 1 downto 1 do
    let v = order.(i) in
    t.load.(parent.(v)) <- t.load.(parent.(v)) +. t.load.(v)
  done;
  (* pass 2 (top-down): Delay *)
  t.delay.(order.(0)) <- 0.0;
  for i = 1 to n - 1 do
    let v = order.(i) in
    t.delay.(v) <- t.delay.(parent.(v)) +. (t.res.(v) *. t.load.(v))
  done;
  (* pass 3 (bottom-up): LDelay *)
  for v = 0 to n - 1 do
    t.ldelay.(v) <- t.cap.(v) *. t.delay.(v)
  done;
  for i = n - 1 downto 1 do
    let v = order.(i) in
    t.ldelay.(parent.(v)) <- t.ldelay.(parent.(v)) +. t.ldelay.(v)
  done;
  (* pass 4 (top-down): Beta; then Impulse^2 *)
  t.beta.(order.(0)) <- 0.0;
  for i = 1 to n - 1 do
    let v = order.(i) in
    t.beta.(v) <- t.beta.(parent.(v)) +. (t.res.(v) *. t.ldelay.(v))
  done;
  for v = 0 to n - 1 do
    t.impulse2.(v) <- (2.0 *. t.beta.(v)) -. (t.delay.(v) *. t.delay.(v))
  done

let root_load t = t.load.(t.tree.Steiner.order.(0))
let sink_delay t v = t.delay.(v)
let sink_impulse2 t v = Float.max 0.0 t.impulse2.(v)

type scratch = {
  mutable sc_load : float array;
  mutable sc_ldelay : float array;
  mutable sc_beta : float array;
  mutable sc_cap : float array;
  mutable sc_res : float array;
}

let make_scratch n =
  let n = max n 1 in
  { sc_load = Array.make n 0.0;
    sc_ldelay = Array.make n 0.0;
    sc_beta = Array.make n 0.0;
    sc_cap = Array.make n 0.0;
    sc_res = Array.make n 0.0 }

let reserve_scratch sc n =
  if Array.length sc.sc_load < n then begin
    let cap = max n (2 * Array.length sc.sc_load) in
    sc.sc_load <- Array.make cap 0.0;
    sc.sc_ldelay <- Array.make cap 0.0;
    sc.sc_beta <- Array.make cap 0.0;
    sc.sc_cap <- Array.make cap 0.0;
    sc.sc_res <- Array.make cap 0.0
  end
  else begin
    Array.fill sc.sc_load 0 n 0.0;
    Array.fill sc.sc_ldelay 0 n 0.0;
    Array.fill sc.sc_beta 0 n 0.0;
    Array.fill sc.sc_cap 0 n 0.0;
    Array.fill sc.sc_res 0 n 0.0
  end

(* Reverse-mode differentiation: the adjoint of each forward pass runs in
   the opposite traversal direction, in reverse pass order (Fig. 5). *)
let backward ?scratch t ~g_delay ~g_impulse2 ~g_root_load ~node_gx ~node_gy =
  let tree = t.tree in
  let n = Steiner.node_count tree in
  if Array.length g_delay < n || Array.length g_impulse2 < n then
    invalid_arg "Rc.backward: gradient size mismatch";
  if Array.length node_gx < n || Array.length node_gy < n then
    invalid_arg "Rc.backward: output size mismatch";
  let order = tree.Steiner.order in
  let parent = tree.Steiner.parent in
  let sc = match scratch with Some sc -> sc | None -> make_scratch n in
  reserve_scratch sc n;
  let g_load = sc.sc_load in
  let g_ldelay = sc.sc_ldelay in
  let g_beta = sc.sc_beta in
  let g_cap = sc.sc_cap in
  let g_res = sc.sc_res in
  g_load.(order.(0)) <- g_root_load;
  (* adjoint of Impulse^2 = 2 Beta - Delay^2 *)
  for v = 0 to n - 1 do
    g_beta.(v) <- 2.0 *. g_impulse2.(v);
    g_delay.(v) <- g_delay.(v) -. (2.0 *. t.delay.(v) *. g_impulse2.(v))
  done;
  (* adjoint of Beta (forward was top-down, so go bottom-up) *)
  for i = n - 1 downto 1 do
    let v = order.(i) in
    g_beta.(parent.(v)) <- g_beta.(parent.(v)) +. g_beta.(v);
    g_res.(v) <- g_res.(v) +. (t.ldelay.(v) *. g_beta.(v));
    g_ldelay.(v) <- g_ldelay.(v) +. (t.res.(v) *. g_beta.(v))
  done;
  (* adjoint of LDelay (forward was bottom-up, so go top-down) *)
  for i = 0 to n - 1 do
    let v = order.(i) in
    if parent.(v) >= 0 then
      g_ldelay.(v) <- g_ldelay.(v) +. g_ldelay.(parent.(v))
  done;
  for v = 0 to n - 1 do
    g_cap.(v) <- g_cap.(v) +. (t.delay.(v) *. g_ldelay.(v));
    g_delay.(v) <- g_delay.(v) +. (t.cap.(v) *. g_ldelay.(v))
  done;
  (* adjoint of Delay (forward was top-down, so go bottom-up) *)
  for i = n - 1 downto 1 do
    let v = order.(i) in
    g_delay.(parent.(v)) <- g_delay.(parent.(v)) +. g_delay.(v);
    g_res.(v) <- g_res.(v) +. (t.load.(v) *. g_delay.(v));
    g_load.(v) <- g_load.(v) +. (t.res.(v) *. g_delay.(v))
  done;
  (* adjoint of Load (forward was bottom-up, so go top-down) *)
  for i = 0 to n - 1 do
    let v = order.(i) in
    if parent.(v) >= 0 then g_load.(v) <- g_load.(v) +. g_load.(parent.(v));
    g_cap.(v) <- g_cap.(v) +. g_load.(v)
  done;
  (* parasitics to edge lengths to coordinates *)
  for i = 1 to n - 1 do
    let v = order.(i) in
    let p = parent.(v) in
    let g_len =
      (t.r_unit *. g_res.(v))
      +. (0.5 *. t.c_unit *. (g_cap.(v) +. g_cap.(p)))
    in
    let dx = tree.Steiner.xs.(v) -. tree.Steiner.xs.(p) in
    let dy = tree.Steiner.ys.(v) -. tree.Steiner.ys.(p) in
    let sx = if dx > 0.0 then 1.0 else if dx < 0.0 then -1.0 else 0.0 in
    let sy = if dy > 0.0 then 1.0 else if dy < 0.0 then -1.0 else 0.0 in
    node_gx.(v) <- node_gx.(v) +. (g_len *. sx);
    node_gx.(p) <- node_gx.(p) -. (g_len *. sx);
    node_gy.(v) <- node_gy.(v) +. (g_len *. sy);
    node_gy.(p) <- node_gy.(p) -. (g_len *. sy)
  done
