(** Elmore delay on RC trees, forward and reverse mode (paper §3.4.2).

    A net's Steiner tree is annotated with per-edge resistance
    [r_unit * length] and per-node capacitance (half of each incident
    wire's capacitance plus the sink pin capacitance).  The classic four
    alternating tree-DP passes (Eq. 7) compute, for every node [u]:

    - [load u]: downstream capacitance;
    - [delay u]: Elmore delay from the root (driver);
    - [ldelay u] and [beta u]: the moment accumulators;
    - [impulse2 u = 2 * beta u - (delay u)^2]: squared slew impulse.

    [backward] runs the four passes in reverse (Eq. 8, Fig. 5), turning
    gradients with respect to sink delays, sink impulse-squares and the
    root load into gradients with respect to the {e coordinates} of every
    tree node.  Note: Eq. 8c of the paper prints the term
    [+2 Delay(u) dImpulse2(u)]; the chain rule through
    [impulse2 = 2 beta - delay^2] requires the {b negative} sign, which is
    what we implement (validated against finite differences). *)

type t = {
  tree : Steiner.t;
  r_unit : float;
  c_unit : float;
  pin_caps : float array;  (** per tree pin; index 0 is the driver. *)
  res : float array;       (** per node: resistance of the edge to its parent. *)
  cap : float array;
  load : float array;
  delay : float array;
  ldelay : float array;
  beta : float array;
  impulse2 : float array;
}

val create : r_unit:float -> c_unit:float -> pin_caps:float array -> Steiner.t -> t
(** Allocate state for a tree.  [pin_caps] must have one entry per tree
    pin.  Call {!evaluate} before reading any result. *)

val evaluate : t -> unit
(** Recompute [res]/[cap] from the tree's current coordinates and run the
    four forward passes.  Cheap to call every placement iteration. *)

val root_load : t -> float
(** Total capacitance seen by the net driver (valid after {!evaluate}). *)

val sink_delay : t -> int -> float
(** Elmore delay from the driver to tree node [v]. *)

val sink_impulse2 : t -> int -> float
(** Squared impulse at node [v], clamped at 0. *)

type scratch
(** Reusable adjoint work arrays for {!backward}, so per-net backward
    calls allocate nothing.  One scratch may be reused across trees of
    any size (it grows on demand) but must not be shared between
    concurrent {!backward} calls. *)

val make_scratch : int -> scratch
(** [make_scratch n] pre-sizes a scratch for trees up to [n] nodes. *)

val backward :
  ?scratch:scratch ->
  t ->
  g_delay:float array ->
  g_impulse2:float array ->
  g_root_load:float ->
  node_gx:float array ->
  node_gy:float array ->
  unit
(** Reverse-mode pass.  [g_delay] and [g_impulse2] hold the objective's
    gradients with respect to each node's delay and impulse-square
    (callers fill sink entries, zeros elsewhere); [g_root_load] the
    gradient with respect to {!root_load} (from the driving cell's LUT
    query).  Coordinate gradients are {b accumulated} into
    [node_gx]/[node_gy].  All four arrays may be longer than
    [node_count]; only the first [node_count] entries are read or
    written, so callers can slice one large buffer across nets without
    [Array.sub] copies.  The first [node_count] entries of [g_delay] and
    [g_impulse2] are destroyed.  [scratch] (default: freshly allocated)
    provides the five internal adjoint arrays. *)
