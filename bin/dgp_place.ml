(* dgp_place: run global placement (wirelength / net-weighting /
   differentiable-timing) on a design, optionally legalise, score with
   exact STA and save the result. *)

open Cmdliner

let mode_conv =
  let parse = function
    | "wl" | "wirelength" -> Ok Core.Wirelength_only
    | "netweight" | "nw" -> Ok (Core.Net_weighting Netweight.default_config)
    | "pathweight" | "pw" ->
      Ok (Core.Path_weighting Paths.Weight.default_config)
    | "timing" | "ours" ->
      Ok (Core.Differentiable_timing Core.default_timing)
    | s ->
      Error
        (`Msg
           (Printf.sprintf "unknown mode %S (wl|netweight|pathweight|timing)" s))
  in
  let print ppf = function
    | Core.Wirelength_only -> Format.pp_print_string ppf "wl"
    | Core.Net_weighting _ -> Format.pp_print_string ppf "netweight"
    | Core.Path_weighting _ -> Format.pp_print_string ppf "pathweight"
    | Core.Differentiable_timing _ -> Format.pp_print_string ppf "timing"
  in
  Arg.conv (parse, print)

let mode =
  let doc = "Placement mode: wl (DREAMPlace baseline), netweight \
             (net-weighting baseline [24]), pathweight (top-K \
             critical-path weighting) or timing (this paper)." in
  Arg.(value & opt mode_conv (Core.Differentiable_timing Core.default_timing)
       & info [ "mode"; "m" ] ~docv:"MODE" ~doc)

let iterations =
  let doc = "Maximum placement iterations." in
  Arg.(value & opt int 600 & info [ "iterations"; "i" ] ~docv:"N" ~doc)

let t1 =
  let doc = "TNS objective weight (timing mode)." in
  Arg.(value & opt float Core.default_timing.Core.t1 & info [ "t1" ] ~doc)

let t2 =
  let doc = "WNS objective weight (timing mode)." in
  Arg.(value & opt float Core.default_timing.Core.t2 & info [ "t2" ] ~doc)

let gamma =
  let doc = "LSE smoothing width in ps (timing mode)." in
  Arg.(value & opt float Core.default_timing.Core.gamma & info [ "gamma" ] ~doc)

let steiner_period =
  let doc = "Steiner topology rebuild cadence in iterations (timing \
             mode; the paper's reuse-FLUTE-results period)." in
  Arg.(value & opt int Core.default_timing.Core.steiner_period
       & info [ "steiner-period" ] ~docv:"N" ~doc)

let steiner_dirty =
  let doc = "Dirty-net rebuild threshold in gamma units (timing mode): \
             on a rebuild tick only nets with a pin displaced more than \
             $(docv) * gamma since their last topologisation are \
             re-topologised.  Negative = rebuild every net each tick." in
  Arg.(value
       & opt float
           (match Core.default_timing.Core.steiner_dirty with
            | Some g -> g
            | None -> -1.0)
       & info [ "steiner-dirty" ] ~docv:"G" ~doc)

let no_legalize =
  let doc = "Skip the Tetris legalisation step." in
  Arg.(value & flag & info [ "no-legalize" ] ~doc)

let out_file =
  let doc = "Save the placed design to $(docv) (bookshelf-lite)." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let svg_file =
  let doc = "Render the final placement to $(docv) (SVG), with the
             critical path overlaid." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)

let svg_paths =
  let doc = "Number of worst paths to overlay on the SVG plot." in
  Arg.(value & opt int 1 & info [ "svg-paths" ] ~docv:"K" ~doc)

let svg_congestion =
  let doc = "Overlay the RUDY congestion heatmap on the SVG plot \
             (congested bins shade red)." in
  Arg.(value & flag & info [ "svg-congestion" ] ~doc)

let routability =
  let doc = "Enable routability mode: measure RUDY congestion between \
             placement rounds and temporarily inflate cells in \
             congested bins so the density penalty spreads them." in
  Arg.(value & flag & info [ "routability" ] ~doc)

let routability_capacity =
  let doc = "Routing capacity per unit bin area (utilization = demand \
             density / capacity)." in
  Arg.(value & opt float Route.default_config.Route.rt_capacity
       & info [ "routability-capacity" ] ~docv:"C" ~doc)

let routability_target =
  let doc = "Bin utilization above which cells inflate." in
  Arg.(value & opt float Route.default_config.Route.rt_target
       & info [ "routability-target" ] ~docv:"U" ~doc)

let routability_max_ratio =
  let doc = "Cumulative per-cell area inflation cap." in
  Arg.(value & opt float Route.default_config.Route.rt_max_ratio
       & info [ "routability-max-ratio" ] ~docv:"R" ~doc)

let routability_max_rounds =
  let doc = "Maximum inflation rounds per run." in
  Arg.(value & opt int Route.default_config.Route.rt_max_rounds
       & info [ "routability-max-rounds" ] ~docv:"N" ~doc)

let trace_file =
  let doc = "Write the per-iteration trace to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let verbose =
  let doc = "Print progress every 50 iterations." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let profile =
  let doc = "Record per-kernel timings (monotonic clock) and print the \
             profile table to stderr at exit." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let trace_out =
  let doc = "Write the span-level profiling trace to $(docv) as JSONL \
             (implies recording; combine with $(b,--profile) for the \
             summary table)." in
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc)

let domains =
  let doc = "Worker domains for the per-iteration kernels (wirelength, \
             density, Steiner/RC, STA and the differentiable timer; 1 = \
             sequential).  Results are bit-identical across domain \
             counts." in
  Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let stop_overflow =
  let doc = "Density overflow at which the placement stops (the shared \
             quality target of every mode and of the multilevel \
             V-cycle)." in
  Arg.(value & opt float Core.default_config.Core.stop_overflow
       & info [ "stop-overflow" ] ~docv:"F" ~doc)

let multilevel =
  let doc = "Place through the multilevel V-cycle: coarsen the netlist \
             bottom-up, place the coarsest level, then interpolate and \
             refine level by level.  The configured mode and \
             routability apply at the finest level; intermediate \
             levels run wirelength-only.  Strongly recommended above \
             ~50k cells." in
  Arg.(value & flag & info [ "multilevel" ] ~doc)

let levels =
  let doc = "Total placement levels for $(b,--multilevel) (1 = flat, \
             bit-identical to running without $(b,--multilevel); each \
             extra level adds one coarsening step)." in
  Arg.(value & opt int Core.default_multilevel.Core.ml_levels
       & info [ "levels" ] ~docv:"N" ~doc)

let cluster_ratio =
  let doc = "Target fine-to-coarse movable-cell ratio per coarsening \
             step (also sets the cluster area cap)." in
  Arg.(value & opt float Core.default_multilevel.Core.ml_cluster_ratio
       & info [ "cluster-ratio" ] ~docv:"R" ~doc)

let run lib_file design_file bench cells seed clock hotspot hotspot_clusters
    scale mode iterations t1 t2 gamma steiner_period steiner_dirty no_legalize
    out_file svg_file svg_paths svg_congestion trace_file verbose domains
    stop_overflow multilevel levels cluster_ratio
    profile trace_out routability routability_capacity routability_target
    routability_max_ratio routability_max_rounds =
  let lib = Dgp_common.load_library lib_file in
  let design, constraints =
    Dgp_common.load_design lib ~design_file ~bench ~cells ~seed
      ~clock_period:clock ~hotspot ~hotspot_clusters ~scale ()
  in
  let stats = Netlist.Stats.compute design in
  Format.printf "design %s:@.%a@.@." design.Netlist.design_name
    Netlist.Stats.pp stats;
  let graph = Sta.Graph.build design lib constraints in
  let mode =
    match mode with
    | Core.Differentiable_timing tc ->
      Core.Differentiable_timing
        { tc with
          Core.t1; t2; gamma; steiner_period;
          steiner_dirty =
            (if steiner_dirty < 0.0 then None else Some steiner_dirty) }
    | (Core.Wirelength_only | Core.Net_weighting _ | Core.Path_weighting _)
      as m -> m
  in
  let route_cfg =
    { Route.default_config with
      Route.rt_capacity = routability_capacity;
      rt_target = routability_target;
      rt_max_ratio = routability_max_ratio;
      rt_max_rounds = routability_max_rounds }
  in
  let config =
    { Core.default_config with
      Core.mode; max_iterations = iterations; stop_overflow; verbose;
      routability = (if routability then Some route_cfg else None) }
  in
  let pool =
    if domains > 1 then Some (Parallel.create ~domains ()) else None
  in
  let obs =
    if profile || trace_out <> None then Obs.create ~gc:true ()
    else Obs.disabled
  in
  let result =
    if multilevel then
      Core.run_multilevel ?pool ~obs
        ~ml:
          { Core.default_multilevel with
            Core.ml_levels = levels; ml_cluster_ratio = cluster_ratio }
        config graph
    else Core.run ?pool ~obs config graph
  in
  (match pool with Some p -> Parallel.shutdown p | None -> ());
  Printf.printf "placement: %d iterations in %.2f s (overflow %.3f)\n"
    result.Core.res_iterations result.Core.res_runtime result.Core.res_overflow;
  (match result.Core.res_route with
   | Some s ->
     Format.printf "congestion: %a (%d inflation rounds)@." Route.pp_summary s
       result.Core.res_inflation_rounds
   | None -> ());
  if not no_legalize then begin
    let lg = Legalize.legalize ~obs design in
    Format.printf "legalisation:@.%a@." Legalize.pp_stats lg
  end;
  let report, hpwl = Core.score ~obs graph in
  Format.printf "@.final timing (exact STA):@.%a@.HPWL: %.4e um@."
    Sta.Timer.pp_report report hpwl;
  (match svg_file with
   | Some path ->
     let timer = Sta.Timer.create graph in
     let _ = Sta.Timer.run timer in
     let view = Paths.analyze ~obs timer in
     let top = Paths.enumerate ~obs ~k:(max 1 svg_paths) view in
     let congestion =
       if svg_congestion then begin
         let rudy =
           Route.Rudy.create ~capacity:routability_capacity design
         in
         Route.Rudy.update rudy;
         Some (Route.Rudy.bins rudy, Route.Rudy.utilization rudy)
       end
       else None
     in
     let options =
       { Viz.Svg.default_options with
         Viz.Svg.highlight_paths =
           List.map (fun p -> p.Paths.pt_steps) top;
         congestion }
     in
     Viz.Svg.save ~options path design;
     Printf.printf "placement plot written to %s (%d paths%s overlaid)\n" path
       (List.length top)
       (if svg_congestion then " + congestion" else "")
   | None -> ());
  (match trace_file with
   | Some path ->
     let t =
       Report.Table.create
         [ "iteration"; "hpwl"; "overflow"; "wns"; "tns"; "lambda" ]
     in
     List.iter
       (fun (p : Core.trace_point) ->
         Report.Table.add_row t
           [ string_of_int p.Core.tp_iteration;
             Printf.sprintf "%.6e" p.Core.tp_hpwl;
             Printf.sprintf "%.6f" p.Core.tp_overflow;
             (match p.Core.tp_wns with
              | Some v -> Printf.sprintf "%.3f" v
              | None -> "-");
             (match p.Core.tp_tns with
              | Some v -> Printf.sprintf "%.3f" v
              | None -> "-");
             Printf.sprintf "%.6e" p.Core.tp_lambda ])
       result.Core.res_trace;
     Out_channel.with_open_text path (fun oc ->
       Out_channel.output_string oc (Report.Table.render_csv t));
     Printf.printf "trace written to %s\n" path
   | None -> ());
  (match out_file with
   | Some path ->
     Bookshelf.save path design constraints;
     Printf.printf "placed design written to %s\n" path
   | None -> ());
  Obs.gauge obs "peak_rss_mb" (Obs.peak_rss_bytes () /. 1048576.0);
  (match trace_out with
   | Some path ->
     Obs.write_trace obs path;
     Printf.printf "profiling trace written to %s\n" path
   | None -> ());
  if profile then Format.eprintf "%a@." Obs.pp_report obs

let cmd =
  let doc = "timing-driven global placement (DAC'22 reproduction)" in
  Cmd.v
    (Cmd.info "dgp_place" ~doc)
    Term.(
      const run $ Dgp_common.lib_file $ Dgp_common.design_file
      $ Dgp_common.bench_name $ Dgp_common.cells $ Dgp_common.seed
      $ Dgp_common.clock_period $ Dgp_common.hotspot
      $ Dgp_common.hotspot_clusters $ Dgp_common.bench_scale $ mode
      $ iterations $ t1 $ t2 $ gamma
      $ steiner_period $ steiner_dirty $ no_legalize $ out_file $ svg_file
      $ svg_paths $ svg_congestion $ trace_file $ verbose $ domains
      $ stop_overflow $ multilevel $ levels $ cluster_ratio $ profile
      $ trace_out $ routability $ routability_capacity $ routability_target
      $ routability_max_ratio $ routability_max_rounds)

let () = exit (Cmd.eval cmd)
