(* dgp_serve: placement-as-a-service daemon.

   Loads a design + liberty once, keeps a resident Sta.Incremental
   snapshot plus the lib/paths in-edge CSR, and serves a line-oriented
   what-if protocol over stdin or a Unix socket:

     move <cell> <x> <y>   queue a cell move (validated, not propagated)
     commit                propagate pending moves, report WNS/TNS
     slack <pin>           late slack of one pin (guarded RAT read)
     paths <K>             top-K critical paths via lib/paths
     place <iters> <mode>  batched Core.run job from current positions
     stats                 design + incremental-work counters
     help                  command list
     quit                  end the session (close the connection)
     shutdown              end the session and stop a socket daemon

   Responses are single lines: "ok ..." or "err <reason>"; [paths]
   additionally emits one "path ..." line per path before its final
   "ok".  Every request is wrapped in per-request Obs spans
   (serve.parse + serve.update / serve.query, tagged with the request
   ordinal) feeding the standard JSONL trace writer, and mutating
   requests can be journaled for crash replay. *)

open Cmdliner

type state = {
  design : Netlist.t;
  graph : Sta.Graph.t;
  inc : Sta.Incremental.t;
  pool : Parallel.pool option;
  obs : Obs.t;
  mutable last_report : Sta.Timer.report;
  mutable dirty : bool;          (* queued moves not yet committed *)
  mutable view : Paths.t option; (* path CSR, invalidated by mutations *)
  mutable requests : int;
  journal : out_channel option;
}

let journal_line st line =
  match st.journal with
  | Some oc ->
    output_string oc line;
    output_char oc '\n';
    flush oc
  | None -> ()

let find_cell st token =
  match int_of_string_opt token with
  | Some id when id >= 0 && id < Netlist.num_cells st.design -> Some id
  | Some _ -> None
  | None ->
    (match Netlist.cell_by_name st.design token with
     | Some c -> Some c.Netlist.cell_id
     | None -> None)

let find_pin st token =
  match int_of_string_opt token with
  | Some id when id >= 0 && id < Netlist.num_pins st.design -> Some id
  | Some _ -> None
  | None ->
    (match Netlist.pin_by_name st.design token with
     | Some p -> Some p.Netlist.pin_id
     | None -> None)

(* Propagate queued moves so read-only queries never observe a
   placement the timer has not seen. *)
let ensure_committed st =
  if st.dirty then begin
    st.last_report <- Sta.Incremental.update ~obs:st.obs st.inc;
    st.dirty <- false;
    st.view <- None
  end

let path_view st =
  ensure_committed st;
  match st.view with
  | Some v -> v
  | None ->
    let v =
      Paths.analyze ?pool:st.pool ~obs:st.obs
        (Sta.Incremental.timer st.inc)
    in
    st.view <- Some v;
    v

let mode_of_string = function
  | "wl" | "wirelength" -> Some Core.Wirelength_only
  | "netweight" | "nw" -> Some (Core.Net_weighting Netweight.default_config)
  | "pathweight" | "pw" ->
    Some (Core.Path_weighting Paths.Weight.default_config)
  | "timing" | "ours" -> Some (Core.Differentiable_timing Core.default_timing)
  | _ -> None

let report_summary (r : Sta.Timer.report) =
  Printf.sprintf "wns %.3f tns %.3f endpoints %d" r.Sta.Timer.setup_wns
    r.Sta.Timer.setup_tns
    (List.length r.Sta.Timer.endpoint_slacks)

(* One request.  [out] writes a response line.  Returns the session
   verdict: [`Continue], [`Quit] (end this session) or [`Shutdown]
   (also stop a socket accept loop). *)
let handle st ~out line =
  st.requests <- st.requests + 1;
  Obs.set_iteration st.obs st.requests;
  let tokens =
    Obs.span st.obs Obs.Serve_parse (fun () ->
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> ""))
  in
  let update f = Obs.span st.obs Obs.Serve_update f in
  let query f = Obs.span st.obs Obs.Serve_query f in
  match tokens with
  | [] -> `Continue
  | cmd :: _ when cmd.[0] = '#' -> `Continue
  | [ "move"; cell; xs; ys ] ->
    update (fun () ->
      match find_cell st cell, float_of_string_opt xs, float_of_string_opt ys
      with
      | None, _, _ -> out (Printf.sprintf "err unknown cell %s" cell)
      | _, None, _ | _, _, None -> out "err move expects numeric coordinates"
      | Some id, Some x, Some y ->
        (match Sta.Incremental.move_cell st.inc id ~x ~y with
         | () ->
           st.dirty <- true;
           st.view <- None;
           journal_line st line;
           out
             (Printf.sprintf "ok queued %s"
                st.design.Netlist.cells.(id).Netlist.cell_name)
         | exception Invalid_argument msg ->
           out (Printf.sprintf "err %s" msg)));
    `Continue
  | [ "commit" ] ->
    update (fun () ->
      let r = Sta.Incremental.update ~obs:st.obs st.inc in
      st.last_report <- r;
      st.dirty <- false;
      st.view <- None;
      journal_line st line;
      let u = Sta.Incremental.last_stats st.inc in
      out
        (Printf.sprintf "ok %s pins %d changed %d nets %d" (report_summary r)
           u.Sta.Incremental.us_pins u.Sta.Incremental.us_changed
           u.Sta.Incremental.us_nets));
    `Continue
  | [ "slack"; pin ] ->
    query (fun () ->
      match find_pin st pin with
      | None -> out (Printf.sprintf "err unknown pin %s" pin)
      | Some p ->
        ensure_committed st;
        let slack = Sta.Incremental.pin_slack_late st.inc p in
        let tm = Sta.Incremental.timer st.inc in
        out
          (Printf.sprintf "ok slack %.3f at_rise %.3f at_fall %.3f" slack
             (Sta.Timer.at_late tm p Sta.Rise)
             (Sta.Timer.at_late tm p Sta.Fall)));
    `Continue
  | [ "paths"; k ] ->
    query (fun () ->
      match int_of_string_opt k with
      | Some k when k > 0 ->
        let view = path_view st in
        let paths = Paths.enumerate ?pool:st.pool ~obs:st.obs ~k view in
        List.iteri
          (fun i (p : Paths.path) ->
            let name pin = st.design.Netlist.pins.(pin).Netlist.pin_name in
            let startpoint =
              match p.Paths.pt_steps with
              | first :: _ -> name first.Sta.Timer.ps_pin
              | [] -> "-"
            in
            out
              (Printf.sprintf "path %d slack %.3f endpoint %s from %s stages %d"
                 (i + 1) p.Paths.pt_slack
                 (name p.Paths.pt_endpoint)
                 startpoint
                 (List.length p.Paths.pt_steps)))
          paths;
        out (Printf.sprintf "ok paths %d" (List.length paths))
      | _ -> out "err paths expects a positive K");
    `Continue
  | [ "place"; iters; mode ] ->
    update (fun () ->
      match int_of_string_opt iters, mode_of_string mode with
      | None, _ -> out "err place expects an iteration count"
      | _, None ->
        out (Printf.sprintf "err unknown mode %s (wl|netweight|pathweight|timing)" mode)
      | Some iters, Some mode when iters > 0 ->
        ensure_committed st;
        let config =
          { Core.default_config with
            Core.mode;
            max_iterations = iters;
            min_iterations = min Core.default_config.min_iterations iters;
            init = `Keep }
        in
        let result = Core.run ?pool:st.pool ~obs:st.obs config st.graph in
        (* resync the incremental view: full analysis (fresh topologies
           for the large motion), then absorb *)
        let r =
          Sta.Timer.run ?pool:st.pool ~obs:st.obs
            (Sta.Incremental.timer st.inc)
        in
        Sta.Incremental.absorb st.inc r;
        st.last_report <- r;
        st.dirty <- false;
        st.view <- None;
        journal_line st line;
        out
          (Printf.sprintf "ok iterations %d hpwl %.6e overflow %.3f %s"
             result.Core.res_iterations result.Core.res_hpwl
             result.Core.res_overflow (report_summary r))
      | _ -> out "err place expects a positive iteration count");
    `Continue
  | [ "stats" ] ->
    query (fun () ->
      ensure_committed st;
      let u = Sta.Incremental.last_stats st.inc in
      out
        (Printf.sprintf
           "ok cells %d nets %d pins %d %s last_pins %d last_changed %d \
            last_nets %d last_levels %d requests %d"
           (Netlist.num_cells st.design)
           (Netlist.num_nets st.design)
           (Netlist.num_pins st.design)
           (report_summary st.last_report)
           u.Sta.Incremental.us_pins u.Sta.Incremental.us_changed
           u.Sta.Incremental.us_nets u.Sta.Incremental.us_levels
           st.requests));
    `Continue
  | [ "help" ] ->
    out
      "ok commands: move <cell> <x> <y> | commit | slack <pin> | paths <K> \
       | place <iters> <mode> | stats | help | quit | shutdown";
    `Continue
  | [ "quit" ] | [ "exit" ] ->
    out "ok bye";
    `Quit
  | [ "shutdown" ] ->
    out "ok shutdown";
    `Shutdown
  | cmd :: _ ->
    out (Printf.sprintf "err unknown command %s (try help)" cmd);
    `Continue

(* Serve one line stream (stdin or an accepted connection). *)
let serve_channel st ic oc =
  let out line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> `Quit
    | Some line ->
      (match handle st ~out line with
       | `Continue -> loop ()
       | (`Quit | `Shutdown) as v -> v)
  in
  loop ()

let replay st path =
  match In_channel.with_open_text path In_channel.input_lines with
  | lines ->
    let replayed = ref 0 in
    List.iter
      (fun line ->
        if String.trim line <> "" then begin
          incr replayed;
          match
            handle st ~out:(fun resp ->
              if String.length resp >= 3 && String.sub resp 0 3 = "err" then
                Printf.eprintf "[dgp_serve] replay: %s -> %s\n%!" line resp)
              line
          with
          | `Continue | `Quit | `Shutdown -> ()
        end)
      lines;
    Printf.eprintf "[dgp_serve] replayed %d journaled requests from %s\n%!"
      !replayed path
  | exception Sys_error msg ->
    Printf.eprintf "[dgp_serve] cannot replay %s: %s\n%!" path msg

let serve_socket st path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Printf.eprintf "[dgp_serve] listening on %s\n%!" path;
  let stop = ref false in
  while not !stop do
    let conn, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr conn in
    let oc = Unix.out_channel_of_descr conn in
    (match serve_channel st ic oc with
     | `Shutdown -> stop := true
     | `Quit -> ());
    (try Unix.close conn with Unix.Unix_error _ -> ())
  done;
  Unix.close sock;
  Sys.remove path

let socket_arg =
  let doc = "Serve over a Unix domain socket at $(docv) instead of \
             stdin/stdout.  Connections are served sequentially; the \
             $(b,shutdown) command stops the daemon." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let journal_arg =
  let doc = "Append every accepted mutating request (move/commit/place) \
             to $(docv), so a crashed client can replay the session." in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let replay_arg =
  let doc = "Replay a session journal from $(docv) before serving." in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)

let domains =
  let doc = "Worker domains for the batched placement and full-STA \
             kernels (1 = sequential)." in
  Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"N" ~doc)

let profile =
  let doc = "Record per-kernel timings and print the profile table to \
             stderr at exit." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let trace_out =
  let doc = "Write the span-level profiling trace (per-request \
             serve.parse/serve.update/serve.query spans included) to \
             $(docv) as JSONL at exit." in
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc)

let run lib_file design_file bench cells seed clock socket journal replay_from
    domains profile trace_out =
  let lib = Dgp_common.load_library lib_file in
  let design, constraints =
    Dgp_common.load_design lib ~design_file ~bench ~cells ~seed
      ~clock_period:clock ()
  in
  let graph = Sta.Graph.build design lib constraints in
  let obs =
    if profile || trace_out <> None then Obs.create ~gc:true ()
    else Obs.disabled
  in
  let pool =
    if domains > 1 then Some (Parallel.create ~domains ()) else None
  in
  let inc = Sta.Incremental.create graph in
  let st =
    { design; graph; inc; pool; obs;
      last_report = Sta.Incremental.update inc;
      dirty = false; view = None; requests = 0;
      journal =
        (match journal with
         | Some path -> Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
         | None -> None) }
  in
  Printf.eprintf "[dgp_serve] %s: %d cells, %d nets, %d pins; %s\n%!"
    design.Netlist.design_name (Netlist.num_cells design)
    (Netlist.num_nets design) (Netlist.num_pins design)
    (report_summary st.last_report);
  (match replay_from with Some path -> replay st path | None -> ());
  (match socket with
   | Some path -> serve_socket st path
   | None -> ignore (serve_channel st stdin stdout));
  (match st.journal with Some oc -> close_out oc | None -> ());
  (match pool with Some p -> Parallel.shutdown p | None -> ());
  (match trace_out with
   | Some path ->
     Obs.write_trace obs path;
     Printf.eprintf "[dgp_serve] profiling trace written to %s\n%!" path
   | None -> ());
  if profile then Format.eprintf "%a@." Obs.pp_report obs

let cmd =
  let doc = "what-if placement/STA serving daemon (incremental timer)" in
  Cmd.v
    (Cmd.info "dgp_serve" ~doc)
    Term.(
      const run $ Dgp_common.lib_file $ Dgp_common.design_file
      $ Dgp_common.bench_name $ Dgp_common.cells $ Dgp_common.seed
      $ Dgp_common.clock_period $ socket_arg $ journal_arg $ replay_arg
      $ domains $ profile $ trace_out)

let () = exit (Cmd.eval cmd)
