(* Shared plumbing for the dgp_* command-line tools. *)

let load_library = function
  | Some path -> Liberty.Io.load path
  | None -> Liberty.Synthetic.default ()

(* A design comes from a bookshelf-lite file, a structural Verilog file
   (by extension; constraints fall back to defaults with the requested
   clock), or the named / sized synthetic generator. *)
let load_design lib ~design_file ~bench ~cells ~seed ~clock_period
    ?(hotspot = 0.0) ?(hotspot_clusters = 3) ?scale () =
  match design_file, bench with
  | Some path, _ when Filename.check_suffix path ".v" ->
    let design = Verilog.load lib path in
    (design,
     { Sta.Constraints.default with
       Sta.Constraints.clock_period })
  | Some path, _ -> Bookshelf.load lib path
  | None, Some name ->
    (match Workload.find_spec ?scale name with
     | Some spec ->
       Workload.generate lib
         { spec with
           Workload.sp_hotspot = hotspot;
           sp_hotspot_clusters = hotspot_clusters }
     | None ->
       Printf.eprintf "unknown benchmark %S; known: %s\n" name
         (String.concat ", "
            (List.map
               (fun s -> s.Workload.sp_name)
               (Workload.superblue_mini ())));
       exit 1)
  | None, None ->
    let spec =
      { Workload.default_spec with
        Workload.sp_cells = cells;
        sp_seed = seed;
        sp_clock_period = clock_period;
        sp_hotspot = hotspot;
        sp_hotspot_clusters = hotspot_clusters }
    in
    Workload.generate lib spec

open Cmdliner

let lib_file =
  let doc = "Liberty-lite cell library file (default: built-in synth45)." in
  Arg.(value & opt (some string) None & info [ "lib" ] ~docv:"FILE" ~doc)

let design_file =
  let doc = "Load the design from a bookshelf-lite $(docv)." in
  Arg.(value & opt (some string) None & info [ "design" ] ~docv:"FILE" ~doc)

let bench_name =
  let doc = "Use a named superblue-mini benchmark (e.g. superblue4-mini)." in
  Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"NAME" ~doc)

let cells =
  let doc = "Synthetic design size when generating ad hoc." in
  Arg.(value & opt int 2000 & info [ "cells" ] ~docv:"N" ~doc)

let seed =
  let doc = "Generator seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let clock_period =
  let doc = "Clock period in ps for ad hoc designs." in
  Arg.(value & opt float 900.0 & info [ "clock" ] ~docv:"PS" ~doc)

let hotspot =
  let doc = "Fraction of combinational cells wired into tight clusters \
             that place as routing hotspots (generated designs only; \
             0 = off)." in
  Arg.(value & opt float 0.0 & info [ "hotspot" ] ~docv:"F" ~doc)

let hotspot_clusters =
  let doc = "Number of hotspot clusters when $(b,--hotspot) is set." in
  Arg.(value & opt int 3 & info [ "hotspot-clusters" ] ~docv:"N" ~doc)

let bench_scale =
  let doc = "Cell-count scale for named superblue-mini benchmarks: 0.01 \
             (default) gives ~10k-cell minis, 0.1 reaches ~100k and \
             0.5-1.0 the paper's million-cell range (pair with \
             $(b,--multilevel))." in
  Arg.(value & opt float 0.01 & info [ "scale" ] ~docv:"S" ~doc)
