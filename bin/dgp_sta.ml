(* dgp_sta: exact static timing analysis of a design; prints the WNS/TNS
   summary and the most critical endpoints. *)

open Cmdliner

let top =
  let doc = "Number of critical endpoints to list." in
  Arg.(value & opt int 10 & info [ "top"; "n" ] ~docv:"N" ~doc)

let paths =
  let doc = "Number of worst paths to list (top-K path enumeration)." in
  Arg.(value & opt int 1 & info [ "paths" ] ~docv:"K" ~doc)

let profile =
  let doc = "Record per-kernel timings (monotonic clock) and print the \
             profile table to stderr at exit." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let trace_out =
  let doc = "Write the span-level profiling trace to $(docv) as JSONL." in
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc)

let run lib_file design_file bench cells seed clock top paths profile
    trace_out =
  let lib = Dgp_common.load_library lib_file in
  let design, constraints =
    Dgp_common.load_design lib ~design_file ~bench ~cells ~seed
      ~clock_period:clock ()
  in
  let graph = Sta.Graph.build design lib constraints in
  let obs =
    if profile || trace_out <> None then Obs.create ~gc:true ()
    else Obs.disabled
  in
  let timer = Sta.Timer.create graph in
  let report = Sta.Timer.run ~obs timer in
  Format.printf "%a@.@." Sta.Timer.pp_report report;
  Printf.printf "%d most critical endpoints (setup):\n" top;
  let table =
    Report.Table.create [ "endpoint"; "setup slack"; "hold slack"; "AT(rise)"; "AT(fall)" ]
  in
  List.iteri
    (fun i (ep : Sta.Timer.endpoint_slack) ->
      if i < top then
        Report.Table.add_row table
          [ design.Netlist.pins.(ep.Sta.Timer.ep_pin).Netlist.pin_name;
            Printf.sprintf "%.1f" ep.Sta.Timer.ep_setup_slack;
            Printf.sprintf "%.1f" ep.Sta.Timer.ep_hold_slack;
            Printf.sprintf "%.1f" (Sta.Timer.at_late timer ep.Sta.Timer.ep_pin Sta.Rise);
            Printf.sprintf "%.1f" (Sta.Timer.at_late timer ep.Sta.Timer.ep_pin Sta.Fall) ])
    report.Sta.Timer.endpoint_slacks;
  print_string (Report.Table.render table);
  let view = Paths.analyze ~obs timer in
  if paths <= 1 then begin
    (* single-path listing, identical to the historical output (the
       engine's top-1 path bit-matches Sta.Timer.critical_path) *)
    let steps =
      match Paths.enumerate ~obs ~k:1 view with
      | [] -> []
      | p :: _ -> p.Paths.pt_steps
    in
    Printf.printf "\nworst path:\n";
    Format.printf "%a@." (Sta.Timer.pp_path graph) steps
  end
  else begin
    let worst = Paths.enumerate ~obs ~k:paths view in
    Printf.printf "\n%d worst paths:\n" (List.length worst);
    let table =
      Report.Table.create
        [ "#"; "endpoint"; "slack"; "arrival"; "stages"; "startpoint" ]
    in
    List.iteri
      (fun i (p : Paths.path) ->
        let name pin = design.Netlist.pins.(pin).Netlist.pin_name in
        let arrival =
          match List.rev p.Paths.pt_steps with
          | last :: _ -> Printf.sprintf "%.1f" last.Sta.Timer.ps_at
          | [] -> "-"
        in
        let startpoint =
          match p.Paths.pt_steps with
          | first :: _ -> name first.Sta.Timer.ps_pin
          | [] -> "-"
        in
        Report.Table.add_row table
          [ string_of_int (i + 1);
            name p.Paths.pt_endpoint;
            Printf.sprintf "%.1f" p.Paths.pt_slack;
            arrival;
            string_of_int (List.length p.Paths.pt_steps);
            startpoint ])
      worst;
    print_string (Report.Table.render table);
    List.iteri
      (fun i (p : Paths.path) ->
        Printf.printf "\npath #%d (slack %.1f ps):\n" (i + 1) p.Paths.pt_slack;
        Format.printf "%a@." (Sta.Timer.pp_path graph) p.Paths.pt_steps)
      worst
  end;
  (match trace_out with
   | Some path ->
     Obs.write_trace obs path;
     Printf.printf "\nprofiling trace written to %s\n" path
   | None -> ());
  if profile then Format.eprintf "%a@." Obs.pp_report obs

let cmd =
  let doc = "exact static timing analysis" in
  Cmd.v
    (Cmd.info "dgp_sta" ~doc)
    Term.(
      const run $ Dgp_common.lib_file $ Dgp_common.design_file
      $ Dgp_common.bench_name $ Dgp_common.cells $ Dgp_common.seed
      $ Dgp_common.clock_period $ top $ paths $ profile $ trace_out)

let () = exit (Cmd.eval cmd)
