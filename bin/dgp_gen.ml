(* dgp_gen: generate synthetic benchmarks and write them (plus the cell
   library) to disk in the repo's text formats. *)

open Cmdliner

let out_dir =
  let doc = "Directory to write files into." in
  Arg.(value & opt string "." & info [ "out"; "o" ] ~docv:"DIR" ~doc)

let all_minis =
  let doc = "Generate the full superblue-mini suite instead of one design." in
  Arg.(value & flag & info [ "suite" ] ~doc)

let scale =
  let doc = "Cell-count scale factor for superblue-mini designs (suite \
             or $(b,--bench)): 0.01 (default) gives ~10k-cell minis, \
             0.1 reaches ~100k cells and 0.5-1.0 the paper's \
             million-cell range." in
  Arg.(value & opt float 0.01 & info [ "scale" ] ~docv:"F" ~doc)

let write_design dir lib spec =
  let design, constraints = Workload.generate lib spec in
  let path = Filename.concat dir (spec.Workload.sp_name ^ ".design") in
  Bookshelf.save path design constraints;
  let stats = Netlist.Stats.compute design in
  Printf.printf "%s: %d cells, %d nets, %d pins -> %s\n"
    spec.Workload.sp_name stats.Netlist.Stats.cells stats.Netlist.Stats.nets
    stats.Netlist.Stats.pins path

let rec ensure_directory dir =
  if not (Sys.file_exists dir) then begin
    ensure_directory (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let run lib_file bench cells seed clock hotspot hotspot_clusters out_dir
    suite scale =
  let lib = Dgp_common.load_library lib_file in
  ensure_directory out_dir;
  let lib_path = Filename.concat out_dir "synth45.lib" in
  Liberty.Io.save lib_path lib;
  Printf.printf "library -> %s\n" lib_path;
  if suite then
    List.iter (write_design out_dir lib) (Workload.superblue_mini ~scale ())
  else begin
    let spec =
      match bench with
      | Some name ->
        (match Workload.find_spec ~scale name with
         | Some s -> s
         | None ->
           Printf.eprintf "unknown benchmark %S\n" name;
           exit 1)
      | None ->
        { Workload.default_spec with
          Workload.sp_cells = cells; sp_seed = seed; sp_clock_period = clock }
    in
    let spec =
      { spec with
        Workload.sp_hotspot = hotspot;
        sp_hotspot_clusters = hotspot_clusters }
    in
    write_design out_dir lib spec
  end

let cmd =
  let doc = "generate synthetic placement/timing benchmarks" in
  Cmd.v
    (Cmd.info "dgp_gen" ~doc)
    Term.(
      const run $ Dgp_common.lib_file $ Dgp_common.bench_name
      $ Dgp_common.cells $ Dgp_common.seed $ Dgp_common.clock_period
      $ Dgp_common.hotspot $ Dgp_common.hotspot_clusters
      $ out_dir $ all_minis $ scale)

let () = exit (Cmd.eval cmd)
