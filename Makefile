.PHONY: all test bench bench-full bench-placer clean

all:
	dune build

test:
	dune build && dune runtest

# Quick forward/backward micro-benchmark of the differentiable timer;
# writes BENCH_difftimer.json at the repo root.
bench:
	dune exec bench/main.exe -- difftimer --quick

# Same benchmark with the full iteration count (slower, less noisy).
bench-full:
	dune exec bench/main.exe -- difftimer

# Per-kernel timing of one full placement iteration at 1/2/4 worker
# domains; writes BENCH_placeriter.json at the repo root.
bench-placer:
	dune exec bench/main.exe -- placer-iter

clean:
	dune clean
