.PHONY: all test bench bench-full bench-placer bench-placer-check \
	bench-paths bench-paths-check bench-parallel bench-incremental \
	bench-routability bench-multilevel bench-multilevel-check bench-all \
	clean

all:
	dune build

test:
	dune build && dune runtest

# Quick forward/backward micro-benchmark of the differentiable timer;
# writes BENCH_difftimer.json at the repo root.
bench:
	dune exec bench/main.exe -- difftimer --quick

# Same benchmark with the full iteration count (slower, less noisy).
bench-full:
	dune exec bench/main.exe -- difftimer

# Per-kernel timing of one full placement iteration at 1/2/4 worker
# domains; writes BENCH_placeriter.json at the repo root.
bench-placer:
	dune exec bench/main.exe -- placer-iter

# Assert the benchmark invariants CI relies on (Steiner maintenance no
# longer the largest per-iteration kernel, sub-kernel split present).
bench-placer-check: bench-placer
	python3 scripts/check_bench.py BENCH_placeriter.json

# Top-K path enumeration throughput vs K at 1/2/4 worker domains, with
# the lazy engine's candidate counters and the eager-reference speedup;
# writes BENCH_paths.json at the repo root.
bench-paths:
	dune exec bench/main.exe -- paths

# Assert the path-enumeration invariants CI relies on (candidate
# counters + chunking present, lazy >= 5x the eager reference at K=128).
bench-paths-check: bench-paths
	python3 scripts/check_bench.py BENCH_paths.json

# Fork-join executor: empty-body dispatch latency plus difftimer and
# full-iteration scaling at 1/2/4/8 worker domains; writes
# BENCH_parallel.json at the repo root.
bench-parallel:
	dune exec bench/main.exe -- parallel

# Incremental STA: pins re-evaluated and latency per what-if move batch
# vs a full Timer.run, with bit-identity enforced; writes
# BENCH_incremental.json at the repo root.
bench-incremental:
	dune exec bench/main.exe -- incremental

# Routability: a hotspot 5k-cell placement with the RUDY +
# cell-inflation loop off vs on at an equal iteration budget; writes
# BENCH_routability.json and gates the congestion/HPWL thresholds.
bench-routability:
	dune exec bench/main.exe -- routability
	python3 scripts/check_bench.py BENCH_routability.json

# Multilevel: flat engine vs coarsen/uncoarsen V-cycle at the 50k-cell
# bench point, plus a 200k-cell V-cycle end-to-end run; writes
# BENCH_multilevel.json at the repo root.
bench-multilevel:
	dune exec bench/main.exe -- multilevel

# Assert the multilevel invariants CI relies on (V-cycle >= 3x faster
# than flat at equal-or-better HPWL within 2%, 200k run completed).
bench-multilevel-check: bench-multilevel
	python3 scripts/check_bench.py BENCH_multilevel.json

# Every JSON-emitting benchmark in one go.
bench-all: bench bench-placer bench-paths bench-parallel bench-incremental \
	bench-routability bench-multilevel

clean:
	dune clean
