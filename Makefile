.PHONY: all test bench bench-full clean

all:
	dune build

test:
	dune build && dune runtest

# Quick forward/backward micro-benchmark of the differentiable timer;
# writes BENCH_difftimer.json at the repo root.
bench:
	dune exec bench/main.exe -- difftimer --quick

# Same benchmark with the full iteration count (slower, less noisy).
bench-full:
	dune exec bench/main.exe -- difftimer

clean:
	dune clean
