(* Tests for the weighted-average smooth wirelength model. *)

let lib = Liberty.Synthetic.default ()

let sample_design seed =
  let spec =
    { Workload.default_spec with Workload.sp_cells = 120; sp_seed = seed }
  in
  let design, _ = Workload.generate lib spec in
  design

let test_wa_below_hpwl () =
  let design = sample_design 1 in
  let wl = Wirelength.create ~gamma:2.0 design in
  let n = Netlist.num_cells design in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let wa = Wirelength.evaluate wl ~weighted:false ~grad_x:gx ~grad_y:gy () in
  let hp = Wirelength.hpwl wl in
  Alcotest.(check bool) "wa <= hpwl" true (wa <= hp +. 1e-6);
  Alcotest.(check bool) "wa positive" true (wa > 0.0)

let test_wa_converges_to_hpwl () =
  let design = sample_design 2 in
  let wl = Wirelength.create ~gamma:0.01 design in
  let n = Netlist.num_cells design in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let wa = Wirelength.evaluate wl ~weighted:false ~grad_x:gx ~grad_y:gy () in
  let hp = Wirelength.hpwl wl in
  Alcotest.(check bool) "relative gap < 1%" true
    (Float.abs (wa -. hp) /. hp < 0.01)

let test_gamma_accessors () =
  let design = sample_design 3 in
  let wl = Wirelength.create ~gamma:5.0 design in
  Alcotest.(check (float 1e-12)) "initial" 5.0 (Wirelength.gamma wl);
  Wirelength.set_gamma wl 2.5;
  Alcotest.(check (float 1e-12)) "updated" 2.5 (Wirelength.gamma wl)

let test_weight_scaling () =
  let design = sample_design 4 in
  let wl = Wirelength.create ~gamma:2.0 design in
  let n = Netlist.num_cells design in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let base = Wirelength.evaluate wl ~weighted:true ~grad_x:gx ~grad_y:gy () in
  Array.iter (fun (net : Netlist.net) -> net.Netlist.weight <- 2.0)
    design.Netlist.nets;
  Array.fill gx 0 n 0.0;
  Array.fill gy 0 n 0.0;
  let doubled = Wirelength.evaluate wl ~weighted:true ~grad_x:gx ~grad_y:gy () in
  Alcotest.(check (float 1e-6)) "doubling weights doubles WL" (2.0 *. base)
    doubled;
  Netlist.reset_weights design

let test_two_pin_gradient_signs () =
  (* a 2-pin net pulls its endpoints together *)
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:50.0 ~hy:50.0 in
  let b = Netlist.Builder.create ~region "two" in
  let c0 = Netlist.Builder.add_cell b ~name:"a" ~lib_cell:0 ~width:1.0
      ~height:1.0 ~x:10.0 ~y:10.0 () in
  let c1 = Netlist.Builder.add_cell b ~name:"b" ~lib_cell:0 ~width:1.0
      ~height:1.0 ~x:30.0 ~y:40.0 () in
  let p0 = Netlist.Builder.add_pin b ~cell:c0 ~name:"a/Y"
      ~direction:Netlist.Output () in
  let p1 = Netlist.Builder.add_pin b ~cell:c1 ~name:"b/A"
      ~direction:Netlist.Input () in
  let _ = Netlist.Builder.add_net b ~name:"n" ~pins:[ p0; p1 ] in
  let design = Netlist.Builder.freeze b in
  let wl = Wirelength.create ~gamma:1.0 design in
  let gx = Array.make 2 0.0 and gy = Array.make 2 0.0 in
  let _ = Wirelength.evaluate wl ~grad_x:gx ~grad_y:gy () in
  Alcotest.(check bool) "left cell pulled right" true (gx.(0) < 0.0);
  Alcotest.(check bool) "right cell pulled left" true (gx.(1) > 0.0);
  Alcotest.(check bool) "bottom cell pulled up" true (gy.(0) < 0.0);
  Alcotest.(check bool) "top cell pulled down" true (gy.(1) > 0.0);
  (* translation invariance: gradients sum to ~0 per axis *)
  Alcotest.(check (float 1e-9)) "x grads balance" 0.0 (gx.(0) +. gx.(1));
  Alcotest.(check (float 1e-9)) "y grads balance" 0.0 (gy.(0) +. gy.(1))

let test_gradient_matches_fd () =
  let design = sample_design 5 in
  let wl = Wirelength.create ~gamma:3.0 design in
  let n = Netlist.num_cells design in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let value () =
    Array.fill gx 0 n 0.0;
    Array.fill gy 0 n 0.0;
    Wirelength.evaluate wl ~grad_x:gx ~grad_y:gy ()
  in
  let _ = value () in
  let agx = Array.copy gx and agy = Array.copy gy in
  let rng = Workload.Rng.create 31 in
  let h = 1e-5 in
  for _ = 1 to 20 do
    let c = design.Netlist.cells.(Workload.Rng.int rng n) in
    let x0 = c.Netlist.x in
    c.Netlist.x <- x0 +. h;
    let fp = value () in
    c.Netlist.x <- x0 -. h;
    let fm = value () in
    c.Netlist.x <- x0;
    let fd = (fp -. fm) /. (2.0 *. h) in
    if Float.abs (fd -. agx.(c.Netlist.cell_id)) > 1e-5 *. Float.max 1.0 (Float.abs fd)
    then Alcotest.failf "x gradient mismatch at %s" c.Netlist.cell_name;
    let y0 = c.Netlist.y in
    c.Netlist.y <- y0 +. h;
    let fp = value () in
    c.Netlist.y <- y0 -. h;
    let fm = value () in
    c.Netlist.y <- y0;
    let fd = (fp -. fm) /. (2.0 *. h) in
    if Float.abs (fd -. agy.(c.Netlist.cell_id)) > 1e-5 *. Float.max 1.0 (Float.abs fd)
    then Alcotest.failf "y gradient mismatch at %s" c.Netlist.cell_name
  done

let test_size_check () =
  let design = sample_design 6 in
  let wl = Wirelength.create design in
  match
    Wirelength.evaluate wl ~grad_x:(Array.make 2 0.0) ~grad_y:(Array.make 2 0.0) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size check"

let with_pool domains f =
  let pool = Parallel.create ~domains () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let bits = Int64.bits_of_float

let test_pooled_bit_identity () =
  (* big enough that the net range really splits into several slices *)
  let spec =
    { Workload.default_spec with Workload.sp_cells = 2500; sp_seed = 21 }
  in
  let design, _ = Workload.generate lib spec in
  let rng = Workload.Rng.create 47 in
  Array.iter
    (fun (net : Netlist.net) ->
      net.Netlist.weight <- 1.0 +. Workload.Rng.float rng 3.0)
    design.Netlist.nets;
  let wl = Wirelength.create ~gamma:2.0 design in
  let n = Netlist.num_cells design in
  let gx1 = Array.make n 0.0 and gy1 = Array.make n 0.0 in
  let v1 = Wirelength.evaluate wl ~weighted:true ~grad_x:gx1 ~grad_y:gy1 () in
  let gx4 = Array.make n 0.0 and gy4 = Array.make n 0.0 in
  let v4 =
    with_pool 4 (fun pool ->
      Wirelength.evaluate wl ~pool ~weighted:true ~grad_x:gx4 ~grad_y:gy4 ())
  in
  Alcotest.(check bool) "value bit-identical" true (bits v1 = bits v4);
  for i = 0 to n - 1 do
    if bits gx1.(i) <> bits gx4.(i) || bits gy1.(i) <> bits gy4.(i) then
      Alcotest.failf "gradient differs at cell %d" i
  done;
  Netlist.reset_weights design

let test_weighted_gradient_matches_fd_pooled () =
  let spec =
    { Workload.default_spec with Workload.sp_cells = 1500; sp_seed = 22 }
  in
  let design, _ = Workload.generate lib spec in
  let rng = Workload.Rng.create 53 in
  Array.iter
    (fun (net : Netlist.net) ->
      net.Netlist.weight <- 0.5 +. Workload.Rng.float rng 4.0)
    design.Netlist.nets;
  let wl = Wirelength.create ~gamma:3.0 design in
  let n = Netlist.num_cells design in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  with_pool 3 (fun pool ->
    let value () =
      Array.fill gx 0 n 0.0;
      Array.fill gy 0 n 0.0;
      Wirelength.evaluate wl ~pool ~weighted:true ~grad_x:gx ~grad_y:gy ()
    in
    let _ = value () in
    let agx = Array.copy gx in
    let h = 1e-5 in
    for _ = 1 to 12 do
      let c = design.Netlist.cells.(Workload.Rng.int rng n) in
      let x0 = c.Netlist.x in
      c.Netlist.x <- x0 +. h;
      let fp = value () in
      c.Netlist.x <- x0 -. h;
      let fm = value () in
      c.Netlist.x <- x0;
      let fd = (fp -. fm) /. (2.0 *. h) in
      if Float.abs (fd -. agx.(c.Netlist.cell_id))
         > 1e-4 *. Float.max 1.0 (Float.abs fd)
      then Alcotest.failf "pooled weighted x gradient mismatch at %s"
          c.Netlist.cell_name
    done);
  Netlist.reset_weights design

let test_scratch_grows_for_larger_nets () =
  (* grafting a net wider than anything seen at create time forces the
     per-slice scratch to grow in place of reading out of bounds *)
  let design = sample_design 7 in
  let wl = Wirelength.create ~gamma:2.0 design in
  let n = Netlist.num_cells design in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  let _ = Wirelength.evaluate wl ~grad_x:gx ~grad_y:gy () in
  design.Netlist.nets.(0).Netlist.net_pins <-
    Array.init (Array.length design.Netlist.pins) Fun.id;
  Array.fill gx 0 n 0.0;
  Array.fill gy 0 n 0.0;
  let grown = Wirelength.evaluate wl ~grad_x:gx ~grad_y:gy () in
  Alcotest.(check bool) "finite after growth" true (Float.is_finite grown);
  (* a fresh engine sized for the mutated design agrees bit for bit *)
  let wl2 = Wirelength.create ~gamma:2.0 design in
  let gx2 = Array.make n 0.0 and gy2 = Array.make n 0.0 in
  let fresh = Wirelength.evaluate wl2 ~grad_x:gx2 ~grad_y:gy2 () in
  Alcotest.(check bool) "value matches fresh engine" true
    (bits grown = bits fresh);
  for i = 0 to n - 1 do
    if bits gx.(i) <> bits gx2.(i) || bits gy.(i) <> bits gy2.(i) then
      Alcotest.failf "post-growth gradient differs at cell %d" i
  done

let suite =
  [ Alcotest.test_case "wa below hpwl" `Quick test_wa_below_hpwl;
    Alcotest.test_case "wa converges to hpwl" `Quick test_wa_converges_to_hpwl;
    Alcotest.test_case "gamma accessors" `Quick test_gamma_accessors;
    Alcotest.test_case "weight scaling" `Quick test_weight_scaling;
    Alcotest.test_case "two-pin gradient signs" `Quick test_two_pin_gradient_signs;
    Alcotest.test_case "gradient matches fd" `Quick test_gradient_matches_fd;
    Alcotest.test_case "size check" `Quick test_size_check;
    Alcotest.test_case "pooled bit identity" `Quick test_pooled_bit_identity;
    Alcotest.test_case "weighted fd under pool" `Quick
      test_weighted_gradient_matches_fd_pooled;
    Alcotest.test_case "scratch grows for larger nets" `Quick
      test_scratch_grows_for_larger_nets ]
