(* Tests for the routability subsystem: RUDY demand maps, congestion
   summaries and the cell-inflation loop. *)

let lib = Liberty.Synthetic.default ()

let with_pool domains f =
  let pool = Parallel.create ~domains () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let hotspot_design ?(cells = 800) ?(seed = 7) ?(hotspot = 0.3) () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = seed; sp_clock_period = 800.0;
      sp_hotspot = hotspot }
  in
  Workload.generate lib spec

let bits a = Array.map Int64.bits_of_float a

(* ---- RUDY map ---- *)

(* A single 2-pin net: its demand lands in the bins its bbox overlaps
   and sums to w*h/(w+h) (plus the pin terms). *)
let test_rudy_single_net () =
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:64.0 ~hy:64.0 in
  let b = Netlist.Builder.create ~region ~row_height:1.0 "rudy1" in
  let mk name x y dir =
    let c =
      Netlist.Builder.add_cell b ~name ~lib_cell:(-1) ~width:1.0 ~height:1.0
        ~x ~y ()
    in
    Netlist.Builder.add_pin b ~cell:c ~name:(name ^ "/P") ~direction:dir ()
  in
  let p0 = mk "a" 8.0 8.0 Netlist.Output in
  let p1 = mk "b" 40.0 24.0 Netlist.Input in
  ignore (Netlist.Builder.add_net b ~name:"n" ~pins:[ p0; p1 ]);
  let d = Netlist.Builder.freeze b in
  let rudy = Route.Rudy.create ~bins:16 ~pin_weight:0.0 d in
  Route.Rudy.update rudy;
  let dem = Route.Rudy.demand rudy in
  let total = Array.fold_left ( +. ) 0.0 dem in
  (* bbox 32 x 16 -> demand 32*16/48 *)
  let expected = 32.0 *. 16.0 /. 48.0 in
  Alcotest.(check bool) "total demand matches formula" true
    (Float.abs (total -. expected) < 1e-9 *. expected);
  (* no demand far from the bbox *)
  let n = Route.Rudy.bins rudy in
  Alcotest.(check (float 0.0)) "far corner empty" 0.0
    dem.(((n - 1) * n) + (n - 1));
  (* pin term adds exactly pin_weight per pin *)
  let rudy_p = Route.Rudy.create ~bins:16 ~pin_weight:0.5 d in
  Route.Rudy.update rudy_p;
  let total_p = Array.fold_left ( +. ) 0.0 (Route.Rudy.demand rudy_p) in
  Alcotest.(check bool) "pin term" true
    (Float.abs (total_p -. (expected +. 1.0)) < 1e-9 *. total_p)

let test_rudy_flat_net_counts () =
  (* a purely horizontal net still registers demand (bbox clamped to a
     bin's height) *)
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:64.0 ~hy:64.0 in
  let b = Netlist.Builder.create ~region ~row_height:1.0 "flat" in
  let mk name x dir =
    let c =
      Netlist.Builder.add_cell b ~name ~lib_cell:(-1) ~width:1.0 ~height:1.0
        ~x ~y:32.0 ()
    in
    Netlist.Builder.add_pin b ~cell:c ~name:(name ^ "/P") ~direction:dir ()
  in
  let p0 = mk "a" 8.0 Netlist.Output in
  let p1 = mk "b" 56.0 Netlist.Input in
  ignore (Netlist.Builder.add_net b ~name:"n" ~pins:[ p0; p1 ]);
  let d = Netlist.Builder.freeze b in
  let rudy = Route.Rudy.create ~bins:16 ~pin_weight:0.0 d in
  Route.Rudy.update rudy;
  let total = Array.fold_left ( +. ) 0.0 (Route.Rudy.demand rudy) in
  Alcotest.(check bool) "flat net has demand" true (total > 1.0)

let test_rudy_bit_identity_across_domains () =
  let design, _ = hotspot_design () in
  let rudy = Route.Rudy.create design in
  Route.Rudy.update rudy;
  let seq = bits (Array.copy (Route.Rudy.demand rudy)) in
  let seq_util = bits (Array.copy (Route.Rudy.utilization rudy)) in
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
        Route.Rudy.update ~pool rudy;
        Alcotest.(check bool)
          (Printf.sprintf "demand bits equal at %d domains" domains)
          true
          (bits (Route.Rudy.demand rudy) = seq);
        Alcotest.(check bool)
          (Printf.sprintf "utilization bits equal at %d domains" domains)
          true
          (bits (Route.Rudy.utilization rudy) = seq_util)))
    [ 1; 4 ]

let test_overflow_summary () =
  let design, _ = hotspot_design ~cells:400 () in
  (* pile everything in one corner: utilization must spike there *)
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        c.Netlist.x <- 4.0;
        c.Netlist.y <- 4.0
      end)
    design.Netlist.cells;
  let rudy = Route.Rudy.create design in
  Route.Rudy.update rudy;
  let s = Route.overflow rudy in
  Alcotest.(check bool) "piled design congests" true (s.Route.ov_peak > 1.0);
  Alcotest.(check bool) "rc <= peak" true (s.Route.ov_rc <= s.Route.ov_peak);
  Alcotest.(check bool) "congested bins counted" true (s.Route.ov_congested > 0);
  Alcotest.(check bool) "total overflow positive" true (s.Route.ov_total > 0.0);
  (* a 100% percentile averages every bin, so it cannot exceed the rc of
     the default top slice *)
  let s_all = Route.overflow ~percentile:1.0 rudy in
  Alcotest.(check bool) "wider percentile dilutes rc" true
    (s_all.Route.ov_rc <= s.Route.ov_rc)

(* ---- inflation ---- *)

let test_inflate_deterministic_and_bounded () =
  let run () =
    let design, _ = hotspot_design ~cells:400 () in
    Array.iter
      (fun (c : Netlist.cell) ->
        if not c.Netlist.fixed then begin
          c.Netlist.x <- 4.0;
          c.Netlist.y <- 4.0
        end)
      design.Netlist.cells;
    let rudy = Route.Rudy.create design in
    Route.Rudy.update rudy;
    let cfg = { Route.default_config with Route.rt_max_rounds = 3 } in
    let infl = Route.Inflate.create design in
    let counts =
      List.init 6 (fun _ ->
        let c = Route.Inflate.step cfg infl rudy in
        Route.Rudy.update rudy;
        c)
    in
    (counts, bits (Array.map (fun (c : Netlist.cell) -> c.Netlist.width)
                     design.Netlist.cells))
  in
  let counts, widths = run () in
  (* the piled design congests, so the first round inflates something *)
  Alcotest.(check bool) "first round inflates" true (List.hd counts > 0);
  (* bounded: rounds beyond rt_max_rounds are hard no-ops *)
  List.iteri
    (fun i c ->
      if i >= 3 then
        Alcotest.(check int) (Printf.sprintf "round %d is a no-op" i) 0 c)
    counts;
  (* deterministic: a second identical run reproduces counts and the
     exact inflated widths *)
  let counts2, widths2 = run () in
  Alcotest.(check (list int)) "counts reproduce" counts counts2;
  Alcotest.(check bool) "inflated widths reproduce" true (widths = widths2)

let test_deflate_deterministic () =
  (* inflate a piled design, spread it so every bin falls back below
     target, then deflate: congestion relief must shed inflation excess
     and two identical runs must produce bit-identical widths *)
  let run () =
    let design, _ = hotspot_design ~cells:400 () in
    Array.iter
      (fun (c : Netlist.cell) ->
        if not c.Netlist.fixed then begin
          c.Netlist.x <- 4.0;
          c.Netlist.y <- 4.0
        end)
      design.Netlist.cells;
    let rudy = Route.Rudy.create design in
    Route.Rudy.update rudy;
    let cfg = { Route.default_config with Route.rt_max_rounds = 3 } in
    let infl = Route.Inflate.create design in
    let inflated = Route.Inflate.step cfg infl rudy in
    (* spread the design: demand per bin collapses below target *)
    let region = design.Netlist.region in
    Array.iteri
      (fun i (c : Netlist.cell) ->
        if not c.Netlist.fixed then begin
          c.Netlist.x <-
            region.Geometry.Rect.lx
            +. (float_of_int ((i * 37) mod 331) /. 331.0)
               *. Geometry.Rect.width region;
          c.Netlist.y <-
            region.Geometry.Rect.ly
            +. (float_of_int ((i * 61) mod 293) /. 293.0)
               *. Geometry.Rect.height region
        end)
      design.Netlist.cells;
    Route.Rudy.update rudy;
    let deflated = Route.Inflate.deflate cfg infl rudy in
    ( inflated, deflated,
      bits (Array.map (fun (c : Netlist.cell) -> c.Netlist.width)
              design.Netlist.cells) )
  in
  let inflated, deflated, widths = run () in
  Alcotest.(check bool) "inflation happened" true (inflated > 0);
  Alcotest.(check bool) "deflation sheds some excess" true (deflated > 0);
  let inflated2, deflated2, widths2 = run () in
  Alcotest.(check int) "inflation count reproduces" inflated inflated2;
  Alcotest.(check int) "deflation count reproduces" deflated deflated2;
  Alcotest.(check bool) "deflated widths bit-identical" true
    (widths = widths2)

let test_inflate_respects_area_cap () =
  let design, _ = hotspot_design ~cells:400 () in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        c.Netlist.x <- 4.0;
        c.Netlist.y <- 4.0
      end)
    design.Netlist.cells;
  let orig =
    Array.map
      (fun (c : Netlist.cell) -> c.Netlist.width *. c.Netlist.height)
      design.Netlist.cells
  in
  let rudy = Route.Rudy.create design in
  Route.Rudy.update rudy;
  let cfg =
    { Route.default_config with Route.rt_max_rounds = 8; rt_max_ratio = 2.5 }
  in
  let infl = Route.Inflate.create design in
  for _ = 1 to 8 do
    ignore (Route.Inflate.step cfg infl rudy);
    Route.Rudy.update rudy
  done;
  Array.iteri
    (fun i (c : Netlist.cell) ->
      let ratio = c.Netlist.width *. c.Netlist.height /. orig.(i) in
      if ratio > 2.5 +. 1e-9 then
        Alcotest.failf "cell %d inflated %.3fx past the cap" i ratio)
    design.Netlist.cells;
  (* restore is exact *)
  Route.Inflate.restore infl;
  Array.iteri
    (fun i (c : Netlist.cell) ->
      if c.Netlist.width *. c.Netlist.height <> orig.(i) then
        Alcotest.failf "cell %d not restored" i)
    design.Netlist.cells

(* ---- Core integration ---- *)

let routability_config =
  { Core.default_config with
    Core.max_iterations = 140; min_iterations = 40; stop_overflow = 0.15;
    routability = Some Route.default_config }

let test_core_restores_areas () =
  let design, cons = hotspot_design ~cells:400 () in
  let graph = Sta.Graph.build design lib cons in
  let sizes =
    Array.map
      (fun (c : Netlist.cell) -> (c.Netlist.width, c.Netlist.height))
      design.Netlist.cells
  in
  let result = Core.run routability_config graph in
  Alcotest.(check bool) "routability summary present" true
    (result.Core.res_route <> None);
  Array.iteri
    (fun i (c : Netlist.cell) ->
      let w0, h0 = sizes.(i) in
      if c.Netlist.width <> w0 || c.Netlist.height <> h0 then
        Alcotest.failf "cell %d size not restored after Core.run" i)
    design.Netlist.cells

let test_core_zero_overflow_bit_identical () =
  (* with a huge capacity nothing ever congests, so routability mode must
     leave every position bit-identical to a routability-off run *)
  let run routability =
    let design, cons = hotspot_design ~cells:400 () in
    let graph = Sta.Graph.build design lib cons in
    let cfg = { routability_config with Core.routability } in
    let result = Core.run cfg graph in
    let xs, ys = Netlist.copy_positions design in
    (result, bits xs, bits ys)
  in
  let r_off, xs_off, ys_off = run None in
  let r_on, xs_on, ys_on =
    run (Some { Route.default_config with Route.rt_capacity = 1e12 })
  in
  Alcotest.(check bool) "x positions bit-identical" true (xs_on = xs_off);
  Alcotest.(check bool) "y positions bit-identical" true (ys_on = ys_off);
  Alcotest.(check int) "no inflation rounds" 0 r_on.Core.res_inflation_rounds;
  Alcotest.(check bool) "same hpwl" true
    (Int64.bits_of_float r_on.Core.res_hpwl
     = Int64.bits_of_float r_off.Core.res_hpwl);
  Alcotest.(check bool) "off-run has no summary" true
    (r_off.Core.res_route = None)

let test_core_run_deterministic_across_domains () =
  let run domains =
    let design, cons = hotspot_design ~cells:400 () in
    let graph = Sta.Graph.build design lib cons in
    let f pool = Core.run ?pool routability_config graph in
    let _ =
      match domains with
      | 1 -> f None
      | d -> with_pool d (fun pool -> f (Some pool))
    in
    let xs, ys = Netlist.copy_positions design in
    (bits xs, bits ys)
  in
  let xs1, ys1 = run 1 in
  let xs4, ys4 = run 4 in
  Alcotest.(check bool) "x bit-identical across domains" true (xs1 = xs4);
  Alcotest.(check bool) "y bit-identical across domains" true (ys1 = ys4)

let test_hotspot_workload_generates () =
  (* the hotspot knob must still produce a valid design, and hotspot = 0
     must not perturb the RNG stream of existing workloads *)
  let d_hot, _ = hotspot_design ~cells:400 ~hotspot:0.4 () in
  let stats = Netlist.Stats.compute d_hot in
  Alcotest.(check bool) "movable cells present" true (stats.Netlist.Stats.movable > 300);
  Alcotest.(check bool) "nets present" true (stats.Netlist.Stats.nets > 0);
  let d_base, _ = hotspot_design ~cells:400 ~hotspot:0.0 () in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 400; sp_seed = 7; sp_clock_period = 800.0 }
  in
  let d_ref, _ = Workload.generate lib spec in
  let key d =
    (Netlist.num_nets d, Netlist.num_pins d, Netlist.total_hpwl d)
  in
  Alcotest.(check bool) "hotspot=0 identical to spec without the knob" true
    (key d_base = key d_ref);
  (* clustered wiring changes the netlist *)
  Alcotest.(check bool) "hotspot>0 changes wiring" true
    (key d_hot <> key d_base)

let suite =
  [ Alcotest.test_case "rudy single net" `Quick test_rudy_single_net;
    Alcotest.test_case "rudy flat net counts" `Quick test_rudy_flat_net_counts;
    Alcotest.test_case "rudy bit-identity across domains" `Quick
      test_rudy_bit_identity_across_domains;
    Alcotest.test_case "overflow summary" `Quick test_overflow_summary;
    Alcotest.test_case "inflation deterministic and bounded" `Quick
      test_inflate_deterministic_and_bounded;
    Alcotest.test_case "inflation respects area cap" `Quick
      test_inflate_respects_area_cap;
    Alcotest.test_case "deflation deterministic" `Quick
      test_deflate_deterministic;
    Alcotest.test_case "core restores areas" `Slow test_core_restores_areas;
    Alcotest.test_case "core zero-overflow bit-identity" `Slow
      test_core_zero_overflow_bit_identical;
    Alcotest.test_case "core deterministic across domains" `Slow
      test_core_run_deterministic_across_domains;
    Alcotest.test_case "hotspot workload generates" `Quick
      test_hotspot_workload_generates ]
