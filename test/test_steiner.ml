(* Tests for RSMT construction, provenance and gradient scattering. *)

let rand_net rng n =
  (Array.init n (fun _ -> Workload.Rng.float rng 100.0),
   Array.init n (fun _ -> Workload.Rng.float rng 100.0))

let test_single_pin () =
  let t = Steiner.build ~xs:[| 3.0 |] ~ys:[| 4.0 |] () in
  Alcotest.(check int) "nodes" 1 (Steiner.node_count t);
  Alcotest.(check (float 1e-12)) "length" 0.0 (Steiner.total_length t)

let test_two_pins () =
  let t = Steiner.build ~xs:[| 0.0; 3.0 |] ~ys:[| 0.0; 4.0 |] () in
  Alcotest.(check int) "nodes" 2 (Steiner.node_count t);
  Alcotest.(check (float 1e-12)) "length" 7.0 (Steiner.total_length t);
  Alcotest.(check int) "root parent" (-1) t.Steiner.parent.(t.Steiner.order.(0));
  Alcotest.(check bool) "pin not steiner" false (Steiner.is_steiner t 1)

let test_three_pins_optimal () =
  (* for 3 pins the optimal RSMT length equals the bbox half-perimeter *)
  let rng = Workload.Rng.create 21 in
  for _ = 1 to 100 do
    let xs, ys = rand_net rng 3 in
    let t = Steiner.build ~xs ~ys () in
    let hp = Steiner.hpwl ~xs ~ys in
    if Float.abs (Steiner.total_length t -. hp) > 1e-9 then
      Alcotest.failf "3-pin not optimal: %f vs %f" (Steiner.total_length t) hp
  done

let test_coincident_pins () =
  let t = Steiner.build ~xs:[| 1.0; 1.0; 1.0 |] ~ys:[| 2.0; 2.0; 2.0 |] () in
  Alcotest.(check (float 1e-12)) "zero length" 0.0 (Steiner.total_length t);
  Alcotest.(check int) "pins preserved" 3 t.Steiner.pin_count

let test_invalid () =
  let expect f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect (fun () -> Steiner.build ~xs:[||] ~ys:[||] ());
  expect (fun () -> Steiner.build ~xs:[| 1.0 |] ~ys:[| 1.0; 2.0 |] ())

let tree_is_connected t =
  (* every non-root node has a parent; order is a valid topological
     ordering (parents precede children) *)
  let n = Steiner.node_count t in
  let pos = Array.make n (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) t.Steiner.order;
  let ok = ref (pos.(t.Steiner.order.(0)) = 0) in
  for v = 0 to n - 1 do
    let p = t.Steiner.parent.(v) in
    if p >= 0 then begin
      if pos.(p) >= pos.(v) then ok := false
    end
    else if v <> t.Steiner.order.(0) then ok := false
  done;
  !ok

let prop_bounds =
  QCheck2.Test.make ~name:"hpwl <= rsmt <= mst, tree well-formed" ~count:300
    QCheck2.Gen.(int_range 2 12)
    (fun n ->
      let rng = Workload.Rng.create (n * 7919) in
      let xs, ys = rand_net rng n in
      let t = Steiner.build ~xs ~ys () in
      let len = Steiner.total_length t in
      let mst = Steiner.mst_length ~xs ~ys in
      let hp = Steiner.hpwl ~xs ~ys in
      hp -. 1e-9 <= len && len <= mst +. 1e-9 && tree_is_connected t)

let prop_provenance =
  QCheck2.Test.make ~name:"steiner coordinates come from source pins" ~count:200
    QCheck2.Gen.(int_range 3 10)
    (fun n ->
      let rng = Workload.Rng.create (n * 104729) in
      let xs, ys = rand_net rng n in
      let t = Steiner.build ~xs ~ys () in
      let ok = ref true in
      for v = t.Steiner.pin_count to Steiner.node_count t - 1 do
        if t.Steiner.xs.(v) <> xs.(t.Steiner.x_source.(v)) then ok := false;
        if t.Steiner.ys.(v) <> ys.(t.Steiner.y_source.(v)) then ok := false
      done;
      !ok)

let prop_update_consistent =
  QCheck2.Test.make ~name:"update_coordinates matches provenance" ~count:200
    QCheck2.Gen.(int_range 2 10)
    (fun n ->
      let rng = Workload.Rng.create (n * 31 + 5) in
      let xs, ys = rand_net rng n in
      let t = Steiner.build ~xs ~ys () in
      (* move pins a little and refresh *)
      let xs2 = Array.map (fun x -> x +. Workload.Rng.float rng 2.0) xs in
      let ys2 = Array.map (fun y -> y +. Workload.Rng.float rng 2.0) ys in
      Steiner.update_coordinates t ~xs:xs2 ~ys:ys2;
      let ok = ref true in
      for v = 0 to Steiner.node_count t - 1 do
        let ex =
          if v < t.Steiner.pin_count then xs2.(v) else xs2.(t.Steiner.x_source.(v))
        in
        if t.Steiner.xs.(v) <> ex then ok := false
      done;
      !ok)

let test_exact_beats_heuristic () =
  let rng = Workload.Rng.create 77 in
  let better = ref 0 in
  for _ = 1 to 200 do
    let xs, ys = rand_net rng 4 in
    let exact = Steiner.total_length (Steiner.build ~exact_limit:4 ~xs ~ys ()) in
    let heur = Steiner.total_length (Steiner.build ~exact_limit:2 ~xs ~ys ()) in
    if exact > heur +. 1e-9 then
      Alcotest.failf "exact worse than heuristic: %f > %f" exact heur;
    if exact < heur -. 1e-9 then incr better
  done;
  (* the exhaustive search must win at least occasionally *)
  Alcotest.(check bool) "sometimes strictly better" true (!better > 0)

let test_gradient_accumulation () =
  let rng = Workload.Rng.create 13 in
  let xs, ys = rand_net rng 6 in
  let t = Steiner.build ~xs ~ys () in
  let n = Steiner.node_count t in
  let node_gx = Array.init n (fun i -> float_of_int i) in
  let node_gy = Array.init n (fun i -> 2.0 *. float_of_int i) in
  let pin_gx = Array.make 6 0.0 and pin_gy = Array.make 6 0.0 in
  Steiner.accumulate_pin_gradient t ~node_gx ~node_gy ~pin_gx ~pin_gy;
  (* gradient mass is conserved: nothing vanishes at Steiner points *)
  let sum a = Array.fold_left ( +. ) 0.0 a in
  Alcotest.(check (float 1e-9)) "x mass" (sum node_gx) (sum pin_gx);
  Alcotest.(check (float 1e-9)) "y mass" (sum node_gy) (sum pin_gy)

let test_edge_length () =
  let t = Steiner.build ~xs:[| 0.0; 10.0 |] ~ys:[| 0.0; 5.0 |] () in
  let root = t.Steiner.order.(0) in
  Alcotest.(check (float 1e-12)) "root edge" 0.0 (Steiner.edge_length t root);
  let other = t.Steiner.order.(1) in
  Alcotest.(check (float 1e-12)) "edge" 15.0 (Steiner.edge_length t other)

let test_star_net_has_steiner () =
  (* a + of 5 pins: center pin plus 4 arms; RSMT should beat the star *)
  let xs = [| 0.0; 10.0; -10.0; 0.0; 0.0 |] in
  let ys = [| 0.0; 0.0; 0.0; 10.0; -10.0 |] in
  let t = Steiner.build ~xs ~ys () in
  Alcotest.(check (float 1e-9)) "length" 40.0 (Steiner.total_length t)

let suite =
  [ Alcotest.test_case "single pin" `Quick test_single_pin;
    Alcotest.test_case "two pins" `Quick test_two_pins;
    Alcotest.test_case "three pins optimal" `Quick test_three_pins_optimal;
    Alcotest.test_case "coincident pins" `Quick test_coincident_pins;
    Alcotest.test_case "invalid input" `Quick test_invalid;
    Alcotest.test_case "exact beats heuristic on 4 pins" `Quick
      test_exact_beats_heuristic;
    Alcotest.test_case "gradient mass conservation" `Quick
      test_gradient_accumulation;
    Alcotest.test_case "edge length" `Quick test_edge_length;
    Alcotest.test_case "plus-shaped net" `Quick test_star_net_has_steiner;
    QCheck_alcotest.to_alcotest prop_bounds;
    QCheck_alcotest.to_alcotest prop_provenance;
    QCheck_alcotest.to_alcotest prop_update_consistent ]

let test_exact_limit_clamped () =
  (* out-of-range exact limits are clamped, not rejected *)
  let xs = [| 0.0; 10.0; 5.0 |] and ys = [| 0.0; 10.0; 2.0 |] in
  let a = Steiner.build ~exact_limit:99 ~xs ~ys () in
  let b = Steiner.build ~exact_limit:(-3) ~xs ~ys () in
  Alcotest.(check (float 1e-9)) "same optimal length" (Steiner.total_length a)
    (Steiner.total_length b)

let suite =
  suite
  @ [ Alcotest.test_case "exact limit clamped" `Quick test_exact_limit_clamped ]

(* --- topology LUT (the FLUTE analogue) --- *)

let test_lut_matches_exhaustive () =
  (* degrees 4-6: the LUT must reproduce the exhaustive Hanan-subset
     oracle's optimal length on every instance *)
  let rng = Workload.Rng.create 2024 in
  for n = 4 to 6 do
    for _ = 1 to 50 do
      let xs, ys = rand_net rng n in
      let lut = Steiner.total_length (Steiner.build ~xs ~ys ()) in
      let oracle =
        Steiner.total_length (Steiner.build ~exact_limit:6 ~xs ~ys ())
      in
      if Float.abs (lut -. oracle) > 1e-9 then
        Alcotest.failf "deg %d: lut %f vs exhaustive %f" n lut oracle
    done
  done

let test_lut_matches_dw_oracle () =
  (* degrees 7-8 are beyond the exhaustive subset search; compare against
     the Dreyfus-Wagner length oracle.  Degree <= 7 tables come from the
     complete Pareto construction and must match everywhere; degree 8 is
     sampled, checked here on a fixed seed. *)
  let rng = Workload.Rng.create 4242 in
  for n = 7 to 8 do
    for _ = 1 to 25 do
      let xs, ys = rand_net rng n in
      let lut = Steiner.total_length (Steiner.build ~xs ~ys ()) in
      let opt = Steiner.Lut.optimal_length ~xs ~ys in
      if Float.abs (lut -. opt) > 1e-9 then
        Alcotest.failf "deg %d: lut %f vs DW %f" n lut opt
    done
  done

let test_lut_degenerate () =
  (* duplicate coordinates collapse rank gaps; the LUT path must stay
     well-formed and optimal (the DW oracle handles ties too) *)
  let cases =
    [ ([| 0.0; 0.0; 5.0; 5.0 |], [| 0.0; 5.0; 0.0; 5.0 |]);
      ([| 1.0; 1.0; 1.0; 1.0; 1.0 |], [| 0.0; 1.0; 2.0; 3.0; 4.0 |]);
      ([| 2.0; 2.0; 2.0; 2.0; 2.0; 2.0 |], [| 7.0; 7.0; 7.0; 7.0; 7.0; 7.0 |]);
      ([| 0.0; 3.0; 3.0; 6.0; 0.0; 6.0; 3.0 |],
       [| 0.0; 0.0; 4.0; 4.0; 4.0; 0.0; 2.0 |]) ]
  in
  List.iter
    (fun (xs, ys) ->
      let t = Steiner.build ~xs ~ys () in
      if not (tree_is_connected t) then Alcotest.fail "disconnected";
      Alcotest.(check (float 1e-9)) "optimal on ties"
        (Steiner.Lut.optimal_length ~xs ~ys)
        (Steiner.total_length t))
    cases

let test_lut_gradient_fd () =
  (* finite-difference check of the provenance-chained gradient through
     LUT-built trees: for a functional linear in all node coordinates,
     accumulate_pin_gradient must match the finite difference of the
     functional under update_coordinates (node coordinates are linear in
     pin coordinates at fixed topology) *)
  let rng = Workload.Rng.create 99 in
  for n = 4 to 8 do
    let xs, ys = rand_net rng n in
    let t = Steiner.build ~xs ~ys () in
    let m = Steiner.node_count t in
    let node_gx = Array.init m (fun _ -> Workload.Rng.float rng 1.0 -. 0.5)
    and node_gy = Array.init m (fun _ -> Workload.Rng.float rng 1.0 -. 0.5) in
    let f xs' ys' =
      Steiner.update_coordinates t ~xs:xs' ~ys:ys';
      let acc = ref 0.0 in
      for v = 0 to m - 1 do
        acc :=
          !acc +. (node_gx.(v) *. t.Steiner.xs.(v))
          +. (node_gy.(v) *. t.Steiner.ys.(v))
      done;
      !acc
    in
    let pin_gx = Array.make n 0.0 and pin_gy = Array.make n 0.0 in
    Steiner.accumulate_pin_gradient t ~node_gx ~node_gy ~pin_gx ~pin_gy;
    let h = 0.5 in
    let base = f xs ys in
    for p = 0 to n - 1 do
      let xs2 = Array.copy xs in
      xs2.(p) <- xs2.(p) +. h;
      let fx = f xs2 ys in
      let ys2 = Array.copy ys in
      ys2.(p) <- ys2.(p) +. h;
      let fy = f xs ys2 in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "deg %d dF/dx_%d" n p)
        pin_gx.(p)
        ((fx -. base) /. h);
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "deg %d dF/dy_%d" n p)
        pin_gy.(p)
        ((fy -. base) /. h)
    done
  done

let test_lut_oracle_path_unaffected () =
  (* ?exact_limit keeps selecting the legacy exhaustive/heuristic path
     (the test oracle must not silently route through the tables) *)
  let rng = Workload.Rng.create 1234 in
  let xs, ys = rand_net rng 9 in
  let lut_off = Steiner.build ~lut:false ~xs ~ys () in
  let heur = Steiner.build ~exact_limit:2 ~xs ~ys () in
  Alcotest.(check (float 1e-9)) "lut:false = heuristic"
    (Steiner.total_length heur)
    (Steiner.total_length lut_off)

let suite =
  suite
  @ [ Alcotest.test_case "lut matches exhaustive oracle (deg 4-6)" `Quick
        test_lut_matches_exhaustive;
      Alcotest.test_case "lut matches DW oracle (deg 7-8)" `Quick
        test_lut_matches_dw_oracle;
      Alcotest.test_case "lut degenerate coordinates" `Quick
        test_lut_degenerate;
      Alcotest.test_case "lut gradient vs finite differences" `Quick
        test_lut_gradient_fd;
      Alcotest.test_case "lut:false selects heuristic" `Quick
        test_lut_oracle_path_unaffected ]
