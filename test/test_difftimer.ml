(* Tests for the differentiable STA engine: LSE smoothing behaviour,
   agreement with the exact timer, and gradient exactness. *)

let lib = Liberty.Synthetic.default ()

let small_design ?(cells = 150) ?(period = 520.0) seed =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = seed; sp_inputs = 8;
      sp_outputs = 8; sp_depth = 6; sp_clock_period = period }
  in
  let design, cons = Workload.generate lib spec in
  (design, Sta.Graph.build design lib cons)

let test_lse_basics () =
  let xs = [| 1.0; 5.0; 3.0 |] in
  let v = Difftimer.lse ~gamma:0.01 xs in
  Alcotest.(check (float 1e-6)) "tiny gamma = max" 5.0 v;
  let v2 = Difftimer.lse ~gamma:10.0 xs in
  Alcotest.(check bool) "lse >= max" true (v2 >= 5.0);
  (* shift invariance: lse(x + c) = lse(x) + c *)
  let shifted = Array.map (fun x -> x +. 100.0) xs in
  Alcotest.(check (float 1e-9)) "shift invariance"
    (Difftimer.lse ~gamma:7.0 xs +. 100.0)
    (Difftimer.lse ~gamma:7.0 shifted);
  (* huge values do not overflow *)
  let big = Difftimer.lse ~gamma:1.0 [| 1e8; 1e8 +. 1.0 |] in
  Alcotest.(check bool) "no overflow" true (Float.is_finite big)

let test_softmin0 () =
  Alcotest.(check (float 1e-9)) "very positive" 0.0
    (Difftimer.softmin0 ~gamma:10.0 1e6);
  Alcotest.(check (float 1e-6)) "very negative" (-500.0)
    (Difftimer.softmin0 ~gamma:10.0 (-500.0));
  let v = Difftimer.softmin0 ~gamma:10.0 0.0 in
  Alcotest.(check (float 1e-9)) "at zero" (-10.0 *. log 2.0) v;
  (* always below both 0 and s *)
  List.iter
    (fun s ->
      let v = Difftimer.softmin0 ~gamma:5.0 s in
      Alcotest.(check bool) "below min" true (v <= Float.min 0.0 s +. 1e-9))
    [ -20.0; -1.0; 0.0; 1.0; 20.0 ]

let test_smoothed_at_bounds_exact () =
  (* with identical Steiner trees, the smoothed AT upper-bounds the exact
     AT, and converges to it as gamma shrinks *)
  let _, graph = small_design 42 in
  let timer = Sta.Timer.create graph in
  let _ = Sta.Timer.run timer in
  let dt = Difftimer.create ~gamma:20.0 graph in
  Sta.Nets.rebuild (Difftimer.nets dt);
  let _ = Difftimer.forward dt in
  let npins = Netlist.num_pins graph.Sta.Graph.design in
  for p = 0 to npins - 1 do
    let exact = Sta.Timer.at_late timer p Sta.Rise in
    let smooth = Difftimer.at dt p Sta.Rise in
    if exact > neg_infinity && smooth < exact -. 1e-6 then
      Alcotest.failf "smoothed AT below exact at pin %d: %f < %f" p smooth exact
  done;
  (* shrink gamma: smoothed metrics approach the exact ones *)
  Difftimer.set_gamma dt 0.5;
  let m = Difftimer.forward dt in
  let exact_report = Sta.Timer.run ~rebuild_trees:false timer in
  let rel a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs b) in
  Alcotest.(check bool) "wns converges" true
    (rel m.Difftimer.wns exact_report.Sta.Timer.setup_wns < 0.05);
  Alcotest.(check bool) "tns converges" true
    (rel m.Difftimer.tns exact_report.Sta.Timer.setup_tns < 0.05)

let test_metrics_relations () =
  let _, graph = small_design 7 in
  let dt = Difftimer.create ~gamma:25.0 graph in
  Sta.Nets.rebuild (Difftimer.nets dt);
  let m = Difftimer.forward dt in
  Alcotest.(check bool) "tns <= 0" true (m.Difftimer.tns <= 0.0);
  Alcotest.(check bool) "tns <= wns" true (m.Difftimer.tns <= m.Difftimer.wns);
  Alcotest.(check bool) "smooth wns <= hard wns" true
    (m.Difftimer.wns_smooth <= m.Difftimer.wns +. 1e-9);
  Alcotest.(check bool) "endpoints found" true (m.Difftimer.endpoint_count > 0)

let test_endpoint_slack_access () =
  let design, graph = small_design 9 in
  let dt = Difftimer.create graph in
  Sta.Nets.rebuild (Difftimer.nets dt);
  let _ = Difftimer.forward dt in
  (* endpoints have finite slack, internal pins are infinity *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) "endpoint finite" true
        (Difftimer.endpoint_slack dt p < infinity))
    graph.Sta.Graph.endpoints;
  let internal =
    Array.to_seq design.Netlist.pins
    |> Seq.filter (fun (pin : Netlist.pin) ->
      not graph.Sta.Graph.is_endpoint.(pin.Netlist.pin_id))
    |> Seq.uncons
  in
  match internal with
  | Some (pin, _) ->
    Alcotest.(check bool) "internal infinite" true
      (Difftimer.endpoint_slack dt pin.Netlist.pin_id = infinity)
  | None -> Alcotest.fail "no internal pin"

let test_gradient_matches_fd () =
  let design, graph = small_design 3 in
  let dt = Difftimer.create ~gamma:30.0 graph in
  let nets = Difftimer.nets dt in
  let w_tns = 0.6 and w_wns = 0.3 in
  let objective () =
    Sta.Nets.refresh nets;
    let m = Difftimer.forward dt in
    (w_tns *. -.m.Difftimer.tns_smooth) +. (w_wns *. -.m.Difftimer.wns_smooth)
  in
  ignore (objective ());
  let ncells = Netlist.num_cells design in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  Difftimer.backward dt ~w_tns ~w_wns ~grad_x:gx ~grad_y:gy;
  let rng = Workload.Rng.create 55 in
  let h = 1e-4 in
  for _ = 1 to 25 do
    let c = design.Netlist.cells.(Workload.Rng.int rng ncells) in
    if not c.Netlist.fixed then begin
      let y0 = c.Netlist.y in
      c.Netlist.y <- y0 +. h;
      let fp = objective () in
      c.Netlist.y <- y0 -. h;
      let fm = objective () in
      c.Netlist.y <- y0;
      let fd = (fp -. fm) /. (2.0 *. h) in
      let analytic = gy.(c.Netlist.cell_id) in
      if Float.abs (fd -. analytic) > 1e-4 *. Float.max 1.0 (Float.abs fd) then
        Alcotest.failf "gradient mismatch on %s: %g vs fd %g"
          c.Netlist.cell_name analytic fd
    end
  done

let test_backward_accumulates () =
  let design, graph = small_design 5 in
  let dt = Difftimer.create graph in
  Sta.Nets.rebuild (Difftimer.nets dt);
  let _ = Difftimer.forward dt in
  let ncells = Netlist.num_cells design in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  Difftimer.backward dt ~w_tns:1.0 ~w_wns:0.0 ~grad_x:gx ~grad_y:gy;
  let snapshot = Array.copy gx in
  Difftimer.backward dt ~w_tns:1.0 ~w_wns:0.0 ~grad_x:gx ~grad_y:gy;
  Array.iteri
    (fun i v ->
      if Float.abs (v -. (2.0 *. snapshot.(i))) > 1e-9 *. Float.max 1.0 (Float.abs v)
      then Alcotest.fail "backward does not accumulate linearly")
    gx

let test_backward_linear_in_weights () =
  let design, graph = small_design 6 in
  let dt = Difftimer.create graph in
  Sta.Nets.rebuild (Difftimer.nets dt);
  let _ = Difftimer.forward dt in
  let ncells = Netlist.num_cells design in
  let g1x = Array.make ncells 0.0 and g1y = Array.make ncells 0.0 in
  Difftimer.backward dt ~w_tns:0.25 ~w_wns:0.0 ~grad_x:g1x ~grad_y:g1y;
  let g2x = Array.make ncells 0.0 and g2y = Array.make ncells 0.0 in
  Difftimer.backward dt ~w_tns:0.5 ~w_wns:0.0 ~grad_x:g2x ~grad_y:g2y;
  Array.iteri
    (fun i v ->
      if Float.abs ((2.0 *. g1x.(i)) -. v) > 1e-9 *. Float.max 1.0 (Float.abs v)
      then Alcotest.fail "backward not linear in w_tns")
    g2x

let test_parallel_forward_matches_sequential () =
  let _, graph = small_design ~cells:600 11 in
  let dt = Difftimer.create graph in
  Sta.Nets.rebuild (Difftimer.nets dt);
  let m_seq = Difftimer.forward dt in
  let pool = Parallel.create ~domains:4 () in
  let m_par =
    Fun.protect
      ~finally:(fun () -> Parallel.shutdown pool)
      (fun () -> Difftimer.forward ~pool dt)
  in
  Alcotest.(check (float 1e-9)) "wns" m_seq.Difftimer.wns m_par.Difftimer.wns;
  Alcotest.(check (float 1e-9)) "tns" m_seq.Difftimer.tns m_par.Difftimer.tns;
  Alcotest.(check (float 1e-9)) "tns smooth" m_seq.Difftimer.tns_smooth
    m_par.Difftimer.tns_smooth

let test_tree_reuse_approximation () =
  (* refreshing coordinates through provenance must agree with a full
     rebuild when cells have not moved *)
  let _, graph = small_design 13 in
  let dt = Difftimer.create graph in
  let nets = Difftimer.nets dt in
  Sta.Nets.rebuild nets;
  let m1 = Difftimer.forward dt in
  Sta.Nets.refresh nets;
  let m2 = Difftimer.forward dt in
  Alcotest.(check (float 1e-9)) "tns stable" m1.Difftimer.tns_smooth
    m2.Difftimer.tns_smooth

let suite =
  [ Alcotest.test_case "lse basics" `Quick test_lse_basics;
    Alcotest.test_case "softmin0" `Quick test_softmin0;
    Alcotest.test_case "smoothed AT bounds exact AT" `Quick
      test_smoothed_at_bounds_exact;
    Alcotest.test_case "metric relations" `Quick test_metrics_relations;
    Alcotest.test_case "endpoint slack access" `Quick test_endpoint_slack_access;
    Alcotest.test_case "gradient matches finite differences" `Quick
      test_gradient_matches_fd;
    Alcotest.test_case "backward accumulates" `Quick test_backward_accumulates;
    Alcotest.test_case "backward linear in weights" `Quick
      test_backward_linear_in_weights;
    Alcotest.test_case "parallel forward = sequential" `Quick
      test_parallel_forward_matches_sequential;
    Alcotest.test_case "tree refresh stable when static" `Quick
      test_tree_reuse_approximation ]

(* On a single-fan-in chain every LSE has exactly one contribution, so
   the smoothed engine must equal the exact engine bit-for-bit. *)
let test_chain_smoothed_equals_exact () =
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:120.0 ~hy:40.0 in
  let b = Netlist.Builder.create ~region "chain" in
  let inv_kind =
    match Liberty.cell_index lib "INV_X1" with
    | Some k -> k
    | None -> Alcotest.fail "INV_X1"
  in
  let pad name x direction =
    let cell =
      Netlist.Builder.add_cell b ~name ~lib_cell:(-1) ~width:2.0 ~height:2.0
        ~x ~y:20.0 ~fixed:true ()
    in
    Netlist.Builder.add_pin b ~cell ~name:(name ^ "/P") ~direction ()
  in
  let pi = pad "pi" 0.0 Netlist.Output in
  let po = pad "po" 120.0 Netlist.Input in
  let prev = ref pi in
  for i = 0 to 4 do
    let lc = lib.Liberty.lib_cells.(inv_kind) in
    let cell =
      Netlist.Builder.add_cell b
        ~name:(Printf.sprintf "i%d" i)
        ~lib_cell:inv_kind ~width:lc.Liberty.lc_width
        ~height:lc.Liberty.lc_height
        ~x:(20.0 +. (16.0 *. float_of_int i))
        ~y:20.0 ()
    in
    let a =
      Netlist.Builder.add_pin b ~cell ~name:(Printf.sprintf "i%d/A" i)
        ~direction:Netlist.Input ~lib_pin:0 ()
    in
    let y =
      Netlist.Builder.add_pin b ~cell ~name:(Printf.sprintf "i%d/Y" i)
        ~direction:Netlist.Output ~lib_pin:1 ()
    in
    let _ =
      Netlist.Builder.add_net b ~name:(Printf.sprintf "n%d" i)
        ~pins:[ !prev; a ]
    in
    prev := y
  done;
  let _ = Netlist.Builder.add_net b ~name:"n_out" ~pins:[ !prev; po ] in
  let design = Netlist.Builder.freeze b in
  let graph = Sta.Graph.build design lib Sta.Constraints.default in
  let timer = Sta.Timer.create graph in
  let _ = Sta.Timer.run timer in
  let dt = Difftimer.create ~gamma:50.0 graph in
  Sta.Nets.rebuild (Difftimer.nets dt);
  let m = Difftimer.forward dt in
  for p = 0 to Netlist.num_pins design - 1 do
    List.iter
      (fun tr ->
        let e = Sta.Timer.at_late timer p tr and s = Difftimer.at dt p tr in
        if e > neg_infinity then begin
          Alcotest.(check (float 1e-9)) "at equal" e s;
          Alcotest.(check (float 1e-9)) "slew equal"
            (Sta.Timer.slew_late timer p tr)
            (Difftimer.slew dt p tr)
        end)
      [ Sta.Rise; Sta.Fall ]
  done;
  let exact = Sta.Timer.run ~rebuild_trees:false timer in
  Alcotest.(check (float 1e-9)) "wns equal" exact.Sta.Timer.setup_wns
    m.Difftimer.wns

(* mid-size finite-difference check: exercises multi-fan-in LSE paths,
   the forward LUT tape and the gather backward on a design big enough
   to have deep shared logic cones *)
let test_gradient_matches_fd_midsize () =
  let design, graph = small_design ~cells:600 ~period:480.0 21 in
  let dt = Difftimer.create ~gamma:20.0 graph in
  let nets = Difftimer.nets dt in
  let w_tns = 1.0 and w_wns = 0.5 in
  let objective () =
    Sta.Nets.refresh nets;
    let m = Difftimer.forward dt in
    (w_tns *. -.m.Difftimer.tns_smooth) +. (w_wns *. -.m.Difftimer.wns_smooth)
  in
  ignore (objective ());
  let ncells = Netlist.num_cells design in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  Difftimer.backward dt ~w_tns ~w_wns ~grad_x:gx ~grad_y:gy;
  let rng = Workload.Rng.create 77 in
  let h = 1e-4 in
  for _ = 1 to 20 do
    let c = design.Netlist.cells.(Workload.Rng.int rng ncells) in
    if not c.Netlist.fixed then begin
      let x0 = c.Netlist.x in
      c.Netlist.x <- x0 +. h;
      let fp = objective () in
      c.Netlist.x <- x0 -. h;
      let fm = objective () in
      c.Netlist.x <- x0;
      let fd = (fp -. fm) /. (2.0 *. h) in
      let analytic = gx.(c.Netlist.cell_id) in
      if Float.abs (fd -. analytic) > 1e-4 *. Float.max 1.0 (Float.abs fd)
      then
        Alcotest.failf "mid-size gradient mismatch on %s: %g vs fd %g"
          c.Netlist.cell_name analytic fd
    end
  done

(* the gather backward makes the reverse sweep deterministic; only the
   per-net slice merge can reassociate, so pooled gradients must match
   the sequential ones to ~1 ulp *)
let test_parallel_backward_matches_sequential () =
  let design, graph = small_design ~cells:600 ~period:480.0 31 in
  let dt = Difftimer.create ~gamma:20.0 graph in
  Sta.Nets.rebuild (Difftimer.nets dt);
  let _ = Difftimer.forward dt in
  let ncells = Netlist.num_cells design in
  let run ?pool () =
    let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
    Difftimer.backward ?pool dt ~w_tns:0.8 ~w_wns:0.4 ~grad_x:gx ~grad_y:gy;
    (gx, gy)
  in
  let gx_seq, gy_seq = run () in
  let nonzero = Array.exists (fun v -> v <> 0.0) gx_seq in
  Alcotest.(check bool) "sequential gradient nonzero" true nonzero;
  List.iter
    (fun domains ->
      let pool = Parallel.create ~domains () in
      let gx_par, gy_par =
        Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (run ~pool)
      in
      let close a b =
        Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)
      in
      for c = 0 to ncells - 1 do
        if not (close gx_seq.(c) gx_par.(c)) then
          Alcotest.failf "%d-domain grad_x mismatch at cell %d: %.17g vs %.17g"
            domains c gx_seq.(c) gx_par.(c);
        if not (close gy_seq.(c) gy_par.(c)) then
          Alcotest.failf "%d-domain grad_y mismatch at cell %d: %.17g vs %.17g"
            domains c gy_seq.(c) gy_par.(c)
      done)
    [ 2; 4 ]

let suite =
  suite
  @ [ Alcotest.test_case "chain: smoothed = exact (single fan-in)" `Quick
        test_chain_smoothed_equals_exact;
      Alcotest.test_case "gradient matches FD (mid-size)" `Quick
        test_gradient_matches_fd_midsize;
      Alcotest.test_case "parallel backward = sequential" `Quick
        test_parallel_backward_matches_sequential ]
