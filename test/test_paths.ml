(* Tests for the top-K critical-path enumeration engine. *)

let lib = Liberty.Synthetic.default ()

let bits = Int64.bits_of_float

(* the three workload shapes x two seeds the property tests sweep *)
let specs_under_test =
  [ { Workload.default_spec with
      Workload.sp_cells = 220; sp_clock_period = 700.0 };
    { Workload.default_spec with
      Workload.sp_cells = 320; sp_depth = 12; sp_clock_period = 600.0 };
    { Workload.default_spec with
      Workload.sp_cells = 260; sp_inputs = 12; sp_outputs = 12;
      sp_clock_period = 900.0 } ]

let seeds = [ 3; 11 ]

let with_timer ?(cells = None) spec seed f =
  let spec = { spec with Workload.sp_seed = seed } in
  let spec =
    match cells with None -> spec | Some c -> { spec with Workload.sp_cells = c }
  in
  let design, cons = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib cons in
  let timer = Sta.Timer.create graph in
  let _ = Sta.Timer.run timer in
  f design graph timer

let check_steps_equal label (expected : Sta.Timer.path_step list)
    (actual : Sta.Timer.path_step list) =
  if List.length expected <> List.length actual then
    Alcotest.failf "%s: length %d vs %d" label (List.length expected)
      (List.length actual);
  List.iter2
    (fun (e : Sta.Timer.path_step) (a : Sta.Timer.path_step) ->
      if e.Sta.Timer.ps_pin <> a.Sta.Timer.ps_pin then
        Alcotest.failf "%s: pin %d vs %d" label e.Sta.Timer.ps_pin
          a.Sta.Timer.ps_pin;
      if e.Sta.Timer.ps_transition <> a.Sta.Timer.ps_transition then
        Alcotest.failf "%s: transition differs at pin %d" label
          e.Sta.Timer.ps_pin;
      if bits e.Sta.Timer.ps_at <> bits a.Sta.Timer.ps_at then
        Alcotest.failf "%s: arrival differs at pin %d" label e.Sta.Timer.ps_pin;
      if bits e.Sta.Timer.ps_slew <> bits a.Sta.Timer.ps_slew then
        Alcotest.failf "%s: slew differs at pin %d" label e.Sta.Timer.ps_pin)
    expected actual

(* satellite: the engine's top-1 path bit-matches the timer's own
   retrace for every endpoint, on every spec x seed *)
let test_top1_bit_matches_critical_path () =
  List.iter
    (fun spec ->
      List.iter
        (fun seed ->
          with_timer spec seed (fun _ graph timer ->
            let view = Paths.analyze timer in
            Array.iter
              (fun ep ->
                let label = Printf.sprintf "seed %d ep %d" seed ep in
                let expected = Sta.Timer.critical_path ~endpoint:ep timer in
                match Paths.enumerate_endpoint ~k:1 view ep with
                | [] ->
                  if expected <> [] then
                    Alcotest.failf "%s: engine empty, retrace not" label
                | [ p ] ->
                  Alcotest.(check int) (label ^ ": endpoint") ep
                    p.Paths.pt_endpoint;
                  Alcotest.(check int) (label ^ ": rank") 0 p.Paths.pt_rank;
                  check_steps_equal label expected p.Paths.pt_steps;
                  (* the worst path's slack is the endpoint pin slack *)
                  if bits p.Paths.pt_slack
                     <> bits (Sta.Timer.pin_slack_late timer ep)
                  then Alcotest.failf "%s: slack != pin slack" label
                | _ -> Alcotest.failf "%s: k=1 returned several paths" label)
              graph.Sta.Graph.endpoints))
        seeds)
    specs_under_test

(* the k=1 global enumeration reproduces the default critical path
   (same endpoint pick, same steps) *)
let test_global_top1_matches_default () =
  List.iter
    (fun spec ->
      List.iter
        (fun seed ->
          with_timer spec seed (fun _ _ timer ->
            let view = Paths.analyze timer in
            let expected = Sta.Timer.critical_path timer in
            match Paths.enumerate ~k:1 view with
            | [] -> Alcotest.(check int) "both empty" 0 (List.length expected)
            | [ p ] -> check_steps_equal "global top-1" expected p.Paths.pt_steps
            | _ -> Alcotest.fail "k=1 returned several paths"))
        seeds)
    specs_under_test

(* satellite: enumerated slacks are monotonically non-decreasing in
   rank, per endpoint and globally; paths are structurally sound and
   pairwise distinct *)
let test_ranked_slacks_monotone () =
  List.iter
    (fun spec ->
      List.iter
        (fun seed ->
          with_timer spec seed (fun design _ timer ->
            let view = Paths.analyze timer in
            let check_paths label paths =
              let previous = ref neg_infinity in
              List.iter
                (fun (p : Paths.path) ->
                  if p.Paths.pt_slack < !previous then
                    Alcotest.failf "%s: slack decreased at rank %d" label
                      p.Paths.pt_rank;
                  previous := p.Paths.pt_slack;
                  (match List.rev p.Paths.pt_steps with
                   | last :: _ ->
                     Alcotest.(check int) (label ^ ": ends at endpoint")
                       p.Paths.pt_endpoint last.Sta.Timer.ps_pin
                   | [] -> Alcotest.failf "%s: empty step list" label);
                  if not (Float.is_finite p.Paths.pt_slack) then
                    Alcotest.failf "%s: non-finite slack" label)
                paths
            in
            let nets = Sta.Timer.nets timer in
            Array.iter
              (fun ep ->
                let paths = Paths.enumerate_endpoint ~k:8 view ep in
                check_paths (Printf.sprintf "seed %d ep %d" seed ep) paths;
                List.iteri
                  (fun i (p : Paths.path) ->
                    Alcotest.(check int) "rank is position" i p.Paths.pt_rank)
                  paths;
                (* distinct node sequences *)
                let keys =
                  List.map
                    (fun (p : Paths.path) ->
                      List.map
                        (fun (s : Sta.Timer.path_step) ->
                          (s.Sta.Timer.ps_pin, s.Sta.Timer.ps_transition))
                        p.Paths.pt_steps)
                    paths
                in
                let sorted = List.sort_uniq compare keys in
                Alcotest.(check int)
                  (Printf.sprintf "seed %d ep %d distinct" seed ep)
                  (List.length keys) (List.length sorted))
              nets.Sta.Nets.graph.Sta.Graph.endpoints;
            check_paths (Printf.sprintf "seed %d global" seed)
              (Paths.enumerate ~k:50 view);
            ignore design))
        seeds)
    specs_under_test

(* independent check on a small design: a plain backward DFS over the
   timer's public state enumerates every complete path; the engine must
   find exactly as many (when k is large enough) with matching slacks *)
let brute_force_paths design graph timer ep =
  let nets = Sta.Timer.nets timer in
  let at v tr = Sta.Timer.at_late timer v tr in
  let preds v tr =
    let pin = design.Netlist.pins.(v) in
    let net = pin.Netlist.net in
    let via_net =
      if pin.Netlist.direction = Netlist.Input && net >= 0 then
        match nets.Sta.Nets.trees.(net) with
        | Some (_, rc) ->
          let u = graph.Sta.Graph.net_driver_of.(net) in
          if u >= 0 && u <> v && at u tr > neg_infinity then
            [ (u, tr, Rc.sink_delay rc nets.Sta.Nets.tree_index.(v)) ]
          else []
        | None -> []
      else []
    in
    let load =
      if net >= 0 then
        match nets.Sta.Nets.trees.(net) with
        | Some (_, rc) -> Rc.root_load rc
        | None -> 0.0
      else 0.0
    in
    let cell = ref [] in
    let oi = Sta.transition_index tr in
    for k = graph.Sta.Graph.fanin_off.(v)
        to graph.Sta.Graph.fanin_off.(v + 1) - 1 do
      let a = graph.Sta.Graph.fanin_arc.(k) in
      let u = graph.Sta.Graph.arc_from.(a) in
      let arc = graph.Sta.Graph.arc_table.(a) in
      for ii = 0 to 1 do
        let tr_in = if ii = 0 then Sta.Rise else Sta.Fall in
        if Sta.Graph.arc_admits graph a ~tr_out:tr ~tr_in
           && at u tr_in > neg_infinity
        then begin
          let lut =
            if oi = 0 then arc.Liberty.cell_rise else arc.Liberty.cell_fall
          in
          let d =
            Liberty.Lut.lookup lut (Sta.Timer.slew_late timer u tr_in) load
          in
          cell := (u, tr_in, d) :: !cell
        end
      done
    done;
    via_net @ List.rev !cell
  in
  let slacks = ref [] in
  let budget = ref 20000 in
  (* walk backward accumulating the delay list; arrival is recomputed
     forward from the startpoint so this is an independent sum *)
  let rec dfs v tr delays rat =
    decr budget;
    if !budget < 0 then Alcotest.fail "brute force path explosion";
    match preds v tr with
    | [] ->
      let arrival = List.fold_left ( +. ) (at v tr) delays in
      slacks := (rat -. arrival) :: !slacks
    | ps -> List.iter (fun (u, tr_in, d) -> dfs u tr_in (d :: delays) rat) ps
  in
  List.iter
    (fun tr ->
      let a = at ep tr and r = Sta.Timer.rat_late timer ep tr in
      if a > neg_infinity && r < infinity then dfs ep tr [] r)
    [ Sta.Rise; Sta.Fall ];
  List.sort compare !slacks

let test_matches_brute_force () =
  List.iter
    (fun seed ->
      let spec =
        { Workload.default_spec with
          Workload.sp_cells = 60; sp_inputs = 4; sp_outputs = 4; sp_depth = 4;
          sp_clock_period = 500.0 }
      in
      with_timer spec seed (fun design graph timer ->
        let view = Paths.analyze timer in
        Array.iter
          (fun ep ->
            let expected = brute_force_paths design graph timer ep in
            let got = Paths.enumerate_endpoint ~k:100_000 view ep in
            let label = Printf.sprintf "seed %d ep %d" seed ep in
            Alcotest.(check int) (label ^ ": path count")
              (List.length expected) (List.length got);
            List.iter2
              (fun e (p : Paths.path) ->
                let tol = 1e-6 *. Float.max 1.0 (Float.abs e) in
                if Float.abs (e -. p.Paths.pt_slack) > tol then
                  Alcotest.failf "%s: slack %g vs %g" label e p.Paths.pt_slack)
              expected got)
          graph.Sta.Graph.endpoints))
    [ 5; 9 ]

let check_paths_equal label (a : Paths.path list) (b : Paths.path list) =
  Alcotest.(check int) (label ^ ": count") (List.length a) (List.length b);
  List.iter2
    (fun (x : Paths.path) (y : Paths.path) ->
      if
        x.Paths.pt_endpoint <> y.Paths.pt_endpoint
        || x.Paths.pt_rank <> y.Paths.pt_rank
        || bits x.Paths.pt_slack <> bits y.Paths.pt_slack
        || x.Paths.pt_nets <> y.Paths.pt_nets
        || x.Paths.pt_arcs <> y.Paths.pt_arcs
      then Alcotest.failf "%s: path record differs" label;
      check_steps_equal label x.Paths.pt_steps y.Paths.pt_steps)
    a b

(* tentpole anchor: the lazy engine is bitwise identical to the frozen
   eager Reference implementation — globally across k and slack limits,
   and per endpoint *)
let test_matches_reference () =
  List.iter
    (fun spec ->
      List.iter
        (fun seed ->
          with_timer spec seed (fun _ graph timer ->
            let view = Paths.analyze timer in
            List.iter
              (fun limit ->
                let lim_label =
                  match limit with None -> "inf" | Some l -> string_of_float l
                in
                List.iter
                  (fun k ->
                    let label =
                      Printf.sprintf "seed %d k %d lim %s" seed k lim_label
                    in
                    check_paths_equal (label ^ " global")
                      (Paths.Reference.enumerate ?slack_limit:limit ~k view)
                      (Paths.enumerate ?slack_limit:limit ~k view))
                  [ 1; 4; 16; 64 ];
                Array.iter
                  (fun ep ->
                    let label =
                      Printf.sprintf "seed %d ep %d lim %s" seed ep lim_label
                    in
                    check_paths_equal label
                      (Paths.Reference.enumerate_endpoint ?slack_limit:limit
                         ~k:16 view ep)
                      (Paths.enumerate_endpoint ?slack_limit:limit ~k:16 view
                         ep))
                  graph.Sta.Graph.endpoints)
              [ None; Some 0.0 ]))
        seeds)
    specs_under_test

(* property: enumeration at slack_limit L equals the unrestricted
   enumeration filtered to slack < L — globally and per endpoint, with
   L spanning the slack range including exact path slacks (strictness) *)
let test_slack_limit_property () =
  List.iter
    (fun (spec, seed) ->
      with_timer spec seed (fun _ graph timer ->
        let view = Paths.analyze timer in
        let all = Paths.enumerate ~k:40 view in
        let nth_slack n =
          match List.nth_opt all n with
          | Some p -> [ p.Paths.pt_slack ]
          | None -> []
        in
        let limits =
          (0.0 :: nth_slack 5) @ nth_slack 20
          @
          match all with
          | p :: _ -> [ p.Paths.pt_slack +. 25.0 ]
          | [] -> []
        in
        List.iter
          (fun l ->
            let label = Printf.sprintf "seed %d limit %g" seed l in
            let limited = Paths.enumerate ~slack_limit:l ~k:40 view in
            let expected =
              List.filter (fun (p : Paths.path) -> p.Paths.pt_slack < l) all
            in
            check_paths_equal (label ^ " global") expected limited;
            Array.iter
              (fun ep ->
                let full = Paths.enumerate_endpoint ~k:64 view ep in
                (* truncation at k can make [full] shorter than the true
                   set; with equal k the below-limit prefix coincides *)
                if List.length full < 64 then
                  check_paths_equal
                    (Printf.sprintf "%s ep %d" label ep)
                    (List.filter
                       (fun (p : Paths.path) -> p.Paths.pt_slack < l)
                       full)
                    (Paths.enumerate_endpoint ~slack_limit:l ~k:64 view ep))
              graph.Sta.Graph.endpoints)
          limits))
    [ (List.hd specs_under_test, 3); (List.nth specs_under_test 1, 11) ]

(* property: the returned paths are pairwise-distinct pin-transition
   sequences — the deviation decomposition must generate every complete
   path exactly once, globally and per endpoint *)
let test_paths_pairwise_distinct () =
  let key (p : Paths.path) =
    List.map
      (fun (s : Sta.Timer.path_step) ->
        (s.Sta.Timer.ps_pin, s.Sta.Timer.ps_transition))
      p.Paths.pt_steps
  in
  let check_distinct label paths =
    let keys = List.map key paths in
    let uniq = List.sort_uniq compare keys in
    Alcotest.(check int) (label ^ ": distinct") (List.length keys)
      (List.length uniq)
  in
  List.iter
    (fun spec ->
      List.iter
        (fun seed ->
          with_timer spec seed (fun _ graph timer ->
            let view = Paths.analyze timer in
            check_distinct
              (Printf.sprintf "seed %d global" seed)
              (Paths.enumerate ~k:64 view);
            Array.iter
              (fun ep ->
                check_distinct
                  (Printf.sprintf "seed %d ep %d" seed ep)
                  (Paths.enumerate_endpoint ~k:32 view ep))
              graph.Sta.Graph.endpoints))
        seeds)
    specs_under_test

(* the slack-limit prune is exact: it returns precisely the unlimited
   enumeration truncated at the limit *)
let test_slack_limit_exact () =
  with_timer (List.hd specs_under_test) 3 (fun _ graph timer ->
    let view = Paths.analyze timer in
    Array.iter
      (fun ep ->
        let all = Paths.enumerate_endpoint ~k:64 view ep in
        let limited = Paths.enumerate_endpoint ~slack_limit:0.0 ~k:64 view ep in
        let expected =
          List.filter (fun (p : Paths.path) -> p.Paths.pt_slack < 0.0) all
        in
        (* truncation at k can make [all] shorter than the true set, but
           with equal k the violating prefix must coincide *)
        if List.length all < 64 then begin
          Alcotest.(check int) "limited count" (List.length expected)
            (List.length limited);
          List.iter2
            (fun (a : Paths.path) (b : Paths.path) ->
              if bits a.Paths.pt_slack <> bits b.Paths.pt_slack then
                Alcotest.fail "limited enumeration diverged")
            expected limited
        end)
      graph.Sta.Graph.endpoints)

(* satellite: pooled enumeration, criticality arrays and the Pathweight
   Core.run trace are bit-identical at 1 vs 4 domains (the Core.run leg
   lives in test_core's four-mode determinism test) *)
let test_pool_determinism () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 400; sp_clock_period = 600.0 }
  in
  with_timer spec 14 (fun _ _ timer ->
    let run pool =
      let view = Paths.analyze ?pool timer in
      let paths = Paths.enumerate ?pool ~k:40 view in
      (paths, Paths.net_criticality view paths, Paths.arc_criticality view paths)
    in
    let p1, nc1, ac1 = run None in
    let pool = Parallel.create ~domains:4 () in
    let p4, nc4, ac4 =
      Fun.protect
        ~finally:(fun () -> Parallel.shutdown pool)
        (fun () -> run (Some pool))
    in
    Alcotest.(check int) "same path count" (List.length p1) (List.length p4);
    List.iter2
      (fun (a : Paths.path) (b : Paths.path) ->
        if a.Paths.pt_endpoint <> b.Paths.pt_endpoint
           || a.Paths.pt_rank <> b.Paths.pt_rank
           || bits a.Paths.pt_slack <> bits b.Paths.pt_slack
           || a.Paths.pt_nets <> b.Paths.pt_nets
           || a.Paths.pt_arcs <> b.Paths.pt_arcs
        then Alcotest.fail "pooled path set differs";
        check_steps_equal "pooled steps" a.Paths.pt_steps b.Paths.pt_steps)
      p1 p4;
    Array.iteri
      (fun i v ->
        if bits v <> bits nc4.(i) then
          Alcotest.failf "net criticality differs at %d" i)
      nc1;
    Array.iteri
      (fun i v ->
        if bits v <> bits ac4.(i) then
          Alcotest.failf "arc criticality differs at %d" i)
      ac1)

let test_criticality_counts () =
  with_timer (List.hd specs_under_test) 3 (fun design _ timer ->
    let view = Paths.analyze timer in
    let paths = Paths.enumerate ~k:16 view in
    let nc = Paths.net_criticality view paths in
    let ac = Paths.arc_criticality view paths in
    Alcotest.(check int) "net array size" (Netlist.num_nets design)
      (Array.length nc);
    Array.iter
      (fun v ->
        if v < 0.0 || Float.is_nan v then Alcotest.fail "bad net criticality")
      nc;
    Array.iter
      (fun v ->
        if v < 0.0 || Float.is_nan v then Alcotest.fail "bad arc criticality")
      ac;
    (* with violating paths present, some net must accumulate weight *)
    let violating =
      List.exists (fun (p : Paths.path) -> p.Paths.pt_slack < 0.0) paths
    in
    if violating then
      Alcotest.(check bool) "some net critical" true
        (Array.exists (fun v -> v > 0.0) nc))

let test_pathweight_engine_updates_weights () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 300; sp_clock_period = 700.0 }
  in
  let spec = { spec with Workload.sp_seed = 2 } in
  let design, cons = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib cons in
  let pw = Paths.Weight.create graph in
  let report = Paths.Weight.update pw in
  Alcotest.(check bool) "violations exist" true
    (report.Sta.Timer.setup_wns < 0.0);
  let raised =
    Array.fold_left
      (fun acc (n : Netlist.net) ->
        if n.Netlist.weight > 1.0 +. 1e-12 then acc + 1 else acc)
      0 design.Netlist.nets
  in
  Alcotest.(check bool) "some nets weighted" true (raised > 0);
  (* on a static placement criticality is stationary, so weights
     converge monotonically upward (and stay capped) even though the
     update rule can relax weights when criticality drops — the decay
     path is covered by test_pathweight_weight_decays *)
  let previous =
    Array.map (fun (n : Netlist.net) -> n.Netlist.weight) design.Netlist.nets
  in
  for _ = 1 to 6 do
    let _ = Paths.Weight.update pw in
    Array.iteri
      (fun i (n : Netlist.net) ->
        if n.Netlist.weight < previous.(i) -. 1e-12 then
          Alcotest.fail "weight decreased";
        if n.Netlist.weight
           > Paths.Weight.default_config.Paths.Weight.max_weight +. 1e-12
        then Alcotest.fail "weight exceeded cap";
        previous.(i) <- n.Netlist.weight)
      design.Netlist.nets
  done;
  Paths.Weight.reset pw;
  Array.iter
    (fun (n : Netlist.net) ->
      Alcotest.(check (float 1e-12)) "reset to 1" 1.0 n.Netlist.weight)
    design.Netlist.nets

(* satellite regression: the weight ratchet is gone — a transiently
   critical net's weight comes back down once it leaves every violating
   path, because the excess over 1 decays as momentum fades *)
let test_pathweight_weight_decays () =
  (* the period sits between the collapsed design's pure-cell-delay
     critical path (~930ps) and the spread initial placement's
     wire-dominated one, so the same design flips from violating to
     clean when the cells collapse *)
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 300; sp_seed = 2; sp_clock_period = 1000.0 }
  in
  let design, cons = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib cons in
  let pw = Paths.Weight.create graph in
  for _ = 1 to 4 do
    ignore (Paths.Weight.update pw)
  done;
  let heavy = ref (-1) and wmax = ref 1.0 in
  Array.iter
    (fun (n : Netlist.net) ->
      if n.Netlist.weight > !wmax then begin
        wmax := n.Netlist.weight;
        heavy := n.Netlist.net_id
      end)
    design.Netlist.nets;
  Alcotest.(check bool) "some net escalated" true
    (!heavy >= 0 && !wmax > 1.0 +. 1e-9);
  (* collapse every movable cell to the region center: wire delays
     vanish, the design meets timing, and every net leaves the
     violating-path set *)
  let r = design.Netlist.region in
  let cx = 0.5 *. (r.Geometry.Rect.lx +. r.Geometry.Rect.hx) in
  let cy = 0.5 *. (r.Geometry.Rect.ly +. r.Geometry.Rect.hy) in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        c.Netlist.x <- cx;
        c.Netlist.y <- cy
      end)
    design.Netlist.cells;
  let report = ref (Paths.Weight.update pw) in
  for _ = 1 to 11 do
    report := Paths.Weight.update pw
  done;
  if !report.Sta.Timer.setup_wns < 0.0 then
    Alcotest.failf "timing not clean after collapse: wns %g"
      !report.Sta.Timer.setup_wns;
  let w_end = design.Netlist.nets.(!heavy).Netlist.weight in
  Alcotest.(check bool) "weight came back down" true
    (w_end -. 1.0 < 0.35 *. (!wmax -. 1.0));
  Alcotest.(check bool) "weight stays >= 1" true (w_end >= 1.0 -. 1e-9)

let test_pathweight_placement_runs () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 300; sp_seed = 4; sp_clock_period = 800.0 }
  in
  let design, cons = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib cons in
  let cfg =
    { Core.default_config with
      Core.mode = Core.Path_weighting Paths.Weight.default_config;
      max_iterations = 160; min_iterations = 40; stop_overflow = 0.15;
      trace_timing_period = 10 }
  in
  let r = Core.run cfg graph in
  Alcotest.(check bool) "ran" true (r.Core.res_iterations >= 40);
  Alcotest.(check bool) "spread" true (r.Core.res_overflow < 0.5);
  (* the trace carries measured timing from the weight updates *)
  Alcotest.(check bool) "trace has timing" true
    (List.exists
       (fun (p : Core.trace_point) -> p.Core.tp_wns <> None)
       r.Core.res_trace);
  ignore design

let suite =
  [ Alcotest.test_case "top-1 bit-matches critical_path (3 specs x 2 seeds)"
      `Slow test_top1_bit_matches_critical_path;
    Alcotest.test_case "global top-1 matches default retrace" `Slow
      test_global_top1_matches_default;
    Alcotest.test_case "ranked slacks monotone, paths distinct" `Slow
      test_ranked_slacks_monotone;
    Alcotest.test_case "matches brute-force enumeration" `Quick
      test_matches_brute_force;
    Alcotest.test_case "bitwise identical to eager reference" `Slow
      test_matches_reference;
    Alcotest.test_case "slack limit prunes exactly" `Quick
      test_slack_limit_exact;
    Alcotest.test_case "slack limit == unrestricted filtered (property)"
      `Quick test_slack_limit_property;
    Alcotest.test_case "paths pairwise distinct (property)" `Slow
      test_paths_pairwise_distinct;
    Alcotest.test_case "pooled enumeration bit-identical" `Slow
      test_pool_determinism;
    Alcotest.test_case "criticality arrays well-formed" `Quick
      test_criticality_counts;
    Alcotest.test_case "pathweight engine updates weights" `Slow
      test_pathweight_engine_updates_weights;
    Alcotest.test_case "transient net weight decays" `Slow
      test_pathweight_weight_decays;
    Alcotest.test_case "pathweight placement runs" `Slow
      test_pathweight_placement_runs ]
