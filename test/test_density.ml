(* Tests for the electrostatic density system. *)

let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:64.0 ~hy:64.0

(* [n] unit cells; positions set by the caller *)
let design_with_cells n =
  let b = Netlist.Builder.create ~region ~row_height:1.0 "dens" in
  for i = 0 to n - 1 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" i)
         ~lib_cell:0 ~width:2.0 ~height:2.0 ~x:32.0 ~y:32.0 ())
  done;
  Netlist.Builder.freeze b

let spread design rng =
  Array.iter
    (fun (c : Netlist.cell) ->
      c.Netlist.x <- 2.0 +. Workload.Rng.float rng 60.0;
      c.Netlist.y <- 2.0 +. Workload.Rng.float rng 60.0)
    design.Netlist.cells

let test_bins_sizing () =
  let d = design_with_cells 100 in
  let dens = Density.create d in
  let b = Density.bins dens in
  Alcotest.(check bool) "power of two" true (b land (b - 1) = 0);
  let dens2 = Density.create ~bins:50 d in
  Alcotest.(check bool) "rounded override" true
    (Density.bins dens2 = 32 || Density.bins dens2 = 64)

let test_overflow_extremes () =
  let d = design_with_cells 200 in
  let dens = Density.create d in
  (* everything piled at the center: massive overflow *)
  Density.update dens;
  let crowded = Density.overflow dens in
  Alcotest.(check bool) "crowded overflow" true (crowded > 0.5);
  (* spread evenly on a grid: nearly no overflow *)
  Array.iteri
    (fun i (c : Netlist.cell) ->
      c.Netlist.x <- 2.0 +. (4.0 *. float_of_int (i mod 15));
      c.Netlist.y <- 2.0 +. (4.0 *. float_of_int (i / 15)))
    d.Netlist.cells;
  Density.update dens;
  let relaxed = Density.overflow dens in
  Alcotest.(check bool) "relaxed overflow" true (relaxed < 0.05);
  Alcotest.(check bool) "ordering" true (relaxed < crowded)

let test_penalty_decreases_when_spreading () =
  let d = design_with_cells 200 in
  let dens = Density.create d in
  Density.update dens;
  let crowded = Density.penalty dens in
  let rng = Workload.Rng.create 17 in
  spread d rng;
  Density.update dens;
  let relaxed = Density.penalty dens in
  Alcotest.(check bool) "penalty drops" true (relaxed < crowded)

let test_gradient_pushes_apart () =
  (* one clump at the left: gradient should push cells right (descending
     the energy moves them away from the clump, i.e. negative gradient
     where moving right decreases energy) *)
  let d = design_with_cells 100 in
  Array.iter
    (fun (c : Netlist.cell) ->
      c.Netlist.x <- 10.0;
      c.Netlist.y <- 32.0)
    d.Netlist.cells;
  let dens = Density.create d in
  Density.update dens;
  let n = Netlist.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Density.gradient dens ~scale:1.0 ~grad_x:gx ~grad_y:gy;
  (* move a probe cell slightly right of the clump: its x-gradient must
     be negative (energy decreases rightward) *)
  d.Netlist.cells.(0).Netlist.x <- 14.0;
  Density.update dens;
  Array.fill gx 0 n 0.0;
  Array.fill gy 0 n 0.0;
  Density.gradient dens ~scale:1.0 ~grad_x:gx ~grad_y:gy;
  Alcotest.(check bool) "pushed away from clump" true (gx.(0) < 0.0)

let test_gradient_scale_linear () =
  let d = design_with_cells 50 in
  let rng = Workload.Rng.create 23 in
  spread d rng;
  let dens = Density.create d in
  Density.update dens;
  let n = Netlist.num_cells d in
  let g1 = Array.make n 0.0 and g1y = Array.make n 0.0 in
  Density.gradient dens ~scale:1.0 ~grad_x:g1 ~grad_y:g1y;
  let g2 = Array.make n 0.0 and g2y = Array.make n 0.0 in
  Density.gradient dens ~scale:2.5 ~grad_x:g2 ~grad_y:g2y;
  Array.iteri
    (fun i v ->
      if Float.abs ((2.5 *. g1.(i)) -. v) > 1e-9 *. Float.max 1.0 (Float.abs v)
      then Alcotest.fail "scale not linear")
    g2

let test_fixed_cells_reduce_capacity () =
  (* fill a corner with a fixed macro; movable cells there overflow *)
  let b = Netlist.Builder.create ~region ~row_height:1.0 "fixed" in
  let _ =
    Netlist.Builder.add_cell b ~name:"macro" ~lib_cell:(-1) ~width:30.0
      ~height:30.0 ~x:16.0 ~y:16.0 ~fixed:true ()
  in
  for i = 0 to 19 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "m%d" i)
         ~lib_cell:0 ~width:2.0 ~height:2.0 ~x:16.0 ~y:16.0 ())
  done;
  let d = Netlist.Builder.freeze b in
  let dens = Density.create d in
  Density.update dens;
  let over_macro = Density.overflow dens in
  (* same cells in the free corner *)
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        c.Netlist.x <- 48.0 +. (float_of_int c.Netlist.cell_id *. 0.1);
        c.Netlist.y <- 48.0
      end)
    d.Netlist.cells;
  Density.update dens;
  let over_free = Density.overflow dens in
  Alcotest.(check bool) "macro area counts against capacity" true
    (over_macro > over_free)

let test_gradient_zero_when_uniform () =
  (* perfectly uniform density has (numerically) tiny field *)
  let b = Netlist.Builder.create ~region ~row_height:1.0 "uniform" in
  for i = 0 to 15 do
    for j = 0 to 15 do
      ignore
        (Netlist.Builder.add_cell b
           ~name:(Printf.sprintf "u%d_%d" i j)
           ~lib_cell:0 ~width:4.0 ~height:4.0
           ~x:(2.0 +. (4.0 *. float_of_int i))
           ~y:(2.0 +. (4.0 *. float_of_int j))
           ())
    done
  done;
  let d = Netlist.Builder.freeze b in
  let dens = Density.create ~bins:16 d in
  Density.update dens;
  let n = Netlist.num_cells d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Density.gradient dens ~scale:1.0 ~grad_x:gx ~grad_y:gy;
  let max_g = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 gx in
  Alcotest.(check bool) "negligible field" true (max_g < 1e-6)

let with_pool domains f =
  let pool = Parallel.create ~domains () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let bits = Int64.bits_of_float

let test_pooled_bit_identity () =
  let d = design_with_cells 300 in
  let rng = Workload.Rng.create 29 in
  spread d rng;
  let n = Netlist.num_cells d in
  let dens1 = Density.create ~bins:32 d in
  Density.update dens1;
  let gx1 = Array.make n 0.0 and gy1 = Array.make n 0.0 in
  Density.gradient dens1 ~scale:1.3 ~grad_x:gx1 ~grad_y:gy1;
  let dens4 = Density.create ~bins:32 d in
  let gx4 = Array.make n 0.0 and gy4 = Array.make n 0.0 in
  with_pool 4 (fun pool ->
    Density.update ~pool dens4;
    Density.gradient ~pool dens4 ~scale:1.3 ~grad_x:gx4 ~grad_y:gy4);
  Alcotest.(check bool) "overflow bit-identical" true
    (bits (Density.overflow dens1) = bits (Density.overflow dens4));
  Alcotest.(check bool) "penalty bit-identical" true
    (bits (Density.penalty dens1) = bits (Density.penalty dens4));
  for i = 0 to n - 1 do
    if bits gx1.(i) <> bits gx4.(i) || bits gy1.(i) <> bits gy4.(i) then
      Alcotest.failf "pooled gradient differs at cell %d" i
  done

let test_gradient_matches_fd_pooled () =
  (* the analytic gradient interpolates the spectral field, so it agrees
     with finite differences of the potential energy only up to the
     bilinear-interpolation error: compare loosely but on every probe *)
  let d = design_with_cells 200 in
  let rng = Workload.Rng.create 37 in
  spread d rng;
  let n = Netlist.num_cells d in
  let dens = Density.create ~bins:32 d in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  with_pool 4 (fun pool ->
    let energy () =
      Density.update ~pool dens;
      Density.penalty dens
    in
    ignore (energy ());
    Array.fill gx 0 n 0.0;
    Array.fill gy 0 n 0.0;
    Density.gradient ~pool dens ~scale:1.0 ~grad_x:gx ~grad_y:gy;
    let h = 0.05 in
    let dot = ref 0.0 and nfd = ref 0.0 and na = ref 0.0 in
    let checked = ref 0 in
    for _ = 1 to 25 do
      let c = d.Netlist.cells.(Workload.Rng.int rng n) in
      let x0 = c.Netlist.x in
      c.Netlist.x <- x0 +. h;
      let fp = energy () in
      c.Netlist.x <- x0 -. h;
      let fm = energy () in
      c.Netlist.x <- x0;
      ignore (energy ());
      let fd = (fp -. fm) /. (2.0 *. h) in
      let a = gx.(c.Netlist.cell_id) in
      if Float.abs fd > 1e-3 then begin
        incr checked;
        dot := !dot +. (fd *. a);
        nfd := !nfd +. (fd *. fd);
        na := !na +. (a *. a)
      end
    done;
    Alcotest.(check bool) "checked some probes" true (!checked > 5);
    let cosine = !dot /. Float.max 1e-30 (sqrt (!nfd *. !na)) in
    Alcotest.(check bool)
      (Printf.sprintf "gradient aligned with FD (cosine %.3f)" cosine)
      true (cosine > 0.8);
    let ratio = sqrt (!na /. Float.max 1e-30 !nfd) in
    Alcotest.(check bool)
      (Printf.sprintf "gradient magnitude near FD (ratio %.3f)" ratio)
      true (ratio > 0.5 && ratio < 2.0))

let suite =
  [ Alcotest.test_case "bins sizing" `Quick test_bins_sizing;
    Alcotest.test_case "overflow extremes" `Quick test_overflow_extremes;
    Alcotest.test_case "penalty decreases when spreading" `Quick
      test_penalty_decreases_when_spreading;
    Alcotest.test_case "gradient pushes away from clumps" `Quick
      test_gradient_pushes_apart;
    Alcotest.test_case "gradient linear in scale" `Quick test_gradient_scale_linear;
    Alcotest.test_case "fixed cells reduce capacity" `Quick
      test_fixed_cells_reduce_capacity;
    Alcotest.test_case "uniform density has no field" `Quick
      test_gradient_zero_when_uniform;
    Alcotest.test_case "pooled bit identity" `Quick test_pooled_bit_identity;
    Alcotest.test_case "gradient matches fd under pool" `Quick
      test_gradient_matches_fd_pooled ]
