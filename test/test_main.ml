(* Aggregates all suites under one alcotest runner: `dune runtest`. *)

let () =
  Alcotest.run "dgp"
    [ ("geometry", Test_geometry.suite);
      ("parallel", Test_parallel.suite);
      ("transform", Test_transform.suite);
      ("parsekit", Test_parsekit.suite);
      ("obs", Test_obs.suite);
      ("netlist", Test_netlist.suite);
      ("liberty", Test_liberty.suite);
      ("steiner", Test_steiner.suite);
      ("rc", Test_rc.suite);
      ("sta", Test_sta.suite);
      ("difftimer", Test_difftimer.suite);
      ("wirelength", Test_wirelength.suite);
      ("density", Test_density.suite);
      ("optim", Test_optim.suite);
      ("legalize", Test_legalize.suite);
      ("detailed", Test_detailed.suite);
      ("netweight", Test_netweight.suite);
      ("paths", Test_paths.suite);
      ("workload", Test_workload.suite);
      ("bookshelf", Test_bookshelf.suite);
      ("verilog", Test_verilog.suite);
      ("core", Test_core.suite);
      ("route", Test_route.suite);
      ("cluster", Test_cluster.suite);
      ("viz", Test_viz.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("properties", Test_properties.suite);
      ("report", Test_report.suite) ]
