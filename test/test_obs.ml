(* Tests for the per-kernel observability layer: clock sanity, the
   disabled fast path, span aggregation, non-perturbation of Core.run,
   and the JSONL trace format. *)

let lib = Liberty.Synthetic.default ()

let setup ?(cells = 200) ?(seed = 7) () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = seed; sp_clock_period = 800.0 }
  in
  let design, cons = Workload.generate lib spec in
  (design, Sta.Graph.build design lib cons)

let bits = Int64.bits_of_float

let test_clock_monotonic () =
  let a = Obs.Clock.now_ns () in
  let b = Obs.Clock.now_ns () in
  Alcotest.(check bool) "ns never steps back" true (Int64.compare b a >= 0);
  let t0 = Obs.Clock.now () in
  (* burn a little time so the delta is strictly positive *)
  let acc = ref 0.0 in
  for i = 1 to 100_000 do acc := !acc +. sqrt (float_of_int i) done;
  ignore !acc;
  let t1 = Obs.Clock.now () in
  Alcotest.(check bool) "seconds advance" true (t1 > t0)

let test_disabled_is_noop () =
  Alcotest.(check bool) "disabled" false (Obs.enabled Obs.disabled);
  (* every operation must be a silent no-op on the disabled instance *)
  Obs.start Obs.disabled Obs.Wirelength;
  Obs.stop Obs.disabled Obs.Wirelength;
  Obs.set_iteration Obs.disabled 3;
  Obs.add Obs.disabled "x" 1.0;
  Obs.gauge Obs.disabled "y" 2.0;
  Alcotest.(check int) "no stats" 0 (List.length (Obs.stats Obs.disabled));
  Alcotest.(check int) "no counters" 0
    (List.length (Obs.counters Obs.disabled))

let test_span_aggregation () =
  let obs = Obs.create () in
  Alcotest.(check bool) "enabled" true (Obs.enabled obs);
  (* two calls of a parent span with a nested child in each *)
  for _ = 1 to 2 do
    Obs.start obs Obs.Sta_exact;
    Obs.start obs Obs.Steiner_rebuild;
    let acc = ref 0.0 in
    for i = 1 to 10_000 do acc := !acc +. sqrt (float_of_int i) done;
    ignore !acc;
    Obs.stop obs Obs.Steiner_rebuild;
    Obs.stop obs Obs.Sta_exact
  done;
  let find k =
    match List.find_opt (fun s -> s.Obs.st_kernel = k) (Obs.stats obs) with
    | Some s -> s
    | None -> Alcotest.failf "missing kernel %s" (Obs.kernel_name k)
  in
  let parent = find Obs.Sta_exact and child = find Obs.Steiner_rebuild in
  Alcotest.(check int) "parent calls" 2 parent.Obs.st_calls;
  Alcotest.(check int) "child calls" 2 child.Obs.st_calls;
  Alcotest.(check bool) "child nested in parent" true
    (child.Obs.st_cum <= parent.Obs.st_cum);
  (* self excludes the nested span *)
  Alcotest.(check (float 1e-9)) "self = cum - children"
    (parent.Obs.st_cum -. child.Obs.st_cum)
    parent.Obs.st_self;
  Alcotest.(check bool) "min <= max" true
    (parent.Obs.st_min <= parent.Obs.st_max);
  Alcotest.(check bool) "calls * min <= cum" true
    (float_of_int parent.Obs.st_calls *. parent.Obs.st_min
     <= parent.Obs.st_cum +. 1e-12)

let test_counters_and_gauges () =
  let obs = Obs.create () in
  Obs.add obs "a" 1.5;
  Obs.add obs "a" 2.5;
  Obs.add obs "b" 1.0;
  Obs.gauge obs "g" 10.0;
  Obs.gauge obs "g" 20.0;
  let cs = Obs.counters obs in
  Alcotest.(check (float 1e-12)) "counter accumulates" 4.0
    (List.assoc "a" cs);
  Alcotest.(check (float 1e-12)) "second counter" 1.0 (List.assoc "b" cs);
  Alcotest.(check (float 1e-12)) "gauge overwrites" 20.0 (List.assoc "g" cs)

(* Profiling must not perturb placement: a Core.run with a live recorder
   is bit-identical to the default (disabled) one, in every mode, both
   sequential and pooled. *)
let test_run_not_perturbed () =
  let modes =
    [ ("wl", Core.Wirelength_only);
      ("netweight", Core.Net_weighting Netweight.default_config);
      ("pathweight", Core.Path_weighting Paths.Weight.default_config);
      ("timing", Core.Differentiable_timing Core.default_timing) ]
  in
  List.iter
    (fun (label, mode) ->
      let cfg =
        { Core.default_config with
          Core.mode; max_iterations = 40; min_iterations = 15;
          trace_timing_period = 10 }
      in
      let run ?pool ~obs () =
        let design, graph = setup () in
        let r = Core.run ?pool ~obs cfg graph in
        let pos =
          Array.map
            (fun (c : Netlist.cell) -> (c.Netlist.x, c.Netlist.y))
            design.Netlist.cells
        in
        (r, pos)
      in
      let check_same tag (r1, (pos1 : (float * float) array)) (r2, pos2) =
        Alcotest.(check int)
          (label ^ tag ^ ": iterations")
          r1.Core.res_iterations r2.Core.res_iterations;
        Alcotest.(check bool)
          (label ^ tag ^ ": hpwl bit-identical")
          true
          (bits r1.Core.res_hpwl = bits r2.Core.res_hpwl);
        Array.iteri
          (fun i (x1, y1) ->
            let x2, y2 = pos2.(i) in
            if bits x1 <> bits x2 || bits y1 <> bits y2 then
              Alcotest.failf "%s%s: cell %d position differs" label tag i)
          pos1
      in
      let base = run ~obs:Obs.disabled () in
      let profiled = run ~obs:(Obs.create ~gc:true ()) () in
      check_same " seq" base profiled;
      let pool = Parallel.create ~domains:4 ~oversubscribe:true () in
      let pooled =
        Fun.protect
          ~finally:(fun () -> Parallel.shutdown pool)
          (fun () -> run ~pool ~obs:(Obs.create ()) ())
      in
      check_same " pooled" base pooled)
    modes

(* ---- a tiny JSONL field scanner (the round-trip parser) ---- *)

let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

(* extract the value of ["name": ...] as a raw string (unquoted) *)
let field line name =
  match find_sub line (Printf.sprintf "\"%s\":" name) with
  | None -> None
  | Some i ->
    if i < String.length line && line.[i] = '"' then begin
      let j = String.index_from line (i + 1) '"' in
      Some (String.sub line (i + 1) (j - i - 1))
    end
    else begin
      let j = ref i in
      while
        !j < String.length line && line.[!j] <> ',' && line.[!j] <> '}'
      do
        incr j
      done;
      Some (String.sub line i (!j - i))
    end

let test_jsonl_trace () =
  (* exercise every instrumented kernel against one recorder *)
  let obs = Obs.create ~gc:true () in
  let design, graph = setup () in
  let cfg =
    { Core.default_config with
      Core.mode = Core.Wirelength_only; max_iterations = 20;
      min_iterations = 10 }
  in
  let _ = Core.run ~obs cfg graph in
  let timer = Sta.Timer.create graph in
  let _ = Sta.Timer.run ~obs timer in
  let nets = Sta.Nets.create graph in
  Sta.Nets.refresh ~obs nets;
  let dt = Difftimer.create graph in
  Sta.Nets.rebuild ~obs (Difftimer.nets dt);
  let _ = Difftimer.forward ~obs dt in
  let n = Netlist.num_cells design in
  let gx = Array.make n 0.0 and gy = Array.make n 0.0 in
  Difftimer.backward ~obs dt ~w_tns:1.0 ~w_wns:1.0 ~grad_x:gx ~grad_y:gy;
  let nw = Netweight.create graph in
  let _ = Netweight.update ~obs nw in
  let pw = Paths.Weight.create graph in
  let _ = Paths.Weight.update ~obs pw in
  let view = Paths.analyze ~obs timer in
  let _ = Paths.enumerate ~obs ~k:3 view in
  let _ = Legalize.legalize ~obs design in
  (* incremental STA and the serving-daemon request kernels *)
  let inc = Sta.Incremental.create graph in
  let c = List.hd (Netlist.movable_cells design) in
  Sta.Incremental.touch_cell inc c;
  let _ = Sta.Incremental.update ~obs inc in
  Obs.span obs Obs.Serve_parse (fun () -> ());
  Obs.span obs Obs.Serve_update (fun () -> ());
  Obs.span obs Obs.Serve_query (fun () -> ());
  (* routability kernels: a real demand map, summary and inflation pass *)
  let rudy = Route.Rudy.create design in
  Route.Rudy.update ~obs rudy;
  let _ = Route.overflow ~obs rudy in
  let infl = Route.Inflate.create design in
  let _ =
    Route.Inflate.step ~obs
      { Route.default_config with Route.rt_target = 0.0 }
      infl rudy
  in
  Route.Inflate.restore infl;
  (* the multilevel V-cycle, so the cluster coarsen/interp/refine spans
     reach the trace (min_cells low enough that 200 cells coarsen) *)
  let ml_design, ml_graph = setup ~seed:11 () in
  ignore ml_design;
  let _ =
    Core.run_multilevel ~obs
      ~ml:
        { Core.default_multilevel with
          Core.ml_levels = 2; ml_min_cells = 16 }
      { cfg with Core.max_iterations = 10; min_iterations = 2 }
      ml_graph
  in
  (* a pooled dispatch so the executor's own kernels reach the trace *)
  let pool = Parallel.create ~domains:2 ~oversubscribe:true () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () -> Parallel.parallel_for pool ~obs ~grain:64 1_024 (fun _ -> ()));
  let path = Filename.temp_file "dgp_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.write_trace obs path;
      let lines =
        In_channel.with_open_text path In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      (match lines with
       | meta :: _ ->
         Alcotest.(check (option string)) "meta first" (Some "meta")
           (field meta "ev");
         Alcotest.(check bool) "meta names the clock" true
           (field meta "clock" = Some "monotonic")
       | [] -> Alcotest.fail "empty trace");
      (* every line parses: has an "ev" and is brace-delimited *)
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (l.[0] = '{' && l.[String.length l - 1] = '}');
          if field l "ev" = None then Alcotest.failf "no ev in %s" l)
        lines;
      (* span events balance like a stack, per worker *)
      let depth = Hashtbl.create 4 in
      let last_t = Hashtbl.create 4 in
      let seen = Hashtbl.create 32 in
      List.iter
        (fun l ->
          match field l "ev" with
          | Some "b" | Some "e" ->
            let w = Option.get (field l "w") in
            let k = Option.get (field l "k") in
            let t = float_of_string (Option.get (field l "t")) in
            let prev =
              Option.value ~default:neg_infinity (Hashtbl.find_opt last_t w)
            in
            Alcotest.(check bool) "timestamps non-decreasing per worker"
              true (t >= prev);
            Hashtbl.replace last_t w t;
            let d =
              match Hashtbl.find_opt depth w with
              | Some r -> r
              | None ->
                let r = ref 0 in
                Hashtbl.add depth w r;
                r
            in
            if field l "ev" = Some "b" then begin
              incr d;
              Hashtbl.replace seen k ()
            end
            else begin
              decr d;
              if !d < 0 then Alcotest.failf "unbalanced span close: %s" l
            end
          | _ -> ())
        lines;
      Hashtbl.iter
        (fun w d ->
          if !d <> 0 then
            Alcotest.failf "worker %s left %d spans open" w !d)
        depth;
      (* the trace covers every instrumented kernel *)
      List.iter
        (fun k ->
          let name = Obs.kernel_name k in
          if not (Hashtbl.mem seen name) then
            Alcotest.failf "kernel %s missing from trace" name)
        Obs.all_kernels;
      (* counters and gc gauges made it out *)
      let has_counter name =
        List.exists
          (fun l ->
            (field l "ev" = Some "c" || field l "ev" = Some "g")
            && field l "k" = Some name)
          lines
      in
      Alcotest.(check bool) "legalize counter present" true
        (has_counter "legalize.overfull_cells");
      Alcotest.(check bool) "gc gauge present" true
        (has_counter "gc.minor_words"))

let suite =
  [ Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "span aggregation" `Quick test_span_aggregation;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "profiling does not perturb Core.run" `Slow
      test_run_not_perturbed;
    Alcotest.test_case "jsonl trace" `Quick test_jsonl_trace ]
