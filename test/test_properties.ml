(* Cross-module property tests: invariants that tie the subsystems
   together, checked over randomised designs. *)

let lib = Liberty.Synthetic.default ()

let random_design seed cells =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = seed; sp_inputs = 6;
      sp_outputs = 6; sp_depth = 5; sp_clock_period = 600.0 }
  in
  let design, cons = Workload.generate lib spec in
  (design, Sta.Graph.build design lib cons)

(* LSE dominates max and is monotone in gamma *)
let prop_lse_envelope =
  QCheck2.Test.make ~name:"lse >= max, monotone in gamma" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 6) (float_range (-50.0) 50.0))
        (pair (float_range 0.5 10.0) (float_range 10.0 100.0)))
    (fun (xs, (g1, g2)) ->
      let xs = Array.of_list xs in
      let m = Array.fold_left Float.max neg_infinity xs in
      let l1 = Difftimer.lse ~gamma:g1 xs in
      let l2 = Difftimer.lse ~gamma:g2 xs in
      l1 >= m -. 1e-9 && l2 >= l1 -. 1e-9)

(* the smoothed engine upper-bounds the exact engine on whole designs *)
let prop_smoothed_bounds_exact =
  QCheck2.Test.make ~name:"smoothed AT >= exact AT (random designs)" ~count:8
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let design, graph = random_design seed 120 in
      let timer = Sta.Timer.create graph in
      let _ = Sta.Timer.run timer in
      let dt = Difftimer.create ~gamma:15.0 graph in
      Sta.Nets.rebuild (Difftimer.nets dt);
      let _ = Difftimer.forward dt in
      let ok = ref true in
      for p = 0 to Netlist.num_pins design - 1 do
        List.iter
          (fun tr ->
            let exact = Sta.Timer.at_late timer p tr in
            let smooth = Difftimer.at dt p tr in
            if exact > neg_infinity && smooth < exact -. 1e-6 then ok := false)
          [ Sta.Rise; Sta.Fall ]
      done;
      !ok)

(* Elmore delay is homogeneous of degree 1 in resistance *)
let prop_elmore_linear_in_r =
  QCheck2.Test.make ~name:"elmore delay linear in r_unit" ~count:50
    QCheck2.Gen.(pair (int_range 2 8) (float_range 1.5 4.0))
    (fun (n, k) ->
      let rng = Workload.Rng.create (n * 17) in
      let xs = Array.init n (fun _ -> Workload.Rng.float rng 60.0) in
      let ys = Array.init n (fun _ -> Workload.Rng.float rng 60.0) in
      let pin_caps = Array.init n (fun i -> if i = 0 then 0.0 else 2.0) in
      let tree = Steiner.build ~xs ~ys () in
      let rc1 = Rc.create ~r_unit:0.02 ~c_unit:0.25 ~pin_caps tree in
      let rc2 = Rc.create ~r_unit:(0.02 *. k) ~c_unit:0.25 ~pin_caps tree in
      Rc.evaluate rc1;
      Rc.evaluate rc2;
      let ok = ref true in
      for v = 1 to n - 1 do
        let d1 = Rc.sink_delay rc1 v and d2 = Rc.sink_delay rc2 v in
        if Float.abs (d2 -. (k *. d1)) > 1e-9 *. Float.max 1.0 d2 then
          ok := false
      done;
      !ok)

(* WNS improves by exactly the slack the clock gains *)
let prop_period_shift =
  QCheck2.Test.make ~name:"wns shifts with clock period" ~count:6
    QCheck2.Gen.(pair (int_range 1 500) (float_range 20.0 200.0))
    (fun (seed, delta) ->
      let design, _ = random_design seed 100 in
      let c1 = { Sta.Constraints.default with Sta.Constraints.clock_period = 500.0 } in
      let c2 = { c1 with Sta.Constraints.clock_period = 500.0 +. delta } in
      let wns c =
        let g = Sta.Graph.build design lib c in
        (Sta.Timer.run (Sta.Timer.create g)).Sta.Timer.setup_wns
      in
      Float.abs (wns c2 -. (wns c1 +. delta)) < 1e-6)

(* legalisation always reaches zero overlap at sane utilisations *)
let prop_legalize_sound =
  QCheck2.Test.make ~name:"legalize removes all overlap" ~count:10
    QCheck2.Gen.(pair (int_range 1 100) (float_range 0.2 0.7))
    (fun (seed, util) ->
      let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:50.0 ~hy:50.0 in
      let b = Netlist.Builder.create ~region ~row_height:1.25 "p" in
      let rng = Workload.Rng.create seed in
      let area = ref 0.0 in
      let i = ref 0 in
      while !area < util *. 2500.0 do
        let w = 0.7 +. Workload.Rng.float rng 2.3 in
        ignore
          (Netlist.Builder.add_cell b
             ~name:(Printf.sprintf "c%d" !i)
             ~lib_cell:0 ~width:w ~height:1.25
             ~x:(Workload.Rng.float rng 50.0)
             ~y:(Workload.Rng.float rng 50.0)
             ());
        area := !area +. (w *. 1.25);
        incr i
      done;
      let d = Netlist.Builder.freeze b in
      let _ = Legalize.legalize d in
      Legalize.overlap_area d < 1e-6)

(* the incremental engine always agrees with the full engine *)
let prop_incremental_equivalence =
  QCheck2.Test.make ~name:"incremental = full STA after random moves" ~count:5
    QCheck2.Gen.(int_range 1 300)
    (fun seed ->
      let design, graph = random_design seed 150 in
      let inc = Sta.Incremental.create graph in
      let reference = Sta.Timer.create graph in
      let rng = Workload.Rng.create (seed + 7) in
      let ncells = Netlist.num_cells design in
      let ok = ref true in
      let r = design.Netlist.region in
      for _ = 1 to 4 do
        let c = design.Netlist.cells.(Workload.Rng.int rng ncells) in
        if not c.Netlist.fixed then begin
          (* a random position inside the validated move domain: the
             cell's bbox must stay within the core region *)
          let hw = c.Netlist.width /. 2.0 and hh = c.Netlist.height /. 2.0 in
          Sta.Incremental.move_cell inc c.Netlist.cell_id
            ~x:(Geometry.clamp ~lo:(r.Geometry.Rect.lx +. hw)
                  ~hi:(r.Geometry.Rect.hx -. hw)
                  (1.0 +. Workload.Rng.float rng 40.0))
            ~y:(Geometry.clamp ~lo:(r.Geometry.Rect.ly +. hh)
                  ~hi:(r.Geometry.Rect.hy -. hh)
                  (1.0 +. Workload.Rng.float rng 40.0))
        end;
        let ir = Sta.Incremental.update inc in
        let fr = Sta.Timer.run ~rebuild_trees:false reference in
        if Float.abs (ir.Sta.Timer.setup_tns -. fr.Sta.Timer.setup_tns) > 1e-6
        then ok := false
      done;
      !ok)

(* bookshelf round-trips arbitrary generated designs *)
let prop_bookshelf_roundtrip =
  QCheck2.Test.make ~name:"bookshelf roundtrip (random specs)" ~count:8
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 30 200))
    (fun (seed, cells) ->
      let spec =
        { Workload.default_spec with
          Workload.sp_cells = cells; sp_seed = seed }
      in
      let design, cons = Workload.generate lib spec in
      let s = Bookshelf.to_string design cons in
      let d2, c2 = Bookshelf.of_string lib s in
      String.equal s (Bookshelf.to_string d2 c2))

(* detailed placement monotonically improves HPWL and keeps legality *)
let prop_detailed_refinement =
  QCheck2.Test.make ~name:"detailed refine: monotone hpwl + legality" ~count:5
    QCheck2.Gen.(int_range 1 200)
    (fun seed ->
      let design, _ = random_design seed 200 in
      ignore (Legalize.legalize design);
      let s = Detailed.refine ~passes:2 design in
      s.Detailed.hpwl_after <= s.Detailed.hpwl_before +. 1e-6
      && Legalize.overlap_area design < 1e-6)

(* per-endpoint slack: TNS decomposes over endpoints *)
let prop_tns_decomposition =
  QCheck2.Test.make ~name:"tns = sum of negative endpoint slacks" ~count:6
    QCheck2.Gen.(int_range 1 400)
    (fun seed ->
      let _, graph = random_design seed 150 in
      let report = Sta.Timer.run (Sta.Timer.create graph) in
      let s =
        List.fold_left
          (fun acc (e : Sta.Timer.endpoint_slack) ->
            acc +. Float.min 0.0 e.Sta.Timer.ep_setup_slack)
          0.0 report.Sta.Timer.endpoint_slacks
      in
      Float.abs (s -. report.Sta.Timer.setup_tns) < 1e-6)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lse_envelope;
      prop_smoothed_bounds_exact;
      prop_elmore_linear_in_r;
      prop_period_shift;
      prop_legalize_sound;
      prop_incremental_equivalence;
      prop_bookshelf_roundtrip;
      prop_detailed_refinement;
      prop_tns_decomposition ]
