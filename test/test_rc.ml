(* Tests for the Elmore delay model: closed forms on tiny nets and
   finite-difference validation of the reverse-mode pass. *)

let r_unit = 0.02
let c_unit = 0.25

let test_two_pin_closed_form () =
  (* driver at (0,0), sink at (30,40): L = 70 um.
     R = r L; sink node cap = cL/2 + pin cap; delay = R * load(sink). *)
  let tree = Steiner.build ~xs:[| 0.0; 30.0 |] ~ys:[| 0.0; 40.0 |] () in
  let pin_cap = 3.0 in
  let rc = Rc.create ~r_unit ~c_unit ~pin_caps:[| 0.0; pin_cap |] tree in
  Rc.evaluate rc;
  let len = 70.0 in
  let res = r_unit *. len in
  let sink_load = (c_unit *. len /. 2.0) +. pin_cap in
  Alcotest.(check (float 1e-9)) "delay" (res *. sink_load) (Rc.sink_delay rc 1);
  Alcotest.(check (float 1e-9)) "root load" ((c_unit *. len) +. pin_cap)
    (Rc.root_load rc);
  (* impulse^2 = 2 beta - delay^2 with beta = R * (cap_sink * delay) *)
  let beta = res *. (sink_load *. Rc.sink_delay rc 1) in
  Alcotest.(check (float 1e-6)) "impulse2"
    ((2.0 *. beta) -. (Rc.sink_delay rc 1 ** 2.0))
    (Rc.sink_impulse2 rc 1)

let test_chain_superposition () =
  (* a 3-pin L-shaped net where the middle pin lies on the path:
     driver (0,0), a (10,0), b (20,0): a pure chain, delays add up. *)
  let tree = Steiner.build ~xs:[| 0.0; 10.0; 20.0 |] ~ys:[| 0.0; 0.0; 0.0 |] () in
  let rc = Rc.create ~r_unit ~c_unit ~pin_caps:[| 0.0; 1.0; 2.0 |] tree in
  Rc.evaluate rc;
  let r1 = r_unit *. 10.0 and r2 = r_unit *. 10.0 in
  let cap_a = (c_unit *. 10.0) +. 1.0 (* half of both adjacent wires *) in
  let cap_b = (c_unit *. 5.0) +. 2.0 in
  let load_b = cap_b in
  let load_a = cap_a +. cap_b in
  Alcotest.(check (float 1e-9)) "delay a" (r1 *. load_a) (Rc.sink_delay rc 1);
  Alcotest.(check (float 1e-9)) "delay b"
    ((r1 *. load_a) +. (r2 *. load_b))
    (Rc.sink_delay rc 2)

let test_delays_nonnegative_and_monotone () =
  let rng = Workload.Rng.create 5 in
  for _ = 1 to 50 do
    let n = 2 + Workload.Rng.int rng 8 in
    let xs = Array.init n (fun _ -> Workload.Rng.float rng 100.0) in
    let ys = Array.init n (fun _ -> Workload.Rng.float rng 100.0) in
    let tree = Steiner.build ~xs ~ys () in
    let pin_caps = Array.init n (fun i -> if i = 0 then 0.0 else 1.0) in
    let rc = Rc.create ~r_unit ~c_unit ~pin_caps tree in
    Rc.evaluate rc;
    for v = 0 to Steiner.node_count tree - 1 do
      if Rc.sink_delay rc v < -1e-12 then Alcotest.fail "negative delay";
      if Rc.sink_impulse2 rc v < 0.0 then Alcotest.fail "negative impulse2";
      (* delay grows monotonically away from the driver *)
      let p = tree.Steiner.parent.(v) in
      if p >= 0 && Rc.sink_delay rc v < Rc.sink_delay rc p -. 1e-12 then
        Alcotest.fail "delay not monotone along tree"
    done
  done

let test_root_load_is_total_cap () =
  let rng = Workload.Rng.create 6 in
  let n = 7 in
  let xs = Array.init n (fun _ -> Workload.Rng.float rng 50.0) in
  let ys = Array.init n (fun _ -> Workload.Rng.float rng 50.0) in
  let tree = Steiner.build ~xs ~ys () in
  let pin_caps = Array.init n (fun i -> float_of_int i *. 0.5) in
  let rc = Rc.create ~r_unit ~c_unit ~pin_caps tree in
  Rc.evaluate rc;
  let total_pin_cap = Array.fold_left ( +. ) 0.0 pin_caps in
  let total_wire_cap = c_unit *. Steiner.total_length tree in
  Alcotest.(check (float 1e-9)) "root load" (total_pin_cap +. total_wire_cap)
    (Rc.root_load rc)

let test_zero_length_net () =
  let tree = Steiner.build ~xs:[| 5.0; 5.0 |] ~ys:[| 5.0; 5.0 |] () in
  let rc = Rc.create ~r_unit ~c_unit ~pin_caps:[| 0.0; 2.0 |] tree in
  Rc.evaluate rc;
  Alcotest.(check (float 1e-12)) "zero delay" 0.0 (Rc.sink_delay rc 1);
  Alcotest.(check (float 1e-12)) "load is pin cap" 2.0 (Rc.root_load rc)

(* reverse mode vs finite differences on random nets and random
   objective weights over delays / impulses / root load *)
let prop_backward_matches_fd =
  QCheck2.Test.make ~name:"rc backward = finite differences" ~count:60
    QCheck2.Gen.(int_range 2 8)
    (fun n ->
      let rng = Workload.Rng.create ((n * 7919) + 3) in
      let xs = Array.init n (fun _ -> 1.0 +. Workload.Rng.float rng 90.0) in
      let ys = Array.init n (fun _ -> 1.0 +. Workload.Rng.float rng 90.0) in
      let tree = Steiner.build ~xs ~ys () in
      let pin_caps =
        Array.init n (fun i -> if i = 0 then 0.0 else 0.5 +. Workload.Rng.float rng 3.0)
      in
      let rc = Rc.create ~r_unit ~c_unit ~pin_caps tree in
      let a = Array.init n (fun _ -> Workload.Rng.float rng 1.0) in
      let bw = Array.init n (fun _ -> Workload.Rng.float rng 0.05) in
      let cw = Workload.Rng.float rng 1.0 in
      let f () =
        Steiner.update_coordinates tree ~xs ~ys;
        Rc.evaluate rc;
        let acc = ref (cw *. Rc.root_load rc) in
        for i = 1 to n - 1 do
          acc := !acc +. (a.(i) *. Rc.sink_delay rc i)
                 +. (bw.(i) *. Rc.sink_impulse2 rc i)
        done;
        !acc
      in
      ignore (f ());
      let nn = Steiner.node_count tree in
      let g_delay = Array.make nn 0.0 and g_i2 = Array.make nn 0.0 in
      for i = 1 to n - 1 do
        g_delay.(i) <- a.(i);
        g_i2.(i) <- bw.(i)
      done;
      let ngx = Array.make nn 0.0 and ngy = Array.make nn 0.0 in
      Rc.backward rc ~g_delay ~g_impulse2:g_i2 ~g_root_load:cw ~node_gx:ngx
        ~node_gy:ngy;
      let pgx = Array.make n 0.0 and pgy = Array.make n 0.0 in
      Steiner.accumulate_pin_gradient tree ~node_gx:ngx ~node_gy:ngy
        ~pin_gx:pgx ~pin_gy:pgy;
      let h = 1e-6 in
      let ok = ref true in
      for i = 0 to n - 1 do
        let x0 = xs.(i) in
        xs.(i) <- x0 +. h;
        let fp = f () in
        xs.(i) <- x0 -. h;
        let fm = f () in
        xs.(i) <- x0;
        let fd = (fp -. fm) /. (2.0 *. h) in
        if Float.abs (fd -. pgx.(i)) > 1e-5 *. Float.max 1.0 (Float.abs fd)
        then ok := false
      done;
      ignore (f ());
      !ok)

let test_backward_size_checks () =
  let tree = Steiner.build ~xs:[| 0.0; 1.0 |] ~ys:[| 0.0; 1.0 |] () in
  let rc = Rc.create ~r_unit ~c_unit ~pin_caps:[| 0.0; 1.0 |] tree in
  Rc.evaluate rc;
  let n = Steiner.node_count tree in
  (* undersized buffers must still be rejected *)
  (match
     Rc.backward rc
       ~g_delay:(Array.make (n - 1) 0.0)
       ~g_impulse2:(Array.make n 0.0) ~g_root_load:0.0
       ~node_gx:(Array.make n 0.0) ~node_gy:(Array.make n 0.0)
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size check");
  (* oversized shared buffers are accepted (scratch reuse across nets) *)
  Rc.backward rc
    ~g_delay:(Array.make (n + 7) 0.0)
    ~g_impulse2:(Array.make (n + 3) 0.0)
    ~g_root_load:0.0
    ~node_gx:(Array.make (n + 1) 0.0)
    ~node_gy:(Array.make (n + 5) 0.0)

let test_create_size_check () =
  let tree = Steiner.build ~xs:[| 0.0; 1.0 |] ~ys:[| 0.0; 1.0 |] () in
  match Rc.create ~r_unit ~c_unit ~pin_caps:[| 0.0 |] tree with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size check"

let suite =
  [ Alcotest.test_case "two-pin closed form" `Quick test_two_pin_closed_form;
    Alcotest.test_case "chain superposition" `Quick test_chain_superposition;
    Alcotest.test_case "delays nonneg and monotone" `Quick
      test_delays_nonnegative_and_monotone;
    Alcotest.test_case "root load = total cap" `Quick test_root_load_is_total_cap;
    Alcotest.test_case "zero-length net" `Quick test_zero_length_net;
    Alcotest.test_case "backward size checks" `Quick test_backward_size_checks;
    Alcotest.test_case "create size check" `Quick test_create_size_check;
    QCheck_alcotest.to_alcotest prop_backward_matches_fd ]
