(* Integration tests for the placement framework. *)

let lib = Liberty.Synthetic.default ()

let quick_config =
  { Core.default_config with
    Core.max_iterations = 140; min_iterations = 40; stop_overflow = 0.15 }

let setup ?(cells = 400) ?(seed = 1) () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = seed; sp_clock_period = 800.0 }
  in
  let design, cons = Workload.generate lib spec in
  (design, Sta.Graph.build design lib cons)

let test_wirelength_mode_spreads_and_shortens () =
  let design, graph = setup () in
  let result =
    Core.run { quick_config with Core.mode = Core.Wirelength_only } graph
  in
  Alcotest.(check bool) "ran some iterations" true
    (result.Core.res_iterations >= 40);
  Alcotest.(check bool) "overflow reduced" true (result.Core.res_overflow < 0.5);
  Alcotest.(check bool) "no timing mode" true
    (result.Core.res_timing_active_at = None);
  (* cells stay inside the region *)
  let region = design.Netlist.region in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        if c.Netlist.x < region.Geometry.Rect.lx -. 1e-9
           || c.Netlist.x > region.Geometry.Rect.hx +. 1e-9
           || c.Netlist.y < region.Geometry.Rect.ly -. 1e-9
           || c.Netlist.y > region.Geometry.Rect.hy +. 1e-9
        then Alcotest.fail "cell escaped the region"
      end)
    design.Netlist.cells

let test_trace_structure () =
  let _, graph = setup ~seed:2 () in
  let result =
    Core.run { quick_config with Core.mode = Core.Wirelength_only } graph
  in
  let trace = result.Core.res_trace in
  Alcotest.(check int) "one point per iteration" result.Core.res_iterations
    (List.length trace);
  (* iterations are chronological starting at 0 *)
  List.iteri
    (fun i (p : Core.trace_point) ->
      Alcotest.(check int) "iteration order" i p.Core.tp_iteration)
    trace;
  (* overflow at the end is below the start (cells spread) *)
  match trace with
  | first :: _ ->
    let last = List.nth trace (List.length trace - 1) in
    Alcotest.(check bool) "overflow decreases" true
      (last.Core.tp_overflow < first.Core.tp_overflow)
  | [] -> Alcotest.fail "empty trace"

let test_timing_mode_activates_and_improves () =
  let seed = 3 in
  let _, graph_wl = setup ~seed () in
  let wl_result =
    Core.run { quick_config with Core.mode = Core.Wirelength_only } graph_wl
  in
  ignore wl_result;
  let wl_report, _ = Core.score graph_wl in
  let _, graph_t = setup ~seed () in
  let t_result =
    Core.run
      { quick_config with
        Core.mode = Core.Differentiable_timing Core.default_timing }
      graph_t
  in
  let t_report, _ = Core.score graph_t in
  Alcotest.(check bool) "timing activated" true
    (t_result.Core.res_timing_active_at <> None);
  Alcotest.(check bool) "wns improves over baseline" true
    (t_report.Sta.Timer.setup_wns > wl_report.Sta.Timer.setup_wns);
  Alcotest.(check bool) "tns improves over baseline" true
    (t_report.Sta.Timer.setup_tns > wl_report.Sta.Timer.setup_tns)

let test_netweight_mode_updates_weights () =
  let design, graph = setup ~seed:4 () in
  let _ =
    Core.run
      { quick_config with
        Core.mode = Core.Net_weighting Netweight.default_config }
      graph
  in
  let weighted =
    Array.exists
      (fun (net : Netlist.net) -> net.Netlist.weight > 1.0 +. 1e-9)
      design.Netlist.nets
  in
  Alcotest.(check bool) "some weights raised" true weighted

let test_keep_init () =
  let design, graph = setup ~seed:5 () in
  (* place all cells somewhere specific and keep *)
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        c.Netlist.x <- 10.0;
        c.Netlist.y <- 10.0
      end)
    design.Netlist.cells;
  let cfg =
    { quick_config with
      Core.mode = Core.Wirelength_only; max_iterations = 1; min_iterations = 0 }
  in
  let _ = Core.run { cfg with Core.init = `Keep } graph in
  (* after a single iteration from `Keep, cells are still near (10,10) *)
  let c = design.Netlist.cells.(List.hd (Netlist.movable_cells design)) in
  Alcotest.(check bool) "stayed near start" true
    (Float.abs (c.Netlist.x -. 10.0) < 5.0)

let test_trace_timing_period () =
  let _, graph = setup ~seed:6 () in
  let cfg =
    { quick_config with
      Core.mode = Core.Wirelength_only; trace_timing_period = 20;
      max_iterations = 45; min_iterations = 0; stop_overflow = 0.0 }
  in
  let result = Core.run cfg graph in
  (* STA runs at iterations 0, 20, 40; every other point carries the
     last measurement forward, so no point is ever absent... *)
  Alcotest.(check bool) "every point has a wns" true
    (List.for_all
       (fun (p : Core.trace_point) -> p.Core.tp_wns <> None)
       result.Core.res_trace);
  (* ...and the trace holds at most three distinct runs of values. *)
  let runs =
    List.fold_left
      (fun (runs, prev) (p : Core.trace_point) ->
        if Some p.Core.tp_wns = prev then (runs, prev)
        else (runs + 1, Some p.Core.tp_wns))
      (0, None) result.Core.res_trace
    |> fst
  in
  Alcotest.(check bool) "between 2 and 3 measurement runs" true
    (runs >= 2 && runs <= 3)

let test_grad_clip_and_adaptive_growth () =
  (* the future-work extensions run end to end and still beat the
     wirelength-only baseline on timing *)
  let seed = 9 in
  let _, graph_wl = setup ~seed () in
  let _ = Core.run { quick_config with Core.mode = Core.Wirelength_only } graph_wl in
  let wl_report, _ = Core.score graph_wl in
  let variant tc =
    let _, graph = setup ~seed () in
    let r =
      Core.run
        { quick_config with Core.mode = Core.Differentiable_timing tc }
        graph
    in
    Alcotest.(check bool) "activated" true (r.Core.res_timing_active_at <> None);
    let report, _ = Core.score graph in
    Alcotest.(check bool) "beats baseline tns" true
      (report.Sta.Timer.setup_tns > wl_report.Sta.Timer.setup_tns)
  in
  variant { Core.default_timing with Core.grad_clip = Some 3.0 };
  variant { Core.default_timing with Core.growth_policy = `Adaptive }

let test_score_consistency () =
  let design, graph = setup ~seed:7 () in
  let report, hpwl = Core.score graph in
  Alcotest.(check (float 1e-9)) "hpwl matches netlist" (Netlist.total_hpwl design) hpwl;
  Alcotest.(check bool) "wns finite" true (Float.is_finite report.Sta.Timer.setup_wns)

let test_deterministic_runs () =
  let run () =
    let _, graph = setup ~seed:8 () in
    let r = Core.run { quick_config with Core.mode = Core.Wirelength_only } graph in
    (r.Core.res_hpwl, r.Core.res_iterations)
  in
  let h1, i1 = run () and h2, i2 = run () in
  Alcotest.(check int) "same iterations" i1 i2;
  Alcotest.(check (float 1e-9)) "same hpwl" h1 h2

let bits = Int64.bits_of_float

let all_modes =
  (* the timing mode activates immediately so short runs still exercise
     the forward/backward pipeline *)
  [ ("wirelength", Core.Wirelength_only);
    ("netweight", Core.Net_weighting Netweight.default_config);
    ("pathweight", Core.Path_weighting Paths.Weight.default_config);
    ("difftimer",
     Core.Differentiable_timing
       { Core.default_timing with Core.activation_overflow = 10.0 }) ]

let test_pooled_run_bit_identical () =
  (* a pooled Core.run must reproduce the sequential one bit for bit —
     final metrics, every cell position and every trace point — in each
     of the four placement modes, at every domain count, and with the
     profiler recording (the --profile path) *)
  List.iter
    (fun (label, mode) ->
      let cfg =
        { quick_config with
          Core.mode; trace_timing_period = 10; max_iterations = 60;
          min_iterations = 20 }
      in
      let run ?obs pool =
        let design, graph = setup ~cells:300 ~seed:14 () in
        let r = Core.run ?pool ?obs cfg graph in
        let pos =
          Array.map
            (fun (c : Netlist.cell) -> (c.Netlist.x, c.Netlist.y))
            design.Netlist.cells
        in
        (r, pos)
      in
      let r1, pos1 = run None in
      let check_same tag (rd, posd) =
        Alcotest.(check int) (label ^ tag ^ ": same iterations")
          r1.Core.res_iterations rd.Core.res_iterations;
        Alcotest.(check bool) (label ^ tag ^ ": hpwl bit-identical") true
          (bits r1.Core.res_hpwl = bits rd.Core.res_hpwl);
        Alcotest.(check bool) (label ^ tag ^ ": overflow bit-identical") true
          (bits r1.Core.res_overflow = bits rd.Core.res_overflow);
        Array.iteri
          (fun i (x1, y1) ->
            let xd, yd = posd.(i) in
            if bits x1 <> bits xd || bits y1 <> bits yd then
              Alcotest.failf "%s%s: cell %d position differs" label tag i)
          pos1;
        List.iter2
          (fun (p1 : Core.trace_point) (pd : Core.trace_point) ->
            if p1 <> pd then
              Alcotest.failf "%s%s: trace point %d differs" label tag
                p1.Core.tp_iteration)
          r1.Core.res_trace rd.Core.res_trace
      in
      let with_pool ~domains f =
        let pool = Parallel.create ~domains ~oversubscribe:true () in
        Fun.protect
          ~finally:(fun () -> Parallel.shutdown pool)
          (fun () -> f pool)
      in
      List.iter
        (fun domains ->
          check_same
            (Printf.sprintf " @%dd" domains)
            (with_pool ~domains (fun pool -> run (Some pool))))
        [ 1; 2; 4; 8 ];
      (* and with a live recorder on the pooled run (--profile) *)
      check_same " @4d+profile"
        (with_pool ~domains:4 (fun pool ->
           run ~obs:(Obs.create ()) (Some pool))))
    all_modes

let test_trace_never_nan () =
  (* the carried-forward wns/tns must never surface a NaN, in any mode *)
  List.iter
    (fun (label, mode) ->
      let cfg =
        { quick_config with
          Core.mode; trace_timing_period = 7; max_iterations = 40;
          min_iterations = 10; stop_overflow = 0.0 }
      in
      let _, graph = setup ~cells:250 ~seed:15 () in
      let r = Core.run cfg graph in
      let measured = ref 0 in
      List.iter
        (fun (p : Core.trace_point) ->
          (match p.Core.tp_wns with
           | Some v when Float.is_nan v ->
             Alcotest.failf "%s: NaN wns at iteration %d" label
               p.Core.tp_iteration
           | Some _ -> incr measured
           | None -> ());
          match p.Core.tp_tns with
          | Some v when Float.is_nan v ->
            Alcotest.failf "%s: NaN tns at iteration %d" label
              p.Core.tp_iteration
          | Some _ | None -> ())
        r.Core.res_trace;
      Alcotest.(check bool) (label ^ ": trace has measurements") true
        (!measured > 0))
    all_modes

let suite =
  [ Alcotest.test_case "wirelength mode spreads" `Slow
      test_wirelength_mode_spreads_and_shortens;
    Alcotest.test_case "trace structure" `Slow test_trace_structure;
    Alcotest.test_case "timing mode activates and improves" `Slow
      test_timing_mode_activates_and_improves;
    Alcotest.test_case "net weighting updates weights" `Slow
      test_netweight_mode_updates_weights;
    Alcotest.test_case "keep init" `Quick test_keep_init;
    Alcotest.test_case "trace timing period" `Slow test_trace_timing_period;
    Alcotest.test_case "grad clip and adaptive growth" `Slow
      test_grad_clip_and_adaptive_growth;
    Alcotest.test_case "score consistency" `Quick test_score_consistency;
    Alcotest.test_case "deterministic runs" `Slow test_deterministic_runs ]

let test_optimizer_variants () =
  (* every optimiser drives the placement loop without diverging *)
  List.iter
    (fun (label, algorithm, lr) ->
      let _, graph = setup ~cells:250 ~seed:11 () in
      let cfg =
        { quick_config with
          Core.mode = Core.Wirelength_only; optimizer = algorithm;
          learning_rate = lr; max_iterations = 80; min_iterations = 20 }
      in
      let r = Core.run cfg graph in
      Alcotest.(check bool) (label ^ " runs") true (r.Core.res_iterations >= 20);
      Alcotest.(check bool) (label ^ " finite hpwl") true
        (Float.is_finite r.Core.res_hpwl);
      match r.Core.res_trace with
      | first :: _ ->
        let last = List.nth r.Core.res_trace (List.length r.Core.res_trace - 1) in
        Alcotest.(check bool) (label ^ " spreads") true
          (last.Core.tp_overflow < first.Core.tp_overflow)
      | [] -> Alcotest.fail "no trace")
    [ ("adam", Optim.adam, None);
      ("nesterov", Optim.Nesterov { beta = 0.9 }, Some 0.02);
      ("bb", Optim.Barzilai_borwein { fallback = 0.1 }, Some 0.05) ]

let test_config_options_smoke () =
  let _, graph = setup ~cells:200 ~seed:12 () in
  let cfg =
    { quick_config with
      Core.mode = Core.Wirelength_only;
      density_bins = Some 32;
      wirelength_gamma = Some 2.5;
      learning_rate = Some 0.3;
      lr_decay = 0.995;
      target_density = 0.9;
      max_iterations = 60; min_iterations = 10 }
  in
  let r = Core.run cfg graph in
  Alcotest.(check bool) "runs with explicit options" true
    (r.Core.res_iterations >= 10)

let suite =
  suite
  @ [ Alcotest.test_case "optimizer variants" `Slow test_optimizer_variants;
      Alcotest.test_case "config options smoke" `Quick test_config_options_smoke;
      Alcotest.test_case "pooled run bit-identical" `Slow
        test_pooled_run_bit_identical;
      Alcotest.test_case "trace never nan" `Slow test_trace_never_nan ]

let test_steiner_dirty_zero_matches_full () =
  (* the dirty-net classifier at threshold 0 must not change the
     placement trajectory at all vs unconditional rebuilds *)
  let run steiner_dirty =
    let design, graph = setup ~cells:300 ~seed:9 () in
    let cfg =
      { quick_config with
        Core.max_iterations = 60; min_iterations = 30;
        mode =
          Core.Differentiable_timing
            { Core.default_timing with
              Core.activation_overflow = 10.0; steiner_dirty } }
    in
    let r = Core.run cfg graph in
    (r,
     Array.map (fun (c : Netlist.cell) -> (bits c.Netlist.x, bits c.Netlist.y))
       design.Netlist.cells)
  in
  let r0, pos0 = run None in
  let r1, pos1 = run (Some 0.0) in
  Alcotest.(check int) "same iterations" r0.Core.res_iterations
    r1.Core.res_iterations;
  Alcotest.(check bool) "hpwl bit-identical" true
    (bits r0.Core.res_hpwl = bits r1.Core.res_hpwl);
  Array.iteri
    (fun i p -> if p <> pos1.(i) then Alcotest.failf "cell %d differs" i)
    pos0

let suite =
  suite
  @ [ Alcotest.test_case "steiner_dirty 0 = full rebuild placement" `Quick
        test_steiner_dirty_zero_matches_full ]
