(* Tests for the multilevel clustering subsystem: coarsening
   invariants (area conservation, prolongation partition, net
   contraction), determinism across domain counts, interpolation
   geometry, and the V-cycle driver's flat-equivalence contract. *)

let lib = Liberty.Synthetic.default ()

let setup ?(cells = 400) ?(seed = 3) () =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = seed; sp_clock_period = 800.0 }
  in
  let design, cons = Workload.generate lib spec in
  (design, Sta.Graph.build design lib cons)

let movable_area d =
  Array.fold_left
    (fun acc (c : Netlist.cell) ->
      if c.Netlist.fixed then acc
      else acc +. (c.Netlist.width *. c.Netlist.height))
    0.0 d.Netlist.cells

let count_movable d =
  Array.fold_left
    (fun acc (c : Netlist.cell) -> if c.Netlist.fixed then acc else acc + 1)
    0 d.Netlist.cells

let test_area_conserved () =
  let design, _ = setup () in
  let lvls = Cluster.build ~levels:3 ~min_cells:8 design in
  Alcotest.(check bool) "at least one level" true (List.length lvls >= 1);
  List.iter
    (fun (lvl : Cluster.level) ->
      let fa = movable_area lvl.Cluster.fine
      and ca = movable_area lvl.Cluster.coarse in
      Alcotest.(check bool)
        (Printf.sprintf "movable area conserved (%g vs %g)" fa ca)
        true
        (Float.abs (fa -. ca) <= 1e-6 *. Float.max 1.0 fa))
    lvls

let test_prolongation_partition () =
  let design, _ = setup () in
  let lvls = Cluster.build ~levels:2 ~min_cells:8 design in
  List.iter
    (fun (lvl : Cluster.level) ->
      let fine = lvl.Cluster.fine and coarse = lvl.Cluster.coarse in
      let nc = Array.length coarse.Netlist.cells in
      Alcotest.(check int) "parent per fine cell"
        (Array.length fine.Netlist.cells)
        (Array.length lvl.Cluster.parent);
      (* every fine cell maps to exactly one valid coarse cell *)
      Array.iteri
        (fun i p ->
          if p < 0 || p >= nc then
            Alcotest.failf "fine cell %d has invalid parent %d" i p)
        lvl.Cluster.parent;
      (* fixed cells pass through 1:1 onto fixed coarse cells, movable
         cells land on movable clusters *)
      Array.iteri
        (fun i (c : Netlist.cell) ->
          let pc = coarse.Netlist.cells.(lvl.Cluster.parent.(i)) in
          Alcotest.(check bool) "fixedness preserved" c.Netlist.fixed
            pc.Netlist.fixed)
        fine.Netlist.cells;
      (* the map is a partition: the union of member counts covers the
         fine design and every coarse cell has at least one member *)
      let members = Array.make nc 0 in
      Array.iter
        (fun p -> members.(p) <- members.(p) + 1)
        lvl.Cluster.parent;
      Array.iteri
        (fun p m ->
          if m = 0 then Alcotest.failf "coarse cell %d has no members" p)
        members;
      Alcotest.(check int) "movable counts reduce" (count_movable coarse)
        (Array.to_list fine.Netlist.cells
        |> List.mapi (fun i (c : Netlist.cell) -> (i, c))
        |> List.filter (fun (_, (c : Netlist.cell)) -> not c.Netlist.fixed)
        |> List.map (fun (i, _) -> lvl.Cluster.parent.(i))
        |> List.sort_uniq compare |> List.length))
    lvls

let test_net_contraction () =
  let design, _ = setup () in
  match Cluster.coarsen design with
  | None -> Alcotest.fail "coarsening failed on a 400-cell design"
  | Some lvl ->
    let coarse = lvl.Cluster.coarse in
    Array.iter
      (fun (net : Netlist.net) ->
        let pins = net.Netlist.net_pins in
        Alcotest.(check bool) "no degenerate coarse nets" true
          (Array.length pins >= 2);
        (* one coarse pin per (net, cluster): no duplicate cells *)
        let cells =
          Array.to_list pins
          |> List.map (fun p -> coarse.Netlist.pins.(p).Netlist.cell)
        in
        Alcotest.(check int) "one pin per cluster per net"
          (List.length cells)
          (List.length (List.sort_uniq compare cells)))
      coarse.Netlist.nets

let positions d = Array.map (fun (c : Netlist.cell) -> c.Netlist.x) d.Netlist.cells,
                  Array.map (fun (c : Netlist.cell) -> c.Netlist.y) d.Netlist.cells

let check_identical name (xs1, ys1) (xs2, ys2) =
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float xs2.(i)
         || Int64.bits_of_float ys1.(i) <> Int64.bits_of_float ys2.(i)
      then Alcotest.failf "%s: cell %d differs" name i)
    xs1

let test_coarsen_deterministic_across_domains () =
  (* the coarsening pass itself takes no pool, but the contract is that
     the whole clustering stage is invariant to how the rest of the
     session is parallelised: build twice (once while a 4-domain pool
     is alive and busy) and compare the coarse netlists exactly *)
  let design1, _ = setup () in
  let design2, _ = setup () in
  let lvls1 = Cluster.build ~levels:2 ~min_cells:8 design1 in
  let pool = Parallel.create ~domains:4 ~oversubscribe:true () in
  let lvls2 =
    Fun.protect
      ~finally:(fun () -> Parallel.shutdown pool)
      (fun () ->
        Parallel.parallel_for pool ~grain:16 256 (fun _ -> ());
        Cluster.build ~levels:2 ~min_cells:8 design2)
  in
  Alcotest.(check int) "same level count" (List.length lvls1)
    (List.length lvls2);
  List.iter2
    (fun (a : Cluster.level) (b : Cluster.level) ->
      Alcotest.(check int) "same coarse size"
        (Array.length a.Cluster.coarse.Netlist.cells)
        (Array.length b.Cluster.coarse.Netlist.cells);
      Alcotest.(check bool) "same parents" true
        (a.Cluster.parent = b.Cluster.parent);
      check_identical "coarse seed positions"
        (positions a.Cluster.coarse)
        (positions b.Cluster.coarse))
    lvls1 lvls2

let test_interpolate_geometry () =
  let design, _ = setup () in
  match Cluster.coarsen design with
  | None -> Alcotest.fail "coarsening failed"
  | Some lvl ->
    (* scatter the coarse placement deterministically, then prolongate *)
    let region = design.Netlist.region in
    Array.iteri
      (fun i (c : Netlist.cell) ->
        if not c.Netlist.fixed then begin
          c.Netlist.x <-
            region.Geometry.Rect.lx
            +. (float_of_int ((i * 37) mod 101) /. 101.0)
               *. Geometry.Rect.width region;
          c.Netlist.y <-
            region.Geometry.Rect.ly
            +. (float_of_int ((i * 61) mod 89) /. 89.0)
               *. Geometry.Rect.height region
        end)
      lvl.Cluster.coarse.Netlist.cells;
    Cluster.interpolate lvl;
    (* every movable fine cell lies inside the region *)
    Array.iter
      (fun (c : Netlist.cell) ->
        if not c.Netlist.fixed then begin
          Alcotest.(check bool) "x in region" true
            (c.Netlist.x >= region.Geometry.Rect.lx
             && c.Netlist.x <= region.Geometry.Rect.hx);
          Alcotest.(check bool) "y in region" true
            (c.Netlist.y >= region.Geometry.Rect.ly
             && c.Netlist.y <= region.Geometry.Rect.hy)
        end)
      lvl.Cluster.fine.Netlist.cells;
    (* unclamped clusters: area-weighted centroid of the members sits
       on the cluster center (the interpolation's mean correction) *)
    let coarse = lvl.Cluster.coarse in
    let nc = Array.length coarse.Netlist.cells in
    let sx = Array.make nc 0.0
    and sy = Array.make nc 0.0
    and sa = Array.make nc 0.0 in
    Array.iteri
      (fun i (c : Netlist.cell) ->
        if not c.Netlist.fixed then begin
          let a = c.Netlist.width *. c.Netlist.height in
          let p = lvl.Cluster.parent.(i) in
          sx.(p) <- sx.(p) +. (a *. c.Netlist.x);
          sy.(p) <- sy.(p) +. (a *. c.Netlist.y);
          sa.(p) <- sa.(p) +. a
        end)
      lvl.Cluster.fine.Netlist.cells;
    let checked = ref 0 in
    Array.iteri
      (fun p (pc : Netlist.cell) ->
        if (not pc.Netlist.fixed) && sa.(p) > 0.0 then begin
          let cx = sx.(p) /. sa.(p) and cy = sy.(p) /. sa.(p) in
          (* the mean correction is exact unless the region clamp moved
             a member; accept clusters away from the border only *)
          let hw = pc.Netlist.width and hh = pc.Netlist.height in
          let interior =
            pc.Netlist.x -. hw > region.Geometry.Rect.lx
            && pc.Netlist.x +. hw < region.Geometry.Rect.hx
            && pc.Netlist.y -. hh > region.Geometry.Rect.ly
            && pc.Netlist.y +. hh < region.Geometry.Rect.hy
          in
          if interior then begin
            incr checked;
            Alcotest.(check bool)
              (Printf.sprintf "centroid on cluster %d center" p)
              true
              (Float.abs (cx -. pc.Netlist.x) <= 1e-6 *. hw
               && Float.abs (cy -. pc.Netlist.y) <= 1e-6 *. hh)
          end
        end)
      coarse.Netlist.cells;
    Alcotest.(check bool) "some interior clusters checked" true (!checked > 0)

let test_single_level_is_flat () =
  (* ml_levels = 1 must be Core.run, bit for bit *)
  let design1, graph1 = setup () in
  let design2, graph2 = setup () in
  let cfg =
    { Core.default_config with
      Core.mode = Core.Wirelength_only; max_iterations = 30;
      min_iterations = 5 }
  in
  let r1 = Core.run cfg graph1 in
  let r2 =
    Core.run_multilevel
      ~ml:{ Core.default_multilevel with Core.ml_levels = 1 }
      cfg graph2
  in
  Alcotest.(check int) "same iterations" r1.Core.res_iterations
    r2.Core.res_iterations;
  Alcotest.(check bool) "same hpwl" true
    (Int64.bits_of_float r1.Core.res_hpwl
     = Int64.bits_of_float r2.Core.res_hpwl);
  check_identical "flat vs 1-level positions" (positions design1)
    (positions design2)

let test_vcycle_deterministic_across_domains () =
  (* the full V-cycle — coarsen, coarse anneal, interpolate, refines —
     must be bit-identical sequential vs pooled *)
  let design1, graph1 = setup () in
  let design2, graph2 = setup () in
  let cfg =
    { Core.default_config with
      Core.mode = Core.Wirelength_only; max_iterations = 40;
      min_iterations = 5 }
  in
  let ml =
    { Core.default_multilevel with Core.ml_levels = 2; ml_min_cells = 16 }
  in
  let r1 = Core.run_multilevel ~ml cfg graph1 in
  let pool = Parallel.create ~domains:4 ~oversubscribe:true () in
  let r2 =
    Fun.protect
      ~finally:(fun () -> Parallel.shutdown pool)
      (fun () -> Core.run_multilevel ~pool ~ml cfg graph2)
  in
  Alcotest.(check int) "same iterations" r1.Core.res_iterations
    r2.Core.res_iterations;
  Alcotest.(check bool) "same hpwl" true
    (Int64.bits_of_float r1.Core.res_hpwl
     = Int64.bits_of_float r2.Core.res_hpwl);
  check_identical "sequential vs pooled positions" (positions design1)
    (positions design2)

let test_vcycle_reaches_target () =
  (* sanity: the V-cycle actually places — overflow at or near the flat
     engine's stop target, HPWL finite and positive *)
  let _, graph = setup ~cells:600 () in
  let cfg =
    { Core.default_config with
      Core.mode = Core.Wirelength_only; max_iterations = 200;
      min_iterations = 5 }
  in
  let r =
    Core.run_multilevel
      ~ml:{ Core.default_multilevel with Core.ml_levels = 2; ml_min_cells = 16 }
      cfg graph
  in
  Alcotest.(check bool) "positive hpwl" true (r.Core.res_hpwl > 0.0);
  Alcotest.(check bool) "overflow reached or budget spent" true
    (r.Core.res_overflow <= 1.5 *. cfg.Core.stop_overflow
     || r.Core.res_iterations >= 200)

let suite =
  [ Alcotest.test_case "area conserved per level" `Quick test_area_conserved;
    Alcotest.test_case "prolongation is a partition" `Quick
      test_prolongation_partition;
    Alcotest.test_case "net contraction" `Quick test_net_contraction;
    Alcotest.test_case "coarsening deterministic across domains" `Quick
      test_coarsen_deterministic_across_domains;
    Alcotest.test_case "interpolation geometry" `Quick
      test_interpolate_geometry;
    Alcotest.test_case "1-level V-cycle is the flat engine" `Slow
      test_single_level_is_flat;
    Alcotest.test_case "V-cycle deterministic across domains" `Slow
      test_vcycle_deterministic_across_domains;
    Alcotest.test_case "V-cycle reaches the stop target" `Slow
      test_vcycle_reaches_target ]
