(* Tests for the lock-free fork-join executor ("GPU kernel"
   substitute).  Pools are created with [~oversubscribe:true] so the
   concurrent claim/park machinery is exercised even on single-core CI
   machines (without it, a pool whose domains exceed the hardware
   degrades to inline execution by design). *)

(* CI runs the whole suite twice: once with DGP_TEST_DOMAINS=1 (every
   knob-respecting pool collapses to a single domain) and once with
   DGP_TEST_DOMAINS=4.  Tests that want a multi-domain pool read the
   knob through this helper. *)
let env_domains ?(default = 4) () =
  match Sys.getenv_opt "DGP_TEST_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> default)
  | None -> default

let with_pool ?(domains = env_domains ()) f =
  let pool = Parallel.create ~domains ~oversubscribe:true () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let test_sequential_covers () =
  let n = 1000 in
  let hits = Array.make n 0 in
  Parallel.parallel_for Parallel.sequential_pool n (fun i ->
    hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "index %d hit %d times" i h)
    hits

let test_pool_covers_exactly_once () =
  with_pool ~domains:4 (fun pool ->
    let n = 100_000 in
    let hits = Array.make n 0 in
    (* disjoint indices: no synchronisation needed *)
    Parallel.parallel_for pool ~grain:64 n (fun i -> hits.(i) <- hits.(i) + 1);
    let bad = ref 0 in
    Array.iter (fun h -> if h <> 1 then incr bad) hits;
    Alcotest.(check int) "all indices exactly once" 0 !bad)

let test_pool_sum () =
  with_pool ~domains:3 (fun pool ->
    let n = 50_000 in
    let acc = Atomic.make 0 in
    Parallel.parallel_for pool ~grain:128 n (fun i ->
      ignore (Atomic.fetch_and_add acc i));
    Alcotest.(check int) "sum" (n * (n - 1) / 2) (Atomic.get acc))

let test_empty_and_small () =
  with_pool ~domains:2 (fun pool ->
    Parallel.parallel_for pool 0 (fun _ -> Alcotest.fail "called on empty");
    let count = ref 0 in
    (* below grain: runs inline *)
    Parallel.parallel_for pool ~grain:100 7 (fun _ -> incr count);
    Alcotest.(check int) "small range" 7 !count)

let test_domain_count () =
  Alcotest.(check int) "sequential" 1 (Parallel.domain_count Parallel.sequential_pool);
  let pool = Parallel.create ~domains:3 ~oversubscribe:true () in
  Alcotest.(check int) "three domains" 3 (Parallel.domain_count pool);
  Parallel.shutdown pool;
  Alcotest.(check int) "after shutdown" 1 (Parallel.domain_count pool);
  (* without oversubscription the pool never spawns beyond the machine *)
  let cores = Domain.recommended_domain_count () in
  let pool = Parallel.create ~domains:((2 * cores) + 4) () in
  Alcotest.(check bool) "capped at cores" true
    (Parallel.domain_count pool <= max 1 cores);
  Parallel.shutdown pool

let test_repeated_use () =
  with_pool ~domains:2 (fun pool ->
    for round = 1 to 20 do
      let n = 5000 in
      let out = Array.make n 0 in
      Parallel.parallel_for pool ~grain:37 n (fun i -> out.(i) <- i * round);
      Alcotest.(check int) "spot check" (1234 * round) out.(1234)
    done)

type isum = { mutable total : int; mutable count : int }

let reduce_sum pool ?grain n =
  let acc =
    Parallel.parallel_for_reduce pool ?grain n
      ~init:(fun () -> { total = 0; count = 0 })
      ~body:(fun acc i ->
        acc.total <- acc.total + i;
        acc.count <- acc.count + 1)
      ~merge:(fun a b ->
        a.total <- a.total + b.total;
        a.count <- a.count + b.count;
        a)
  in
  (acc.total, acc.count)

let test_reduce_sequential () =
  let n = 10_000 in
  let total, count = reduce_sum Parallel.sequential_pool ~grain:64 n in
  Alcotest.(check int) "total" (n * (n - 1) / 2) total;
  Alcotest.(check int) "count" n count;
  let total0, count0 = reduce_sum Parallel.sequential_pool ~grain:64 0 in
  Alcotest.(check int) "empty total" 0 total0;
  Alcotest.(check int) "empty count" 0 count0

let test_reduce_pool () =
  with_pool ~domains:4 (fun pool ->
    List.iter
      (fun (n, grain) ->
        let total, count = reduce_sum pool ~grain n in
        Alcotest.(check int)
          (Printf.sprintf "total n=%d grain=%d" n grain)
          (n * (n - 1) / 2)
          total;
        Alcotest.(check int)
          (Printf.sprintf "count n=%d grain=%d" n grain)
          n count)
      [ (50_000, 128); (1_000, 1_024); (1_025, 1_024); (3, 1) ])

let test_reduce_merge_order () =
  (* merge must run in chunk order: concatenating per-chunk minima of the
     index ranges must come out sorted *)
  with_pool ~domains:3 (fun pool ->
    let firsts =
      Parallel.parallel_for_reduce pool ~grain:100 1_000
        ~init:(fun () -> ref [])
        ~body:(fun acc i ->
          match !acc with [] -> acc := [ i ] | _ -> ())
        ~merge:(fun a b ->
          a := !a @ !b;
          a)
    in
    Alcotest.(check (list int)) "chunk order"
      [ 0; 100; 200; 300; 400; 500; 600; 700; 800; 900 ]
      !firsts)

(* ---- the auto-grain policy ---- *)

let test_auto_grain_policy () =
  (* the sequential pool plans no parallelism: everything inlines *)
  Alcotest.(check int) "seq grain = n" 1000
    (Parallel.auto_grain Parallel.sequential_pool 1000);
  with_pool ~domains:4 (fun pool ->
    Alcotest.(check int) "effective parallelism" 4
      (Parallel.effective_parallelism pool);
    (* large cheap range: ~4 chunks per domain *)
    Alcotest.(check int) "balance grain" (262_144 / 16)
      (Parallel.auto_grain pool ~cost:16.0 262_144);
    (* cheap bodies never split finer than the cost floor ... *)
    Alcotest.(check bool) "cost floor" true
      (Parallel.auto_grain pool ~cost:1.0 2_048 >= 256);
    (* ... so a tiny range is one chunk (inline) *)
    Alcotest.(check bool) "tiny range inlines" true
      (Parallel.auto_grain pool 64 >= 64);
    (* expensive bodies may split all the way down to the balance term *)
    Alcotest.(check int) "expensive body" 64
      (Parallel.auto_grain pool ~cost:1000.0 1_024));
  (* the reduce grain never consults the pool *)
  Alcotest.(check int) "reduce 16-way split" 3125
    (Parallel.reduce_grain ~cost:8.0 50_000);
  Alcotest.(check bool) "reduce cost floor" true
    (Parallel.reduce_grain ~cost:1.0 1_000 >= 256)

type fsum = { mutable f : float }

(* Auto-grained reductions must be bit-identical at every domain count:
   the chunk split is pool-independent and partials merge in chunk
   order, so even non-associative float sums reproduce exactly. *)
let test_reduce_bit_identical_across_domains () =
  let run pool =
    let acc =
      Parallel.parallel_for_reduce pool ~cost:1.0 30_000
        ~init:(fun () -> { f = 0.0 })
        ~body:(fun a i -> a.f <- a.f +. sin (float_of_int i))
        ~merge:(fun a b ->
          a.f <- a.f +. b.f;
          a)
    in
    Int64.bits_of_float acc.f
  in
  let base = run Parallel.sequential_pool in
  List.iter
    (fun domains ->
      with_pool ~domains (fun pool ->
        Alcotest.(check bool)
          (Printf.sprintf "bits at %d domains" domains)
          true
          (run pool = base)))
    [ 1; 2; 4; 8 ]

(* ---- nested and concurrent submissions ---- *)

let test_nested_calls () =
  (* a chunk body issuing its own parallel_for on the same pool must
     degrade to inline execution, never deadlock *)
  with_pool (fun pool ->
    let out = Array.make 8192 0 in
    Parallel.parallel_for pool ~grain:1 8 (fun b ->
      Parallel.parallel_for pool ~grain:64 1024 (fun i ->
        out.((b * 1024) + i) <- (b * 1024) + i));
    Array.iteri
      (fun i v -> if v <> i then Alcotest.failf "slot %d holds %d" i v)
      out)

let test_concurrent_callers () =
  (* two domains hammering one pool: whoever loses the submit slot runs
     inline; both must see exact results every round *)
  with_pool (fun pool ->
    let caller () =
      Domain.spawn (fun () ->
        let ok = ref true in
        for round = 1 to 20 do
          let n = 20_000 in
          let out = Array.make n 0 in
          Parallel.parallel_for pool ~grain:97 n (fun i -> out.(i) <- i * round);
          for i = 0 to n - 1 do
            if out.(i) <> i * round then ok := false
          done;
          let total, count = reduce_sum pool ~grain:257 n in
          if total <> n * (n - 1) / 2 || count <> n then ok := false
        done;
        !ok)
    in
    let d1 = caller () and d2 = caller () in
    Alcotest.(check bool) "caller 1 exact" true (Domain.join d1);
    Alcotest.(check bool) "caller 2 exact" true (Domain.join d2))

let test_exception_propagates () =
  with_pool ~domains:2 (fun pool ->
    let hits = Atomic.make 0 in
    (match
       Parallel.parallel_for pool ~grain:10 1000 (fun i ->
         Atomic.incr hits;
         if i = 500 then failwith "boom")
     with
    | () -> Alcotest.fail "exception was swallowed"
    | exception Failure m -> Alcotest.(check string) "message" "boom" m);
    (* the job quiesced before re-raising: the raising chunk stops at
       the raise (indices 501..509 of chunk [500,510) are lost) but all
       other chunks still complete, and the pool remains usable *)
    Alcotest.(check int) "other chunks completed" 991 (Atomic.get hits);
    let count = Atomic.make 0 in
    Parallel.parallel_for pool ~grain:16 512 (fun _ -> Atomic.incr count);
    Alcotest.(check int) "pool alive after failure" 512 (Atomic.get count))

let suite =
  [ Alcotest.test_case "sequential pool covers range" `Quick test_sequential_covers;
    Alcotest.test_case "pool covers exactly once" `Quick test_pool_covers_exactly_once;
    Alcotest.test_case "pool atomic sum" `Quick test_pool_sum;
    Alcotest.test_case "empty and sub-grain ranges" `Quick test_empty_and_small;
    Alcotest.test_case "domain count" `Quick test_domain_count;
    Alcotest.test_case "repeated parallel_for calls" `Quick test_repeated_use;
    Alcotest.test_case "reduce: sequential + empty" `Quick test_reduce_sequential;
    Alcotest.test_case "reduce: pooled sums" `Quick test_reduce_pool;
    Alcotest.test_case "reduce: merge in chunk order" `Quick
      test_reduce_merge_order;
    Alcotest.test_case "auto-grain policy" `Quick test_auto_grain_policy;
    Alcotest.test_case "reduce: bit-identical across domains" `Quick
      test_reduce_bit_identical_across_domains;
    Alcotest.test_case "nested calls degrade inline" `Quick test_nested_calls;
    Alcotest.test_case "concurrent callers stress" `Quick
      test_concurrent_callers;
    Alcotest.test_case "chunk exception propagates" `Quick
      test_exception_propagates ]
