(* Tests for the domain worker pool ("GPU kernel" substitute). *)

let test_sequential_covers () =
  let n = 1000 in
  let hits = Array.make n 0 in
  Parallel.parallel_for Parallel.sequential_pool n (fun i ->
    hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "index %d hit %d times" i h)
    hits

let test_pool_covers_exactly_once () =
  let pool = Parallel.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let n = 100_000 in
      let hits = Array.make n 0 in
      (* disjoint indices: no synchronisation needed *)
      Parallel.parallel_for pool ~grain:64 n (fun i -> hits.(i) <- hits.(i) + 1);
      let bad = ref 0 in
      Array.iter (fun h -> if h <> 1 then incr bad) hits;
      Alcotest.(check int) "all indices exactly once" 0 !bad)

let test_pool_sum () =
  let pool = Parallel.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let n = 50_000 in
      let acc = Atomic.make 0 in
      Parallel.parallel_for pool ~grain:128 n (fun i ->
        ignore (Atomic.fetch_and_add acc i));
      Alcotest.(check int) "sum" (n * (n - 1) / 2) (Atomic.get acc))

let test_empty_and_small () =
  let pool = Parallel.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      Parallel.parallel_for pool 0 (fun _ -> Alcotest.fail "called on empty");
      let count = ref 0 in
      (* below grain: runs inline *)
      Parallel.parallel_for pool ~grain:100 7 (fun _ -> incr count);
      Alcotest.(check int) "small range" 7 !count)

let test_domain_count () =
  Alcotest.(check int) "sequential" 1 (Parallel.domain_count Parallel.sequential_pool);
  let pool = Parallel.create ~domains:3 () in
  Alcotest.(check int) "three domains" 3 (Parallel.domain_count pool);
  Parallel.shutdown pool;
  Alcotest.(check int) "after shutdown" 1 (Parallel.domain_count pool)

let test_repeated_use () =
  let pool = Parallel.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      for round = 1 to 20 do
        let n = 5000 in
        let out = Array.make n 0 in
        Parallel.parallel_for pool ~grain:37 n (fun i -> out.(i) <- i * round);
        Alcotest.(check int) "spot check" (1234 * round) out.(1234)
      done)

type isum = { mutable total : int; mutable count : int }

let reduce_sum pool ~grain n =
  let acc =
    Parallel.parallel_for_reduce pool ~grain n
      ~init:(fun () -> { total = 0; count = 0 })
      ~body:(fun acc i ->
        acc.total <- acc.total + i;
        acc.count <- acc.count + 1)
      ~merge:(fun a b ->
        a.total <- a.total + b.total;
        a.count <- a.count + b.count;
        a)
  in
  (acc.total, acc.count)

let test_reduce_sequential () =
  let n = 10_000 in
  let total, count = reduce_sum Parallel.sequential_pool ~grain:64 n in
  Alcotest.(check int) "total" (n * (n - 1) / 2) total;
  Alcotest.(check int) "count" n count;
  let total0, count0 = reduce_sum Parallel.sequential_pool ~grain:64 0 in
  Alcotest.(check int) "empty total" 0 total0;
  Alcotest.(check int) "empty count" 0 count0

let test_reduce_pool () =
  let pool = Parallel.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      List.iter
        (fun (n, grain) ->
          let total, count = reduce_sum pool ~grain n in
          Alcotest.(check int)
            (Printf.sprintf "total n=%d grain=%d" n grain)
            (n * (n - 1) / 2)
            total;
          Alcotest.(check int)
            (Printf.sprintf "count n=%d grain=%d" n grain)
            n count)
        [ (50_000, 128); (1_000, 1_024); (1_025, 1_024); (3, 1) ])

let test_reduce_merge_order () =
  (* merge must run in chunk order: concatenating per-chunk minima of the
     index ranges must come out sorted *)
  let pool = Parallel.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let firsts =
        Parallel.parallel_for_reduce pool ~grain:100 1_000
          ~init:(fun () -> ref [])
          ~body:(fun acc i ->
            match !acc with [] -> acc := [ i ] | _ -> ())
          ~merge:(fun a b ->
            a := !a @ !b;
            a)
      in
      Alcotest.(check (list int)) "chunk order"
        [ 0; 100; 200; 300; 400; 500; 600; 700; 800; 900 ]
        !firsts)

let suite =
  [ Alcotest.test_case "sequential pool covers range" `Quick test_sequential_covers;
    Alcotest.test_case "pool covers exactly once" `Quick test_pool_covers_exactly_once;
    Alcotest.test_case "pool atomic sum" `Quick test_pool_sum;
    Alcotest.test_case "empty and sub-grain ranges" `Quick test_empty_and_small;
    Alcotest.test_case "domain count" `Quick test_domain_count;
    Alcotest.test_case "repeated parallel_for calls" `Quick test_repeated_use;
    Alcotest.test_case "reduce: sequential + empty" `Quick test_reduce_sequential;
    Alcotest.test_case "reduce: pooled sums" `Quick test_reduce_pool;
    Alcotest.test_case "reduce: merge in chunk order" `Quick
      test_reduce_merge_order ]
