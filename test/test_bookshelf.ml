(* Tests for the bookshelf-lite design format. *)

let lib = Liberty.Synthetic.default ()

let sample () =
  Workload.generate lib { Workload.default_spec with Workload.sp_cells = 120 }

let test_roundtrip_exact () =
  let design, cons = sample () in
  let s = Bookshelf.to_string design cons in
  let d2, c2 = Bookshelf.of_string lib s in
  Alcotest.(check string) "byte-identical second print" s
    (Bookshelf.to_string d2 c2)

let test_roundtrip_semantics () =
  let design, cons = sample () in
  let d2, c2 = Bookshelf.of_string lib (Bookshelf.to_string design cons) in
  Alcotest.(check int) "cells" (Netlist.num_cells design) (Netlist.num_cells d2);
  Alcotest.(check int) "pins" (Netlist.num_pins design) (Netlist.num_pins d2);
  Alcotest.(check int) "nets" (Netlist.num_nets design) (Netlist.num_nets d2);
  Alcotest.(check (float 1e-9)) "hpwl preserved" (Netlist.total_hpwl design)
    (Netlist.total_hpwl d2);
  Alcotest.(check (float 1e-9)) "clock period"
    cons.Sta.Constraints.clock_period c2.Sta.Constraints.clock_period;
  (* timing agrees after the round trip *)
  let report d c =
    let g = Sta.Graph.build d lib c in
    (Sta.Timer.run (Sta.Timer.create g)).Sta.Timer.setup_wns
  in
  Alcotest.(check (float 1e-6)) "same wns" (report design cons) (report d2 c2)

let test_save_load_file () =
  let design, cons = sample () in
  let path = Filename.temp_file "dgp_test" ".design" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bookshelf.save path design cons;
      let d2, _ = Bookshelf.load lib path in
      Alcotest.(check string) "name" design.Netlist.design_name
        d2.Netlist.design_name)

let expect_failure name src =
  match Bookshelf.of_string lib src with
  | exception Failure _ -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected failure" name

let test_parse_errors () =
  expect_failure "not a design" "library \"x\" {}";
  expect_failure "unknown field" "design \"d\" { mystery 4; }";
  expect_failure "pin on unknown cell"
    "design \"d\" { region 0 0 1 1; pin \"p\" { cell \"nope\"; direction \
     input; offset 0 0; lib_pin -1; } }";
  expect_failure "net with unknown pin"
    "design \"d\" { region 0 0 1 1; net \"n\" { pins \"ghost\"; } }";
  expect_failure "bad lib index"
    "design \"d\" { region 0 0 1 1; cell \"c\" { lib 999; size 1 1; at 0 0; \
     fixed false; } }";
  expect_failure "trailing garbage" "design \"d\" { region 0 0 1 1; } extra"

(* Error messages carry a uniform location: "FILE:LINE:COL: parse
   error: ..." for syntax, "FILE:LINE: ..." for resolution failures. *)
let test_error_location () =
  let starts_with pre s =
    String.length s >= String.length pre
    && String.sub s 0 (String.length pre) = pre
  in
  let expect_msg name f check =
    match f () with
    | exception Failure m ->
      if not (check m) then Alcotest.failf "%s: bad message %S" name m
    | _ -> Alcotest.failf "%s: expected Failure" name
  in
  expect_msg "syntax error format"
    (fun () ->
      Bookshelf.of_string ~file:"demo.design" lib
        "design \"d\" {\n  mystery 4;\n}")
    (fun m -> starts_with "demo.design:2:" m);
  expect_msg "resolution error format"
    (fun () ->
      Bookshelf.of_string ~file:"demo.design" lib
        "design \"d\" { region 0 0 1 1;\n\
        \  pin \"p\" { cell \"nope\"; direction input; offset 0 0; lib_pin \
         -1; }\n\
         }")
    (fun m -> starts_with "demo.design:2: " m);
  (* without a file, the resolution location names the input *)
  expect_msg "anonymous resolution"
    (fun () ->
      Bookshelf.of_string lib
        "design \"d\" { region 0 0 1 1; net \"n\" { pins \"ghost\"; } }")
    (fun m -> starts_with "<input>:1: " m)

let test_minimal_design () =
  let src =
    "design \"tiny\" {\n\
     region 0 0 10 10;\n\
     row_height 2;\n\
     constraints { clock_period 500; }\n\
     cell \"a\" { pad; size 1 1; at 0 5; fixed true; }\n\
     cell \"b\" { lib 0; size 1 1; at 5 5; fixed false; }\n\
     pin \"a/P\" { cell \"a\"; direction output; offset 0 0; lib_pin -1; }\n\
     pin \"b/A\" { cell \"b\"; direction input; offset 0 0; lib_pin 0; }\n\
     net \"n\" { pins \"a/P\" \"b/A\"; }\n\
     }"
  in
  let d, c = Bookshelf.of_string lib src in
  Alcotest.(check int) "cells" 2 (Netlist.num_cells d);
  Alcotest.(check (float 1e-12)) "row height" 2.0 d.Netlist.row_height;
  Alcotest.(check (float 1e-12)) "period" 500.0 c.Sta.Constraints.clock_period;
  Alcotest.(check bool) "pad fixed" true d.Netlist.cells.(0).Netlist.fixed;
  Alcotest.(check int) "pad marker" (-1) d.Netlist.cells.(0).Netlist.lib_cell

let suite =
  [ Alcotest.test_case "roundtrip exact" `Quick test_roundtrip_exact;
    Alcotest.test_case "roundtrip semantics" `Quick test_roundtrip_semantics;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error locations" `Quick test_error_location;
    Alcotest.test_case "minimal design" `Quick test_minimal_design ]
