(* Tests for the timing graph and the exact STA engine. *)

let lib = Liberty.Synthetic.default ()

let lib_cell name =
  match Liberty.cell_index lib name with
  | Some i -> i
  | None -> Alcotest.failf "missing lib cell %s" name

(* Hand-built chain: PI pad -> INV_X1 -> DFF_X1 (D), with the DFF's Q
   looping out to a PO pad.  Small enough to cross-check by direct
   component evaluation. *)
let build_chain () =
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:100.0 ~hy:100.0 in
  let b = Netlist.Builder.create ~region ~row_height:1.4 "chain" in
  let add_instance name kind x y =
    let lc = lib.Liberty.lib_cells.(kind) in
    let cell =
      Netlist.Builder.add_cell b ~name ~lib_cell:kind ~width:lc.Liberty.lc_width
        ~height:lc.Liberty.lc_height ~x ~y ()
    in
    Array.mapi
      (fun j (lp : Liberty.lib_pin) ->
        Netlist.Builder.add_pin b ~cell
          ~name:(Printf.sprintf "%s/%s" name lp.Liberty.lp_name)
          ~direction:
            (match lp.Liberty.lp_direction with
             | Liberty.Lib_input -> Netlist.Input
             | Liberty.Lib_output -> Netlist.Output)
          ~lib_pin:j ())
      lc.Liberty.lc_pins
  in
  let pad name x y direction =
    let cell =
      Netlist.Builder.add_cell b ~name ~lib_cell:(-1) ~width:2.0 ~height:2.0
        ~x ~y ~fixed:true ()
    in
    Netlist.Builder.add_pin b ~cell ~name:(name ^ "/P") ~direction ()
  in
  let pi = pad "pi0" 0.0 50.0 Netlist.Output in
  let po = pad "po0" 100.0 50.0 Netlist.Input in
  let inv = add_instance "inv" (lib_cell "INV_X1") 30.0 50.0 in
  let dff = add_instance "dff" (lib_cell "DFF_X1") 60.0 50.0 in
  (* INV pins: A=0 Y=1. DFF pins: D=0 CK=1 Q=2 *)
  let _ = Netlist.Builder.add_net b ~name:"n_in" ~pins:[ pi; inv.(0) ] in
  let _ = Netlist.Builder.add_net b ~name:"n_mid" ~pins:[ inv.(1); dff.(0) ] in
  let _ = Netlist.Builder.add_net b ~name:"n_out" ~pins:[ dff.(2); po ] in
  Netlist.Builder.freeze b

let constraints = { Sta.Constraints.default with Sta.Constraints.clock_period = 600.0 }

let test_graph_structure () =
  let d = build_chain () in
  let g = Sta.Graph.build d lib constraints in
  Alcotest.(check int) "endpoints" 2 (Array.length g.Sta.Graph.endpoints);
  Alcotest.(check int) "primary inputs" 1 (List.length g.Sta.Graph.primary_inputs);
  Alcotest.(check int) "primary outputs" 1 (List.length g.Sta.Graph.primary_outputs);
  (* arc levels strictly increase; CSR fan-in/fan-out views agree with
     the flat arc arrays *)
  let narcs = Sta.Graph.num_arcs g in
  for a = 0 to narcs - 1 do
    if g.Sta.Graph.pin_level.(g.Sta.Graph.arc_from.(a))
       >= g.Sta.Graph.pin_level.(g.Sta.Graph.arc_to.(a))
    then Alcotest.fail "level not increasing along cell arc"
  done;
  Alcotest.(check int) "fanin CSR covers all arcs" narcs
    g.Sta.Graph.fanin_off.(Netlist.num_pins d);
  Alcotest.(check int) "fanout CSR covers all arcs" narcs
    g.Sta.Graph.fanout_off.(Netlist.num_pins d);
  for v = 0 to Netlist.num_pins d - 1 do
    for k = g.Sta.Graph.fanin_off.(v) to g.Sta.Graph.fanin_off.(v + 1) - 1 do
      if g.Sta.Graph.arc_to.(g.Sta.Graph.fanin_arc.(k)) <> v then
        Alcotest.fail "fanin CSR arc does not end at its pin"
    done;
    for k = g.Sta.Graph.fanout_off.(v) to g.Sta.Graph.fanout_off.(v + 1) - 1
    do
      if g.Sta.Graph.arc_from.(g.Sta.Graph.fanout_arc.(k)) <> v then
        Alcotest.fail "fanout CSR arc does not start at its pin"
    done
  done;
  (* net sinks are above their drivers *)
  Array.iter
    (fun (net : Netlist.net) ->
      match Netlist.net_driver d net.Netlist.net_id with
      | None -> ()
      | Some drv ->
        List.iter
          (fun s ->
            if g.Sta.Graph.pin_level.(s) <= g.Sta.Graph.pin_level.(drv) then
              Alcotest.fail "net sink below driver")
          (Netlist.net_sinks d net.Netlist.net_id))
    d.Netlist.nets;
  (* the DFF data pin checks in *)
  match Netlist.pin_by_name d "dff/D" with
  | None -> Alcotest.fail "missing dff/D"
  | Some p ->
    Alcotest.(check bool) "check arc" true
      (g.Sta.Graph.check_of_pin.(p.Netlist.pin_id) <> None);
    Alcotest.(check bool) "endpoint" true
      g.Sta.Graph.is_endpoint.(p.Netlist.pin_id)

let test_clock_pin_is_start () =
  let d = build_chain () in
  let g = Sta.Graph.build d lib constraints in
  match Netlist.pin_by_name d "dff/CK" with
  | None -> Alcotest.fail "missing dff/CK"
  | Some p ->
    Alcotest.(check bool) "clock pin" true
      g.Sta.Graph.is_clock_pin.(p.Netlist.pin_id);
    Alcotest.(check bool) "start" true g.Sta.Graph.is_start.(p.Netlist.pin_id)

(* AT along the chain equals hand-composed net + cell delays. *)
let test_chain_arrival_time () =
  let d = build_chain () in
  let g = Sta.Graph.build d lib constraints in
  let timer = Sta.Timer.create g in
  let _ = Sta.Timer.run timer in
  let pin name =
    match Netlist.pin_by_name d name with
    | Some p -> p.Netlist.pin_id
    | None -> Alcotest.failf "missing %s" name
  in
  (* input pad arrival *)
  Alcotest.(check (float 1e-9)) "pi at" constraints.Sta.Constraints.input_delay
    (Sta.Timer.at_late timer (pin "pi0/P") Sta.Rise);
  (* compose the first net arc by hand via the shared Nets state *)
  let nets = Sta.Timer.nets timer in
  let n_in =
    match Netlist.net_by_name d "n_in" with
    | Some n -> n.Netlist.net_id
    | None -> Alcotest.fail "n_in"
  in
  (match nets.Sta.Nets.trees.(n_in) with
   | None -> Alcotest.fail "no tree for n_in"
   | Some (_, rc) ->
     let node = nets.Sta.Nets.tree_index.(pin "inv/A") in
     let expect =
       constraints.Sta.Constraints.input_delay +. Rc.sink_delay rc node
     in
     Alcotest.(check (float 1e-9)) "inv/A at" expect
       (Sta.Timer.at_late timer (pin "inv/A") Sta.Rise));
  (* the inverter flips transitions: rise at Y comes from fall at A *)
  let inv_cell =
    match Liberty.find_cell lib "INV_X1" with
    | Some c -> c
    | None -> Alcotest.fail "INV_X1"
  in
  let arc = inv_cell.Liberty.lc_arcs.(0) in
  let n_mid =
    match Netlist.net_by_name d "n_mid" with
    | Some n -> n.Netlist.net_id
    | None -> Alcotest.fail "n_mid"
  in
  (match nets.Sta.Nets.trees.(n_mid) with
   | None -> Alcotest.fail "no tree for n_mid"
   | Some (_, rc) ->
     let load = Rc.root_load rc in
     let slew_a = Sta.Timer.slew_late timer (pin "inv/A") Sta.Fall in
     let at_a = Sta.Timer.at_late timer (pin "inv/A") Sta.Fall in
     let d_rise = Liberty.Lut.lookup arc.Liberty.cell_rise slew_a load in
     Alcotest.(check (float 1e-9)) "inv/Y rise at" (at_a +. d_rise)
       (Sta.Timer.at_late timer (pin "inv/Y") Sta.Rise))

let test_slack_and_rat_relation () =
  let d = build_chain () in
  let g = Sta.Graph.build d lib constraints in
  let timer = Sta.Timer.create g in
  let report = Sta.Timer.run timer in
  (* WNS is the min endpoint slack, TNS the sum of negative ones *)
  let min_slack =
    List.fold_left
      (fun acc (e : Sta.Timer.endpoint_slack) ->
        Float.min acc e.Sta.Timer.ep_setup_slack)
      infinity report.Sta.Timer.endpoint_slacks
  in
  Alcotest.(check (float 1e-9)) "wns"
    (Float.min 0.0 min_slack)
    (Float.min 0.0 report.Sta.Timer.setup_wns);
  let tns =
    List.fold_left
      (fun acc (e : Sta.Timer.endpoint_slack) ->
        acc +. Float.min 0.0 e.Sta.Timer.ep_setup_slack)
      0.0 report.Sta.Timer.endpoint_slacks
  in
  Alcotest.(check (float 1e-9)) "tns" tns report.Sta.Timer.setup_tns;
  (* endpoints sorted by setup slack *)
  let rec sorted = function
    | (a : Sta.Timer.endpoint_slack) :: (b :: _ as rest) ->
      a.Sta.Timer.ep_setup_slack <= b.Sta.Timer.ep_setup_slack && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted" true (sorted report.Sta.Timer.endpoint_slacks)

let test_period_shift () =
  (* increasing the clock period by delta shifts every setup slack by
     exactly delta *)
  let d = build_chain () in
  let g1 = Sta.Graph.build d lib constraints in
  let r1 = Sta.Timer.run (Sta.Timer.create g1) in
  let c2 =
    { constraints with
      Sta.Constraints.clock_period =
        constraints.Sta.Constraints.clock_period +. 100.0 }
  in
  let g2 = Sta.Graph.build d lib c2 in
  let r2 = Sta.Timer.run (Sta.Timer.create g2) in
  Alcotest.(check (float 1e-6)) "wns shift"
    (r1.Sta.Timer.setup_wns +. 100.0)
    r2.Sta.Timer.setup_wns

let test_moving_cell_changes_timing () =
  let d = build_chain () in
  let g = Sta.Graph.build d lib constraints in
  let timer = Sta.Timer.create g in
  let r1 = Sta.Timer.run timer in
  (* drag the inverter far away: the path gets slower *)
  (match Netlist.cell_by_name d "inv" with
   | Some c -> c.Netlist.x <- 5.0; c.Netlist.y <- 5.0
   | None -> Alcotest.fail "inv missing");
  let r2 = Sta.Timer.run timer in
  Alcotest.(check bool) "worse wns" true
    (r2.Sta.Timer.setup_wns < r1.Sta.Timer.setup_wns)

let test_pin_slack_consistency () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 400; sp_clock_period = 800.0 } in
  let g = Sta.Graph.build design lib cons in
  let timer = Sta.Timer.create g in
  let report = Sta.Timer.run timer in
  (* per-pin slack from RAT propagation is never better than WNS *)
  let min_pin_slack = ref infinity in
  for p = 0 to Netlist.num_pins design - 1 do
    let s = Sta.Timer.pin_slack_late timer p in
    if s < !min_pin_slack then min_pin_slack := s
  done;
  Alcotest.(check (float 1e-6)) "min pin slack = wns"
    report.Sta.Timer.setup_wns !min_pin_slack;
  (* net slack is the min over the net's pins *)
  let net = design.Netlist.nets.(0) in
  let expect =
    Array.fold_left
      (fun acc p -> Float.min acc (Sta.Timer.pin_slack_late timer p))
      infinity net.Netlist.net_pins
  in
  Alcotest.(check (float 1e-9)) "net slack" expect
    (Sta.Timer.net_slack timer net.Netlist.net_id)

let test_hold_nonnegative_on_chain () =
  (* with an ideal clock and zero input delay, the chain has positive
     hold slack (combinational delay exceeds the hold requirement) *)
  let d = build_chain () in
  let g = Sta.Graph.build d lib constraints in
  let r = Sta.Timer.run (Sta.Timer.create g) in
  Alcotest.(check bool) "hold met" true (r.Sta.Timer.hold_wns >= 0.0)

let test_cycle_detection () =
  let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:10.0 ~hy:10.0 in
  let b = Netlist.Builder.create ~region "loop" in
  let kind = lib_cell "INV_X1" in
  let mk name =
    let cell = Netlist.Builder.add_cell b ~name ~lib_cell:kind ~width:1.0
        ~height:1.0 () in
    let a = Netlist.Builder.add_pin b ~cell ~name:(name ^ "/A")
        ~direction:Netlist.Input ~lib_pin:0 () in
    let y = Netlist.Builder.add_pin b ~cell ~name:(name ^ "/Y")
        ~direction:Netlist.Output ~lib_pin:1 () in
    (a, y)
  in
  let a1, y1 = mk "i1" in
  let a2, y2 = mk "i2" in
  let _ = Netlist.Builder.add_net b ~name:"n1" ~pins:[ y1; a2 ] in
  let _ = Netlist.Builder.add_net b ~name:"n2" ~pins:[ y2; a1 ] in
  let d = Netlist.Builder.freeze b in
  match Sta.Graph.build d lib constraints with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "mentions cycle" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected cycle detection"

let test_slew_propagation_positive () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 300 } in
  let g = Sta.Graph.build design lib cons in
  let timer = Sta.Timer.create g in
  let _ = Sta.Timer.run timer in
  for p = 0 to Netlist.num_pins design - 1 do
    if Sta.Timer.at_late timer p Sta.Rise > neg_infinity then begin
      if Sta.Timer.slew_late timer p Sta.Rise <= 0.0 then
        Alcotest.fail "non-positive slew on a reached pin"
    end
  done

let suite =
  [ Alcotest.test_case "graph structure" `Quick test_graph_structure;
    Alcotest.test_case "clock pin is startpoint" `Quick test_clock_pin_is_start;
    Alcotest.test_case "chain arrival time composition" `Quick
      test_chain_arrival_time;
    Alcotest.test_case "slack and rat relation" `Quick test_slack_and_rat_relation;
    Alcotest.test_case "clock period shift" `Quick test_period_shift;
    Alcotest.test_case "moving a cell changes timing" `Quick
      test_moving_cell_changes_timing;
    Alcotest.test_case "pin slack consistency" `Quick test_pin_slack_consistency;
    Alcotest.test_case "hold met on chain" `Quick test_hold_nonnegative_on_chain;
    Alcotest.test_case "combinational cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "slews positive where reached" `Quick
      test_slew_propagation_positive ]

let test_critical_path () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 400; sp_clock_period = 700.0 } in
  let g = Sta.Graph.build design lib cons in
  let timer = Sta.Timer.create g in
  let report = Sta.Timer.run timer in
  let path = Sta.Timer.critical_path timer in
  (match path with
   | [] -> Alcotest.fail "empty critical path"
   | first :: _ ->
     (* starts at a startpoint *)
     Alcotest.(check bool) "starts at startpoint" true
       g.Sta.Graph.is_start.(first.Sta.Timer.ps_pin);
     let last = List.nth path (List.length path - 1) in
     (* ends at the worst endpoint *)
     Alcotest.(check bool) "ends at endpoint" true
       g.Sta.Graph.is_endpoint.(last.Sta.Timer.ps_pin);
     Alcotest.(check (float 1e-6)) "endpoint slack = wns"
       report.Sta.Timer.setup_wns
       (Sta.Timer.pin_slack_late timer last.Sta.Timer.ps_pin);
     (* arrival times increase monotonically along the path *)
     let rec monotone = function
       | (a : Sta.Timer.path_step) :: (b :: _ as rest) ->
         a.Sta.Timer.ps_at <= b.Sta.Timer.ps_at +. 1e-9 && monotone rest
       | [ _ ] | [] -> true
     in
     Alcotest.(check bool) "at monotone" true (monotone path);
     (* levels strictly increase *)
     let rec levels_up = function
       | (a : Sta.Timer.path_step) :: (b :: _ as rest) ->
         g.Sta.Graph.pin_level.(a.Sta.Timer.ps_pin)
         < g.Sta.Graph.pin_level.(b.Sta.Timer.ps_pin)
         && levels_up rest
       | [ _ ] | [] -> true
     in
     Alcotest.(check bool) "levels increase" true (levels_up path))

let test_critical_path_specific_endpoint () =
  let d = build_chain () in
  let g = Sta.Graph.build d lib constraints in
  let timer = Sta.Timer.create g in
  let _ = Sta.Timer.run timer in
  match Netlist.pin_by_name d "dff/D" with
  | None -> Alcotest.fail "missing dff/D"
  | Some p ->
    let path = Sta.Timer.critical_path ~endpoint:p.Netlist.pin_id timer in
    let names =
      List.map
        (fun (s : Sta.Timer.path_step) ->
          d.Netlist.pins.(s.Sta.Timer.ps_pin).Netlist.pin_name)
        path
    in
    Alcotest.(check (list string)) "chain path"
      [ "pi0/P"; "inv/A"; "inv/Y"; "dff/D" ] names

let suite =
  suite
  @ [ Alcotest.test_case "critical path" `Quick test_critical_path;
      Alcotest.test_case "critical path to endpoint" `Quick
        test_critical_path_specific_endpoint ]

(* A random legal position for [c]: inside the core region with the
   cell's bounding box fully contained (what [Incremental.move_cell]
   validates). *)
let random_legal_position rng design (c : Netlist.cell) =
  let r = design.Netlist.region in
  let hw = c.Netlist.width /. 2.0 and hh = c.Netlist.height /. 2.0 in
  let lo_x = r.Geometry.Rect.lx +. hw and hi_x = r.Geometry.Rect.hx -. hw in
  let lo_y = r.Geometry.Rect.ly +. hh and hi_y = r.Geometry.Rect.hy -. hh in
  ( lo_x +. Workload.Rng.float rng (hi_x -. lo_x),
    lo_y +. Workload.Rng.float rng (hi_y -. lo_y) )

let test_incremental_matches_full () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 500; sp_clock_period = 750.0 } in
  let g = Sta.Graph.build design lib cons in
  let inc = Sta.Incremental.create g in
  (* a reference timer sharing nothing with the incremental one *)
  let reference = Sta.Timer.create g in
  let rng = Workload.Rng.create 314 in
  let ncells = Netlist.num_cells design in
  for round = 1 to 8 do
    (* move a few random movable cells *)
    let moved = ref 0 in
    while !moved < 3 do
      let c = design.Netlist.cells.(Workload.Rng.int rng ncells) in
      if not c.Netlist.fixed then begin
        incr moved;
        let x, y = random_legal_position rng design c in
        Sta.Incremental.move_cell inc c.Netlist.cell_id ~x ~y
      end
    done;
    let ir = Sta.Incremental.update inc in
    (* full reference analysis on the same positions; refresh (not
       rebuild) so both engines see identical Steiner topologies *)
    let fr = Sta.Timer.run ~rebuild_trees:false reference in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "wns round %d" round)
      fr.Sta.Timer.setup_wns ir.Sta.Timer.setup_wns;
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "tns round %d" round)
      fr.Sta.Timer.setup_tns ir.Sta.Timer.setup_tns;
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "hold tns round %d" round)
      fr.Sta.Timer.hold_tns ir.Sta.Timer.hold_tns;
    (* per-pin arrival times agree *)
    let tm = Sta.Incremental.timer inc in
    for p = 0 to Netlist.num_pins design - 1 do
      let a = Sta.Timer.at_late tm p Sta.Rise in
      let b = Sta.Timer.at_late reference p Sta.Rise in
      if Float.is_finite a || Float.is_finite b then
        if Float.abs (a -. b) > 1e-6 then
          Alcotest.failf "at mismatch at pin %d round %d: %f vs %f" p round a b
    done;
    (* sparsity: far fewer pins re-evaluated than exist *)
    Alcotest.(check bool) "sparse update" true
      (Sta.Incremental.last_update_pin_count inc < Netlist.num_pins design)
  done

let test_incremental_no_move_is_noop () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 200 } in
  let g = Sta.Graph.build design lib cons in
  let inc = Sta.Incremental.create g in
  let r1 = Sta.Incremental.update inc in
  Alcotest.(check int) "nothing recomputed" 0
    (Sta.Incremental.last_update_pin_count inc);
  let r2 = Sta.Incremental.update inc in
  Alcotest.(check (float 1e-12)) "stable wns" r1.Sta.Timer.setup_wns
    r2.Sta.Timer.setup_wns

let test_incremental_move_then_back () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 200 } in
  let g = Sta.Graph.build design lib cons in
  let inc = Sta.Incremental.create g in
  let r0 = Sta.Incremental.update inc in
  let c = design.Netlist.cells.(List.hd (Netlist.movable_cells design)) in
  let x0 = c.Netlist.x and y0 = c.Netlist.y in
  let r = design.Netlist.region in
  let hw = c.Netlist.width /. 2.0 and hh = c.Netlist.height /. 2.0 in
  let x1 =
    Geometry.clamp ~lo:(r.Geometry.Rect.lx +. hw)
      ~hi:(r.Geometry.Rect.hx -. hw) (x0 +. 20.0)
  and y1 =
    Geometry.clamp ~lo:(r.Geometry.Rect.ly +. hh)
      ~hi:(r.Geometry.Rect.hy -. hh) (y0 +. 10.0)
  in
  Sta.Incremental.move_cell inc c.Netlist.cell_id ~x:x1 ~y:y1;
  let r1 = Sta.Incremental.update inc in
  Alcotest.(check bool) "timing changed" true
    (r1.Sta.Timer.setup_tns <> r0.Sta.Timer.setup_tns);
  Sta.Incremental.move_cell inc c.Netlist.cell_id ~x:x0 ~y:y0;
  let r2 = Sta.Incremental.update inc in
  Alcotest.(check (float 1e-6)) "restored tns" r0.Sta.Timer.setup_tns
    r2.Sta.Timer.setup_tns

(* Regression for the NaN convergence bug: with an unconstrained input
   slew, PI-fed pins carry NaN slews.  The old [<>]-based change
   detection saw [nan <> nan = true] and re-dirtied the whole fanout
   cone of such pins on every pass; the NaN-aware comparison must report
   "no change" when a touched cone recomputes to the same values. *)
let test_incremental_nan_convergence () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 200 } in
  let cons = { cons with Sta.Constraints.input_slew = Float.nan } in
  let g = Sta.Graph.build design lib cons in
  let inc = Sta.Incremental.create g in
  let tm = Sta.Incremental.timer inc in
  (* find a movable cell fed directly by a primary input, whose input
     pin therefore carries a NaN slew *)
  let victim = ref None in
  Array.iteri
    (fun p nan_feed ->
      if !victim = None && nan_feed then begin
        let pin = design.Netlist.pins.(p) in
        let c = design.Netlist.cells.(pin.Netlist.cell) in
        if (not c.Netlist.fixed) && Float.is_nan (Sta.Timer.slew_late tm p Sta.Rise)
        then victim := Some pin.Netlist.cell
      end)
    (let feeds = Array.make (Netlist.num_pins design) false in
     List.iter
       (fun pi ->
         let net = design.Netlist.pins.(pi).Netlist.net in
         if net >= 0 then
           Array.iter
             (fun p -> feeds.(p) <- true)
             design.Netlist.nets.(net).Netlist.net_pins)
       g.Sta.Graph.primary_inputs;
     feeds);
  match !victim with
  | None -> Alcotest.fail "no movable PI-fed cell with a NaN slew"
  | Some c ->
    (* touch without moving: every re-evaluated pin recomputes to the
       same (NaN-carrying) values, so nothing may report a change and
       dirtiness must not spread beyond the touched nets' pins *)
    Sta.Incremental.touch_cell inc c;
    let _ = Sta.Incremental.update inc in
    let st = Sta.Incremental.last_stats inc in
    Alcotest.(check int) "no pin changed on an unmoved touch" 0
      st.Sta.Incremental.us_changed;
    (* the cone did contain NaN-valued pins (otherwise this tests nothing) *)
    let pins_of_touched_nets =
      let acc = ref 0 and seen = Array.make (Netlist.num_nets design) false in
      Array.iter
        (fun p ->
          let net = design.Netlist.pins.(p).Netlist.net in
          if net >= 0 && not seen.(net) then begin
            seen.(net) <- true;
            acc := !acc + Array.length design.Netlist.nets.(net).Netlist.net_pins
          end)
        design.Netlist.cells.(c).Netlist.cell_pins;
      !acc
    in
    Alcotest.(check int) "dirtiness confined to the touched nets"
      pins_of_touched_nets st.Sta.Incremental.us_pins

let test_incremental_move_validation () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 200 } in
  let g = Sta.Graph.build design lib cons in
  let inc = Sta.Incremental.create g in
  let r0 = Sta.Incremental.update inc in
  let raises f =
    match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  (* fixed (pad) cells are rejected *)
  let fixed_cell =
    let found = ref (-1) in
    Array.iter
      (fun (c : Netlist.cell) ->
        if !found < 0 && c.Netlist.fixed then found := c.Netlist.cell_id)
      design.Netlist.cells;
    !found
  in
  Alcotest.(check bool) "fixed cell rejected" true
    (raises (fun () ->
       Sta.Incremental.move_cell inc fixed_cell ~x:10.0 ~y:10.0));
  let movable = List.hd (Netlist.movable_cells design) in
  let r = design.Netlist.region in
  (* out-of-core coordinates are rejected *)
  Alcotest.(check bool) "out-of-core rejected" true
    (raises (fun () ->
       Sta.Incremental.move_cell inc movable
         ~x:(r.Geometry.Rect.hx +. 5.0) ~y:10.0));
  (* a position whose bounding box straddles the boundary is rejected *)
  Alcotest.(check bool) "straddling bbox rejected" true
    (raises (fun () ->
       Sta.Incremental.move_cell inc movable ~x:r.Geometry.Rect.lx
         ~y:(0.5 *. (r.Geometry.Rect.ly +. r.Geometry.Rect.hy))));
  (* non-finite coordinates are rejected *)
  Alcotest.(check bool) "nan rejected" true
    (raises (fun () ->
       Sta.Incremental.move_cell inc movable ~x:Float.nan ~y:10.0));
  Alcotest.(check bool) "out-of-range id rejected" true
    (raises (fun () ->
       Sta.Incremental.move_cell inc (Netlist.num_cells design) ~x:10.0
         ~y:10.0));
  (* rejected moves leave no pending state behind *)
  let r1 = Sta.Incremental.update inc in
  Alcotest.(check int) "no residual dirtiness" 0
    (Sta.Incremental.last_update_pin_count inc);
  Alcotest.(check (float 0.0)) "report untouched" r0.Sta.Timer.setup_wns
    r1.Sta.Timer.setup_wns

(* Randomized equivalence: random legal move batches, incremental update
   vs a fresh full analysis on an independent timer — WNS/TNS and every
   endpoint slack must be bit-identical, at 1 and 4 domains (the pool
   parallelises the reference run; the incremental pass is
   sequential). *)
let test_incremental_randomized_equivalence () =
  List.iter
    (fun domains ->
      let pool = Parallel.create ~domains ~oversubscribe:true () in
      Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
      let design, cons = Workload.generate lib
          { Workload.default_spec with
            Workload.sp_cells = 800; sp_seed = 99 + domains } in
      let g = Sta.Graph.build design lib cons in
      let inc = Sta.Incremental.create g in
      (* one initial default run so the reference's Steiner topologies
         come from the same rebuild path as the incremental engine's;
         rounds then freeze topologies on both sides *)
      let reference = Sta.Timer.create g in
      let _ = Sta.Timer.run reference in
      let npins = Netlist.num_pins design in
      let ncells = Netlist.num_cells design in
      let batch = max 1 (ncells / 100) in
      let rng = Workload.Rng.create (1000 + domains) in
      let bits = Int64.bits_of_float in
      for round = 1 to 6 do
        let moved = ref 0 in
        while !moved < batch do
          let c = design.Netlist.cells.(Workload.Rng.int rng ncells) in
          if not c.Netlist.fixed then begin
            incr moved;
            let x, y = random_legal_position rng design c in
            Sta.Incremental.move_cell inc c.Netlist.cell_id ~x ~y
          end
        done;
        let ir = Sta.Incremental.update inc in
        let fr = Sta.Timer.run ~rebuild_trees:false ~pool reference in
        if bits ir.Sta.Timer.setup_wns <> bits fr.Sta.Timer.setup_wns then
          Alcotest.failf "wns not bit-identical (round %d, %d domains)"
            round domains;
        if bits ir.Sta.Timer.setup_tns <> bits fr.Sta.Timer.setup_tns then
          Alcotest.failf "tns not bit-identical (round %d, %d domains)"
            round domains;
        if bits ir.Sta.Timer.hold_wns <> bits fr.Sta.Timer.hold_wns
           || bits ir.Sta.Timer.hold_tns <> bits fr.Sta.Timer.hold_tns
        then
          Alcotest.failf "hold not bit-identical (round %d, %d domains)"
            round domains;
        let ie = ir.Sta.Timer.endpoint_slacks
        and fe = fr.Sta.Timer.endpoint_slacks in
        Alcotest.(check int) "endpoint count" (List.length fe)
          (List.length ie);
        List.iter2
          (fun (a : Sta.Timer.endpoint_slack) (b : Sta.Timer.endpoint_slack) ->
            if a.Sta.Timer.ep_pin <> b.Sta.Timer.ep_pin
               || bits a.Sta.Timer.ep_setup_slack
                  <> bits b.Sta.Timer.ep_setup_slack
               || bits a.Sta.Timer.ep_hold_slack
                  <> bits b.Sta.Timer.ep_hold_slack
            then
              Alcotest.failf "endpoint slack mismatch at pin %d (round %d)"
                a.Sta.Timer.ep_pin round)
          ie fe;
        (* a local batch must not re-evaluate the whole design *)
        Alcotest.(check bool) "sparse update" true
          (Sta.Incremental.last_update_pin_count inc < npins)
      done)
    [ 1; 4 ]

(* The guarded RAT accessors must agree bitwise with a from-scratch
   analysis of the same placement, for every pin — this is the
   staleness contract of sta.mli. *)
let test_incremental_guarded_rat_reads () =
  let design, cons = Workload.generate lib
      { Workload.default_spec with Workload.sp_cells = 300 } in
  let g = Sta.Graph.build design lib cons in
  let inc = Sta.Incremental.create g in
  let reference = Sta.Timer.create g in
  let _ = Sta.Timer.run reference in
  let rng = Workload.Rng.create 2718 in
  let ncells = Netlist.num_cells design in
  let moved = ref 0 in
  while !moved < 5 do
    let c = design.Netlist.cells.(Workload.Rng.int rng ncells) in
    if not c.Netlist.fixed then begin
      incr moved;
      let x, y = random_legal_position rng design c in
      Sta.Incremental.move_cell inc c.Netlist.cell_id ~x ~y
    end
  done;
  let _ = Sta.Incremental.update inc in
  let _ = Sta.Timer.run ~rebuild_trees:false reference in
  let bits = Int64.bits_of_float in
  for p = 0 to Netlist.num_pins design - 1 do
    let a = Sta.Incremental.pin_slack_late inc p in
    let b = Sta.Timer.pin_slack_late reference p in
    if bits a <> bits b then
      Alcotest.failf "pin_slack_late mismatch at pin %d: %h vs %h" p a b;
    List.iter
      (fun tr ->
        let a = Sta.Incremental.rat_late inc p tr in
        let b = Sta.Timer.rat_late reference p tr in
        if bits a <> bits b then
          Alcotest.failf "rat_late mismatch at pin %d" p)
      [ Sta.Rise; Sta.Fall ]
  done

let suite =
  suite
  @ [ Alcotest.test_case "incremental matches full" `Quick
        test_incremental_matches_full;
      Alcotest.test_case "incremental no-op" `Quick
        test_incremental_no_move_is_noop;
      Alcotest.test_case "incremental move and restore" `Quick
        test_incremental_move_then_back;
      Alcotest.test_case "incremental NaN convergence" `Quick
        test_incremental_nan_convergence;
      Alcotest.test_case "incremental move validation" `Quick
        test_incremental_move_validation;
      Alcotest.test_case "incremental randomized equivalence" `Quick
        test_incremental_randomized_equivalence;
      Alcotest.test_case "incremental guarded RAT reads" `Quick
        test_incremental_guarded_rat_reads ]

let test_io_constraint_effects () =
  let d = build_chain () in
  (* input_delay shifts the whole data path *)
  let wns c =
    let g = Sta.Graph.build d lib c in
    (Sta.Timer.run (Sta.Timer.create g)).Sta.Timer.setup_wns
  in
  let base = wns constraints in
  let delayed =
    wns { constraints with Sta.Constraints.input_delay = 50.0 }
  in
  Alcotest.(check bool) "input delay hurts" true (delayed <= base -. 40.0);
  (* output_delay tightens PO endpoints only; the chain's PO is less
     critical than its FF, so WNS moves once the margin is large *)
  let tightened =
    wns { constraints with Sta.Constraints.output_delay = 400.0 }
  in
  Alcotest.(check bool) "output delay tightens" true (tightened < base);
  (* heavier PO load slows the driving path *)
  let loaded =
    wns { constraints with Sta.Constraints.output_load = 30.0 }
  in
  Alcotest.(check bool) "output load hurts" true (loaded < base)

let test_slew_limits_monotone () =
  (* faster input slew can only help arrival on the PI -> INV -> D path
     (the PO is launched by the clock and is insensitive to input slew) *)
  let d = build_chain () in
  let at_d c =
    let g = Sta.Graph.build d lib c in
    let timer = Sta.Timer.create g in
    let _ = Sta.Timer.run timer in
    match Netlist.pin_by_name d "dff/D" with
    | Some p -> Sta.Timer.at_late timer p.Netlist.pin_id Sta.Rise
    | None -> Alcotest.fail "dff/D"
  in
  let fast = at_d { constraints with Sta.Constraints.input_slew = 5.0 } in
  let slow = at_d { constraints with Sta.Constraints.input_slew = 80.0 } in
  Alcotest.(check bool) "slew monotone" true (fast < slow)

let suite =
  suite
  @ [ Alcotest.test_case "io constraint effects" `Quick test_io_constraint_effects;
      Alcotest.test_case "slew monotone" `Quick test_slew_limits_monotone ]

(* --- dirty-net incremental Steiner rebuild --- *)

let workload_nets seed =
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 250; sp_seed = seed; sp_clock_period = 700.0 }
  in
  let design, cons = Workload.generate lib spec in
  (design, Sta.Graph.build design lib cons)

let nets_state (nets : Sta.Nets.t) =
  (* every mutable bit of tree state, bitwise *)
  Array.map
    (function
      | None -> None
      | Some ((t : Steiner.t), _) ->
        Some
          (Array.map Int64.bits_of_float t.Steiner.xs,
           Array.map Int64.bits_of_float t.Steiner.ys,
           t.Steiner.parent, t.Steiner.x_source, t.Steiner.y_source,
           t.Steiner.order))
    nets.Sta.Nets.trees

let jitter design rng mag =
  List.iter
    (fun c ->
      let cell = design.Netlist.cells.(c) in
      cell.Netlist.x <- cell.Netlist.x +. Workload.Rng.float rng (2.0 *. mag) -. mag;
      cell.Netlist.y <- cell.Netlist.y +. Workload.Rng.float rng (2.0 *. mag) -. mag)
    (Netlist.movable_cells design)

(* replay the same motion/maintenance sequence under a given per-tick
   action and return the final bitwise tree state *)
let replay design graph home ticks act =
  Netlist.restore_positions design home;
  let nets = Sta.Nets.create graph in
  let rng = Workload.Rng.create 31 in
  for _ = 1 to ticks do
    jitter design rng 3.0;
    act nets
  done;
  nets_state nets

let check_states label a b =
  Alcotest.(check int) (label ^ ": same net count") (Array.length a)
    (Array.length b);
  Array.iteri
    (fun i sa -> if sa <> b.(i) then Alcotest.failf "%s: net %d differs" label i)
    a

let test_dirty_zero_is_full_rebuild () =
  (* threshold 0 re-topologises everything that moved at all; since the
     classifier is [> thr] on pin displacement and rebuilds of unmoved
     nets are reproducible, the result must be bit-identical to the
     unconditional rebuild *)
  let design, graph = workload_nets 5 in
  let home = Netlist.copy_positions design in
  let a =
    replay design graph home 3 (fun n -> Sta.Nets.rebuild ~dirty_threshold:0.0 n)
  in
  let b = replay design graph home 3 (fun n -> Sta.Nets.rebuild n) in
  check_states "threshold 0 vs full" a b

let test_dirty_huge_is_refresh () =
  (* an unreachable threshold classifies every net clean: the rebuild
     tick degenerates to the provenance refresh, bit for bit *)
  let design, graph = workload_nets 6 in
  let home = Netlist.copy_positions design in
  let a =
    replay design graph home 3 (fun n ->
      Sta.Nets.rebuild ~dirty_threshold:1e30 n)
  in
  let b = replay design graph home 3 (fun n -> Sta.Nets.refresh n) in
  check_states "huge threshold vs refresh" a b

let test_dirty_rebuild_pool_bit_identical () =
  (* the three-phase dirty rebuild must not depend on the domain count
     (LUT classes are only ever generated sequentially) *)
  let design, graph = workload_nets 7 in
  let home = Netlist.copy_positions design in
  let act pool n = Sta.Nets.rebuild ~dirty_threshold:6.0 ?pool n in
  let seq = replay design graph home 3 (act None) in
  List.iter
    (fun domains ->
      let pool = Parallel.create ~domains ~oversubscribe:true () in
      let pooled =
        Fun.protect
          ~finally:(fun () -> Parallel.shutdown pool)
          (fun () -> replay design graph home 3 (act (Some pool)))
      in
      check_states (Printf.sprintf "@%dd vs sequential" domains) seq pooled)
    [ 2; 4 ]

let test_dirty_skips_unmoved () =
  (* with a permissive threshold and tiny motion, anchors must keep nets
     clean: trees keep their topology while coordinates track the pins *)
  let design, graph = workload_nets 8 in
  let nets = Sta.Nets.create graph in
  let before = nets_state nets in
  let topo_of = Array.map (Option.map (fun (_, _, p, _, _, o) -> (p, o))) in
  let rng = Workload.Rng.create 77 in
  jitter design rng 0.01;
  Sta.Nets.rebuild ~dirty_threshold:1.0 nets;
  let after = nets_state nets in
  Alcotest.(check bool) "coordinates moved" true (before <> after);
  Array.iteri
    (fun i t ->
      if t <> (topo_of after).(i) then
        Alcotest.failf "net %d re-topologised below threshold" i)
    (topo_of before)

let suite =
  suite
  @ [ Alcotest.test_case "dirty threshold 0 = full rebuild" `Quick
        test_dirty_zero_is_full_rebuild;
      Alcotest.test_case "huge dirty threshold = refresh" `Quick
        test_dirty_huge_is_refresh;
      Alcotest.test_case "dirty rebuild pool bit-identical" `Quick
        test_dirty_rebuild_pool_bit_identical;
      Alcotest.test_case "dirty rebuild skips unmoved nets" `Quick
        test_dirty_skips_unmoved ]
