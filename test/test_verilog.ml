(* Tests for the structural Verilog reader/writer. *)

let lib = Liberty.Synthetic.default ()

let sample_source =
  "// a tiny mapped netlist\n\
   module top (a, b, clk_unused, y);\n\
  \  input a, b;\n\
  \  input clk_unused;\n\
  \  output y;\n\
  \  wire n1, n2;\n\
  \  /* two gates and a register */\n\
  \  NAND2_X1 u1 (.A(a), .B(b), .Y(n1));\n\
  \  INV_X1 u2 (.A(n1), .Y(n2));\n\
  \  DFF_X1 ff1 (.D(n2), .CK(clk), .Q(y));\n\
   endmodule\n"

let test_import_basics () =
  let d = Verilog.import lib sample_source in
  Alcotest.(check string) "module name" "top" d.Netlist.design_name;
  (* 4 pads + 3 cells *)
  Alcotest.(check int) "cells" 7 (Netlist.num_cells d);
  Alcotest.(check int) "movable" 3 (List.length (Netlist.movable_cells d));
  (* the clock net (only clock pins, no driver) is dropped: ideal clock *)
  (match Netlist.pin_by_name d "ff1/CK" with
   | Some p -> Alcotest.(check int) "ck unconnected" (-1) p.Netlist.net
   | None -> Alcotest.fail "missing ff1/CK");
  (* connectivity: a -> u1.A *)
  (match Netlist.pin_by_name d "u1/A" with
   | Some p ->
     let net = d.Netlist.nets.(p.Netlist.net) in
     let driver =
       match Netlist.net_driver d net.Netlist.net_id with
       | Some q -> d.Netlist.pins.(q).Netlist.pin_name
       | None -> "?"
     in
     Alcotest.(check string) "driven by pad a" "a/P" driver
   | None -> Alcotest.fail "missing u1/A")

let test_import_is_placeable () =
  let d = Verilog.import lib sample_source in
  let g = Sta.Graph.build d lib Sta.Constraints.default in
  let report = Sta.Timer.run (Sta.Timer.create g) in
  Alcotest.(check bool) "finite timing" true
    (Float.is_finite report.Sta.Timer.setup_wns);
  (* endpoints: ff1/D and the y port *)
  Alcotest.(check int) "endpoints" 2 (Array.length g.Sta.Graph.endpoints)

let test_roundtrip_connectivity () =
  (* export a generated design, re-import it, and compare STA results:
     geometry is invented on import, so compare the *graph*, not
     positions *)
  let spec = { Workload.default_spec with Workload.sp_cells = 150 } in
  let design, cons = Workload.generate lib spec in
  let src = Verilog.export design lib in
  let d2 = Verilog.import lib src in
  Alcotest.(check int) "cells preserved" (Netlist.num_cells design)
    (Netlist.num_cells d2);
  Alcotest.(check int) "nets preserved" (Netlist.num_nets design)
    (Netlist.num_nets d2);
  Alcotest.(check int) "pins preserved" (Netlist.num_pins design)
    (Netlist.num_pins d2);
  let g1 = Sta.Graph.build design lib cons in
  let g2 = Sta.Graph.build d2 lib cons in
  Alcotest.(check int) "same depth" (Sta.Graph.max_level g1)
    (Sta.Graph.max_level g2);
  Alcotest.(check int) "same endpoints"
    (Array.length g1.Sta.Graph.endpoints)
    (Array.length g2.Sta.Graph.endpoints);
  (* the re-imported design places and times end to end *)
  let cfg =
    { Core.default_config with
      Core.mode = Core.Wirelength_only; max_iterations = 60;
      min_iterations = 10 }
  in
  let r = Core.run cfg g2 in
  Alcotest.(check bool) "placeable" true (r.Core.res_iterations >= 10)

let test_export_reimport_fixpoint () =
  let spec = { Workload.default_spec with Workload.sp_cells = 80 } in
  let design, _ = Workload.generate lib spec in
  let src = Verilog.export design lib in
  let d2 = Verilog.import lib src in
  Alcotest.(check string) "export stable" src (Verilog.export d2 lib)

let test_escaped_identifiers () =
  let src =
    "module top (\\weird[0] , y);\n\
    \  input \\weird[0] ;\n\
    \  output y;\n\
    \  INV_X1 \\inv.cell (.A(\\weird[0] ), .Y(y));\n\
     endmodule\n"
  in
  let d = Verilog.import lib src in
  Alcotest.(check bool) "escaped cell name" true
    (Netlist.cell_by_name d "inv.cell" <> None);
  Alcotest.(check bool) "escaped port" true
    (Netlist.cell_by_name d "weird[0]" <> None)

let test_parse_errors () =
  let expect name src =
    match Verilog.import lib src with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "%s: expected Failure" name
  in
  expect "not a module" "wire x;";
  expect "unknown cell" "module t (a); input a; BOGUS_X9 u (.A(a)); endmodule";
  expect "unknown pin"
    "module t (a); input a; INV_X1 u (.Q(a)); endmodule";
  expect "positional connection"
    "module t (a); input a; INV_X1 u (a); endmodule";
  expect "unterminated comment" "module t (a); /* input a; endmodule";
  expect "missing endmodule" "module t (a); input a;"

(* Errors report "FILE:LINE: ..." (or "verilog:LINE: ..." for
   anonymous input), for both lexical and resolution failures. *)
let test_error_location () =
  let starts_with pre s =
    String.length s >= String.length pre
    && String.sub s 0 (String.length pre) = pre
  in
  let expect_msg name f check =
    match f () with
    | exception Failure m ->
      if not (check m) then Alcotest.failf "%s: bad message %S" name m
    | _ -> Alcotest.failf "%s: expected Failure" name
  in
  expect_msg "syntax error format"
    (fun () -> Verilog.import ~file:"t.v" lib "module t (a);\n  bogus!\n")
    (fun m -> starts_with "t.v:2: parse error:" m);
  expect_msg "unknown cell at declaration line"
    (fun () ->
      Verilog.import ~file:"t.v" lib
        "module t (a);\n  input a;\n  BOGUS_X9 u (.A(a));\nendmodule\n")
    (fun m -> starts_with "t.v:3: " m);
  expect_msg "unknown pin at declaration line"
    (fun () ->
      Verilog.import ~file:"t.v" lib
        "module t (a);\n  input a;\n  INV_X1 u (.Q(a));\nendmodule\n")
    (fun m -> starts_with "t.v:3: " m);
  expect_msg "anonymous input names the format"
    (fun () -> Verilog.import lib "wire x;")
    (fun m -> starts_with "verilog:1: parse error:" m)

let test_save_load () =
  let spec = { Workload.default_spec with Workload.sp_cells = 60 } in
  let design, _ = Workload.generate lib spec in
  let path = Filename.temp_file "dgp" ".v" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Verilog.save path design lib;
      let d2 = Verilog.load lib path in
      Alcotest.(check int) "cells" (Netlist.num_cells design) (Netlist.num_cells d2))

let suite =
  [ Alcotest.test_case "import basics" `Quick test_import_basics;
    Alcotest.test_case "import is placeable" `Quick test_import_is_placeable;
    Alcotest.test_case "roundtrip connectivity" `Quick test_roundtrip_connectivity;
    Alcotest.test_case "export fixpoint" `Quick test_export_reimport_fixpoint;
    Alcotest.test_case "escaped identifiers" `Quick test_escaped_identifiers;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "error locations" `Quick test_error_location;
    Alcotest.test_case "save/load" `Quick test_save_load ]
