(* Tests for the Tetris legaliser. *)

let region = Geometry.Rect.make ~lx:0.0 ~ly:0.0 ~hx:60.0 ~hy:60.0

let random_design ?(rows = 1.5) ?(util = 0.5) seed n =
  let b = Netlist.Builder.create ~region ~row_height:rows "lg" in
  let rng = Workload.Rng.create seed in
  let target_area = util *. Geometry.Rect.area region in
  let area = ref 0.0 in
  let i = ref 0 in
  while !area < target_area && !i < n do
    let w = 0.8 +. Workload.Rng.float rng 2.0 in
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" !i)
         ~lib_cell:0 ~width:w ~height:rows
         ~x:(2.0 +. Workload.Rng.float rng 56.0)
         ~y:(2.0 +. Workload.Rng.float rng 56.0)
         ());
    area := !area +. (w *. rows);
    incr i
  done;
  Netlist.Builder.freeze b

let test_removes_overlap () =
  let d = random_design 3 5000 in
  Alcotest.(check bool) "initial overlap" true (Legalize.overlap_area d > 0.0);
  let _ = Legalize.legalize d in
  Alcotest.(check (float 1e-6)) "no overlap" 0.0 (Legalize.overlap_area d)

let test_rows_and_region () =
  let d = random_design 4 5000 in
  let _ = Legalize.legalize d in
  let rh = d.Netlist.row_height in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        (* y on a row center *)
        let k = (c.Netlist.y -. (rh /. 2.0)) /. rh in
        if Float.abs (k -. Float.round k) > 1e-6 then
          Alcotest.failf "cell %s not on a row (y=%f)" c.Netlist.cell_name
            c.Netlist.y;
        (* fully inside the region *)
        if c.Netlist.x -. (c.Netlist.width /. 2.0) < -1e-6
           || c.Netlist.x +. (c.Netlist.width /. 2.0) > 60.0 +. 1e-6
        then Alcotest.fail "cell outside region"
      end)
    d.Netlist.cells

let test_displacement_stats () =
  let d = random_design 5 5000 in
  let before = Netlist.copy_positions d in
  let s = Legalize.legalize d in
  Alcotest.(check bool) "some cells move" true (s.Legalize.moved_cells > 0);
  Alcotest.(check bool) "avg <= max" true
    (s.Legalize.average_displacement <= s.Legalize.max_displacement +. 1e-9);
  (* recompute displacement independently *)
  let xs, ys = before in
  let total = ref 0.0 in
  Array.iteri
    (fun i (c : Netlist.cell) ->
      if not c.Netlist.fixed then
        total := !total +. Float.abs (c.Netlist.x -. xs.(i))
                 +. Float.abs (c.Netlist.y -. ys.(i)))
    d.Netlist.cells;
  Alcotest.(check (float 1e-6)) "total displacement" !total
    s.Legalize.total_displacement

let test_fixed_untouched () =
  let b = Netlist.Builder.create ~region ~row_height:1.5 "fx" in
  let _ =
    Netlist.Builder.add_cell b ~name:"block" ~lib_cell:(-1) ~width:20.0
      ~height:20.0 ~x:30.0 ~y:30.0 ~fixed:true ()
  in
  for i = 0 to 199 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" i)
         ~lib_cell:0 ~width:1.5 ~height:1.5 ~x:30.0 ~y:30.0 ())
  done;
  let d = Netlist.Builder.freeze b in
  let _ = Legalize.legalize d in
  let block = d.Netlist.cells.(0) in
  Alcotest.(check (float 1e-12)) "fixed x" 30.0 block.Netlist.x;
  (* movable cells avoid the blockage *)
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        let r1 =
          Geometry.Rect.of_center
            (Geometry.Point.make c.Netlist.x c.Netlist.y)
            ~width:c.Netlist.width ~height:c.Netlist.height
        in
        let r2 =
          Geometry.Rect.of_center
            (Geometry.Point.make 30.0 30.0)
            ~width:20.0 ~height:20.0
        in
        if Geometry.Rect.overlap_area r1 r2 > 1e-6 then
          Alcotest.failf "cell %s overlaps the blockage" c.Netlist.cell_name
      end)
    d.Netlist.cells

let test_determinism () =
  let d1 = random_design 6 4000 in
  let d2 = random_design 6 4000 in
  let _ = Legalize.legalize d1 in
  let _ = Legalize.legalize d2 in
  Array.iteri
    (fun i (c : Netlist.cell) ->
      let c2 = d2.Netlist.cells.(i) in
      if c.Netlist.x <> c2.Netlist.x || c.Netlist.y <> c2.Netlist.y then
        Alcotest.fail "legalisation not deterministic")
    d1.Netlist.cells

let test_too_full_degrades () =
  (* 120% utilisation cannot be legalised overlap-free; instead of
     aborting the flow the legaliser must finish, report the overfull
     cells and leave every cell inside the region on a row *)
  let b = Netlist.Builder.create ~region ~row_height:1.5 "full" in
  let area = ref 0.0 in
  let i = ref 0 in
  while !area < 1.2 *. Geometry.Rect.area region do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" !i)
         ~lib_cell:0 ~width:3.0 ~height:1.5 ~x:30.0 ~y:30.0 ());
    area := !area +. 4.5;
    incr i
  done;
  let d = Netlist.Builder.freeze b in
  let s = Legalize.legalize d in
  Alcotest.(check bool) "some cells overfull" true (s.Legalize.overfull_cells > 0);
  Alcotest.(check bool) "overflow positive" true (s.Legalize.total_overflow > 0.0);
  Alcotest.(check int) "one warning per overfull cell"
    s.Legalize.overfull_cells
    (List.length s.Legalize.warnings);
  List.iter
    (fun w ->
      Alcotest.(check bool) "warning mentions overflow" true
        (let has_sub sub s =
           let n = String.length sub and m = String.length s in
           let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has_sub "overflow" w))
    s.Legalize.warnings;
  let rh = d.Netlist.row_height in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not c.Netlist.fixed then begin
        let k = (c.Netlist.y -. (rh /. 2.0)) /. rh in
        if Float.abs (k -. Float.round k) > 1e-6 then
          Alcotest.failf "cell %s not on a row (y=%f)" c.Netlist.cell_name
            c.Netlist.y;
        if c.Netlist.x -. (c.Netlist.width /. 2.0) < -1e-6
           || c.Netlist.x +. (c.Netlist.width /. 2.0) > 60.0 +. 1e-6
        then Alcotest.fail "cell outside region"
      end)
    d.Netlist.cells

let test_overfull_row_regression () =
  (* one deliberately overfull row: 10 cells of width 8 want row 0 of a
     60-wide region (80 > 60).  The fallback must keep the flow alive,
     place the spill deterministically and report the exact overflow. *)
  let b = Netlist.Builder.create ~region ~row_height:1.5 "row0" in
  for i = 0 to 9 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" i)
         ~lib_cell:0 ~width:8.0 ~height:1.5
         ~x:(4.0 +. (6.0 *. float_of_int i))
         ~y:0.75 ())
  done;
  let d = Netlist.Builder.freeze b in
  let s = Legalize.legalize d in
  (* 7 cells fit on row 0 (56 <= 60), the spill lands on nearby rows
     without triggering the overfull fallback — the region as a whole
     has plenty of space, so no warnings *)
  Alcotest.(check int) "nothing overfull" 0 s.Legalize.overfull_cells;
  Alcotest.(check (float 1e-6)) "no overlap" 0.0 (Legalize.overlap_area d);
  (* now really exhaust the region: a single movable giant wider than
     any row *)
  let b2 = Netlist.Builder.create ~region ~row_height:1.5 "giant" in
  ignore
    (Netlist.Builder.add_cell b2 ~name:"wide" ~lib_cell:0 ~width:70.0
       ~height:1.5 ~x:30.0 ~y:0.75 ());
  let d2 = Netlist.Builder.freeze b2 in
  let s2 = Legalize.legalize d2 in
  Alcotest.(check int) "giant is overfull" 1 s2.Legalize.overfull_cells;
  Alcotest.(check (float 1e-6)) "overflow = width - row width" 10.0
    s2.Legalize.total_overflow;
  (* deterministic fallback: run again from the same start *)
  let b3 = Netlist.Builder.create ~region ~row_height:1.5 "giant" in
  ignore
    (Netlist.Builder.add_cell b3 ~name:"wide" ~lib_cell:0 ~width:70.0
       ~height:1.5 ~x:30.0 ~y:0.75 ());
  let d3 = Netlist.Builder.freeze b3 in
  let _ = Legalize.legalize d3 in
  Alcotest.(check (float 1e-12)) "deterministic x"
    d2.Netlist.cells.(0).Netlist.x d3.Netlist.cells.(0).Netlist.x;
  Alcotest.(check (float 1e-12)) "deterministic y"
    d2.Netlist.cells.(0).Netlist.y d3.Netlist.cells.(0).Netlist.y

let test_already_legal_small_moves () =
  (* a design already sitting on rows only gets micro-adjustments *)
  let b = Netlist.Builder.create ~region ~row_height:1.5 "calm" in
  for i = 0 to 9 do
    ignore
      (Netlist.Builder.add_cell b
         ~name:(Printf.sprintf "c%d" i)
         ~lib_cell:0 ~width:2.0 ~height:1.5
         ~x:(5.0 +. (4.0 *. float_of_int i))
         ~y:0.75 ())
  done;
  let d = Netlist.Builder.freeze b in
  let s = Legalize.legalize d in
  Alcotest.(check (float 1e-6)) "no movement" 0.0 s.Legalize.total_displacement

let suite =
  [ Alcotest.test_case "removes overlap" `Quick test_removes_overlap;
    Alcotest.test_case "rows and region" `Quick test_rows_and_region;
    Alcotest.test_case "displacement stats" `Quick test_displacement_stats;
    Alcotest.test_case "fixed cells untouched" `Quick test_fixed_untouched;
    Alcotest.test_case "deterministic" `Quick test_determinism;
    Alcotest.test_case "over-full degrades gracefully" `Quick
      test_too_full_degrades;
    Alcotest.test_case "overfull row regression" `Quick
      test_overfull_row_regression;
    Alcotest.test_case "already legal is stable" `Quick
      test_already_legal_small_moves ]
