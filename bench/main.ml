(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Table 2, Table 3, Figure 8) on the superblue-mini
   workloads, plus the ablations called out in DESIGN.md.

   Usage:  dune exec bench/main.exe [-- <target> ...]
   Targets: table1 table2 table3 figure8 kernels ablation-gamma
            ablation-reuse ablation-extensions gradcheck difftimer
            placer-iter paths parallel incremental routability
            multilevel all (default: all)
   Options: --scale <f>       benchmark scale factor (default 0.01)
            --quick           fewer iterations for difftimer
            --out <f>         difftimer JSON path (default BENCH_difftimer.json)
            --smoke           tiny placer-iter/paths/parallel/incremental
                              run for CI
            --placer-out <f>  placer-iter JSON path
                              (default BENCH_placeriter.json)
            --paths-out <f>   paths JSON path (default BENCH_paths.json)
            --parallel-out <f> executor JSON path (default BENCH_parallel.json)
            --incremental-out <f> incremental-STA JSON path
                              (default BENCH_incremental.json)
            --routability-out <f> routability JSON path
                              (default BENCH_routability.json)
            --multilevel-out <f> multilevel JSON path
                              (default BENCH_multilevel.json)
            --domains <n>     worker domains for every placement run
                              (default 1; results are bit-identical
                              across domain counts) *)

let scale = ref 0.01

(* worker pool shared by every placement run (None = sequential); set
   from --domains in the driver.  Pooled runs are bit-identical to
   sequential ones, so the tables are reproducible at any domain
   count. *)
let pool : Parallel.pool option ref = ref None

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let lib = Liberty.Synthetic.default ()

(* machine/revision metadata recorded uniformly in every BENCH_*.json
   so results stay attributable when files from different machines or
   revisions are compared side by side *)
let git_rev =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let json_meta () =
  Printf.sprintf
    "  \"cores\": %d,\n  \"hostname\": %S,\n  \"git_rev\": %S,\n\
    \  \"peak_rss_mb\": %.1f,\n"
    (Domain.recommended_domain_count ())
    (try Unix.gethostname () with _ -> "unknown")
    (Lazy.force git_rev)
    (Obs.peak_rss_bytes () /. 1048576.0)

let build_bench spec =
  let design, cons = Workload.generate lib spec in
  let graph = Sta.Graph.build design lib cons in
  (design, graph)

(* ---- a placement run of one mode, scored after legalisation ---- *)

type outcome = {
  o_wns : float;
  o_tns : float;
  o_hpwl : float;
  o_runtime : float;
  o_iterations : int;
  o_trace : Core.trace_point list;
}

let run_mode ?(config = Core.default_config) mode spec =
  let design, graph = build_bench spec in
  let cfg = { config with Core.mode } in
  let result = Core.run ?pool:!pool cfg graph in
  ignore (Legalize.legalize design);
  let report, hpwl = Core.score graph in
  { o_wns = report.Sta.Timer.setup_wns;
    o_tns = report.Sta.Timer.setup_tns;
    o_hpwl = hpwl;
    o_runtime = result.Core.res_runtime;
    o_iterations = result.Core.res_iterations;
    o_trace = result.Core.res_trace }

let modes =
  [ ("DREAMPlace[16]", Core.Wirelength_only);
    ("NetWeight[24]", Core.Net_weighting Netweight.default_config);
    ("PathWeight[paths]", Core.Path_weighting Paths.Weight.default_config);
    ("Ours", Core.Differentiable_timing Core.default_timing) ]

(* ---- Table 1: the ML/placement analogy (expository) ---- *)

let table1 () =
  section "Table 1: the analogy between ML training and placement [16]";
  let t = Report.Table.create [ "Machine Learning"; "Placement" ] in
  Report.Table.add_row t [ "Train a neural network"; "Solve global placement" ];
  Report.Table.add_row t [ "Dataset"; "Net instances" ];
  Report.Table.add_row t [ "Loss function"; "Wirelength objective" ];
  Report.Table.add_row t [ "Regularization"; "Density constraint" ];
  print_string (Report.Table.render t)

(* ---- Table 2: benchmark statistics ---- *)

let table2 () =
  section
    (Printf.sprintf
       "Table 2: benchmark statistics (superblue-mini at scale %g; paper \
        values in parentheses)" !scale);
  let t =
    Report.Table.create
      [ "Benchmark"; "#Cells"; "#Nets"; "#Pins"; "MaxFanout"; "Levels";
        "(paper #Cells)"; "(paper #Nets)"; "(paper #Pins)" ]
  in
  List.iter2
    (fun spec (p : Report.Paper.table2_row) ->
      let design, cons = Workload.generate lib spec in
      let s = Netlist.Stats.compute design in
      let graph = Sta.Graph.build design lib cons in
      Report.Table.add_row t
        [ spec.Workload.sp_name;
          string_of_int s.Netlist.Stats.cells;
          string_of_int s.Netlist.Stats.nets;
          string_of_int s.Netlist.Stats.pins;
          string_of_int s.Netlist.Stats.max_fanout;
          string_of_int (Sta.Graph.max_level graph + 1);
          string_of_int p.Report.Paper.t2_cells;
          string_of_int p.Report.Paper.t2_nets;
          string_of_int p.Report.Paper.t2_pins ])
    (Workload.superblue_mini ~scale:!scale ())
    Report.Paper.table2;
  print_string (Report.Table.render t)

(* ---- Table 3: the headline comparison ---- *)

let neg v = Float.min 0.0 v

let table3 () =
  section
    (Printf.sprintf
       "Table 3: WNS / TNS / HPWL / runtime, four placers at scale %g"
       !scale);
  Printf.printf
    "(identical density-overflow stop criterion for all placers; scoring by \
     exact STA after legalisation)\n\n";
  let specs = Workload.superblue_mini ~scale:!scale () in
  let t =
    Report.Table.create
      [ "Benchmark"; "Placer"; "WNS(ps)"; "TNS(ps)"; "HPWL(um)"; "Time(s)" ]
  in
  (* outcome lists per mode, in spec order *)
  let all =
    List.map
      (fun spec ->
        let rows =
          List.map
            (fun (name, mode) ->
              let o = run_mode mode spec in
              Report.Table.add_row t
                [ spec.Workload.sp_name; name;
                  Printf.sprintf "%.1f" o.o_wns;
                  Printf.sprintf "%.1f" o.o_tns;
                  Printf.sprintf "%.3e" o.o_hpwl;
                  Printf.sprintf "%.2f" o.o_runtime ];
              (name, o))
            modes
        in
        Printf.printf "  [done] %s\n%!" spec.Workload.sp_name;
        rows)
      specs
  in
  print_newline ();
  print_string (Report.Table.render t);
  (* average ratios vs ours, as in the paper's last row *)
  let ratio pick_a pick_b safe =
    List.filter_map
      (fun rows ->
        let find n = List.assoc n rows in
        let a = pick_a (find "Ours") and b = pick_b rows in
        if Float.abs a > safe && Float.abs b > safe then Some (b /. a) else None)
      all
  in
  let summary =
    Report.Table.create
      [ "Avg ratio vs Ours"; "WNS"; "TNS"; "Runtime"; "(paper WNS)";
        "(paper TNS)"; "(paper runtime)" ]
  in
  let add_summary label key paper_key =
    let wns_r =
      ratio (fun o -> neg o.o_wns) (fun rows -> neg (List.assoc key rows).o_wns) 1.0
    in
    let tns_r =
      ratio (fun o -> neg o.o_tns) (fun rows -> neg (List.assoc key rows).o_tns) 1.0
    in
    let rt_r =
      ratio (fun o -> o.o_runtime) (fun rows -> (List.assoc key rows).o_runtime) 1e-6
    in
    Report.Table.add_row summary
      [ label;
        Report.ratio_string (Report.geometric_mean wns_r);
        Report.ratio_string (Report.geometric_mean tns_r);
        Report.ratio_string (Report.geometric_mean rt_r);
        Report.ratio_string (Report.Paper.avg_ratio_wns paper_key);
        Report.ratio_string (Report.Paper.avg_ratio_tns paper_key);
        Report.ratio_string (Report.Paper.avg_ratio_runtime paper_key) ]
  in
  add_summary "DREAMPlace[16]" "DREAMPlace[16]" `Dreamplace;
  add_summary "NetWeight[24]" "NetWeight[24]" `Net_weighting;
  print_newline ();
  print_string (Report.Table.render summary);
  (* who-wins checks, the shape the paper claims *)
  let wins metric =
    List.for_all
      (fun rows ->
        metric (List.assoc "Ours" rows) <= metric (List.assoc "NetWeight[24]" rows)
        +. 1e-9)
      all
  in
  Printf.printf
    "\nShape checks: ours >= net weighting on WNS in %d/%d designs; on TNS in \
     %d/%d designs\n"
    (List.length (List.filter (fun r -> (List.assoc "Ours" r).o_wns
                                        >= (List.assoc "NetWeight[24]" r).o_wns) all))
    (List.length all)
    (List.length (List.filter (fun r -> (List.assoc "Ours" r).o_tns
                                        >= (List.assoc "NetWeight[24]" r).o_tns) all))
    (List.length all);
  ignore (wins (fun o -> o.o_runtime))

(* ---- Figure 8: optimisation trajectories on superblue4 ---- *)

let figure8 () =
  section "Figure 8: optimisation iterations for benchmark superblue4-mini";
  Printf.printf
    "(columns: baseline DREAMPlace vs ours; WNS/TNS sampled every 10 \
     iterations; '-' = not evaluated)\n\n";
  let spec =
    match Workload.find_spec "superblue4-mini" with
    | Some s -> { s with Workload.sp_cells =
                    max 200 (int_of_float (795645.0 *. !scale)) }
    | None -> failwith "missing superblue4-mini spec"
  in
  let base_cfg = { Core.default_config with Core.trace_timing_period = 10 } in
  let dp = run_mode ~config:base_cfg Core.Wirelength_only spec in
  let ours =
    run_mode ~config:base_cfg
      (Core.Differentiable_timing Core.default_timing) spec
  in
  let t =
    Report.Table.create
      [ "iter"; "HPWL[16]"; "ovf[16]"; "WNS[16]"; "TNS[16]";
        "HPWL[ours]"; "ovf[ours]"; "WNS[ours]"; "TNS[ours]" ]
  in
  let cell = function
    | None -> "-"
    | Some v -> Printf.sprintf "%.1f" v
  in
  let rec zip a b =
    match a, b with
    | [], [] -> ()
    | pa :: ra, pb :: rb ->
      let (p : Core.trace_point) = pa in
      if p.Core.tp_iteration mod 10 = 0 then
        Report.Table.add_row t
          [ string_of_int p.Core.tp_iteration;
            Printf.sprintf "%.3e" p.Core.tp_hpwl;
            Printf.sprintf "%.3f" p.Core.tp_overflow;
            cell p.Core.tp_wns;
            cell p.Core.tp_tns;
            Printf.sprintf "%.3e" pb.Core.tp_hpwl;
            Printf.sprintf "%.3f" pb.Core.tp_overflow;
            cell pb.Core.tp_wns;
            cell pb.Core.tp_tns ];
      zip ra rb
    | pa :: ra, [] ->
      if pa.Core.tp_iteration mod 10 = 0 then
        Report.Table.add_row t
          [ string_of_int pa.Core.tp_iteration;
            Printf.sprintf "%.3e" pa.Core.tp_hpwl;
            Printf.sprintf "%.3f" pa.Core.tp_overflow;
            cell pa.Core.tp_wns; cell pa.Core.tp_tns; "-"; "-"; "-"; "-" ];
      zip ra []
    | [], pb :: rb ->
      if pb.Core.tp_iteration mod 10 = 0 then
        Report.Table.add_row t
          [ string_of_int pb.Core.tp_iteration; "-"; "-"; "-"; "-";
            Printf.sprintf "%.3e" pb.Core.tp_hpwl;
            Printf.sprintf "%.3f" pb.Core.tp_overflow;
            cell pb.Core.tp_wns; cell pb.Core.tp_tns ];
      zip [] rb
  in
  zip dp.o_trace ours.o_trace;
  print_string (Report.Table.render t);
  Printf.printf
    "\nFinal (post-legalisation): baseline WNS %.1f TNS %.1f HPWL %.3e | ours \
     WNS %.1f TNS %.1f HPWL %.3e\n"
    dp.o_wns dp.o_tns dp.o_hpwl ours.o_wns ours.o_tns ours.o_hpwl

(* ---- kernel micro-benchmarks (Bechamel) ---- *)

let kernels () =
  section "Kernel micro-benchmarks (Bechamel; superblue4-mini)";
  let spec =
    match Workload.find_spec "superblue4-mini" with
    | Some s -> { s with Workload.sp_cells =
                    max 200 (int_of_float (795645.0 *. !scale)) }
    | None -> failwith "missing superblue4-mini spec"
  in
  let design, graph = build_bench spec in
  let dt = Difftimer.create ~gamma:20.0 graph in
  let nets = Difftimer.nets dt in
  Sta.Nets.rebuild nets;
  ignore (Difftimer.forward dt);
  let timer = Sta.Timer.create graph in
  let wl = Wirelength.create design in
  let dens = Density.create design in
  let ncells = Netlist.num_cells design in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  let open Bechamel in
  let tests =
    [ Test.make ~name:"steiner_rebuild(all nets)"
        (Staged.stage (fun () -> Sta.Nets.rebuild nets));
      Test.make ~name:"nets_refresh(provenance+rc)"
        (Staged.stage (fun () -> Sta.Nets.refresh nets));
      Test.make ~name:"diff_forward(smoothed STA)"
        (Staged.stage (fun () -> ignore (Difftimer.forward dt)));
      Test.make ~name:"diff_backward(full gradient)"
        (Staged.stage (fun () ->
          Array.fill gx 0 ncells 0.0;
          Array.fill gy 0 ncells 0.0;
          Difftimer.backward dt ~w_tns:1.0 ~w_wns:1.0 ~grad_x:gx ~grad_y:gy));
      Test.make ~name:"exact_sta(report, reuse trees)"
        (Staged.stage (fun () -> ignore (Sta.Timer.run ~rebuild_trees:false timer)));
      (let inc = Sta.Incremental.create graph in
       let movable = Array.of_list (Netlist.movable_cells design) in
       let rng = Workload.Rng.create 7 in
       Test.make ~name:"incremental_sta(1 cell moved)"
         (Staged.stage (fun () ->
           let c = design.Netlist.cells.(movable.(Workload.Rng.int rng
                                                   (Array.length movable))) in
           Sta.Incremental.move_cell inc c.Netlist.cell_id
             ~x:(c.Netlist.x +. 1.0) ~y:c.Netlist.y;
           ignore (Sta.Incremental.update inc))));
      Test.make ~name:"wirelength_grad(WA)"
        (Staged.stage (fun () ->
          Array.fill gx 0 ncells 0.0;
          Array.fill gy 0 ncells 0.0;
          ignore (Wirelength.evaluate wl ~grad_x:gx ~grad_y:gy ())));
      Test.make ~name:"density_update(FFT Poisson)"
        (Staged.stage (fun () -> Density.update dens)) ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 1.0) () in
    let results =
      Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"k" [ test ])
    in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
          Printf.printf "  %-32s %12.3f us/call\n" name (est /. 1000.0)
        | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
      ols
  in
  List.iter benchmark tests;
  (* level-parallel forward scaling over worker domains (the "GPU
     kernel" substitution: same level-synchronous structure, CPU lanes) *)
  let cores = Domain.recommended_domain_count () in
  if cores <= 1 then
    Printf.printf
      "\n  diff_forward domain scaling skipped: this machine exposes %d \
       core(s).\n  (Correctness of the parallel kernels is covered by the \
       test suite.)\n"
      cores
  else begin
    Printf.printf "\n  diff_forward scaling over domains (%d cores):\n" cores;
    let time_forward pool =
      let iters = 20 in
      let t0 = Obs.Clock.now () in
      for _ = 1 to iters do
        ignore (Difftimer.forward ?pool dt)
      done;
      (Obs.Clock.now () -. t0) /. float_of_int iters *. 1e6
    in
    let sequential_us = time_forward None in
    Printf.printf "  %-32s %12.3f us/call\n" "domains=1" sequential_us;
    List.iter
      (fun domains ->
        let pool = Parallel.create ~domains () in
        let us =
          Fun.protect
            ~finally:(fun () -> Parallel.shutdown pool)
            (fun () -> time_forward (Some pool))
        in
        Printf.printf "  %-32s %12.3f us/call (%.2fx)\n"
          (Printf.sprintf "domains=%d" domains)
          us (sequential_us /. us))
      [ 2; min 4 (cores - 1) ]
  end

(* ---- ablations ---- *)

let ablation_gamma () =
  section "Ablation A: LSE smoothing width gamma (superblue4-mini)";
  Printf.printf
    "(larger gamma smooths more at the cost of accuracy, paper SS3.2)\n\n";
  let spec =
    match Workload.find_spec "superblue4-mini" with
    | Some s -> { s with Workload.sp_cells =
                    max 200 (int_of_float (795645.0 *. !scale)) }
    | None -> failwith "missing superblue4-mini spec"
  in
  let t = Report.Table.create [ "gamma(ps)"; "WNS(ps)"; "TNS(ps)"; "HPWL(um)" ] in
  List.iter
    (fun gamma ->
      let o =
        run_mode
          (Core.Differentiable_timing { Core.default_timing with Core.gamma })
          spec
      in
      Report.Table.add_row t
        [ Printf.sprintf "%.0f" gamma;
          Printf.sprintf "%.1f" o.o_wns;
          Printf.sprintf "%.1f" o.o_tns;
          Printf.sprintf "%.3e" o.o_hpwl ])
    [ 5.0; 20.0; 80.0; 320.0 ];
  print_string (Report.Table.render t)

let ablation_reuse () =
  section "Ablation B: Steiner tree reuse period (superblue4-mini)";
  Printf.printf
    "(the paper rebuilds trees every 10 iterations and reuses provenance \
     updates in between, SS3.6)\n\n";
  let spec =
    match Workload.find_spec "superblue4-mini" with
    | Some s -> { s with Workload.sp_cells =
                    max 200 (int_of_float (795645.0 *. !scale)) }
    | None -> failwith "missing superblue4-mini spec"
  in
  let t =
    Report.Table.create
      [ "period"; "WNS(ps)"; "TNS(ps)"; "HPWL(um)"; "Time(s)" ]
  in
  List.iter
    (fun period ->
      let o =
        run_mode
          (Core.Differentiable_timing
             { Core.default_timing with Core.steiner_period = period })
          spec
      in
      Report.Table.add_row t
        [ string_of_int period;
          Printf.sprintf "%.1f" o.o_wns;
          Printf.sprintf "%.1f" o.o_tns;
          Printf.sprintf "%.3e" o.o_hpwl;
          Printf.sprintf "%.2f" o.o_runtime ])
    [ 1; 5; 10; 20 ];
  print_string (Report.Table.render t)

let ablation_extensions () =
  section
    "Ablation D: future-work extensions (gradient preconditioning, dynamic \
     weights)";
  Printf.printf
    "(the paper's conclusion lists dynamic timing-weight updating and \
     gradient preconditioning as future work; both are implemented as \
     options)\n\n";
  let spec =
    match Workload.find_spec "superblue4-mini" with
    | Some s -> { s with Workload.sp_cells =
                    max 200 (int_of_float (795645.0 *. !scale)) }
    | None -> failwith "missing superblue4-mini spec"
  in
  let t =
    Report.Table.create
      [ "variant"; "WNS(ps)"; "TNS(ps)"; "HPWL(um)"; "Time(s)" ]
  in
  let run label tc =
    let o = run_mode (Core.Differentiable_timing tc) spec in
    Report.Table.add_row t
      [ label;
        Printf.sprintf "%.1f" o.o_wns;
        Printf.sprintf "%.1f" o.o_tns;
        Printf.sprintf "%.3e" o.o_hpwl;
        Printf.sprintf "%.2f" o.o_runtime ]
  in
  run "paper schedule (fixed, no clip)" Core.default_timing;
  run "clip 5x mean" { Core.default_timing with Core.grad_clip = Some 5.0 };
  run "clip 2x mean" { Core.default_timing with Core.grad_clip = Some 2.0 };
  run "adaptive weight growth"
    { Core.default_timing with Core.growth_policy = `Adaptive };
  run "adaptive + clip 5x"
    { Core.default_timing with
      Core.growth_policy = `Adaptive; grad_clip = Some 5.0 };
  print_string (Report.Table.render t)

(* ---- gradient checks ---- *)

let gradcheck () =
  section "Ablation C: analytic gradients vs central finite differences";
  let rng = Workload.Rng.create 2024 in
  (* (a) LUT interpolation *)
  let inv =
    match Liberty.find_cell lib "INV_X1" with
    | Some c -> c
    | None -> failwith "INV_X1 missing"
  in
  let arc = inv.Liberty.lc_arcs.(0) in
  let lut = arc.Liberty.cell_rise in
  let worst = ref 0.0 in
  for _ = 1 to 200 do
    let x = Workload.Rng.float rng 180.0 and y = Workload.Rng.float rng 36.0 in
    let _, dx, dy = Liberty.Lut.lookup_with_gradient lut x y in
    let h = 1e-5 in
    let fdx =
      (Liberty.Lut.lookup lut (x +. h) y -. Liberty.Lut.lookup lut (x -. h) y)
      /. (2.0 *. h)
    and fdy =
      (Liberty.Lut.lookup lut x (y +. h) -. Liberty.Lut.lookup lut x (y -. h))
      /. (2.0 *. h)
    in
    worst := Float.max !worst (Float.abs (dx -. fdx));
    worst := Float.max !worst (Float.abs (dy -. fdy))
  done;
  Printf.printf "  LUT query gradient:        max |analytic - FD| = %.3e\n" !worst;
  (* (b) full differentiable-timer pipeline *)
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = 150; sp_inputs = 8; sp_outputs = 8; sp_depth = 6;
      sp_clock_period = 520.0 }
  in
  let design, graph = build_bench spec in
  let dt = Difftimer.create ~gamma:25.0 graph in
  let nets = Difftimer.nets dt in
  let objective () =
    Sta.Nets.refresh nets;
    let m = Difftimer.forward dt in
    (0.7 *. -.m.Difftimer.tns_smooth) +. (0.4 *. -.m.Difftimer.wns_smooth)
  in
  ignore (objective ());
  let ncells = Netlist.num_cells design in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  Difftimer.backward dt ~w_tns:0.7 ~w_wns:0.4 ~grad_x:gx ~grad_y:gy;
  let worst = ref 0.0 and h = 1e-4 in
  for _ = 1 to 30 do
    let c = design.Netlist.cells.(Workload.Rng.int rng ncells) in
    if not c.Netlist.fixed then begin
      let x0 = c.Netlist.x in
      c.Netlist.x <- x0 +. h;
      let fp = objective () in
      c.Netlist.x <- x0 -. h;
      let fm = objective () in
      c.Netlist.x <- x0;
      let fd = (fp -. fm) /. (2.0 *. h) in
      if Float.abs fd > 1e-6 then
        worst :=
          Float.max !worst
            (Float.abs (fd -. gx.(c.Netlist.cell_id)) /. Float.abs fd)
    end
  done;
  Printf.printf
    "  end-to-end TNS/WNS gradient: max relative error vs FD = %.3e\n" !worst;
  Printf.printf "  (see test/ for the per-pass Elmore and Steiner checks)\n"

(* ---- differentiable-timer forward/backward benchmark ---- *)

let quick = ref false
let bench_out = ref "BENCH_difftimer.json"

(* Seed (pre-CSR) timings, microseconds per call, measured on this
   machine with the same workload spec (seed 17, 16 in/out, depth 10,
   clock 520 ps, gamma 20) at the base revision: mean of two runs. *)
let seed_reference =
  [ (400, (1165.9, 766.2)); (1500, (4381.9, 3526.9));
    (5000, (15431.7, 12949.1)) ]

let bench_difftimer () =
  section "Differentiable timer: forward/backward (CSR graph + LUT tape)";
  let sizes = [ 400; 1500; 5000 ] in
  let iters = if !quick then 12 else 40 in
  let time_us f =
    ignore (f ());
    let t0 = Obs.Clock.now () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    (Obs.Clock.now () -. t0) /. float_of_int iters *. 1e6
  in
  let t =
    Report.Table.create
      [ "cells"; "domains"; "fwd(us)"; "bwd(us)"; "comb(us)"; "seed comb(us)";
        "speedup" ]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"bench\": \"difftimer\",\n  \"mode\": \"%s\",\n\
                    \  \"iters\": %d,\n"
       (if !quick then "quick" else "full")
       iters);
  Buffer.add_string buf (json_meta ());
  Buffer.add_string buf
    "  \"workload\": { \"seed\": 17, \"inputs\": 16, \"outputs\": 16, \
     \"depth\": 10, \"clock_period_ps\": 520.0, \"gamma_ps\": 20.0 },\n\
    \  \"sizes\": [\n";
  List.iteri
    (fun si cells ->
      let spec =
        { Workload.default_spec with
          Workload.sp_cells = cells; sp_seed = 17; sp_inputs = 16;
          sp_outputs = 16; sp_depth = 10; sp_clock_period = 520.0 }
      in
      let design, graph = build_bench spec in
      let dt = Difftimer.create ~gamma:20.0 graph in
      Sta.Nets.rebuild (Difftimer.nets dt);
      ignore (Difftimer.forward dt);
      let ncells = Netlist.num_cells design in
      let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
      let measure pool =
        let fwd = time_us (fun () -> Difftimer.forward ?pool dt) in
        let bwd =
          time_us (fun () ->
            Array.fill gx 0 ncells 0.0;
            Array.fill gy 0 ncells 0.0;
            Difftimer.backward ?pool dt ~w_tns:1.0 ~w_wns:1.0 ~grad_x:gx
              ~grad_y:gy)
        in
        (fwd, bwd)
      in
      let fwd1, bwd1 = measure None in
      let seed_fwd, seed_bwd = List.assoc cells seed_reference in
      let seed_comb = seed_fwd +. seed_bwd in
      let comb1 = fwd1 +. bwd1 in
      Report.Table.add_row t
        [ string_of_int cells; "1";
          Printf.sprintf "%.1f" fwd1;
          Printf.sprintf "%.1f" bwd1;
          Printf.sprintf "%.1f" comb1;
          Printf.sprintf "%.1f" seed_comb;
          Printf.sprintf "%.2fx" (seed_comb /. comb1) ];
      let pooled =
        List.map
          (fun domains ->
            let pool = Parallel.create ~domains () in
            let fwd, bwd =
              Fun.protect
                ~finally:(fun () -> Parallel.shutdown pool)
                (fun () -> measure (Some pool))
            in
            Report.Table.add_row t
              [ string_of_int cells; string_of_int domains;
                Printf.sprintf "%.1f" fwd;
                Printf.sprintf "%.1f" bwd;
                Printf.sprintf "%.1f" (fwd +. bwd); "-";
                Printf.sprintf "%.2fx" (comb1 /. (fwd +. bwd)) ];
            (domains, fwd, bwd))
          [ 2; 4 ]
      in
      Printf.printf "  [done] %d cells\n%!" cells;
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"cells\": %d,\n      \"seed\": { \"forward_us\": %.1f, \
            \"backward_us\": %.1f, \"combined_us\": %.1f },\n      \
            \"current\": { \"forward_us\": %.1f, \"backward_us\": %.1f, \
            \"combined_us\": %.1f },\n      \"combined_speedup_vs_seed\": \
            %.3f,\n      \"domain_scaling\": [\n"
           cells seed_fwd seed_bwd seed_comb fwd1 bwd1 comb1
           (seed_comb /. comb1));
      List.iteri
        (fun i (domains, fwd, bwd) ->
          Buffer.add_string buf
            (Printf.sprintf
               "        { \"domains\": %d, \"forward_us\": %.1f, \
                \"backward_us\": %.1f, \"combined_us\": %.1f }%s\n"
               domains fwd bwd (fwd +. bwd)
               (if i = List.length pooled - 1 then "" else ",")))
        pooled;
      Buffer.add_string buf
        (Printf.sprintf "      ]\n    }%s\n"
           (if si = List.length sizes - 1 then "" else ",")))
    sizes;
  Buffer.add_string buf "  ]\n}\n";
  print_newline ();
  print_string (Report.Table.render t);
  let oc = open_out !bench_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote %s\n" !bench_out

(* ---- full placement iteration benchmark ---- *)

let placer_smoke = ref false
let placer_out = ref "BENCH_placeriter.json"

(* Seed (pre-pool) per-kernel timings, microseconds per call, measured on
   this machine at the base revision with the same 5000-cell workload
   spec (seed 17, 16 in/out, depth 10, clock 520 ps): mean of two runs.
   The seed iteration amortises the Steiner rebuild over the paper's
   10-iteration reuse period. *)
let placer_seed_reference =
  [ ("wirelength", 2697.0); ("density_update", 2958.0);
    ("density_gradient", 876.0); ("steiner_rebuild", 37130.0);
    ("nets_refresh", 2216.0); ("diff_forward", 10007.0);
    ("diff_backward", 6407.0) ]

let placer_iter () =
  section "Full placement iteration: per-kernel split over worker domains";
  let cells = if !placer_smoke then 400 else 5000 in
  let iters = if !placer_smoke then 4 else 20 in
  let steiner_period = Core.default_timing.Core.steiner_period in
  let gamma = 20.0 in
  let steiner_dirty_gamma =
    match Core.default_timing.Core.steiner_dirty with
    | Some g -> g
    | None -> -1.0
  in
  let dirty_threshold =
    if steiner_dirty_gamma >= 0.0 then Some (steiner_dirty_gamma *. gamma)
    else None
  in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = 17; sp_inputs = 16;
      sp_outputs = 16; sp_depth = 10; sp_clock_period = 520.0 }
  in
  let design, graph = build_bench spec in
  let wl = Wirelength.create design in
  let dens = Density.create design in
  let dt = Difftimer.create ~gamma graph in
  let nets = Difftimer.nets dt in
  Sta.Nets.rebuild nets;
  ignore (Difftimer.forward dt);
  let ncells = Netlist.num_cells design in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  let home = Netlist.copy_positions design in
  let movable =
    Array.of_list
      (List.map
         (fun c -> design.Netlist.cells.(c))
         (Netlist.movable_cells design))
  in
  (* Deterministic synthetic motion standing in for the placement
     trajectory between two Steiner rebuild ticks: most cells jitter a
     little, a minority makes large moves.  Applied outside the timed
     region, so "steiner_rebuild" is the cost of the dirty rebuild call
     itself under this motion, and the dirty threshold actually
     classifies (with no motion every net would be clean and the number
     meaningless). *)
  let motion_rng = ref (Workload.Rng.create 0x5eed) in
  let motion_tick () =
    let rng = !motion_rng in
    Array.iter
      (fun (c : Netlist.cell) ->
        let mag = if Workload.Rng.bool rng 0.15 then 12.0 else 2.0 in
        c.Netlist.x <- c.Netlist.x +. Workload.Rng.float rng (2.0 *. mag) -. mag;
        c.Netlist.y <- c.Netlist.y +. Workload.Rng.float rng (2.0 *. mag) -. mag)
      movable
  in
  let reset_state pool =
    Netlist.restore_positions design home;
    motion_rng := Workload.Rng.create 0x5eed;
    (* resync every topology, anchor and RC to the restored placement so
       each domain row measures the same work *)
    Sta.Nets.rebuild ?pool nets
  in
  let time_us ?prep f =
    let prep = match prep with Some p -> p | None -> fun () -> () in
    prep ();
    ignore (f ());
    let acc = ref 0.0 in
    for _ = 1 to iters do
      prep ();
      let t0 = Obs.Clock.now () in
      ignore (f ());
      acc := !acc +. (Obs.Clock.now () -. t0)
    done;
    !acc /. float_of_int iters *. 1e6
  in
  let measure pool =
    reset_state pool;
    [ ("wirelength",
       time_us (fun () ->
         Array.fill gx 0 ncells 0.0;
         Array.fill gy 0 ncells 0.0;
         ignore (Wirelength.evaluate wl ?pool ~grad_x:gx ~grad_y:gy ())));
      ("density_update", time_us (fun () -> Density.update ?pool dens));
      ("density_gradient",
       time_us (fun () ->
         Array.fill gx 0 ncells 0.0;
         Array.fill gy 0 ncells 0.0;
         Density.gradient ?pool dens ~scale:1.0 ~grad_x:gx ~grad_y:gy));
      (* the per-tick cost paid every steiner_period iterations: dirty
         classification + LUT/heuristic rebuild of the moved nets *)
      ("steiner_rebuild",
       time_us ~prep:motion_tick (fun () ->
         Sta.Nets.rebuild ?dirty_threshold ?pool nets));
      (* reference: unconditional re-topologisation of every net (what
         the seed's steiner_rebuild measured); not part of an iteration *)
      ("steiner_full", time_us (fun () -> Sta.Nets.rebuild ?pool nets));
      ("nets_refresh", time_us (fun () -> Sta.Nets.refresh ?pool nets));
      ("diff_forward", time_us (fun () -> ignore (Difftimer.forward ?pool dt)));
      ("diff_backward",
       time_us (fun () ->
         Array.fill gx 0 ncells 0.0;
         Array.fill gy 0 ncells 0.0;
         Difftimer.backward ?pool dt ~w_tns:1.0 ~w_wns:1.0 ~grad_x:gx
           ~grad_y:gy)) ]
  in
  (* an extra observed pass (untimed) splitting the dirty rebuild into
     its steiner.dirty / steiner.lut / steiner.full sub-kernels and
     counting nets per class *)
  let subkernels pool =
    let obs = Obs.create () in
    let obs_iters = max 2 (iters / 4) in
    (* settle GC debt left by the timed kernels so major slices don't
       land inside the observed spans *)
    Gc.full_major ();
    for _ = 1 to obs_iters do
      motion_tick ();
      Sta.Nets.rebuild ?dirty_threshold ?pool ~obs nets
    done;
    let per = 1.0 /. float_of_int obs_iters in
    let spans =
      List.filter_map
        (fun (s : Obs.stat) ->
          match s.Obs.st_kernel with
          | Obs.Steiner_dirty | Obs.Steiner_lut | Obs.Steiner_full ->
            Some (Obs.kernel_name s.Obs.st_kernel, s.Obs.st_cum *. per *. 1e6)
          | _ -> None)
        (Obs.stats obs)
    in
    let per_tick =
      List.filter_map
        (fun (name, v) ->
          match name with
          | "steiner.nets_clean" | "steiner.nets_lut" | "steiner.nets_full" ->
            Some (name, v *. per)
          | _ -> None)
        (Obs.counters obs)
    in
    (spans, per_tick)
  in
  (* one GP iteration = every per-iteration kernel, with the Steiner
     rebuild amortised over its reuse period (paper §3.6); the
     steiner_full reference kernel is not part of an iteration *)
  let iteration_us kernels =
    List.fold_left
      (fun acc (name, us) ->
        if name = "steiner_rebuild" then
          acc +. (us /. float_of_int steiner_period)
        else if name = "steiner_full" then acc
        else acc +. us)
      0.0 kernels
  in
  let seed_iter_us = iteration_us placer_seed_reference in
  (* Warm the topology LUT by replaying the motion stream a row
     performs (same RNG stream) with an *unconditional* rebuild at every
     tick: that generates every class any net can request at any tick
     position, whatever the dirty classification does.  Class generation
     is a once-per-process cost amortised over a whole placement run,
     not a per-iteration cost, so it must not land inside a timed
     region. *)
  let () =
    reset_state None;
    for _ = 1 to iters + 1 + max 2 (iters / 4) do
      motion_tick ();
      Sta.Nets.rebuild nets
    done;
    Printf.printf "  [lut warmed] classes per degree:";
    for d = 4 to Steiner.Lut.max_degree do
      Printf.printf " %d:%d" d (Steiner.Lut.class_count d)
    done;
    print_newline ()
  in
  let domain_counts = if !placer_smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let results =
    List.map
      (fun domains ->
        let run_row pool =
          let kernels = measure pool in
          let spans, per_tick = subkernels pool in
          (kernels, spans, per_tick)
        in
        let kernels, spans, per_tick =
          if domains <= 1 then run_row None
          else begin
            let pool = Parallel.create ~domains () in
            Fun.protect
              ~finally:(fun () -> Parallel.shutdown pool)
              (fun () -> run_row (Some pool))
          end
        in
        Printf.printf "  [done] domains=%d\n%!" domains;
        (domains, kernels, iteration_us kernels, spans, per_tick))
      domain_counts
  in
  let _, _, base_iter_us, _, _ = List.hd results in
  let t =
    Report.Table.create
      [ "domains"; "wl(us)"; "dens(us)"; "dgrad(us)"; "steiner(us)";
        "full(us)"; "refresh(us)"; "fwd(us)"; "bwd(us)"; "iter(us)";
        "vs 1 dom"; "vs seed" ]
  in
  List.iter
    (fun (domains, kernels, iter_us, _, _) ->
      let k name = List.assoc name kernels in
      Report.Table.add_row t
        [ string_of_int domains;
          Printf.sprintf "%.0f" (k "wirelength");
          Printf.sprintf "%.0f" (k "density_update");
          Printf.sprintf "%.0f" (k "density_gradient");
          Printf.sprintf "%.0f" (k "steiner_rebuild");
          Printf.sprintf "%.0f" (k "steiner_full");
          Printf.sprintf "%.0f" (k "nets_refresh");
          Printf.sprintf "%.0f" (k "diff_forward");
          Printf.sprintf "%.0f" (k "diff_backward");
          Printf.sprintf "%.0f" iter_us;
          Printf.sprintf "%.2fx" (base_iter_us /. iter_us);
          (if !placer_smoke then "-"
           else Printf.sprintf "%.2fx" (seed_iter_us /. iter_us)) ])
    results;
  print_newline ();
  print_string (Report.Table.render t);
  let cores = Domain.recommended_domain_count () in
  if cores <= 1 then
    Printf.printf
      "\n  note: this machine exposes %d core(s); the domain rows measure \
       dispatch\n  overhead, not parallel speedup.  Pooled results are \
       bit-identical to\n  sequential ones by construction (see the \
       determinism tests).\n"
      cores;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"bench\": \"placer-iter\",\n  \"mode\": \"%s\",\n\
                    \  \"iters\": %d,\n"
       (if !placer_smoke then "smoke" else "full")
       iters);
  Buffer.add_string buf (json_meta ());
  Buffer.add_string buf
    (Printf.sprintf
       "  \"steiner_period\": %d,\n  \"steiner_dirty_gamma\": %.2f,\n  \
        \"lut_max_degree\": %d,\n  \
        \"workload\": { \"cells\": %d, \"seed\": 17, \"inputs\": 16, \
        \"outputs\": 16, \"depth\": 10, \"clock_period_ps\": 520.0, \
        \"gamma_ps\": 20.0 },\n"
       steiner_period steiner_dirty_gamma Steiner.Lut.max_degree cells);
  if not !placer_smoke then
    Buffer.add_string buf
      (Printf.sprintf "  \"seed_iteration_us\": %.1f,\n" seed_iter_us);
  Buffer.add_string buf "  \"domains\": [\n";
  let json_assoc kvs =
    String.concat ", "
      (List.map (fun (name, v) -> Printf.sprintf "\"%s\": %.1f" name v) kvs)
  in
  List.iteri
    (fun i (domains, kernels, iter_us, spans, per_tick) ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"domains\": %d, \"iteration_us\": %.1f, \
                         \"speedup_vs_1_domain\": %.3f"
           domains iter_us (base_iter_us /. iter_us));
      if not !placer_smoke then
        Buffer.add_string buf
          (Printf.sprintf ", \"speedup_vs_seed\": %.3f"
             (seed_iter_us /. iter_us));
      Buffer.add_string buf ",\n      \"kernels_us\": { ";
      Buffer.add_string buf (json_assoc kernels);
      Buffer.add_string buf " },\n      \"steiner_subkernels_us\": { ";
      Buffer.add_string buf (json_assoc spans);
      Buffer.add_string buf " },\n      \"steiner_nets_per_tick\": { ";
      Buffer.add_string buf (json_assoc per_tick);
      Buffer.add_string buf
        (Printf.sprintf " } }%s\n"
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out !placer_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote %s\n" !placer_out

(* ---- top-K path enumeration benchmark ---- *)

let paths_out = ref "BENCH_paths.json"

(* Per-K measurement row: timing plus the lazy engine's candidate
   counters and the endpoint-fan-out chunk count. *)
type paths_pk = {
  pk_k : int;
  pk_enum_us : float;
  pk_paths : int;
  pk_rate : float;
  pk_pushed : float;
  pk_popped : float;
  pk_pruned : float;
  pk_skipped : float;
  pk_chunks : int;
}

let bench_paths () =
  section "Top-K path enumeration (lib/paths): throughput vs K over domains";
  let cells = if !placer_smoke then 400 else 5000 in
  let iters = if !placer_smoke then 4 else 16 in
  let ks = if !placer_smoke then [ 1; 4; 16 ] else [ 1; 8; 32; 128 ] in
  let domain_counts = if !placer_smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = 17; sp_inputs = 16;
      sp_outputs = 16; sp_depth = 10; sp_clock_period = 520.0 }
  in
  let _, graph = build_bench spec in
  let timer = Sta.Timer.create graph in
  ignore (Sta.Timer.run timer);
  let nend = Array.length graph.Sta.Graph.endpoints in
  let time_us f =
    ignore (f ());
    let t0 = Obs.Clock.now () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    (Obs.Clock.now () -. t0) /. float_of_int iters *. 1e6
  in
  let t =
    Report.Table.create
      [ "domains"; "analyze(us)"; "K"; "enumerate(us)"; "paths"; "paths/s";
        "popped"; "pruned"; "chunks" ]
  in
  let measure pool =
    let analyze_us = time_us (fun () -> Paths.analyze ?pool timer) in
    let view = Paths.analyze ?pool timer in
    let per_k =
      List.map
        (fun k ->
          let enum_us = time_us (fun () -> Paths.enumerate ?pool ~k view) in
          let npaths = List.length (Paths.enumerate ?pool ~k view) in
          let rate =
            if enum_us > 0.0 then float_of_int npaths /. (enum_us *. 1e-6)
            else 0.0
          in
          let obs = Obs.create () in
          ignore (Paths.enumerate ?pool ~obs ~k view);
          let counter name =
            match List.assoc_opt name (Obs.counters obs) with
            | Some v -> v
            | None -> 0.0
          in
          let grain = Paths.enumerate_grain ~k nend in
          { pk_k = k; pk_enum_us = enum_us; pk_paths = npaths;
            pk_rate = rate; pk_pushed = counter "paths.pushed";
            pk_popped = counter "paths.popped";
            pk_pruned = counter "paths.pruned";
            pk_skipped = counter "paths.endpoints_skipped";
            pk_chunks = (nend + grain - 1) / grain })
        ks
    in
    (analyze_us, per_k)
  in
  let results =
    List.map
      (fun domains ->
        let analyze_us, per_k =
          if domains <= 1 then measure None
          else begin
            let pool = Parallel.create ~domains () in
            Fun.protect
              ~finally:(fun () -> Parallel.shutdown pool)
              (fun () -> measure (Some pool))
          end
        in
        Printf.printf "  [done] domains=%d\n%!" domains;
        List.iteri
          (fun i pk ->
            Report.Table.add_row t
              [ (if i = 0 then string_of_int domains else "");
                (if i = 0 then Printf.sprintf "%.0f" analyze_us else "");
                string_of_int pk.pk_k;
                Printf.sprintf "%.0f" pk.pk_enum_us;
                string_of_int pk.pk_paths;
                Printf.sprintf "%.0f" pk.pk_rate;
                Printf.sprintf "%.0f" pk.pk_popped;
                Printf.sprintf "%.0f" pk.pk_pruned;
                string_of_int pk.pk_chunks ])
          per_k;
        (domains, analyze_us, per_k))
      domain_counts
  in
  print_newline ();
  print_string (Report.Table.render t);
  let view = Paths.analyze timer in
  (* Eager-reference baseline at the largest K, sequential: the measured
     speedup of the lazy engine over the pre-lazy implementation, gated
     by scripts/check_bench.py in full mode. *)
  let ref_k = List.fold_left Int.max 1 ks in
  let ref_iters = 2 in
  let ref_us =
    ignore (Paths.Reference.enumerate ~k:ref_k view);
    let t0 = Obs.Clock.now () in
    for _ = 1 to ref_iters do
      ignore (Paths.Reference.enumerate ~k:ref_k view)
    done;
    (Obs.Clock.now () -. t0) /. float_of_int ref_iters *. 1e6
  in
  let lazy_us =
    let _, _, per_k = List.hd results in
    (List.find (fun pk -> pk.pk_k = ref_k) per_k).pk_enum_us
  in
  let ref_speedup = if lazy_us > 0.0 then ref_us /. lazy_us else 0.0 in
  Printf.printf
    "\n  eager reference @ K=%d, 1 domain: %.0fus (lazy %.0fus, %.2fx)\n"
    ref_k ref_us lazy_us ref_speedup;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"bench\": \"paths\",\n  \"mode\": \"%s\",\n\
                    \  \"iters\": %d,\n"
       (if !placer_smoke then "smoke" else "full")
       iters);
  Buffer.add_string buf (json_meta ());
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": { \"cells\": %d, \"seed\": 17, \"inputs\": 16, \
        \"outputs\": 16, \"depth\": 10, \"clock_period_ps\": 520.0 },\n\
       \  \"endpoints\": %d,\n  \"timing_edges\": %d,\n  \"domains\": [\n"
       cells nend (Paths.num_edges view));
  List.iteri
    (fun i (domains, analyze_us, per_k) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"domains\": %d, \"analyze_us\": %.1f,\n      \"ks\": [\n"
           domains analyze_us);
      List.iteri
        (fun j pk ->
          Buffer.add_string buf
            (Printf.sprintf
               "        { \"k\": %d, \"enumerate_us\": %.1f, \"paths\": %d, \
                \"paths_per_s\": %.0f,\n          \"pushed\": %.0f, \
                \"popped\": %.0f, \"pruned\": %.0f, \
                \"endpoints_skipped\": %.0f, \"chunks\": %d }%s\n"
               pk.pk_k pk.pk_enum_us pk.pk_paths pk.pk_rate pk.pk_pushed
               pk.pk_popped pk.pk_pruned pk.pk_skipped pk.pk_chunks
               (if j = List.length per_k - 1 then "" else ",")))
        per_k;
      Buffer.add_string buf
        (Printf.sprintf "      ] }%s\n"
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"reference\": { \"k\": %d, \"iters\": %d, \"enumerate_us\": %.1f, \
        \"lazy_enumerate_us\": %.1f, \"speedup\": %.3f }\n"
       ref_k ref_iters ref_us lazy_us ref_speedup);
  Buffer.add_string buf "}\n";
  let oc = open_out !paths_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote %s\n" !paths_out

(* ---- fork-join executor benchmark ---- *)

let parallel_out = ref "BENCH_parallel.json"

let bench_parallel () =
  section "Fork-join executor: dispatch latency and end-to-end scaling";
  let cores = Domain.recommended_domain_count () in
  let domain_counts = if !placer_smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let with_pool ?oversubscribe ~domains f =
    let pool = Parallel.create ~domains ?oversubscribe () in
    Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)
  in
  (* -- dispatch latency: empty bodies isolate the executor's own cost.
     The pools oversubscribe so the publish/claim/park machinery runs
     even when the benchmark machine has fewer cores than domains. *)
  Printf.printf "\n  dispatch latency (empty bodies, %d cores):\n" cores;
  let sizes = [ 64; 4_096; 262_144 ] in
  let reps n =
    let r = min 2_000 (max 50 (1_000_000 / n)) in
    if !placer_smoke then max 20 (r / 10) else r
  in
  let time_us r f =
    f ();
    let t0 = Obs.Clock.now () in
    for _ = 1 to r do
      f ()
    done;
    (Obs.Clock.now () -. t0) /. float_of_int r *. 1e6
  in
  let tdisp =
    Report.Table.create [ "domains"; "n"; "auto grain(us)"; "forced 16 chunks(us)" ]
  in
  let dispatch =
    List.map
      (fun domains ->
        let points =
          with_pool ~oversubscribe:true ~domains (fun pool ->
            List.map
              (fun n ->
                let r = reps n in
                (* auto grain: tiny n takes the unified inline fast path *)
                let auto =
                  time_us r (fun () ->
                    Parallel.parallel_for pool ~cost:1.0 n (fun _ -> ()))
                in
                (* forced grain: always publishes a 16-chunk job *)
                let forced =
                  time_us r (fun () ->
                    Parallel.parallel_for pool ~grain:(max 1 (n / 16)) n
                      (fun _ -> ()))
                in
                Report.Table.add_row tdisp
                  [ string_of_int domains; string_of_int n;
                    Printf.sprintf "%.2f" auto; Printf.sprintf "%.2f" forced ];
                (n, auto, forced))
              sizes)
        in
        Printf.printf "  [done] dispatch domains=%d\n%!" domains;
        (domains, points))
      domain_counts
  in
  print_string (Report.Table.render tdisp);
  (* -- end-to-end scaling on the real kernels.  These pools do NOT
     oversubscribe: a pool wider than the machine degrades to inline
     execution, which is exactly the behaviour users see. *)
  let cells = if !placer_smoke then 400 else 5000 in
  let iters = if !placer_smoke then 4 else 20 in
  let steiner_period = Core.default_timing.Core.steiner_period in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = 17; sp_inputs = 16;
      sp_outputs = 16; sp_depth = 10; sp_clock_period = 520.0 }
  in
  let design, graph = build_bench spec in
  let wl = Wirelength.create design in
  let dens = Density.create design in
  let dt = Difftimer.create ~gamma:20.0 graph in
  let nets = Difftimer.nets dt in
  Sta.Nets.rebuild nets;
  ignore (Difftimer.forward dt);
  let ncells = Netlist.num_cells design in
  let gx = Array.make ncells 0.0 and gy = Array.make ncells 0.0 in
  let measure pool =
    let fwd = time_us iters (fun () -> ignore (Difftimer.forward ?pool dt)) in
    let bwd =
      time_us iters (fun () ->
        Array.fill gx 0 ncells 0.0;
        Array.fill gy 0 ncells 0.0;
        Difftimer.backward ?pool dt ~w_tns:1.0 ~w_wns:1.0 ~grad_x:gx
          ~grad_y:gy)
    in
    (* one GP iteration: every per-iteration kernel, with the Steiner
       rebuild amortised over its reuse period (paper SS3.6) *)
    let body =
      time_us iters (fun () ->
        Array.fill gx 0 ncells 0.0;
        Array.fill gy 0 ncells 0.0;
        ignore (Wirelength.evaluate wl ?pool ~grad_x:gx ~grad_y:gy ());
        Density.update ?pool dens;
        Density.gradient ?pool dens ~scale:1.0 ~grad_x:gx ~grad_y:gy;
        Sta.Nets.refresh ?pool nets;
        ignore (Difftimer.forward ?pool dt);
        Difftimer.backward ?pool dt ~w_tns:1.0 ~w_wns:1.0 ~grad_x:gx
          ~grad_y:gy)
    in
    let rebuild = time_us iters (fun () -> Sta.Nets.rebuild ?pool nets) in
    (fwd, bwd, body +. (rebuild /. float_of_int steiner_period))
  in
  let scaling =
    List.map
      (fun domains ->
        let fwd, bwd, iter_us =
          if domains <= 1 then measure None
          else with_pool ~domains (fun pool -> measure (Some pool))
        in
        Printf.printf "  [done] scaling domains=%d\n%!" domains;
        (domains, fwd, bwd, iter_us))
      domain_counts
  in
  let _, fwd1, bwd1, iter1 = List.hd scaling in
  let tsc =
    Report.Table.create
      [ "domains"; "fwd(us)"; "bwd(us)"; "GP iter(us)"; "iter vs 1 dom" ]
  in
  List.iter
    (fun (domains, fwd, bwd, iter_us) ->
      Report.Table.add_row tsc
        [ string_of_int domains;
          Printf.sprintf "%.0f" fwd;
          Printf.sprintf "%.0f" bwd;
          Printf.sprintf "%.0f" iter_us;
          Printf.sprintf "%.2fx" (iter1 /. iter_us) ])
    scaling;
  print_newline ();
  print_string (Report.Table.render tsc);
  if cores <= 1 then
    Printf.printf
      "\n  note: this machine exposes %d core(s); pools wider than the \
       machine\n  degrade to inline execution (no oversubscription), so the \
       scaling rows\n  bound dispatch overhead rather than demonstrate \
       speedup.\n"
      cores;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"bench\": \"parallel\",\n  \"mode\": \"%s\",\n"
       (if !placer_smoke then "smoke" else "full"));
  Buffer.add_string buf (json_meta ());
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": { \"cells\": %d, \"seed\": 17, \"inputs\": 16, \
        \"outputs\": 16, \"depth\": 10, \"clock_period_ps\": 520.0, \
        \"gamma_ps\": 20.0 },\n  \"dispatch\": [\n"
       cells);
  List.iteri
    (fun i (domains, points) ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"domains\": %d, \"points\": [ " domains);
      Buffer.add_string buf
        (String.concat ", "
           (List.map
              (fun (n, auto, forced) ->
                Printf.sprintf
                  "{ \"n\": %d, \"auto_us\": %.3f, \"forced_us\": %.3f }" n
                  auto forced)
              points));
      Buffer.add_string buf
        (Printf.sprintf " ] }%s\n"
           (if i = List.length dispatch - 1 then "" else ",")))
    dispatch;
  Buffer.add_string buf "  ],\n  \"scaling\": [\n";
  List.iteri
    (fun i (domains, fwd, bwd, iter_us) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"domains\": %d, \"forward_us\": %.1f, \"backward_us\": \
            %.1f, \"iteration_us\": %.1f, \"iteration_speedup_vs_1\": %.3f \
            }%s\n"
           domains fwd bwd iter_us (iter1 /. iter_us)
           (if i = List.length scaling - 1 then "" else ",")))
    scaling;
  Buffer.add_string buf "  ]\n}\n";
  ignore (fwd1, bwd1);
  let oc = open_out !parallel_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote %s\n" !parallel_out

(* ---- incremental STA benchmark ---- *)

let incremental_out = ref "BENCH_incremental.json"

(* Move small batches of cells (local what-if perturbations, the
   serving-daemon workload), measure pins re-evaluated and latency per
   batch against a full Timer.run of the same placement, and verify the
   reports stay bit-identical.  The batch is 0.25% of the cells: the
   bitwise change-detection cutoff means a move dirties its whole
   transitive fanout cone, and cone unions grow sublinearly but large —
   on this topology a 1%-of-cells batch already touches ~43% of pins,
   while 0.25% stays near 16%.  The acceptance thresholds (<25% of pins
   re-evaluated, bitwise-equal WNS/TNS/endpoint slacks) are enforced
   here: any violation exits nonzero. *)
let bench_incremental () =
  section "Incremental STA: re-propagation cost per move batch vs full run";
  let cells = if !placer_smoke then 400 else 5000 in
  let batches = if !placer_smoke then 5 else 20 in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = 17; sp_inputs = 16;
      sp_outputs = 16; sp_depth = 10; sp_clock_period = 520.0 }
  in
  let design, graph = build_bench spec in
  let inc = Sta.Incremental.create graph in
  (* the reference timer gets one default (rebuilding) run so its
     Steiner topologies match the incremental engine's; every later run
     freezes topologies on both sides *)
  let reference = Sta.Timer.create graph in
  ignore (Sta.Timer.run ?pool:!pool reference);
  let npins = Netlist.num_pins design in
  let ncells = Netlist.num_cells design in
  let batch_size = max 1 (ncells / 400) in
  let rng = Workload.Rng.create 2024 in
  let region = design.Netlist.region in
  let row = design.Netlist.row_height in
  let bits = Int64.bits_of_float in
  let identical (a : Sta.Timer.report) (b : Sta.Timer.report) =
    bits a.Sta.Timer.setup_wns = bits b.Sta.Timer.setup_wns
    && bits a.Sta.Timer.setup_tns = bits b.Sta.Timer.setup_tns
    && bits a.Sta.Timer.hold_wns = bits b.Sta.Timer.hold_wns
    && bits a.Sta.Timer.hold_tns = bits b.Sta.Timer.hold_tns
    && List.length a.Sta.Timer.endpoint_slacks
       = List.length b.Sta.Timer.endpoint_slacks
    && List.for_all2
         (fun (x : Sta.Timer.endpoint_slack) (y : Sta.Timer.endpoint_slack) ->
           x.Sta.Timer.ep_pin = y.Sta.Timer.ep_pin
           && bits x.Sta.Timer.ep_setup_slack = bits y.Sta.Timer.ep_setup_slack
           && bits x.Sta.Timer.ep_hold_slack = bits y.Sta.Timer.ep_hold_slack)
         a.Sta.Timer.endpoint_slacks b.Sta.Timer.endpoint_slacks
  in
  let t =
    Report.Table.create
      [ "batch"; "moves"; "pins"; "pins%"; "inc(us)"; "full(us)"; "speedup";
        "bitwise" ]
  in
  let rows = ref [] in
  let failures = ref 0 in
  for batch = 1 to batches do
    let moved = ref 0 in
    while !moved < batch_size do
      let c = design.Netlist.cells.(Workload.Rng.int rng ncells) in
      if not c.Netlist.fixed then begin
        incr moved;
        (* local perturbation: up to ~4 row heights in each axis *)
        let hw = c.Netlist.width /. 2.0 and hh = c.Netlist.height /. 2.0 in
        let jitter () = (Workload.Rng.float rng 8.0 -. 4.0) *. row in
        let x =
          Geometry.clamp ~lo:(region.Geometry.Rect.lx +. hw)
            ~hi:(region.Geometry.Rect.hx -. hw) (c.Netlist.x +. jitter ())
        and y =
          Geometry.clamp ~lo:(region.Geometry.Rect.ly +. hh)
            ~hi:(region.Geometry.Rect.hy -. hh) (c.Netlist.y +. jitter ())
        in
        Sta.Incremental.move_cell inc c.Netlist.cell_id ~x ~y
      end
    done;
    let t0 = Obs.Clock.now () in
    let ir = Sta.Incremental.update inc in
    let inc_us = (Obs.Clock.now () -. t0) *. 1e6 in
    let t0 = Obs.Clock.now () in
    let fr = Sta.Timer.run ~rebuild_trees:false ?pool:!pool reference in
    let full_us = (Obs.Clock.now () -. t0) *. 1e6 in
    let stats = Sta.Incremental.last_stats inc in
    let pins = stats.Sta.Incremental.us_pins in
    let frac = float_of_int pins /. float_of_int npins in
    let same = identical ir fr in
    if not same then incr failures;
    Report.Table.add_row t
      [ string_of_int batch; string_of_int batch_size; string_of_int pins;
        Printf.sprintf "%.1f" (100.0 *. frac);
        Printf.sprintf "%.0f" inc_us; Printf.sprintf "%.0f" full_us;
        Printf.sprintf "%.1fx" (full_us /. Float.max 1e-9 inc_us);
        (if same then "yes" else "NO") ];
    rows := (batch, pins, frac, inc_us, full_us, same, stats) :: !rows
  done;
  let rows = List.rev !rows in
  print_string (Report.Table.render t);
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  let mean_frac = mean (fun (_, _, f, _, _, _, _) -> f) in
  let mean_inc = mean (fun (_, _, _, i, _, _, _) -> i) in
  let mean_full = mean (fun (_, _, _, _, f, _, _) -> f) in
  Printf.printf
    "\n  mean: %.1f%% of %d pins re-evaluated per %d-move batch; \
     %.0f us incremental vs %.0f us full (%.1fx)\n"
    (100.0 *. mean_frac) npins batch_size mean_inc mean_full
    (mean_full /. Float.max 1e-9 mean_inc);
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"bench\": \"incremental\",\n  \"mode\": \"%s\",\n"
       (if !placer_smoke then "smoke" else "full"));
  Buffer.add_string buf (json_meta ());
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": { \"cells\": %d, \"seed\": 17, \"inputs\": 16, \
        \"outputs\": 16, \"depth\": 10, \"clock_period_ps\": 520.0 },\n\
       \  \"pins\": %d,\n  \"batch_size\": %d,\n  \"batches\": [\n"
       cells npins batch_size);
  List.iteri
    (fun i (batch, pins, frac, inc_us, full_us, same, stats) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"batch\": %d, \"pins_reevaluated\": %d, \"pin_fraction\": \
            %.4f, \"changed\": %d, \"nets\": %d, \"levels\": %d, \
            \"incremental_us\": %.1f, \"full_us\": %.1f, \"bit_identical\": \
            %b }%s\n"
           batch pins frac stats.Sta.Incremental.us_changed
           stats.Sta.Incremental.us_nets stats.Sta.Incremental.us_levels
           inc_us full_us same
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"mean_pin_fraction\": %.4f,\n  \"mean_incremental_us\": \
        %.1f,\n  \"mean_full_us\": %.1f,\n  \"speedup\": %.2f\n}\n"
       mean_frac mean_inc mean_full (mean_full /. Float.max 1e-9 mean_inc));
  let oc = open_out !incremental_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote %s\n" !incremental_out;
  if !failures > 0 then begin
    Printf.eprintf
      "FAIL: %d/%d batches not bit-identical to the full run\n" !failures
      batches;
    exit 1
  end;
  (* the <25% acceptance bound is defined on the 5k-cell design; a
     smoke-sized design dirties a much larger fraction per batch *)
  if (not !placer_smoke) && mean_frac >= 0.25 then begin
    Printf.eprintf
      "FAIL: mean pin fraction %.3f >= 0.25 acceptance threshold\n" mean_frac;
    exit 1
  end

(* ---- routability benchmark ---- *)

let routability_out = ref "BENCH_routability.json"

(* Place a deliberately congested (hotspot) workload twice at the same
   iteration budget -- routability off, then on -- and compare the RUDY
   congestion of the two final placements plus the HPWL cost of paying
   for it; also time the RUDY kernel itself at the bench point.  The
   acceptance thresholds (peak bin overflow -- utilization in excess of
   capacity -- down >= 30%, HPWL up <= 10%) are gated by
   scripts/check_bench.py on the JSON this writes.  Cell inflation can
   only move demand contributed by cells sitting in the hot bins, not
   demand from net bboxes that merely cross them, so the overflow
   excess is the quantity the loop can actually drive down. *)
let bench_routability () =
  section "Routability: RUDY + cell inflation on a congestion hotspot";
  let cells = if !placer_smoke then 400 else 5000 in
  let iters = if !placer_smoke then 400 else 600 in
  let spec =
    { Workload.default_spec with
      Workload.sp_cells = cells; sp_seed = 17; sp_inputs = 16;
      sp_outputs = 16; sp_depth = 10; sp_clock_period = 520.0;
      sp_hotspot = 0.15; sp_hotspot_clusters = 1 }
  in
  (* capacity calibrated so only the hotspot bins sit above the
     inflation target -- with the default 1.0 the whole map reads as
     congested and inflation degenerates to uniform spreading *)
  let route_cfg =
    { Route.default_config with
      Route.rt_capacity = 2.4; rt_check_overflow = 0.30;
      rt_check_period = 10; rt_inflation_coef = 1.5; rt_max_ratio = 6.0;
      rt_max_rounds = 16 }
  in
  (* equal iteration budget: min = max forces both runs through exactly
     [iters] placement iterations, early stop disabled *)
  let run routability =
    let design, graph = build_bench spec in
    let config =
      { Core.default_config with
        Core.mode = Core.Wirelength_only;
        max_iterations = iters; min_iterations = iters;
        routability = (if routability then Some route_cfg else None) }
    in
    let result = Core.run ?pool:!pool config graph in
    ignore (Legalize.legalize design);
    (* same yardstick for both rows: a fresh RUDY map of the legalised
       placement at the default knobs (cell sizes are back to their
       originals; Core restores before its final metrics) *)
    let rudy = Route.Rudy.create design in
    Route.Rudy.update ?pool:!pool rudy;
    let cong = Route.overflow rudy in
    (design, result, cong, Netlist.total_hpwl design)
  in
  let _, r_off, c_off, hpwl_off = run false in
  Printf.printf "  [done] routability off (%d iters)\n%!"
    r_off.Core.res_iterations;
  let design_on, r_on, c_on, hpwl_on = run true in
  Printf.printf "  [done] routability on (%d iters, %d inflation rounds)\n%!"
    r_on.Core.res_iterations r_on.Core.res_inflation_rounds;
  (* RUDY kernel throughput at the bench point *)
  let rudy = Route.Rudy.create design_on in
  let reps = if !placer_smoke then 20 else 50 in
  Route.Rudy.update ?pool:!pool rudy;
  let t0 = Obs.Clock.now () in
  for _ = 1 to reps do
    Route.Rudy.update ?pool:!pool rudy
  done;
  let rudy_us = (Obs.Clock.now () -. t0) /. float_of_int reps *. 1e6 in
  let peak_reduction =
    100.0 *. (c_off.Route.ov_peak -. c_on.Route.ov_peak)
    /. Float.max 1e-9 c_off.Route.ov_peak
  in
  (* the gated metric: peak bin overflow = peak utilization in excess
     of the (normalised 1.0) capacity *)
  let excess (c : Route.summary) = Float.max 0.0 (c.Route.ov_peak -. 1.0) in
  let peak_overflow_reduction =
    100.0 *. (excess c_off -. excess c_on) /. Float.max 1e-9 (excess c_off)
  in
  let hpwl_degradation =
    100.0 *. (hpwl_on -. hpwl_off) /. Float.max 1e-9 hpwl_off
  in
  let t =
    Report.Table.create
      [ "routability"; "peak"; "rc"; "bins>1"; "overflow"; "HPWL";
        "rounds"; "runtime(s)" ]
  in
  let row name (c : Route.summary) hpwl (r : Core.result) =
    Report.Table.add_row t
      [ name;
        Printf.sprintf "%.3f" c.Route.ov_peak;
        Printf.sprintf "%.3f" c.Route.ov_rc;
        string_of_int c.Route.ov_congested;
        Printf.sprintf "%.2f" c.Route.ov_total;
        Printf.sprintf "%.3e" hpwl;
        string_of_int r.Core.res_inflation_rounds;
        Printf.sprintf "%.2f" r.Core.res_runtime ]
  in
  row "off" c_off hpwl_off r_off;
  row "on" c_on hpwl_on r_on;
  print_newline ();
  print_string (Report.Table.render t);
  Printf.printf
    "\n  peak overflow %+.1f%% (utilization %+.1f%%), HPWL %+.1f%%; \
     RUDY update %.0f us (%d bins, %d cells)\n"
    (-.peak_overflow_reduction) (-.peak_reduction) hpwl_degradation rudy_us
    (let n = Route.Rudy.bins rudy in
     n * n)
    cells;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"bench\": \"routability\",\n  \"mode\": \"%s\",\n"
       (if !placer_smoke then "smoke" else "full"));
  Buffer.add_string buf (json_meta ());
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": { \"cells\": %d, \"seed\": 17, \"inputs\": 16, \
        \"outputs\": 16, \"depth\": 10, \"clock_period_ps\": 520.0, \
        \"hotspot\": 0.15, \"hotspot_clusters\": 1 },\n\
       \  \"iterations\": %d,\n  \"rudy_bins\": %d,\n"
       cells iters (Route.Rudy.bins rudy));
  let emit_run name (c : Route.summary) hpwl (r : Core.result) =
    Buffer.add_string buf
      (Printf.sprintf
         "  \"%s\": { \"peak_utilization\": %.4f, \"rc_utilization\": %.4f, \
          \"congested_bins\": %d, \"total_overflow\": %.4f, \"hpwl\": %.6e, \
          \"inflation_rounds\": %d, \"runtime_s\": %.2f },\n"
         name c.Route.ov_peak c.Route.ov_rc c.Route.ov_congested
         c.Route.ov_total hpwl r.Core.res_inflation_rounds r.Core.res_runtime)
  in
  emit_run "off" c_off hpwl_off r_off;
  emit_run "on" c_on hpwl_on r_on;
  Buffer.add_string buf
    (Printf.sprintf
       "  \"peak_reduction_pct\": %.2f,\n\
       \  \"peak_overflow_reduction_pct\": %.2f,\n\
       \  \"hpwl_degradation_pct\": %.2f,\n\
       \  \"rudy_update_us\": %.1f\n}\n"
       peak_reduction peak_overflow_reduction hpwl_degradation rudy_us);
  let oc = open_out !routability_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote %s\n" !routability_out

(* ---- multilevel: flat engine vs coarsen/uncoarsen V-cycle ---- *)

let multilevel_out = ref "BENCH_multilevel.json"

let bench_multilevel () =
  section "Multilevel: flat engine vs coarsen/uncoarsen V-cycle";
  let cells = if !placer_smoke then 4000 else 50_000 in
  let levels = if !placer_smoke then 2 else 3 in
  let iters = 600 in
  let spec = { Workload.default_spec with Workload.sp_cells = cells } in
  (* the flat engine's own configuration; the V-cycle takes exactly the
     same config, so the comparison is at a matched quality target
     (same stop_overflow, same iteration ceiling) *)
  let cfg =
    { Core.default_config with
      Core.mode = Core.Wirelength_only; max_iterations = iters }
  in
  let place name f spec levels =
    let design, graph = build_bench spec in
    let ml = { Core.default_multilevel with Core.ml_levels = levels } in
    let r =
      match f with
      | `Flat -> Core.run ?pool:!pool cfg graph
      | `Vcycle -> Core.run_multilevel ?pool:!pool ~ml cfg graph
    in
    let hpwl = Netlist.total_hpwl design in
    Printf.printf
      "  [done] %s: %d iters, %.2f s, HPWL %.4e (overflow %.3f)\n%!" name
      r.Core.res_iterations r.Core.res_runtime hpwl r.Core.res_overflow;
    (r, hpwl)
  in
  let flat_r, flat_hpwl = place "flat" `Flat spec levels in
  let v_r, v_hpwl =
    place (Printf.sprintf "V-cycle (%d levels)" levels) `Vcycle spec levels
  in
  let speedup =
    flat_r.Core.res_runtime /. Float.max 1e-9 v_r.Core.res_runtime
  in
  let hpwl_ratio = v_hpwl /. Float.max 1e-9 flat_hpwl in
  (* scalability point: a 200k-cell V-cycle end-to-end (the flat engine
     need not complete here, so only the V-cycle runs) *)
  let big =
    if !placer_smoke then None
    else begin
      let cells200 = 200_000 and levels200 = 4 in
      let spec200 =
        { Workload.default_spec with Workload.sp_cells = cells200 }
      in
      let r, hpwl =
        place
          (Printf.sprintf "V-cycle %dk (%d levels)" (cells200 / 1000)
             levels200)
          `Vcycle spec200 levels200
      in
      Some (cells200, levels200, r, hpwl)
    end
  in
  let t =
    Report.Table.create
      [ "engine"; "cells"; "iters"; "runtime(s)"; "HPWL"; "overflow" ]
  in
  let row name cells (r : Core.result) hpwl =
    Report.Table.add_row t
      [ name; string_of_int cells; string_of_int r.Core.res_iterations;
        Printf.sprintf "%.2f" r.Core.res_runtime;
        Printf.sprintf "%.4e" hpwl;
        Printf.sprintf "%.3f" r.Core.res_overflow ]
  in
  row "flat" cells flat_r flat_hpwl;
  row (Printf.sprintf "V-cycle/%d" levels) cells v_r v_hpwl;
  (match big with
   | Some (c, l, r, hpwl) -> row (Printf.sprintf "V-cycle/%d" l) c r hpwl
   | None -> ());
  print_newline ();
  print_string (Report.Table.render t);
  Printf.printf "\n  speedup %.2fx, HPWL ratio %.4f (peak RSS %.0f MB)\n"
    speedup hpwl_ratio
    (Obs.peak_rss_bytes () /. 1048576.0);
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"bench\": \"multilevel\",\n  \"mode\": \"%s\",\n"
       (if !placer_smoke then "smoke" else "full"));
  Buffer.add_string buf (json_meta ());
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": { \"cells\": %d, \"seed\": %d },\n\
       \  \"iterations_budget\": %d,\n  \"levels\": %d,\n"
       cells Workload.default_spec.Workload.sp_seed iters levels);
  let emit_run name (r : Core.result) hpwl =
    Buffer.add_string buf
      (Printf.sprintf
         "  \"%s\": { \"iterations\": %d, \"runtime_s\": %.3f, \
          \"hpwl\": %.6e, \"overflow\": %.4f },\n"
         name r.Core.res_iterations r.Core.res_runtime hpwl
         r.Core.res_overflow)
  in
  emit_run "flat" flat_r flat_hpwl;
  emit_run "vcycle" v_r v_hpwl;
  (match big with
   | Some (c, l, r, hpwl) ->
     Buffer.add_string buf
       (Printf.sprintf
          "  \"vcycle_200k\": { \"cells\": %d, \"levels\": %d, \
           \"iterations\": %d, \"runtime_s\": %.3f, \"hpwl\": %.6e, \
           \"overflow\": %.4f },\n"
          c l r.Core.res_iterations r.Core.res_runtime hpwl
          r.Core.res_overflow)
   | None -> ());
  Buffer.add_string buf
    (Printf.sprintf
       "  \"speedup\": %.4f,\n  \"hpwl_ratio\": %.6f\n}\n" speedup
       hpwl_ratio);
  let oc = open_out !multilevel_out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote %s\n" !multilevel_out

(* ---- driver ---- *)

let all_targets =
  [ ("table1", table1); ("table2", table2); ("table3", table3);
    ("figure8", figure8); ("kernels", kernels);
    ("ablation-gamma", ablation_gamma); ("ablation-reuse", ablation_reuse);
    ("ablation-extensions", ablation_extensions); ("gradcheck", gradcheck);
    ("difftimer", bench_difftimer); ("placer-iter", placer_iter);
    ("paths", bench_paths); ("parallel", bench_parallel);
    ("incremental", bench_incremental); ("routability", bench_routability);
    ("multilevel", bench_multilevel) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse acc rest
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--out" :: v :: rest ->
      bench_out := v;
      parse acc rest
    | "--smoke" :: rest ->
      placer_smoke := true;
      parse acc rest
    | "--domains" :: v :: rest ->
      let domains = int_of_string v in
      if domains > 1 then pool := Some (Parallel.create ~domains ());
      parse acc rest
    | "--placer-out" :: v :: rest ->
      placer_out := v;
      parse acc rest
    | "--paths-out" :: v :: rest ->
      paths_out := v;
      parse acc rest
    | "--parallel-out" :: v :: rest ->
      parallel_out := v;
      parse acc rest
    | "--incremental-out" :: v :: rest ->
      incremental_out := v;
      parse acc rest
    | "--routability-out" :: v :: rest ->
      routability_out := v;
      parse acc rest
    | "--multilevel-out" :: v :: rest ->
      multilevel_out := v;
      parse acc rest
    | x :: rest -> parse (x :: acc) rest
  in
  let targets = parse [] args in
  let targets = if targets = [] || targets = [ "all" ] then
      List.map fst all_targets
    else targets
  in
  Printf.printf
    "Differentiable-timing-driven global placement: benchmark harness\n";
  Printf.printf "(scale %g; see DESIGN.md for the experiment index)\n" !scale;
  List.iter
    (fun name ->
      match List.assoc_opt name all_targets with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown target %S; known: %s all\n" name
          (String.concat " " (List.map fst all_targets));
        exit 1)
    targets;
  match !pool with Some p -> Parallel.shutdown p | None -> ()
